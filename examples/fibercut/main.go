// Fibercut walks through the paper's Fig. 7 example: when full restoration
// is impossible, WHICH partial restoration candidate wins depends on the
// traffic demand — the essence of the LotteryTicket abstraction.
//
//	go run ./examples/fibercut
package main

import (
	"fmt"
	"log"

	arrow "github.com/arrow-te/arrow"
)

func main() {
	// Fig. 7: sites B=0 and C=1 joined by a direct fiber carrying two IP
	// links: IP1 (4 wavelengths) and IP2 (8 wavelengths). Two detours
	// exist — via T=2 with 3 free end-to-end slots, via U=3 with 2 —
	// so after cutting the direct fiber only 5 of 12 wavelengths can be
	// restored. How should they be split between IP1 and IP2?
	b := arrow.NewBuilder(4, 12)
	direct := b.AddFiber(0, 1, 100)
	bt := b.AddFiber(0, 2, 100)
	tc := b.AddFiber(2, 1, 100)
	bu := b.AddFiber(0, 3, 100)
	uc := b.AddFiber(3, 1, 100)

	ip1, err := b.AddIPLink(0, 1, 4, 100, []arrow.FiberID{direct})
	if err != nil {
		log.Fatal(err)
	}
	ip2, err := b.AddIPLink(0, 1, 8, 100, []arrow.FiberID{direct})
	if err != nil {
		log.Fatal(err)
	}
	// Fill the detours so the top path keeps 3 free slots, the bottom 2.
	if _, err := b.AddIPLink(0, 2, 9, 100, []arrow.FiberID{bt}); err != nil {
		log.Fatal(err)
	}
	if _, err := b.AddIPLink(2, 1, 9, 100, []arrow.FiberID{tc}); err != nil {
		log.Fatal(err)
	}
	if _, err := b.AddIPLink(0, 3, 10, 100, []arrow.FiberID{bu}); err != nil {
		log.Fatal(err)
	}
	if _, err := b.AddIPLink(3, 1, 10, 100, []arrow.FiberID{uc}); err != nil {
		log.Fatal(err)
	}
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	u, err := net.RestorationRatio(direct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cutting the direct B-C fiber: restoration ratio U = %.2f (5 of 12 wavelengths)\n", u)

	planner, err := net.Plan(arrow.PlanOptions{Tickets: 40, Cutoff: 1e-4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's demands: IP1 carries 100 Gbps, IP2 carries 400 Gbps.
	// Candidate (1,4) — 1 wave for IP1, 4 for IP2 — restores 500 Gbps of
	// useful capacity; (2,3) only 400; (3,2) only 300.
	demands := []arrow.Demand{
		{Src: 0, Dst: 1, Gbps: 500}, // aggregate B->C demand
	}
	plan, err := planner.Solve(demands, arrow.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	re, err := plan.OnFiberCut(direct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("winning candidate restores: IP1=%.0f Gbps, IP2=%.0f Gbps (total %.0f)\n",
		re.RestoredGbps[ip1], re.RestoredGbps[ip2],
		re.RestoredGbps[ip1]+re.RestoredGbps[ip2])
	fmt.Println()
	fmt.Println("the optical layer sees all 500-Gbps candidates as equal;")
	fmt.Println("only the demand-aware TE can tell which LotteryTicket wins.")
}
