// Availability compares ARROW's demand-aware LotteryTicket selection
// against restoration planned at the optical layer alone (Arrow-Naive) on a
// WAN where a single fiber cut takes down IP links of DIFFERENT site pairs
// that then compete for scarce surrogate spectrum — a miniature of the
// paper's Fig. 13 / Table 5 comparison.
//
//	go run ./examples/availability
package main

import (
	"fmt"
	"log"

	arrow "github.com/arrow-te/arrow"
)

func main() {
	net, shared := buildWAN()
	planner, err := net.Plan(arrow.PlanOptions{Tickets: 30, Cutoff: 1e-4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WAN: %d sites, %d fibers, %d IP links; %d failure scenarios planned\n",
		net.NumSites(), net.NumFibers(), net.NumLinks(), planner.NumScenarios())
	fmt.Println("fiber A-D carries IP links for two site pairs; its cut leaves only")
	fmt.Println("3 restorable wavelengths that the pairs must share.")

	// Demand is skewed: pair (0,3) needs 4x what pair (1,3) needs.
	base := []arrow.Demand{
		{Src: 0, Dst: 3, Gbps: 320}, // heavy pair through the shared fiber
		{Src: 1, Dst: 3, Gbps: 80},  // light pair through the shared fiber
		{Src: 0, Dst: 1, Gbps: 60},
		{Src: 1, Dst: 2, Gbps: 60},
		// The detour highways carry their own traffic, so they have little
		// spare capacity to absorb rerouted flows: restoration is the only
		// slack in the system.
		{Src: 0, Dst: 2, Gbps: 820},
		{Src: 2, Dst: 3, Gbps: 820},
	}
	fmt.Printf("\n%-8s  %-12s  %-12s\n", "scale", "ARROW", "Arrow-Naive")
	for _, scale := range []float64{0.5, 0.75, 1.0, 1.25} {
		ds := make([]arrow.Demand, len(base))
		copy(ds, base)
		for i := range ds {
			ds[i].Gbps *= scale
		}
		full, err := planner.Solve(ds, arrow.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		naive, err := planner.Solve(ds, arrow.SolveOptions{NaiveOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f  %-12.5f  %-12.5f\n", scale, full.Availability(), naive.Availability())
	}
	_ = shared
	fmt.Println("\nARROW steers the scarce restored wavelengths toward the heavy pair,")
	fmt.Println("so its availability degrades later than the demand-blind plan (Fig. 13).")
}

// buildWAN constructs the contended-restoration scenario:
//
//	sites A=0, B=1, C=2, D=3.
//	fiber A-D carries two IP links: A-D (4 waves) and B-D via A (4 waves).
//	the only detour for both is A-C-D, which has just 3 free slots
//	end-to-end, so at most 3 of the 8 lost wavelengths come back.
func buildWAN() (*arrow.Network, arrow.FiberID) {
	b := arrow.NewBuilder(4, 12)
	ab := b.AddFiber(0, 1, 500)
	ac := b.AddFiber(0, 2, 600)
	cd := b.AddFiber(2, 3, 600)
	ad := b.AddFiber(0, 3, 700) // the shared fiber that will be cut
	bc := b.AddFiber(1, 2, 800)

	must := func(_ arrow.LinkID, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(b.AddIPLink(0, 3, 4, 100, []arrow.FiberID{ad}))     // pair (A,D), heavy demand
	must(b.AddIPLink(1, 3, 4, 100, []arrow.FiberID{ab, ad})) // pair (B,D) via A, light demand
	must(b.AddIPLink(0, 1, 4, 100, []arrow.FiberID{ab}))
	must(b.AddIPLink(1, 2, 4, 100, []arrow.FiberID{bc}))
	// Fill the A-C-D detour so only 3 common slots remain.
	must(b.AddIPLink(0, 2, 9, 100, []arrow.FiberID{ac}))
	must(b.AddIPLink(2, 3, 9, 100, []arrow.FiberID{cd}))

	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return net, ad
}
