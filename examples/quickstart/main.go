// Quickstart: build a small WAN, plan restoration-aware TE, cut a fiber,
// and read off the precomputed reaction.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	arrow "github.com/arrow-te/arrow"
)

func main() {
	// A four-site ring, like the paper's testbed (Fig. 10): sites A=0, B=1,
	// D=2, C=3 joined by four fiber spans, 16 wavelength slots per fiber.
	b := arrow.NewBuilder(4, 16)
	fAB := b.AddFiber(0, 1, 560)
	fBD := b.AddFiber(1, 2, 560)
	fDC := b.AddFiber(2, 3, 520)
	fCA := b.AddFiber(3, 0, 520)

	// Three IP links (port-channels) as wavelength bundles.
	lAB, err := b.AddIPLink(0, 1, 2, 200, []arrow.FiberID{fAB}) // 0.4 Tbps
	if err != nil {
		log.Fatal(err)
	}
	lCD, err := b.AddIPLink(2, 3, 2, 200, []arrow.FiberID{fDC}) // 0.4 Tbps
	if err != nil {
		log.Fatal(err)
	}
	lAC, err := b.AddIPLink(0, 3, 4, 200, []arrow.FiberID{fCA}) // 0.8 Tbps
	if err != nil {
		log.Fatal(err)
	}
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built WAN: %d sites, %d fibers, %d IP links\n", net.NumSites(), net.NumFibers(), net.NumLinks())
	_ = fBD

	// Offline stage: enumerate probable fiber cuts, solve RWA, generate
	// LotteryTickets.
	planner, err := net.Plan(arrow.PlanOptions{Tickets: 12, Cutoff: 1e-4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %d failure scenarios proactively\n", planner.NumScenarios())

	// Online stage: solve the two-phase restoration-aware TE for the
	// current demand matrix.
	plan, err := planner.Solve([]arrow.Demand{
		{Src: 0, Dst: 1, Gbps: 300},
		{Src: 2, Dst: 3, Gbps: 250},
		{Src: 0, Dst: 3, Gbps: 500},
	}, arrow.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted %.0f Gbps (throughput %.2f), availability %.5f\n",
		plan.AdmittedGbps(), plan.Throughput(), plan.Availability())

	// A fiber cut happens: the reaction is already computed.
	re, err := plan.OnFiberCut(fDC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfiber D-C cut! failed IP links: %v\n", re.Failed)
	for l, g := range re.RestoredGbps {
		fmt.Printf("  link %d: %.0f Gbps restored by wavelength reconfiguration\n", l, g)
	}
	fmt.Printf("  ROADM reconfiguration: %d add/drop + %d intermediate (two parallel waves), %d transponder retunes\n",
		len(re.AddDropROADMs), len(re.IntermediateROADMs), re.Retunes)
	fmt.Println("  with ASE noise loading, this completes in seconds — no amplifier settling")
	_, _, _ = lAB, lCD, lAC
}
