// Noiseloading reproduces the paper's §5 testbed trial with the
// discrete-event emulator: restoring 2.8 Tbps after a fiber cut takes
// ~17 minutes when every amplifier along the surrogate paths must re-settle
// its gain, and ~8 seconds when ASE noise sources keep the spectrum fully
// populated (Figs. 11-12).
//
// This example drives the internal emulator directly; see cmd/arrow-testbed
// for the full CLI.
//
//	go run ./examples/noiseloading
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/arrow-te/arrow/internal/emu"
)

func main() {
	for _, mode := range []struct {
		name  string
		noise bool
	}{
		{"legacy amplifier reconfiguration", false},
		{"ARROW ASE noise loading", true},
	} {
		net, err := emu.Testbed()
		if err != nil {
			log.Fatal(err)
		}
		tr, err := emu.RunRestoration(net, []int{emu.FiberDC}, emu.Config{NoiseLoading: mode.noise, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", mode.name)
		fmt.Printf("lost %.1f Tbps, restored %.1f Tbps in %.1f s (%d amplifiers settled)\n",
			tr.LostGbps/1000, tr.RestoredGbps/1000, tr.DoneSec, tr.AmpsSettled)

		// ASCII sparkline of restored capacity over time.
		fmt.Println(sparkline(tr))
		fmt.Println()
	}
	fmt.Println("replacing noise with data is local to the ROADMs, so the amplifiers")
	fmt.Println("never see a spectral power change — that is the entire trick of §4.")
}

// sparkline renders the restoration time series as a capacity bar chart.
func sparkline(tr *emu.Trial) string {
	const cols = 60
	var b strings.Builder
	b.WriteString("restored capacity over time:\n")
	levels := []rune(" .:-=+*#%@")
	step := len(tr.Series) / cols
	if step == 0 {
		step = 1
	}
	b.WriteString("  [")
	for i := 0; i < len(tr.Series); i += step {
		frac := tr.Series[i].RestoredGbps / 2800
		idx := int(frac * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	b.WriteString(fmt.Sprintf("] 0..%.0fs", tr.Series[len(tr.Series)-1].TimeSec))
	return b.String()
}
