package arrow

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/arrow-te/arrow/internal/availability"

	"github.com/arrow-te/arrow/internal/noise"
	"github.com/arrow-te/arrow/internal/rwa"
)

// PlanExport is the JSON-serialisable form of a TrafficPlan: the routing
// rules to install on routers (traffic splitting ratios per demand) and the
// proactive restoration plan per failure scenario.
type PlanExport struct {
	Demands  []DemandExport   `json:"demands"`
	Failures []FailureExport  `json:"failures"`
	Summary  PlanSummaryStats `json:"summary"`
}

// DemandExport is one demand's routing installation.
type DemandExport struct {
	Src      int           `json:"src"`
	Dst      int           `json:"dst"`
	Gbps     float64       `json:"gbps"`
	Admitted float64       `json:"admitted_gbps"`
	Tunnels  []TunnelSplit `json:"tunnels"`
}

// TunnelSplit is one tunnel's links and traffic share.
type TunnelSplit struct {
	Links []int   `json:"links"`
	Ratio float64 `json:"ratio"`
}

// FailureExport is the precomputed reaction to one failure scenario.
type FailureExport struct {
	Probability   float64            `json:"probability"`
	FailedLinks   []int              `json:"failed_links"`
	RestoredGbps  map[string]float64 `json:"restored_gbps"`
	WinningTicket int                `json:"winning_ticket"`
}

// PlanSummaryStats summarises the plan.
type PlanSummaryStats struct {
	AdmittedGbps float64 `json:"admitted_gbps"`
	Throughput   float64 `json:"throughput"`
	Availability float64 `json:"availability"`
	Scenarios    int     `json:"scenarios"`
}

// Export converts the plan to its installable JSON form.
func (tp *TrafficPlan) Export() ([]byte, error) {
	ex := &PlanExport{
		Summary: PlanSummaryStats{
			AdmittedGbps: tp.AdmittedGbps(),
			Throughput:   tp.Throughput(),
			Availability: tp.Availability(),
			Scenarios:    len(tp.planner.scenarios),
		},
	}
	ratios := tp.SplitRatios()
	for d, dm := range tp.demands {
		de := DemandExport{Src: dm.Src, Dst: dm.Dst, Gbps: dm.Gbps, Admitted: tp.alloc.B[d]}
		for t := range tp.network.Tunnels[d] {
			de.Tunnels = append(de.Tunnels, TunnelSplit{
				Links: append([]int(nil), tp.network.Tunnels[d][t].Links...),
				Ratio: ratios[d][t],
			})
		}
		ex.Demands = append(ex.Demands, de)
	}
	for qi := range tp.planner.scenarios {
		fe := FailureExport{
			Probability:  tp.planner.scenarios[qi].Prob,
			FailedLinks:  append([]int(nil), tp.planner.scenarios[qi].FailedLinks...),
			RestoredGbps: map[string]float64{},
		}
		sort.Ints(fe.FailedLinks)
		if tp.alloc.WinningTicket != nil {
			fe.WinningTicket = tp.alloc.WinningTicket[qi]
		}
		if tp.alloc.RestoredGbps != nil {
			for l, g := range tp.alloc.RestoredGbps[qi] {
				fe.RestoredGbps[fmt.Sprint(l)] = g
			}
		}
		ex.Failures = append(ex.Failures, fe)
	}
	return json.MarshalIndent(ex, "", "  ")
}

// ROADMConfig renders the installable ROADM reconfiguration rules for the
// scenario that cuts exactly the given fibers (the text the paper's §3.3
// "installs on ROADM config files").
func (tp *TrafficPlan) ROADMConfig(fibers ...FiberID) (string, error) {
	cut := make([]int, len(fibers))
	for i, f := range fibers {
		cut[i] = int(f)
	}
	failed := tp.planner.net.opt.FailedLinks(cut)
	qi := -1
	for i := range tp.planner.scenarios {
		if equalIntSets(tp.planner.scenarios[i].FailedLinks, failed) {
			qi = i
			break
		}
	}
	if qi < 0 {
		return "", fmt.Errorf("arrow: no planned scenario for cut %v", fibers)
	}
	res, err := rwa.Solve(&rwa.Request{Net: tp.planner.net.opt, Cut: cut, K: 3, AllowTuning: true, AllowModulationChange: true})
	if err != nil {
		return "", err
	}
	target := make([]int, len(res.Failed))
	winner := 0
	if tp.alloc.WinningTicket != nil {
		winner = tp.alloc.WinningTicket[qi]
	}
	tk := tp.planner.scenarios[qi].Tickets[winner]
	for i, l := range res.Failed {
		for j, tl := range tp.planner.scenarios[qi].TicketLinks {
			if tl == l {
				target[i] = tk.Waves[j]
			}
		}
	}
	asg, _ := rwa.AssignIntegral(res, target)
	plan := noise.BuildPlan(tp.planner.net.opt, res, asg)
	cfg := noise.BuildConfig(fmt.Sprintf("cut%v", cut), plan)
	return cfg.Render(), nil
}

// PerDemandAvailability returns each demand's individual probability-
// weighted delivered fraction — the per-customer SLA view of the plan.
func (tp *TrafficPlan) PerDemandAvailability() []float64 {
	ev := &availability.Evaluator{Net: tp.network, Alloc: tp.alloc}
	scs := make([]availability.ScenarioEval, len(tp.planner.scenarios))
	for i := range tp.planner.scenarios {
		scs[i] = availability.ScenarioEval{
			Prob:   tp.planner.scenarios[i].Prob,
			Failed: tp.planner.scenarios[i].FailedLinks,
		}
		if tp.alloc.RestoredGbps != nil {
			scs[i].Restored = tp.alloc.RestoredGbps[i]
		}
	}
	return ev.PerFlowAvailability(scs)
}
