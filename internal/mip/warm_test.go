package mip

import (
	"math"
	"testing"

	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
)

// TestWarmMatchesCold pins the warm-start contract at the MIP layer: child
// nodes inherit their parent's basis, and that must not change the optimum
// found. The warm run must actually exercise the warm path (lp.warm_starts
// > 0) and the cold run must never touch it.
func TestWarmMatchesCold(t *testing.T) {
	for _, name := range []string{"knapsack.json", "bound_tighten.json"} {
		t.Run(name, func(t *testing.T) {
			warmReg, coldReg := obs.NewRegistry(), obs.NewRegistry()
			warm, err := Solve(loadILPFixture(t, name), &Options{Recorder: warmReg})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Solve(loadILPFixture(t, name), &Options{Recorder: coldReg, NoWarm: true})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != lp.StatusOptimal || cold.Status != lp.StatusOptimal {
				t.Fatalf("status warm=%v cold=%v", warm.Status, cold.Status)
			}
			if math.Abs(warm.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
				t.Errorf("objectives differ: warm %.12g cold %.12g", warm.Objective, cold.Objective)
			}
			for _, sol := range []*Solution{warm, cold} {
				if err := lp.CheckCertificate(sol.Cert, 0); err != nil {
					t.Errorf("certificate rejected: %v", err)
				}
			}
			ws := warmReg.Snapshot().Counters
			cs := coldReg.Snapshot().Counters
			if ws["lp.warm_starts"] == 0 {
				t.Error("warm run recorded no lp.warm_starts (fixture must branch)")
			}
			if cs["lp.warm_starts"] != 0 {
				t.Errorf("cold run recorded %d lp.warm_starts, want 0", cs["lp.warm_starts"])
			}
			if ws["lp.pivots"] > cs["lp.pivots"] {
				t.Errorf("warm run used more pivots (%d) than cold (%d)", ws["lp.pivots"], cs["lp.pivots"])
			}
		})
	}
}

// TestIncumbentObjectiveMatchesReturnedPoint is the regression test for the
// certify mismatch: Solve used to report the relaxation's objective at the
// pre-rounding point while returning the rounded X, so Cert.Primal described
// a point the caller never received. The invariant now is exact:
// Objective == m.ObjValue(X) for the returned (rounded-integral) X.
func TestIncumbentObjectiveMatchesReturnedPoint(t *testing.T) {
	m := loadILPFixture(t, "bound_tighten.json")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	for j, v := range sol.X {
		if m.IsInteger(lp.Var(j)) && v != math.Round(v) {
			t.Fatalf("X[%d] = %g not exactly integral", j, v)
		}
	}
	if got, want := sol.Objective, m.ObjValue(sol.X); got != want {
		t.Errorf("Objective %.17g != ObjValue(X) %.17g", got, want)
	}
	if sol.Cert == nil {
		t.Fatal("no certificate")
	}
	if sol.Cert.Primal != sol.Objective {
		t.Errorf("Cert.Primal %.17g != Objective %.17g", sol.Cert.Primal, sol.Objective)
	}
	if err := lp.CheckCertificate(sol.Cert, 0); err != nil {
		t.Errorf("certificate rejected: %v (%+v)", err, sol.Cert)
	}
}

// TestMIPOptionsWithDefaultsClampsNegatives pins the explicit-clamp rule:
// negative budgets and tolerances mean "unset", never "zero budget".
func TestMIPOptionsWithDefaultsClampsNegatives(t *testing.T) {
	neg := &Options{MaxNodes: -5, IntTol: -1, Gap: -0.5}
	v := neg.withDefaults()
	if v.MaxNodes != 200000 {
		t.Errorf("MaxNodes = %d, want default 200000", v.MaxNodes)
	}
	if v.IntTol != 1e-6 {
		t.Errorf("IntTol = %g, want default 1e-6", v.IntTol)
	}
	if v.Gap != 0 {
		t.Errorf("Gap = %g, want default 0", v.Gap)
	}
	// A solve under hostile options must still terminate at the optimum.
	sol, err := Solve(loadILPFixture(t, "knapsack.json"), neg)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status %v under clamped options", sol.Status)
	}
}
