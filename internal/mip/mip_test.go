package mip

import (
	"math"
	"math/rand"
	"testing"

	"github.com/arrow-te/arrow/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: values {60,100,120}, weights {10,20,30}, cap 50.
	// Optimum = 220 (items 2 and 3).
	m := lp.NewModel("knapsack")
	m.SetMaximize(true)
	v := []float64{60, 100, 120}
	w := []float64{10, 20, 30}
	vars := make([]lp.Var, 3)
	var cap lp.Expr
	for i := range vars {
		vars[i] = m.AddBinVar(v[i], "item")
		cap = cap.Plus(w[i], vars[i])
	}
	m.AddConstr(cap, lp.LE, 50, "capacity")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective-220) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 220", sol.Status, sol.Objective)
	}
	if sol.X[vars[0]] != 0 || sol.X[vars[1]] != 1 || sol.X[vars[2]] != 1 {
		t.Fatalf("selection %v", sol.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x + y st 2x + y <= 5.5, x + 3y <= 7.7, x,y integer >= 0.
	// LP optimum fractional; ILP optimum: enumerate: best integral = 4
	// (e.g. x=2,y=1: 2*2+1=5<=5.5, 2+3=5<=7.7 -> obj 3; x=1,y=2: 4<=5.5,7<=7.7 obj 3;
	//  x=2,y=1 obj 3; x=0,y=2 obj 2; x=2,y=0 obj 2; x=1,y=1 obj 2... recheck x=2,y=1=3)
	m := lp.NewModel("round")
	m.SetMaximize(true)
	x := m.AddIntVar(0, lp.Inf, 1, "x")
	y := m.AddIntVar(0, lp.Inf, 1, "y")
	m.AddConstr(lp.Expr{}.Plus(2, x).Plus(1, y), lp.LE, 5.5, "c1")
	m.AddConstr(lp.Expr{}.Plus(1, x).Plus(3, y), lp.LE, 7.7, "c2")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// brute force
	best := 0.0
	for xi := 0; xi <= 3; xi++ {
		for yi := 0; yi <= 8; yi++ {
			if 2*float64(xi)+float64(yi) <= 5.5 && float64(xi)+3*float64(yi) <= 7.7 {
				if o := float64(xi + yi); o > best {
					best = o
				}
			}
		}
	}
	if math.Abs(sol.Objective-best) > 1e-6 {
		t.Fatalf("obj %g want %g", sol.Objective, best)
	}
}

func TestPureLPPassthrough(t *testing.T) {
	m := lp.NewModel("lp-only")
	m.SetMaximize(true)
	x := m.AddVar(0, 2.5, 1, "x")
	_ = x
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective-2.5) > 1e-9 {
		t.Fatalf("%v %g", sol.Status, sol.Objective)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	m := lp.NewModel("infeasible")
	x := m.AddIntVar(0, 10, 1, "x")
	// 2x == 3 has no integer solution.
	m.AddConstr(lp.Expr{}.Plus(2, x), lp.EQ, 3, "odd")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusInfeasible {
		t.Fatalf("status %v", sol.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2a + b with a integer in [0,3], b continuous in [0, 1.5],
	// a + b <= 3.2 -> a=3, b=0.2, obj 6.2.
	m := lp.NewModel("mixed")
	m.SetMaximize(true)
	a := m.AddIntVar(0, 3, 2, "a")
	b := m.AddVar(0, 1.5, 1, "b")
	m.AddConstr(lp.Expr{}.Plus(1, a).Plus(1, b), lp.LE, 3.2, "cap")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-6.2) > 1e-6 {
		t.Fatalf("obj %g", sol.Objective)
	}
	if sol.X[a] != 3 {
		t.Fatalf("a=%g", sol.X[a])
	}
}

func TestRandomMIPAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(3)
		m := lp.NewModel("rand-mip")
		m.SetMaximize(true)
		vars := make([]lp.Var, n)
		hi := make([]int, n)
		for j := range vars {
			hi[j] = 1 + rng.Intn(4)
			vars[j] = m.AddIntVar(0, float64(hi[j]), float64(rng.Intn(9)-2), "v")
		}
		rows := 1 + rng.Intn(3)
		type rowRec struct {
			a   []float64
			rhs float64
		}
		var recs []rowRec
		for i := 0; i < rows; i++ {
			a := make([]float64, n)
			var e lp.Expr
			for j := range vars {
				a[j] = float64(rng.Intn(7) - 2)
				e = e.Plus(a[j], vars[j])
			}
			rhs := float64(rng.Intn(15))
			m.AddConstr(e, lp.LE, rhs, "r")
			recs = append(recs, rowRec{a, rhs})
		}
		// Brute force over the integer box.
		best, found := math.Inf(-1), false
		var walk func(j int, x []int)
		walk = func(j int, x []int) {
			if j == n {
				for _, r := range recs {
					s := 0.0
					for k := range x {
						s += r.a[k] * float64(x[k])
					}
					if s > r.rhs+1e-9 {
						return
					}
				}
				o := 0.0
				for k := range x {
					o += m.Obj(vars[k]) * float64(x[k])
				}
				if o > best {
					best = o
				}
				found = true
				return
			}
			for v := 0; v <= hi[j]; v++ {
				x[j] = v
				walk(j+1, x)
			}
		}
		walk(0, make([]int, n))

		sol, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !found {
			if sol.Status != lp.StatusInfeasible {
				t.Fatalf("trial %d: want infeasible, got %v", trial, sol.Status)
			}
			continue
		}
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("trial %d: status %v (brute force %g)", trial, sol.Status, best)
		}
		if math.Abs(sol.Objective-best) > 1e-6*(1+math.Abs(best)) {
			t.Fatalf("trial %d: obj %g want %g", trial, sol.Objective, best)
		}
	}
}

func TestMaxNodesTruncation(t *testing.T) {
	// A knapsack big enough to need several nodes; with MaxNodes=1 the
	// solver cannot finish and must report the iteration limit.
	m := lp.NewModel("truncate")
	m.SetMaximize(true)
	var cap lp.Expr
	for i := 0; i < 4; i++ {
		v := m.AddBinVar(10, "item")
		cap = cap.Plus(4, v)
	}
	m.AddConstr(cap, lp.LE, 10, "capacity") // LP root takes 2.5 items: fractional
	sol, err := Solve(m, &Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusIterLimit {
		t.Fatalf("status %v, want iteration-limit", sol.Status)
	}
	// With a generous budget it solves.
	sol2, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != lp.StatusOptimal {
		t.Fatalf("status %v", sol2.Status)
	}
}

func TestUnboundedMIP(t *testing.T) {
	m := lp.NewModel("unbounded-mip")
	m.SetMaximize(true)
	m.AddIntVar(0, lp.Inf, 1, "x")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusUnbounded {
		t.Fatalf("status %v", sol.Status)
	}
}

func TestBoundReporting(t *testing.T) {
	m := lp.NewModel("bound")
	m.SetMaximize(true)
	x := m.AddIntVar(0, 5, 3, "x")
	m.AddConstr(lp.Expr{}.Plus(2, x), lp.LE, 7, "cap")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal || sol.Objective != 9 { // x=3
		t.Fatalf("%v obj %g", sol.Status, sol.Objective)
	}
	if sol.Bound != sol.Objective {
		t.Fatalf("bound %g != objective %g at optimality", sol.Bound, sol.Objective)
	}
}
