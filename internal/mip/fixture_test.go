package mip

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
)

// ilpFixture is the testdata JSON schema for small ILP instances: enough to
// rebuild an lp.Model without hand-writing model code in every test.
type ilpFixture struct {
	Name     string `json:"name"`
	Maximize bool   `json:"maximize"`
	Vars     []struct {
		Name string  `json:"name"`
		LB   float64 `json:"lb"`
		UB   float64 `json:"ub"`
		Obj  float64 `json:"obj"`
		Int  bool    `json:"int"`
	} `json:"vars"`
	Constrs []struct {
		Name  string       `json:"name"`
		Sense string       `json:"sense"`
		RHS   float64      `json:"rhs"`
		Terms [][2]float64 `json:"terms"` // [var index, coefficient]
	} `json:"constrs"`
}

func loadILPFixture(t *testing.T, name string) *lp.Model {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	var fx ilpFixture
	if err := json.Unmarshal(data, &fx); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	m := lp.NewModel(fx.Name)
	m.SetMaximize(fx.Maximize)
	vars := make([]lp.Var, len(fx.Vars))
	for i, v := range fx.Vars {
		if v.Int {
			vars[i] = m.AddIntVar(v.LB, v.UB, v.Obj, v.Name)
		} else {
			vars[i] = m.AddVar(v.LB, v.UB, v.Obj, v.Name)
		}
	}
	for _, c := range fx.Constrs {
		var e lp.Expr
		for _, term := range c.Terms {
			e = e.Plus(term[1], vars[int(term[0])])
		}
		var sense lp.Sense
		switch c.Sense {
		case "<=":
			sense = lp.LE
		case ">=":
			sense = lp.GE
		case "==":
			sense = lp.EQ
		default:
			t.Fatalf("fixture %s: unknown sense %q", name, c.Sense)
		}
		m.AddConstr(e, sense, c.RHS, c.Name)
	}
	return m
}

// TestRecorderCountsBranchAndBound drives the branch-and-bound recorder
// path with the knapsack fixture: the committed BENCH snapshot carries all
// mip.* counters at zero because the bench pipeline never branches, so this
// test is the proof the recorder seam actually works when the search runs.
func TestRecorderCountsBranchAndBound(t *testing.T) {
	m := loadILPFixture(t, "knapsack.json")
	reg := obs.NewRegistry()
	sol, err := Solve(m, &Options{Recorder: reg})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	for _, v := range sol.X {
		if math.Abs(v-math.Round(v)) > 1e-9 {
			t.Fatalf("non-integral solution %v", sol.X)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["mip.solves"]; got != 1 {
		t.Errorf("mip.solves = %d, want 1", got)
	}
	if got := snap.Counters["mip.nodes"]; got < 2 {
		t.Errorf("mip.nodes = %d, want >= 2 (fixture must force branching)", got)
	}
	if got := snap.Counters["mip.incumbents"]; got < 1 {
		t.Errorf("mip.incumbents = %d, want >= 1", got)
	}
	// The node relaxations flow through the forwarded LP recorder too.
	if got := snap.Counters["lp.solves"]; got < 2 {
		t.Errorf("lp.solves = %d, want >= 2", got)
	}

	// The solve must carry a clean branch-and-bound certificate: bound
	// equals incumbent at proven optimality and the incumbent is feasible.
	if sol.Cert == nil {
		t.Fatal("no certificate on optimal MILP solution")
	}
	if err := lp.CheckCertificate(sol.Cert, 0); err != nil {
		t.Errorf("certificate rejected: %v (%+v)", err, sol.Cert)
	}
	if sol.Cert.Primal != sol.Objective || sol.Cert.Dual != sol.Bound {
		t.Errorf("certificate (%g, %g) disagrees with solution (%g, %g)",
			sol.Cert.Primal, sol.Cert.Dual, sol.Objective, sol.Bound)
	}
}

// TestRecorderIdenticalResults pins the overhead contract on the MIP layer:
// the search must return byte-identical solutions with and without a
// recorder attached.
func TestRecorderIdenticalResults(t *testing.T) {
	bare, err := Solve(loadILPFixture(t, "knapsack.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Solve(loadILPFixture(t, "knapsack.json"), &Options{Recorder: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Objective != rec.Objective || bare.Nodes != rec.Nodes {
		t.Errorf("recorder changed the search: (%g, %d nodes) vs (%g, %d nodes)",
			bare.Objective, bare.Nodes, rec.Objective, rec.Nodes)
	}
	for i := range bare.X {
		if bare.X[i] != rec.X[i] {
			t.Errorf("X[%d] differs: %g vs %g", i, bare.X[i], rec.X[i])
		}
	}
}
