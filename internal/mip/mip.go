// Package mip solves small mixed-integer linear programs by LP-based branch
// and bound over the internal/lp simplex.
//
// ARROW needs integer programs in three places, all small by design: the
// exact Routing-and-Wavelength-Assignment ILP used to validate the LP
// relaxation (Appendix A.2), the binary LotteryTicket-selection TE
// formulation (Table 9) used as a ground-truth comparator for the two-phase
// LP, and the tiny joint IP/optical formulation (Table 7) whose purpose in
// the paper is to demonstrate intractability at scale.
package mip

import (
	"errors"
	"math"

	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
)

// Options tunes the branch-and-bound search.
type Options struct {
	MaxNodes int     // node budget (default 200000)
	IntTol   float64 // integrality tolerance (default 1e-6)
	Gap      float64 // relative optimality gap for early stop (default 0)
	LP       *lp.Options
	// Recorder receives per-solve metrics (nodes explored/pruned,
	// incumbent updates) and is forwarded to the node LP relaxations.
	// Counters accumulate locally and flush once per Solve; a nil Recorder
	// costs nothing and never changes the search.
	Recorder obs.Recorder
	// NoWarm disables warm-starting child node relaxations from the parent
	// node's final basis. Warm starts never change which solution is found
	// (the warm solver reaches the same optimum); the switch exists for A/B
	// pivot-count comparison.
	NoWarm bool
}

func (o *Options) withDefaults() Options {
	v := Options{MaxNodes: 200000, IntTol: 1e-6}
	if o == nil {
		return v
	}
	// Non-positive values are explicitly clamped to the defaults: a negative
	// node budget or tolerance is treated as "unset", never as "zero budget".
	if o.MaxNodes > 0 {
		v.MaxNodes = o.MaxNodes
	}
	if o.IntTol > 0 {
		v.IntTol = o.IntTol
	}
	if o.Gap > 0 {
		v.Gap = o.Gap
	}
	v.LP = o.LP
	v.Recorder = o.Recorder
	v.NoWarm = o.NoWarm
	return v
}

// lpOptions returns the options for node relaxations, forwarding the
// recorder into the LP layer when one is attached.
func (o Options) lpOptions() *lp.Options {
	if o.Recorder == nil {
		return o.LP
	}
	var v lp.Options
	if o.LP != nil {
		v = *o.LP
	}
	v.Recorder = o.Recorder
	return &v
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    lp.Status
	Objective float64
	X         []float64
	Nodes     int
	// Bound is the best proven dual bound; equal to Objective at optimality.
	Bound float64
	// Cert is the branch-and-bound optimality certificate: incumbent vs
	// proven bound plus the incumbent's feasibility residual. Populated
	// whenever an incumbent exists; the node LP relaxations additionally
	// carry their own lp.Certificate internally.
	Cert *lp.Certificate
}

// certify builds the MILP-level certificate for m's solution: Primal is the
// incumbent objective, Dual the best proven bound, Gap their relative
// difference (zero at proven optimality), and PrimalInf the incumbent's
// worst constraint/bound/integrality violation on the original model.
func certify(m *lp.Model, s *Solution) *lp.Certificate {
	c := &lp.Certificate{
		Primal: s.Objective,
		Dual:   s.Bound,
		Gap:    math.Abs(s.Objective-s.Bound) / (1 + math.Abs(s.Objective)),
	}
	c.PrimalInf = m.MaxViolation(s.X)
	for j := 0; j < m.NumVars(); j++ {
		if !m.IsInteger(lp.Var(j)) {
			continue
		}
		if v := math.Abs(s.X[j] - math.Round(s.X[j])); v > c.PrimalInf {
			c.PrimalInf = v
		}
	}
	return c
}

// node is one open subproblem: a set of tightened variable bounds, plus the
// parent relaxation's final basis used to warm-start this node's LP. All
// nodes solve against one shared model skeleton (`work`) whose bounds are
// re-patched per node, so a parent basis is always structurally valid for
// its children; only bound changes need repair.
type node struct {
	lb, ub map[lp.Var]float64
	bound  float64 // parent LP relaxation value (in solve sense: minimisation)
	basis  *lp.Basis
}

// Solve runs branch and bound on m. Variables added with AddIntVar or
// AddBinVar are forced integral; everything else stays continuous.
func Solve(m *lp.Model, opts *Options) (*Solution, error) {
	opt := opts.withDefaults()

	intVars := make([]lp.Var, 0)
	for j := 0; j < m.NumVars(); j++ {
		if m.IsInteger(lp.Var(j)) {
			intVars = append(intVars, lp.Var(j))
		}
	}
	lpOpts := opt.lpOptions()
	if len(intVars) == 0 {
		sol, err := lp.Solve(m, lpOpts)
		if err != nil {
			return nil, err
		}
		obs.Add(opt.Recorder, "mip.solves", 1)
		obs.Add(opt.Recorder, "mip.nodes", 1)
		return &Solution{Status: sol.Status, Objective: sol.Objective, X: sol.X, Nodes: 1, Bound: sol.Objective, Cert: sol.Cert}, nil
	}

	// Internally minimise: flip sign for maximisation problems.
	sign := 1.0
	if m.Maximize() {
		sign = -1.0
	}

	work := m.Clone()
	setBounds := func(n *node) {
		for j := 0; j < m.NumVars(); j++ {
			l, u := m.Bounds(lp.Var(j))
			if v, ok := n.lb[lp.Var(j)]; ok && v > l {
				l = v
			}
			if v, ok := n.ub[lp.Var(j)]; ok && v < u {
				u = v
			}
			work.SetBounds(lp.Var(j), l, u)
		}
	}

	best := &Solution{Status: lp.StatusInfeasible}
	bestVal := math.Inf(1) // minimisation incumbent
	open := []*node{{lb: map[lp.Var]float64{}, ub: map[lp.Var]float64{}, bound: math.Inf(-1)}}
	nodes := 0
	sawIterLimit := false
	pruned, incumbents, unhealthy := 0, 0, 0
	defer func() {
		if r := opt.Recorder; r != nil {
			r.Add("mip.solves", 1)
			r.Add("mip.nodes", int64(nodes))
			r.Add("mip.pruned", int64(pruned))
			r.Add("mip.incumbents", int64(incumbents))
			r.Add("mip.unhealthy_nodes", int64(unhealthy))
			r.Observe("mip.nodes_per_solve", float64(nodes))
		}
	}()

	for len(open) > 0 {
		if nodes >= opt.MaxNodes {
			break
		}
		// Best-first: pop the node with the smallest parent bound.
		bi := 0
		for i := 1; i < len(open); i++ {
			if open[i].bound < open[bi].bound {
				bi = i
			}
		}
		cur := open[bi]
		open[bi] = open[len(open)-1]
		open = open[:len(open)-1]
		nodes++

		if cur.bound >= bestVal-1e-12 && !math.IsInf(cur.bound, -1) {
			pruned++
			continue // dominated
		}

		setBounds(cur)
		// Skip nodes with crossed bounds.
		crossed := false
		for j := 0; j < work.NumVars(); j++ {
			if l, u := work.Bounds(lp.Var(j)); l > u {
				crossed = true
				break
			}
		}
		if crossed {
			pruned++
			continue
		}
		var rel *lp.Solution
		var err error
		if opt.NoWarm || cur.basis == nil {
			// Root node (or warm starts disabled): cold solve.
			rel, err = lp.Solve(work, lpOpts)
		} else {
			rel, err = lp.SolveWithBasis(work, cur.basis, lpOpts)
		}
		if err != nil {
			return nil, err
		}
		if rel.Health != nil && len(rel.Health.Anomalies) > 0 {
			// Per-node tally on top of the lp.health.* counters the LP layer
			// already flushed: "how many B&B nodes had an unhealthy
			// relaxation" localises the search region that misbehaved.
			unhealthy++
		}
		switch rel.Status {
		case lp.StatusInfeasible:
			pruned++
			continue
		case lp.StatusUnbounded:
			if nodes == 1 {
				return &Solution{Status: lp.StatusUnbounded, Nodes: nodes}, nil
			}
			pruned++
			continue
		case lp.StatusIterLimit:
			sawIterLimit = true
			pruned++
			continue
		}
		relVal := sign * rel.Objective
		if relVal >= bestVal-1e-9*(1+math.Abs(bestVal)) {
			pruned++
			continue // cannot improve
		}

		// Pick the most fractional integer variable.
		branch, fracDist := lp.Var(-1), -1.0
		for _, v := range intVars {
			x := rel.X[v]
			f := x - math.Floor(x)
			dist := math.Min(f, 1-f)
			if dist > opt.IntTol && dist > fracDist {
				branch, fracDist = v, dist
			}
		}
		if branch < 0 {
			// Integral: new incumbent. The reported objective is evaluated
			// at the *returned* point (integer values rounded exactly), not
			// the relaxation's value at the pre-rounding point, so the
			// certificate's Primal always describes the X handed back.
			if relVal < bestVal {
				bestVal = relVal
				incumbents++
				xr := roundInts(rel.X, intVars)
				best = &Solution{Status: lp.StatusOptimal, Objective: m.ObjValue(xr), X: xr, Nodes: nodes}
			}
			continue
		}

		x := rel.X[branch]
		down := &node{lb: cloneMap(cur.lb), ub: cloneMap(cur.ub), bound: relVal, basis: rel.Basis}
		down.ub[branch] = math.Floor(x)
		up := &node{lb: cloneMap(cur.lb), ub: cloneMap(cur.ub), bound: relVal, basis: rel.Basis}
		up.lb[branch] = math.Ceil(x)
		open = append(open, down, up)
	}

	if best.Status != lp.StatusOptimal {
		if nodes >= opt.MaxNodes || sawIterLimit {
			return &Solution{Status: lp.StatusIterLimit, Nodes: nodes}, nil
		}
		return &Solution{Status: lp.StatusInfeasible, Nodes: nodes}, nil
	}
	best.Nodes = nodes
	// The proven bound is the incumbent's LP relaxation value; with rounded
	// integer values the returned point's objective can differ from it by
	// O(IntTol), which the certificate reports as a (tiny) gap.
	best.Bound = sign * bestVal
	if len(open) > 0 {
		// Search truncated: report the remaining bound honestly.
		rem := math.Inf(1)
		for _, n := range open {
			if n.bound < rem {
				rem = n.bound
			}
		}
		if rem < bestVal {
			best.Bound = sign * rem
		}
	}
	// Certify against the ORIGINAL model m, not the bound-tightened work
	// clone: branching bounds are search artifacts that only ever tighten
	// within m's bounds, so the incumbent is feasible for m and the
	// certificate must describe the problem the caller posed.
	best.Cert = certify(m, best)
	if r := opt.Recorder; r != nil {
		r.Observe("mip.gap", best.Cert.Gap)
	}
	return best, nil
}

func cloneMap(m map[lp.Var]float64) map[lp.Var]float64 {
	c := make(map[lp.Var]float64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func roundInts(x []float64, intVars []lp.Var) []float64 {
	out := append([]float64(nil), x...)
	for _, v := range intVars {
		out[v] = math.Round(out[v])
	}
	return out
}

// ErrNoIncumbent is reported when branch and bound exhausts its node budget
// without finding any integral solution.
var ErrNoIncumbent = errors.New("mip: node budget exhausted without incumbent")
