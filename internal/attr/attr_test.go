package attr

import (
	"math"
	"reflect"
	"testing"

	"github.com/arrow-te/arrow/internal/availability"
	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/ticket"
)

// fig7 is the paper's Fig. 7 instance: two parallel IP links carrying two
// flows, one both-links failure scenario with three LotteryTickets.
func fig7() (*te.Network, []te.RestorableScenario) {
	n := &te.Network{
		LinkCap: []float64{400, 800},
		Flows:   []te.Flow{{Src: 0, Dst: 1, Demand: 100}, {Src: 0, Dst: 1, Demand: 400}},
		Tunnels: [][]te.Tunnel{
			{{Links: []int{0}}},
			{{Links: []int{1}}},
		},
	}
	scs := []te.RestorableScenario{{
		FailureScenario: te.FailureScenario{Prob: 0.01, FailedLinks: []int{0, 1}},
		TicketLinks:     []int{0, 1},
		Tickets: []ticket.Ticket{
			{Waves: []int{2, 3}, Gbps: []float64{200, 300}},
			{Waves: []int{1, 4}, Gbps: []float64{100, 400}},
			{Waves: []int{3, 2}, Gbps: []float64{300, 200}},
		},
	}}
	return n, scs
}

// solveFig7 runs ARROW with sensitivity capture and builds the evaluation
// scenarios from the plan's restored capacities.
func solveFig7(t *testing.T) (*te.Network, *te.Allocation, []availability.ScenarioEval) {
	t.Helper()
	n, scs := fig7()
	al, err := te.Arrow(n, scs, &te.ArrowOptions{CaptureSensitivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if al.Sens == nil {
		t.Fatal("CaptureSensitivity left Alloc.Sens nil")
	}
	evScs := []availability.ScenarioEval{{
		Prob: scs[0].Prob, Failed: scs[0].FailedLinks, Restored: al.RestoredGbps[0],
	}}
	return n, al, evScs
}

func TestDecompositionIdentity(t *testing.T) {
	n, al, scs := solveFig7(t)
	reg := obs.NewRegistry()
	led := ledger.New()
	rep, err := Run(Input{Net: n, Alloc: al, Scenarios: scs}, &Options{Recorder: reg, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}

	// The headline number must match the evaluator's, and the decomposition
	// must reproduce it as an identity.
	ev := &availability.Evaluator{Net: n, Alloc: al}
	if got, want := rep.Availability, ev.Availability(scs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("availability %g, evaluator says %g", got, want)
	}
	if rep.IdentityGap > IdentityTol {
		t.Fatalf("identity gap %g exceeds %g", rep.IdentityGap, IdentityTol)
	}
	if rep.IdentityViolations != 0 {
		t.Fatalf("identity violations %d, want 0", rep.IdentityViolations)
	}
	outer := rep.Healthy.Loss
	for _, sl := range rep.Scenarios {
		outer += sl.Loss
		if math.Abs(sl.Loss-sl.FlowLossSum) > IdentityTol {
			t.Fatalf("scenario %d flow sum %g != loss %g", sl.Scenario, sl.FlowLossSum, sl.Loss)
		}
	}
	if math.Abs(outer-rep.Loss) > IdentityTol {
		t.Fatalf("scenario contributions sum to %g, headline loss %g", outer, rep.Loss)
	}

	snap := reg.Snapshot()
	if snap.Counters["attr.runs"] != 1 || snap.Counters["attr.identity_violations"] != 0 {
		t.Fatalf("counters %v", snap.Counters)
	}
	kinds := map[ledger.Kind]int{}
	for _, e := range led.Events() {
		kinds[e.Kind]++
	}
	if kinds[ledger.KindAttribution] == 0 || kinds[ledger.KindSensitivity] == 0 || kinds[ledger.KindWhatIf] == 0 {
		t.Fatalf("ledger kinds %v, want attribution+sensitivity+whatif", kinds)
	}
}

func TestSensitivitiesMatchFiniteDifferences(t *testing.T) {
	n, al, scs := solveFig7(t)
	rep, err := Run(Input{Net: n, Alloc: al, Scenarios: scs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sensitivities) == 0 {
		t.Fatal("no sensitivities harvested")
	}
	for _, s := range rep.Sensitivities {
		if !s.Validated {
			t.Errorf("row %s: dual %g outside FD bracket [%g, %g]", s.Row, s.Dual, s.FDLow, s.FDHigh)
		}
		if s.Dual < s.FDLow-1e-6 || s.Dual > s.FDHigh+1e-6 {
			t.Errorf("row %s: dual %g vs bracket [%g, %g] beyond 1e-6", s.Row, s.Dual, s.FDLow, s.FDHigh)
		}
	}
}

func TestProbesRankedAndSideEffectFree(t *testing.T) {
	n, al, scs := solveFig7(t)
	// The attribution pass perturbs the captured model's RHS values; it must
	// restore every one, so a second run from the same handle is identical.
	b0 := append([]float64(nil), al.B...)
	rep1, err := Run(Input{Net: n, Alloc: al, Scenarios: scs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(Input{Net: n, Alloc: al, Scenarios: scs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatal("back-to-back attribution runs differ: RHS perturbation leaked")
	}
	if !reflect.DeepEqual(al.B, b0) {
		t.Fatal("attribution mutated the allocation")
	}
	if len(rep1.Probes) == 0 {
		t.Fatal("no probes evaluated")
	}
	for i := 1; i < len(rep1.Probes); i++ {
		if rep1.Probes[i-1].GainPerGbps < rep1.Probes[i].GainPerGbps {
			t.Fatalf("probes not sorted by gain/Gbps at %d: %v", i, rep1.Probes)
		}
	}
	for _, p := range rep1.Probes {
		if p.Kind == "add_capacity" && p.CapacityGbps <= 0 {
			t.Errorf("capacity probe %q spends %g Gbps", p.Label, p.CapacityGbps)
		}
	}
}

// TestCaptureDoesNotChangeAllocation pins the determinism contract at the
// te layer: solving with CaptureSensitivity on and off yields numerically
// identical allocations.
func TestCaptureDoesNotChangeAllocation(t *testing.T) {
	n, scs := fig7()
	plain, err := te.Arrow(n, scs, nil)
	if err != nil {
		t.Fatal(err)
	}
	captured, err := te.Arrow(n, scs, &te.ArrowOptions{CaptureSensitivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.B, captured.B) || !reflect.DeepEqual(plain.A, captured.A) ||
		!reflect.DeepEqual(plain.WinningTicket, captured.WinningTicket) ||
		!reflect.DeepEqual(plain.RestoredGbps, captured.RestoredGbps) {
		t.Fatal("CaptureSensitivity changed the allocation")
	}
	if plain.Sens != nil {
		t.Fatal("plain solve captured a sensitivity handle")
	}
}
