// Package attr is ARROW's availability-attribution engine: it explains the
// headline §6.1 availability number instead of just computing it. Three
// passes run after the TE solve, strictly sequentially and read-only on the
// pipeline's artifacts:
//
//   - Loss decomposition splits total availability loss exactly into
//     per-scenario contributions (probability weight x unrestored fraction)
//     and, within a scenario, per-flow unmet demand. The decomposition is
//     an identity, not an estimate: contributions sum to 1 - availability
//     within float rounding, and the attr.identity_violations counter trips
//     whenever the residual exceeds 1e-9.
//   - Shadow-price sensitivities harvest the duals of the final Phase II
//     basis (te.SensitivityHandle): the marginal objective value, in Gbps
//     of admitted throughput per Gbps of capacity, of each healthy IP-link
//     capacity row (cap_e) and each restored-ticket capacity row
//     (p2cap_e_q, constraint (11)). Each reported dual is validated against
//     two one-sided finite-difference warm re-solves (SetRHS +
//     SolveWithBasis on the same basis): the optimal value of an LP is
//     concave in a LE row's right-hand side, so any optimal dual must lie
//     between the right and left difference quotients.
//   - What-if probes warm-re-solve bounded top-k perturbations ("+1
//     wavelength on link e over fiber f") and score analytic ones ("drop
//     scenario q"), ranking them by availability gained.
//
// Determinism contract (PR 2/3/7): attribution never changes pipeline
// results. It runs after the solve on one goroutine, iterates in index
// order only, restores every RHS it perturbs, and the solved model is
// never reused by the pipeline. Results are byte-identical with
// attribution on or off at any worker count.
package attr

import (
	"fmt"
	"math"
	"sort"

	"github.com/arrow-te/arrow/internal/availability"
	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/te"
)

// SchemaVersion identifies the attribution report JSON layout.
const SchemaVersion = 1

// IdentityTol is the decomposition-identity tolerance: residuals above it
// count as attr.identity_violations. Float rounding across a few hundred
// contributions stays many orders of magnitude below it.
const IdentityTol = 1e-9

// Options tunes the attribution passes. The zero value is usable.
type Options struct {
	// TopFlows bounds the flow-level contributions RETAINED per scenario in
	// the report and ledger (the identity is always checked over the full
	// per-flow sum before truncation). Default 5.
	TopFlows int
	// TopSensitivities bounds the capacity rows harvested, FD-validated and
	// reported, ranked by |dual| (ties broken by row order). Default 8.
	TopSensitivities int
	// TopProbes bounds the "+1 wavelength" warm re-solve probes (the
	// analytic drop-scenario probes are cheap and always evaluated).
	// Default 4.
	TopProbes int
	// FDTol is the allowed slack when checking a dual against its
	// finite-difference bracket. Default 1e-6.
	FDTol float64
	// LinkFibers maps IP link -> underlying fiber IDs (topo.LinkFibers);
	// optional. With it, sensitivities aggregate into per-fiber shadow
	// prices and probes name the fiber a wavelength would ride.
	LinkFibers [][]int
	// WaveGbps is the per-link "+1 wavelength" capacity granularity for
	// probes; optional. Links without an entry (or without the slice) probe
	// at 1 Gbps.
	WaveGbps []float64
	// Recorder receives the attr.* counters; nil costs nothing.
	Recorder obs.Recorder
	// Ledger receives typed attribution/sensitivity/whatif events; nil
	// costs nothing.
	Ledger *ledger.Ledger
}

func (o *Options) topFlows() int {
	if o == nil || o.TopFlows <= 0 {
		return 5
	}
	return o.TopFlows
}

func (o *Options) topSens() int {
	if o == nil || o.TopSensitivities <= 0 {
		return 8
	}
	return o.TopSensitivities
}

func (o *Options) topProbes() int {
	if o == nil || o.TopProbes <= 0 {
		return 4
	}
	return o.TopProbes
}

func (o *Options) fdTol() float64 {
	if o == nil || o.FDTol <= 0 {
		return 1e-6
	}
	return o.FDTol
}

func (o *Options) recorder() obs.Recorder {
	if o == nil {
		return nil
	}
	return o.Recorder
}

func (o *Options) ledger() *ledger.Ledger {
	if o == nil {
		return nil
	}
	return o.Ledger
}

// Input is the pipeline state one attribution pass reads.
type Input struct {
	Net       *te.Network
	Alloc     *te.Allocation
	Scenarios []availability.ScenarioEval
}

// FlowLoss is one flow's contribution to a scenario's availability loss.
type FlowLoss struct {
	Flow          int     `json:"flow"`
	DemandGbps    float64 `json:"demand_gbps"`
	DeliveredGbps float64 `json:"delivered_gbps"`
	UnmetGbps     float64 `json:"unmet_gbps"`
	// Loss is this flow's share of total availability loss:
	// weight * unmet / totalDemand.
	Loss float64 `json:"loss"`
}

// ScenarioLoss is one scenario's exact contribution to availability loss.
type ScenarioLoss struct {
	// Scenario is the pipeline scenario index (-1 for the healthy state).
	Scenario int     `json:"scenario"`
	Prob     float64 `json:"prob"`
	// Weight is the scenario's share of the covered probability mass.
	Weight    float64 `json:"weight"`
	Delivered float64 `json:"delivered"` // delivered demand fraction
	UnmetGbps float64 `json:"unmet_gbps"`
	// Loss = Weight * (1 - Delivered): this scenario's availability regret.
	Loss float64 `json:"loss"`
	// FlowLossSum is the untruncated per-flow loss total (the inner
	// identity checks it against Loss); Flows retains only the TopFlows
	// largest contributors.
	FlowLossSum float64    `json:"flow_loss_sum"`
	Flows       []FlowLoss `json:"flows,omitempty"`
}

// Sensitivity is one capacity row's shadow price with its FD validation.
type Sensitivity struct {
	Row  string `json:"row"`
	Link int    `json:"link"`
	// Scenario is -1 for healthy cap_e rows, else the restored-ticket row's
	// scenario.
	Scenario int `json:"scenario"`
	// Fiber is the first underlying fiber of the link (-1 without a
	// LinkFibers mapping).
	Fiber int     `json:"fiber"`
	RHS   float64 `json:"rhs"`
	// Dual is the marginal objective value: Gbps of admitted throughput per
	// extra Gbps of capacity on this row.
	Dual float64 `json:"dual"`
	// FDLow / FDHigh bracket the dual: the right and left one-sided
	// difference quotients of the optimal value in the row's RHS. FDHigh is
	// +Inf when the RHS is 0 (no feasible left step).
	FDLow     float64 `json:"fd_low"`
	FDHigh    float64 `json:"fd_high"`
	Validated bool    `json:"validated"`
}

// FiberPrice aggregates healthy-link shadow prices over one fiber span:
// the marginal value of capacity added to every IP link riding the fiber.
type FiberPrice struct {
	Fiber int     `json:"fiber"`
	Links []int   `json:"links"`
	Price float64 `json:"price"`
}

// Probe is one evaluated what-if perturbation.
type Probe struct {
	// Kind is "add_capacity" (+WaveGbps on one link, warm re-solved) or
	// "drop_scenario" (scenario hardened away, analytic).
	Kind  string `json:"kind"`
	Label string `json:"label"`
	Link  int    `json:"link"`     // -1 for drop_scenario
	Fiber int    `json:"fiber"`    // -1 when unmapped
	Scen  int    `json:"scenario"` // -1 for add_capacity
	// CapacityGbps is the capacity the probe spends (0 for analytic drops).
	CapacityGbps     float64 `json:"capacity_gbps"`
	AvailabilityGain float64 `json:"availability_gain"`
	// GainPerGbps is AvailabilityGain / CapacityGbps for capacity probes
	// and equals AvailabilityGain for zero-capacity drops.
	GainPerGbps float64 `json:"gain_per_gbps"`
}

// Report is one attribution pass's full output (the /attribution endpoint
// payload and the arrow-report section source).
type Report struct {
	SchemaVersion   int     `json:"schema_version"`
	Availability    float64 `json:"availability"`
	Loss            float64 `json:"loss"`
	Mass            float64 `json:"mass"`
	TotalDemandGbps float64 `json:"total_demand_gbps"`
	// Healthy is the healthy state's contribution (unmet demand the TE
	// never admitted); Scenarios are the enumerated cuts in pipeline order.
	Healthy   ScenarioLoss   `json:"healthy"`
	Scenarios []ScenarioLoss `json:"scenarios"`
	// IdentityGap is the worst decomposition residual observed (outer:
	// scenario contributions vs total loss; inner: flow sums vs scenario
	// contributions). IdentityViolations counts residuals above 1e-9.
	IdentityGap        float64 `json:"identity_gap"`
	IdentityViolations int     `json:"identity_violations"`

	Sensitivities []Sensitivity `json:"sensitivities,omitempty"`
	FiberPrices   []FiberPrice  `json:"fiber_prices,omitempty"`
	Probes        []Probe       `json:"probes,omitempty"`
}

// Run executes the attribution passes over one solved pipeline state.
// Sensitivities and probes require in.Alloc.Sens (a Phase II solved with
// te.ArrowOptions.CaptureSensitivity); without it only the decomposition
// runs.
func Run(in Input, opts *Options) (*Report, error) {
	if in.Net == nil || in.Alloc == nil {
		return nil, fmt.Errorf("attr: nil network or allocation")
	}
	rep := &Report{SchemaVersion: SchemaVersion}
	decompose(in, opts, rep)
	if h := in.Alloc.Sens; h != nil && h.Basis != nil && len(h.Duals) > 0 {
		if err := sensitivities(in, h, opts, rep); err != nil {
			return nil, err
		}
		if err := probes(in, h, opts, rep); err != nil {
			return nil, err
		}
	}
	emit(opts, rep)
	return rep, nil
}

// decompose splits 1 - availability into per-scenario and per-flow
// contributions, mirroring availability.Evaluator.Availability term by
// term so the identity holds to float rounding.
func decompose(in Input, opts *Options, rep *Report) {
	ev := &availability.Evaluator{Net: in.Net, Alloc: in.Alloc}
	scs := in.Scenarios
	totalDemand := in.Net.TotalDemand()
	healthyProb := 1.0
	for i := range scs {
		healthyProb -= scs[i].Prob
	}
	if healthyProb < 0 {
		healthyProb = 0
	}
	mass := healthyProb
	for i := range scs {
		mass += scs[i].Prob
	}
	rep.Mass = mass
	rep.TotalDemandGbps = totalDemand
	rep.Availability = ev.Availability(scs)
	rep.Loss = 1 - rep.Availability
	if mass <= 0 || totalDemand <= 0 {
		// Availability degenerates to 1: nothing to attribute.
		rep.Healthy = ScenarioLoss{Scenario: -1, Prob: healthyProb}
		return
	}

	topFlows := opts.topFlows()
	one := func(idx int, prob float64, sc *availability.ScenarioEval) ScenarioLoss {
		per := ev.DeliveredPerFlow(sc)
		deliveredGbps := 0.0
		for _, d := range per {
			deliveredGbps += d
		}
		weight := prob / mass
		sl := ScenarioLoss{
			Scenario:  idx,
			Prob:      prob,
			Weight:    weight,
			Delivered: deliveredGbps / totalDemand,
			UnmetGbps: totalDemand - deliveredGbps,
		}
		sl.Loss = weight * (1 - sl.Delivered)
		flows := make([]FlowLoss, 0, len(per))
		for f, d := range per {
			demand := in.Net.Flows[f].Demand
			fl := FlowLoss{
				Flow: f, DemandGbps: demand, DeliveredGbps: d,
				UnmetGbps: demand - d,
				Loss:      weight * (demand - d) / totalDemand,
			}
			sl.FlowLossSum += fl.Loss
			if fl.UnmetGbps > 0 {
				flows = append(flows, fl)
			}
		}
		sort.SliceStable(flows, func(a, b int) bool { return flows[a].UnmetGbps > flows[b].UnmetGbps })
		if len(flows) > topFlows {
			flows = flows[:topFlows]
		}
		sl.Flows = flows
		return sl
	}

	rep.Healthy = one(-1, healthyProb, &availability.ScenarioEval{})
	rep.Scenarios = make([]ScenarioLoss, len(scs))
	lossSum := rep.Healthy.Loss
	for i := range scs {
		rep.Scenarios[i] = one(i, scs[i].Prob, &scs[i])
		lossSum += rep.Scenarios[i].Loss
	}

	// Identity audit: outer (scenarios vs headline) and inner (flows vs
	// scenario) residuals.
	gap := math.Abs(rep.Loss - lossSum)
	check := func(sl *ScenarioLoss) {
		if g := math.Abs(sl.Loss - sl.FlowLossSum); g > gap {
			gap = g
		}
	}
	check(&rep.Healthy)
	for i := range rep.Scenarios {
		check(&rep.Scenarios[i])
	}
	rep.IdentityGap = gap
	if gap > IdentityTol {
		rep.IdentityViolations++
	}
}

// sensitivities harvests the top capacity-row duals of the final Phase II
// basis and validates each against its finite-difference bracket.
func sensitivities(in Input, h *te.SensitivityHandle, opts *Options, rep *Report) error {
	type cand struct {
		row  te.CapRow
		dual float64
	}
	cands := make([]cand, 0, len(h.CapRows))
	for _, cr := range h.CapRows {
		if int(cr.Constr) >= len(h.Duals) {
			continue
		}
		cands = append(cands, cand{row: cr, dual: h.Duals[cr.Constr]})
	}
	// Rank by |dual| descending; ties keep row-build order (healthy links
	// ascending, then scenario/link ascending) — fully deterministic.
	sort.SliceStable(cands, func(a, b int) bool {
		return math.Abs(cands[a].dual) > math.Abs(cands[b].dual)
	})
	if top := opts.topSens(); len(cands) > top {
		cands = cands[:top]
	}

	fiberOf := func(link int) int {
		if opts == nil || link < 0 || link >= len(opts.LinkFibers) || len(opts.LinkFibers[link]) == 0 {
			return -1
		}
		return opts.LinkFibers[link][0]
	}

	tol := opts.fdTol()
	for _, c := range cands {
		m, con := h.Model, c.row.Constr
		rhs := m.RHS(con)
		eps := 1e-4 * math.Max(1, math.Abs(rhs))
		s := Sensitivity{
			Row: m.ConstrName(con), Link: c.row.Link, Scenario: c.row.Scenario,
			Fiber: fiberOf(c.row.Link), RHS: rhs, Dual: c.dual,
		}
		// Right derivative: relax the row by eps. The optimal value is
		// concave in a LE row's RHS (max problem), so fdRight <= dual.
		up, err := resolveAt(m, con, rhs+eps, h.Basis)
		if err != nil {
			return err
		}
		s.FDLow = (up - h.Objective) / eps
		// Left derivative: tighten by eps, staying feasible (RHS >= 0 keeps
		// the all-zero point feasible). fdLeft >= dual; a zero RHS has no
		// feasible left step, so only the right side brackets.
		s.FDHigh = math.Inf(1)
		if rhs > 0 {
			leps := math.Min(eps, rhs)
			down, err := resolveAt(m, con, rhs-leps, h.Basis)
			if err != nil {
				return err
			}
			s.FDHigh = (h.Objective - down) / leps
		}
		s.Validated = s.Dual >= s.FDLow-tol && s.Dual <= s.FDHigh+tol
		rep.Sensitivities = append(rep.Sensitivities, s)
	}

	// Per-fiber shadow prices: aggregate HEALTHY link duals over each
	// fiber's riding links (extra capacity on the span lifts them all).
	if opts != nil && len(opts.LinkFibers) > 0 {
		agg := map[int]*FiberPrice{}
		for _, cr := range h.CapRows {
			if cr.Scenario != -1 || int(cr.Constr) >= len(h.Duals) {
				continue
			}
			d := h.Duals[cr.Constr]
			if d == 0 || cr.Link >= len(opts.LinkFibers) {
				continue
			}
			for _, f := range opts.LinkFibers[cr.Link] {
				fp := agg[f]
				if fp == nil {
					fp = &FiberPrice{Fiber: f}
					agg[f] = fp
				}
				fp.Links = append(fp.Links, cr.Link)
				fp.Price += d
			}
		}
		fibers := make([]int, 0, len(agg))
		for f := range agg {
			fibers = append(fibers, f)
		}
		sort.Ints(fibers)
		for _, f := range fibers {
			rep.FiberPrices = append(rep.FiberPrices, *agg[f])
		}
		sort.SliceStable(rep.FiberPrices, func(a, b int) bool {
			return rep.FiberPrices[a].Price > rep.FiberPrices[b].Price
		})
	}
	return nil
}

// resolveAt warm-re-solves the model with one RHS perturbed, restoring it
// before returning. SolveWithBasis never mutates the supplied basis, so
// repeated probes from the same handle are safe.
func resolveAt(m *lp.Model, con lp.Constr, rhs float64, basis *lp.Basis) (float64, error) {
	orig := m.RHS(con)
	m.SetRHS(con, rhs)
	sol, err := lp.SolveWithBasis(m, basis, nil)
	m.SetRHS(con, orig)
	if err != nil {
		return 0, fmt.Errorf("attr: probe re-solve %s: %w", m.ConstrName(con), err)
	}
	if sol.Status != lp.StatusOptimal {
		return 0, fmt.Errorf("attr: probe re-solve %s: status %v", m.ConstrName(con), sol.Status)
	}
	return sol.Objective, nil
}

// probes evaluates the bounded what-if set: "+1 wavelength" warm re-solves
// on the highest-dual healthy links, and analytic drop-scenario gains.
func probes(in Input, h *te.SensitivityHandle, opts *Options, rep *Report) error {
	ev := &availability.Evaluator{Net: in.Net, Alloc: in.Alloc}
	scs := in.Scenarios
	base := ev.Availability(scs)
	totalDemand := in.Net.TotalDemand()
	healthyProb := 1.0
	for i := range scs {
		healthyProb -= scs[i].Prob
	}
	if healthyProb < 0 {
		healthyProb = 0
	}
	mass := healthyProb
	for i := range scs {
		mass += scs[i].Prob
	}
	if mass <= 0 || totalDemand <= 0 {
		return nil
	}

	fiberOf := func(link int) int {
		if opts == nil || link < 0 || link >= len(opts.LinkFibers) || len(opts.LinkFibers[link]) == 0 {
			return -1
		}
		return opts.LinkFibers[link][0]
	}
	waveOf := func(link int) float64 {
		if opts == nil || link < 0 || link >= len(opts.WaveGbps) || opts.WaveGbps[link] <= 0 {
			return 1
		}
		return opts.WaveGbps[link]
	}

	// Capacity probes: top healthy rows by dual, descending (ties keep link
	// order). Zero-dual rows cannot improve the objective — skip them.
	type cand struct {
		row  te.CapRow
		dual float64
	}
	var cands []cand
	for _, cr := range h.CapRows {
		if cr.Scenario != -1 || int(cr.Constr) >= len(h.Duals) {
			continue
		}
		if d := h.Duals[cr.Constr]; d > 0 {
			cands = append(cands, cand{row: cr, dual: d})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].dual > cands[b].dual })
	if top := opts.topProbes(); len(cands) > top {
		cands = cands[:top]
	}
	for _, c := range cands {
		m, con := h.Model, c.row.Constr
		wave := waveOf(c.row.Link)
		orig := m.RHS(con)
		m.SetRHS(con, orig+wave)
		sol, err := lp.SolveWithBasis(m, h.Basis, nil)
		m.SetRHS(con, orig)
		if err != nil {
			return fmt.Errorf("attr: what-if %s: %w", m.ConstrName(con), err)
		}
		if sol.Status != lp.StatusOptimal {
			return fmt.Errorf("attr: what-if %s: status %v", m.ConstrName(con), sol.Status)
		}
		// Evaluate the probe allocation on a network that really has the
		// extra capacity (the evaluator sheds at LinkCap otherwise).
		b, a := h.ExtractAllocation(sol.X)
		n2 := *in.Net
		n2.LinkCap = append([]float64(nil), in.Net.LinkCap...)
		n2.LinkCap[c.row.Link] += wave
		ev2 := &availability.Evaluator{Net: &n2, Alloc: &te.Allocation{B: b, A: a}}
		gain := ev2.Availability(scs) - base
		p := Probe{
			Kind:  "add_capacity",
			Label: fmt.Sprintf("+%.0f Gbps on link %d", wave, c.row.Link),
			Link:  c.row.Link, Fiber: fiberOf(c.row.Link), Scen: -1,
			CapacityGbps: wave, AvailabilityGain: gain,
			GainPerGbps: gain / wave,
		}
		if p.Fiber >= 0 {
			p.Label = fmt.Sprintf("+%.0f Gbps on link %d (fiber %d)", wave, c.row.Link, p.Fiber)
		}
		rep.Probes = append(rep.Probes, p)
	}

	// Drop-scenario probes: hardening scenario q away moves its probability
	// to the healthy state, so the gain is analytic — no re-solve:
	// prob_q * (d_healthy - d_q) / mass.
	dHealthy := ev.Delivered(&availability.ScenarioEval{})
	for i := range scs {
		gain := scs[i].Prob * (dHealthy - ev.Delivered(&scs[i])) / mass
		rep.Probes = append(rep.Probes, Probe{
			Kind:  "drop_scenario",
			Label: fmt.Sprintf("drop scenario %d", i),
			Link:  -1, Fiber: -1, Scen: i,
			AvailabilityGain: gain, GainPerGbps: gain,
		})
	}

	// Rank: biggest availability return per unit capacity first
	// (zero-capacity drops rank by raw gain); deterministic tie-breaks.
	sort.SliceStable(rep.Probes, func(a, b int) bool {
		pa, pb := &rep.Probes[a], &rep.Probes[b]
		if pa.GainPerGbps != pb.GainPerGbps {
			return pa.GainPerGbps > pb.GainPerGbps
		}
		if pa.AvailabilityGain != pb.AvailabilityGain {
			return pa.AvailabilityGain > pb.AvailabilityGain
		}
		return pa.Label < pb.Label
	})
	return nil
}

// emit publishes the finished report to the recorder and ledger. All
// emission happens here, after every pass, in report order — one
// deterministic event stream regardless of how the passes interleaved
// their work.
func emit(opts *Options, rep *Report) {
	if rec := opts.recorder(); rec != nil {
		rec.Add("attr.runs", 1)
		rec.Add("attr.scenarios", int64(len(rep.Scenarios)+1))
		flows := len(rep.Healthy.Flows)
		for i := range rep.Scenarios {
			flows += len(rep.Scenarios[i].Flows)
		}
		rec.Add("attr.flows", int64(flows))
		rec.Add("attr.identity_violations", int64(rep.IdentityViolations))
		rec.Add("attr.sensitivities", int64(len(rep.Sensitivities)))
		fdChecks, fdMiss := 0, 0
		for i := range rep.Sensitivities {
			fdChecks++
			if !rep.Sensitivities[i].Validated {
				fdMiss++
			}
		}
		rec.Add("attr.fd_checks", int64(fdChecks))
		rec.Add("attr.fd_mismatches", int64(fdMiss))
		rec.Add("attr.probes", int64(len(rep.Probes)))
	}
	L := opts.ledger()
	if L == nil {
		return
	}
	emitScenario := func(sl *ScenarioLoss) {
		L.Emit(ledger.Event{
			Kind: ledger.KindAttribution, Scenario: sl.Scenario,
			Prob: sl.Prob, Gbps: sl.UnmetGbps, Fraction: sl.Loss,
			Detail: "scenario",
		})
		for _, fl := range sl.Flows {
			L.Emit(ledger.Event{
				Kind: ledger.KindAttribution, Scenario: sl.Scenario,
				Flow: fl.Flow, Gbps: fl.UnmetGbps, Fraction: fl.Loss,
				Detail: "flow",
			})
		}
	}
	emitScenario(&rep.Healthy)
	for i := range rep.Scenarios {
		emitScenario(&rep.Scenarios[i])
	}
	for i := range rep.Sensitivities {
		s := &rep.Sensitivities[i]
		fdHigh := s.FDHigh
		if math.IsInf(fdHigh, 1) {
			fdHigh = 0 // JSON-safe; FDLow alone brackets a zero-RHS row
		}
		L.Emit(ledger.Event{
			Kind: ledger.KindSensitivity, Scenario: s.Scenario,
			Link: s.Link, Fiber: s.Fiber, Value: s.Dual,
			FDLow: s.FDLow, FDHigh: fdHigh, Detail: s.Row,
		})
	}
	for i := range rep.Probes {
		p := &rep.Probes[i]
		L.Emit(ledger.Event{
			Kind: ledger.KindWhatIf, Scenario: p.Scen,
			Link: p.Link, Fiber: p.Fiber, Gbps: p.CapacityGbps,
			Value: p.AvailabilityGain, Detail: p.Label,
		})
	}
}
