package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/topo"
)

func TestGenerateBasics(t *testing.T) {
	ms := Generate(Options{Sites: 12, Count: 30, TotalGbps: 5000, Seed: 1})
	if len(ms) != 30 {
		t.Fatalf("%d matrices", len(ms))
	}
	for mi, m := range ms {
		if len(m.Flows) != 12*11 {
			t.Fatalf("matrix %d has %d flows", mi, len(m.Flows))
		}
		sum := 0.0
		for _, f := range m.Flows {
			if f.Demand < 0 || f.Src == f.Dst {
				t.Fatalf("bad flow %+v", f)
			}
			sum += f.Demand
		}
		if math.Abs(sum-5000) > 1e-6 {
			t.Fatalf("matrix %d total %g", mi, sum)
		}
	}
}

func TestGenerateDiurnalVariation(t *testing.T) {
	ms := Generate(Options{Sites: 8, Count: 8, TotalGbps: 1000, Seed: 2})
	// Individual flows must vary across epochs (diurnal pattern) even
	// though totals are fixed.
	varies := false
	for fi := range ms[0].Flows {
		if math.Abs(ms[0].Flows[fi].Demand-ms[3].Flows[fi].Demand) > 1e-9 {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("no diurnal variation across epochs")
	}
}

func TestGenerateMaxFlows(t *testing.T) {
	ms := Generate(Options{Sites: 10, Count: 2, MaxFlows: 20, TotalGbps: 1000, Seed: 3})
	for _, m := range ms {
		if len(m.Flows) != 20 {
			t.Fatalf("%d flows, want 20", len(m.Flows))
		}
		sum := 0.0
		for _, f := range m.Flows {
			sum += f.Demand
		}
		if math.Abs(sum-1000) > 1e-6 {
			t.Fatalf("total %g after truncation", sum)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Options{Sites: 6, Count: 3, Seed: 9})
	b := Generate(Options{Sites: 6, Count: 3, Seed: 9})
	for i := range a {
		for j := range a[i].Flows {
			if a[i].Flows[j] != b[i].Flows[j] {
				t.Fatal("same seed produced different matrices")
			}
		}
	}
}

func TestNormalizeToFit(t *testing.T) {
	tp, err := topo.B4(1)
	if err != nil {
		t.Fatal(err)
	}
	ms := Generate(Options{Sites: 12, Count: 1, MaxFlows: 40, TotalGbps: 1e6, Seed: 4})
	n, err := tp.TENetwork(ms[0].Flows, 6)
	if err != nil {
		t.Fatal(err)
	}
	scale, err := NormalizeToFit(n)
	if err != nil {
		t.Fatal(err)
	}
	if scale <= 0 {
		t.Fatalf("scale %g", scale)
	}
	// After normalisation, everything is satisfiable...
	al, err := te.MaxThroughput(n)
	if err != nil {
		t.Fatal(err)
	}
	if thr := al.Throughput(n); math.Abs(thr-1) > 1e-6 {
		t.Fatalf("throughput %g after normalisation", thr)
	}
	// ...and 1% more demand is not.
	n2 := n.Scaled(1.01)
	al2, err := te.MaxThroughput(n2)
	if err != nil {
		t.Fatal(err)
	}
	if thr := al2.Throughput(n2); thr >= 1-1e-9 {
		t.Fatalf("throughput %g at 1.01x, normalisation not tight", thr)
	}
}

func TestMatrixCSVRoundTrip(t *testing.T) {
	m := Generate(Options{Sites: 5, Count: 1, TotalGbps: 500, Seed: 9})[0]
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Flows) != len(m.Flows) {
		t.Fatalf("%d flows back, want %d", len(back.Flows), len(m.Flows))
	}
	for i := range m.Flows {
		if back.Flows[i].Src != m.Flows[i].Src || back.Flows[i].Dst != m.Flows[i].Dst {
			t.Fatalf("flow %d endpoints changed", i)
		}
		if math.Abs(back.Flows[i].Demand-m.Flows[i].Demand) > 1e-9 {
			t.Fatalf("flow %d demand %g vs %g", i, back.Flows[i].Demand, m.Flows[i].Demand)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, in := range []string{"1,2\n", "a,b,c\n", "0,1,-3\n"} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}
