// Package traffic synthesises the demand matrices used in the evaluation.
//
// The paper uses 12 production traffic matrices for the Facebook topology
// and 30 SMORE-generated matrices (fitted to real traffic with diurnal and
// weekly patterns) for B4 and IBM. This package substitutes a gravity model
// with per-site weights modulated by a diurnal/weekly pattern, which is the
// standard synthetic stand-in (and what SMORE itself fits). Matrices are
// deterministic per seed.
package traffic

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"github.com/arrow-te/arrow/internal/te"
)

// Matrix is one traffic matrix: flows with demands, aggregated by
// ingress-egress router pair.
type Matrix struct {
	Flows []te.Flow
	// Epoch is the matrix's position in the diurnal sequence.
	Epoch int
}

// Options configures matrix generation.
type Options struct {
	Sites int
	// Count is how many matrices to generate (diurnal sequence length).
	Count int
	// MaxFlows keeps only the largest flows (0 = all pairs). Production
	// matrices are sparse; this also keeps LP sizes tractable.
	MaxFlows int
	// TotalGbps scales each matrix to this total demand before
	// normalisation (default 10000).
	TotalGbps float64
	Seed      int64
}

// Generate produces Count gravity-model matrices with diurnal modulation.
func Generate(opts Options) []Matrix {
	rng := rand.New(rand.NewSource(opts.Seed))
	total := opts.TotalGbps
	if total <= 0 {
		total = 10000
	}
	// Per-site gravity weights: lognormal, representing site size.
	w := make([]float64, opts.Sites)
	for i := range w {
		w[i] = math.Exp(rng.NormFloat64() * 0.8)
	}
	// Per-pair affinity noise, fixed across epochs.
	aff := make([][]float64, opts.Sites)
	for i := range aff {
		aff[i] = make([]float64, opts.Sites)
		for j := range aff[i] {
			if i != j {
				aff[i][j] = 0.5 + rng.Float64()
			}
		}
	}

	var out []Matrix
	for epoch := 0; epoch < opts.Count; epoch++ {
		// Diurnal factor: sites peak at different phases; weekly dip.
		day := float64(epoch) / 4.0
		weekly := 1.0
		if int(day)%7 >= 5 {
			weekly = 0.75
		}
		var flows []te.Flow
		sum := 0.0
		for i := 0; i < opts.Sites; i++ {
			phase := 2 * math.Pi * float64(i) / float64(opts.Sites)
			di := 1 + 0.3*math.Sin(2*math.Pi*float64(epoch)/4+phase)
			for j := 0; j < opts.Sites; j++ {
				if i == j {
					continue
				}
				d := w[i] * w[j] * aff[i][j] * di * weekly
				flows = append(flows, te.Flow{Src: i, Dst: j, Demand: d})
				sum += d
			}
		}
		for i := range flows {
			flows[i].Demand *= total / sum
		}
		if opts.MaxFlows > 0 && len(flows) > opts.MaxFlows {
			// Keep the largest flows (production matrices are sparse).
			sortByDemandDesc(flows)
			flows = flows[:opts.MaxFlows]
			// Re-scale to preserve total.
			s := 0.0
			for _, f := range flows {
				s += f.Demand
			}
			for i := range flows {
				flows[i].Demand *= total / s
			}
		}
		out = append(out, Matrix{Flows: flows, Epoch: epoch})
	}
	return out
}

func sortByDemandDesc(flows []te.Flow) {
	for i := 1; i < len(flows); i++ {
		f := flows[i]
		j := i - 1
		for j >= 0 && flows[j].Demand < f.Demand {
			flows[j+1] = flows[j]
			j--
		}
		flows[j+1] = f
	}
}

// NormalizeToFit uniformly scales the network's demands so that 100% of
// demand is exactly satisfiable (the paper's "demand scale 1.0" reference:
// production WANs are over-provisioned, so evaluation starts from a fully
// satisfiable state and scales up). It returns the scale factor applied.
func NormalizeToFit(n *te.Network) (float64, error) {
	s, err := te.MaxConcurrentScale(n)
	if err != nil {
		return 0, err
	}
	if s <= 0 {
		return 0, nil
	}
	for i := range n.Flows {
		n.Flows[i].Demand *= s
	}
	return s, nil
}

// WriteCSV emits the matrix as "src,dst,gbps" lines (the format consumed by
// cmd/arrow-plan and ReadCSV).
func (m Matrix) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# traffic matrix epoch %d (%d flows)\n", m.Epoch, len(m.Flows))
	for _, f := range m.Flows {
		fmt.Fprintf(bw, "%d,%d,%g\n", f.Src, f.Dst, f.Demand)
	}
	return bw.Flush()
}

// ReadCSV parses "src,dst,gbps" lines into a Matrix.
func ReadCSV(r io.Reader) (Matrix, error) {
	var m Matrix
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return m, fmt.Errorf("traffic: line %d: want src,dst,gbps", lineNo)
		}
		src, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		dst, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		g, err3 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err1 != nil || err2 != nil || err3 != nil || g < 0 {
			return m, fmt.Errorf("traffic: line %d: bad flow %q", lineNo, line)
		}
		m.Flows = append(m.Flows, te.Flow{Src: src, Dst: dst, Demand: g})
	}
	return m, sc.Err()
}
