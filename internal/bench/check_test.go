package bench

import (
	"strings"
	"testing"
)

func histEntry(procs int, medians ...float64) Entry {
	e := Entry{SchemaVersion: 1, GoMaxProcs: procs, RatiosValid: procs >= 2}
	for _, m := range medians {
		e.Results = append(e.Results, Result{Workload: "w", MedianSeconds: m})
	}
	return e
}

func findFinding(t *testing.T, fs []Finding, workload, metric string) Finding {
	t.Helper()
	for _, f := range fs {
		if f.Workload == workload && f.Metric == metric {
			return f
		}
	}
	t.Fatalf("no finding for %s/%s in %+v", workload, metric, fs)
	return Finding{}
}

func TestCheckPassesWithinNoise(t *testing.T) {
	history := []Entry{histEntry(1, 1.00), histEntry(1, 1.02), histEntry(1, 0.98)}
	cur := histEntry(1, 1.05)
	findings, ok := Check(history, &cur, CheckOptions{})
	if !ok {
		t.Fatalf("in-noise run failed: %+v", findings)
	}
	f := findFinding(t, findings, "w", "median_seconds")
	if f.Skipped || f.Regression {
		t.Errorf("finding %+v", f)
	}
	if f.Baseline != 1.00 {
		t.Errorf("baseline %v", f.Baseline)
	}
}

// TestCheckFailsOnInjectedRegression is the acceptance gate: a run that is
// genuinely slower than the history's MAD envelope must fail -check.
func TestCheckFailsOnInjectedRegression(t *testing.T) {
	history := []Entry{histEntry(1, 1.00), histEntry(1, 1.02), histEntry(1, 0.98)}
	cur := histEntry(1, 2.0) // 2x: past both the 30% slack and 5*MAD
	findings, ok := Check(history, &cur, CheckOptions{})
	if ok {
		t.Fatal("injected 2x regression passed the gate")
	}
	f := findFinding(t, findings, "w", "median_seconds")
	if !f.Regression {
		t.Errorf("finding not a regression: %+v", f)
	}
	if !strings.HasPrefix(f.String(), "FAIL") {
		t.Errorf("String() = %q", f.String())
	}
}

func TestCheckMinSlackAbsorbsQuietHistory(t *testing.T) {
	// Identical history → MAD 0; only MinSlack keeps the gate sane.
	history := []Entry{histEntry(1, 1.0), histEntry(1, 1.0), histEntry(1, 1.0)}
	within := histEntry(1, 1.25)
	if _, ok := Check(history, &within, CheckOptions{}); !ok {
		t.Error("25% excursion failed despite 30% MinSlack")
	}
	beyond := histEntry(1, 1.35)
	if _, ok := Check(history, &beyond, CheckOptions{}); ok {
		t.Error("35% excursion passed a zero-MAD history")
	}
}

func TestCheckSkipsOnGoMaxProcsMismatch(t *testing.T) {
	history := []Entry{histEntry(1, 1.0), histEntry(1, 1.0)}
	cur := histEntry(8, 50.0) // would fail badly if compared
	findings, ok := Check(history, &cur, CheckOptions{})
	if !ok {
		t.Fatalf("mismatched-machine run failed: %+v", findings)
	}
	f := findFinding(t, findings, "w", "median_seconds")
	if !f.Skipped || !strings.Contains(f.Reason, "no comparable history") {
		t.Errorf("finding %+v", f)
	}
	if !strings.HasPrefix(f.String(), "SKIP") {
		t.Errorf("String() = %q", f.String())
	}
}

// TestCheckSkipsInvalidRatios is the invalid-speedup trap end to end: ratio
// extras measured on a <2-CPU machine are flagged InvalidRatios and the
// gate must skip them — even when the recorded value would otherwise fail.
func TestCheckSkipsInvalidRatios(t *testing.T) {
	good := Entry{SchemaVersion: 1, GoMaxProcs: 2, RatiosValid: true, Results: []Result{{
		Workload: "w", MedianSeconds: 1.0, Extras: map[string]float64{"speedup": 3.0},
	}}}
	history := []Entry{good, good, good}
	cur := Entry{SchemaVersion: 1, GoMaxProcs: 2, RatiosValid: false, Results: []Result{{
		Workload: "w", MedianSeconds: 1.0,
		Extras:        map[string]float64{"speedup": 1.0}, // collapse: would fail a real gate
		InvalidRatios: []string{"speedup"},
	}}}
	findings, ok := Check(history, &cur, CheckOptions{})
	if !ok {
		t.Fatalf("invalid-ratio run failed: %+v", findings)
	}
	f := findFinding(t, findings, "w", "speedup")
	if !f.Skipped || !strings.Contains(f.Reason, "invalid") {
		t.Errorf("finding %+v", f)
	}
}

// TestCheckGatesRatioExtrasDownward: benefit ratios regress by falling, not
// rising. A colgen pivot-work ratio collapsing from 4x to 1x must fail.
func TestCheckGatesRatioExtrasDownward(t *testing.T) {
	mk := func(ratio float64) Entry {
		return Entry{SchemaVersion: 1, GoMaxProcs: 1, RatiosValid: false, Results: []Result{{
			Workload: "w", MedianSeconds: 1.0,
			Extras: map[string]float64{"phase1_work_ratio": ratio},
		}}}
	}
	history := []Entry{mk(4.0), mk(4.1), mk(3.9)}
	ok1 := mk(3.8)
	if _, ok := Check(history, &ok1, CheckOptions{}); !ok {
		t.Error("healthy ratio failed")
	}
	collapsed := mk(1.0)
	findings, ok := Check(history, &collapsed, CheckOptions{})
	if ok {
		t.Fatal("collapsed benefit ratio passed")
	}
	f := findFinding(t, findings, "w", "phase1_work_ratio")
	if !f.Regression || f.Current != 1.0 {
		t.Errorf("finding %+v", f)
	}
	// And a higher-than-history ratio is an improvement, not a failure.
	better := mk(6.0)
	if _, ok := Check(history, &better, CheckOptions{}); !ok {
		t.Error("improved ratio failed the downward gate")
	}
}

func TestCheckEmptyHistorySeedsCleanly(t *testing.T) {
	cur := histEntry(1, 1.0)
	findings, ok := Check(nil, &cur, CheckOptions{})
	if !ok {
		t.Fatalf("first-ever run failed: %+v", findings)
	}
	for _, f := range findings {
		if !f.Skipped {
			t.Errorf("expected skip, got %+v", f)
		}
	}
}

// TestCheckSecondsExtrasGateUpward: a *_seconds extra is a wall time, so it
// regresses by rising — a faster cold solve must pass, a slower one fail.
func TestCheckSecondsExtrasGateUpward(t *testing.T) {
	mk := func(coldSec float64) Entry {
		return Entry{SchemaVersion: 1, GoMaxProcs: 1, Results: []Result{{
			Workload: "w", MedianSeconds: 1.0,
			Extras: map[string]float64{"cold_seconds": coldSec},
		}}}
	}
	history := []Entry{mk(0.20), mk(0.21), mk(0.19)}
	faster := mk(0.05)
	if _, ok := Check(history, &faster, CheckOptions{}); !ok {
		t.Error("faster cold solve failed the gate")
	}
	slower := mk(0.50)
	findings, ok := Check(history, &slower, CheckOptions{})
	if ok {
		t.Error("2.5x slower cold solve passed")
	}
	f := findFinding(t, findings, "w", "cold_seconds")
	if !f.Regression {
		t.Errorf("finding %+v", f)
	}
}
