package bench

import (
	"fmt"
	"time"

	"github.com/arrow-te/arrow/internal/eval"
	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/sim"
	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

// Workloads returns the standard registry, in execution order. Each is
// seeded from RunConfig.Seed and reuses the internal/eval entry points, so
// a number in the history is the same computation cmd/arrow-experiments and
// the tests run.
func Workloads() []Workload {
	return []Workload{
		{
			Name:        "pipeline-build",
			Desc:        "standard B4 offline pipeline build (enumerate, RWA, tickets) at the configured worker count",
			RatioExtras: []string{"speedup"},
			Prepare:     preparePipelineBuild,
		},
		{
			Name:    "availability-sweep",
			Desc:    "fig13 availability sweep (fast scale), sweep cache reset each iteration",
			Prepare: prepareAvailabilitySweep,
		},
		{
			Name:    "timeline-sim",
			Desc:    "90-day failure-timeline replay against a solved allocation",
			Prepare: prepareTimelineSim,
		},
		{
			Name:    "warm-vs-cold",
			Desc:    "two-phase ARROW solve with warm starts; cold-start comparison in extras",
			Prepare: prepareWarmVsCold,
		},
		{
			Name:    "colgen-ab",
			Desc:    "two-phase ARROW solve with ticket column generation; full-enumeration comparison in extras",
			Prepare: prepareColgenAB,
		},
		{
			Name:    "scenario-stress",
			Desc:    "correlated stress build (fast scale): B4 + conduit SRLGs, 3-way cuts, every scenario through RWA with compositional warm starts",
			Prepare: prepareScenarioStress,
		},
	}
}

// WorkloadByName resolves one registry entry.
func WorkloadByName(name string) (Workload, bool) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// preparePipelineBuild measures the offline pipeline build. The parallel
// speedup extra is timed once in Prepare (serial vs configured workers) so
// the measured iterations stay a single clean build; it is a RatioExtra —
// invalid and gate-skipped on <2 effective CPUs.
func preparePipelineBuild(cfg RunConfig) (Iteration, error) {
	timeBuild := func(workers int) (float64, error) {
		start := time.Now()
		err := eval.BuildPipelineBench(cfg.Seed, workers, false, false)
		return time.Since(start).Seconds(), err
	}
	serial, err := timeBuild(1)
	if err != nil {
		return nil, err
	}
	speedup := 1.0
	if cfg.Workers > 1 {
		par, err := timeBuild(cfg.Workers)
		if err != nil {
			return nil, err
		}
		if par > 0 {
			speedup = serial / par
		}
	}
	extras := map[string]float64{"speedup": speedup}
	return func() (map[string]float64, error) {
		return extras, eval.BuildPipelineBench(cfg.Seed, cfg.Workers, false, false)
	}, nil
}

func prepareAvailabilitySweep(cfg RunConfig) (Iteration, error) {
	exp, ok := eval.ByID("fig13")
	if !ok {
		return nil, fmt.Errorf("experiment fig13 not registered")
	}
	ecfg := eval.Config{Fast: true, Seed: cfg.Seed, Parallelism: cfg.Workers}
	return func() (map[string]float64, error) {
		eval.ResetSweepCache() // measure the sweep, not the memo
		_, err := exp.Run(ecfg)
		return nil, err
	}, nil
}

// prepareTimelineSim replays a dense 90-day failure timeline on a small
// restorable network, the hot loop behind the availability simulations.
func prepareTimelineSim(cfg RunConfig) (Iteration, error) {
	n := &te.Network{
		LinkCap: []float64{100, 100},
		Flows:   []te.Flow{{Src: 0, Dst: 1, Demand: 150}},
		Tunnels: [][]te.Tunnel{{{Links: []int{0}}, {Links: []int{1}}}},
	}
	alloc := &te.Allocation{B: []float64{150}, A: [][]float64{{75, 75}}}
	project := func(cut []int) []int { return append([]int(nil), cut...) }
	scenarios := []te.FailureScenario{{FailedLinks: []int{0}}, {FailedLinks: []int{1}}}
	restored := []map[int]float64{{0: 100}, {1: 100}}
	const durationH = 90 * 24
	events := sim.GenerateTimeline(2, sim.TimelineOptions{
		DurationH: durationH, CutsPerMonth: 60, Seed: cfg.Seed,
	})
	return func() (map[string]float64, error) {
		r := sim.NewRunner(n, alloc, project, scenarios, restored)
		r.Parallelism = cfg.Workers
		r.Latency = sim.ConstLatency{Sec: 30}
		r.LatencySeed = cfg.Seed
		rep := r.Run(events, durationH)
		return map[string]float64{"delivered": rep.Delivered}, nil
	}, nil
}

// standardInstance builds the standard B4 pipeline + scaled traffic network
// that RunRecorded solves, handing back the raw te.Arrow inputs so the
// solve-only workloads can re-run the TE phase with their own options.
func standardInstance(cfg RunConfig) (*te.Network, []te.RestorableScenario, error) {
	tp, err := topo.B4(cfg.Seed + 5)
	if err != nil {
		return nil, nil, err
	}
	pl, err := eval.BuildPipeline(tp, eval.PipelineOptions{
		Cutoff: 0.001, NumTickets: 12, Seed: cfg.Seed, MaxScenarios: 16,
		Parallelism: cfg.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	m := traffic.Generate(traffic.Options{
		Sites: tp.NumRouters(), Count: 1, MaxFlows: 40, TotalGbps: 1, Seed: cfg.Seed + 7,
	})[0]
	base, err := pl.BaseNetwork(m, 8)
	if err != nil {
		return nil, nil, err
	}
	return base.Scaled(3), pl.Scenarios, nil
}

// solvePivotWork runs one ARROW solve with a fresh registry and returns the
// te.phase1_pivot_work counter (deterministic, so the extras it feeds gate
// reliably even on one CPU).
func solvePivotWork(n *te.Network, scs []te.RestorableScenario, opts te.ArrowOptions) (pivots float64, seconds float64, err error) {
	reg := obs.NewRegistry()
	opts.LP = &lp.Options{Recorder: reg}
	start := time.Now()
	_, err = te.Arrow(n, scs, &opts)
	seconds = time.Since(start).Seconds()
	if err != nil {
		return 0, 0, err
	}
	return float64(reg.Counter("te.phase1_pivot_work")), seconds, nil
}

func prepareWarmVsCold(cfg RunConfig) (Iteration, error) {
	n, scs, err := standardInstance(cfg)
	if err != nil {
		return nil, err
	}
	warmPivots, _, err := solvePivotWork(n, scs, te.ArrowOptions{Parallelism: cfg.Workers})
	if err != nil {
		return nil, err
	}
	coldPivots, coldSec, err := solvePivotWork(n, scs, te.ArrowOptions{NoWarm: true, Parallelism: cfg.Workers})
	if err != nil {
		return nil, err
	}
	extras := map[string]float64{"cold_seconds": coldSec}
	if warmPivots > 0 {
		// Pivot counts are deterministic, so this benefit ratio is a sound
		// regression gate even where wall-clock speedups are not.
		extras["cold_over_warm_pivots"] = coldPivots / warmPivots
	}
	opts := &te.ArrowOptions{Parallelism: cfg.Workers}
	return func() (map[string]float64, error) {
		_, err := te.Arrow(n, scs, opts)
		return extras, err
	}, nil
}

func prepareColgenAB(cfg RunConfig) (Iteration, error) {
	n, scs, err := standardInstance(cfg)
	if err != nil {
		return nil, err
	}
	colgenPivots, _, err := solvePivotWork(n, scs, te.ArrowOptions{Parallelism: cfg.Workers})
	if err != nil {
		return nil, err
	}
	fullPivots, _, err := solvePivotWork(n, scs, te.ArrowOptions{NoColgen: true, Parallelism: cfg.Workers})
	if err != nil {
		return nil, err
	}
	extras := map[string]float64{}
	if colgenPivots > 0 {
		extras["phase1_work_ratio"] = fullPivots / colgenPivots
	}
	opts := &te.ArrowOptions{Parallelism: cfg.Workers}
	return func() (map[string]float64, error) {
		_, err := te.Arrow(n, scs, opts)
		return extras, err
	}, nil
}

// prepareScenarioStress measures the correlated offline build: the fast
// stress instance (B4 + conduit SRLGs, 3-way cuts, zero cutoff) pushes
// ~1.8e3 SRLG-expanded cut sets through RWA and ticket generation with
// compositional warm starts. Prepare harvests the deterministic counters
// that gate the workload — enumeration coverage and the cold/warm
// pivot-work benefit — so the measured loop stays one clean build.
func prepareScenarioStress(cfg RunConfig) (Iteration, error) {
	counters := func(noCompose bool) (map[string]int64, int, error) {
		reg := obs.NewRegistry()
		n, err := eval.BuildStressBench(cfg.Seed, cfg.Workers, true, noCompose, reg)
		if err != nil {
			return nil, 0, err
		}
		return reg.Snapshot().Counters, n, nil
	}
	warm, scenarios, err := counters(false)
	if err != nil {
		return nil, err
	}
	cold, _, err := counters(true)
	if err != nil {
		return nil, err
	}
	extras := map[string]float64{
		"scenarios":         float64(scenarios),
		"enumerated":        float64(warm["scenario.enumerated"]),
		"pruned":            float64(warm["scenario.pruned"]),
		"warm_from_singles": float64(warm["scenario.warm_from_singles"]),
		"compose_adopted":   float64(warm["rwa.compose_adopted"]),
	}
	if warm["lp.pivots"] > 0 {
		// Pivot counts are deterministic, so the cold/warm ratio is the
		// compositional benefit and gates downward like warm-vs-cold's.
		extras["cold_over_compose_pivots"] = float64(cold["lp.pivots"]) / float64(warm["lp.pivots"])
	}
	return func() (map[string]float64, error) {
		start := time.Now()
		n, err := eval.BuildStressBench(cfg.Seed, cfg.Workers, true, false, nil)
		if err != nil {
			return nil, err
		}
		ex := map[string]float64{"scenarios_per_sec": float64(n) / time.Since(start).Seconds()}
		for k, v := range extras {
			ex[k] = v
		}
		return ex, nil
	}, nil
}
