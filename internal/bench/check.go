package bench

import (
	"fmt"
	"sort"
	"strings"

	"github.com/arrow-te/arrow/internal/stats"
)

// CheckOptions tunes the regression gate.
type CheckOptions struct {
	// MADK is the robust threshold width: a metric regresses when it lands
	// beyond baseline ± MADK·MAD (default 5). The MAD is taken across the
	// comparable history, so noisy workloads earn wide gates automatically.
	MADK float64
	// MinSlack is the floor on relative slack (default 0.30): even a
	// perfectly quiet history tolerates a 30% excursion before failing, so
	// a short history of near-identical runs does not gate on scheduler
	// jitter.
	MinSlack float64
}

func (o CheckOptions) withDefaults() CheckOptions {
	if o.MADK <= 0 {
		o.MADK = 5
	}
	if o.MinSlack <= 0 {
		o.MinSlack = 0.30
	}
	return o
}

// Finding is one metric's verdict from Check.
type Finding struct {
	Workload string  `json:"workload"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline,omitempty"`
	MAD      float64 `json:"mad,omitempty"`
	Limit    float64 `json:"limit,omitempty"`
	Current  float64 `json:"current,omitempty"`
	// Regression is true when Current lands on the wrong side of Limit
	// (above it for seconds, below it for benefit ratios).
	Regression bool `json:"regression,omitempty"`
	// Skipped marks gates that could not run (no comparable history,
	// invalid ratios); Reason says why. A skipped gate passes.
	Skipped bool   `json:"skipped,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	switch {
	case f.Skipped:
		return fmt.Sprintf("SKIP %s/%s: %s", f.Workload, f.Metric, f.Reason)
	case f.Regression:
		return fmt.Sprintf("FAIL %s/%s: current %.4g vs baseline %.4g (MAD %.4g, limit %.4g)",
			f.Workload, f.Metric, f.Current, f.Baseline, f.MAD, f.Limit)
	default:
		return fmt.Sprintf("ok   %s/%s: current %.4g within limit %.4g (baseline %.4g)",
			f.Workload, f.Metric, f.Current, f.Limit, f.Baseline)
	}
}

// Check gates cur against the history with MAD-robust thresholds.
//
// Comparability: only entries with the same GoMaxProcs as cur form the
// baseline — comparing a 1-CPU run against an 8-CPU history (or vice versa)
// would gate on the machine, not the code. With no comparable entries every
// gate is skipped (which passes): on a new machine class the run seeds the
// history instead of failing it.
//
// Gates: each workload's median_seconds must not exceed
// max(baseline·(1+MinSlack), baseline + MADK·MAD) where baseline is the
// median of the comparable historical medians. Extras gate downward the same
// way (they are benefit metrics — speedups, pivot-work savings — so falling
// is the regression), except *_seconds extras, which are wall times and gate
// upward. Ratio extras listed in the workload's InvalidRatios are skipped.
func Check(history []Entry, cur *Entry, opts CheckOptions) ([]Finding, bool) {
	opts = opts.withDefaults()
	var findings []Finding
	failed := false

	comparable := make([]Entry, 0, len(history))
	for _, h := range history {
		if h.GoMaxProcs == cur.GoMaxProcs {
			comparable = append(comparable, h)
		}
	}

	for _, res := range cur.Results {
		invalid := map[string]bool{}
		for _, k := range res.InvalidRatios {
			invalid[k] = true
		}

		findings = append(findings, checkMetric(comparable, cur, res.Workload,
			"median_seconds", res.MedianSeconds, false, invalid, opts))

		extras := make([]string, 0, len(res.Extras))
		for k := range res.Extras {
			extras = append(extras, k)
		}
		sort.Strings(extras)
		for _, k := range extras {
			// Extras are benefit metrics (speedups, pivot-work savings,
			// delivered fractions) that regress by FALLING — except *_seconds
			// extras, which are wall times and regress by rising.
			lowerIsBad := !strings.HasSuffix(k, "_seconds")
			findings = append(findings, checkMetric(comparable, cur, res.Workload,
				k, res.Extras[k], lowerIsBad, invalid, opts))
		}
	}
	for _, f := range findings {
		if f.Regression {
			failed = true
		}
	}
	return findings, !failed
}

// checkMetric gates one metric. lowerIsBad selects the gate direction:
// false for wall times (regression = slower), true for benefit ratios
// (regression = less benefit).
func checkMetric(history []Entry, cur *Entry, workload, metric string, current float64, lowerIsBad bool, invalid map[string]bool, opts CheckOptions) Finding {
	f := Finding{Workload: workload, Metric: metric, Current: current}
	if invalid[metric] {
		f.Skipped = true
		f.Reason = "ratio metric invalid on this machine (<2 effective CPUs)"
		return f
	}
	var hist []float64
	for _, h := range history {
		if metric != "median_seconds" && !ratiosComparable(h, cur, metric) {
			continue
		}
		for _, r := range h.Results {
			if r.Workload != workload {
				continue
			}
			if metric == "median_seconds" {
				hist = append(hist, r.MedianSeconds)
			} else if v, ok := r.Extras[metric]; ok && !invalidIn(r, metric) {
				hist = append(hist, v)
			}
		}
	}
	if len(hist) == 0 {
		f.Skipped = true
		f.Reason = fmt.Sprintf("no comparable history (GOMAXPROCS=%d)", cur.GoMaxProcs)
		return f
	}
	baseline := stats.Median(hist)
	mad := stats.MAD(hist)
	f.Baseline, f.MAD = baseline, mad
	slack := baseline * opts.MinSlack
	if slack < 0 {
		slack = -slack
	}
	widened := opts.MADK * mad
	if widened < slack {
		widened = slack
	}
	if lowerIsBad {
		f.Limit = baseline - widened
		f.Regression = current < f.Limit
	} else {
		f.Limit = baseline + widened
		f.Regression = current > f.Limit
	}
	return f
}

// ratiosComparable reports whether a historical entry's ratio metrics can
// be compared against cur's: both sides must have been measured where
// ratios are valid. Non-ratio extras (deterministic pivot-work ratios,
// cold_seconds) are always comparable; only metrics flagged invalid in
// either entry are not.
func ratiosComparable(h Entry, cur *Entry, metric string) bool {
	for _, r := range h.Results {
		if invalidIn(r, metric) {
			return false
		}
	}
	for _, r := range cur.Results {
		if invalidIn(r, metric) {
			return false
		}
	}
	return true
}

func invalidIn(r Result, metric string) bool {
	for _, k := range r.InvalidRatios {
		if k == metric {
			return true
		}
	}
	return false
}
