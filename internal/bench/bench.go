// Package bench is the performance observatory's measurement harness: a
// registry of named, seeded workloads (pipeline build, availability sweep,
// timeline sim, warm-vs-cold solve, colgen A/B — all reusing the
// internal/eval entry points), measured with repeat/median/MAD-robust
// statistics plus a machine fingerprint, appended to BENCH_history.jsonl so
// the repo's perf trajectory is a queryable time series instead of a
// one-shot JSON. cmd/arrow-bench exposes the registry on the command line
// and gates CI with Check's MAD-based regression thresholds.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/stats"
)

// EntrySchemaVersion identifies the history-entry JSON layout.
const EntrySchemaVersion = 1

// Iteration runs one measured repetition of a workload and returns its
// extra metrics (ratios, counters). The harness times the call itself; the
// extras carry anything the wall clock alone cannot (speedups, pivot
// ratios).
type Iteration func() (map[string]float64, error)

// Workload is one named, seeded benchmark.
type Workload struct {
	Name string
	Desc string
	// RatioExtras names the extras that are parallel-speedup ratios:
	// meaningless with fewer than two effective CPUs, they are recorded but
	// flagged invalid (Entry.RatiosValid=false) so Check skips their gates
	// instead of comparing garbage.
	RatioExtras []string
	// Prepare builds the workload's shared state (topologies, pipelines,
	// timelines) outside the measured region and returns the iteration.
	Prepare func(cfg RunConfig) (Iteration, error)
}

// RunConfig parameterises a harness run.
type RunConfig struct {
	Seed    int64
	Workers int // parallel worker count where a workload fans out (0 = GOMAXPROCS)
	// Repeats caps measured iterations per workload (default 5);
	// MinRepeats is the floor the Budget cannot cut below (default 3).
	Repeats    int
	MinRepeats int
	// Budget soft-caps each workload's measured time (the CI smoke job's
	// -benchtime): once exceeded, no further iteration starts beyond
	// MinRepeats. Zero = no cap.
	Budget time.Duration
	// ProfileDir, when set, captures flamegraph-ready pprof profiles (CPU +
	// allocs) of one extra unmeasured iteration per workload and records
	// the file paths in the Result.
	ProfileDir string
	// Recorder receives bench.* gauges and counters (nil = off).
	Recorder obs.Recorder
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Repeats <= 0 {
		c.Repeats = 5
	}
	if c.MinRepeats <= 0 {
		c.MinRepeats = 3
	}
	if c.MinRepeats > c.Repeats {
		c.MinRepeats = c.Repeats
	}
	return c
}

// Result is one workload's measured outcome.
type Result struct {
	Workload string    `json:"workload"`
	Repeats  int       `json:"repeats"`
	Seconds  []float64 `json:"seconds"`
	// MedianSeconds / MADSeconds are the robust center and spread of the
	// per-iteration wall times (internal/stats.Median / MAD).
	MedianSeconds float64 `json:"median_seconds"`
	MADSeconds    float64 `json:"mad_seconds"`
	// Extras are the workload's additional metrics, medians across
	// iterations (speedup ratios, pivot-work ratios, ...).
	Extras map[string]float64 `json:"extras,omitempty"`
	// InvalidRatios lists the extras recorded on a machine that cannot
	// support them (<2 effective CPUs); Check skips their gates.
	InvalidRatios []string `json:"invalid_ratios,omitempty"`
	// CPUProfile / AllocProfile are the pprof file paths captured under
	// RunConfig.ProfileDir ("" when profiling was off), so a regression in
	// the history links straight to a flamegraph.
	CPUProfile   string `json:"cpu_profile,omitempty"`
	AllocProfile string `json:"alloc_profile,omitempty"`
}

// Entry is one recorded harness run: machine fingerprint plus per-workload
// results. The JSONL history (BENCH_history.jsonl) is a sequence of these.
type Entry struct {
	SchemaVersion int    `json:"schema_version"`
	Timestamp     string `json:"timestamp,omitempty"` // RFC3339, caller-stamped
	GoVersion     string `json:"go_version"`
	NumCPU        int    `json:"num_cpu"`
	GoMaxProcs    int    `json:"go_max_procs"`
	Seed          int64  `json:"seed"`
	Workers       int    `json:"workers"`
	// RatiosValid is false on machines with <2 effective CPUs, where
	// parallel-speedup ratios are meaningless; Check compares ratio extras
	// only between valid entries.
	RatiosValid bool     `json:"ratios_valid"`
	Note        string   `json:"note,omitempty"`
	Results     []Result `json:"results"`
}

// RatiosUsable reports whether this machine can measure parallel-speedup
// ratios honestly: at least two CPUs actually schedulable.
func RatiosUsable() bool {
	return runtime.NumCPU() >= 2 && runtime.GOMAXPROCS(0) >= 2
}

// Fingerprint returns an Entry skeleton carrying the machine fingerprint
// for cfg (no results yet).
func Fingerprint(cfg RunConfig) *Entry {
	cfg = cfg.withDefaults()
	return &Entry{
		SchemaVersion: EntrySchemaVersion,
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
		RatiosValid:   RatiosUsable(),
	}
}

// Run measures each workload under cfg and returns the recorded entry.
func Run(workloads []Workload, cfg RunConfig) (*Entry, error) {
	cfg = cfg.withDefaults()
	entry := Fingerprint(cfg)
	for _, w := range workloads {
		res, err := runOne(w, cfg, entry.RatiosValid)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.Name, err)
		}
		entry.Results = append(entry.Results, *res)
		if rec := cfg.Recorder; rec != nil {
			rec.Add("bench.workloads", 1)
			rec.Add("bench.iterations", int64(res.Repeats))
			rec.Gauge("bench."+w.Name+".median_seconds", res.MedianSeconds)
			rec.Gauge("bench."+w.Name+".mad_seconds", res.MADSeconds)
			for k, v := range res.Extras {
				rec.Gauge("bench."+w.Name+"."+k, v)
			}
		}
	}
	return entry, nil
}

func runOne(w Workload, cfg RunConfig, ratiosValid bool) (*Result, error) {
	iter, err := w.Prepare(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Workload: w.Name}
	extras := map[string][]float64{}
	budgetStart := time.Now()
	for n := 0; n < cfg.Repeats; n++ {
		if n >= cfg.MinRepeats && cfg.Budget > 0 && time.Since(budgetStart) > cfg.Budget {
			break
		}
		start := time.Now()
		ex, err := iter()
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return nil, err
		}
		res.Seconds = append(res.Seconds, elapsed)
		for k, v := range ex {
			extras[k] = append(extras[k], v)
		}
		res.Repeats++
	}
	res.MedianSeconds = stats.Median(res.Seconds)
	res.MADSeconds = stats.MAD(res.Seconds)
	if len(extras) > 0 {
		res.Extras = map[string]float64{}
		keys := make([]string, 0, len(extras))
		for k := range extras {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			res.Extras[k] = stats.Median(extras[k])
		}
	}
	if !ratiosValid {
		for _, k := range w.RatioExtras {
			if _, ok := res.Extras[k]; ok {
				res.InvalidRatios = append(res.InvalidRatios, k)
			}
		}
	}
	if cfg.ProfileDir != "" {
		if err := captureProfiles(w.Name, cfg.ProfileDir, iter, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// captureProfiles runs one extra, unmeasured iteration under the CPU
// profiler, then snapshots the allocation profile, writing both under dir.
func captureProfiles(name, dir string, iter Iteration, res *Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cpuPath := filepath.Join(dir, name+".cpu.pprof")
	fd, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(fd); err != nil {
		fd.Close()
		return fmt.Errorf("cpu profile: %w (another CPU profile already running?)", err)
	}
	_, iterErr := iter()
	pprof.StopCPUProfile()
	if cerr := fd.Close(); cerr != nil && iterErr == nil {
		iterErr = cerr
	}
	if iterErr != nil {
		return iterErr
	}
	res.CPUProfile = cpuPath

	allocPath := filepath.Join(dir, name+".allocs.pprof")
	fd, err = os.Create(allocPath)
	if err != nil {
		return err
	}
	perr := pprof.Lookup("allocs").WriteTo(fd, 0)
	if cerr := fd.Close(); cerr != nil && perr == nil {
		perr = cerr
	}
	if perr != nil {
		return perr
	}
	res.AllocProfile = allocPath
	return nil
}
