package bench

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/arrow-te/arrow/internal/obs"
)

func fakeWorkload(name string, extras map[string]float64, ratioExtras ...string) Workload {
	return Workload{
		Name:        name,
		RatioExtras: ratioExtras,
		Prepare: func(cfg RunConfig) (Iteration, error) {
			return func() (map[string]float64, error) {
				time.Sleep(time.Millisecond)
				return extras, nil
			}, nil
		},
	}
}

func TestRunHarness(t *testing.T) {
	reg := obs.NewRegistry()
	entry, err := Run([]Workload{
		fakeWorkload("alpha", map[string]float64{"speedup": 2.5}, "speedup"),
		fakeWorkload("beta", nil),
	}, RunConfig{Seed: 7, Repeats: 4, MinRepeats: 2, Recorder: reg})
	if err != nil {
		t.Fatal(err)
	}
	if entry.SchemaVersion != EntrySchemaVersion {
		t.Errorf("schema version %d", entry.SchemaVersion)
	}
	if entry.GoVersion == "" || entry.NumCPU < 1 || entry.GoMaxProcs < 1 {
		t.Errorf("fingerprint incomplete: %+v", entry)
	}
	if len(entry.Results) != 2 {
		t.Fatalf("got %d results", len(entry.Results))
	}
	a := entry.Results[0]
	if a.Repeats != 4 || len(a.Seconds) != 4 {
		t.Errorf("alpha repeats=%d seconds=%v", a.Repeats, a.Seconds)
	}
	if a.MedianSeconds <= 0 {
		t.Errorf("alpha median %v", a.MedianSeconds)
	}
	if a.Extras["speedup"] != 2.5 {
		t.Errorf("alpha extras %v", a.Extras)
	}
	if entry.RatiosValid != RatiosUsable() {
		t.Errorf("RatiosValid=%v, RatiosUsable=%v", entry.RatiosValid, RatiosUsable())
	}
	// The invalid-speedup trap: on a machine that cannot measure parallel
	// speedups the ratio extras must be flagged, not silently recorded.
	if !entry.RatiosValid {
		if len(a.InvalidRatios) != 1 || a.InvalidRatios[0] != "speedup" {
			t.Errorf("invalid ratios not flagged: %v", a.InvalidRatios)
		}
	} else if len(a.InvalidRatios) != 0 {
		t.Errorf("valid machine flagged ratios: %v", a.InvalidRatios)
	}
	if got := reg.Counter("bench.workloads"); got != 2 {
		t.Errorf("bench.workloads = %d", got)
	}
	if got := reg.Counter("bench.iterations"); got != 8 {
		t.Errorf("bench.iterations = %d", got)
	}
}

func TestRunBudgetStopsAtMinRepeats(t *testing.T) {
	slow := Workload{
		Name: "slow",
		Prepare: func(cfg RunConfig) (Iteration, error) {
			return func() (map[string]float64, error) {
				time.Sleep(20 * time.Millisecond)
				return nil, nil
			}, nil
		},
	}
	entry, err := Run([]Workload{slow}, RunConfig{
		Repeats: 50, MinRepeats: 2, Budget: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := entry.Results[0].Repeats; got != 2 {
		t.Errorf("budget-capped repeats = %d, want MinRepeats floor 2", got)
	}
}

func TestRunCapturesProfiles(t *testing.T) {
	dir := t.TempDir()
	entry, err := Run([]Workload{fakeWorkload("prof", nil)}, RunConfig{
		Repeats: 1, MinRepeats: 1, ProfileDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := entry.Results[0]
	if res.CPUProfile != filepath.Join(dir, "prof.cpu.pprof") {
		t.Errorf("cpu profile path %q", res.CPUProfile)
	}
	if res.AllocProfile != filepath.Join(dir, "prof.allocs.pprof") {
		t.Errorf("alloc profile path %q", res.AllocProfile)
	}
	for _, p := range []string{res.CPUProfile, res.AllocProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	if got, err := ReadHistory(path); err != nil || got != nil {
		t.Fatalf("missing history: %v, %v", got, err)
	}
	e1 := &Entry{SchemaVersion: 1, GoMaxProcs: 1, Note: "first",
		Results: []Result{{Workload: "w", MedianSeconds: 0.5}}}
	e2 := &Entry{SchemaVersion: 1, GoMaxProcs: 1, Note: "second",
		Results: []Result{{Workload: "w", MedianSeconds: 0.6}}}
	if err := AppendEntry(path, e1); err != nil {
		t.Fatal(err)
	}
	if err := AppendEntry(path, e2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Note != "first" || got[1].Note != "second" {
		t.Fatalf("history %+v", got)
	}
	if got[1].Results[0].MedianSeconds != 0.6 {
		t.Errorf("result lost: %+v", got[1].Results)
	}

	single := filepath.Join(t.TempDir(), "entry.json")
	if err := WriteEntry(single, e1); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEntry(single)
	if err != nil {
		t.Fatal(err)
	}
	if back.Note != "first" || len(back.Results) != 1 {
		t.Errorf("entry round trip: %+v", back)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, w := range Workloads() {
		if w.Name == "" || w.Desc == "" || w.Prepare == nil {
			t.Errorf("incomplete workload %+v", w)
		}
		if names[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
	}
	for _, want := range []string{"pipeline-build", "availability-sweep", "timeline-sim", "warm-vs-cold", "colgen-ab"} {
		if !names[want] {
			t.Errorf("workload %q missing from registry", want)
		}
	}
	if _, ok := WorkloadByName("timeline-sim"); !ok {
		t.Error("WorkloadByName failed")
	}
	if _, ok := WorkloadByName("nope"); ok {
		t.Error("WorkloadByName found a ghost")
	}
}

// TestTimelineSimWorkload runs the cheapest real workload end to end: the
// registry entries must actually measure, not just typecheck.
func TestTimelineSimWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a 90-day timeline")
	}
	w, _ := WorkloadByName("timeline-sim")
	entry, err := Run([]Workload{w}, RunConfig{Seed: 3, Workers: 1, Repeats: 2, MinRepeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := entry.Results[0]
	if res.MedianSeconds <= 0 {
		t.Errorf("median %v", res.MedianSeconds)
	}
	if d := res.Extras["delivered"]; d <= 0 || d > 1 {
		t.Errorf("delivered %v", d)
	}
}
