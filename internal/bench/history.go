package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// ReadHistory parses a JSONL benchmark history (BENCH_history.jsonl): one
// Entry per line, oldest first. A missing file is an empty history, not an
// error, so first runs bootstrap cleanly.
func ReadHistory(path string) ([]Entry, error) {
	fd, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer fd.Close()
	var entries []Entry
	sc := bufio.NewScanner(fd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// AppendEntry appends one entry to the JSONL history, creating the file if
// needed.
func AppendEntry(path string, e *Entry) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	fd, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := fd.Write(append(raw, '\n'))
	if cerr := fd.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// WriteEntry writes one entry as a standalone JSON file (the CI smoke job
// saves its run this way, then gates with arrow-bench -check -entry).
func WriteEntry(path string, e *Entry) error {
	raw, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadEntry reads a standalone entry JSON file written by WriteEntry.
func ReadEntry(path string) (*Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &e, nil
}
