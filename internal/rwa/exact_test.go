package rwa

import (
	"math"
	"testing"

	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/spectrum"
)

// TestExactVsRelaxationVsGreedy validates the three RWA layers against
// each other on the Fig. 7 instance and on a contended triangle:
// LP relaxation >= exact ILP >= greedy integral assignment, and on these
// practical cases all three agree.
func TestExactVsRelaxationVsGreedy(t *testing.T) {
	n := optical.NewNetwork(4, 12)
	n.AddFiber(0, 1, 100)
	n.AddFiber(0, 2, 100)
	n.AddFiber(2, 1, 100)
	n.AddFiber(0, 3, 100)
	n.AddFiber(3, 1, 100)
	mod := spectrum.Table6[0]
	mk := func(count, start int) []optical.Lightpath {
		var ws []optical.Lightpath
		for i := 0; i < count; i++ {
			ws = append(ws, optical.Lightpath{Slot: start + i, Modulation: mod, FiberPath: []int{0}})
		}
		return ws
	}
	if _, err := n.Provision(0, 1, mk(4, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Provision(0, 1, mk(8, 4)); err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{1, 2} {
		for s := 0; s < 9; s++ {
			n.Fibers[f].Slots.Set(s, false)
		}
	}
	for _, f := range []int{3, 4} {
		for s := 0; s < 10; s++ {
			n.Fibers[f].Slots.Set(s, false)
		}
	}
	req := &Request{Net: n, Cut: []int{0}, K: 3, AllowTuning: true, AllowModulationChange: true}
	relaxed, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := SolveExact(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Objective > relaxed.Objective+1e-6 {
		t.Fatalf("ILP %g exceeds LP relaxation %g", exact.Objective, relaxed.Objective)
	}
	greedy := 0
	for _, c := range MaxIntegralWaves(relaxed) {
		greedy += c
	}
	if float64(greedy) > exact.Objective+1e-6 {
		t.Fatalf("greedy %d exceeds exact ILP %g", greedy, exact.Objective)
	}
	// On Fig. 7, all three are exactly 5.
	if math.Abs(relaxed.Objective-5) > 1e-6 || math.Abs(exact.Objective-5) > 1e-6 || greedy != 5 {
		t.Fatalf("LP=%g ILP=%g greedy=%d, want all 5", relaxed.Objective, exact.Objective, greedy)
	}
}

func TestExactNoFailures(t *testing.T) {
	n := optical.NewNetwork(2, 4)
	n.AddFiber(0, 1, 100)
	res, err := SolveExact(&Request{Net: n, Cut: []int{0}, K: 2, AllowTuning: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed %v", res.Failed)
	}
}
