package rwa

import (
	"math"
	"reflect"
	"testing"

	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/spectrum"
)

// fig2Network reproduces the paper's Fig. 2: ROADMs A=0, B=1, C=2, D=3.
// Fibers: AB, BC, DA, DC. IP1 = A<->C via D (lambda1), IP2 = D<->C (lambda2),
// both on fiber DC. Cutting DC must restore both via D-A-B-C / A-B-C.
func fig2Network(t *testing.T) *optical.Network {
	t.Helper()
	n := optical.NewNetwork(4, 8)
	n.AddFiber(0, 1, 500)     // 0: A-B
	n.AddFiber(1, 2, 500)     // 1: B-C
	n.AddFiber(3, 0, 500)     // 2: D-A
	n.AddFiber(3, 2, 500)     // 3: D-C
	mod := spectrum.Table6[0] // 100G / 5000 km
	if _, err := n.Provision(0, 2, []optical.Lightpath{{Slot: 0, Modulation: mod, FiberPath: []int{2, 3}}}); err != nil {
		t.Fatal(err) // IP1: A->D->C optically, direct IP link A-C
	}
	if _, err := n.Provision(3, 2, []optical.Lightpath{{Slot: 1, Modulation: mod, FiberPath: []int{3}}}); err != nil {
		t.Fatal(err) // IP2: D-C
	}
	return n
}

func TestFig2FullRestoration(t *testing.T) {
	n := fig2Network(t)
	res, err := Solve(&Request{Net: n, Cut: []int{3}, K: 3, AllowTuning: true, AllowModulationChange: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 2 {
		t.Fatalf("failed links %v", res.Failed)
	}
	// Both wavelengths restorable: plenty of free spectrum on AB/BC/DA.
	for i := range res.Failed {
		if res.FracWaves[i] < 1-1e-6 {
			t.Fatalf("link %d only %g waves restorable", res.Failed[i], res.FracWaves[i])
		}
	}
	counts := MaxIntegralWaves(res)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("integral restoration of link %d = %d", res.Failed[i], c)
		}
	}
	// Restoration ratio of fiber DC is 1.
	u, err := RestorationRatio(n, 3, 3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if u != 1 {
		t.Fatalf("U_DC = %g", u)
	}
}

func TestHealthyFiberCutNoFailures(t *testing.T) {
	n := fig2Network(t)
	res, err := Solve(&Request{Net: n, Cut: []int{0}, K: 3, AllowTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed %v", res.Failed)
	}
	u, err := RestorationRatio(n, 0, 3, true, true)
	if err != nil || u != 1 {
		t.Fatalf("u=%g err=%v", u, err)
	}
}

// fig7Network reproduces Fig. 7: nodes B=0, C=1 joined by a direct fiber
// carrying IP1 (4 waves) and IP2 (8 waves), plus a top path via T=2 with 3
// free slots usable and a bottom path via U=3 with 2 free slots usable.
func fig7Network(t *testing.T) *optical.Network {
	t.Helper()
	n := optical.NewNetwork(4, 12)
	n.AddFiber(0, 1, 100) // 0: B-C direct
	n.AddFiber(0, 2, 100) // 1: B-T
	n.AddFiber(2, 1, 100) // 2: T-C
	n.AddFiber(0, 3, 100) // 3: B-U
	n.AddFiber(3, 1, 100) // 4: U-C
	mod := spectrum.Table6[0]
	mk := func(count, startSlot int) []optical.Lightpath {
		var ws []optical.Lightpath
		for i := 0; i < count; i++ {
			ws = append(ws, optical.Lightpath{Slot: startSlot + i, Modulation: mod, FiberPath: []int{0}})
		}
		return ws
	}
	if _, err := n.Provision(0, 1, mk(4, 0)); err != nil { // IP1
		t.Fatal(err)
	}
	if _, err := n.Provision(0, 1, mk(8, 4)); err != nil { // IP2
		t.Fatal(err)
	}
	// Exhaust spectrum on the surrogate fibers so only 3 slots survive on
	// the top path and 2 on the bottom path.
	occupyAllBut := func(fibers []int, keep int) {
		for _, f := range fibers {
			for s := 0; s < 12-keep; s++ {
				n.Fibers[f].Slots.Set(s, false)
			}
		}
	}
	occupyAllBut([]int{1, 2}, 3)
	occupyAllBut([]int{3, 4}, 2)
	return n
}

func TestFig7PartialRestoration(t *testing.T) {
	n := fig7Network(t)
	res, err := Solve(&Request{Net: n, Cut: []int{0}, K: 3, AllowTuning: true, AllowModulationChange: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 2 {
		t.Fatalf("failed %v", res.Failed)
	}
	// W'_BC = 5 wavelengths total (3 top + 2 bottom) out of 12.
	if math.Abs(res.Objective-5) > 1e-6 {
		t.Fatalf("LP objective %g, want 5", res.Objective)
	}
	// Restoration ratio: 500/1200.
	u, err := RestorationRatio(n, 0, 3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-5.0/12) > 1e-9 {
		t.Fatalf("U = %g want %g", u, 5.0/12)
	}
}

func TestFig7TicketTargetsFeasibility(t *testing.T) {
	n := fig7Network(t)
	res, err := Solve(&Request{Net: n, Cut: []int{0}, K: 3, AllowTuning: true, AllowModulationChange: true})
	if err != nil {
		t.Fatal(err)
	}
	// The three candidates of Fig. 7 (in wavelengths): (2,3), (1,4), (3,2).
	// IP1 is res index of the 4-wave link; find it.
	i1, i2 := 0, 1
	if res.OrigWaves[0] != 4 {
		i1, i2 = 1, 0
	}
	for _, cand := range [][2]int{{2, 3}, {1, 4}, {3, 2}} {
		target := make([]int, 2)
		target[i1], target[i2] = cand[0], cand[1]
		if _, ok := AssignIntegral(res, target); !ok {
			t.Fatalf("candidate %v should be feasible", cand)
		}
	}
	// Restoring 6 wavelengths total is impossible (only 5 slots).
	target := make([]int, 2)
	target[i1], target[i2] = 2, 4
	if _, ok := AssignIntegral(res, target); ok {
		t.Fatal("candidate (2,4) should be infeasible")
	}
}

func TestNoTuningRestrictsSlots(t *testing.T) {
	// Link on slot 5; surrogate path only has slot 5 occupied -> without
	// tuning nothing restorable, with tuning fully restorable.
	n := optical.NewNetwork(3, 8)
	n.AddFiber(0, 1, 100) // 0: direct
	n.AddFiber(0, 2, 100) // 1
	n.AddFiber(2, 1, 100) // 2
	mod := spectrum.Table6[0]
	if _, err := n.Provision(0, 1, []optical.Lightpath{{Slot: 5, Modulation: mod, FiberPath: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	n.Fibers[1].Slots.Set(5, false)

	noTune, err := Solve(&Request{Net: n, Cut: []int{0}, K: 2, AllowTuning: false})
	if err != nil {
		t.Fatal(err)
	}
	if noTune.Objective != 0 {
		t.Fatalf("no-tuning objective %g, want 0", noTune.Objective)
	}
	tune, err := Solve(&Request{Net: n, Cut: []int{0}, K: 2, AllowTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	if tune.Objective != 1 {
		t.Fatalf("tuning objective %g, want 1", tune.Objective)
	}
}

func TestModulationChangeOnLongPath(t *testing.T) {
	// Direct fiber 900 km with 400G waves; surrogate detour is 2400 km,
	// beyond 400G reach (1000 km) but within 200G reach (3000 km).
	n := optical.NewNetwork(3, 8)
	n.AddFiber(0, 1, 900)  // 0: direct
	n.AddFiber(0, 2, 1200) // 1
	n.AddFiber(2, 1, 1200) // 2
	mod400, _ := spectrum.ModulationByRate(400)
	if _, err := n.Provision(0, 1, []optical.Lightpath{{Slot: 0, Modulation: mod400, FiberPath: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	noChange, err := Solve(&Request{Net: n, Cut: []int{0}, K: 2, AllowTuning: true, AllowModulationChange: false})
	if err != nil {
		t.Fatal(err)
	}
	if noChange.Objective != 0 {
		t.Fatalf("objective %g without modulation change, want 0", noChange.Objective)
	}
	change, err := Solve(&Request{Net: n, Cut: []int{0}, K: 2, AllowTuning: true, AllowModulationChange: true})
	if err != nil {
		t.Fatal(err)
	}
	if change.Objective != 1 {
		t.Fatalf("objective %g with modulation change, want 1", change.Objective)
	}
	if change.GbpsPerWave[0] != 200 {
		t.Fatalf("effective rate %g, want 200", change.GbpsPerWave[0])
	}
	// Restored bandwidth: 1 wave * 200G over provisioned 400G -> U = 0.5.
	u, err := RestorationRatio(n, 0, 2, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if u != 0.5 {
		t.Fatalf("U = %g, want 0.5", u)
	}
}

func TestWavelengthContinuityBlocksRestoration(t *testing.T) {
	// Surrogate path of two fibers with disjoint free spectrum: nothing
	// restorable despite both fibers having free slots.
	n := optical.NewNetwork(3, 4)
	n.AddFiber(0, 1, 100) // 0: direct
	n.AddFiber(0, 2, 100) // 1
	n.AddFiber(2, 1, 100) // 2
	mod := spectrum.Table6[0]
	if _, err := n.Provision(0, 1, []optical.Lightpath{{Slot: 0, Modulation: mod, FiberPath: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	// Fiber 1 free slots: {0,1}; fiber 2 free slots: {2,3}.
	n.Fibers[1].Slots.Set(2, false)
	n.Fibers[1].Slots.Set(3, false)
	n.Fibers[2].Slots.Set(0, false)
	n.Fibers[2].Slots.Set(1, false)
	res, err := Solve(&Request{Net: n, Cut: []int{0}, K: 2, AllowTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 0 {
		t.Fatalf("objective %g, want 0 (continuity)", res.Objective)
	}
}

func TestSharedSurrogateContention(t *testing.T) {
	// Two failed links compete for one free slot on a shared surrogate
	// fiber; total restoration is capped at 1 wavelength.
	n := optical.NewNetwork(3, 4)
	n.AddFiber(0, 1, 100) // 0: direct A-B
	n.AddFiber(0, 2, 100) // 1: A-C
	n.AddFiber(2, 1, 100) // 2: C-B
	mod := spectrum.Table6[0]
	if _, err := n.Provision(0, 1, []optical.Lightpath{{Slot: 0, Modulation: mod, FiberPath: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Provision(0, 1, []optical.Lightpath{{Slot: 1, Modulation: mod, FiberPath: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	// Only slot 3 free on the surrogate fibers.
	for _, f := range []int{1, 2} {
		n.Fibers[f].Slots.Set(0, false)
		n.Fibers[f].Slots.Set(1, false)
		n.Fibers[f].Slots.Set(2, false)
	}
	res, err := Solve(&Request{Net: n, Cut: []int{0}, K: 2, AllowTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-1) > 1e-6 {
		t.Fatalf("objective %g, want 1", res.Objective)
	}
	counts := MaxIntegralWaves(res)
	if counts[0]+counts[1] != 1 {
		t.Fatalf("integral counts %v, want total 1", counts)
	}
}

func TestDisconnectedAfterCut(t *testing.T) {
	// Cutting the only fiber leaves no surrogate path: zero restoration.
	n := optical.NewNetwork(2, 4)
	n.AddFiber(0, 1, 100)
	mod := spectrum.Table6[0]
	if _, err := n.Provision(0, 1, []optical.Lightpath{{Slot: 0, Modulation: mod, FiberPath: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(&Request{Net: n, Cut: []int{0}, K: 3, AllowTuning: true, AllowModulationChange: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 0 || len(res.Options[0]) != 0 {
		t.Fatalf("objective %g options %v", res.Objective, res.Options[0])
	}
	u, err := RestorationRatio(n, 0, 3, true, true)
	if err != nil || u != 0 {
		t.Fatalf("U = %g err=%v, want 0", u, err)
	}
}

// twoIslandNetwork builds two disjoint sub-networks, each with a direct
// fiber carrying one 2-wave IP link plus a clean 2-hop surrogate path, so a
// pair cut {0, 3} decomposes exactly into its two single cuts.
func twoIslandNetwork(t *testing.T) *optical.Network {
	t.Helper()
	n := optical.NewNetwork(6, 8)
	n.AddFiber(0, 1, 100) // 0: A-B direct
	n.AddFiber(0, 2, 100) // 1: A-C
	n.AddFiber(2, 1, 100) // 2: C-B
	n.AddFiber(3, 4, 100) // 3: D-E direct
	n.AddFiber(3, 5, 100) // 4: D-F
	n.AddFiber(5, 4, 100) // 5: F-E
	mod := spectrum.Table6[0]
	mk := func(fiber int) []optical.Lightpath {
		return []optical.Lightpath{
			{Slot: 0, Modulation: mod, FiberPath: []int{fiber}},
			{Slot: 1, Modulation: mod, FiberPath: []int{fiber}},
		}
	}
	if _, err := n.Provision(0, 1, mk(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Provision(3, 4, mk(3)); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestComposeWarmFromSingles: a pair-cut solve warm-started from its two
// single-cut solutions adopts their variables, skips phase 1, and returns
// exactly the same restoration as the plain (slack-warm) pair solve.
func TestComposeWarmFromSingles(t *testing.T) {
	n := twoIslandNetwork(t)
	single := func(f int) *Result {
		res, err := Solve(&Request{Net: n, Cut: []int{f}, K: 3, AllowTuning: true, ExportBasis: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.VarBasis) == 0 {
			t.Fatalf("single cut {%d}: no exported basis", f)
		}
		return res
	}
	s0, s3 := single(0), single(3)

	plain, err := Solve(&Request{Net: n, Cut: []int{0, 3}, K: 3, AllowTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	composed, err := Solve(&Request{
		Net: n, Cut: []int{0, 3}, K: 3, AllowTuning: true,
		WarmFrom: []*Result{s0, s3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if composed.ComposedVars == 0 {
		t.Fatal("composition adopted no variables")
	}
	if composed.Warm == nil || !composed.Warm.Phase1Skipped {
		t.Fatalf("composed warm info %+v, want phase 1 skipped", composed.Warm)
	}
	if math.Abs(composed.Objective-plain.Objective) > 1e-9 {
		t.Fatalf("objective drifted: composed %g vs plain %g", composed.Objective, plain.Objective)
	}
	for i := range plain.FracWaves {
		if math.Abs(composed.FracWaves[i]-plain.FracWaves[i]) > 1e-9 {
			t.Fatalf("FracWaves[%d]: composed %g vs plain %g", i, composed.FracWaves[i], plain.FracWaves[i])
		}
	}
	// The disjoint pair decomposes exactly: both links fully restored.
	if math.Abs(composed.Objective-4) > 1e-6 {
		t.Fatalf("objective %g, want 4", composed.Objective)
	}

	// Composition is deterministic: an identical request reproduces the
	// result bit for bit.
	again, err := Solve(&Request{
		Net: n, Cut: []int{0, 3}, K: 3, AllowTuning: true,
		WarmFrom: []*Result{s0, s3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.FracWaves, composed.FracWaves) || again.ComposedVars != composed.ComposedVars {
		t.Fatal("composed solve is not deterministic")
	}
}

// TestComposeWarmSavesPivots: on the disjoint pair, the composed start sits
// on the optimal vertex, so phase 2 needs strictly fewer pivots than the
// all-slack start.
func TestComposeWarmSavesPivots(t *testing.T) {
	n := twoIslandNetwork(t)
	pivots := func(warm []*Result) int64 {
		reg := obs.NewRegistry()
		_, err := Solve(&Request{
			Net: n, Cut: []int{0, 3}, K: 3, AllowTuning: true,
			WarmFrom: warm, Recorder: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot().Counters["lp.pivots"]
	}
	s0, err := Solve(&Request{Net: n, Cut: []int{0}, K: 3, AllowTuning: true, ExportBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := Solve(&Request{Net: n, Cut: []int{3}, K: 3, AllowTuning: true, ExportBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	cold, warm := pivots(nil), pivots([]*Result{s0, s3})
	if warm >= cold {
		t.Fatalf("composed start saved nothing: %d pivots vs %d slack-warm", warm, cold)
	}
}

// TestComposeWarmRestriction: when the pair cut removes a surrogate path
// that the single-cut solution used (fibers of the OTHER cut), its adopted
// variables drop out, and contention between the two links' adoptions is
// resolved by the fiber-slot claim pass — the composed point stays feasible
// (phase 1 still skipped) and the objective matches the plain solve.
func TestComposeWarmRestriction(t *testing.T) {
	// fig7Network: IP1 (4 waves) and IP2 (8 waves) on fiber 0, surrogates
	// via T (fibers 1,2: 3 free slots) and U (fibers 3,4: 2 free slots).
	// The pair {0,1} kills the top surrogate, so singles' top-path picks
	// must be dropped and both links compete for the bottom path's 2 slots.
	n := fig7Network(t)
	s0, err := Solve(&Request{Net: n, Cut: []int{0}, K: 3, AllowTuning: true, ExportBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Solve(&Request{Net: n, Cut: []int{1}, K: 3, AllowTuning: true, ExportBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Solve(&Request{Net: n, Cut: []int{0, 1}, K: 3, AllowTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	composed, err := Solve(&Request{
		Net: n, Cut: []int{0, 1}, K: 3, AllowTuning: true,
		WarmFrom: []*Result{s0, s1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if composed.Warm == nil || !composed.Warm.Phase1Skipped {
		t.Fatalf("restricted composition broke feasibility: %+v", composed.Warm)
	}
	if math.Abs(composed.Objective-plain.Objective) > 1e-9 {
		t.Fatalf("objective drifted: composed %g vs plain %g", composed.Objective, plain.Objective)
	}
}
