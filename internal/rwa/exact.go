package rwa

import (
	"fmt"
	"sort"

	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/mip"
)

// SolveExact solves the wavelength-assignment problem of Appendix A.2 as an
// ILP (binary xi variables) instead of the LP relaxation, returning the
// true maximum number of restorable wavelengths per failed link. It shares
// the routing step with Solve.
//
// The ILP is NP-hard and only intended for small instances: it is the
// ground truth used to validate that (a) the LP relaxation upper-bounds it
// and (b) the greedy integral assignment achieves it on practical cases.
func SolveExact(req *Request, opts *mip.Options) (*Result, error) {
	// Reuse the routing and slot preparation from the relaxed solve.
	res, err := Solve(req)
	if err != nil {
		return nil, err
	}
	if len(res.Failed) == 0 {
		return res, nil
	}

	m := lp.NewModel("rwa-exact")
	m.SetMaximize(true)
	type xiKey struct{ link, path, slot int }
	xi := map[xiKey]lp.Var{}
	fiberSlot := map[[2]int]lp.Expr{}
	linkTotal := make([]lp.Expr, len(res.Failed))
	for li := range res.Failed {
		for pi, opt := range res.Options[li] {
			for _, s := range opt.Slots {
				v := m.AddBinVar(1, fmt.Sprintf("xi_l%d_p%d_s%d", li, pi, s))
				xi[xiKey{li, pi, s}] = v
				linkTotal[li] = linkTotal[li].Plus(1, v)
				for _, f := range opt.Fibers {
					key := [2]int{f, s}
					fiberSlot[key] = fiberSlot[key].Plus(1, v)
				}
			}
		}
	}
	// Deterministic row order (see solveAssignmentLP).
	keys := make([][2]int, 0, len(fiberSlot))
	for k := range fiberSlot {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		m.AddConstr(fiberSlot[k], lp.LE, 1, fmt.Sprintf("slot_f%d_s%d", k[0], k[1]))
	}
	for li, e := range linkTotal {
		if len(e) > 0 {
			m.AddConstr(e, lp.LE, float64(res.OrigWaves[li]), fmt.Sprintf("gamma_l%d", li))
		}
	}
	if !req.AllowTuning {
		for li := range res.Failed {
			perSlot := map[int]lp.Expr{}
			for pi, opt := range res.Options[li] {
				for _, s := range opt.Slots {
					perSlot[s] = perSlot[s].Plus(1, xi[xiKey{li, pi, s}])
				}
			}
			slots := make([]int, 0, len(perSlot))
			for s := range perSlot {
				slots = append(slots, s)
			}
			sort.Ints(slots)
			for _, s := range slots {
				if e := perSlot[s]; len(e) > 1 {
					m.AddConstr(e, lp.LE, 1, fmt.Sprintf("orig_l%d_s%d", li, s))
				}
			}
		}
	}

	if m.NumVars() == 0 {
		return res, nil
	}
	sol, err := mip.Solve(m, opts)
	if err != nil {
		return nil, fmt.Errorf("rwa exact: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("rwa exact: status %v", sol.Status)
	}
	out := &Result{
		Req: req, Failed: res.Failed, OrigWaves: res.OrigWaves,
		GbpsPerWave: res.GbpsPerWave, Options: res.Options,
	}
	out.FracWaves = make([]float64, len(res.Failed))
	for li := range res.Failed {
		total := 0.0
		for pi, opt := range res.Options[li] {
			for _, s := range opt.Slots {
				total += sol.X[xi[xiKey{li, pi, s}]]
			}
		}
		out.FracWaves[li] = total
		out.Objective += total
	}
	return out, nil
}
