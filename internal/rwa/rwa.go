// Package rwa implements ARROW's Routing and Wavelength Assignment module
// (Appendix A.2 of the paper): given a fiber-cut scenario, it finds k
// surrogate fiber paths for each failed IP link (k-shortest paths bounded by
// modulation reach), then solves the relaxed wavelength-assignment LP
// (constraints 14–17) whose fractional solution seeds LotteryTicket
// generation. It also provides the integral greedy assignment used for
// ticket feasibility checking and for the restoration-ratio measurements of
// §2.3.
package rwa

import (
	"fmt"
	"math"
	"sort"

	"github.com/arrow-te/arrow/internal/graph"
	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/spectrum"
)

// Request describes one RWA problem: restore the IP links failed by Cut.
type Request struct {
	Net *optical.Network
	Cut []int // fiber IDs cut in this scenario

	// K is the number of surrogate fiber paths per failed link (default 3).
	K int
	// AllowTuning permits transponder frequency retuning: a restored
	// wavelength may use any slot free end-to-end instead of only its
	// original slot (§5 "Other factors affecting the latency").
	AllowTuning bool
	// AllowModulationChange permits dropping to a lower-rate modulation when
	// the surrogate path exceeds the original format's reach (Appendix A.1).
	// When false, paths beyond the original reach are discarded.
	AllowModulationChange bool

	// Recorder receives per-solve metrics (failed links, surrogate path
	// options, LP effort) and is forwarded into the assignment LP. A nil
	// Recorder costs nothing and never changes the solution.
	Recorder obs.Recorder

	// NoWarm disables warm-starting the assignment LP from a slack basis.
	// The assignment LP is slack-feasible by construction (all rows are <=
	// with nonnegative rhs), so the warm start deterministically skips
	// phase 1; NoWarm exists for A/B comparison, not correctness.
	NoWarm bool

	// WarmFrom supplies already-solved constituent Results (typically the
	// single-fiber cuts making up this request's multi-fiber cut) whose
	// optimal assignments compositionally warm-start this solve. For each
	// failed link, the first source that also failed that link contributes
	// its chosen (path, slot) variables; the union is restricted to remain
	// feasible (no two adopted wavelengths share a fiber-slot, per-link
	// totals respect gamma_e), so the composed point always skips phase 1.
	// Sources must carry VarBasis (solved with ExportBasis). Composition is
	// a deterministic function of the request and sources alone: results
	// cannot vary with worker scheduling. Ignored when NoWarm is set.
	WarmFrom []*Result

	// ExportBasis makes the solve retain a canonical per-variable basis-
	// status map on the Result (Result.VarBasis) so it can serve as a
	// WarmFrom source for later, larger cut sets.
	ExportBasis bool

	// HealthEvery forwards the LP engine's numerical-health probe period
	// into the assignment LP (see lp.Options.HealthEvery). Zero keeps
	// probing off; the probes never change the solve.
	HealthEvery int
}

func (r *Request) k() int {
	if r.K <= 0 {
		return 3
	}
	return r.K
}

// PathOption is one usable surrogate restoration fiber path for a failed
// IP link, with the slots free end-to-end (wavelength continuity already
// applied) and the modulation the path length supports.
type PathOption struct {
	LinkID     int
	Fibers     []int
	LengthKm   float64
	Modulation spectrum.Modulation
	Slots      []int
}

// Result is the outcome of the relaxed RWA solve.
type Result struct {
	Req *Request
	// Failed lists the failed IP link IDs, defining the index order of all
	// per-link vectors (the "1..n" of Algorithm 1).
	Failed []int
	// FracWaves is the relaxed LP's (possibly fractional) restorable
	// wavelength count per failed link.
	FracWaves []float64
	// GbpsPerWave is the effective per-wavelength data rate used to convert
	// wavelength counts to bandwidth for each failed link (Algorithm 1
	// line 12). It is the most conservative modulation among the link's
	// usable surrogate paths.
	GbpsPerWave []float64
	// OrigWaves is gamma_e: the pre-failure wavelength count per failed link.
	OrigWaves []int
	// Options lists each failed link's surrogate path options.
	Options [][]PathOption
	// Objective is the LP's total restorable wavelength count.
	Objective float64
	// Health is the assignment LP's numerical-health report, present only
	// when Request.HealthEvery > 0 and the LP actually ran.
	Health *lp.HealthReport
	// VarBasis maps each assignment variable's canonical cross-model key to
	// its basis status at the LP optimum (variables nonbasic at lower bound
	// are omitted — they carry no information). Populated only when
	// Request.ExportBasis is set and the LP ran; it is what a later solve's
	// WarmFrom consumes.
	VarBasis map[WarmKey]lp.BasisStatus
	// Warm reports what the LP's warm-start machinery did (nil when the LP
	// was skipped or ran cold via NoWarm).
	Warm *lp.WarmInfo
	// ComposedVars counts the variables adopted from WarmFrom sources into
	// this solve's starting basis (0 on non-compositional solves).
	ComposedVars int
}

// WarmKey canonically identifies one assignment variable across solves of
// different cut sets: the failed IP link's global ID, the surrogate fiber
// path, and the spectrum slot. Local (link, path) indices differ between a
// single-cut and a multi-cut model, so compositional warm starts match
// variables by this key instead.
type WarmKey struct {
	Link int
	Path string // canonical fiber-path key, see pathKey
	Slot int
}

// pathKey renders a surrogate fiber path as a canonical map key.
func pathKey(fibers []int) string { return fmt.Sprint(fibers) }

// RestorableGbps returns the (fractional) restorable bandwidth of failed
// link i: FracWaves[i] * GbpsPerWave[i].
func (r *Result) RestorableGbps(i int) float64 { return r.FracWaves[i] * r.GbpsPerWave[i] }

// Solve runs the two-step RWA: route surrogate paths, then solve the
// relaxed wavelength-assignment LP.
func Solve(req *Request) (*Result, error) {
	obs.Add(req.Recorder, "rwa.solves", 1)
	res := &Result{Req: req}
	res.Failed = req.Net.FailedLinks(req.Cut)
	if len(res.Failed) == 0 {
		return res, nil
	}
	obs.Observe(req.Recorder, "rwa.failed_links", float64(len(res.Failed)))
	spectra := req.Net.SpectrumUnderCut(req.Cut)
	res.Options = make([][]PathOption, len(res.Failed))
	res.GbpsPerWave = make([]float64, len(res.Failed))
	res.OrigWaves = make([]int, len(res.Failed))
	res.FracWaves = make([]float64, len(res.Failed))

	for i, lid := range res.Failed {
		link := req.Net.LinkByID(lid)
		res.OrigWaves[i] = len(link.Waves)
		res.Options[i] = surrogatePaths(req, spectra, link)
		// Effective modulation: most conservative usable path, defaulting
		// to the link's own modulation when no path exists.
		rate := linkModulation(link).GbpsPerWavelength
		for _, opt := range res.Options[i] {
			if opt.Modulation.GbpsPerWavelength < rate {
				rate = opt.Modulation.GbpsPerWavelength
			}
		}
		res.GbpsPerWave[i] = rate
		obs.Observe(req.Recorder, "rwa.surrogate_paths", float64(len(res.Options[i])))
	}

	if err := solveAssignmentLP(req, spectra, res); err != nil {
		return nil, err
	}
	return res, nil
}

// linkModulation returns the modulation of the link's first wavelength (the
// generator provisions homogeneous bundles, matching the paper's
// simplification in footnote 3).
func linkModulation(l *optical.IPLink) spectrum.Modulation {
	if len(l.Waves) == 0 {
		return spectrum.Table6[0]
	}
	return l.Waves[0].Modulation
}

// surrogatePaths computes up to K usable surrogate restoration paths for a
// failed link: k-shortest paths on the optical graph avoiding cut fibers,
// bounded by modulation reach, each annotated with its continuity slots.
func surrogatePaths(req *Request, spectra []*spectrum.Bitmap, link *optical.IPLink) []PathOption {
	cutSet := map[int]bool{}
	for _, id := range req.Cut {
		cutSet[id] = true
	}
	g := req.Net.Graph()

	// Reach bound: with modulation change allowed, the most robust format's
	// reach bounds the search; otherwise the original modulation's reach.
	origMod := linkModulation(link)
	maxReach := origMod.ReachKm
	if req.AllowModulationChange {
		for _, m := range spectrum.Table6 {
			if m.ReachKm > maxReach {
				maxReach = m.ReachKm
			}
		}
	}

	// Yen's algorithm over a filtered copy of the optical graph that omits
	// the cut fibers entirely.
	fg := graph.New(g.NumNodes())
	for _, e := range g.Edges() {
		if e.From < e.To && !cutSet[e.Label] { // add each fiber once, both directions
			fg.AddBiEdge(e.From, e.To, e.Weight, e.Label)
		}
	}
	paths := fg.KShortestPaths(graph.Node(link.Src), graph.Node(link.Dst), req.k(), maxReach)

	var out []PathOption
	for _, p := range paths {
		var fibers []int
		for _, eid := range p.Edges {
			fibers = append(fibers, fg.Edge(eid).Label)
		}
		mod := origMod
		if p.Weight > origMod.ReachKm {
			if !req.AllowModulationChange {
				continue
			}
			m, ok := spectrum.BestModulation(p.Weight)
			if !ok {
				continue
			}
			mod = m
		}
		slots := usableSlots(req, spectra, link, fibers)
		if len(slots) == 0 {
			continue
		}
		out = append(out, PathOption{
			LinkID: link.ID, Fibers: fibers, LengthKm: p.Weight,
			Modulation: mod, Slots: slots,
		})
	}
	return out
}

// usableSlots returns the slots free on every fiber of the path. Without
// frequency tuning, only the failed wavelengths' original slots qualify.
func usableSlots(req *Request, spectra []*spectrum.Bitmap, link *optical.IPLink, fibers []int) []int {
	var bms []*spectrum.Bitmap
	for _, f := range fibers {
		bms = append(bms, spectra[f])
	}
	common := spectrum.PathSpectrum(bms)
	var out []int
	if req.AllowTuning {
		for s := 0; s < common.Len(); s++ {
			if common.Available(s) {
				out = append(out, s)
			}
		}
		return out
	}
	seen := map[int]bool{}
	for _, w := range link.Waves {
		if !seen[w.Slot] && common.Available(w.Slot) {
			seen[w.Slot] = true
			out = append(out, w.Slot)
		}
	}
	sort.Ints(out)
	return out
}

// xiKey indexes one assignment variable by local (failed-link, path-option,
// slot) position within a single model.
type xiKey struct{ link, path, slot int }

// solveAssignmentLP builds and solves the relaxed wavelength-assignment LP
// (Appendix A.2, constraints 14–17 with xi relaxed to [0,1]), maximising
// the total restored wavelength count.
func solveAssignmentLP(req *Request, spectra []*spectrum.Bitmap, res *Result) error {
	m := lp.NewModel("rwa")
	m.SetMaximize(true)

	xi := map[xiKey]lp.Var{}
	// Per-(fiber, slot) usage expressions for constraint (14).
	fiberSlot := map[[2]int]lp.Expr{}
	// Per-link totals for constraint (17).
	linkTotal := make([]lp.Expr, len(res.Failed))

	for li := range res.Failed {
		for pi, opt := range res.Options[li] {
			for _, s := range opt.Slots {
				v := m.AddVar(0, 1, 1, fmt.Sprintf("xi_l%d_p%d_s%d", li, pi, s))
				xi[xiKey{li, pi, s}] = v
				linkTotal[li] = linkTotal[li].Plus(1, v)
				for _, f := range opt.Fibers {
					key := [2]int{f, s}
					fiberSlot[key] = fiberSlot[key].Plus(1, v)
				}
			}
		}
	}
	// Emit rows in sorted key order: map iteration order would otherwise
	// change the simplex vertex between runs, breaking reproducibility.
	fsKeys := make([][2]int, 0, len(fiberSlot))
	for key := range fiberSlot {
		fsKeys = append(fsKeys, key)
	}
	sort.Slice(fsKeys, func(a, b int) bool {
		if fsKeys[a][0] != fsKeys[b][0] {
			return fsKeys[a][0] < fsKeys[b][0]
		}
		return fsKeys[a][1] < fsKeys[b][1]
	})
	for _, key := range fsKeys {
		m.AddConstr(fiberSlot[key], lp.LE, 1, fmt.Sprintf("slot_f%d_s%d", key[0], key[1]))
	}
	for li, e := range linkTotal {
		if len(e) == 0 {
			continue
		}
		m.AddConstr(e, lp.LE, float64(res.OrigWaves[li]), fmt.Sprintf("gamma_l%d", li))
	}
	// Without tuning, each original slot can restore at most one of the
	// link's wavelengths across all paths.
	if !req.AllowTuning {
		for li := range res.Failed {
			perSlot := map[int]lp.Expr{}
			for pi, opt := range res.Options[li] {
				for _, s := range opt.Slots {
					perSlot[s] = perSlot[s].Plus(1, xi[xiKey{li, pi, s}])
				}
			}
			slots := make([]int, 0, len(perSlot))
			for s := range perSlot {
				slots = append(slots, s)
			}
			sort.Ints(slots)
			for _, s := range slots {
				if e := perSlot[s]; len(e) > 1 {
					m.AddConstr(e, lp.LE, 1, fmt.Sprintf("orig_l%d_s%d", li, s))
				}
			}
		}
	}

	if m.NumVars() == 0 {
		return nil // nothing restorable
	}
	var lpo *lp.Options
	if req.Recorder != nil || req.HealthEvery > 0 {
		lpo = &lp.Options{Recorder: req.Recorder, HealthEvery: req.HealthEvery}
	}
	var sol *lp.Solution
	var err error
	if req.NoWarm {
		sol, err = lp.Solve(m, lpo)
	} else {
		// All rows are <= with nonnegative rhs, so the all-slack basis is
		// primal feasible and the warm start skips phase 1 entirely. With
		// WarmFrom sources, the slack basis is further seeded with the
		// constituent solves' chosen variables (restricted to stay
		// feasible), so phase 2 also starts near the composed optimum.
		basis := lp.SlackBasis(m)
		if len(req.WarmFrom) > 0 {
			res.ComposedVars = composeWarmBasis(req, basis, xi, res)
			obs.Add(req.Recorder, "rwa.compose_adopted", int64(res.ComposedVars))
		}
		sol, err = lp.SolveWithBasis(m, basis, lpo)
	}
	if err != nil {
		return fmt.Errorf("rwa assignment LP: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return fmt.Errorf("rwa assignment LP: status %v", sol.Status)
	}
	res.Health = sol.Health
	res.Warm = sol.Warm
	if req.ExportBasis && sol.Basis != nil {
		res.VarBasis = map[WarmKey]lp.BasisStatus{}
		for li := range res.Failed {
			for pi, opt := range res.Options[li] {
				key := pathKey(opt.Fibers)
				for _, s := range opt.Slots {
					st := sol.Basis.VarStatus[int(xi[xiKey{li, pi, s}])]
					if st != lp.BasisAtLower {
						res.VarBasis[WarmKey{Link: res.Failed[li], Path: key, Slot: s}] = st
					}
				}
			}
		}
	}
	for li := range res.Failed {
		total := 0.0
		for pi, opt := range res.Options[li] {
			for _, s := range opt.Slots {
				total += sol.X[xi[xiKey{li, pi, s}]]
			}
		}
		res.FracWaves[li] = math.Min(total, float64(res.OrigWaves[li]))
		res.Objective += res.FracWaves[li]
	}
	return nil
}

// composeWarmBasis seeds a slack basis with the union of the WarmFrom
// sources' chosen assignment variables, restricted to stay primal feasible
// in the combined model. For each failed link the FIRST source that also
// failed it contributes: every variable the source's optimum held basic or
// at its upper bound is adopted AT UPPER (wavelength fully restored on that
// path and slot) provided no previously adopted variable already claims one
// of its fiber-slots, the link's gamma_e quota is not exhausted, and — in
// no-tuning mode — the original slot is not already reused. Those three
// guards are exactly constraints (14), (17) and the orig-slot rows, so the
// composed basic point is feasible by construction and SolveWithBasis skips
// phase 1. Variables unique to the multi-cut model (paths that traverse the
// other cut's fibers exist only in the singles) drop out naturally: their
// keys simply miss.
//
// The adoption order — links in Failed order, path options in rank order,
// slots in option order — and the first-match source rule are deterministic
// functions of the request alone, preserving the pipeline's reproducibility
// contract at any worker count. Returns the number of adopted variables.
func composeWarmBasis(req *Request, basis *lp.Basis, xi map[xiKey]lp.Var, res *Result) int {
	srcFor := make([]*Result, len(res.Failed))
	for i, lid := range res.Failed {
		for _, src := range req.WarmFrom {
			if src == nil || len(src.VarBasis) == 0 {
				continue
			}
			for _, sl := range src.Failed {
				if sl == lid {
					srcFor[i] = src
					break
				}
			}
			if srcFor[i] != nil {
				break
			}
		}
	}
	claimed := map[[2]int]bool{} // (fiber, slot) pairs taken by adopted vars
	adopted := 0
	for li := range res.Failed {
		src := srcFor[li]
		if src == nil {
			continue
		}
		quota := res.OrigWaves[li]
		usedOrig := map[int]bool{} // per-link original-slot guard (no tuning)
	options:
		for pi, opt := range res.Options[li] {
			key := pathKey(opt.Fibers)
			for _, s := range opt.Slots {
				if quota <= 0 {
					break options
				}
				st, ok := src.VarBasis[WarmKey{Link: res.Failed[li], Path: key, Slot: s}]
				if !ok || (st != lp.BasisBasic && st != lp.BasisAtUpper) {
					continue
				}
				if !req.AllowTuning && usedOrig[s] {
					continue
				}
				free := true
				for _, f := range opt.Fibers {
					if claimed[[2]int{f, s}] {
						free = false
						break
					}
				}
				if !free {
					continue
				}
				for _, f := range opt.Fibers {
					claimed[[2]int{f, s}] = true
				}
				basis.VarStatus[int(xi[xiKey{li, pi, s}])] = lp.BasisAtUpper
				usedOrig[s] = true
				quota--
				adopted++
			}
		}
	}
	return adopted
}

// Assignment is an integral wavelength assignment: for each failed link
// (by Result index), the chosen (path option, slot) pairs.
type Assignment struct {
	// PerLink[i] lists (pathIndex, slot) pairs for failed link i.
	PerLink [][][2]int
}

// Waves returns the number of restored wavelengths for failed link i.
func (a *Assignment) Waves(i int) int { return len(a.PerLink[i]) }

// AssignIntegral greedily constructs an integral assignment that restores
// target[i] wavelengths for failed link i (first-fit over paths and slots,
// links with fewest options first). It returns the assignment and whether
// every target was met. Targets are clamped to the link's original
// wavelength count. The greedy check is sound (a returned complete
// assignment is always physically feasible) but incomplete: it may fail on
// feasible targets; callers treat that as "ticket infeasible", matching the
// paper's conservative feasibility filter.
func AssignIntegral(res *Result, target []int) (*Assignment, bool) {
	n := len(res.Failed)
	a := &Assignment{PerLink: make([][][2]int, n)}
	used := map[[2]int]bool{} // (fiber, slot) claimed

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return slotOptionCount(res, order[x]) < slotOptionCount(res, order[y])
	})

	ok := true
	for _, li := range order {
		want := target[li]
		if want > res.OrigWaves[li] {
			want = res.OrigWaves[li]
		}
		// Prefer the link's original frequencies: the paper keeps the same
		// slot whenever possible to avoid transponder retuning latency.
		origSlot := map[int]bool{}
		for _, w := range res.Req.Net.LinkByID(res.Failed[li]).Waves {
			origSlot[w.Slot] = true
		}
		got := 0
		usedOrig := map[int]bool{} // original-slot reuse guard (no-tuning mode)
		for pi, opt := range res.Options[li] {
			if got >= want {
				break
			}
			slots := append([]int(nil), opt.Slots...)
			sort.SliceStable(slots, func(a, b int) bool {
				oa, ob := origSlot[slots[a]], origSlot[slots[b]]
				if oa != ob {
					return oa
				}
				return slots[a] < slots[b]
			})
			for _, s := range slots {
				if got >= want {
					break
				}
				if !res.Req.AllowTuning && usedOrig[s] {
					continue
				}
				free := true
				for _, f := range opt.Fibers {
					if used[[2]int{f, s}] {
						free = false
						break
					}
				}
				if !free {
					continue
				}
				for _, f := range opt.Fibers {
					used[[2]int{f, s}] = true
				}
				a.PerLink[li] = append(a.PerLink[li], [2]int{pi, s})
				usedOrig[s] = true
				got++
			}
		}
		if got < want {
			ok = false
		}
	}
	return a, ok
}

func slotOptionCount(res *Result, li int) int {
	c := 0
	for _, opt := range res.Options[li] {
		c += len(opt.Slots)
	}
	return c
}

// SlotCapacity returns an upper bound on the wavelengths failed link li can
// ever recover: the total (path, slot) pairs across its surrogate options,
// ignoring spectrum contention with other links. A rounding target above
// this bound is infeasible regardless of assignment order; a target within
// it that AssignIntegral still cannot realise failed on cross-link spectrum
// clashes instead.
func SlotCapacity(res *Result, li int) int { return slotOptionCount(res, li) }

// MaxIntegralWaves runs the greedy assignment asking for every link's full
// wavelength count and returns the per-link restored counts. This is the
// integral analogue of the LP objective, used for restoration-ratio
// measurements (Fig. 6).
func MaxIntegralWaves(res *Result) []int {
	target := make([]int, len(res.Failed))
	copy(target, res.OrigWaves)
	a, _ := AssignIntegral(res, target)
	out := make([]int, len(res.Failed))
	for i := range out {
		out[i] = a.Waves(i)
	}
	return out
}

// RestorationRatio computes U_phi for cutting exactly fiber phi: restored
// bandwidth over provisioned bandwidth (1.0 when the fiber carries nothing).
func RestorationRatio(net *optical.Network, fiber int, k int, allowTuning, allowModChange bool) (float64, error) {
	res, err := Solve(&Request{Net: net, Cut: []int{fiber}, K: k, AllowTuning: allowTuning, AllowModulationChange: allowModChange})
	if err != nil {
		return 0, err
	}
	provisioned := 0.0
	for _, li := range res.Failed {
		provisioned += net.LinkByID(li).CapacityGbps()
	}
	if provisioned == 0 {
		return 1, nil
	}
	counts := MaxIntegralWaves(res)
	restored := 0.0
	for i := range res.Failed {
		restored += float64(counts[i]) * res.GbpsPerWave[i]
	}
	return restored / provisioned, nil
}
