package te

import (
	"fmt"
	"math"

	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
)

// ArrowOptions tunes the two-phase restoration-aware TE.
type ArrowOptions struct {
	// Alpha bounds the Phase I slack: M^{z,q} = alpha * sum_e r_e^{z,q}
	// (§3.3; the paper experiments with 0.2, 0.1 and 0.05; default 0.1).
	Alpha float64
	LP    *lp.Options
	// Ledger, when non-nil, records solve start/end events (with
	// certificates) for both phases plus the winning ticket and residual
	// unmet demand of the final plan. Nil costs nothing and never changes
	// the allocation.
	Ledger *ledger.Ledger
	// NoWarm disables warm-starting: Phase I then starts cold instead of
	// from the all-slack basis, and Phase II starts cold instead of from
	// Phase I's final basis. The warm sources are deterministic (never
	// "whichever solve finished first"), so the switch exists only for A/B
	// pivot-count comparison.
	NoWarm bool
	// NoColgen disables column generation for Phase I: the master then
	// enumerates every ticket's rows up front (the pre-colgen formulation)
	// instead of pricing ticket blocks in lazily. Both modes optimise the
	// same feasible region; the switch exists for A/B comparison of pivot
	// counts and master sizes.
	NoColgen bool
	// Parallelism bounds the workers of the colgen pricing fan-out
	// (<= 0 means serial). Results are byte-identical at any worker count:
	// pricing is index-addressed per scenario and appends happen in
	// scenario order after each sweep.
	Parallelism int
	// HealthEvery probes both phases' LP solves for numerical health at
	// this pivot period (see lp.Options.HealthEvery). It overlays the LP
	// options (a non-zero LP.HealthEvery wins); probes only read solver
	// state and never change the allocation.
	HealthEvery int
	// Profiler attributes the solve's wall time and allocations to stages
	// (te.phase1, te.phase2, plus the te.pricing aggregate for the colgen
	// sweeps). Same contract as the recorder: nil costs a nil check and the
	// allocation is byte-identical profiled or not.
	Profiler *obs.StageProfiler
	// CaptureSensitivity attaches the final Phase II model, basis, duals
	// and capacity-row handles to the returned Allocation (Allocation.Sens)
	// for post-solve availability attribution (internal/attr). Capturing
	// only retains pointers the solve produced anyway: the allocation is
	// byte-identical captured or not.
	CaptureSensitivity bool
}

func (o *ArrowOptions) alpha() float64 {
	if o == nil || o.Alpha <= 0 {
		return 0.1
	}
	return o.Alpha
}

func (o *ArrowOptions) ledger() *ledger.Ledger {
	if o == nil {
		return nil
	}
	return o.Ledger
}

func (o *ArrowOptions) noWarm() bool { return o != nil && o.NoWarm }

func (o *ArrowOptions) captureSensitivity() bool { return o != nil && o.CaptureSensitivity }

func (o *ArrowOptions) colgen() bool { return o == nil || !o.NoColgen }

func (o *ArrowOptions) parallelism() int {
	if o == nil || o.Parallelism <= 0 {
		return 1
	}
	return o.Parallelism
}

func (o *ArrowOptions) profiler() *obs.StageProfiler {
	if o == nil {
		return nil
	}
	return o.Profiler
}

func (o *ArrowOptions) recorder() obs.Recorder {
	if o == nil || o.LP == nil {
		return nil
	}
	return o.LP.Recorder
}

// lpOpts resolves the LP options both phases solve under: o.LP with the
// option-level HealthEvery overlaid (an explicit LP.HealthEvery wins).
func (o *ArrowOptions) lpOpts() *lp.Options {
	if o == nil {
		return nil
	}
	if o.HealthEvery <= 0 || (o.LP != nil && o.LP.HealthEvery > 0) {
		return o.LP
	}
	var v lp.Options
	if o.LP != nil {
		v = *o.LP
	}
	v.HealthEvery = o.HealthEvery
	return &v
}

// phase1Recorder mirrors the LP engine's pivot counters under te.phase1_*
// names, scoping Phase I master work out of a full run: pipeline totals are
// dominated by Phase II (identical across colgen modes), so run-level
// lp.pivots barely moves when only the Phase I master shrinks.
type phase1Recorder struct{ obs.Recorder }

func (p phase1Recorder) Add(name string, d int64) {
	p.Recorder.Add(name, d)
	switch name {
	case "lp.pivots":
		p.Recorder.Add("te.phase1_pivots", d)
	case "lp.pivot_work":
		p.Recorder.Add("te.phase1_pivot_work", d)
	}
}

// phase1LP returns the LP options Phase I solves run under: the resolved
// options (see lpOpts) with the recorder wrapped in phase1Recorder
// (pass-through when unset).
func (o *ArrowOptions) phase1LP() *lp.Options {
	base := o.lpOpts()
	if base == nil || base.Recorder == nil {
		return base
	}
	lpo := *base
	lpo.Recorder = phase1Recorder{base.Recorder}
	return &lpo
}

// emitWarmStart records a warm-started solve's outcome on the ledger:
// whether the starting basis let the solver skip phase 1 entirely, was
// accepted (possibly after repair), or was rejected in favour of a cold
// start, plus the phase-1 pivots saved versus a cold start.
func emitWarmStart(L *ledger.Ledger, solver string, sol *lp.Solution) {
	if L == nil || sol == nil || sol.Warm == nil {
		return
	}
	wi := sol.Warm
	status := "rejected"
	switch {
	case wi.Phase1Skipped:
		status = "phase1_skipped"
	case wi.Accepted:
		status = "accepted"
	}
	L.Emit(ledger.Event{
		Kind: ledger.KindWarmStart, Scenario: -1, Solver: solver,
		Status: status, Count: wi.PivotsSaved,
	})
}

// emitPlan records the final restoration plan: one winner event per
// scenario (restored capacity and restored-capacity fraction over the lost
// link capacity) plus the run-level residual unmet demand.
func emitPlan(L *ledger.Ledger, n *Network, scs []RestorableScenario, al *Allocation) {
	for qi := range scs {
		lost, restored := 0.0, 0.0
		for _, link := range scs[qi].FailedLinks {
			lost += n.LinkCap[link]
		}
		for _, g := range al.RestoredGbps[qi] {
			restored += g
		}
		frac := 0.0
		if lost > 0 {
			frac = restored / lost
		}
		L.Emit(ledger.Event{
			Kind: ledger.KindWinner, Scenario: qi,
			Ticket: al.WinningTicket[qi], Gbps: restored, Fraction: frac,
		})
	}
	total := n.TotalDemand()
	admitted := 0.0
	for _, b := range al.B {
		admitted += b
	}
	unmet := math.Max(0, total-admitted)
	frac := 0.0
	if total > 0 {
		frac = unmet / total
	}
	L.Emit(ledger.Event{Kind: ledger.KindUnmetDemand, Scenario: -1, Gbps: unmet, Fraction: frac})
}

// Arrow runs ARROW's full two-phase restoration-aware TE (§3.3):
// Phase I (Table 2) selects the winning LotteryTicket per failure scenario
// through slack minimisation; Phase II (Table 3) computes the final tunnel
// allocation using the winners. The returned Allocation carries the
// restoration plan Z* (winning ticket index and restored capacity per
// scenario) ready to be installed as ROADM reconfiguration rules.
func Arrow(n *Network, scs []RestorableScenario, opts *ArrowOptions) (*Allocation, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	endP1 := opts.profiler().Stage("te.phase1")
	winners, p1stats, p1basis, err := arrowPhase1Dispatch(n, scs, opts)
	endP1()
	if err != nil {
		return nil, err
	}
	// Phase II warm-starts from Phase I's basis restricted to the shared
	// base-model rows — a deterministic source fixed before any Phase II
	// solve runs.
	al, err := arrowPhase2WithBasis(n, scs, winners, opts, p1basis)
	if err != nil {
		return nil, err
	}
	// Phase I ranks tickets against its own (slack-throttled) loads, which
	// can mis-rank when many tickets tie near zero slack. Ticket 0 is by
	// convention the RWA-derived candidate (the |Z|=1 / Arrow-Naive plan),
	// so solving Phase II once more against it and keeping the better
	// allocation guarantees the demand-aware selection never does worse
	// than restoration planned at the optical layer alone.
	allFirst := true
	for _, w := range winners {
		if w != 0 {
			allFirst = false
			break
		}
	}
	if !allFirst {
		// The fallback solve warm-starts from the SAME Phase I basis as the
		// winners solve (not from the winners solve's result), keeping the
		// warm source independent of which Phase II solve ran first.
		fallback, err := arrowPhase2WithBasis(n, scs, make([]int, len(scs)), opts, p1basis)
		if err != nil {
			return nil, err
		}
		if fallback.Objective > al.Objective+1e-9 {
			al = fallback
		} else if fallback.Objective > al.Objective-1e-9 && totalRestored(fallback) > totalRestored(al)+1e-9 {
			// On a throughput tie, prefer the plan that revives more capacity:
			// extra restored bandwidth can only improve delivery under failures.
			al = fallback
		}
	}
	// Phase I stats attach to whichever allocation survived the fallback
	// comparison (the fallback's own Stats carry Phase II numbers only).
	al.Stats.Phase1Vars = p1stats.Phase1Vars
	al.Stats.Phase1Rows = p1stats.Phase1Rows
	al.Stats.Phase1Iters = p1stats.Phase1Iters
	if L := opts.ledger(); L != nil {
		emitPlan(L, n, scs, al)
	}
	return al, nil
}

func totalRestored(al *Allocation) float64 {
	t := 0.0
	for _, plan := range al.RestoredGbps {
		for _, g := range plan {
			t += g
		}
	}
	return t
}

// ArrowNaive runs Phase II only, treating each scenario's FIRST ticket as
// the winner. Callers typically pass a single RWA-derived candidate per
// scenario, reproducing the paper's Arrow-Naive baseline (restoration
// planned purely at the optical layer, blind to traffic demand).
func ArrowNaive(n *Network, scs []RestorableScenario, opts *ArrowOptions) (*Allocation, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	winners := make([]int, len(scs))
	al, err := ArrowPhase2(n, scs, winners, opts)
	if err != nil {
		return nil, err
	}
	if L := opts.ledger(); L != nil {
		emitPlan(L, n, scs, al)
	}
	return al, nil
}

// ArrowPhase1 solves the Table 2 LP and returns the winning ticket index
// for each scenario (argmin_z sum_e max(0, Delta_e^{z,q})).
// Use Arrow for the full two-phase flow; ArrowPhase1 exists for callers
// that want to inspect or override the ticket selection.
//
// The slack variables Delta_e^{z,q} are FREE (they may be negative): as the
// paper's footnote 5 notes, the ReLU max(0, .) is applied in
// post-processing only. Constraint (6) therefore bounds each ticket's
// aggregate restorable-link overload — sum_e load_e <= sum_e r_e^{z,q} +
// M^{z,q} — rather than hard-capping individual links, which would let one
// poor ticket strangle the whole allocation. Per-link hard caps are
// Phase II's job, once the winner is known.
//
// Post-processing computes each ticket's required slack directly from the
// solved loads, sum_e max(0, load_e^{z,q} - r_e^{z,q}), which is the
// minimal feasible value of sum_e max(0, Delta) — deterministic even when
// the LP vertex leaves Delta off its lower envelope.
//
// Constraint (4) rows are deduplicated per flow across (q,z) pairs with
// identical surviving+restorable tunnel sets, which collapses the common
// case where every ticket restores some capacity on every link.
func ArrowPhase1(n *Network, scs []RestorableScenario, opts *ArrowOptions) ([]int, error) {
	winners, _, _, err := arrowPhase1Dispatch(n, scs, opts)
	return winners, err
}

// arrowPhase1Dispatch routes Phase I to the column-generation restricted
// master (the default) or the full up-front enumeration (NoColgen).
func arrowPhase1Dispatch(n *Network, scs []RestorableScenario, opts *ArrowOptions) ([]int, SolveStats, *lp.Basis, error) {
	for qi := range scs {
		if len(scs[qi].Tickets) == 0 {
			return nil, SolveStats{}, nil, fmt.Errorf("te: arrow: scenario %d has no tickets", qi)
		}
	}
	if opts.colgen() {
		return arrowPhase1Colgen(n, scs, opts)
	}
	return arrowPhase1WithStats(n, scs, opts)
}

// arrowPhase1WithStats is ArrowPhase1 plus model-size/iteration reporting.
// It additionally returns Phase I's final basis restricted to the shared
// base-model rows, ready to warm-start Phase II (nil when warm starts are
// disabled): both phases extend the same newBaseModel skeleton, so the
// variable layout and the leading constraint rows coincide exactly.
func arrowPhase1WithStats(n *Network, scs []RestorableScenario, opts *ArrowOptions) ([]int, SolveStats, *lp.Basis, error) {
	bm := newBaseModel("arrow-phase1", n)
	baseRows := bm.m.NumConstrs()
	baseVars := bm.m.NumVars()
	alpha := opts.alpha()

	refLoad := buildRefLoads(n, scs, bm)
	// coverSeen[f] dedups constraint (4) rows per flow across (q,z) pairs
	// with identical surviving+restorable tunnel sets.
	coverSeen := newCoverSeen(n)

	// Every ticket's block goes in up front, in the same delta-column form
	// the colgen master uses (constraint (4) cover rows, then the
	// constraints (5)+(6) aggregate row load - u <= totalR with the
	// relaxation column u in [0, alpha*totalR]): identical formulations are
	// what make the two modes' masters — and their peak column counts —
	// directly comparable.
	for qi := range scs {
		q := &scs[qi]
		for z := range q.Tickets {
			blk := buildTicketBlock(n, q, z, bm)
			appendTicketBlock(bm, nil, qi, z, &blk, alpha, coverSeen)
		}
	}

	lpo := opts.phase1LP()
	L := opts.ledger()
	if L != nil {
		L.Emit(ledger.Event{Kind: ledger.KindSolveStart, Scenario: -1, Solver: bm.m.Name()})
	}
	var sol *lp.Solution
	var err error
	if opts.noWarm() {
		sol, err = lp.Solve(bm.m, lpo)
	} else {
		// Every Phase I row is satisfied at x = 0 (GE rows have rhs 0, LE
		// rows nonnegative rhs), so the all-slack basis skips phase 1.
		sol, err = lp.SolveWithBasis(bm.m, lp.SlackBasis(bm.m), lpo)
	}
	if err != nil {
		return nil, SolveStats{}, nil, fmt.Errorf("te: arrow phase 1: %w", err)
	}
	if L != nil {
		emitWarmStart(L, bm.m.Name(), sol)
		L.Emit(ledger.Event{
			Kind: ledger.KindSolveEnd, Scenario: -1, Solver: bm.m.Name(),
			Status: sol.Status.String(), Cert: sol.Cert,
		})
		ledger.EmitSolverHealth(L, -1, bm.m.Name(), sol.Health)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, SolveStats{}, nil, fmt.Errorf("te: arrow phase 1: status %v", sol.Status)
	}
	primaryIters := sol.Iterations

	// Canonicalise the vertex before winner selection: lock the primary
	// optimum and minimise the total reference load, so the winner ranking
	// does not depend on which degenerate optimum the pivot path happened
	// to reach (see setCanonicalObjective). The colgen path runs the same
	// pass, which is what makes the two modes agree on winners.
	setCanonicalObjective(bm, scs, refLoad, sol.Objective)
	sol, err = solveCanonical(bm, sol.Basis, opts)
	if err != nil {
		return nil, SolveStats{}, nil, err
	}

	var p1basis *lp.Basis
	if !opts.noWarm() && sol.Basis != nil {
		p1basis = &lp.Basis{VarStatus: sol.Basis.VarStatus, RowStatus: sol.Basis.RowStatus}
		if len(p1basis.VarStatus) > baseVars {
			p1basis.VarStatus = p1basis.VarStatus[:baseVars]
		}
		if len(p1basis.RowStatus) > baseRows {
			p1basis.RowStatus = p1basis.RowStatus[:baseRows]
		}
	}
	stats := SolveStats{Phase1Vars: bm.m.NumVars(), Phase1Rows: bm.m.NumConstrs(), Phase1Iters: primaryIters + sol.Iterations}
	return pickWinners(scs, refLoad, sol.X), stats, p1basis, nil
}

// ArrowPhase2 solves the Table 3 LP with the given winning ticket per
// scenario and returns the final allocation plus the restoration plan.
// Standalone calls warm-start from the all-slack basis (unless NoWarm);
// Arrow instead passes Phase I's basis through arrowPhase2WithBasis.
func ArrowPhase2(n *Network, scs []RestorableScenario, winners []int, opts *ArrowOptions) (*Allocation, error) {
	return arrowPhase2WithBasis(n, scs, winners, opts, nil)
}

// arrowPhase2WithBasis is ArrowPhase2 with an explicit warm-start basis.
// A nil basis (with warm starts enabled) falls back to the all-slack basis,
// which is primal feasible for every Table 3 model.
func arrowPhase2WithBasis(n *Network, scs []RestorableScenario, winners []int, opts *ArrowOptions, warm *lp.Basis) (*Allocation, error) {
	if len(winners) != len(scs) {
		return nil, fmt.Errorf("te: arrow phase 2: %d winners for %d scenarios", len(winners), len(scs))
	}
	defer opts.profiler().Stage("te.phase2")()
	bm := newBaseModel("arrow-phase2", n)
	for qi := range scs {
		q := &scs[qi]
		if winners[qi] < 0 || winners[qi] >= len(q.Tickets) {
			return nil, fmt.Errorf("te: arrow phase 2: scenario %d winner %d out of range", qi, winners[qi])
		}
		z := winners[qi]
		failed := failedSet(q.FailedLinks)
		restored := func(link int) float64 { return q.TicketGbps(z, link) }

		// Constraint (10).
		for f := range n.Flows {
			res := residualTunnels(n, f, failed)
			rst := restorableTunnels(n, f, failed, restored)
			if len(res)+len(rst) == len(n.Tunnels[f]) || len(res)+len(rst) == 0 {
				// Nothing lost, or the flow is disconnected under this
				// scenario+ticket (no residual or restorable tunnel):
				// the guarantee is either implied by (1) or vacuous.
				continue
			}
			var e lp.Expr
			for _, ti := range res {
				e = e.Plus(1, bm.a[f][ti])
			}
			for _, ti := range rst {
				e = e.Plus(1, bm.a[f][ti])
			}
			e = e.Plus(-1, bm.b[f])
			bm.m.AddConstr(e, lp.GE, 0, fmt.Sprintf("p2cover_f%d_q%d", f, qi))
		}
		// Constraint (11): hard restored-capacity limits.
		for _, link := range q.FailedLinks {
			var load lp.Expr
			for f := range n.Flows {
				for _, ti := range restorableTunnels(n, f, failed, restored) {
					for _, le := range n.Tunnels[f][ti].Links {
						if le == link {
							load = load.Plus(1, bm.a[f][ti])
							break
						}
					}
				}
			}
			if len(load) > 0 {
				c := bm.m.AddConstr(load, lp.LE, restored(link), fmt.Sprintf("p2cap_e%d_q%d", link, qi))
				bm.capRows = append(bm.capRows, CapRow{Link: link, Scenario: qi, Constr: c})
			}
		}
	}

	lpo := opts.lpOpts()
	L := opts.ledger()
	if L != nil {
		L.Emit(ledger.Event{Kind: ledger.KindSolveStart, Scenario: -1, Solver: bm.m.Name()})
	}
	warmBasis := warm
	if !opts.noWarm() && warmBasis == nil {
		warmBasis = lp.SlackBasis(bm.m)
	}
	if opts.noWarm() {
		warmBasis = nil
	}
	al, sol, err := bm.solveLP(n, lpo, warmBasis)
	if L != nil {
		emitWarmStart(L, bm.m.Name(), sol)
		status := "optimal"
		if err != nil {
			status = "error"
		}
		var cert *lp.Certificate
		if al != nil {
			cert = al.Cert
		}
		L.Emit(ledger.Event{
			Kind: ledger.KindSolveEnd, Scenario: -1, Solver: bm.m.Name(),
			Status: status, Cert: cert,
		})
		if sol != nil {
			ledger.EmitSolverHealth(L, -1, bm.m.Name(), sol.Health)
		}
	}
	if err != nil {
		return nil, err
	}
	if opts.captureSensitivity() && sol != nil {
		al.Sens = &SensitivityHandle{
			Model: bm.m, Basis: sol.Basis, Duals: sol.Duals,
			Objective: sol.Objective, CapRows: bm.capRows,
			BVars: bm.b, AVars: bm.a,
		}
	}
	al.WinningTicket = append([]int(nil), winners...)
	al.RestoredGbps = make([]map[int]float64, len(scs))
	for qi := range scs {
		plan := map[int]float64{}
		for _, link := range scs[qi].FailedLinks {
			plan[link] = scs[qi].TicketGbps(winners[qi], link)
		}
		al.RestoredGbps[qi] = plan
	}
	return al, nil
}
