package te

import (
	"math"
	"testing"

	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
)

// TestArrowWarmMatchesCold pins the warm-start contract on the two-phase
// TE: warm (Phase I from the all-slack basis, Phase II from Phase I's
// basis) and cold runs must agree on the winning tickets and the final
// objective, and the warm run must skip at least Phase I's LP phase 1.
func TestArrowWarmMatchesCold(t *testing.T) {
	n := parallelLinks()
	scs := fig7Scenario()

	warmReg, coldReg := obs.NewRegistry(), obs.NewRegistry()
	warm, err := Arrow(n, scs, &ArrowOptions{LP: &lp.Options{Recorder: warmReg}})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Arrow(n, scs, &ArrowOptions{LP: &lp.Options{Recorder: coldReg}, NoWarm: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
		t.Errorf("objectives differ: warm %.12g cold %.12g", warm.Objective, cold.Objective)
	}
	if len(warm.WinningTicket) != len(cold.WinningTicket) {
		t.Fatalf("winner counts differ: %v vs %v", warm.WinningTicket, cold.WinningTicket)
	}
	for qi := range warm.WinningTicket {
		if warm.WinningTicket[qi] != cold.WinningTicket[qi] {
			t.Errorf("scenario %d winner differs: warm %d cold %d",
				qi, warm.WinningTicket[qi], cold.WinningTicket[qi])
		}
	}
	ws, cs := warmReg.Snapshot().Counters, coldReg.Snapshot().Counters
	if ws["lp.warm_starts"] < 2 { // phase 1 + at least one phase 2 solve
		t.Errorf("lp.warm_starts = %d, want >= 2", ws["lp.warm_starts"])
	}
	if cs["lp.warm_starts"] != 0 {
		t.Errorf("cold run recorded %d lp.warm_starts", cs["lp.warm_starts"])
	}
	if ws["lp.phase1_skipped"] == 0 {
		t.Error("warm run never skipped phase 1 (slack basis should be feasible)")
	}
	if ws["lp.phase1_pivots"] > cs["lp.phase1_pivots"] {
		t.Errorf("warm phase-1 pivots %d exceed cold %d",
			ws["lp.phase1_pivots"], cs["lp.phase1_pivots"])
	}
}

// TestArrowWarmDeterministicPivots re-runs the warm two-phase solve and
// requires identical pivot counts: the warm sources are fixed (slack basis,
// then Phase I's basis), so the pivot sequence cannot depend on timing.
func TestArrowWarmDeterministicPivots(t *testing.T) {
	var pivots []int64
	for i := 0; i < 3; i++ {
		reg := obs.NewRegistry()
		if _, err := Arrow(parallelLinks(), fig7Scenario(), &ArrowOptions{LP: &lp.Options{Recorder: reg}}); err != nil {
			t.Fatal(err)
		}
		pivots = append(pivots, reg.Snapshot().Counters["lp.pivots"])
	}
	if pivots[0] != pivots[1] || pivots[1] != pivots[2] {
		t.Errorf("pivot counts drifted across identical runs: %v", pivots)
	}
}

// TestArrowLedgerWarmStartEvents checks the flight-recorder seam: every
// warm-started solve leaves one KindWarmStart event naming its model and a
// recognised outcome status.
func TestArrowLedgerWarmStartEvents(t *testing.T) {
	L := ledger.New()
	if _, err := Arrow(parallelLinks(), fig7Scenario(), &ArrowOptions{Ledger: L}); err != nil {
		t.Fatal(err)
	}
	events := L.Events()
	seen := map[string]int{}
	for _, ev := range events {
		if ev.Kind != ledger.KindWarmStart {
			continue
		}
		switch ev.Status {
		case "phase1_skipped", "accepted", "rejected":
		default:
			t.Errorf("warm_start event with unknown status %q", ev.Status)
		}
		if ev.Count < 0 {
			t.Errorf("warm_start event with negative pivots saved: %+v", ev)
		}
		seen[ev.Solver]++
	}
	if seen["arrow-phase1"] != 1 {
		t.Errorf("arrow-phase1 warm_start events = %d, want 1", seen["arrow-phase1"])
	}
	if seen["arrow-phase2"] < 1 {
		t.Errorf("arrow-phase2 warm_start events = %d, want >= 1", seen["arrow-phase2"])
	}
	// Cold runs must leave no warm_start events at all.
	Lc := ledger.New()
	if _, err := Arrow(parallelLinks(), fig7Scenario(), &ArrowOptions{Ledger: Lc, NoWarm: true}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range Lc.Events() {
		if ev.Kind == ledger.KindWarmStart {
			t.Errorf("cold run emitted warm_start event: %+v", ev)
		}
	}
}
