package te

import (
	"fmt"
	"sort"

	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/mip"
	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/rwa"
)

// BinaryILP solves ARROW's ticket-selection TE as the binary ILP of
// Table 9: one binary x^{z,q} per (scenario, ticket) with big-M linking,
// exactly one ticket selected per scenario. It is exponential in practice
// and exists as the ground truth that validates the two-phase LP: when the
// optimal ticket is present in Z, the two-phase objective must match
// (Theorem 3.1's premise). Use only on small instances.
func BinaryILP(n *Network, scs []RestorableScenario, opts *mip.Options) (*Allocation, []int, error) {
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	bm := newBaseModel("arrow-binary-ilp", n)
	bigM := 0.0
	for _, f := range n.Flows {
		bigM += f.Demand
	}

	x := make([][]lp.Var, len(scs))
	for qi := range scs {
		q := &scs[qi]
		if len(q.Tickets) == 0 {
			return nil, nil, fmt.Errorf("te: binary ilp: scenario %d has no tickets", qi)
		}
		failed := failedSet(q.FailedLinks)
		x[qi] = make([]lp.Var, len(q.Tickets))
		var pick lp.Expr
		for z := range q.Tickets {
			xv := bm.m.AddBinVar(0, fmt.Sprintf("x_q%d_z%d", qi, z))
			x[qi][z] = xv
			pick = pick.Plus(1, xv)

			restored := func(link int) float64 { return q.TicketGbps(z, link) }
			// (31): coverage under ticket z, relaxed unless x=1.
			for f := range n.Flows {
				res := residualTunnels(n, f, failed)
				rst := restorableTunnels(n, f, failed, restored)
				if len(res)+len(rst) == len(n.Tunnels[f]) || len(res)+len(rst) == 0 {
					// Nothing lost, or the flow is disconnected under this
					// scenario+ticket (no residual or restorable tunnel):
					// the guarantee is either implied by (1) or vacuous.
					continue
				}
				var e lp.Expr
				for _, ti := range res {
					e = e.Plus(1, bm.a[f][ti])
				}
				for _, ti := range rst {
					e = e.Plus(1, bm.a[f][ti])
				}
				// sum a >= b_f - M(1-x)  <=>  sum a - b_f - M*x >= -M
				e = e.Plus(-1, bm.b[f]).Plus(-bigM, xv)
				bm.m.AddConstr(e, lp.GE, -bigM, fmt.Sprintf("ilpcover_f%d_q%d_z%d", f, qi, z))
			}
			// (32): restored-capacity limits, relaxed unless x=1.
			for _, link := range q.FailedLinks {
				var load lp.Expr
				for f := range n.Flows {
					for _, ti := range restorableTunnels(n, f, failed, restored) {
						for _, le := range n.Tunnels[f][ti].Links {
							if le == link {
								load = load.Plus(1, bm.a[f][ti])
								break
							}
						}
					}
				}
				if len(load) == 0 {
					continue
				}
				// load <= r + M(1-x)  <=>  load + M*x <= r + M
				load = load.Plus(bigM, xv)
				bm.m.AddConstr(load, lp.LE, restored(link)+bigM, fmt.Sprintf("ilpcap_e%d_q%d_z%d", link, qi, z))
			}
		}
		bm.m.AddConstr(pick, lp.EQ, 1, fmt.Sprintf("pick_q%d", qi)) // (33)
	}

	sol, err := mip.Solve(bm.m, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("te: binary ilp: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, nil, fmt.Errorf("te: binary ilp: status %v", sol.Status)
	}
	al := &Allocation{
		B:         make([]float64, len(n.Flows)),
		A:         make([][]float64, len(n.Flows)),
		Objective: sol.Objective,
	}
	for f := range n.Flows {
		al.B[f] = sol.X[bm.b[f]]
		al.A[f] = make([]float64, len(bm.a[f]))
		for ti, v := range bm.a[f] {
			al.A[f][ti] = sol.X[v]
		}
	}
	winners := make([]int, len(scs))
	for qi := range scs {
		winners[qi] = 0
		for z := range scs[qi].Tickets {
			if sol.X[x[qi][z]] > 0.5 {
				winners[qi] = z
				break
			}
		}
	}
	al.WinningTicket = winners
	return al, winners, nil
}

// JointInstance couples a TE network with its optical layer for the joint
// IP/optical formulation of Table 7 (Appendix A.4). IP link IDs must match
// optical IPLink IDs.
type JointInstance struct {
	Net *Network
	Opt *optical.Network
	// Cuts lists the fiber-cut scenarios (fiber ID sets).
	Cuts [][]int
	// K surrogate paths per failed link (default 2).
	K int
	// AllowTuning / AllowModulationChange as in package rwa.
	AllowTuning           bool
	AllowModulationChange bool
}

func (ji *JointInstance) k() int {
	if ji.K <= 0 {
		return 2
	}
	return ji.K
}

// JointILP solves the joint IP/optical restoration-aware TE: wavelength
// assignment (binary xi variables per scenario, constraints 23-26) is
// optimised together with tunnel allocation. Restored capacity r_e^q is a
// decision variable (constraint 27).
//
// Tunnel usability under failure is modelled with per-scenario usage
// variables u^q_{f,t} <= a_{f,t} (the "dynamic restorable tunnels" of
// Appendix A.4): failed tunnels may carry up to the restored capacity of
// every failed link they cross. This makes JointILP an exact upper bound
// for the two-phase ARROW TE on the same instance.
//
// The formulation is intractable beyond toy sizes by design — that is the
// paper's point (Table 8); use JointModelStats to measure the blow-up.
func JointILP(ji *JointInstance, opts *mip.Options) (*Allocation, error) {
	n := ji.Net
	if err := n.Validate(); err != nil {
		return nil, err
	}
	bm := newBaseModel("joint-ilp", n)

	for qi, cut := range ji.Cuts {
		res, err := rwa.Solve(&rwa.Request{
			Net: ji.Opt, Cut: cut, K: ji.k(),
			AllowTuning: ji.AllowTuning, AllowModulationChange: ji.AllowModulationChange,
		})
		if err != nil {
			return nil, fmt.Errorf("te: joint ilp: scenario %d rwa: %w", qi, err)
		}
		failed := failedSet(res.Failed)

		// Optical side: binary xi per (failed link, path option, slot).
		rVar := map[int]lp.Var{} // failed IP link -> restored Gbps variable
		fiberSlot := map[[2]int]lp.Expr{}
		for li, linkID := range res.Failed {
			r := bm.m.AddVar(0, lp.Inf, 0, fmt.Sprintf("r_e%d_q%d", linkID, qi))
			rVar[linkID] = r
			var rExpr lp.Expr
			var waveCount lp.Expr
			for pi, opt := range res.Options[li] {
				for _, s := range opt.Slots {
					xi := bm.m.AddBinVar(0, fmt.Sprintf("xi_q%d_l%d_p%d_s%d", qi, li, pi, s))
					waveCount = waveCount.Plus(1, xi)
					rExpr = rExpr.Plus(opt.Modulation.GbpsPerWavelength, xi) // (27)
					for _, fb := range opt.Fibers {
						key := [2]int{fb, s}
						fiberSlot[key] = fiberSlot[key].Plus(1, xi)
					}
				}
			}
			// (26): restored waves within [0, gamma_e].
			if len(waveCount) > 0 {
				bm.m.AddConstr(waveCount, lp.LE, float64(res.OrigWaves[li]), fmt.Sprintf("gamma_l%d_q%d", linkID, qi))
			}
			rExpr = rExpr.Plus(-1, rVar[linkID])
			bm.m.AddConstr(rExpr, lp.EQ, 0, fmt.Sprintf("rdef_l%d_q%d", linkID, qi))
		}
		fsKeys := make([][2]int, 0, len(fiberSlot))
		for key := range fiberSlot {
			fsKeys = append(fsKeys, key)
		}
		sort.Slice(fsKeys, func(a, b int) bool {
			if fsKeys[a][0] != fsKeys[b][0] {
				return fsKeys[a][0] < fsKeys[b][0]
			}
			return fsKeys[a][1] < fsKeys[b][1]
		})
		for _, key := range fsKeys { // (23)
			bm.m.AddConstr(fiberSlot[key], lp.LE, 1, fmt.Sprintf("slot_f%d_s%d_q%d", key[0], key[1], qi))
		}

		// TE side: per-scenario usage u <= a; coverage and capacity.
		linkLoad := map[int]lp.Expr{}
		for f := range n.Flows {
			var coverage lp.Expr
			anyFailed := false
			for ti, t := range n.Tunnels[f] {
				isFailed := false
				for _, e := range t.Links {
					if failed[e] {
						isFailed = true
						break
					}
				}
				if !isFailed {
					coverage = coverage.Plus(1, bm.a[f][ti])
					continue
				}
				anyFailed = true
				u := bm.m.AddVar(0, lp.Inf, 0, fmt.Sprintf("u_f%d_t%d_q%d", f, ti, qi))
				// u <= a_{f,t}
				bm.m.AddConstr(lp.Expr{}.Plus(1, u).Plus(-1, bm.a[f][ti]), lp.LE, 0, fmt.Sprintf("ulim_f%d_t%d_q%d", f, ti, qi))
				coverage = coverage.Plus(1, u)
				for _, e := range t.Links {
					if failed[e] {
						linkLoad[e] = linkLoad[e].Plus(1, u)
					}
				}
			}
			if !anyFailed {
				continue // (1) covers it
			}
			coverage = coverage.Plus(-1, bm.b[f])
			bm.m.AddConstr(coverage, lp.GE, 0, fmt.Sprintf("jcover_f%d_q%d", f, qi)) // (21)
		}
		llKeys := make([]int, 0, len(linkLoad))
		for e := range linkLoad {
			llKeys = append(llKeys, e)
		}
		sort.Ints(llKeys)
		for _, e := range llKeys { // (22)
			load := linkLoad[e].Plus(-1, rVar[e])
			bm.m.AddConstr(load, lp.LE, 0, fmt.Sprintf("jcap_e%d_q%d", e, qi))
		}
	}

	sol, err := mip.Solve(bm.m, opts)
	if err != nil {
		return nil, fmt.Errorf("te: joint ilp: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("te: joint ilp: status %v", sol.Status)
	}
	al := &Allocation{
		B:         make([]float64, len(n.Flows)),
		A:         make([][]float64, len(n.Flows)),
		Objective: sol.Objective,
	}
	for f := range n.Flows {
		al.B[f] = sol.X[bm.b[f]]
		al.A[f] = make([]float64, len(bm.a[f]))
		for ti, v := range bm.a[f] {
			al.A[f][ti] = sol.X[v]
		}
	}
	return al, nil
}

// ModelSize reports the symbolic size of a formulation (Table 8).
type ModelSize struct {
	BinaryVars     int64
	ContinuousVars int64
	Constraints    int64
}

// JointModelStats counts the variables and constraints of the full joint
// IP/optical formulation of Table 7 WITHOUT building it — reproducing the
// Table 8 demonstration that the joint ILP blows up at production scale.
//
// Inputs: flows F with tunnels T each, E IP links, Phi fibers, W spectrum
// slots per fiber, Q scenarios, avgFailed failed IP links per scenario,
// k surrogate paths per failed link, avgPathLen fibers per surrogate path.
func JointModelStats(F, T, E, Phi, W, Q, avgFailed, k, avgPathLen int) ModelSize {
	var s ModelSize
	f64 := func(xs ...int) []int64 {
		out := make([]int64, len(xs))
		for i, x := range xs {
			out[i] = int64(x)
		}
		return out
	}
	v := f64(F, T, E, Phi, W, Q, avgFailed, k, avgPathLen)
	vF, vT, vE, vPhi, vW, vQ, vFail, vK, vLen := v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8]

	// Binary xi^{e,k,q}_{phi,w}: the paper's formulation indexes xi over
	// EVERY fiber and slot (constraint 24 zeroes off-path entries), which
	// is what makes Table 8 explode.
	s.BinaryVars = vQ * vFail * vK * vPhi * vW
	// Continuous: a_{f,t}, b_f, r_e^q, lambda_e^{k,q} (relaxable).
	s.ContinuousVars = vF*vT + vF + vQ*vFail + vQ*vFail*vK
	// Constraints 18-20: F + E + F; 21: F*Q; 22: failed*Q;
	// 23: Phi*W*Q; 24: failed*k*Phi*Q; 25: failed*k*W*(pathlen-1)*Q;
	// 26-27: 2*failed*Q.
	s.Constraints = vF + vE + vF + vF*vQ + vFail*vQ +
		vPhi*vW*vQ + vFail*vK*vPhi*vQ + vFail*vK*vW*maxI64(vLen-1, 0)*vQ + 2*vFail*vQ
	return s
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
