package te

import (
	"fmt"

	"github.com/arrow-te/arrow/internal/lp"
)

// baseModel holds the LP variables shared by every scheme: a_{f,t} and b_f,
// with the standard constraints (1)-(3) of Table 2 already added.
type baseModel struct {
	m *lp.Model
	a [][]lp.Var // a_{f,t}
	b []lp.Var   // b_f
	// capRows are the healthy cap_e constraint handles in ascending link
	// order (links with no tunnel traffic get no row), recorded for
	// post-solve sensitivity harvesting.
	capRows []CapRow
}

// newBaseModel builds the common part of all TE LPs:
//
//	maximise sum_f b_f
//	(1) forall f: sum_t a_{f,t} >= b_f
//	(2) forall e: sum_{f,t} a_{f,t} L[t,e] <= c_e
//	(3) forall f: 0 <= b_f <= d_f
func newBaseModel(name string, n *Network) *baseModel {
	m := lp.NewModel(name)
	m.SetMaximize(true)
	bm := &baseModel{m: m, a: make([][]lp.Var, len(n.Flows)), b: make([]lp.Var, len(n.Flows))}

	linkLoad := make([]lp.Expr, len(n.LinkCap))
	for f := range n.Flows {
		bm.b[f] = m.AddVar(0, n.Flows[f].Demand, 1, fmt.Sprintf("b_f%d", f)) // (3)
		bm.a[f] = make([]lp.Var, len(n.Tunnels[f]))
		var cover lp.Expr
		for ti, t := range n.Tunnels[f] {
			v := m.AddVar(0, lp.Inf, 0, fmt.Sprintf("a_f%d_t%d", f, ti))
			bm.a[f][ti] = v
			cover = cover.Plus(1, v)
			for _, e := range t.Links {
				linkLoad[e] = linkLoad[e].Plus(1, v)
			}
		}
		cover = cover.Plus(-1, bm.b[f])
		m.AddConstr(cover, lp.GE, 0, fmt.Sprintf("cover_f%d", f)) // (1)
	}
	for e, expr := range linkLoad {
		if len(expr) > 0 {
			c := m.AddConstr(expr, lp.LE, n.LinkCap[e], fmt.Sprintf("cap_e%d", e)) // (2)
			bm.capRows = append(bm.capRows, CapRow{Link: e, Scenario: -1, Constr: c})
		}
	}
	return bm
}

// extract converts an LP solution into an Allocation.
func (bm *baseModel) extract(n *Network, sol *lp.Solution) *Allocation {
	al := &Allocation{
		B:         make([]float64, len(n.Flows)),
		A:         make([][]float64, len(n.Flows)),
		Objective: sol.Objective,
	}
	for f := range n.Flows {
		al.B[f] = sol.X[bm.b[f]]
		al.A[f] = make([]float64, len(bm.a[f]))
		for ti, v := range bm.a[f] {
			al.A[f][ti] = sol.X[v]
		}
	}
	return al
}

// solve runs the LP cold and fails on any non-optimal status: every TE
// model in this package is feasible by construction (b_f = a_{f,t} = 0
// always works) and bounded (b_f <= d_f), so anything else is an internal
// error.
func (bm *baseModel) solve(n *Network, opts *lp.Options) (*Allocation, error) {
	al, _, err := bm.solveLP(n, opts, nil)
	return al, err
}

// solveLP is solve with an optional warm-start basis (nil = cold solve).
// It also returns the raw lp.Solution so callers can inspect the final
// basis and warm-start outcome.
func (bm *baseModel) solveLP(n *Network, opts *lp.Options, warm *lp.Basis) (*Allocation, *lp.Solution, error) {
	var sol *lp.Solution
	var err error
	if warm != nil {
		sol, err = lp.SolveWithBasis(bm.m, warm, opts)
	} else {
		sol, err = lp.Solve(bm.m, opts)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("te: %s: %w", bm.m.Name(), err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, sol, fmt.Errorf("te: %s: unexpected status %v", bm.m.Name(), sol.Status)
	}
	al := bm.extract(n, sol)
	al.Stats.Phase2Vars = bm.m.NumVars()
	al.Stats.Phase2Rows = bm.m.NumConstrs()
	al.Stats.Phase2Iters = sol.Iterations
	al.Cert = sol.Cert
	return al, sol, nil
}

// MaxConcurrentScale solves the max-concurrent-flow problem: the largest
// uniform demand scale s such that EVERY flow can be fully satisfied at
// demand s*d_f within link capacities. Used to normalise traffic matrices
// to the paper's "demand scale 1.0" (a fully satisfiable starting state).
func MaxConcurrentScale(n *Network) (float64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	m := lp.NewModel("max-concurrent")
	m.SetMaximize(true)
	s := m.AddVar(0, lp.Inf, 1, "scale")
	linkLoad := make([]lp.Expr, len(n.LinkCap))
	for f := range n.Flows {
		var cover lp.Expr
		for ti, t := range n.Tunnels[f] {
			v := m.AddVar(0, lp.Inf, 0, fmt.Sprintf("a_f%d_t%d", f, ti))
			cover = cover.Plus(1, v)
			for _, e := range t.Links {
				linkLoad[e] = linkLoad[e].Plus(1, v)
			}
		}
		cover = cover.Plus(-n.Flows[f].Demand, s)
		m.AddConstr(cover, lp.GE, 0, fmt.Sprintf("cover_f%d", f))
	}
	for e, expr := range linkLoad {
		if len(expr) > 0 {
			m.AddConstr(expr, lp.LE, n.LinkCap[e], fmt.Sprintf("cap_e%d", e))
		}
	}
	sol, err := lp.Solve(m, nil)
	if err != nil {
		return 0, fmt.Errorf("te: max-concurrent: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return 0, fmt.Errorf("te: max-concurrent: status %v", sol.Status)
	}
	return sol.X[s], nil
}

// MaxThroughput solves the failure-oblivious multi-commodity flow problem:
// constraints (1)-(3) only. It doubles as the hypothetical Fully Restorable
// TE of Fig. 16 (a TE that can always restore every failure needs no
// failure constraints).
func MaxThroughput(n *Network) (*Allocation, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return newBaseModel("max-throughput", n).solve(n, nil)
}
