package te

import (
	"fmt"

	"github.com/arrow-te/arrow/internal/lp"
)

// FFC solves Forward Fault Correction [63] extended to fiber cuts as in §6:
// the allocation must guarantee b_f for every scenario in scs (typically all
// single or all single+double fiber-cut scenarios), using residual tunnels
// only. This is exactly ARROW's formulation with zero restorable capacity.
//
//	(4') forall f, q: sum_{t in T_f^q} a_{f,t} >= b_f
//
// Scenario constraints are only emitted when the scenario actually removes a
// tunnel of the flow and the resulting residual set is novel — equivalent
// but far smaller than the naive encoding.
func FFC(n *Network, scs []FailureScenario) (*Allocation, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	bm := newBaseModel("ffc", n)
	addResidualGuarantees(bm, n, scs)
	return bm.solve(n, nil)
}

// addResidualGuarantees emits constraint (4') rows, deduplicating identical
// residual tunnel sets per flow.
func addResidualGuarantees(bm *baseModel, n *Network, scs []FailureScenario) {
	for f := range n.Flows {
		seen := map[string]bool{}
		for qi, q := range scs {
			failed := failedSet(q.FailedLinks)
			res := residualTunnels(n, f, failed)
			if len(res) == len(n.Tunnels[f]) {
				continue // no tunnel lost: constraint (1) already covers it
			}
			if len(res) == 0 {
				// The flow is disconnected under q: no allocation can
				// protect it. The paper's methodology selects tunnels so
				// that a residual tunnel exists for every flow and
				// scenario; where the topology makes that impossible the
				// guarantee is vacuous, and pre-emptively zeroing the flow
				// would punish it in every OTHER scenario too.
				continue
			}
			key := fmt.Sprint(res)
			if seen[key] {
				continue
			}
			seen[key] = true
			var e lp.Expr
			for _, ti := range res {
				e = e.Plus(1, bm.a[f][ti])
			}
			e = e.Plus(-1, bm.b[f])
			bm.m.AddConstr(e, lp.GE, 0, fmt.Sprintf("ffc_f%d_q%d", f, qi))
		}
	}
}
