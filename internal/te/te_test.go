package te

import (
	"math"
	"testing"

	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/ticket"
)

// parallelLinks builds the IP-layer view of the paper's Fig. 7: two parallel
// IP links between sites B and C. IP1 (link 0) has capacity 400 and carries
// flow 0 (demand 100); IP2 (link 1) has capacity 800 and carries flow 1
// (demand 400). Each flow has a single one-link tunnel.
func parallelLinks() *Network {
	return &Network{
		LinkCap: []float64{400, 800},
		Flows:   []Flow{{0, 1, 100}, {0, 1, 400}},
		Tunnels: [][]Tunnel{
			{{Links: []int{0}}},
			{{Links: []int{1}}},
		},
	}
}

// fig7Scenario attaches the paper's three LotteryTickets to the both-links
// failure: Ticket1 (200,300), Ticket2 (100,400), Ticket3 (300,200).
func fig7Scenario() []RestorableScenario {
	return []RestorableScenario{{
		FailureScenario: FailureScenario{Prob: 0.01, FailedLinks: []int{0, 1}},
		TicketLinks:     []int{0, 1},
		Tickets: []ticket.Ticket{
			{Waves: []int{2, 3}, Gbps: []float64{200, 300}},
			{Waves: []int{1, 4}, Gbps: []float64{100, 400}},
			{Waves: []int{3, 2}, Gbps: []float64{300, 200}},
		},
	}}
}

func TestMaxThroughputSimple(t *testing.T) {
	n := parallelLinks()
	al, err := MaxThroughput(n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(al.Objective-500) > 1e-6 {
		t.Fatalf("objective %g, want 500", al.Objective)
	}
	if math.Abs(al.Throughput(n)-1) > 1e-9 {
		t.Fatalf("throughput %g", al.Throughput(n))
	}
}

func TestMaxThroughputCapacityBound(t *testing.T) {
	n := parallelLinks()
	n.Flows[1].Demand = 2000 // exceeds IP2's 800
	al, err := MaxThroughput(n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(al.Objective-900) > 1e-6 { // 100 + 800
		t.Fatalf("objective %g, want 900", al.Objective)
	}
}

func TestArrowPicksWinningTicket(t *testing.T) {
	// The core Fig. 7 claim: with demands (100, 400), ticket 2 = (100,400)
	// is the winner; candidates 1 and 3 are sub-optimal.
	n := parallelLinks()
	scs := fig7Scenario()
	al, err := Arrow(n, scs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(al.WinningTicket) != 1 || al.WinningTicket[0] != 1 {
		t.Fatalf("winning ticket %v, want [1]", al.WinningTicket)
	}
	if math.Abs(al.Objective-500) > 1e-6 {
		t.Fatalf("objective %g, want 500", al.Objective)
	}
	if got := al.RestoredGbps[0][1]; got != 400 {
		t.Fatalf("restored capacity on link 1 = %g, want 400", got)
	}
}

func TestArrowThroughputPerTicketMatchesPaper(t *testing.T) {
	// Forcing each candidate reproduces the paper's 400/500/300 Gbps.
	n := parallelLinks()
	scs := fig7Scenario()
	want := []float64{400, 500, 300}
	for z, w := range want {
		al, err := ArrowPhase2(n, scs, []int{z}, nil)
		if err != nil {
			t.Fatalf("ticket %d: %v", z, err)
		}
		if math.Abs(al.Objective-w) > 1e-6 {
			t.Fatalf("ticket %d: objective %g, want %g", z, al.Objective, w)
		}
	}
}

func TestArrowNaiveUsesFirstTicket(t *testing.T) {
	n := parallelLinks()
	scs := fig7Scenario()
	al, err := ArrowNaive(n, scs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(al.Objective-400) > 1e-6 { // ticket (200,300)
		t.Fatalf("objective %g, want 400", al.Objective)
	}
}

func TestArrowMatchesBinaryILP(t *testing.T) {
	n := parallelLinks()
	scs := fig7Scenario()
	lpAl, err := Arrow(n, scs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ilpAl, winners, err := BinaryILP(n, scs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lpAl.Objective-ilpAl.Objective) > 1e-5 {
		t.Fatalf("two-phase %g vs binary ILP %g", lpAl.Objective, ilpAl.Objective)
	}
	if winners[0] != 1 {
		t.Fatalf("ILP winner %v", winners)
	}
}

func TestFFCReservesHeadroom(t *testing.T) {
	// Diamond network: flow can use two link-disjoint tunnels. FFC-1 over
	// single-link failures must keep b_f <= capacity of the surviving
	// tunnel alone.
	n := &Network{
		LinkCap: []float64{100, 100},
		Flows:   []Flow{{0, 1, 200}},
		Tunnels: [][]Tunnel{{{Links: []int{0}}, {Links: []int{1}}}},
	}
	free, err := MaxThroughput(n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(free.Objective-200) > 1e-6 {
		t.Fatalf("unconstrained %g", free.Objective)
	}
	scs := []FailureScenario{
		{FailedLinks: []int{0}},
		{FailedLinks: []int{1}},
	}
	al, err := FFC(n, scs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(al.Objective-100) > 1e-6 {
		t.Fatalf("FFC objective %g, want 100", al.Objective)
	}
	// Verify the guarantee: each single tunnel covers b alone.
	for ti := range n.Tunnels[0] {
		if al.A[0][ti] < al.B[0]-1e-6 {
			t.Fatalf("tunnel %d allocation %g < b %g", ti, al.A[0][ti], al.B[0])
		}
	}
}

func TestFFC2MoreConservativeThanFFC1(t *testing.T) {
	// Three parallel links/tunnels of 100 each, demand 300.
	n := &Network{
		LinkCap: []float64{100, 100, 100},
		Flows:   []Flow{{0, 1, 300}},
		Tunnels: [][]Tunnel{{{Links: []int{0}}, {Links: []int{1}}, {Links: []int{2}}}},
	}
	singles := []FailureScenario{{FailedLinks: []int{0}}, {FailedLinks: []int{1}}, {FailedLinks: []int{2}}}
	doubles := []FailureScenario{
		{FailedLinks: []int{0, 1}}, {FailedLinks: []int{0, 2}}, {FailedLinks: []int{1, 2}},
	}
	ffc1, err := FFC(n, singles)
	if err != nil {
		t.Fatal(err)
	}
	ffc2, err := FFC(n, append(singles, doubles...))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ffc1.Objective-200) > 1e-6 { // lose one link -> 2x100
		t.Fatalf("ffc1 %g, want 200", ffc1.Objective)
	}
	if math.Abs(ffc2.Objective-100) > 1e-6 { // lose two links -> 1x100
		t.Fatalf("ffc2 %g, want 100", ffc2.Objective)
	}
}

func TestArrowBeatsFFCWithRestoration(t *testing.T) {
	// Same 2-tunnel diamond as TestFFCReservesHeadroom, but ARROW knows each
	// failed link can be 60% restored. Constraint (11) caps each tunnel's
	// reservation at its worst-scenario restored capacity (60), so ARROW
	// guarantees 60 + 60 = 120, still beating FFC-1's 100.
	n := &Network{
		LinkCap: []float64{100, 100},
		Flows:   []Flow{{0, 1, 200}},
		Tunnels: [][]Tunnel{{{Links: []int{0}}, {Links: []int{1}}}},
	}
	scs := []RestorableScenario{
		{
			FailureScenario: FailureScenario{FailedLinks: []int{0}},
			TicketLinks:     []int{0},
			Tickets:         []ticket.Ticket{{Waves: []int{6}, Gbps: []float64{60}}},
		},
		{
			FailureScenario: FailureScenario{FailedLinks: []int{1}},
			TicketLinks:     []int{1},
			Tickets:         []ticket.Ticket{{Waves: []int{6}, Gbps: []float64{60}}},
		},
	}
	al, err := Arrow(n, scs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(al.Objective-120) > 1e-6 {
		t.Fatalf("arrow objective %g, want 120", al.Objective)
	}
}

func TestECMPEqualSplit(t *testing.T) {
	// Two tunnels with asymmetric capacity: ECMP is limited by the smaller.
	n := &Network{
		LinkCap: []float64{50, 200},
		Flows:   []Flow{{0, 1, 300}},
		Tunnels: [][]Tunnel{{{Links: []int{0}}, {Links: []int{1}}}},
	}
	al, err := ECMP(n)
	if err != nil {
		t.Fatal(err)
	}
	// b/2 <= 50 -> b <= 100.
	if math.Abs(al.Objective-100) > 1e-6 {
		t.Fatalf("ecmp objective %g, want 100", al.Objective)
	}
	if math.Abs(al.A[0][0]-al.A[0][1]) > 1e-9 {
		t.Fatalf("unequal split %v", al.A[0])
	}
	opt, err := MaxThroughput(n)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Objective <= al.Objective {
		t.Fatal("optimal TE should beat ECMP here")
	}
}

func TestTeaVaRAvoidsRiskyTunnel(t *testing.T) {
	// Flow with two tunnels; link 0 fails with high probability. TeaVaR at
	// beta=0.9 should shift reservation toward tunnel 1.
	n := &Network{
		LinkCap: []float64{100, 100},
		Flows:   []Flow{{0, 1, 100}},
		Tunnels: [][]Tunnel{{{Links: []int{0}}, {Links: []int{1}}}},
	}
	scs := []FailureScenario{{Prob: 0.2, FailedLinks: []int{0}}}
	al, err := TeaVaR(n, scs, &TeaVaROptions{Beta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Under the failure scenario only tunnel 1 delivers; CVaR at 0.9 is
	// dominated by that scenario, so tunnel 1 must carry the full demand.
	if al.A[0][1] < 100-1e-4 {
		t.Fatalf("tunnel 1 reservation %g, want ~100 (allocations %v)", al.A[0][1], al.A[0])
	}
	if math.Abs(al.B[0]-100) > 1e-4 {
		t.Fatalf("b = %g", al.B[0])
	}
}

func TestJointILPUpperBoundsTwoPhase(t *testing.T) {
	// On the Fig. 7 optical instance the joint ILP should achieve 500
	// (restore 1 wave for IP1 and 4 for IP2), matching ARROW with the
	// optimal ticket present.
	net, opt := fig7Joint(t)
	joint, err := JointILP(&JointInstance{Net: net, Opt: opt, Cuts: [][]int{{0}}, K: 3, AllowTuning: true, AllowModulationChange: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(joint.Objective-500) > 1e-5 {
		t.Fatalf("joint objective %g, want 500", joint.Objective)
	}
	arrow, err := Arrow(net, fig7Scenario(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if arrow.Objective > joint.Objective+1e-6 {
		t.Fatalf("two-phase %g exceeds joint upper bound %g", arrow.Objective, joint.Objective)
	}
	if math.Abs(arrow.Objective-joint.Objective) > 1e-5 {
		t.Fatalf("with the optimal ticket in Z, two-phase %g should match joint %g", arrow.Objective, joint.Objective)
	}
}

func TestJointModelStatsBlowUp(t *testing.T) {
	small := JointModelStats(6, 2, 4, 5, 8, 3, 2, 2, 2)
	big := JointModelStats(1122, 16, 262, 156, 96, 30, 4, 3, 5)
	if small.BinaryVars <= 0 || small.Constraints <= 0 {
		t.Fatalf("small stats %+v", small)
	}
	if big.BinaryVars < 1_000_000 {
		t.Fatalf("big instance binary vars %d, expected blow-up", big.BinaryVars)
	}
	if big.BinaryVars <= small.BinaryVars*1000 {
		t.Fatalf("expected orders-of-magnitude growth: %d vs %d", big.BinaryVars, small.BinaryVars)
	}
}

func TestSplitRatios(t *testing.T) {
	al := &Allocation{A: [][]float64{{30, 70}, {0, 0}}}
	r := al.SplitRatios()
	if math.Abs(r[0][0]-0.3) > 1e-9 || math.Abs(r[0][1]-0.7) > 1e-9 {
		t.Fatalf("ratios %v", r[0])
	}
	if math.Abs(r[1][0]-0.5) > 1e-9 { // zero allocation -> uniform
		t.Fatalf("ratios %v", r[1])
	}
}

func TestValidateCatchesBadInstances(t *testing.T) {
	bad := &Network{LinkCap: []float64{10}, Flows: []Flow{{0, 1, 5}}, Tunnels: [][]Tunnel{}}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched tunnels accepted")
	}
	bad2 := &Network{LinkCap: []float64{10}, Flows: []Flow{{0, 1, 5}}, Tunnels: [][]Tunnel{{{Links: []int{3}}}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("unknown link accepted")
	}
	bad3 := &Network{LinkCap: []float64{10}, Flows: []Flow{{0, 1, 5}}, Tunnels: [][]Tunnel{{}}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("flow without tunnels accepted")
	}
}

func TestScaled(t *testing.T) {
	n := parallelLinks()
	s := n.Scaled(2)
	if s.Flows[0].Demand != 200 || n.Flows[0].Demand != 100 {
		t.Fatal("scaling wrong or aliased")
	}
}

func TestColgenMultiSeed(t *testing.T) {
	// Raising Seeds installs more leading ticket blocks up front; the
	// converged restricted optimum (and the winner) must not move, and the
	// deferred-ticket accounting must recognise every seeded block.
	n := parallelLinks()
	base, err := Arrow(n, fig7Scenario(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, seeds := range []int{0, 2, 3, 99} {
		scs := fig7Scenario()
		scs[0].Seeds = seeds
		reg := obs.NewRegistry()
		al, err := Arrow(n, scs, &ArrowOptions{LP: &lp.Options{Recorder: reg}})
		if err != nil {
			t.Fatalf("seeds=%d: %v", seeds, err)
		}
		if al.WinningTicket[0] != base.WinningTicket[0] {
			t.Fatalf("seeds=%d: winner %v, want %v", seeds, al.WinningTicket, base.WinningTicket)
		}
		if math.Abs(al.Objective-base.Objective) > 1e-9 {
			t.Fatalf("seeds=%d: objective %g, want %g", seeds, al.Objective, base.Objective)
		}
		snap := reg.Snapshot()
		seeded := int64(seeds)
		if seeded < 1 {
			seeded = 1
		}
		if seeded > 3 {
			seeded = 3
		}
		total := seeded + snap.Counters["lp.columns_priced"] + snap.Counters["te.tickets_deferred"]
		if total != 3 {
			t.Fatalf("seeds=%d: seeded %d + priced %d + deferred %d != 3 tickets",
				seeds, seeded, snap.Counters["lp.columns_priced"], snap.Counters["te.tickets_deferred"])
		}
	}
}
