package te

import (
	"testing"

	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/spectrum"
)

// fig7Joint builds the optical network of the paper's Fig. 7 together with
// its IP-layer TE view. IP link IDs match optical link IDs: link 0 = IP1
// (4 x 100G), link 1 = IP2 (8 x 100G). Surrogate capacity: 3 slots via the
// top detour, 2 via the bottom.
func fig7Joint(t *testing.T) (*Network, *optical.Network) {
	t.Helper()
	opt := optical.NewNetwork(4, 12)
	opt.AddFiber(0, 1, 100) // 0: B-C direct
	opt.AddFiber(0, 2, 100) // 1: top
	opt.AddFiber(2, 1, 100) // 2: top
	opt.AddFiber(0, 3, 100) // 3: bottom
	opt.AddFiber(3, 1, 100) // 4: bottom
	mod := spectrum.Table6[0]
	mk := func(count, start int) []optical.Lightpath {
		var ws []optical.Lightpath
		for i := 0; i < count; i++ {
			ws = append(ws, optical.Lightpath{Slot: start + i, Modulation: mod, FiberPath: []int{0}})
		}
		return ws
	}
	if _, err := opt.Provision(0, 1, mk(4, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Provision(0, 1, mk(8, 4)); err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{1, 2} {
		for s := 0; s < 9; s++ {
			opt.Fibers[f].Slots.Set(s, false)
		}
	}
	for _, f := range []int{3, 4} {
		for s := 0; s < 10; s++ {
			opt.Fibers[f].Slots.Set(s, false)
		}
	}
	net := parallelLinks()
	return net, opt
}
