package te

import (
	"math/rand"
	"testing"

	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/spectrum"
	"github.com/arrow-te/arrow/internal/ticket"
)

// randomJointInstance builds a small random optical network with adjacency
// IP links, a TE view over it, and single-cut restorable scenarios with
// LotteryTickets.
func randomJointInstance(rng *rand.Rand) (*Network, *optical.Network, []RestorableScenario, [][]int, bool) {
	sites := 4 + rng.Intn(2)
	slots := 6 + rng.Intn(4)
	opt := optical.NewNetwork(sites, slots)
	// Ring + one chord for path diversity.
	for i := 0; i < sites; i++ {
		opt.AddFiber(optical.ROADM(i), optical.ROADM((i+1)%sites), 200+rng.Float64()*400)
	}
	opt.AddFiber(0, optical.ROADM(sites/2), 300+rng.Float64()*300)
	mod := spectrum.Table6[0]

	// One IP link per fiber with 1-3 wavelengths (random slots may collide,
	// so use first-fit).
	for f := range opt.Fibers {
		want := 1 + rng.Intn(3)
		var ws []optical.Lightpath
		for s := 0; s < slots && len(ws) < want; s++ {
			if opt.Fibers[f].Slots.Available(s) {
				ws = append(ws, optical.Lightpath{Slot: s, Modulation: mod, FiberPath: []int{f}})
			}
		}
		if len(ws) == 0 {
			continue
		}
		if _, err := opt.Provision(opt.Fibers[f].A, opt.Fibers[f].B, ws); err != nil {
			return nil, nil, nil, nil, false
		}
	}
	if len(opt.IPLinks) < 3 {
		return nil, nil, nil, nil, false
	}

	// TE view: flows between random site pairs, tunnels = up to 3 link
	// paths found by BFS over the IP adjacency.
	caps := make([]float64, len(opt.IPLinks))
	adj := map[int][][2]int{} // site -> (link, other)
	for i, l := range opt.IPLinks {
		caps[i] = l.CapacityGbps()
		adj[int(l.Src)] = append(adj[int(l.Src)], [2]int{l.ID, int(l.Dst)})
		adj[int(l.Dst)] = append(adj[int(l.Dst)], [2]int{l.ID, int(l.Src)})
	}
	findPaths := func(src, dst int) []Tunnel {
		var out []Tunnel
		var dfs func(at int, visited map[int]bool, path []int)
		dfs = func(at int, visited map[int]bool, path []int) {
			if len(out) >= 3 {
				return
			}
			if at == dst {
				out = append(out, Tunnel{Links: append([]int(nil), path...)})
				return
			}
			if len(path) >= 3 {
				return
			}
			for _, h := range adj[at] {
				if visited[h[1]] {
					continue
				}
				visited[h[1]] = true
				dfs(h[1], visited, append(path, h[0]))
				visited[h[1]] = false
			}
		}
		dfs(src, map[int]bool{src: true}, nil)
		return out
	}
	net := &Network{LinkCap: caps}
	for fi := 0; fi < 3; fi++ {
		src, dst := rng.Intn(sites), rng.Intn(sites)
		if src == dst {
			dst = (src + 1) % sites
		}
		tun := findPaths(src, dst)
		if len(tun) == 0 {
			return nil, nil, nil, nil, false
		}
		net.Flows = append(net.Flows, Flow{Src: src, Dst: dst, Demand: 100 + float64(rng.Intn(4))*100})
		net.Tunnels = append(net.Tunnels, tun)
	}

	// Two single-cut scenarios with rounded tickets.
	var scs []RestorableScenario
	var cuts [][]int
	for _, cut := range []int{0, 1} {
		res, err := rwa.Solve(&rwa.Request{Net: opt, Cut: []int{cut}, K: 2, AllowTuning: true, AllowModulationChange: true})
		if err != nil || len(res.Failed) == 0 {
			continue
		}
		counts := rwa.MaxIntegralWaves(res)
		naive := ticket.Ticket{Waves: counts, Gbps: make([]float64, len(counts))}
		for i, c := range counts {
			naive.Gbps[i] = float64(c) * res.GbpsPerWave[i]
		}
		tks := append([]ticket.Ticket{naive},
			ticket.Generate(res, ticket.Options{Count: 8, Seed: rng.Int63(), CheckFeasibility: true, Dedup: true})...)
		scs = append(scs, RestorableScenario{
			FailureScenario: FailureScenario{Prob: 0.01, FailedLinks: res.Failed},
			TicketLinks:     res.Failed,
			Tickets:         tks,
		})
		cuts = append(cuts, []int{cut})
	}
	if len(scs) == 0 {
		return nil, nil, nil, nil, false
	}
	return net, opt, scs, cuts, true
}

// TestTwoPhaseNeverBeatsJointILP: on random small instances, the joint
// IP/optical ILP (which chooses the restoration plan with full freedom) is
// an upper bound for ARROW's two-phase objective, and the binary ILP over
// the same ticket set is sandwiched between them.
func TestTwoPhaseNeverBeatsJointILP(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	checked := 0
	for trial := 0; trial < 40 && checked < 12; trial++ {
		net, opt, scs, cuts, ok := randomJointInstance(rng)
		if !ok {
			continue
		}
		twoPhase, err := Arrow(net, scs, nil)
		if err != nil {
			t.Fatalf("trial %d arrow: %v", trial, err)
		}
		binAl, _, err := BinaryILP(net, scs, nil)
		if err != nil {
			t.Fatalf("trial %d binary ilp: %v", trial, err)
		}
		joint, err := JointILP(&JointInstance{Net: net, Opt: opt, Cuts: cuts, K: 2, AllowTuning: true, AllowModulationChange: true}, nil)
		if err != nil {
			t.Fatalf("trial %d joint ilp: %v", trial, err)
		}
		const tol = 1e-5
		if twoPhase.Objective > binAl.Objective+tol {
			t.Fatalf("trial %d: two-phase %g beats binary ILP %g", trial, twoPhase.Objective, binAl.Objective)
		}
		if binAl.Objective > joint.Objective+tol {
			t.Fatalf("trial %d: binary ILP %g beats joint ILP %g", trial, binAl.Objective, joint.Objective)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("only %d instances validated", checked)
	}
}
