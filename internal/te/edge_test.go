package te

import (
	"math"
	"testing"

	"github.com/arrow-te/arrow/internal/ticket"
)

func TestMaxConcurrentScaleKnown(t *testing.T) {
	// One flow, demand 100, single tunnel of capacity 40: scale = 0.4.
	n := &Network{
		LinkCap: []float64{40},
		Flows:   []Flow{{Src: 0, Dst: 1, Demand: 100}},
		Tunnels: [][]Tunnel{{{Links: []int{0}}}},
	}
	s, err := MaxConcurrentScale(n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.4) > 1e-9 {
		t.Fatalf("scale %g want 0.4", s)
	}
	// Two flows sharing a link: scale set by the joint bottleneck.
	n2 := &Network{
		LinkCap: []float64{60},
		Flows:   []Flow{{Src: 0, Dst: 1, Demand: 100}, {Src: 0, Dst: 1, Demand: 20}},
		Tunnels: [][]Tunnel{{{Links: []int{0}}}, {{Links: []int{0}}}},
	}
	s2, err := MaxConcurrentScale(n2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2-0.5) > 1e-9 { // 120 * 0.5 = 60
		t.Fatalf("scale %g want 0.5", s2)
	}
}

func TestArrowNoScenariosEqualsMaxThroughput(t *testing.T) {
	n := parallelLinks()
	arrow, err := Arrow(n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	free, err := MaxThroughput(n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(arrow.Objective-free.Objective) > 1e-9 {
		t.Fatalf("arrow %g vs max-throughput %g", arrow.Objective, free.Objective)
	}
}

func TestFFCNoScenariosEqualsMaxThroughput(t *testing.T) {
	n := parallelLinks()
	ffc, err := FFC(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ffc.Objective-500) > 1e-9 {
		t.Fatalf("objective %g", ffc.Objective)
	}
}

func TestTeaVaRBadBeta(t *testing.T) {
	n := parallelLinks()
	if _, err := TeaVaR(n, nil, &TeaVaROptions{Beta: 1.0}); err == nil {
		t.Fatal("beta=1 accepted")
	}
}

func TestTeaVaRZeroDemand(t *testing.T) {
	n := parallelLinks()
	n.Flows[0].Demand = 0
	n.Flows[1].Demand = 0
	al, err := TeaVaR(n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if al.Objective != 0 {
		t.Fatalf("objective %g", al.Objective)
	}
}

func TestArrowRejectsEmptyTicketSet(t *testing.T) {
	n := parallelLinks()
	scs := []RestorableScenario{{
		FailureScenario: FailureScenario{FailedLinks: []int{0}},
		TicketLinks:     []int{0},
	}}
	if _, err := Arrow(n, scs, nil); err == nil {
		t.Fatal("empty ticket set accepted")
	}
}

func TestArrowPhase2WinnerOutOfRange(t *testing.T) {
	n := parallelLinks()
	scs := fig7Scenario()
	if _, err := ArrowPhase2(n, scs, []int{99}, nil); err == nil {
		t.Fatal("out-of-range winner accepted")
	}
	if _, err := ArrowPhase2(n, scs, []int{0, 0}, nil); err == nil {
		t.Fatal("winner length mismatch accepted")
	}
}

func TestZeroRestorationTicketBehavesLikeFFC(t *testing.T) {
	// A ticket restoring nothing must reproduce FFC's guarantee exactly.
	n := &Network{
		LinkCap: []float64{100, 100},
		Flows:   []Flow{{Src: 0, Dst: 1, Demand: 200}},
		Tunnels: [][]Tunnel{{{Links: []int{0}}, {Links: []int{1}}}},
	}
	scs := []RestorableScenario{{
		FailureScenario: FailureScenario{FailedLinks: []int{0}},
		TicketLinks:     []int{0},
		Tickets:         []ticket.Ticket{{Waves: []int{0}, Gbps: []float64{0}}},
	}}
	arrow, err := Arrow(n, scs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ffc, err := FFC(n, []FailureScenario{{FailedLinks: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(arrow.Objective-ffc.Objective) > 1e-9 {
		t.Fatalf("arrow %g vs ffc %g", arrow.Objective, ffc.Objective)
	}
}

func TestRestorableTunnelsSemantics(t *testing.T) {
	// A tunnel crossing TWO failed links is restorable only if BOTH have
	// restored capacity.
	n := &Network{
		LinkCap: []float64{100, 100, 100},
		Flows:   []Flow{{Src: 0, Dst: 2, Demand: 100}},
		Tunnels: [][]Tunnel{{{Links: []int{0, 1}}, {Links: []int{2}}}},
	}
	failed := map[int]bool{0: true, 1: true}
	both := restorableTunnels(n, 0, failed, func(l int) float64 { return 50 })
	if len(both) != 1 || both[0] != 0 {
		t.Fatalf("restorable %v, want [0]", both)
	}
	half := restorableTunnels(n, 0, failed, func(l int) float64 {
		if l == 0 {
			return 50
		}
		return 0
	})
	if len(half) != 0 {
		t.Fatalf("restorable %v, want none (link 1 dark)", half)
	}
	res := residualTunnels(n, 0, failed)
	if len(res) != 1 || res[0] != 1 {
		t.Fatalf("residual %v, want [1]", res)
	}
}

func TestBinaryILPRespectsSinglePick(t *testing.T) {
	n := parallelLinks()
	scs := fig7Scenario()
	_, winners, err := BinaryILP(n, scs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 1 || winners[0] < 0 || winners[0] >= len(scs[0].Tickets) {
		t.Fatalf("winners %v", winners)
	}
}

func TestSolveStatsPopulated(t *testing.T) {
	n := parallelLinks()
	al, err := Arrow(n, fig7Scenario(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if al.Stats.Phase1Vars == 0 || al.Stats.Phase1Rows == 0 {
		t.Fatalf("phase 1 stats empty: %+v", al.Stats)
	}
	if al.Stats.Phase2Vars == 0 {
		t.Fatalf("phase 2 stats empty: %+v", al.Stats)
	}
}
