package te

import (
	"fmt"

	"github.com/arrow-te/arrow/internal/lp"
)

// ECMP models equal-cost multi-path routing [21]: each flow splits its
// admitted bandwidth equally across all of its tunnels, with no failure
// awareness. Admission is still maximised subject to link capacities, which
// reduces to an LP over b_f alone since a_{f,t} = b_f / |T_f|.
func ECMP(n *Network) (*Allocation, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	m := lp.NewModel("ecmp")
	m.SetMaximize(true)
	b := make([]lp.Var, len(n.Flows))
	linkLoad := make([]lp.Expr, len(n.LinkCap))
	for f, fl := range n.Flows {
		b[f] = m.AddVar(0, fl.Demand, 1, fmt.Sprintf("b_f%d", f))
		share := 1.0 / float64(len(n.Tunnels[f]))
		for _, t := range n.Tunnels[f] {
			for _, e := range t.Links {
				linkLoad[e] = linkLoad[e].Plus(share, b[f])
			}
		}
	}
	for e, expr := range linkLoad {
		if len(expr) > 0 {
			m.AddConstr(expr, lp.LE, n.LinkCap[e], fmt.Sprintf("cap_e%d", e))
		}
	}
	sol, err := lp.Solve(m, nil)
	if err != nil {
		return nil, fmt.Errorf("te: ecmp: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("te: ecmp: status %v", sol.Status)
	}
	al := &Allocation{
		B:         make([]float64, len(n.Flows)),
		A:         make([][]float64, len(n.Flows)),
		Objective: sol.Objective,
	}
	for f := range n.Flows {
		al.B[f] = sol.X[b[f]]
		al.A[f] = make([]float64, len(n.Tunnels[f]))
		for ti := range al.A[f] {
			al.A[f][ti] = al.B[f] / float64(len(n.Tunnels[f]))
		}
	}
	return al, nil
}
