package te

import (
	"context"
	"fmt"
	"math"

	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/par"
	"github.com/arrow-te/arrow/internal/ticket"
)

// This file implements Phase I as a restricted master problem with lazy
// ticket pricing (column generation). The full-enumeration master keeps
// every ticket's constraint block; here the master starts from one seed
// block per scenario (ticket 0, the RWA-derived candidate) and each pricing
// round appends, per scenario, the deferred ticket block whose rows are most
// violated at the current master optimum.
//
// Why row violation IS the reduced cost: in the dual of the phase-I LP each
// primal ROW owns a dual variable whose reduced cost at the current master
// solution equals that row's primal residual. A deferred ticket block whose
// rows are all satisfied (violation <= eps) prices out — appending satisfied
// constraints cannot move the optimum — so termination with no violated
// block certifies the restricted optimum equals the full-model optimum
// exactly, not approximately. The eps threshold (ticket.DefaultPricingEps)
// only guards against floating-point residue on satisfied rows.

// loadKey addresses one (scenario, failed link) reference-load expression.
type loadKey struct{ qi, link int }

// buildRefLoads returns the ticket-INDEPENDENT reference loads used to rank
// tickets in post-processing: for each (scenario, failed link), the
// allocation carried by every tunnel that crosses the failed link (the load
// the link would see under full restoration). Evaluating each ticket
// against per-ticket restorable sets would systematically favour tickets
// that restore fewer links (their Y sets shrink, so their measured loads
// shrink); a fixed reference keeps the comparison apples-to-apples.
func buildRefLoads(n *Network, scs []RestorableScenario, bm *baseModel) map[loadKey]lp.Expr {
	refLoad := map[loadKey]lp.Expr{}
	for qi := range scs {
		for _, link := range scs[qi].FailedLinks {
			var load lp.Expr
			for f := range n.Flows {
				for ti, t := range n.Tunnels[f] {
					for _, le := range t.Links {
						if le == link {
							load = load.Plus(1, bm.a[f][ti])
							break
						}
					}
				}
			}
			refLoad[loadKey{qi, link}] = load
		}
	}
	return refLoad
}

func newCoverSeen(n *Network) []map[string]bool {
	seen := make([]map[string]bool, len(n.Flows))
	for f := range seen {
		seen[f] = map[string]bool{}
	}
	return seen
}

// p1Cover is one constraint (4) row of a ticket block: residual plus
// restorable tunnels of flow f cover b_f. The key identifies the
// surviving+restorable tunnel set for cross-block deduplication.
type p1Cover struct {
	f    int
	key  string
	expr lp.Expr
}

// p1Block is the full constraint block ticket (q, z) contributes to the
// phase-I master: deduplicatable cover rows plus the aggregate
// restorable-link load expression of constraints (5)+(6).
type p1Block struct {
	covers []p1Cover
	load   lp.Expr
	totalR float64
}

// buildTicketBlock computes ticket (q, z)'s constraint block against the
// shared base-model variables. Pure (no model mutation), so blocks can be
// precomputed in parallel and priced repeatedly without rebuilding.
func buildTicketBlock(n *Network, q *RestorableScenario, z int, bm *baseModel) p1Block {
	failed := failedSet(q.FailedLinks)
	restored := func(link int) float64 { return q.TicketGbps(z, link) }
	restorable := make([][]int, len(n.Flows))
	for f := range n.Flows {
		restorable[f] = restorableTunnels(n, f, failed, restored)
	}

	var blk p1Block
	for f := range n.Flows {
		res := residualTunnels(n, f, failed)
		rst := restorable[f]
		if len(res)+len(rst) == len(n.Tunnels[f]) || len(res)+len(rst) == 0 {
			// Nothing lost, or the flow is disconnected under this
			// scenario+ticket (no residual or restorable tunnel): the
			// guarantee is either implied by (1) or vacuous.
			continue
		}
		var e lp.Expr
		for _, ti := range res {
			e = e.Plus(1, bm.a[f][ti])
		}
		for _, ti := range rst {
			e = e.Plus(1, bm.a[f][ti])
		}
		e = e.Plus(-1, bm.b[f])
		blk.covers = append(blk.covers, p1Cover{f: f, key: fmt.Sprint(res, rst), expr: e})
	}

	for _, link := range q.FailedLinks {
		r := restored(link)
		blk.totalR += r
		var load lp.Expr
		for f := range n.Flows {
			for _, ti := range restorable[f] {
				for _, le := range n.Tunnels[f][ti].Links {
					if le == link {
						load = load.Plus(1, bm.a[f][ti])
						break
					}
				}
			}
		}
		blk.load = append(blk.load, load...)
	}
	return blk
}

func evalExprAt(e lp.Expr, x []float64) float64 {
	s := 0.0
	for _, t := range e {
		s += t.Coef * x[t.Var]
	}
	return s
}

// pickWinners runs the shared Phase I post-processing on a solved master:
// winner_q = argmin_z sum_e max(0, load_e - r_e^{z,q}) over ALL tickets
// (including ones a colgen master never appended — the reference loads are
// ticket-independent, so every ticket is rankable at any master optimum).
// Ties break toward maximal total restoration, then maximal load-matched
// capacity (sum_e min(load_e, r_e)); all comparisons are index-ordered and
// worker-count independent.
func pickWinners(scs []RestorableScenario, refLoad map[loadKey]lp.Expr, x []float64) []int {
	winners := make([]int, len(scs))
	for qi := range scs {
		best, bestSlack, bestUsable, bestTotal := 0, math.Inf(1), -1.0, -1.0
		for z := range scs[qi].Tickets {
			slack, usable := 0.0, 0.0
			for _, link := range scs[qi].FailedLinks {
				r := scs[qi].TicketGbps(z, link)
				load := 0.0
				if e, ok := refLoad[loadKey{qi, link}]; ok {
					load = evalExprAt(e, x)
				}
				slack += math.Max(0, load-r)
				usable += math.Min(load, r)
			}
			total := scs[qi].Tickets[z].TotalGbps()
			// Ranking: minimal slack first (the paper's criterion), then
			// maximal TOTAL restoration (more revived capacity can only
			// help under failures), then maximal load-matched capacity.
			better := slack < bestSlack-1e-9 ||
				(slack < bestSlack+1e-9 && total > bestTotal+1e-9) ||
				(slack < bestSlack+1e-9 && total > bestTotal-1e-9 && usable > bestUsable+1e-9)
			if better {
				best, bestSlack, bestUsable, bestTotal = z, slack, usable, total
			}
		}
		winners[qi] = best
	}
	return winners
}

// setCanonicalObjective swaps a solved phase-I master onto the canonical
// secondary objective: a lock row pins the primary optimum (sum_f b_f >=
// Obj*) and the objective becomes minimising the total reference load — the
// allocation carried by tunnels that cross any potentially-failing link.
// Phase I optima are massively degenerate in how each b_f splits across its
// tunnels, so ranking tickets by per-link loads at an arbitrary optimal
// vertex makes the winner an artifact of the pivot path (and of the master
// the solve happened to use — restricted or full). Minimising reference
// load selects, among the primary optima, the vertices that route away from
// failure-prone links: the winner choice stabilises across solve modes and
// tickets are evaluated where the slack criterion is most meaningful.
func setCanonicalObjective(bm *baseModel, scs []RestorableScenario, refLoad map[loadKey]lp.Expr, primalObj float64) {
	// Per-variable weights accumulate in deterministic (scenario, link)
	// order; every coefficient is 1, so the sums are exact integers.
	weight := make([]float64, bm.m.NumVars())
	for qi := range scs {
		for _, link := range scs[qi].FailedLinks {
			for _, t := range refLoad[loadKey{qi, link}] {
				weight[t.Var] += t.Coef
			}
		}
	}
	var lock lp.Expr
	for _, b := range bm.b {
		lock = lock.Plus(1, b)
	}
	bm.m.AddConstr(lock, lp.GE, primalObj, "p1lock")
	for _, b := range bm.b {
		bm.m.SetObj(b, 0)
	}
	for j, w := range weight {
		if w != 0 {
			bm.m.SetObj(lp.Var(j), -w) // maximise -load = minimise load
		}
	}
}

// solveCanonical solves the master after setCanonicalObjective, warm from
// the primary-optimal basis when warm starts are enabled (the lock row is
// active at the warm point, so the solver pads it slack-basic and skips its
// LP phase 1). Solve events carry the "-canon" suffixed solver name so
// reports and tests can tell the canonicalisation pass from primary solves.
func solveCanonical(bm *baseModel, warm *lp.Basis, opts *ArrowOptions) (*lp.Solution, error) {
	lpo := opts.phase1LP()
	L := opts.ledger()
	name := bm.m.Name() + "-canon"
	if L != nil {
		L.Emit(ledger.Event{Kind: ledger.KindSolveStart, Scenario: -1, Solver: name})
	}
	var sol *lp.Solution
	var err error
	if opts.noWarm() || warm == nil {
		sol, err = lp.Solve(bm.m, lpo)
	} else {
		sol, err = lp.SolveWithBasis(bm.m, warm, lpo)
	}
	if err != nil {
		return nil, fmt.Errorf("te: arrow phase 1 canonical: %w", err)
	}
	if L != nil {
		emitWarmStart(L, name, sol)
		L.Emit(ledger.Event{
			Kind: ledger.KindSolveEnd, Scenario: -1, Solver: name,
			Status: sol.Status.String(), Cert: sol.Cert,
		})
		ledger.EmitSolverHealth(L, -1, name, sol.Health)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("te: arrow phase 1 canonical: status %v", sol.Status)
	}
	if err := lp.CheckCertificate(sol.Cert, lp.DefaultCertTol); err != nil {
		return nil, fmt.Errorf("te: arrow phase 1 canonical: certificate: %w", err)
	}
	return sol, nil
}

// appendTicketBlock splices ticket (q, z)'s block into the restricted
// master. Cover rows dedup against coverSeen exactly as the full
// enumeration does. The aggregate slack row is written in delta-column
// form — totalLoad - u <= totalR with a fresh relaxation column
// u in [0, alpha*totalR] appended via AppendColumn — which is feasibly
// identical to the enumerated (1+alpha)*totalR row but grows the model
// column-wise so the warm basis extends in place (new rows slack-basic, the
// new column nonbasic at zero). Returns the number of columns appended
// (0 or 1).
func appendTicketBlock(bm *baseModel, basis *lp.Basis, qi, z int, blk *p1Block, alpha float64, coverSeen []map[string]bool) int {
	for _, cv := range blk.covers {
		if coverSeen[cv.f][cv.key] {
			continue
		}
		coverSeen[cv.f][cv.key] = true
		bm.m.AddConstr(cv.expr, lp.GE, 0, fmt.Sprintf("p1cover_f%d_q%d_z%d", cv.f, qi, z))
	}
	if len(blk.load) == 0 {
		if basis != nil {
			basis.ExtendTo(bm.m)
		}
		return 0
	}
	c := bm.m.AddConstr(blk.load, lp.LE, blk.totalR, fmt.Sprintf("p1slack_q%d_z%d", qi, z))
	bm.m.AppendColumn(basis, 0, alpha*blk.totalR, 0,
		fmt.Sprintf("p1relax_q%d_z%d", qi, z), []lp.ColumnEntry{{Constr: c, Coef: -1}})
	return 1
}

// blockViolation is the pricing measure of a deferred block at the current
// master optimum: the worst residual over the block's rows not yet present
// in the master (deduped cover rows already in the master are satisfied
// within solver tolerance and cannot price the block in). The deferred
// slack row is judged against its fully-relaxed form (1+alpha)*totalR,
// matching the feasible region its delta-column form spans once appended.
// The block's reduced cost is the negation of this violation.
func blockViolation(blk *p1Block, alpha float64, coverSeen []map[string]bool, x []float64) float64 {
	worst := 0.0
	for _, cv := range blk.covers {
		if coverSeen[cv.f][cv.key] {
			continue
		}
		if v := -evalExprAt(cv.expr, x); v > worst {
			worst = v
		}
	}
	if len(blk.load) > 0 {
		if v := evalExprAt(blk.load, x) - (1+alpha)*blk.totalR; v > worst {
			worst = v
		}
	}
	return worst
}

// arrowPhase1Colgen is the column-generation Phase I: seed the restricted
// master with ticket 0 per scenario, then alternate pricing sweeps (fanned
// over par.Map, one oracle call per scenario) with warm master re-solves
// until every deferred block prices out. Certificates are checked on every
// master re-solve; the converged optimum equals the full-enumeration
// optimum exactly (see the file comment for the termination argument).
func arrowPhase1Colgen(n *Network, scs []RestorableScenario, opts *ArrowOptions) ([]int, SolveStats, *lp.Basis, error) {
	bm := newBaseModel("arrow-phase1", n)
	baseRows := bm.m.NumConstrs()
	baseVars := bm.m.NumVars()
	alpha := opts.alpha()

	refLoad := buildRefLoads(n, scs, bm)
	coverSeen := newCoverSeen(n)

	// Precompute every ticket's block once (pure reads of the instance),
	// fanned per scenario. The blocks are then priced each round and
	// spliced in at most once.
	ctx := context.Background()
	workers := opts.parallelism()
	blocks, err := par.Map(ctx, workers, len(scs), func(_ context.Context, qi int) ([]p1Block, error) {
		q := &scs[qi]
		out := make([]p1Block, len(q.Tickets))
		for z := range q.Tickets {
			out[z] = buildTicketBlock(n, q, z, bm)
		}
		return out, nil
	})
	if err != nil {
		return nil, SolveStats{}, nil, fmt.Errorf("te: arrow phase 1 colgen: %w", err)
	}

	inMaster := make([][]bool, len(scs))
	totalTickets := 0
	for qi := range scs {
		inMaster[qi] = make([]bool, len(scs[qi].Tickets))
		totalTickets += len(scs[qi].Tickets)
	}

	lpo := opts.phase1LP()
	L := opts.ledger()
	rec := opts.recorder()

	// Seed: the leading Seeds tickets per scenario (by convention ticket 0
	// is the RWA-derived candidate, the |Z|=1 plan; compositional pipelines
	// prepend composed-from-singles candidates and raise Seeds), in scenario
	// order. Starting from the bare base model instead was measured strictly
	// worse: the base optimum sits far from any restorable vertex, so the
	// first sweep prices one block per scenario and the repair of that bulk
	// append costs more than seeding ever does.
	totalSeeds := 0
	for qi := range scs {
		for z := 0; z < scs[qi].seedCount(); z++ {
			inMaster[qi][z] = true
			appendTicketBlock(bm, nil, qi, z, &blocks[qi][z], alpha, coverSeen)
			totalSeeds++
		}
	}

	solve := func(warm *lp.Basis) (*lp.Solution, error) {
		if L != nil {
			L.Emit(ledger.Event{Kind: ledger.KindSolveStart, Scenario: -1, Solver: bm.m.Name()})
		}
		var sol *lp.Solution
		var err error
		switch {
		case opts.noWarm():
			sol, err = lp.Solve(bm.m, lpo)
		case warm == nil:
			// Every master row (cover, slack-in-delta-form, seeds and
			// priced-in blocks alike) is satisfied at x = 0, so the
			// all-slack basis skips the LP's feasibility phase entirely.
			// That beats warm-starting from the previous round's basis:
			// freshly appended rows are VIOLATED at the previous optimum
			// (that is why they priced in), and repairing a primal-
			// infeasible warm basis costs close to a cold solve in the
			// bounded simplex, while phase 2 from all-slack on the small
			// restricted master is cheap.
			sol, err = lp.SolveWithBasis(bm.m, lp.SlackBasis(bm.m), lpo)
		default:
			sol, err = lp.SolveWithBasis(bm.m, warm, lpo)
		}
		if err != nil {
			return nil, fmt.Errorf("te: arrow phase 1: %w", err)
		}
		if L != nil {
			emitWarmStart(L, bm.m.Name(), sol)
			L.Emit(ledger.Event{
				Kind: ledger.KindSolveEnd, Scenario: -1, Solver: bm.m.Name(),
				Status: sol.Status.String(), Cert: sol.Cert,
			})
			ledger.EmitSolverHealth(L, -1, bm.m.Name(), sol.Health)
		}
		if sol.Status != lp.StatusOptimal {
			return nil, fmt.Errorf("te: arrow phase 1: status %v", sol.Status)
		}
		// Certificate check on every master re-solve: a priced-in column
		// that broke dual feasibility would silently corrupt every later
		// pricing decision, so fail loudly here instead.
		if err := lp.CheckCertificate(sol.Cert, lp.DefaultCertTol); err != nil {
			return nil, fmt.Errorf("te: arrow phase 1: master certificate: %w", err)
		}
		return sol, nil
	}

	oracle := ticket.PricingOracle{}
	type pick struct {
		z  int
		rc float64
	}
	rounds, priced, roundSeq := 0, 0, 0
	totalIters := 0
	// priceOut alternates pricing sweeps with master re-solves (via the
	// caller-chosen resolve strategy) until every deferred block prices out
	// at sol's optimum. Each non-final sweep appends at least one block, so
	// the loop is bounded by the total ticket count (+1 for the priced-out
	// sweep). It is run twice: once under the primary objective and once
	// after setCanonicalObjective (the load-minimal vertex may violate
	// deferred cover rows the primary optimum satisfied, so the secondary
	// pass can price blocks back in).
	priceOut := func(sol *lp.Solution, resolve func(*lp.Basis) (*lp.Solution, error)) (*lp.Solution, error) {
		for round := 0; round <= totalTickets; round++ {
			rounds++
			x := sol.X
			// te.pricing is an aggregate stage (te.phase1 already brackets the
			// whole dispatch as the top-level wall stage).
			endPricing := opts.profiler().StageAgg("te.pricing")
			picks, err := par.Map(ctx, workers, len(scs), func(_ context.Context, qi int) (pick, error) {
				q := &scs[qi]
				z, rc := oracle.Price(len(q.Tickets),
					func(z int) bool { return !inMaster[qi][z] },
					func(z int) float64 { return -blockViolation(&blocks[qi][z], alpha, coverSeen, x) })
				return pick{z: z, rc: rc}, nil
			})
			endPricing()
			if err != nil {
				return nil, fmt.Errorf("te: arrow phase 1 colgen: %w", err)
			}
			roundCols, worstRC := 0, 0.0
			basis := sol.Basis
			for qi, p := range picks {
				if p.z < 0 {
					continue
				}
				if p.rc < worstRC {
					worstRC = p.rc
				}
				inMaster[qi][p.z] = true
				appendTicketBlock(bm, basis, qi, p.z, &blocks[qi][p.z], alpha, coverSeen)
				roundCols++
			}
			priced += roundCols
			if L != nil {
				L.Emit(ledger.Event{
					Kind: ledger.KindPricingRound, Scenario: -1, Round: roundSeq,
					Count: roundCols, Gbps: worstRC,
					Detail: fmt.Sprintf("master %dv/%dr", bm.m.NumVars(), bm.m.NumConstrs()),
				})
			}
			roundSeq++
			if roundCols == 0 {
				return sol, nil // every deferred block priced out: restricted optimum is exact
			}
			sol, err = resolve(basis)
			if err != nil {
				return nil, err
			}
			totalIters += sol.Iterations
		}
		return sol, nil
	}

	sol, err := solve(nil)
	if err != nil {
		return nil, SolveStats{}, nil, err
	}
	totalIters += sol.Iterations
	if sol, err = priceOut(sol, solve); err != nil {
		return nil, SolveStats{}, nil, err
	}

	// Canonicalise the vertex before winner selection (see
	// setCanonicalObjective), re-entering the pricing loop in case the
	// load-minimal vertex violates still-deferred blocks. The lock row makes
	// x = 0 infeasible, so secondary re-solves warm from the previous
	// canonical basis instead of the slack basis.
	setCanonicalObjective(bm, scs, refLoad, sol.Objective)
	if sol.Basis != nil {
		sol.Basis.ExtendTo(bm.m)
	}
	if sol, err = solveCanonical(bm, sol.Basis, opts); err != nil {
		return nil, SolveStats{}, nil, err
	}
	totalIters += sol.Iterations
	if sol, err = priceOut(sol, func(b *lp.Basis) (*lp.Solution, error) { return solveCanonical(bm, b, opts) }); err != nil {
		return nil, SolveStats{}, nil, err
	}

	if rec != nil {
		rec.Add("lp.columns_priced", int64(priced))
		rec.Add("te.pricing_rounds", int64(rounds))
		rec.Add("te.tickets_deferred", int64(totalTickets-priced-totalSeeds))
	}

	var p1basis *lp.Basis
	if !opts.noWarm() && sol.Basis != nil {
		p1basis = sol.Basis.Clone()
		if len(p1basis.VarStatus) > baseVars {
			p1basis.VarStatus = p1basis.VarStatus[:baseVars]
		}
		if len(p1basis.RowStatus) > baseRows {
			p1basis.RowStatus = p1basis.RowStatus[:baseRows]
		}
	}
	// The restricted master only ever grows, so the converged size IS the
	// peak master size — directly comparable against the full enumeration's
	// model dimensions.
	stats := SolveStats{Phase1Vars: bm.m.NumVars(), Phase1Rows: bm.m.NumConstrs(), Phase1Iters: totalIters}
	return pickWinners(scs, refLoad, sol.X), stats, p1basis, nil
}
