// Package te implements ARROW's restoration-aware traffic engineering
// (§3.3 of the paper) and every TE scheme it is evaluated against:
//
//   - Arrow: the two-phase LP of Tables 2 and 3 (Phase I selects the
//     winning LotteryTicket per failure scenario via slack minimisation;
//     Phase II computes tunnel allocations using the winners).
//   - ArrowNaive: Phase II only, with a single restoration candidate from
//     the optical-layer RWA (no demand awareness).
//   - FFC-k [63]: proactive guarantees for all <=k fiber-cut scenarios.
//   - TeaVaR [17]: CVaR-based probabilistic TE at availability target beta.
//   - ECMP [21]: equal splitting, failure-oblivious.
//   - MaxThroughput: plain multi-commodity flow; also the hypothetical
//     "Fully Restorable TE" baseline of Fig. 16.
//   - BinaryILP (Table 9) and the joint IP/optical formulation (Table 7)
//     for small ground-truth instances, plus the Table 8 size counter.
//
// All schemes share the notation of FFC: flows f with demand d_f, tunnels
// T_f over IP links e with capacity c_e, failure scenarios q, allocations
// a_{f,t} and admitted bandwidth b_f.
package te

import (
	"fmt"

	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/ticket"
)

// Flow is one aggregated ingress-egress demand pair.
type Flow struct {
	Src, Dst int
	Demand   float64 // d_f in Gbps
}

// Tunnel is one routing path of a flow: the IP links it traverses.
type Tunnel struct {
	Links []int
}

// Network is the standard TE input (Table 1): IP links with capacities,
// flows with demands, and each flow's tunnel set.
type Network struct {
	LinkCap []float64  // c_e, by IP link ID
	Flows   []Flow     // F
	Tunnels [][]Tunnel // T_f, indexed by flow
}

// Validate checks referential integrity of the instance.
func (n *Network) Validate() error {
	if len(n.Flows) != len(n.Tunnels) {
		return fmt.Errorf("te: %d flows but %d tunnel sets", len(n.Flows), len(n.Tunnels))
	}
	for f, ts := range n.Tunnels {
		if len(ts) == 0 {
			return fmt.Errorf("te: flow %d has no tunnels", f)
		}
		for ti, t := range ts {
			if len(t.Links) == 0 {
				return fmt.Errorf("te: flow %d tunnel %d is empty", f, ti)
			}
			for _, e := range t.Links {
				if e < 0 || e >= len(n.LinkCap) {
					return fmt.Errorf("te: flow %d tunnel %d references unknown link %d", f, ti, e)
				}
			}
		}
	}
	return nil
}

// TotalDemand returns sum of d_f.
func (n *Network) TotalDemand() float64 {
	s := 0.0
	for _, f := range n.Flows {
		s += f.Demand
	}
	return s
}

// Scaled returns a copy of the network with all demands multiplied by s.
func (n *Network) Scaled(s float64) *Network {
	c := &Network{LinkCap: n.LinkCap, Tunnels: n.Tunnels, Flows: make([]Flow, len(n.Flows))}
	copy(c.Flows, n.Flows)
	for i := range c.Flows {
		c.Flows[i].Demand *= s
	}
	return c
}

// FailureScenario is one fiber-cut scenario projected onto the IP layer.
type FailureScenario struct {
	// Prob is the scenario probability (0 for FFC's absolute scenarios).
	Prob float64
	// FailedLinks are the IP link IDs that go down.
	FailedLinks []int
}

// RestorableScenario couples a failure scenario with its LotteryTickets.
type RestorableScenario struct {
	FailureScenario
	// TicketLinks gives the order of failed links inside each ticket's
	// vectors (the rwa.Result.Failed order).
	TicketLinks []int
	// Tickets is the candidate set Z^q for this scenario.
	Tickets []ticket.Ticket
	// Seeds is the number of leading tickets the column-generation master
	// installs up front (<=1 means the conventional single RWA-derived seed,
	// ticket 0). Compositional pipelines put composed-from-singles candidate
	// tickets ahead of the generated pool and raise Seeds so the restricted
	// master starts from the composed plan instead of pricing it in.
	Seeds int
}

// seedCount clamps Seeds to [1, len(Tickets)].
func (rs *RestorableScenario) seedCount() int {
	s := rs.Seeds
	if s < 1 {
		s = 1
	}
	if s > len(rs.Tickets) {
		s = len(rs.Tickets)
	}
	return s
}

// TicketGbps returns ticket z's restored capacity for IP link e (0 when the
// link is not in the ticket).
func (rs *RestorableScenario) TicketGbps(z int, link int) float64 {
	for i, l := range rs.TicketLinks {
		if l == link {
			return rs.Tickets[z].Gbps[i]
		}
	}
	return 0
}

// Allocation is the output of a TE solve: admitted bandwidth per flow and
// its distribution over tunnels.
type Allocation struct {
	B []float64   // b_f
	A [][]float64 // a_{f,t}, indexed [flow][tunnel]
	// WinningTicket[qi] is the index into scenario qi's ticket set chosen by
	// Phase I (Arrow only; nil otherwise).
	WinningTicket []int
	// RestoredGbps[qi][e] is the restored capacity the plan provides for
	// link e under scenario qi (Arrow/ArrowNaive only).
	RestoredGbps []map[int]float64
	// Objective is the solver's total throughput sum(b_f).
	Objective float64
	// Stats describes the LP(s) behind this allocation (filled by the
	// ARROW solvers; zero for baselines).
	Stats SolveStats
	// Cert is the optimality certificate of the LP that produced this
	// allocation (the Phase II solve for Arrow/ArrowNaive).
	Cert *lp.Certificate
	// Sens carries the final Phase II model, basis, duals and capacity-row
	// handles for post-solve availability attribution. Nil unless the solve
	// ran with ArrowOptions.CaptureSensitivity; the numeric allocation is
	// identical either way.
	Sens *SensitivityHandle
}

// SolveStats records model sizes and simplex effort for observability
// (the Fig. 15 runtime analysis reports these alongside wall-clock).
type SolveStats struct {
	Phase1Vars, Phase1Rows, Phase1Iters int
	Phase2Vars, Phase2Rows, Phase2Iters int
}

// Throughput returns sum(b_f) / sum(d_f), the paper's throughput metric.
func (a *Allocation) Throughput(n *Network) float64 {
	total := n.TotalDemand()
	if total == 0 {
		return 1
	}
	s := 0.0
	for _, b := range a.B {
		s += b
	}
	return s / total
}

// SplitRatios returns omega_{f,t} = a_{f,t} / sum_t a_{f,t} (§3.3). Flows
// with no allocation split uniformly.
func (a *Allocation) SplitRatios() [][]float64 {
	out := make([][]float64, len(a.A))
	for f, as := range a.A {
		out[f] = make([]float64, len(as))
		sum := 0.0
		for _, v := range as {
			sum += v
		}
		if sum <= 0 {
			for t := range as {
				out[f][t] = 1 / float64(len(as))
			}
			continue
		}
		for t, v := range as {
			out[f][t] = v / sum
		}
	}
	return out
}

// residualTunnels returns the indices of flow f's tunnels that avoid every
// failed link (T_f^q).
func residualTunnels(n *Network, f int, failed map[int]bool) []int {
	var out []int
	for ti, t := range n.Tunnels[f] {
		ok := true
		for _, e := range t.Links {
			if failed[e] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, ti)
		}
	}
	return out
}

// restorableTunnels returns Y_f^{z,q}: tunnels of f that cross at least one
// failed link and whose every failed link has positive restored capacity
// under the given per-link restoration (§3.3: "if every failed link e that
// tunnel t traverses is available after restoration ... this tunnel is
// restorable").
func restorableTunnels(n *Network, f int, failed map[int]bool, restored func(link int) float64) []int {
	var out []int
	for ti, t := range n.Tunnels[f] {
		crossesFailed := false
		ok := true
		for _, e := range t.Links {
			if failed[e] {
				crossesFailed = true
				if restored(e) <= 0 {
					ok = false
					break
				}
			}
		}
		if crossesFailed && ok {
			out = append(out, ti)
		}
	}
	return out
}

func failedSet(links []int) map[int]bool {
	m := make(map[int]bool, len(links))
	for _, e := range links {
		m[e] = true
	}
	return m
}
