package te

import (
	"fmt"
	"math"

	"github.com/arrow-te/arrow/internal/lp"
)

// TeaVaROptions configures the CVaR-based TE baseline.
type TeaVaROptions struct {
	// Beta is the availability target (e.g. 0.999), the CVaR level.
	Beta float64
	// TieBreak is the weight of the healthy-state throughput bonus used to
	// select among CVaR-optimal allocations (default 1e-3).
	TieBreak float64
}

// TeaVaR implements the CVaR-style probabilistic TE of Bogle et al. [17],
// adapted to this package's scenario model: it chooses tunnel reservations
// a_{f,t} minimising the Conditional Value-at-Risk, at level beta, of the
// scenario demand-loss fraction, via the Rockafellar–Uryasev linearisation:
//
//	min  theta + 1/(1-beta) * sum_q pbar_q u_q  -  tiebreak * healthy_throughput
//	s.t. u_q >= loss_q - theta, u_q >= 0
//	     loss_q = 1 - sum_f s_f^q / D
//	     s_f^q <= d_f,  s_f^q <= sum_{t in T_f^q} a_{f,t}
//	     sum_{f,t} a_{f,t} L[t,e] <= c_e
//
// where pbar are the scenario probabilities (including the healthy
// scenario) normalised over the enumerated mass. The returned Allocation's
// b_f is the healthy-state satisfied demand min(d_f, sum_t a_{f,t}).
func TeaVaR(n *Network, scs []FailureScenario, opts *TeaVaROptions) (*Allocation, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	beta := 0.999
	tie := 1e-3
	if opts != nil {
		if opts.Beta > 0 {
			beta = opts.Beta
		}
		if opts.TieBreak > 0 {
			tie = opts.TieBreak
		}
	}
	if beta >= 1 {
		return nil, fmt.Errorf("te: teavar: beta %g must be < 1", beta)
	}
	D := n.TotalDemand()
	if D <= 0 {
		return MaxThroughput(n)
	}

	m := lp.NewModel("teavar")
	// Minimisation problem.
	a := make([][]lp.Var, len(n.Flows))
	linkLoad := make([]lp.Expr, len(n.LinkCap))
	for f := range n.Flows {
		a[f] = make([]lp.Var, len(n.Tunnels[f]))
		for ti, t := range n.Tunnels[f] {
			v := m.AddVar(0, lp.Inf, 0, fmt.Sprintf("a_f%d_t%d", f, ti))
			a[f][ti] = v
			for _, e := range t.Links {
				linkLoad[e] = linkLoad[e].Plus(1, v)
			}
		}
	}
	for e, expr := range linkLoad {
		if len(expr) > 0 {
			m.AddConstr(expr, lp.LE, n.LinkCap[e], fmt.Sprintf("cap_e%d", e))
		}
	}

	// Scenario list: healthy first, then failures; probabilities normalised.
	healthyProb := 1.0
	totalP := 0.0
	for _, q := range scs {
		healthyProb -= q.Prob
	}
	if healthyProb < 0 {
		healthyProb = 0
	}
	totalP = healthyProb
	for _, q := range scs {
		totalP += q.Prob
	}
	if totalP <= 0 {
		return nil, fmt.Errorf("te: teavar: zero total scenario probability")
	}

	theta := m.AddVar(-lp.Inf, lp.Inf, 1, "theta")
	type scen struct {
		prob   float64
		failed map[int]bool
	}
	scens := []scen{{healthyProb, map[int]bool{}}}
	for _, q := range scs {
		scens = append(scens, scen{q.Prob, failedSet(q.FailedLinks)})
	}

	var healthyS []lp.Var
	for qi, sc := range scens {
		u := m.AddVar(0, lp.Inf, sc.prob/totalP/(1-beta), fmt.Sprintf("u_q%d", qi))
		// loss_q - theta - u <= 0  with  loss_q = 1 - sum_f s_f/D:
		// 1 - sum_f s_f/D - theta - u <= 0   =>   sum_f s_f/D + theta + u >= 1.
		var lossExpr lp.Expr
		for f := range n.Flows {
			s := m.AddVar(0, n.Flows[f].Demand, 0, fmt.Sprintf("s_f%d_q%d", f, qi))
			if qi == 0 {
				healthyS = append(healthyS, s)
				m.SetObj(s, -tie/D) // tie-break toward healthy throughput
			}
			var coverage lp.Expr
			for _, ti := range residualTunnels(n, f, sc.failed) {
				coverage = coverage.Plus(1, a[f][ti])
			}
			coverage = coverage.Plus(-1, s)
			m.AddConstr(coverage, lp.GE, 0, fmt.Sprintf("sat_f%d_q%d", f, qi))
			lossExpr = lossExpr.Plus(1/D, s)
		}
		lossExpr = lossExpr.Plus(1, theta).Plus(1, u)
		m.AddConstr(lossExpr, lp.GE, 1, fmt.Sprintf("cvar_q%d", qi))
	}

	sol, err := lp.Solve(m, nil)
	if err != nil {
		return nil, fmt.Errorf("te: teavar: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("te: teavar: status %v", sol.Status)
	}

	al := &Allocation{
		B: make([]float64, len(n.Flows)),
		A: make([][]float64, len(n.Flows)),
	}
	for f := range n.Flows {
		al.A[f] = make([]float64, len(a[f]))
		sum := 0.0
		for ti, v := range a[f] {
			al.A[f][ti] = sol.X[v]
			sum += sol.X[v]
		}
		al.B[f] = math.Min(n.Flows[f].Demand, sum)
		al.Objective += al.B[f]
	}
	return al, nil
}
