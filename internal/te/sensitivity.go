package te

import "github.com/arrow-te/arrow/internal/lp"

// CapRow locates one capacity row of a solved TE model: the healthy
// IP-link capacity rows cap_e (Scenario -1) and, for ARROW Phase II, the
// per-scenario restored-ticket capacity rows p2cap_e_q (constraint (11)).
// Links whose tunnels never touch them get no row, so CapRows is sparse.
type CapRow struct {
	Link     int       `json:"link"`
	Scenario int       `json:"scenario"` // -1 for healthy cap_e rows
	Constr   lp.Constr `json:"constr"`
}

// SensitivityHandle carries the artifacts of the final Phase II solve that
// post-solve availability attribution (internal/attr) consumes: the solved
// model, its optimal basis and duals, the capacity-row handles, and the
// variable layout needed to extract allocations from probe re-solves.
// Captured only when ArrowOptions.CaptureSensitivity is set; the pipeline
// itself never reads the model again, so attribution may transiently
// perturb row RHS values (SetRHS + SolveWithBasis) as long as it restores
// them. Capturing changes no solve behaviour: the handle only retains
// pointers the solve produced anyway.
type SensitivityHandle struct {
	Model     *lp.Model
	Basis     *lp.Basis
	Duals     []float64
	Objective float64
	CapRows   []CapRow
	// BVars / AVars mirror the baseModel variable layout (b_f and a_{f,t})
	// so probe solutions can be extracted into Allocations.
	BVars []lp.Var
	AVars [][]lp.Var
}

// ExtractAllocation converts a probe re-solve's primal point into B/A
// slices using the captured variable layout.
func (h *SensitivityHandle) ExtractAllocation(x []float64) (b []float64, a [][]float64) {
	b = make([]float64, len(h.BVars))
	a = make([][]float64, len(h.AVars))
	for f, v := range h.BVars {
		b[f] = x[v]
	}
	for f, vs := range h.AVars {
		a[f] = make([]float64, len(vs))
		for ti, v := range vs {
			a[f][ti] = x[v]
		}
	}
	return b, a
}
