package spectrum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapSetGet(t *testing.T) {
	b := NewBitmap(96)
	if b.Count() != 0 {
		t.Fatalf("new bitmap count %d", b.Count())
	}
	b.Set(0, true)
	b.Set(95, true)
	b.Set(63, true)
	b.Set(64, true)
	if !b.Available(0) || !b.Available(95) || !b.Available(63) || !b.Available(64) {
		t.Fatal("set bits not readable")
	}
	if b.Available(1) {
		t.Fatal("unset bit reads true")
	}
	if b.Count() != 4 {
		t.Fatalf("count %d", b.Count())
	}
	b.Set(63, false)
	if b.Available(63) || b.Count() != 3 {
		t.Fatal("clear failed")
	}
}

func TestBitmapBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBitmap(8).Available(8)
}

func TestAllAvailableAndUtilization(t *testing.T) {
	b := AllAvailable(96)
	if b.Count() != 96 || b.Utilization() != 0 {
		t.Fatalf("count %d util %g", b.Count(), b.Utilization())
	}
	for i := 0; i < 24; i++ {
		b.Set(i, false)
	}
	if b.Utilization() != 0.25 {
		t.Fatalf("utilization %g", b.Utilization())
	}
}

func TestIntersectContinuity(t *testing.T) {
	// Fig. 5(b) scenario: three fibers each 75% available but only a small
	// common window usable end-to-end.
	fa, fb, fc := NewBitmap(8), NewBitmap(8), NewBitmap(8)
	for _, i := range []int{0, 1, 2, 3, 4, 5} {
		fa.Set(i, true)
	}
	for _, i := range []int{2, 3, 4, 5, 6, 7} {
		fb.Set(i, true)
	}
	for _, i := range []int{0, 1, 2, 6, 5, 7} {
		fc.Set(i, true)
	}
	common := PathSpectrum([]*Bitmap{fa, fb, fc})
	if common.Count() != 2 { // slots 2 and 5
		t.Fatalf("common slots %d", common.Count())
	}
	if !common.Available(2) || !common.Available(5) {
		t.Fatal("wrong common slots")
	}
	if common.FirstAvailable() != 2 {
		t.Fatalf("first available %d", common.FirstAvailable())
	}
}

func TestIntersectProperty(t *testing.T) {
	// Property: Intersect(a,b).Available(i) == a.Available(i) && b.Available(i).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := NewBitmap(n), NewBitmap(n)
		for i := 0; i < n; i++ {
			a.Set(i, rng.Intn(2) == 0)
			b.Set(i, rng.Intn(2) == 0)
		}
		c := a.Intersect(b)
		for i := 0; i < n; i++ {
			if c.Available(i) != (a.Available(i) && b.Available(i)) {
				return false
			}
		}
		// Count is consistent with Available.
		cnt := 0
		for i := 0; i < n; i++ {
			if c.Available(i) {
				cnt++
			}
		}
		return cnt == c.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := AllAvailable(10)
	b := a.Clone()
	b.Set(3, false)
	if !a.Available(3) {
		t.Fatal("clone aliases original")
	}
}

func TestBestModulation(t *testing.T) {
	cases := []struct {
		km   float64
		want float64
		ok   bool
	}{
		{500, 400, true},
		{1000, 400, true},
		{1200, 300, true},
		{2500, 200, true},
		{4000, 100, true},
		{5000, 100, true},
		{6000, 0, false},
	}
	for _, c := range cases {
		m, ok := BestModulation(c.km)
		if ok != c.ok || (ok && m.GbpsPerWavelength != c.want) {
			t.Fatalf("BestModulation(%g) = %v %v, want %g %v", c.km, m.GbpsPerWavelength, ok, c.want, c.ok)
		}
	}
}

func TestModulationByRate(t *testing.T) {
	m, ok := ModulationByRate(200)
	if !ok || m.ReachKm != 3000 {
		t.Fatalf("got %+v %v", m, ok)
	}
	if _, ok := ModulationByRate(150); ok {
		t.Fatal("unexpected modulation")
	}
}

func TestFirstAvailableEmpty(t *testing.T) {
	if NewBitmap(70).FirstAvailable() != -1 {
		t.Fatal("empty bitmap should have no available slot")
	}
}
