// Package spectrum models the optical fiber spectrum: the ITU-T DWDM grid
// of wavelength slots, per-fiber occupancy bitmaps, the wavelength
// continuity constraint, and the modulation-format reach table that bounds
// surrogate restoration path lengths (Table 6 of the ARROW paper).
package spectrum

import (
	"fmt"
	"math/bits"
)

// DefaultSlots is the number of wavelength slots per fiber under the ITU-T
// flexi-grid DWDM standard used in the paper's formulation (Appendix A.2:
// "e.g., 96 wavelength slots under ITU-T DWDM standard").
const DefaultSlots = 96

// Bitmap is a set of wavelength slots, one bit per slot. A set bit means the
// slot is AVAILABLE for restoration; a clear bit means it already carries a
// working wavelength (matching Appendix A.2's phi.spectrum convention).
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns a bitmap of n slots, all unavailable (zero).
func NewBitmap(n int) *Bitmap {
	if n <= 0 {
		panic("spectrum: non-positive slot count")
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// AllAvailable returns a bitmap of n slots, all available.
func AllAvailable(n int) *Bitmap {
	b := NewBitmap(n)
	for i := 0; i < n; i++ {
		b.Set(i, true)
	}
	return b
}

// Len returns the number of slots.
func (b *Bitmap) Len() int { return b.n }

// Set marks slot i available (true) or occupied (false).
func (b *Bitmap) Set(i int, available bool) {
	b.check(i)
	if available {
		b.words[i/64] |= 1 << uint(i%64)
	} else {
		b.words[i/64] &^= 1 << uint(i%64)
	}
}

// Available reports whether slot i is free for restoration.
func (b *Bitmap) Available(i int) bool {
	b.check(i)
	return b.words[i/64]&(1<<uint(i%64)) != 0
}

func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("spectrum: slot %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of available slots.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Utilization returns the fraction of slots occupied by working wavelengths
// (the paper's "spectrum utilization", Fig. 5).
func (b *Bitmap) Utilization() float64 {
	return 1 - float64(b.Count())/float64(b.n)
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	return &Bitmap{words: append([]uint64(nil), b.words...), n: b.n}
}

// Intersect returns a new bitmap with slots available in both b and o.
// This realises the wavelength continuity constraint: a wavelength is
// reconfigurable onto a multi-fiber path only in slots free on EVERY fiber.
func (b *Bitmap) Intersect(o *Bitmap) *Bitmap {
	if b.n != o.n {
		panic("spectrum: intersecting bitmaps of different sizes")
	}
	out := NewBitmap(b.n)
	for i := range out.words {
		out.words[i] = b.words[i] & o.words[i]
	}
	return out
}

// IntersectInto intersects o into b in place.
func (b *Bitmap) IntersectInto(o *Bitmap) {
	if b.n != o.n {
		panic("spectrum: intersecting bitmaps of different sizes")
	}
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// FirstAvailable returns the lowest available slot index, or -1.
func (b *Bitmap) FirstAvailable() int {
	for wi, w := range b.words {
		if w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			if i < b.n {
				return i
			}
		}
	}
	return -1
}

// Modulation is an optical modulation format with its data rate and maximum
// transparent reach, per the paper's Table 6 (Facebook's terrestrial
// long-haul transponder specification).
type Modulation struct {
	GbpsPerWavelength float64
	ReachKm           float64
	Name              string
}

// Table6 is the datarate-vs-reach specification sheet from the paper.
var Table6 = []Modulation{
	{100, 5000, "100G"},
	{200, 3000, "200G"},
	{300, 1500, "300G"},
	{400, 1000, "400G"},
}

// BestModulation returns the highest-rate modulation whose reach covers
// pathKm, and false if even the most robust format cannot reach.
func BestModulation(pathKm float64) (Modulation, bool) {
	best := Modulation{}
	found := false
	for _, m := range Table6 {
		if m.ReachKm >= pathKm && m.GbpsPerWavelength > best.GbpsPerWavelength {
			best, found = m, true
		}
	}
	return best, found
}

// ModulationByRate returns the modulation with the given data rate.
func ModulationByRate(gbps float64) (Modulation, bool) {
	for _, m := range Table6 {
		if m.GbpsPerWavelength == gbps {
			return m, true
		}
	}
	return Modulation{}, false
}

// Wavelength is one provisioned DWDM carrier.
type Wavelength struct {
	Slot       int // frequency slot on the grid
	Modulation Modulation
}

// PathSpectrum intersects the spectra of the fibers along a path, returning
// the slots usable end-to-end (wavelength continuity).
func PathSpectrum(fibers []*Bitmap) *Bitmap {
	if len(fibers) == 0 {
		return nil
	}
	out := fibers[0].Clone()
	for _, f := range fibers[1:] {
		out.IntersectInto(f)
	}
	return out
}
