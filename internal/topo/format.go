package topo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/spectrum"
)

// Parse reads a topology from the plain-text exchange format:
//
//	# comments and blank lines are ignored
//	sites <numROADMs> [slotsPerFiber]
//	router <roadm>                 # marks a ROADM as a router site
//	fiber <a> <b> <lengthKm>       # fiber IDs assigned in file order
//	srlg <name> <prob> <fiber>[,<fiber>...]   # shared-risk conduit group
//	link <src> <dst> <waves> <gbps> <fiber>[,<fiber>...]
//
// If no `router` lines appear, every ROADM is a router. Link endpoints must
// be router sites. `srlg` lines must follow the fibers they reference and
// declare a conduit-cut probability in [0, 0.5) (see internal/scenario's
// correlated-failure model). The format is round-trippable via Encode.
func Parse(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	var t *Topology
	var routers []int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("topo: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "sites":
			if t != nil {
				return nil, fail("duplicate sites directive")
			}
			if len(fields) < 2 {
				return nil, fail("sites needs a count")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fail("bad site count %q", fields[1])
			}
			slots := spectrum.DefaultSlots
			if len(fields) >= 3 {
				if slots, err = strconv.Atoi(fields[2]); err != nil || slots <= 0 {
					return nil, fail("bad slot count %q", fields[2])
				}
			}
			t = &Topology{Name: "custom", Opt: optical.NewNetwork(n, slots), routerOf: make([]int, n)}
			for i := range t.routerOf {
				t.routerOf[i] = -1
			}
		case "router":
			if t == nil {
				return nil, fail("router before sites")
			}
			for _, f := range fields[1:] {
				v, err := strconv.Atoi(f)
				if err != nil || v < 0 || v >= t.Opt.NumROADMs {
					return nil, fail("bad router id %q", f)
				}
				routers = append(routers, v)
			}
		case "fiber":
			if t == nil {
				return nil, fail("fiber before sites")
			}
			if len(fields) != 4 {
				return nil, fail("fiber needs: a b lengthKm")
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			km, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fail("bad fiber fields")
			}
			if a < 0 || a >= t.Opt.NumROADMs || b < 0 || b >= t.Opt.NumROADMs {
				return nil, fail("fiber endpoint out of range")
			}
			t.Opt.AddFiber(optical.ROADM(a), optical.ROADM(b), km)
		case "srlg":
			if t == nil {
				return nil, fail("srlg before sites")
			}
			if len(fields) != 4 {
				return nil, fail("srlg needs: name prob fibers")
			}
			prob, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || prob < 0 || prob >= 0.5 {
				return nil, fail("bad srlg probability %q (want [0, 0.5))", fields[2])
			}
			var fibers []int
			for _, f := range strings.Split(fields[3], ",") {
				id, err := strconv.Atoi(f)
				if err != nil || id < 0 || id >= len(t.Opt.Fibers) {
					return nil, fail("bad srlg fiber id %q", f)
				}
				fibers = append(fibers, id)
			}
			t.SRLGs = append(t.SRLGs, SRLG{Name: fields[1], Fibers: fibers, Prob: prob})
		case "link":
			if t == nil {
				return nil, fail("link before sites")
			}
			if len(fields) != 6 {
				return nil, fail("link needs: src dst waves gbps fibers")
			}
			src, err1 := strconv.Atoi(fields[1])
			dst, err2 := strconv.Atoi(fields[2])
			waves, err3 := strconv.Atoi(fields[3])
			gbps, err4 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fail("bad link fields")
			}
			mod, ok := spectrum.ModulationByRate(gbps)
			if !ok {
				return nil, fail("unknown modulation rate %g", gbps)
			}
			var fibers []int
			for _, f := range strings.Split(fields[5], ",") {
				id, err := strconv.Atoi(f)
				if err != nil || id < 0 || id >= len(t.Opt.Fibers) {
					return nil, fail("bad fiber id %q", f)
				}
				fibers = append(fibers, id)
			}
			var bms []*spectrum.Bitmap
			for _, f := range fibers {
				bms = append(bms, t.Opt.Fibers[f].Slots)
			}
			common := spectrum.PathSpectrum(bms)
			var ws []optical.Lightpath
			for s := 0; s < common.Len() && len(ws) < waves; s++ {
				if common.Available(s) {
					ws = append(ws, optical.Lightpath{Slot: s, Modulation: mod, FiberPath: fibers})
				}
			}
			if len(ws) < waves {
				return nil, fail("only %d of %d wavelengths fit", len(ws), waves)
			}
			if _, err := t.Opt.Provision(optical.ROADM(src), optical.ROADM(dst), ws); err != nil {
				return nil, fail("%v", err)
			}
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("topo: empty topology file")
	}
	if len(routers) == 0 {
		for i := 0; i < t.Opt.NumROADMs; i++ {
			routers = append(routers, i)
		}
	}
	for idx, r := range routers {
		if t.routerOf[r] >= 0 {
			return nil, fmt.Errorf("topo: router %d declared twice", r)
		}
		t.routerOf[r] = idx
		t.Routers = append(t.Routers, optical.ROADM(r))
	}
	for _, l := range t.Opt.IPLinks {
		if t.routerOf[l.Src] < 0 || t.routerOf[l.Dst] < 0 {
			return nil, fmt.Errorf("topo: IP link %d terminates on non-router ROADM", l.ID)
		}
	}
	if err := t.Opt.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Encode writes the topology in the Parse format. Wavelength bundles are
// written per IP link using the link's first wavelength's modulation and
// fiber path (the generators provision homogeneous bundles).
func Encode(w io.Writer, t *Topology) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# topology %s\n", t.Name)
	fmt.Fprintf(bw, "sites %d %d\n", t.Opt.NumROADMs, t.Opt.SlotCount)
	for _, r := range t.Routers {
		fmt.Fprintf(bw, "router %d\n", int(r))
	}
	for _, f := range t.Opt.Fibers {
		fmt.Fprintf(bw, "fiber %d %d %g\n", int(f.A), int(f.B), f.LengthKm)
	}
	for _, g := range t.SRLGs {
		ids := make([]string, len(g.Fibers))
		for i, fid := range g.Fibers {
			ids[i] = strconv.Itoa(fid)
		}
		fmt.Fprintf(bw, "srlg %s %g %s\n", g.Name, g.Prob, strings.Join(ids, ","))
	}
	for _, l := range t.Opt.IPLinks {
		if len(l.Waves) == 0 {
			continue
		}
		w0 := l.Waves[0]
		path := make([]string, len(w0.FiberPath))
		for i, fid := range w0.FiberPath {
			path[i] = strconv.Itoa(fid)
		}
		fmt.Fprintf(bw, "link %d %d %d %g %s\n",
			int(l.Src), int(l.Dst), len(l.Waves), w0.Modulation.GbpsPerWavelength, strings.Join(path, ","))
	}
	return bw.Flush()
}
