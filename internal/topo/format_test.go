package topo

import (
	"bytes"
	"strings"
	"testing"
)

const sampleTopo = `
# four-site ring
sites 4 16
fiber 0 1 560
fiber 1 2 560
fiber 2 3 520
fiber 3 0 520
link 0 1 2 200 0
link 2 3 2 200 2
link 0 3 4 200 3
`

func TestParseBasic(t *testing.T) {
	tp, err := Parse(strings.NewReader(sampleTopo))
	if err != nil {
		t.Fatal(err)
	}
	s := tp.Stats()
	if s.Routers != 4 || s.Fibers != 4 || s.IPLinks != 3 || s.Wavelengths != 8 {
		t.Fatalf("stats %+v", s)
	}
	if s.TotalCapacityGbps != 1600 {
		t.Fatalf("capacity %g", s.TotalCapacityGbps)
	}
}

func TestParseRouterSubset(t *testing.T) {
	in := `
sites 3 8
router 0 2
fiber 0 1 100
fiber 1 2 100
link 0 2 1 100 0,1
`
	tp, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumRouters() != 2 {
		t.Fatalf("%d routers", tp.NumRouters())
	}
	if tp.RouterOf(1) != -1 {
		t.Fatal("ROADM 1 should be pass-through")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no-sites", "fiber 0 1 100\n"},
		{"bad-count", "sites x\n"},
		{"fiber-range", "sites 2\nfiber 0 5 100\n"},
		{"bad-modulation", "sites 2\nfiber 0 1 100\nlink 0 1 1 123 0\n"},
		{"link-to-passthrough", "sites 3\nrouter 0\nfiber 0 1 100\nlink 0 1 1 100 0\n"},
		{"unknown-directive", "sites 2\nwat 1 2\n"},
		{"too-many-waves", "sites 2 2\nfiber 0 1 100\nlink 0 1 5 100 0\n"},
		{"dup-router", "sites 2\nrouter 0 0\nfiber 0 1 100\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.in)); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sampleTopo))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if orig.Stats() != back.Stats() {
		t.Fatalf("round trip changed stats: %+v vs %+v", orig.Stats(), back.Stats())
	}
}

func TestEncodeGeneratedTopology(t *testing.T) {
	tp, err := B4(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, tp); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse generated B4: %v", err)
	}
	bs, os := back.Stats(), tp.Stats()
	if bs.Fibers != os.Fibers || bs.IPLinks != os.IPLinks || bs.Wavelengths != os.Wavelengths {
		t.Fatalf("round trip changed B4: %+v vs %+v", bs, os)
	}
}
