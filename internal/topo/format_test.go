package topo

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

const sampleTopo = `
# four-site ring
sites 4 16
fiber 0 1 560
fiber 1 2 560
fiber 2 3 520
fiber 3 0 520
srlg ring-east 0.004 1,2
link 0 1 2 200 0
link 2 3 2 200 2
link 0 3 4 200 3
`

func TestParseBasic(t *testing.T) {
	tp, err := Parse(strings.NewReader(sampleTopo))
	if err != nil {
		t.Fatal(err)
	}
	s := tp.Stats()
	if s.Routers != 4 || s.Fibers != 4 || s.IPLinks != 3 || s.Wavelengths != 8 {
		t.Fatalf("stats %+v", s)
	}
	if s.TotalCapacityGbps != 1600 {
		t.Fatalf("capacity %g", s.TotalCapacityGbps)
	}
}

func TestParseRouterSubset(t *testing.T) {
	in := `
sites 3 8
router 0 2
fiber 0 1 100
fiber 1 2 100
link 0 2 1 100 0,1
`
	tp, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumRouters() != 2 {
		t.Fatalf("%d routers", tp.NumRouters())
	}
	if tp.RouterOf(1) != -1 {
		t.Fatal("ROADM 1 should be pass-through")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no-sites", "fiber 0 1 100\n"},
		{"bad-count", "sites x\n"},
		{"fiber-range", "sites 2\nfiber 0 5 100\n"},
		{"bad-modulation", "sites 2\nfiber 0 1 100\nlink 0 1 1 123 0\n"},
		{"link-to-passthrough", "sites 3\nrouter 0\nfiber 0 1 100\nlink 0 1 1 100 0\n"},
		{"unknown-directive", "sites 2\nwat 1 2\n"},
		{"too-many-waves", "sites 2 2\nfiber 0 1 100\nlink 0 1 5 100 0\n"},
		{"dup-router", "sites 2\nrouter 0 0\nfiber 0 1 100\n"},
		{"srlg-before-sites", "srlg g 0.01 0\n"},
		{"srlg-bad-prob", "sites 2\nfiber 0 1 100\nsrlg g 0.7 0\n"},
		{"srlg-bad-fiber", "sites 2\nfiber 0 1 100\nsrlg g 0.01 3\n"},
		{"srlg-missing-fields", "sites 2\nfiber 0 1 100\nsrlg g 0.01\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.in)); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sampleTopo))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if orig.Stats() != back.Stats() {
		t.Fatalf("round trip changed stats: %+v vs %+v", orig.Stats(), back.Stats())
	}
	if !reflect.DeepEqual(orig.SRLGs, back.SRLGs) {
		t.Fatalf("round trip changed SRLGs: %+v vs %+v", orig.SRLGs, back.SRLGs)
	}
	if len(back.SRLGs) != 1 || back.SRLGs[0].Name != "ring-east" || back.SRLGs[0].Prob != 0.004 {
		t.Fatalf("parsed SRLGs %+v", back.SRLGs)
	}
}

func TestEncodeGeneratedTopology(t *testing.T) {
	tp, err := B4(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, tp); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse generated B4: %v", err)
	}
	bs, os := back.Stats(), tp.Stats()
	if bs.Fibers != os.Fibers || bs.IPLinks != os.IPLinks || bs.Wavelengths != os.Wavelengths {
		t.Fatalf("round trip changed B4: %+v vs %+v", bs, os)
	}
	if !reflect.DeepEqual(back.SRLGs, tp.SRLGs) {
		t.Fatalf("round trip changed B4 SRLGs: %+v vs %+v", back.SRLGs, tp.SRLGs)
	}
}

// TestNamedSRLGs: every named topology ships conduit groupings whose fiber
// ids are in range, with >= 2 member fibers and probabilities below the
// per-fiber Weibull clamp.
func TestNamedSRLGs(t *testing.T) {
	for _, name := range []string{"B4", "IBM", "Facebook"} {
		tp, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(tp.SRLGs) == 0 {
			t.Fatalf("%s has no SRLGs", name)
		}
		for _, g := range tp.SRLGs {
			if len(g.Fibers) < 2 {
				t.Fatalf("%s SRLG %s has %d fibers", name, g.Name, len(g.Fibers))
			}
			if g.Prob <= 0 || g.Prob >= 0.1 {
				t.Fatalf("%s SRLG %s prob %g out of range", name, g.Name, g.Prob)
			}
			for _, f := range g.Fibers {
				if f < 0 || f >= len(tp.Opt.Fibers) {
					t.Fatalf("%s SRLG %s references fiber %d of %d", name, g.Name, f, len(tp.Opt.Fibers))
				}
			}
		}
	}
	// Facebook's conduits are the subdivided-span halves: both members of
	// each group must share an endpoint (the pass-through ROADM).
	fb, err := Facebook(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range fb.SRLGs {
		a, b := fb.Opt.Fibers[g.Fibers[0]], fb.Opt.Fibers[g.Fibers[1]]
		if a.A != b.A && a.A != b.B && a.B != b.A && a.B != b.B {
			t.Fatalf("Facebook SRLG %s members share no ROADM", g.Name)
		}
	}
}
