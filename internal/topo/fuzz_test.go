package topo

import (
	"strings"
	"testing"
)

// FuzzParse hardens the topology parser: arbitrary input must either parse
// into a Validate-clean topology or return an error — never panic.
func FuzzParse(f *testing.F) {
	f.Add(sampleTopo)
	f.Add("sites 2\nfiber 0 1 100\nlink 0 1 1 100 0\n")
	f.Add("sites 3 8\nrouter 0 2\nfiber 0 1 100\nfiber 1 2 100\nlink 0 2 1 100 0,1\n")
	f.Add("sites x\n")
	f.Add("fiber 0 1 1e309\n")
	f.Add("sites 2\nfiber 0 1 -5\nlink 0 1 0 100 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		tp, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		if tp == nil {
			t.Fatal("nil topology without error")
		}
		if err := tp.Opt.Validate(); err != nil {
			t.Fatalf("parsed topology fails validation: %v", err)
		}
	})
}
