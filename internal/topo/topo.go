// Package topo builds the evaluation topologies of the ARROW paper
// (Table 4): B4 and IBM as published optical-layer graphs, and a synthetic
// Facebook backbone matching the paper's inventory (34 routers, 84 ROADMs,
// 156 fibers, 262 IP links). IP-layer overlays are generated following the
// measured distributions of Appendix A.8 / Fig. 22 (IP links per fiber,
// wavelengths per IP link), and tunnels are selected with fiber-disjoint
// preference followed by k-shortest paths, as in §6.
package topo

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/arrow-te/arrow/internal/graph"
	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/spectrum"
	"github.com/arrow-te/arrow/internal/te"
)

// SRLG is one shared-risk link group: a set of fibers that share a physical
// conduit (or WDM shelf) and fail together when it is cut, with probability
// Prob per epoch — an independent correlated-failure event on top of the
// member fibers' individual Weibull marginals (see internal/scenario's
// package comment for the probability model).
type SRLG struct {
	Name   string
	Fibers []int
	Prob   float64
}

// Topology is one evaluation network: an optical layer with provisioned IP
// links, plus the router-site view used by the TE.
type Topology struct {
	Name string
	Opt  *optical.Network
	// Routers lists the ROADM sites that host routers (IP-layer nodes).
	// Router index r corresponds to IP node r.
	Routers []optical.ROADM
	// SRLGs lists the topology's shared-risk link groups (conduit
	// groupings). Empty on topologies without correlated-failure data;
	// consumers that do not opt into SRLG-aware enumeration ignore them.
	SRLGs []SRLG
	// routerOf maps ROADM -> router index (-1 for pass-through ROADMs).
	routerOf []int

	ipGraph *graph.Graph
}

// NumRouters returns the number of IP-layer nodes.
func (t *Topology) NumRouters() int { return len(t.Routers) }

// RouterOf returns the router index of a ROADM, or -1.
func (t *Topology) RouterOf(r optical.ROADM) int { return t.routerOf[r] }

// LinkCaps returns c_e for every IP link, in Gbps.
func (t *Topology) LinkCaps() []float64 {
	out := make([]float64, len(t.Opt.IPLinks))
	for i, l := range t.Opt.IPLinks {
		out[i] = l.CapacityGbps()
	}
	return out
}

// IPGraph returns (lazily building) the IP-layer graph: nodes are routers,
// one pair of directed edges per IP link (label = IP link ID, weight 1).
func (t *Topology) IPGraph() *graph.Graph {
	if t.ipGraph == nil {
		g := graph.New(len(t.Routers))
		for _, l := range t.Opt.IPLinks {
			a, b := t.routerOf[l.Src], t.routerOf[l.Dst]
			if a < 0 || b < 0 {
				panic(fmt.Sprintf("topo: IP link %d terminates on non-router ROADM", l.ID))
			}
			g.AddBiEdge(graph.Node(a), graph.Node(b), 1, l.ID)
		}
		t.ipGraph = g
	}
	return t.ipGraph
}

// LinkFibers returns the set of fiber IDs underlying each IP link.
func (t *Topology) LinkFibers() [][]int {
	out := make([][]int, len(t.Opt.IPLinks))
	for i, l := range t.Opt.IPLinks {
		seen := map[int]bool{}
		for _, w := range l.Waves {
			for _, f := range w.FiberPath {
				if !seen[f] {
					seen[f] = true
					out[i] = append(out[i], f)
				}
			}
		}
		sort.Ints(out[i])
	}
	return out
}

// FailedLinksByScenario maps fiber-cut scenarios to failed IP link sets.
func (t *Topology) FailedLinksByScenario(cuts [][]int) [][]int {
	out := make([][]int, len(cuts))
	for i, c := range cuts {
		out[i] = t.Opt.FailedLinks(c)
	}
	return out
}

// Stats summarises the topology for Table 4.
type Stats struct {
	Routers, ROADMs, Fibers, IPLinks, Wavelengths int
	TotalCapacityGbps                             float64
}

// Stats computes the Table 4 inventory row.
func (t *Topology) Stats() Stats {
	s := Stats{
		Routers: len(t.Routers),
		ROADMs:  t.Opt.NumROADMs,
		Fibers:  len(t.Opt.Fibers),
		IPLinks: len(t.Opt.IPLinks),
	}
	for _, l := range t.Opt.IPLinks {
		s.Wavelengths += len(l.Waves)
		s.TotalCapacityGbps += l.CapacityGbps()
	}
	return s
}

// Tunnels selects up to k tunnels for the flow between routers src and dst:
// first greedily fiber-disjoint shortest paths, then the remaining
// k-shortest loopless paths. Every returned tunnel is a distinct IP-link
// path.
func (t *Topology) Tunnels(src, dst, k int) []te.Tunnel {
	if src == dst {
		return nil
	}
	g := t.IPGraph()
	linkFibers := t.LinkFibers()

	var out []te.Tunnel
	seen := map[string]bool{}
	add := func(p graph.Path) bool {
		links := make([]int, len(p.Edges))
		for i, eid := range p.Edges {
			links[i] = g.Edge(eid).Label
		}
		key := fmt.Sprint(links)
		if seen[key] {
			return false
		}
		seen[key] = true
		out = append(out, te.Tunnel{Links: links})
		return true
	}

	// Pass 1: fiber-disjoint paths.
	usedFibers := map[int]bool{}
	for len(out) < k {
		p, ok := g.ShortestPath(graph.Node(src), graph.Node(dst), func(eid int) bool {
			for _, f := range linkFibers[g.Edge(eid).Label] {
				if usedFibers[f] {
					return true
				}
			}
			return false
		})
		if !ok {
			break
		}
		if !add(p) {
			break
		}
		for _, eid := range p.Edges {
			for _, f := range linkFibers[g.Edge(eid).Label] {
				usedFibers[f] = true
			}
		}
	}
	// Pass 2: fill with k-shortest paths.
	if len(out) < k {
		for _, p := range g.KShortestPaths(graph.Node(src), graph.Node(dst), k+len(out), 0) {
			if len(out) >= k {
				break
			}
			add(p)
		}
	}
	return out
}

// TENetwork assembles the te.Network for the given flows.
func (t *Topology) TENetwork(flows []te.Flow, tunnelsPerFlow int) (*te.Network, error) {
	n := &te.Network{LinkCap: t.LinkCaps(), Flows: flows, Tunnels: make([][]te.Tunnel, len(flows))}
	for i, f := range flows {
		ts := t.Tunnels(f.Src, f.Dst, tunnelsPerFlow)
		if len(ts) == 0 {
			return nil, fmt.Errorf("topo: no tunnel for flow %d->%d", f.Src, f.Dst)
		}
		n.Tunnels[i] = ts
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// overlaySpec drives IP-overlay generation for a named topology.
type overlaySpec struct {
	targetIPLinks int
	// waveChoices are the wavelength-count options per IP link with weights
	// shaped like Fig. 22(b).
	waveChoices []int
	waveWeights []float64
	// expressHops bounds the optical hop count of express IP links.
	expressHops int
	seed        int64
}

// provisionOverlay creates IP links on the optical network: one adjacency
// link per fiber span between router sites, then express links between
// random router pairs a few optical hops apart, until targetIPLinks links
// exist or spectrum runs out.
func provisionOverlay(topo *Topology, spec overlaySpec) error {
	rng := rand.New(rand.NewSource(spec.seed))
	opt := topo.Opt
	g := opt.Graph()

	isRouter := func(r optical.ROADM) bool { return topo.routerOf[r] >= 0 }

	// sampleWaves picks a wavelength count.
	sampleWaves := func() int {
		total := 0.0
		for _, w := range spec.waveWeights {
			total += w
		}
		x := rng.Float64() * total
		for i, w := range spec.waveWeights {
			x -= w
			if x <= 0 {
				return spec.waveChoices[i]
			}
		}
		return spec.waveChoices[len(spec.waveChoices)-1]
	}

	// provisionOn routes `waves` wavelengths on the given fiber path with
	// first-fit continuity slots; returns false if fewer than one fits.
	provisionOn := func(src, dst optical.ROADM, fibers []int, waves int) bool {
		lenKm := opt.PathLengthKm(fibers)
		mod, ok := spectrum.BestModulation(lenKm)
		if !ok {
			return false
		}
		var bms []*spectrum.Bitmap
		for _, f := range fibers {
			bms = append(bms, opt.Fibers[f].Slots)
		}
		common := spectrum.PathSpectrum(bms)
		var ws []optical.Lightpath
		for s := 0; s < common.Len() && len(ws) < waves; s++ {
			if common.Available(s) {
				ws = append(ws, optical.Lightpath{Slot: s, Modulation: mod, FiberPath: fibers})
			}
		}
		if len(ws) == 0 {
			return false
		}
		_, err := opt.Provision(src, dst, ws)
		return err == nil
	}

	// Adjacency links: walk fiber chains between router sites. A "span" is
	// a maximal fiber path whose interior ROADMs are pass-through.
	type span struct {
		src, dst optical.ROADM
		fibers   []int
	}
	var spans []span
	visited := map[int]bool{}
	for _, f := range opt.Fibers {
		if visited[f.ID] {
			continue
		}
		// Extend from f in both directions through pass-through ROADMs of
		// degree 2.
		chain := []int{f.ID}
		visited[f.ID] = true
		ends := [2]optical.ROADM{f.A, f.B}
		for side := 0; side < 2; side++ {
			for !isRouter(ends[side]) {
				// Find the unique other fiber at this pass-through ROADM.
				var next *optical.Fiber
				cnt := 0
				for _, g2 := range opt.Fibers {
					if g2.ID == chain[0] || g2.ID == chain[len(chain)-1] {
						continue
					}
					if g2.A == ends[side] || g2.B == ends[side] {
						cnt++
						if !visited[g2.ID] {
							next = g2
						}
					}
				}
				if next == nil || cnt != 1 {
					break
				}
				visited[next.ID] = true
				if side == 0 {
					chain = append([]int{next.ID}, chain...)
				} else {
					chain = append(chain, next.ID)
				}
				if next.A == ends[side] {
					ends[side] = next.B
				} else {
					ends[side] = next.A
				}
			}
		}
		spans = append(spans, span{src: ends[0], dst: ends[1], fibers: chain})
	}
	for _, sp := range spans {
		if !isRouter(sp.src) || !isRouter(sp.dst) {
			continue
		}
		provisionOn(sp.src, sp.dst, sp.fibers, sampleWaves())
	}

	// Express links: random router pairs within expressHops optical hops.
	tries := 0
	for len(opt.IPLinks) < spec.targetIPLinks && tries < spec.targetIPLinks*60 {
		tries++
		a := topo.Routers[rng.Intn(len(topo.Routers))]
		b := topo.Routers[rng.Intn(len(topo.Routers))]
		if a == b {
			continue
		}
		paths := g.KShortestPaths(graph.Node(a), graph.Node(b), 2, 0)
		if len(paths) == 0 {
			continue
		}
		p := paths[rng.Intn(len(paths))]
		if len(p.Edges) > spec.expressHops {
			continue
		}
		var fibers []int
		for _, eid := range p.Edges {
			fibers = append(fibers, g.Edge(eid).Label)
		}
		provisionOn(a, b, fibers, sampleWaves())
	}
	if len(opt.IPLinks) < spec.targetIPLinks/2 {
		return fmt.Errorf("topo: only provisioned %d of %d IP links", len(opt.IPLinks), spec.targetIPLinks)
	}
	return nil
}
