package topo

import (
	"fmt"
	"math/rand"

	"github.com/arrow-te/arrow/internal/optical"
)

// fiberSpan is one optical span in a named topology definition.
type fiberSpan struct {
	a, b int
	km   float64
}

// b4Spans is the 12-site, 19-fiber Google B4 topology used by the paper
// (node count and fiber count per Table 4; span lengths approximate the
// published inter-site distances).
var b4Spans = []fiberSpan{
	{0, 1, 800}, {0, 2, 1200}, {1, 2, 900}, {1, 3, 1400}, {2, 4, 1100},
	{3, 4, 700}, {3, 5, 1600}, {4, 6, 1500}, {5, 6, 800}, {5, 7, 2400},
	{6, 8, 2200}, {7, 8, 900}, {7, 9, 1000}, {8, 10, 1300}, {9, 10, 700},
	{9, 11, 1100}, {10, 11, 800}, {2, 3, 1000}, {5, 8, 1900},
}

// ibmSpans is the 17-site, 23-fiber IBM research network used by SMORE and
// the paper (Table 4).
var ibmSpans = []fiberSpan{
	{0, 1, 600}, {0, 2, 900}, {1, 3, 700}, {2, 3, 800}, {2, 4, 1100},
	{3, 5, 900}, {4, 5, 600}, {4, 6, 1000}, {5, 7, 1200}, {6, 7, 700},
	{6, 8, 900}, {7, 9, 800}, {8, 9, 600}, {8, 10, 1100}, {9, 11, 900},
	{10, 11, 700}, {10, 12, 1000}, {11, 13, 800}, {12, 13, 600},
	{12, 14, 900}, {13, 15, 700}, {14, 15, 800}, {15, 16, 600},
}

// b4SRLGs are B4's conduit groupings: fiber pairs that leave the same site
// along the same corridor and realistically share a trench. Indices refer
// to b4Spans; probabilities are per-epoch conduit-cut odds, sitting an
// order of magnitude below the typical Weibull fiber marginal (~0.02).
var b4SRLGs = []SRLG{
	{Name: "west-into-2", Fibers: []int{1, 2}, Prob: 0.004},
	{Name: "corridor-3", Fibers: []int{6, 17}, Prob: 0.003},
	{Name: "south-of-5", Fibers: []int{9, 18}, Prob: 0.005},
	{Name: "hub-8", Fibers: []int{10, 13}, Prob: 0.004},
}

// ibmSRLGs are the IBM network's conduit groupings (indices into ibmSpans).
var ibmSRLGs = []SRLG{
	{Name: "midwest-trench", Fibers: []int{4, 7}, Prob: 0.003},
	{Name: "junction-7", Fibers: []int{8, 11}, Prob: 0.004},
	{Name: "junction-12", Fibers: []int{16, 19}, Prob: 0.003},
	{Name: "coastal-15", Fibers: []int{20, 21}, Prob: 0.003},
}

// fig22WaveChoices / fig22WaveWeights approximate the measured
// wavelengths-per-IP-link distribution of Fig. 22(b).
var (
	fig22WaveChoices = []int{1, 2, 3, 4, 6, 8, 12, 16}
	fig22WaveWeights = []float64{0.10, 0.22, 0.20, 0.18, 0.14, 0.09, 0.05, 0.02}
)

// evalSlots is the spectrum size used for the evaluation topologies. The
// ITU-T grid has 96 slots (spectrum.DefaultSlots), but the paper's fibers
// run at meaningful occupancy (Fig. 5: median ~40%, 95% below 60%), and it
// is that RELATIVE occupancy that creates partial restoration. With the
// Fig. 22 wavelength counts, 32 slots lands the generated topologies in the
// same occupancy regime.
const evalSlots = 24

// fbSlots is the Facebook generator's spectrum size: its overlay stacks
// more express links per fiber, so a slightly larger grid keeps 95% of
// fibers below 60% occupancy (Fig. 5).
const fbSlots = 44

// buildNamed assembles a topology from explicit spans where every ROADM is
// a router site.
func buildNamed(name string, numSites int, spans []fiberSpan, targetIPLinks, expressHops int, seed int64) (*Topology, error) {
	opt := optical.NewNetwork(numSites, evalSlots)
	for _, s := range spans {
		opt.AddFiber(optical.ROADM(s.a), optical.ROADM(s.b), s.km)
	}
	t := &Topology{Name: name, Opt: opt, routerOf: make([]int, numSites)}
	for i := 0; i < numSites; i++ {
		t.Routers = append(t.Routers, optical.ROADM(i))
		t.routerOf[i] = i
	}
	err := provisionOverlay(t, overlaySpec{
		targetIPLinks: targetIPLinks,
		waveChoices:   fig22WaveChoices,
		waveWeights:   fig22WaveWeights,
		expressHops:   expressHops,
		seed:          seed,
	})
	if err != nil {
		return nil, fmt.Errorf("topo: %s: %w", name, err)
	}
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("topo: %s: %w", name, err)
	}
	return t, nil
}

// B4 builds the B4 topology with its IP overlay (Table 4: 12 routers,
// 19 fibers, 52 IP links) and its conduit SRLGs.
func B4(seed int64) (*Topology, error) {
	t, err := buildNamed("B4", 12, b4Spans, 52, 3, seed)
	if err == nil {
		t.SRLGs = append([]SRLG(nil), b4SRLGs...)
	}
	return t, err
}

// IBM builds the IBM topology (Table 4: 17 routers, 23 fibers, 85 IP links)
// and its conduit SRLGs.
func IBM(seed int64) (*Topology, error) {
	t, err := buildNamed("IBM", 17, ibmSpans, 85, 3, seed)
	if err == nil {
		t.SRLGs = append([]SRLG(nil), ibmSRLGs...)
	}
	return t, err
}

// Facebook builds a synthetic backbone matching the paper's production
// inventory (Table 4: 34 routers, 84 ROADMs, 156 fibers, 262 IP links).
// Router sites form a random geometric-style mesh; 50 of the longest spans
// are subdivided by pass-through ROADMs, giving 84 ROADMs and 156 fibers.
func Facebook(seed int64) (*Topology, error) {
	const (
		routers       = 34
		passThroughs  = 50
		routerSpans   = 106 // 106 spans + 50 subdivisions = 156 fibers
		targetIPLinks = 262
	)
	rng := rand.New(rand.NewSource(seed))

	// Random site coordinates on a 6000x3000 km plane; connect with a ring
	// (guaranteeing connectivity) plus nearest-neighbour chords.
	xs := make([]float64, routers)
	ys := make([]float64, routers)
	for i := range xs {
		xs[i] = rng.Float64() * 6000
		ys[i] = rng.Float64() * 3000
	}
	dist := func(a, b int) float64 {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		d := 1.1 * (abs(dx) + abs(dy)) / 2 // fiber routes are not straight lines
		if d < 100 {
			d = 100
		}
		return d
	}
	type edge struct {
		a, b int
		km   float64
	}
	var spans []edge
	haveEdge := map[[2]int]bool{}
	addSpan := func(a, b int) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		if haveEdge[[2]int{a, b}] {
			return false
		}
		haveEdge[[2]int{a, b}] = true
		spans = append(spans, edge{a, b, dist(a, b)})
		return true
	}
	for i := 0; i < routers; i++ {
		addSpan(i, (i+1)%routers)
	}
	// Preferentially connect near pairs until we reach routerSpans.
	for len(spans) < routerSpans {
		a := rng.Intn(routers)
		// Pick b among the 8 nearest sites.
		type cand struct {
			b int
			d float64
		}
		var cs []cand
		for b := 0; b < routers; b++ {
			if b != a {
				cs = append(cs, cand{b, dist(a, b)})
			}
		}
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				if cs[j].d < cs[i].d {
					cs[i], cs[j] = cs[j], cs[i]
				}
			}
		}
		addSpan(a, cs[rng.Intn(8)].b)
	}

	// Subdivide the longest spans with pass-through ROADMs.
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if spans[order[j]].km > spans[order[i]].km {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	subdivided := map[int]bool{}
	for i := 0; i < passThroughs; i++ {
		subdivided[order[i]] = true
	}

	opt := optical.NewNetwork(routers+passThroughs, fbSlots)
	t := &Topology{Name: "Facebook", Opt: opt, routerOf: make([]int, routers+passThroughs)}
	for i := 0; i < routers; i++ {
		t.Routers = append(t.Routers, optical.ROADM(i))
		t.routerOf[i] = i
	}
	for i := routers; i < routers+passThroughs; i++ {
		t.routerOf[i] = -1
	}
	nextMid := routers
	for si, s := range spans {
		if subdivided[si] {
			mid := optical.ROADM(nextMid)
			nextMid++
			first := len(opt.Fibers)
			opt.AddFiber(optical.ROADM(s.a), mid, s.km/2)
			opt.AddFiber(mid, optical.ROADM(s.b), s.km/2)
			// The two halves of a subdivided span run through the same
			// physical conduit: a natural SRLG. The conduit-cut probability
			// scales with route length (more kilometres of exposed duct),
			// computed from existing span data so the generator's RNG stream
			// — and therefore the generated topology — is unchanged.
			prob := s.km * 1.5e-6
			if prob > 0.006 {
				prob = 0.006
			}
			t.SRLGs = append(t.SRLGs, SRLG{
				Name:   fmt.Sprintf("conduit-%d-%d", s.a, s.b),
				Fibers: []int{first, first + 1},
				Prob:   prob,
			})
		} else {
			opt.AddFiber(optical.ROADM(s.a), optical.ROADM(s.b), s.km)
		}
	}

	err := provisionOverlay(t, overlaySpec{
		targetIPLinks: targetIPLinks,
		waveChoices:   fig22WaveChoices,
		waveWeights:   fig22WaveWeights,
		expressHops:   4,
		seed:          seed + 1,
	})
	if err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ByName returns a named topology: "B4", "IBM" or "Facebook".
func ByName(name string, seed int64) (*Topology, error) {
	switch name {
	case "B4", "b4":
		return B4(seed)
	case "IBM", "ibm":
		return IBM(seed)
	case "Facebook", "facebook", "fb":
		return Facebook(seed)
	}
	return nil, fmt.Errorf("topo: unknown topology %q", name)
}
