package topo

import (
	"testing"

	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/scenario"
	"github.com/arrow-te/arrow/internal/te"
)

func TestB4Inventory(t *testing.T) {
	tp, err := B4(1)
	if err != nil {
		t.Fatal(err)
	}
	s := tp.Stats()
	if s.Routers != 12 || s.ROADMs != 12 || s.Fibers != 19 {
		t.Fatalf("B4 inventory %+v", s)
	}
	// Table 4: 52 IP links. The generator targets that number but spectrum
	// can cap it; require within 20%.
	if s.IPLinks < 42 || s.IPLinks > 62 {
		t.Fatalf("B4 IP links %d, want ~52", s.IPLinks)
	}
	if s.TotalCapacityGbps <= 0 {
		t.Fatal("no capacity provisioned")
	}
}

func TestIBMInventory(t *testing.T) {
	tp, err := IBM(1)
	if err != nil {
		t.Fatal(err)
	}
	s := tp.Stats()
	if s.Routers != 17 || s.ROADMs != 17 || s.Fibers != 23 {
		t.Fatalf("IBM inventory %+v", s)
	}
	if s.IPLinks < 68 || s.IPLinks > 102 {
		t.Fatalf("IBM IP links %d, want ~85", s.IPLinks)
	}
}

func TestFacebookInventory(t *testing.T) {
	tp, err := Facebook(1)
	if err != nil {
		t.Fatal(err)
	}
	s := tp.Stats()
	if s.Routers != 34 || s.ROADMs != 84 || s.Fibers != 156 {
		t.Fatalf("Facebook inventory %+v", s)
	}
	if s.IPLinks < 200 || s.IPLinks > 290 {
		t.Fatalf("Facebook IP links %d, want ~262", s.IPLinks)
	}
	// Every IP link terminates on router sites.
	for _, l := range tp.Opt.IPLinks {
		if tp.RouterOf(l.Src) < 0 || tp.RouterOf(l.Dst) < 0 {
			t.Fatalf("IP link %d ends on pass-through ROADM", l.ID)
		}
	}
}

func TestTopologyDeterministicBySeed(t *testing.T) {
	a, err := B4(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := B4(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("same seed different stats: %+v vs %+v", a.Stats(), b.Stats())
	}
	for i := range a.Opt.IPLinks {
		if a.Opt.IPLinks[i].CapacityGbps() != b.Opt.IPLinks[i].CapacityGbps() {
			t.Fatal("IP link capacities differ across identical seeds")
		}
	}
}

func TestTunnelsAreValidPaths(t *testing.T) {
	tp, err := B4(1)
	if err != nil {
		t.Fatal(err)
	}
	g := tp.IPGraph()
	_ = g
	for src := 0; src < tp.NumRouters(); src++ {
		for dst := 0; dst < tp.NumRouters(); dst++ {
			if src == dst {
				continue
			}
			tun := tp.Tunnels(src, dst, 8)
			if len(tun) == 0 {
				t.Fatalf("no tunnels %d->%d", src, dst)
			}
			seen := map[string]bool{}
			for _, tn := range tun {
				// Verify connectivity through IP links.
				at := src
				for _, lid := range tn.Links {
					l := tp.Opt.IPLinks[lid]
					a, b := tp.RouterOf(l.Src), tp.RouterOf(l.Dst)
					switch at {
					case a:
						at = b
					case b:
						at = a
					default:
						t.Fatalf("tunnel %v broken at link %d", tn.Links, lid)
					}
				}
				if at != dst {
					t.Fatalf("tunnel %v ends at %d, want %d", tn.Links, at, dst)
				}
				key := ""
				for _, l := range tn.Links {
					key += string(rune(l)) + ","
				}
				if seen[key] {
					t.Fatalf("duplicate tunnel %v", tn.Links)
				}
				seen[key] = true
			}
		}
	}
}

func TestTunnelsFiberDisjointFirst(t *testing.T) {
	tp, err := B4(1)
	if err != nil {
		t.Fatal(err)
	}
	lf := tp.LinkFibers()
	tun := tp.Tunnels(0, 11, 4)
	if len(tun) < 2 {
		t.Skipf("only %d tunnels", len(tun))
	}
	// The first two tunnels must be fiber-disjoint.
	used := map[int]bool{}
	for _, l := range tun[0].Links {
		for _, f := range lf[l] {
			used[f] = true
		}
	}
	for _, l := range tun[1].Links {
		for _, f := range lf[l] {
			if used[f] {
				t.Fatalf("tunnels 0 and 1 share fiber %d", f)
			}
		}
	}
}

func TestTENetworkBuilds(t *testing.T) {
	tp, err := B4(1)
	if err != nil {
		t.Fatal(err)
	}
	flows := []te.Flow{{Src: 0, Dst: 11, Demand: 100}, {Src: 3, Dst: 9, Demand: 50}}
	n, err := tp.TENetwork(flows, 8)
	if err != nil {
		t.Fatal(err)
	}
	al, err := te.MaxThroughput(n)
	if err != nil {
		t.Fatal(err)
	}
	if al.Objective <= 0 {
		t.Fatalf("objective %g", al.Objective)
	}
}

func TestScenarioProjection(t *testing.T) {
	tp, err := B4(1)
	if err != nil {
		t.Fatal(err)
	}
	// Every fiber cut must fail at least the adjacency IP link riding it.
	anyFailed := false
	for f := range tp.Opt.Fibers {
		failed := tp.Opt.FailedLinks([]int{f})
		if len(failed) > 0 {
			anyFailed = true
		}
	}
	if !anyFailed {
		t.Fatal("no fiber cut fails any IP link")
	}
	probs := scenario.FailureProbabilities(len(tp.Opt.Fibers), scenario.DefaultShape, scenario.DefaultScale, 1)
	set := scenario.Enumerate(probs, 0.001)
	if len(set.Scenarios) == 0 {
		t.Fatal("no scenarios above cutoff")
	}
	fl := tp.FailedLinksByScenario([][]int{set.Scenarios[0].Cut})
	if len(fl) != 1 {
		t.Fatal("projection size wrong")
	}
}

func TestRestorationWorksOnB4(t *testing.T) {
	// End-to-end smoke: cut each fiber and run RWA; most cuts should be at
	// least partially restorable thanks to spare spectrum.
	tp, err := B4(1)
	if err != nil {
		t.Fatal(err)
	}
	partial, full, none := 0, 0, 0
	for f := range tp.Opt.Fibers {
		u, err := rwa.RestorationRatio(tp.Opt, f, 3, true, true)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case u >= 0.999:
			full++
		case u <= 0.001:
			none++
		default:
			partial++
		}
	}
	if full+partial == 0 {
		t.Fatalf("nothing restorable (full=%d partial=%d none=%d)", full, partial, none)
	}
	t.Logf("B4 restoration: %d full, %d partial, %d none", full, partial, none)
}

func TestSpectrumUtilizationShape(t *testing.T) {
	// Fig. 5 calibration: most fibers should be below 60% utilisation.
	tp, err := Facebook(1)
	if err != nil {
		t.Fatal(err)
	}
	under := 0
	utils := tp.Opt.SpectrumUtilizations()
	for _, u := range utils {
		if u < 0.6 {
			under++
		}
	}
	frac := float64(under) / float64(len(utils))
	if frac < 0.75 {
		t.Fatalf("only %.0f%% of fibers under 60%% utilisation, want most", frac*100)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"B4", "IBM"} {
		if _, err := ByName(name, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
