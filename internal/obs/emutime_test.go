package obs

import (
	"testing"
	"time"
)

func TestSpanEmuAggregatesAndTraces(t *testing.T) {
	r := NewRegistry()
	r.EnableTrace()
	r.SpanEmu("emu.detect", 3, 0, 1)
	r.SpanEmu("emu.detect", 3, 100, 2)

	s := r.Snapshot()
	sp, ok := s.Spans["emu.detect"]
	if !ok {
		t.Fatal("emulated span missing from snapshot")
	}
	if sp.Count != 2 || sp.TotalSeconds != 3 || sp.MinSeconds != 1 || sp.MaxSeconds != 2 {
		t.Fatalf("span stats %+v", sp)
	}

	events := r.TraceEvents()
	if len(events) != 2 {
		t.Fatalf("%d trace events, want 2", len(events))
	}
	for _, ev := range events {
		if ev.PID != EmuPID {
			t.Fatalf("emulated event on PID %d, want %d", ev.PID, EmuPID)
		}
		if ev.TID != 3 {
			t.Fatalf("emulated event on track %d, want 3", ev.TID)
		}
	}
	// Timestamps are emulated seconds converted to micros, not wall clock.
	if events[1].TSMicros != 100e6 || events[1].DurMicros != 2e6 {
		t.Fatalf("emulated coordinates %v", events[1])
	}
}

func TestSpanEmuWithoutTracing(t *testing.T) {
	r := NewRegistry()
	r.SpanEmu("emu.x", 0, 5, 7)
	if got := len(r.TraceEvents()); got != 0 {
		t.Fatalf("%d trace events without EnableTrace", got)
	}
	if r.Snapshot().Spans["emu.x"].Count != 1 {
		t.Fatal("span stats not aggregated")
	}
}

// statOnlyRecorder implements Recorder but not EmuSpanRecorder.
type statOnlyRecorder struct{ adds int }

func (s *statOnlyRecorder) Add(string, int64)                                { s.adds++ }
func (s *statOnlyRecorder) Gauge(string, float64)                            {}
func (s *statOnlyRecorder) Observe(string, float64)                          {}
func (s *statOnlyRecorder) SpanDone(string, int64, time.Time, time.Duration) {}

func TestEmuSpanHelperNilAndUnsupported(t *testing.T) {
	EmuSpan(nil, "emu.x", 0, 0, 1) // must not panic
	r := &statOnlyRecorder{}
	EmuSpan(r, "emu.x", 0, 0, 1) // silently skipped
	reg := NewRegistry()
	EmuSpan(reg, "emu.x", 0, 0, 1)
	if reg.Snapshot().Spans["emu.x"].Count != 1 {
		t.Fatal("helper did not forward to the registry")
	}
}
