package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageProfilerNilSafe(t *testing.T) {
	var p *StageProfiler
	p.Total()()
	p.Stage("a")()
	p.StageAgg("b")()
	p.PublishGauges(NewRegistry())
	sp := p.Snapshot()
	if sp.TotalSeconds != 0 || sp.Coverage != 0 || len(sp.Stages) != 0 {
		t.Fatalf("nil profiler snapshot not empty: %+v", sp)
	}
}

func TestStageProfilerAttribution(t *testing.T) {
	p := NewStageProfiler()
	endTotal := p.Total()

	end := p.Stage("build")
	time.Sleep(5 * time.Millisecond)
	// Allocate something measurable inside the bracket.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	end()

	end = p.Stage("solve")
	time.Sleep(5 * time.Millisecond)
	end()
	end = p.Stage("solve") // same name accumulates
	end()

	endTotal()
	sp := p.Snapshot()
	if sp.TotalSeconds <= 0 {
		t.Fatalf("TotalSeconds = %v, want > 0", sp.TotalSeconds)
	}
	byName := map[string]StageRecord{}
	for _, st := range sp.Stages {
		byName[st.Name] = st
	}
	build := byName["build"]
	if build.Count != 1 || build.WallSeconds < 0.004 {
		t.Errorf("build stage: %+v", build)
	}
	if build.AllocBytes == 0 || build.Mallocs == 0 {
		t.Errorf("build stage recorded no allocations: %+v", build)
	}
	if solve := byName["solve"]; solve.Count != 2 {
		t.Errorf("solve stage count = %d, want 2", solve.Count)
	}
	if sp.Coverage <= 0 || sp.Coverage > 1.05 {
		t.Errorf("coverage = %v, want in (0, ~1]", sp.Coverage)
	}
}

func TestStageProfilerAggregateExcludedFromCoverage(t *testing.T) {
	p := NewStageProfiler()
	endTotal := p.Total()
	// Concurrent busy time can exceed the wall clock; it must not count
	// toward coverage.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			end := p.StageAgg("worker")
			time.Sleep(10 * time.Millisecond)
			end()
		}()
	}
	wg.Wait()
	endTotal()
	sp := p.Snapshot()
	var worker StageRecord
	for _, st := range sp.Stages {
		if st.Name == "worker" {
			worker = st
		}
	}
	if !worker.Aggregate || worker.Count != 4 {
		t.Fatalf("worker stage: %+v", worker)
	}
	if worker.WallSeconds < 0.03 {
		t.Errorf("aggregate busy time = %v, want ~0.04 (4 x 10ms)", worker.WallSeconds)
	}
	if sp.Coverage != 0 {
		t.Errorf("coverage = %v, want 0 (only aggregate stages ran)", sp.Coverage)
	}
}

func TestStageProfilerPublishGauges(t *testing.T) {
	p := NewStageProfiler()
	endTotal := p.Total()
	p.Stage("build")()
	p.StageAgg("rwa.solve")()
	endTotal()
	reg := NewRegistry()
	p.PublishGauges(reg)
	snap := reg.Snapshot()
	for _, want := range []string{
		"bench.stage_total_seconds",
		"bench.stage_coverage",
		"bench.stage.build.wall_seconds",
		"bench.stage.build.alloc_bytes",
		"bench.stage.build.gc_pause_seconds",
		"bench.stage.rwa.solve.wall_seconds",
	} {
		if _, ok := snap.Gauges[want]; !ok {
			t.Errorf("gauge %q missing; have %v", want, snap.Gauges)
		}
	}
	// Aggregate stages carry no memstats deltas, so no alloc gauge.
	if _, ok := snap.Gauges["bench.stage.rwa.solve.alloc_bytes"]; ok {
		t.Error("aggregate stage published an alloc_bytes gauge")
	}
}

func TestStageProfileSortedByWall(t *testing.T) {
	sp := &StageProfile{Stages: []StageRecord{
		{Name: "agg", WallSeconds: 99, Aggregate: true},
		{Name: "small", WallSeconds: 1},
		{Name: "big", WallSeconds: 5},
	}}
	got := sp.SortedByWall()
	var names []string
	for _, st := range got {
		names = append(names, st.Name)
	}
	if joined := strings.Join(names, ","); joined != "big,small,agg" {
		t.Fatalf("order = %s, want big,small,agg", joined)
	}
}
