package obs

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSamplerRingWindow(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Hour, 3) // driven manually; ticker never fires
	base := time.UnixMilli(1_000_000)

	for i := 0; i < 5; i++ {
		reg.Add("lp.pivots", 10)
		reg.Gauge("load", float64(i))
		s.Sample(base.Add(time.Duration(i) * time.Second))
	}
	series := s.Series()
	pts := series["counter:lp.pivots"]
	if len(pts) != 3 {
		t.Fatalf("ring kept %d points, want capacity 3", len(pts))
	}
	// Oldest-first window over the last three samples: 30, 40, 50.
	for i, want := range []float64{30, 40, 50} {
		if pts[i].V != want {
			t.Fatalf("window %v, want values 30,40,50", pts)
		}
	}
	if pts[0].UnixMs >= pts[2].UnixMs {
		t.Fatalf("timestamps not ascending: %v", pts)
	}
	g := series["gauge:load"]
	if len(g) != 3 || g[2].V != 4 {
		t.Fatalf("gauge window %v", g)
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Millisecond, 10)
	s.Start()
	s.Start() // idempotent
	deadline := time.After(2 * time.Second)
	for {
		if pts := s.Series()["counter:lp.pivots"]; len(pts) > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background sampler never sampled")
		case <-time.After(5 * time.Millisecond):
		}
	}
	s.Stop()
	s.Stop() // idempotent
	n := len(s.Series()["counter:lp.pivots"])
	time.Sleep(20 * time.Millisecond)
	if got := len(s.Series()["counter:lp.pivots"]); got != n {
		t.Fatalf("sampler still sampling after Stop: %d -> %d", n, got)
	}

	// Stop without Start must not hang, nil must not panic.
	NewSampler(reg, time.Second, 1).Stop()
	var nilSampler *Sampler
	nilSampler.Start()
	nilSampler.Stop()
}

func TestSamplerWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Add("lp.solves", 2)
	s := NewSampler(reg, 5*time.Second, 4)
	s.Sample(time.UnixMilli(42_000))
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		IntervalMs int64                    `json:"interval_ms"`
		Series     map[string][]SeriesPoint `json:"series"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("timeseries JSON: %v\n%s", err, b.String())
	}
	if doc.IntervalMs != 5000 {
		t.Errorf("interval_ms %d", doc.IntervalMs)
	}
	pts := doc.Series["counter:lp.solves"]
	if len(pts) != 1 || pts[0].V != 2 || pts[0].UnixMs != 42_000 {
		t.Errorf("series %v", pts)
	}
}

// TestRingWraparound drives the raw ring through several full laps and
// checks the window stays exactly the last-capacity points, oldest first,
// at every step — including the step where head wraps back to zero.
func TestRingWraparound(t *testing.T) {
	const capacity = 4
	r := &ring{buf: make([]SeriesPoint, capacity)}
	for i := 1; i <= 3*capacity+1; i++ {
		r.push(SeriesPoint{UnixMs: int64(i), V: float64(i)})
		pts := r.points()
		want := i
		if want > capacity {
			want = capacity
		}
		if len(pts) != want {
			t.Fatalf("after %d pushes: %d points, want %d", i, len(pts), want)
		}
		for j, p := range pts {
			if exp := float64(i - want + 1 + j); p.V != exp {
				t.Fatalf("after %d pushes: window %v, point %d = %v, want %v", i, pts, j, p.V, exp)
			}
		}
	}
}

// TestSamplerConcurrentReadWrite hammers Sample, Series and WriteJSON from
// concurrent goroutines while the instrumented registry keeps counting.
// Run under -race (CI does) this pins the ring buffer's locking; the window
// invariants are asserted on every read.
func TestSamplerConcurrentReadWrite(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Hour, 8) // driven manually
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // writer: registry churn + explicit samples
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Add("lp.pivots", 1)
			reg.Gauge("load", float64(i))
			s.Sample(time.UnixMilli(int64(i)))
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() { // readers: Series and WriteJSON under churn
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for key, pts := range s.Series() {
					if len(pts) > 8 {
						t.Errorf("%s window %d points, capacity 8", key, len(pts))
						return
					}
					for i := 1; i < len(pts); i++ {
						if pts[i].UnixMs < pts[i-1].UnixMs {
							t.Errorf("%s timestamps not monotone: %v", key, pts)
							return
						}
					}
				}
				if err := s.WriteJSON(io.Discard); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}
