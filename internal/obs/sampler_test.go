package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSamplerRingWindow(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Hour, 3) // driven manually; ticker never fires
	base := time.UnixMilli(1_000_000)

	for i := 0; i < 5; i++ {
		reg.Add("lp.pivots", 10)
		reg.Gauge("load", float64(i))
		s.Sample(base.Add(time.Duration(i) * time.Second))
	}
	series := s.Series()
	pts := series["counter:lp.pivots"]
	if len(pts) != 3 {
		t.Fatalf("ring kept %d points, want capacity 3", len(pts))
	}
	// Oldest-first window over the last three samples: 30, 40, 50.
	for i, want := range []float64{30, 40, 50} {
		if pts[i].V != want {
			t.Fatalf("window %v, want values 30,40,50", pts)
		}
	}
	if pts[0].UnixMs >= pts[2].UnixMs {
		t.Fatalf("timestamps not ascending: %v", pts)
	}
	g := series["gauge:load"]
	if len(g) != 3 || g[2].V != 4 {
		t.Fatalf("gauge window %v", g)
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Millisecond, 10)
	s.Start()
	s.Start() // idempotent
	deadline := time.After(2 * time.Second)
	for {
		if pts := s.Series()["counter:lp.pivots"]; len(pts) > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background sampler never sampled")
		case <-time.After(5 * time.Millisecond):
		}
	}
	s.Stop()
	s.Stop() // idempotent
	n := len(s.Series()["counter:lp.pivots"])
	time.Sleep(20 * time.Millisecond)
	if got := len(s.Series()["counter:lp.pivots"]); got != n {
		t.Fatalf("sampler still sampling after Stop: %d -> %d", n, got)
	}

	// Stop without Start must not hang, nil must not panic.
	NewSampler(reg, time.Second, 1).Stop()
	var nilSampler *Sampler
	nilSampler.Start()
	nilSampler.Stop()
}

func TestSamplerWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Add("lp.solves", 2)
	s := NewSampler(reg, 5*time.Second, 4)
	s.Sample(time.UnixMilli(42_000))
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		IntervalMs int64                    `json:"interval_ms"`
		Series     map[string][]SeriesPoint `json:"series"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("timeseries JSON: %v\n%s", err, b.String())
	}
	if doc.IntervalMs != 5000 {
		t.Errorf("interval_ms %d", doc.IntervalMs)
	}
	pts := doc.Series["counter:lp.solves"]
	if len(pts) != 1 || pts[0].V != 2 || pts[0].UnixMs != 42_000 {
		t.Errorf("series %v", pts)
	}
}
