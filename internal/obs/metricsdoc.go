package obs

import (
	"fmt"
	"strings"
)

// MetricDoc documents one metric of the observability plane.
type MetricDoc struct {
	Name string // metric key, or a <placeholder> pattern for dynamic families
	Kind string // "counter", "gauge" or "histogram"
	Help string
}

// counterHelp documents every CoreCounters key. A conformance test keeps
// the two lists exactly aligned, so adding a counter without documenting it
// fails the build.
var counterHelp = map[string]string{
	"lp.solves":                              "LP solves completed (both simplex phases count as one solve)",
	"lp.pivots":                              "simplex pivots across all solves",
	"lp.pivot_work":                          "pivot work units (pivots weighted by tableau row count)",
	"lp.phase1_pivots":                       "pivots spent in simplex phase 1 (feasibility search)",
	"lp.refactorizations":                    "basis refactorizations (eta-file resets)",
	"lp.degenerate_pivots":                   "pivots with a zero step length",
	"lp.certificates":                        "optimality certificates produced and validated",
	"lp.cert_failures":                       "certificate validations that failed (solver bug tripwire)",
	"lp.warm_starts":                         "solves that started from a supplied basis",
	"lp.warm_accepted":                       "warm bases accepted as-is (no repair needed)",
	"lp.warm_repairs":                        "warm bases repaired before use (singular or stale rows)",
	"lp.phase1_skipped":                      "solves that skipped simplex phase 1 thanks to a feasible warm basis",
	"lp.pivots_saved":                        "estimated pivots saved by warm starts vs the cold baseline",
	"lp.columns_priced":                      "columns priced in by the column-generation loop",
	"te.pricing_rounds":                      "column-generation pricing sweeps across all ARROW Phase I solves",
	"te.tickets_deferred":                    "ticket blocks left out of the master by lazy pricing",
	"te.phase1_pivots":                       "simplex pivots attributed to ARROW Phase I masters",
	"te.phase1_pivot_work":                   "pivot work units attributed to ARROW Phase I masters",
	"mip.solves":                             "branch-and-bound solves completed",
	"mip.nodes":                              "branch-and-bound nodes explored",
	"mip.pruned":                             "nodes pruned by bound",
	"mip.incumbents":                         "incumbent improvements found",
	"rwa.solves":                             "restoration wavelength-assignment solves",
	"rwa.compose_adopted":                    "basis variables adopted from single-cut solutions when composing multi-cut warm starts",
	"ticket.rounding_attempts":               "LP-relaxation rounding attempts during ticket generation",
	"ticket.generated":                       "restoration tickets generated",
	"ticket.infeasible":                      "candidate tickets rejected as infeasible",
	"ticket.duplicates":                      "candidate tickets rejected as duplicates",
	"par.pools":                              "worker pools created",
	"par.tasks":                              "tasks executed across all pools",
	"par.busy_ns":                            "cumulative worker busy time (ns)",
	"par.idle_ns":                            "cumulative worker idle time (ns)",
	"pipeline.scenarios_enumerated":          "failure scenarios enumerated by the offline pipeline",
	"pipeline.scenarios_relevant":            "enumerated scenarios kept after the relevance cutoff",
	"scenario.enumerated":                    "cut sets emitted by the correlated k-failure enumerator",
	"scenario.pruned":                        "failure-lattice nodes pruned by the enumerator's probability bound",
	"scenario.warm_from_singles":             "multi-cut RWA solves warm-started from pre-staged single-cut bases",
	"sim.intervals":                          "timeline replay intervals evaluated",
	"sim.unplanned_intervals":                "intervals spent in failure states with no precomputed plan",
	"sim.restoring_intervals":                "intervals spent inside restoration-latency windows",
	"emu.episodes":                           "emulated restoration episodes run",
	"emu.amps_settled":                       "amplifiers settled across all episodes",
	"emu.amp_loops":                          "amplifier settle-loop iterations",
	"emu.roadm_reconfigs":                    "ROADM reconfigurations performed",
	"emu.lightpaths_restored":                "lightpaths restored across all episodes",
	"lp.health.probes":                       "solver-health probes taken (lp.Options.HealthEvery)",
	"lp.health.anomalies":                    "health probes that flagged an anomaly",
	"lp.health.anomaly.stall":                "probes flagging objective stall",
	"lp.health.anomaly.residual_drift":       "probes flagging primal residual drift",
	"lp.health.anomaly.warm_repair_fallback": "probes flagging a warm-basis repair fallback",
	"lp.health.anomaly.cycling_suspect":      "probes flagging suspected cycling",
	"mip.unhealthy_nodes":                    "branch-and-bound nodes whose LP relaxation probed unhealthy",
	"obs.late_hist_registrations":            "histogram registrations after first observation (bucket mismatch tripwire)",
	"obs.sse.dropped_events":                 "SSE events dropped on slow /events clients",
	"bench.workloads":                        "benchmark workloads completed by the arrow-bench harness",
	"bench.iterations":                       "measured benchmark iterations across all workloads",
	"attr.runs":                              "availability-attribution passes completed",
	"attr.scenarios":                         "scenario-level loss contributions decomposed",
	"attr.flows":                             "flow-level loss contributions decomposed",
	"attr.identity_violations":               "decomposition identities off by more than 1e-9 (attribution bug tripwire)",
	"attr.sensitivities":                     "capacity-row shadow prices harvested from the final phase-II basis",
	"attr.fd_checks":                         "shadow prices validated against finite-difference warm re-solves",
	"attr.fd_mismatches":                     "shadow prices outside their finite-difference derivative bracket",
	"attr.probes":                            "what-if perturbations probed by warm re-solve or analytic evaluation",
}

// CoreGauges documents the gauge families the instrumented layers publish.
var CoreGauges = []MetricDoc{
	{"emu.latency_ratio", "gauge", "legacy-over-ARROW restoration latency ratio from the paired testbed episodes"},
	{"bench.stage_total_seconds", "gauge", "StageProfiler total bracket wall time of the last profiled run"},
	{"bench.stage_coverage", "gauge", "fraction of the total bracket attributed to top-level stages (report gate: >= 0.9)"},
	{"bench.stage.<stage>.wall_seconds", "gauge", "per-stage wall time of the last profiled run (aggregate stages: summed busy time)"},
	{"bench.stage.<stage>.alloc_bytes", "gauge", "per-stage heap allocation delta (top-level stages only)"},
	{"bench.stage.<stage>.gc_pause_seconds", "gauge", "per-stage GC pause share (top-level stages only)"},
	{"bench.<workload>.median_seconds", "gauge", "arrow-bench workload median wall time of the last harness run"},
	{"bench.<workload>.mad_seconds", "gauge", "arrow-bench workload wall-time median absolute deviation"},
	{"bench.<workload>.<extra>", "gauge", "arrow-bench workload extra metric (speedup, phase1_work_ratio, ...)"},
}

// CoreHistograms documents every histogram the instrumented layers observe.
var CoreHistograms = []MetricDoc{
	{"lp.pivots_per_solve", "histogram", "simplex pivots per solve"},
	{"lp.eta_depth_max", "histogram", "deepest eta file reached per solve"},
	{"lp.rows", "histogram", "constraint rows per solve"},
	{"lp.structural_vars", "histogram", "structural variables per solve"},
	{"lp.duality_gap", "histogram", "certified duality gap per solve"},
	{"lp.primal_inf", "histogram", "certified primal infeasibility per solve"},
	{"lp.dual_inf", "histogram", "certified dual infeasibility per solve"},
	{"lp.health.residual_inf", "histogram", "probed primal residual infinity norm"},
	{"lp.health.degenerate_ratio", "histogram", "probed degenerate-pivot ratio"},
	{"lp.health.eta_depth", "histogram", "probed eta-file depth"},
	{"lp.health.obj_progress", "histogram", "probed objective progress between probes"},
	{"mip.nodes_per_solve", "histogram", "branch-and-bound nodes per solve"},
	{"mip.gap", "histogram", "incumbent-vs-bound gap per solve"},
	{"rwa.relaxation_gap", "histogram", "RWA LP-relaxation rounding gap"},
	{"rwa.failed_links", "histogram", "failed IP links per RWA solve"},
	{"rwa.surrogate_paths", "histogram", "surrogate restoration paths per failed link"},
	{"ticket.yield_per_batch", "histogram", "tickets accepted per generation batch"},
	{"par.queue_wait_seconds", "histogram", "task queue wait before a worker picked it up"},
	{"par.worker_busy_seconds", "histogram", "per-worker cumulative busy time at pool close"},
	{"emu.amp_settle_seconds", "histogram", "per-amplifier settle duration (emulated clock)"},
	{"emu.restore_seconds", "histogram", "end-to-end restoration duration per episode (emulated clock)"},
	{"testbed.restore_seconds", "histogram", "cmd/arrow-testbed episode restoration duration"},
}

// CounterDocs returns the documented counter schema in CoreCounters order.
func CounterDocs() []MetricDoc {
	out := make([]MetricDoc, 0, len(CoreCounters))
	for _, name := range CoreCounters {
		out = append(out, MetricDoc{Name: name, Kind: "counter", Help: counterHelp[name]})
	}
	return out
}

// MetricsDoc renders the full metric-namespace reference (METRICS.md).
// Regenerate with `go generate ./...` or
// `go run ./cmd/arrow-bench -write-metrics-md METRICS.md`; a freshness test
// keeps the committed file in sync with this source of truth.
func MetricsDoc() string {
	var b strings.Builder
	b.WriteString("# Metric namespace\n\n")
	b.WriteString("<!-- Generated by internal/obs.MetricsDoc — do not edit by hand.\n")
	b.WriteString("     Regenerate: go run ./cmd/arrow-bench -write-metrics-md METRICS.md -->\n\n")
	b.WriteString("Every metric the observability plane can emit, by kind. Counters are\n")
	b.WriteString("pre-seeded on every registry (schema version ")
	fmt.Fprintf(&b, "%d", SchemaVersion)
	b.WriteString("), so snapshots always\ncarry the full schema at zero; gauges and histograms appear once their\nlayer runs. Exported on `/metrics` as JSON or Prometheus text, sampled\ninto `/timeseries`, summarised in `arrow-report`.\n")

	section := func(title string, docs []MetricDoc) {
		fmt.Fprintf(&b, "\n## %s\n\n", title)
		b.WriteString("| Metric | Help |\n|---|---|\n")
		for _, d := range docs {
			if d.Help == "" {
				continue
			}
			fmt.Fprintf(&b, "| `%s` | %s |\n", d.Name, d.Help)
		}
	}
	section("Counters", CounterDocs())
	section("Gauges", CoreGauges)
	section("Histograms", CoreHistograms)
	return b.String()
}
