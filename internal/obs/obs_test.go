package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderHelpers(t *testing.T) {
	// All helpers must tolerate a nil Recorder without panicking.
	Add(nil, "x", 1)
	Gauge(nil, "x", 1)
	Observe(nil, "x", 1)
	end := Span(context.Background(), "x")
	end()
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	if ctx := WithRecorder(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatal("WithRecorder(nil) must keep the context recorder-free")
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Add("lp.pivots", 5)
	r.Add("lp.pivots", 7)
	r.Gauge("g", 2.5)
	r.RegisterHistogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		r.Observe("h", v)
	}
	s := r.Snapshot()
	if s.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d, want %d", s.SchemaVersion, SchemaVersion)
	}
	if s.Counters["lp.pivots"] != 12 {
		t.Fatalf("lp.pivots = %d, want 12", s.Counters["lp.pivots"])
	}
	if s.Gauges["g"] != 2.5 {
		t.Fatalf("gauge g = %g", s.Gauges["g"])
	}
	h := s.Histograms["h"]
	want := []int64{1, 1, 1, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("histogram counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Count != 4 || h.Min != 0.5 || h.Max != 500 {
		t.Fatalf("histogram stats = %+v", h)
	}
	// Every core counter must exist even when untouched.
	for _, name := range CoreCounters {
		if _, ok := s.Counters[name]; !ok {
			t.Fatalf("core counter %q missing from snapshot", name)
		}
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	r := NewRegistry()
	r.Observe("h", math.NaN())
	r.Observe("h", 1)
	if got := r.Snapshot().Histograms["h"].Count; got != 1 {
		t.Fatalf("count = %d, want 1 (NaN dropped)", got)
	}
}

func TestSpansAndTrace(t *testing.T) {
	r := NewRegistry()
	r.EnableTrace()
	ctx := WithRecorder(context.Background(), r)
	end := Span(ctx, "outer")
	endInner := Span(WithTrack(ctx, 7), "inner")
	time.Sleep(time.Millisecond)
	endInner()
	end()

	s := r.Snapshot()
	for _, name := range []string{"outer", "inner"} {
		sp, ok := s.Spans[name]
		if !ok || sp.Count != 1 || sp.TotalSeconds <= 0 {
			t.Fatalf("span %q = %+v, ok=%v", name, sp, ok)
		}
	}
	events := r.TraceEvents()
	if len(events) != 2 {
		t.Fatalf("trace events = %d, want 2", len(events))
	}
	// inner ended first and carries track 7.
	if events[0].Name != "inner" || events[0].TID != 7 || events[1].Name != "outer" || events[1].TID != 0 {
		t.Fatalf("trace = %+v", events)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 2 || parsed.TraceEvents[0].Phase != "X" {
		t.Fatalf("parsed trace = %+v", parsed)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add("c", 1)
				r.Observe("h", float64(i))
				r.SpanDone("s", 0, time.Now(), time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 1600 || s.Histograms["h"].Count != 1600 || s.Spans["s"].Count != 1600 {
		t.Fatalf("lost updates: counters=%d hist=%d spans=%d",
			s.Counters["c"], s.Histograms["h"].Count, s.Spans["s"].Count)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add("lp.pivots", 3)
	r.SpanDone("pipeline.build", 0, time.Now(), 2*time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.SchemaVersion != SchemaVersion || s.Counters["lp.pivots"] != 3 {
		t.Fatalf("round trip = %+v", s)
	}
	if _, ok := s.Spans["pipeline.build"]; !ok {
		t.Fatal("span lost in round trip")
	}
}

func TestSnapshotKeys(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", 1)
	r.Observe("h", 1)
	r.SpanDone("s", 0, time.Now(), time.Millisecond)
	keys := r.Snapshot().Keys()
	for _, want := range []string{"counter:lp.pivots", "gauge:g", "histogram:h", "span:s"} {
		found := false
		for _, k := range keys {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %q missing from %v", want, keys)
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
}

func TestDebugListener(t *testing.T) {
	r := NewRegistry()
	r.Add("lp.pivots", 9)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics JSON: %v", err)
	}
	if snap.Counters["lp.pivots"] != 9 {
		t.Fatalf("/metrics lp.pivots = %d, want 9", snap.Counters["lp.pivots"])
	}
	if !bytes.Contains(get("/debug/vars"), []byte("memstats")) {
		t.Fatal("/debug/vars missing expvar memstats")
	}
	if len(get("/debug/pprof/")) == 0 {
		t.Fatal("/debug/pprof/ empty")
	}
}

func TestSessionLifecycle(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		MetricsJSON: dir + "/metrics.json",
		TraceOut:    dir + "/trace.json",
		MemProfile:  dir + "/mem.pprof",
	}
	s, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	rec := s.Recorder()
	if rec == nil {
		t.Fatal("recorder should be live with -metrics-json set")
	}
	rec.Add("lp.pivots", 2)
	rec.SpanDone("x", 0, time.Now(), time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{f.MetricsJSON, f.TraceOut, f.MemProfile} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
	// A fully-disabled session must be inert: nil recorder, no-op close.
	empty, err := (&Flags{}).Start()
	if err != nil {
		t.Fatal(err)
	}
	if empty.Recorder() != nil {
		t.Fatal("empty flags must yield a nil recorder")
	}
	if err := empty.Close(); err != nil {
		t.Fatal(err)
	}
}
