package obs

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updatePromGolden = flag.Bool("update", false, "rewrite the golden Prometheus exposition file")

// promTestSnapshot is a hand-built snapshot exercising every section and
// the formatting edge cases (dots in names, +Inf, float values).
func promTestSnapshot() *Snapshot {
	return &Snapshot{
		SchemaVersion: SchemaVersion,
		Counters: map[string]int64{
			"lp.pivots":               1234,
			"lp.health.anomalies":     0,
			"lp.health.anomaly.stall": 2,
		},
		Gauges: map[string]float64{
			"sim.availability": 0.99995,
			"emu.temp-c":       42.5,
		},
		Histograms: map[string]HistogramSnapshot{
			"lp.health.residual_inf": {
				Bounds: []float64{1e-9, 1e-6, 1e-3},
				Counts: []int64{5, 3, 1, 1}, // last is overflow
				Count:  10,
				Sum:    0.0125,
				Min:    2e-10,
				Max:    0.012,
			},
		},
		Spans: map[string]SpanSnapshot{
			"pipeline.build": {Count: 3, TotalSeconds: 1.5, MinSeconds: 0.4, MaxSeconds: 0.6},
		},
	}
}

// TestPromExpositionGolden pins the exposition bytes: names, # TYPE lines,
// cumulative buckets, ordering. Regenerate deliberately with:
//
//	go test ./internal/obs -run TestPromExpositionGolden -update
func TestPromExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePromText(&b, promTestSnapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	golden := filepath.Join("testdata", "prom_exposition.golden")
	if *updatePromGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("Prometheus exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// parsePromText is a minimal scraper-side parser: it validates the line
// grammar the Prometheus text format requires and returns the samples. Any
// malformed line fails the parse.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// sample: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		var v float64
		switch valStr {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		case "NaN":
			v = math.NaN()
		default:
			f, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("bad sample value in %q: %v", line, err)
			}
			v = f
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "\"}") {
				t.Fatalf("malformed label block in %q", line)
			}
			base = base[:i]
		}
		for _, c := range base {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
				t.Fatalf("invalid metric name character %q in %q", c, line)
			}
		}
		// Every sample must be preceded by a TYPE declaration of its family.
		family := base
		for _, suffix := range []string{"_bucket", "_sum", "_count", "_total"} {
			trimmed := strings.TrimSuffix(base, suffix)
			if trimmed != base {
				if _, ok := types[trimmed]; ok {
					family = trimmed
					break
				}
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("sample %q has no TYPE declaration", line)
		}
		samples[name] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestPromExpositionScraperParseable runs the minimal parser over the
// exposition of a hand-built snapshot AND of a real registry, checking
// histogram bucket monotonicity and counter values survive the round trip.
func TestPromExpositionScraperParseable(t *testing.T) {
	var b strings.Builder
	if err := WritePromText(&b, promTestSnapshot()); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, b.String())

	if v := samples["arrow_lp_pivots_total"]; v != 1234 {
		t.Errorf("arrow_lp_pivots_total = %g, want 1234", v)
	}
	if v := samples["arrow_lp_health_anomaly_stall_total"]; v != 2 {
		t.Errorf("stall counter = %g, want 2", v)
	}
	if v := samples["arrow_sim_availability"]; v != 0.99995 {
		t.Errorf("gauge = %g", v)
	}
	// Histogram: cumulative buckets must be monotone and end at count.
	cum := []float64{
		samples[`arrow_lp_health_residual_inf_bucket{le="1e-09"}`],
		samples[`arrow_lp_health_residual_inf_bucket{le="1e-06"}`],
		samples[`arrow_lp_health_residual_inf_bucket{le="0.001"}`],
		samples[`arrow_lp_health_residual_inf_bucket{le="+Inf"}`],
	}
	want := []float64{5, 8, 9, 10}
	for i := range cum {
		if cum[i] != want[i] {
			t.Fatalf("cumulative buckets %v, want %v", cum, want)
		}
	}
	if samples["arrow_lp_health_residual_inf_count"] != 10 {
		t.Errorf("histogram count %g", samples["arrow_lp_health_residual_inf_count"])
	}
	if samples["arrow_pipeline_build_seconds_count"] != 3 {
		t.Errorf("span summary count %g", samples["arrow_pipeline_build_seconds_count"])
	}

	// A real registry's exposition parses too (covers default buckets and
	// the full CoreCounters schema).
	reg := NewRegistry()
	reg.Add("lp.pivots", 42)
	reg.Gauge("x.y", 1.5)
	reg.Observe("lp.pivots_per_solve", 17)
	var rb strings.Builder
	if err := WritePromText(&rb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	real := parsePromText(t, rb.String())
	if real["arrow_lp_pivots_total"] != 42 {
		t.Errorf("registry counter %g", real["arrow_lp_pivots_total"])
	}
	if _, ok := real["arrow_obs_sse_dropped_events_total"]; !ok {
		t.Error("core counter obs.sse.dropped_events missing from exposition")
	}
}

func TestPromNameSanitisation(t *testing.T) {
	cases := map[string]string{
		"lp.pivots":  "arrow_lp_pivots",
		"emu.temp-c": "arrow_emu_temp_c",
		"a b/c":      "arrow_a_b_c",
		"UPPER_ok.1": "arrow_UPPER_ok_1",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("promFloat(+Inf) = %q", got)
	}
}

// TestHistogramQuantile covers the percentile estimator the report's
// drift/degeneracy table uses.
func TestHistogramQuantile(t *testing.T) {
	h := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{10, 10, 0, 0},
		Count:  20,
		Sum:    25,
		Min:    0.5,
		Max:    1.8,
	}
	if v := h.Quantile(0); v != 0.5 {
		t.Errorf("q0 = %g, want Min", v)
	}
	if v := h.Quantile(1); v != 1.8 {
		t.Errorf("q1 = %g, want Max", v)
	}
	// Median: exactly at the boundary between the two buckets.
	if v := h.Quantile(0.5); v < 0.5 || v > 1.1 {
		t.Errorf("q0.5 = %g, want ~1", v)
	}
	// p75 sits inside the second bucket (1..1.8 after Max clamp).
	if v := h.Quantile(0.75); v <= 1 || v > 1.8 {
		t.Errorf("q0.75 = %g, want in (1, 1.8]", v)
	}
	var empty HistogramSnapshot
	if v := empty.Quantile(0.5); v != 0 {
		t.Errorf("empty quantile %g", v)
	}

	// Monotonicity over a spread of quantiles.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev-1e-12 {
			t.Fatalf("quantile not monotone at q=%.2f: %g < %g", q, v, prev)
		}
		prev = v
	}
	_ = fmt.Sprint(h)
}
