package obs

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestDebugServerRoundTrip covers the -debug-addr listener end to end:
// startup on an ephemeral port, a live /metrics snapshot, the pprof and
// expvar endpoints, and immediate shutdown via Close.
func TestDebugServerRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Add("lp.pivots", 7)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not a snapshot: %v\n%s", err, body)
	}
	if snap.Counters["lp.pivots"] != 7 {
		t.Errorf("lp.pivots = %d, want 7", snap.Counters["lp.pivots"])
	}

	code, body = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/cmdline status %d, %d bytes", code, len(body))
	}
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(string(body), "memstats") {
		t.Errorf("/debug/vars status %d, missing memstats", code)
	}

	srv.Close()
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("listener still accepting after Close")
	}
}

// TestDebugServerNilRegistry pins the /metrics behaviour when no metrics
// sink was requested: 404, not a crash.
func TestDebugServerNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _ := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusNotFound {
		t.Errorf("/metrics with nil registry: status %d, want 404", code)
	}
}

// TestDebugServerBindFailure checks that an unbindable address errors
// immediately instead of from the serving goroutine.
func TestDebugServerBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := Serve(ln.Addr().String(), nil); err == nil {
		t.Fatal("bound an already-bound address")
	}
}

// TestServeContextGracefulShutdown covers the context-cancel path: the
// listener serves until the context is cancelled, then drains and closes.
func TestServeContextGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := ServeContext(ctx, "127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics before cancel: status %d", code)
	}

	cancel()
	select {
	case <-srv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not complete after context cancel")
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("listener still accepting after context cancel")
	}
}

// TestDebugServerBenchEndpoint covers /bench in all three states: no
// source wired (404), a source with no run yet (404), and a recorded run
// (JSON round trip).
func TestDebugServerBenchEndpoint(t *testing.T) {
	off, err := ServeWith("127.0.0.1:0", ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if code, _ := get(t, "http://"+off.Addr()+"/bench"); code != http.StatusNotFound {
		t.Errorf("/bench without a source: status %d, want 404", code)
	}

	var state any // what a CLI would publish after each harness run
	srv, err := ServeWith("127.0.0.1:0", ServeOpts{Bench: func() any { return state }})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/bench"); code != http.StatusNotFound {
		t.Errorf("/bench before any run: status %d, want 404", code)
	}
	state = map[string]any{"go_max_procs": 4, "results": []any{map[string]any{"workload": "pipeline-build"}}}
	code, body := get(t, base+"/bench")
	if code != http.StatusOK {
		t.Fatalf("/bench status %d: %s", code, body)
	}
	var got struct {
		GoMaxProcs int `json:"go_max_procs"`
		Results    []struct {
			Workload string `json:"workload"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("/bench not JSON: %v\n%s", err, body)
	}
	if got.GoMaxProcs != 4 || len(got.Results) != 1 || got.Results[0].Workload != "pipeline-build" {
		t.Errorf("/bench round trip: %+v", got)
	}
}

// TestDebugServerAttributionEndpoint mirrors the /bench contract for
// /attribution: 404 without a source, 404 while the source has nothing to
// report, and the published report as JSON once the attributed run lands.
func TestDebugServerAttributionEndpoint(t *testing.T) {
	off, err := ServeWith("127.0.0.1:0", ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if code, _ := get(t, "http://"+off.Addr()+"/attribution"); code != http.StatusNotFound {
		t.Errorf("/attribution without a source: status %d, want 404", code)
	}

	var state any // what arrow-report -attr publishes after the run
	srv, err := ServeWith("127.0.0.1:0", ServeOpts{Attribution: func() any { return state }})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/attribution"); code != http.StatusNotFound {
		t.Errorf("/attribution before the run: status %d, want 404", code)
	}
	state = map[string]any{"availability": 0.9413, "loss": 0.0587}
	code, body := get(t, base+"/attribution")
	if code != http.StatusOK {
		t.Fatalf("/attribution status %d: %s", code, body)
	}
	var got struct {
		Availability float64 `json:"availability"`
		Loss         float64 `json:"loss"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("/attribution not JSON: %v\n%s", err, body)
	}
	if got.Availability != 0.9413 || got.Loss != 0.0587 {
		t.Errorf("/attribution round trip: %+v", got)
	}
}

// TestTimeseriesUnderLoad scrapes /timeseries repeatedly while the sampler
// and registry churn at full speed: responses must stay valid JSON with
// in-capacity, time-ordered windows throughout (run under -race in CI).
func TestTimeseriesUnderLoad(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, 200*time.Microsecond, 16)
	s.Start()
	defer s.Stop()
	srv, err := ServeWith("127.0.0.1:0", ServeOpts{Registry: reg, Sampler: s})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				reg.Add("lp.pivots", 3)
				reg.Gauge("load", float64(i%100))
			}
		}
	}()
	defer close(stop)

	url := "http://" + srv.Addr() + "/timeseries"
	for i := 0; i < 25; i++ {
		code, body := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, code)
		}
		var doc struct {
			IntervalMs int64                    `json:"interval_ms"`
			Series     map[string][]SeriesPoint `json:"series"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("scrape %d: invalid JSON: %v\n%s", i, err, body)
		}
		for key, pts := range doc.Series {
			if len(pts) > 16 {
				t.Fatalf("scrape %d: %s has %d points, capacity 16", i, key, len(pts))
			}
			for j := 1; j < len(pts); j++ {
				if pts[j].UnixMs < pts[j-1].UnixMs {
					t.Fatalf("scrape %d: %s timestamps not monotone: %v", i, key, pts)
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
}
