package obs

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestDebugServerRoundTrip covers the -debug-addr listener end to end:
// startup on an ephemeral port, a live /metrics snapshot, the pprof and
// expvar endpoints, and immediate shutdown via Close.
func TestDebugServerRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Add("lp.pivots", 7)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not a snapshot: %v\n%s", err, body)
	}
	if snap.Counters["lp.pivots"] != 7 {
		t.Errorf("lp.pivots = %d, want 7", snap.Counters["lp.pivots"])
	}

	code, body = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/cmdline status %d, %d bytes", code, len(body))
	}
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(string(body), "memstats") {
		t.Errorf("/debug/vars status %d, missing memstats", code)
	}

	srv.Close()
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("listener still accepting after Close")
	}
}

// TestDebugServerNilRegistry pins the /metrics behaviour when no metrics
// sink was requested: 404, not a crash.
func TestDebugServerNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _ := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusNotFound {
		t.Errorf("/metrics with nil registry: status %d, want 404", code)
	}
}

// TestDebugServerBindFailure checks that an unbindable address errors
// immediately instead of from the serving goroutine.
func TestDebugServerBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := Serve(ln.Addr().String(), nil); err == nil {
		t.Fatal("bound an already-bound address")
	}
}

// TestServeContextGracefulShutdown covers the context-cancel path: the
// listener serves until the context is cancelled, then drains and closes.
func TestServeContextGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := ServeContext(ctx, "127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics before cancel: status %d", code)
	}

	cancel()
	select {
	case <-srv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not complete after context cancel")
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("listener still accepting after context cancel")
	}
}
