package obs

import (
	"fmt"
	"net/http"
)

// EventSub is one live, non-blocking subscription to an event stream:
// marshalled JSON events arrive on Events(), events the subscriber was too
// slow to take are counted by Dropped(), and Close detaches. The ledger's
// Subscription satisfies this interface; obs deliberately doesn't import
// the ledger package (the ledger records lp types, and lp records into
// obs), so the debug server is wired with an EventSource adapter instead.
type EventSub interface {
	Events() <-chan []byte
	Dropped() int64
	Close()
}

// EventSource creates live subscriptions with the given channel buffer.
// Adapting a ledger is one line at the call site:
//
//	obs.EventSource(func(buf int) obs.EventSub { return led.SubscribeJSON(buf) })
type EventSource func(buf int) EventSub

// sseBuffer is the per-client event buffer. A client that falls this many
// events behind starts losing them (drops are accounted, never blocking).
const sseBuffer = 256

// sseHandler streams events from src as Server-Sent Events: one
// `data: <json>` frame per ledger event. Slow clients drop events rather
// than stalling the producer; on disconnect the client's drop count is
// added to the obs.sse.dropped_events counter of reg (when non-nil),
// which is the durable record of lossy deliveries.
func sseHandler(src EventSource, reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if src == nil {
			http.Error(w, "event stream disabled", http.StatusNotFound)
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		sub := src(sseBuffer)
		if sub == nil {
			http.Error(w, "event stream disabled", http.StatusNotFound)
			return
		}
		defer func() {
			sub.Close()
			if reg != nil {
				if d := sub.Dropped(); d > 0 {
					reg.Add("obs.sse.dropped_events", d)
				}
			}
		}()
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "retry: 1000\n\n")
		fl.Flush()
		for {
			select {
			case <-r.Context().Done():
				return
			case line, ok := <-sub.Events():
				if !ok {
					return
				}
				fmt.Fprintf(w, "data: %s\n\n", line)
				fl.Flush()
			}
		}
	}
}
