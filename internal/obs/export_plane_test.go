package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSub is a test EventSub backed by a plain channel.
type fakeSub struct {
	ch      chan []byte
	dropped atomic.Int64
	closed  atomic.Bool
}

func (f *fakeSub) Events() <-chan []byte { return f.ch }
func (f *fakeSub) Dropped() int64        { return f.dropped.Load() }
func (f *fakeSub) Close() {
	if f.closed.CompareAndSwap(false, true) {
		close(f.ch)
	}
}

// TestMetricsContentNegotiation covers the /metrics dual exposition: JSON
// by default, Prometheus text via ?format=prom or an Accept header, and
// ?format=json forcing JSON even against a prom Accept header.
func TestMetricsContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Add("lp.pivots", 11)
	srv, err := ServeWith("127.0.0.1:0", ServeOpts{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Default: JSON snapshot.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("default /metrics not JSON: %v", err)
	}
	resp.Body.Close()
	if snap.Counters["lp.pivots"] != 11 {
		t.Errorf("JSON snapshot lp.pivots = %d", snap.Counters["lp.pivots"])
	}

	// ?format=prom: text exposition, correct content type, scraper-parseable.
	resp, err = http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("prom content type %q", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	resp.Body.Close()
	samples := parsePromText(t, sb.String())
	if samples["arrow_lp_pivots_total"] != 11 {
		t.Errorf("prom exposition lp.pivots = %g", samples["arrow_lp_pivots_total"])
	}

	// Accept header negotiation, the way a Prometheus scraper asks.
	req, _ := http.NewRequest("GET", base+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("Accept-negotiated content type %q, want prom text", ct)
	}

	// Explicit ?format=json wins over the Accept header.
	req, _ = http.NewRequest("GET", base+"/metrics?format=json", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("format=json content type %q", ct)
	}
}

// TestHealthzFlips covers the aggregated anomaly endpoint: 200 while the
// gate counters are zero, 503 with a violation breakdown once an anomaly
// lands.
func TestHealthzFlips(t *testing.T) {
	reg := NewRegistry()
	srv, err := ServeWith("127.0.0.1:0", ServeOpts{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy /healthz status %d: %s", code, body)
	}
	var st HealthStatus
	if err := json.Unmarshal(body, &st); err != nil || !st.Healthy {
		t.Fatalf("healthy payload %s (err %v)", body, err)
	}

	reg.Add("lp.health.anomalies", 2)
	reg.Add("lp.health.anomaly.stall", 2)
	code, body = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("anomalous /healthz status %d, want 503", code)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Healthy || st.Violations["lp.health.anomalies"] != 2 || st.Anomalies["stall"] != 2 {
		t.Errorf("anomalous payload %s", body)
	}

	// Nil registry: always healthy (nothing instrumented).
	if h := Health(nil); !h.Healthy {
		t.Error("nil registry reported unhealthy")
	}
}

// TestSSEStreamDelivery covers the /events live stream: frames arrive as
// `data: <json>` SSE records, and the subscription is closed (with its
// drop count folded into obs.sse.dropped_events) when the client goes
// away.
func TestSSEStreamDelivery(t *testing.T) {
	reg := NewRegistry()
	sub := &fakeSub{ch: make(chan []byte, 4)}
	src := EventSource(func(buf int) EventSub { return sub })
	srv, err := ServeWith("127.0.0.1:0", ServeOpts{Registry: reg, Events: src})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sub.ch <- []byte(`{"kind":"solver_anomaly","anomaly":"stall"}`)
	sub.dropped.Store(5)

	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var gotRetry, gotData bool
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "retry:") {
			gotRetry = true
		}
		if line == `data: {"kind":"solver_anomaly","anomaly":"stall"}` {
			gotData = true
			break
		}
	}
	if !gotRetry || !gotData {
		t.Fatalf("SSE frames missing: retry=%v data=%v", gotRetry, gotData)
	}
	resp.Body.Close() // client disconnects

	// The handler's deferred cleanup closes the sub and accounts drops.
	deadline := time.After(5 * time.Second)
	for !sub.closed.Load() {
		select {
		case <-deadline:
			t.Fatal("subscription not closed after client disconnect")
		case <-time.After(5 * time.Millisecond):
		}
	}
	for reg.Counter("obs.sse.dropped_events") != 5 {
		select {
		case <-deadline:
			t.Fatalf("obs.sse.dropped_events = %d, want 5",
				reg.Counter("obs.sse.dropped_events"))
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestSSEDisabled pins /events and /timeseries behaviour when their
// backends are absent: 404, not a hang or crash.
func TestSSEDisabled(t *testing.T) {
	srv, err := ServeWith("127.0.0.1:0", ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/events"); code != http.StatusNotFound {
		t.Errorf("/events without source: status %d, want 404", code)
	}
	if code, _ := get(t, base+"/timeseries"); code != http.StatusNotFound {
		t.Errorf("/timeseries without sampler: status %d, want 404", code)
	}

	// A source whose subscription is nil (e.g. nil ledger) is also a 404.
	nilSrc := EventSource(func(buf int) EventSub { return nil })
	srv2, err := ServeWith("127.0.0.1:0", ServeOpts{Events: nilSrc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if code, _ := get(t, "http://"+srv2.Addr()+"/events"); code != http.StatusNotFound {
		t.Errorf("/events with nil subscription: status %d, want 404", code)
	}
}

// TestTimeseriesEndpoint covers /timeseries: the sampler's ring window as
// JSON.
func TestTimeseriesEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Add("lp.solves", 3)
	s := NewSampler(reg, 2*time.Second, 8)
	s.Sample(time.UnixMilli(7_000))
	srv, err := ServeWith("127.0.0.1:0", ServeOpts{Registry: reg, Sampler: s})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/timeseries")
	if code != http.StatusOK {
		t.Fatalf("/timeseries status %d", code)
	}
	var doc struct {
		IntervalMs int64                    `json:"interval_ms"`
		Series     map[string][]SeriesPoint `json:"series"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/timeseries JSON: %v\n%s", err, body)
	}
	if doc.IntervalMs != 2000 {
		t.Errorf("interval_ms %d", doc.IntervalMs)
	}
	if pts := doc.Series["counter:lp.solves"]; len(pts) != 1 || pts[0].V != 3 {
		t.Errorf("series %v", doc.Series["counter:lp.solves"])
	}
}
