package obs

import (
	"strings"
	"testing"
	"time"
)

// TestQuantileEdgeCases pins the HistogramSnapshot.Quantile contract at its
// boundaries: an empty histogram yields 0 for every q, q<=0 and q>=1 clamp
// to the tracked Min/Max, and a single-bucket histogram interpolates inside
// [Min, Max] without escaping it.
func TestQuantileEdgeCases(t *testing.T) {
	empty := &HistogramSnapshot{}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}

	// One sample in one bucket: every quantile is that sample.
	single := &HistogramSnapshot{
		Bounds: []float64{10}, Counts: []int64{1, 0},
		Count: 1, Sum: 7, Min: 7, Max: 7,
	}
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := single.Quantile(q); got != 7 {
			t.Errorf("single-sample Quantile(%g) = %g, want 7", q, got)
		}
	}

	// Several samples in one bucket: q=0 is Min, q=1 is Max, interior
	// quantiles stay inside [Min, Max].
	h := &HistogramSnapshot{
		Bounds: []float64{10}, Counts: []int64{4, 0},
		Count: 4, Sum: 14, Min: 2, Max: 6,
	}
	if got := h.Quantile(0); got != 2 {
		t.Errorf("Quantile(0) = %g, want Min 2", got)
	}
	if got := h.Quantile(-0.5); got != 2 {
		t.Errorf("Quantile(-0.5) = %g, want Min 2", got)
	}
	if got := h.Quantile(1); got != 6 {
		t.Errorf("Quantile(1) = %g, want Max 6", got)
	}
	if got := h.Quantile(1.5); got != 6 {
		t.Errorf("Quantile(1.5) = %g, want Max 6", got)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if got := h.Quantile(q); got < 2 || got > 6 {
			t.Errorf("Quantile(%g) = %g escapes [Min, Max]", q, got)
		}
	}

	// Quantiles are monotone in q even across empty buckets.
	multi := &HistogramSnapshot{
		Bounds: []float64{1, 10, 100}, Counts: []int64{3, 0, 5, 0},
		Count: 8, Sum: 200, Min: 0.5, Max: 90,
	}
	prev := multi.Quantile(0)
	for q := 0.1; q <= 1.0; q += 0.1 {
		v := multi.Quantile(q)
		if v < prev {
			t.Errorf("Quantile not monotone: q=%.1f gives %g after %g", q, v, prev)
		}
		prev = v
	}
}

// TestSamplerEmptyRing pins the Sampler's behaviour before any sample has
// been taken: Series is empty (not nil entries), WriteJSON emits a valid
// document, and Stop without Start returns immediately.
func TestSamplerEmptyRing(t *testing.T) {
	s := NewSampler(NewRegistry(), time.Hour, 4)
	if got := s.Series(); len(got) != 0 {
		t.Fatalf("unsampled Series() = %v, want empty", got)
	}
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"series":{}`) {
		t.Fatalf("unsampled WriteJSON = %s, want empty series object", sb.String())
	}
	s.Stop() // never started: must not hang

	// One explicit sample on a fresh registry populates the pre-seeded core
	// counters; a ring of capacity 4 then holds exactly one point each.
	s2 := NewSampler(NewRegistry(), time.Hour, 4)
	s2.Sample(time.UnixMilli(1000))
	series := s2.Series()
	if len(series) == 0 {
		t.Fatal("sampled Series() still empty")
	}
	for k, pts := range series {
		if len(pts) != 1 {
			t.Fatalf("series %s has %d points, want 1", k, len(pts))
		}
		if pts[0].UnixMs != 1000 {
			t.Fatalf("series %s timestamp %d, want 1000", k, pts[0].UnixMs)
		}
	}
}
