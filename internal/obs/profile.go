package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// Flags is the shared observability flag set of the CLIs. Register it on
// the command line with RegisterFlags, then bracket the program's work
// between Start and Close.
type Flags struct {
	// CPUProfile writes a pprof CPU profile covering Start..Close.
	CPUProfile string
	// MemProfile writes a pprof heap profile at Close (after a GC).
	MemProfile string
	// TraceOut writes the Chrome trace_event span timeline at Close.
	TraceOut string
	// MetricsJSON writes the metrics snapshot at Close ("-" = stdout).
	MetricsJSON string
	// DebugAddr serves net/http/pprof, expvar, live /metrics (JSON and
	// Prometheus text), /healthz, /timeseries and — when an event stream is
	// wired via SetEventStream — the /events SSE feed.
	DebugAddr string
	// SampleInterval is the /timeseries sampling period (0 keeps the 1s
	// default). Only meaningful with DebugAddr.
	SampleInterval time.Duration
	// LogJSON switches structured logging to the slog JSON handler
	// (machine-parseable one-line-per-event); off, the text handler is used.
	LogJSON bool

	// events feeds the debug server's /events SSE stream; set it with
	// SetEventStream before Start.
	events EventSource
	// bench feeds the debug server's /bench endpoint; set it with
	// SetBenchSource before Start.
	bench func() any
	// attribution feeds the debug server's /attribution endpoint; set it
	// with SetAttributionSource before Start.
	attribution func() any
}

// SetEventStream wires a live event source (normally a ledger adapter)
// into the debug server's /events endpoint. Must be called before Start to
// take effect; a nil source leaves /events disabled.
func (f *Flags) SetEventStream(src EventSource) { f.events = src }

// SetBenchSource wires a benchmark-state provider (normally a closure over
// cmd/arrow-bench's latest *bench.Entry) into the debug server's /bench
// endpoint. Must be called before Start to take effect; a nil source leaves
// /bench disabled.
func (f *Flags) SetBenchSource(src func() any) { f.bench = src }

// SetAttributionSource wires an attribution-report provider (normally a
// closure over the latest *attr.Report) into the debug server's
// /attribution endpoint. Must be called before Start to take effect; a nil
// source leaves /attribution disabled.
func (f *Flags) SetAttributionSource(src func() any) { f.attribution = src }

// RegisterFlags declares the observability flags on fs (normally
// flag.CommandLine) and returns the struct they parse into.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace_event span timeline JSON to this file on exit")
	fs.StringVar(&f.MetricsJSON, "metrics-json", "", "write the metrics snapshot JSON to this file on exit (- = stdout)")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve net/http/pprof, expvar, /metrics (JSON or Prometheus text), /healthz, /events and /timeseries on this address (e.g. localhost:6060)")
	fs.DurationVar(&f.SampleInterval, "sample-interval", 0, "debug-server /timeseries sampling period (default 1s)")
	fs.BoolVar(&f.LogJSON, "log-json", false, "emit structured logs as JSON (log/slog) instead of text")
	return f
}

// Logger builds the CLI's structured logger on stderr, honouring -log-json.
// verbose (the CLIs' -v flag) lowers the level to Debug, which also makes
// flight-recorder events mirrored into slog visible.
func (f *Flags) Logger(verbose bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	if f.LogJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

// Session is the live state behind a parsed Flags: the registry (nil when
// no metrics sink was requested), the running CPU profile, and the debug
// listener. Close flushes everything.
type Session struct {
	flags   *Flags
	reg     *Registry
	cpuFile *os.File
	debug   *DebugServer
	sampler *Sampler
}

// Start opens the requested sinks. It returns a non-nil Session even when
// every flag is empty; Recorder() is then nil and Close is a no-op, so
// callers need no conditionals.
func (f *Flags) Start() (*Session, error) {
	s := &Session{flags: f}
	if f.MetricsJSON != "" || f.TraceOut != "" || f.DebugAddr != "" {
		s.reg = NewRegistry()
		if f.TraceOut != "" {
			s.reg.EnableTrace()
		}
	}
	if f.CPUProfile != "" {
		fd, err := os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(fd); err != nil {
			fd.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		s.cpuFile = fd
	}
	if f.DebugAddr != "" {
		if s.reg != nil {
			s.sampler = NewSampler(s.reg, f.SampleInterval, 0)
			s.sampler.Start()
		}
		srv, err := ServeWith(f.DebugAddr, ServeOpts{
			Registry:    s.reg,
			Events:      f.events,
			Sampler:     s.sampler,
			Bench:       f.bench,
			Attribution: f.attribution,
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.debug = srv
	}
	return s, nil
}

// DebugAddr returns the bound debug-listener address ("" when disabled).
func (s *Session) DebugAddr() string {
	if s == nil || s.debug == nil {
		return ""
	}
	return s.debug.Addr()
}

// Recorder returns the session's Recorder, or untyped nil when no metrics
// sink was requested (keeping the nil-Recorder fast path).
func (s *Session) Recorder() Recorder {
	if s == nil || s.reg == nil {
		return nil
	}
	return s.reg
}

// Registry exposes the underlying registry (nil when disabled).
func (s *Session) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Close stops the CPU profile, writes the heap profile, metrics snapshot
// and span timeline, and shuts the debug listener down. Safe on a nil or
// empty session; the first error is returned but every sink is attempted.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.flags.MemProfile != "" {
		runtime.GC() // materialise live-heap accounting before the write
		keep(writeFile(s.flags.MemProfile, func(w io.Writer) error {
			return pprof.WriteHeapProfile(w)
		}))
	}
	if s.reg != nil && s.flags.MetricsJSON != "" {
		if s.flags.MetricsJSON == "-" {
			keep(s.reg.WriteJSON(os.Stdout))
		} else {
			keep(writeFile(s.flags.MetricsJSON, s.reg.WriteJSON))
		}
	}
	if s.reg != nil && s.flags.TraceOut != "" {
		keep(writeFile(s.flags.TraceOut, s.reg.WriteTrace))
	}
	if s.debug != nil {
		s.debug.Close()
		s.debug = nil
	}
	if s.sampler != nil {
		s.sampler.Stop()
		s.sampler = nil
	}
	return first
}

func writeFile(path string, write func(io.Writer) error) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(fd); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}
