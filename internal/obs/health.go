package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
)

// healthGateCounters are the registry counters that must be zero for the
// process to report healthy: solver-health anomalies (stalls, residual
// drift, warm-fallback storms, cycling) and failed optimality
// certificates. Everything under lp.health.anomaly.* is folded into the
// lp.health.anomalies aggregate already, so gating on the aggregate plus
// cert failures covers the whole detector family.
var healthGateCounters = []string{
	"lp.health.anomalies",
	"lp.cert_failures",
}

// HealthStatus is the /healthz payload: live anomaly state aggregated from
// the registry.
type HealthStatus struct {
	Healthy bool `json:"healthy"`
	// Violations maps each non-zero gate counter to its value.
	Violations map[string]int64 `json:"violations,omitempty"`
	// Anomalies breaks lp.health.anomalies down by reason code.
	Anomalies map[string]int64 `json:"anomalies,omitempty"`
}

// Health aggregates the registry's live anomaly state. A nil registry is
// healthy (nothing is instrumented, so nothing is known to be wrong).
func Health(reg *Registry) HealthStatus {
	st := HealthStatus{Healthy: true}
	if reg == nil {
		return st
	}
	for _, name := range healthGateCounters {
		if v := reg.Counter(name); v != 0 {
			st.Healthy = false
			if st.Violations == nil {
				st.Violations = map[string]int64{}
			}
			st.Violations[name] = v
		}
	}
	snap := reg.Snapshot()
	keys := make([]string, 0, len(snap.Counters))
	for k := range snap.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if v := snap.Counters[k]; v != 0 && strings.HasPrefix(k, "lp.health.anomaly.") {
			if st.Anomalies == nil {
				st.Anomalies = map[string]int64{}
			}
			st.Anomalies[strings.TrimPrefix(k, "lp.health.anomaly.")] = v
		}
	}
	return st
}

// healthzHandler serves the aggregated anomaly state: HTTP 200 with a JSON
// body while healthy, 503 once any gate counter is non-zero.
func healthzHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		st := Health(reg)
		w.Header().Set("Content-Type", "application/json")
		if !st.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(st) //nolint:errcheck // best-effort response body
	}
}
