package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a registry
// snapshot. Metric names are the snapshot keys under an `arrow_` prefix
// with non-identifier characters folded to underscores: the counter
// "lp.health.anomalies" exports as `arrow_lp_health_anomalies_total`.
// Counters get a `_total` suffix, histograms the cumulative
// `_bucket{le="..."}` / `_sum` / `_count` triple, and span aggregates
// export as summaries in seconds. Output is sorted by metric name, so the
// exposition of a given snapshot is byte-deterministic (golden-testable).

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitises a snapshot key into a Prometheus metric name.
func promName(key string) string {
	var b strings.Builder
	b.Grow(len(key) + 6)
	b.WriteString("arrow_")
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value; Prometheus accepts Go's shortest
// round-trip formatting plus the special +Inf/-Inf/NaN spellings.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePromText writes the snapshot in Prometheus text exposition format.
func WritePromText(w io.Writer, s *Snapshot) error {
	var b strings.Builder

	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := promName(k) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[k])
	}

	keys = keys[:0]
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := promName(k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(s.Gauges[k]))
	}

	keys = keys[:0]
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := s.Histograms[k]
		name := promName(k)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}

	keys = keys[:0]
	for k := range s.Spans {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sp := s.Spans[k]
		name := promName(k) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s summary\n", name)
		fmt.Fprintf(&b, "%s_sum %s\n", name, promFloat(sp.TotalSeconds))
		fmt.Fprintf(&b, "%s_count %d\n", name, sp.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
