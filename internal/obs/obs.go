// Package obs is the observability substrate of the ARROW stack: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms), lightweight spans that double as a Chrome trace_event
// timeline, and the profiling/diagnostics wiring shared by the CLIs
// (-cpuprofile, -memprofile, -trace-out, -metrics-json, -debug-addr).
//
// Everything goes through the Recorder interface. The nil Recorder is the
// disabled state: the package-level helpers (Add, Gauge, Observe, Span)
// no-op on nil without allocating, so instrumented hot paths cost a nil
// check when observability is off and planning output is byte-identical
// either way. Solver layers accumulate their counters locally during a
// solve and flush once at the end, so the per-pivot cost is zero even when
// a Recorder is attached.
//
// The overhead contract: instrumentation may read the clock and count
// events, but must never influence control flow, iteration order, RNG
// consumption, or floating-point arithmetic of the instrumented code.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Recorder receives metric events. *Registry is the standard
// implementation; a nil Recorder (used through the package helpers) is the
// disabled state.
type Recorder interface {
	// Add increments the named counter by delta.
	Add(name string, delta int64)
	// Gauge sets the named gauge to v (last write wins).
	Gauge(name string, v float64)
	// Observe records one sample into the named histogram.
	Observe(name string, v float64)
	// SpanDone records one completed span occurrence: aggregate duration
	// stats under name, plus a timeline event on the given track when
	// tracing is enabled.
	SpanDone(name string, track int64, start time.Time, d time.Duration)
}

// Add increments a counter on r, tolerating a nil Recorder.
func Add(r Recorder, name string, delta int64) {
	if r != nil {
		r.Add(name, delta)
	}
}

// Gauge sets a gauge on r, tolerating a nil Recorder.
func Gauge(r Recorder, name string, v float64) {
	if r != nil {
		r.Gauge(name, v)
	}
}

// Observe records a histogram sample on r, tolerating a nil Recorder.
func Observe(r Recorder, name string, v float64) {
	if r != nil {
		r.Observe(name, v)
	}
}

type ctxKey int

const (
	recorderKey ctxKey = iota
	trackKey
)

// WithRecorder attaches r to the context. A nil r returns ctx unchanged.
func WithRecorder(ctx context.Context, r Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey, r)
}

// FromContext returns the Recorder attached to ctx, or nil.
func FromContext(ctx context.Context) Recorder {
	r, _ := ctx.Value(recorderKey).(Recorder)
	return r
}

// WithTrack pins subsequent spans under ctx to the given timeline track.
// Worker pools give each worker its own track so concurrent work renders
// on parallel lanes in the trace viewer.
func WithTrack(ctx context.Context, track int64) context.Context {
	return context.WithValue(ctx, trackKey, track)
}

// TrackFrom returns ctx's timeline track (0, the main track, by default).
func TrackFrom(ctx context.Context) int64 {
	t, _ := ctx.Value(trackKey).(int64)
	return t
}

var trackCounter atomic.Int64

// NextTrack allocates a fresh globally-unique timeline track id.
func NextTrack() int64 { return trackCounter.Add(1) }

var noopEnd = func() {}

// Span starts a span named name on ctx's Recorder and returns the function
// that ends it. Spans nest by time containment on the same track; with no
// Recorder attached the returned func is a shared no-op and nothing
// allocates.
//
//	defer obs.Span(ctx, "rwa.solve")()
func Span(ctx context.Context, name string) func() {
	r := FromContext(ctx)
	if r == nil {
		return noopEnd
	}
	track := TrackFrom(ctx)
	start := time.Now()
	return func() { r.SpanDone(name, track, start, time.Since(start)) }
}
