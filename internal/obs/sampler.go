package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// SeriesPoint is one timestamped sample of a counter or gauge.
type SeriesPoint struct {
	UnixMs int64   `json:"t"`
	V      float64 `json:"v"`
}

// ring is a fixed-capacity circular buffer of points.
type ring struct {
	buf  []SeriesPoint
	head int // next write position
	n    int // live points
}

func (r *ring) push(p SeriesPoint) {
	r.buf[r.head] = p
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// points returns the live window, oldest first.
func (r *ring) points() []SeriesPoint {
	out := make([]SeriesPoint, 0, r.n)
	start := (r.head - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Sampler periodically snapshots a registry's counters and gauges into
// fixed-size ring buffers, giving the debug server a short-horizon
// time-series view (/timeseries) without any external storage. Sampling
// only reads the registry — it cannot perturb the instrumented run — and
// a stopped sampler keeps its window readable.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	capacity int

	mu     sync.Mutex
	series map[string]*ring

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewSampler builds a sampler over reg. interval is the period between
// samples (default 1s if <= 0); capacity is the ring size per series
// (default 300 points — five minutes at the default interval).
func NewSampler(reg *Registry, interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	if capacity <= 0 {
		capacity = 300
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		capacity: capacity,
		series:   map[string]*ring{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval reports the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start launches the background sampling loop. Subsequent Starts are
// no-ops. Nil-safe.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case now := <-t.C:
					s.Sample(now)
				}
			}
		}()
	})
}

// Stop terminates the loop and waits for it to exit. Safe to call without
// Start, more than once, and on nil.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: mark done
	<-s.done
}

// Sample takes one snapshot at the given timestamp. Exported so tests (and
// callers that want sample-on-demand semantics) can drive the clock
// explicitly instead of waiting out the ticker.
func (s *Sampler) Sample(now time.Time) {
	snap := s.reg.Snapshot()
	ms := now.UnixMilli()
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range snap.Counters {
		s.record("counter:"+k, ms, float64(v))
	}
	for k, v := range snap.Gauges {
		s.record("gauge:"+k, ms, v)
	}
}

func (s *Sampler) record(key string, ms int64, v float64) {
	r := s.series[key]
	if r == nil {
		r = &ring{buf: make([]SeriesPoint, s.capacity)}
		s.series[key] = r
	}
	r.push(SeriesPoint{UnixMs: ms, V: v})
}

// Series exports the current window of every sampled series, oldest point
// first, keyed by section-qualified name ("counter:lp.pivots").
func (s *Sampler) Series() map[string][]SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]SeriesPoint, len(s.series))
	for k, r := range s.series {
		out[k] = r.points()
	}
	return out
}

// WriteJSON writes the sampler window as a JSON document with sorted keys:
// {"interval_ms": ..., "series": {name: [{"t":...,"v":...}, ...]}}.
func (s *Sampler) WriteJSON(w io.Writer) error {
	series := s.Series()
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string][]SeriesPoint, len(series)) // json sorts map keys
	for _, k := range keys {
		ordered[k] = series[k]
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"interval_ms": s.interval.Milliseconds(),
		"series":      ordered,
	})
}
