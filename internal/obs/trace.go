package obs

import (
	"encoding/json"
	"io"
)

// TraceEvent is one Chrome trace_event record (the "X" complete-event
// form): chrome://tracing, Perfetto and speedscope all open the exported
// file directly. TID is the obs track: spans nest by time containment
// within a track, and worker pools put each worker on its own track.
type TraceEvent struct {
	Name      string  `json:"name"`
	Phase     string  `json:"ph"`
	TSMicros  float64 `json:"ts"`
	DurMicros float64 `json:"dur"`
	PID       int64   `json:"pid"`
	TID       int64   `json:"tid"`
}

// chromeTrace is the JSON object format of the trace_event specification.
type chromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace writes the collected span timeline in Chrome trace_event JSON
// format. Events appear only when EnableTrace was called before the run.
func (r *Registry) WriteTrace(w io.Writer) error {
	r.mu.Lock()
	events := append([]TraceEvent(nil), r.trace...)
	r.mu.Unlock()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// TraceEvents returns a copy of the collected timeline (for tests).
func (r *Registry) TraceEvents() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TraceEvent(nil), r.trace...)
}
