package obs

import (
	"os"
	"strings"
	"testing"
)

// TestCounterHelpCoversSchema keeps counterHelp and CoreCounters exactly
// aligned: every counter documented, no stale docs for removed counters.
func TestCounterHelpCoversSchema(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range CoreCounters {
		if counterHelp[name] == "" {
			t.Errorf("counter %q has no help text", name)
		}
		seen[name] = true
	}
	for name := range counterHelp {
		if !seen[name] {
			t.Errorf("counterHelp documents %q, which is not in CoreCounters", name)
		}
	}
}

func TestMetricsDocContent(t *testing.T) {
	doc := MetricsDoc()
	for _, want := range []string{
		"# Metric namespace",
		"## Counters", "## Gauges", "## Histograms",
		"`lp.pivots`", "`bench.workloads`", "`emu.latency_ratio`",
		"`bench.stage_coverage`", "`lp.pivots_per_solve`",
		"`testbed.restore_seconds`",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("MetricsDoc missing %q", want)
		}
	}
	for _, d := range append(append(CounterDocs(), CoreGauges...), CoreHistograms...) {
		if d.Help == "" {
			t.Errorf("metric %q (%s) has no help text", d.Name, d.Kind)
		}
	}
}

// TestMetricsMDFresh is the go:generate freshness gate: the committed
// METRICS.md must match what MetricsDoc renders. Regenerate with
// `go run ./cmd/arrow-bench -write-metrics-md METRICS.md`.
func TestMetricsMDFresh(t *testing.T) {
	raw, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatalf("METRICS.md unreadable (regenerate with arrow-bench -write-metrics-md): %v", err)
	}
	if string(raw) != MetricsDoc() {
		t.Error("METRICS.md is stale; regenerate: go run ./cmd/arrow-bench -write-metrics-md METRICS.md")
	}
}
