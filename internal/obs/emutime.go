package obs

import "math"

// Emulated-clock spans. The discrete-event emulator (internal/emu) measures
// latency on its own simulated clock — seconds of modeled device time, not
// wall time. Exporting those stages through the wall-clock Span API would
// collapse a 17-minute restoration into the microseconds the emulator takes
// to compute it, so emulated spans carry explicit (startSec, durSec)
// coordinates instead of a time.Time pair.
//
// In the exported Chrome trace the emulated timeline lives on its own
// process id (EmuPID) so viewers render it as a separate lane group and its
// t=0-based timestamps never interleave with wall-clock spans (PID 1).

// EmuPID is the trace_event process id of the emulated-clock timeline;
// wall-clock spans use PID 1.
const EmuPID = 2

// EmuSpanRecorder is the optional Recorder extension for emulated-time
// spans. *Registry implements it; recorders that don't are silently skipped
// by EmuSpan, preserving the nil-default contract.
type EmuSpanRecorder interface {
	// SpanEmu records one completed emulated-clock span: aggregate duration
	// stats under name (durSec counted as seconds), plus a timeline event at
	// ts=startSec on the given track when tracing is enabled.
	SpanEmu(name string, track int64, startSec, durSec float64)
}

// EmuSpan records an emulated-clock span on r, tolerating a nil Recorder or
// one without emulated-time support.
func EmuSpan(r Recorder, name string, track int64, startSec, durSec float64) {
	if er, ok := r.(EmuSpanRecorder); ok {
		er.SpanEmu(name, track, startSec, durSec)
	}
}

// SpanEmu implements EmuSpanRecorder.
func (r *Registry) SpanEmu(name string, track int64, startSec, durSec float64) {
	ns := int64(durSec * 1e9)
	r.mu.Lock()
	s := r.spans[name]
	if s == nil {
		s = &spanStat{minNS: math.MaxInt64}
		r.spans[name] = s
	}
	s.count++
	s.totalNS += ns
	if ns < s.minNS {
		s.minNS = ns
	}
	if ns > s.maxNS {
		s.maxNS = ns
	}
	if r.tracing {
		r.trace = append(r.trace, TraceEvent{
			Name: name, Phase: "X", PID: EmuPID, TID: track,
			TSMicros:  startSec * 1e6,
			DurMicros: durSec * 1e6,
		})
	}
	r.mu.Unlock()
}
