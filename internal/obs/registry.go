package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// SchemaVersion identifies the snapshot JSON layout. Bump it whenever a
// field is renamed, removed, or changes meaning (adding keys is
// compatible).
const SchemaVersion = 1

// CoreCounters is the canonical counter schema: every Registry carries
// these keys from birth (at zero), so a snapshot always answers "how many
// pivots / nodes / rounding attempts" even for code paths the run never
// exercised. Instrumented layers may add further keys on top.
var CoreCounters = []string{
	"lp.solves",
	"lp.pivots",
	"lp.pivot_work",
	"lp.phase1_pivots",
	"lp.refactorizations",
	"lp.degenerate_pivots",
	"lp.certificates",
	"lp.cert_failures",
	"lp.warm_starts",
	"lp.warm_accepted",
	"lp.warm_repairs",
	"lp.phase1_skipped",
	"lp.pivots_saved",
	"lp.columns_priced",
	"te.pricing_rounds",
	"te.tickets_deferred",
	"te.phase1_pivots",
	"te.phase1_pivot_work",
	"mip.solves",
	"mip.nodes",
	"mip.pruned",
	"mip.incumbents",
	"rwa.solves",
	"rwa.compose_adopted",
	"ticket.rounding_attempts",
	"ticket.generated",
	"ticket.infeasible",
	"ticket.duplicates",
	"par.pools",
	"par.tasks",
	"par.busy_ns",
	"par.idle_ns",
	"pipeline.scenarios_enumerated",
	"pipeline.scenarios_relevant",
	// Correlated k-failure enumeration + compositional offline stage.
	"scenario.enumerated",
	"scenario.pruned",
	"scenario.warm_from_singles",
	"sim.intervals",
	"sim.unplanned_intervals",
	"sim.restoring_intervals",
	"emu.episodes",
	"emu.amps_settled",
	"emu.amp_loops",
	"emu.roadm_reconfigs",
	"emu.lightpaths_restored",
	// Solver-health observatory (lp.Options.HealthEvery probes). The
	// per-reason anomaly keys mirror lp.AnomalyReasons(); a conformance test
	// in internal/lp keeps the two lists aligned.
	"lp.health.probes",
	"lp.health.anomalies",
	"lp.health.anomaly.stall",
	"lp.health.anomaly.residual_drift",
	"lp.health.anomaly.warm_repair_fallback",
	"lp.health.anomaly.cycling_suspect",
	"mip.unhealthy_nodes",
	// Observability plane self-accounting.
	"obs.late_hist_registrations",
	"obs.sse.dropped_events",
	// Performance observatory (internal/bench harness).
	"bench.workloads",
	"bench.iterations",
	// Availability-attribution observatory (internal/attr).
	"attr.runs",
	"attr.scenarios",
	"attr.flows",
	"attr.identity_violations",
	"attr.sensitivities",
	"attr.fd_checks",
	"attr.fd_mismatches",
	"attr.probes",
}

// defBuckets are the default histogram bucket upper bounds: powers of four
// spanning sub-microsecond durations (in seconds) up to counts in the
// millions. Callers with a better idea of their range use
// RegisterHistogram.
var defBuckets = func() []float64 {
	out := make([]float64, 0, 24)
	for v := 1e-7; v < 2e7; v *= 4 {
		out = append(out, v)
	}
	return out
}()

// histogram is one fixed-bucket histogram: counts[i] tallies samples
// <= bounds[i]; counts[len(bounds)] is the overflow bucket.
type histogram struct {
	bounds []float64
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{
		bounds: bounds,
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

func (h *histogram) observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// spanStat aggregates completed spans of one name.
type spanStat struct {
	count   int64
	totalNS int64
	minNS   int64
	maxNS   int64
}

// counterShards stripes the counter maps so concurrent Add calls from
// parallel pipeline workers contend per-shard instead of on one registry
// lock. 16 shards comfortably cover the worker counts the pipeline runs
// at (Parallelism <= NumCPU) while keeping Snapshot's merge cheap.
const counterShards = 16

// counterShard is one stripe of the counter space. Padding keeps adjacent
// shards' locks off the same cache line.
type counterShard struct {
	mu sync.Mutex
	m  map[string]int64
	_  [40]byte
}

// shardIndex maps a counter name to its stripe (FNV-1a).
func shardIndex(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % counterShards)
}

// Registry is the standard Recorder: a metrics store with JSON snapshot
// export and an optional trace_event timeline. Counters live in striped
// per-shard maps (the Add path is the hottest call in an instrumented
// pipeline); gauges, histograms and spans share the registry lock. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	start   time.Time
	shards  [counterShards]counterShard
	gauges  map[string]float64
	hists   map[string]*histogram
	bounds  map[string][]float64
	spans   map[string]*spanStat
	tracing bool
	trace   []TraceEvent
}

// NewRegistry returns an empty registry pre-seeded with the CoreCounters
// schema keys.
func NewRegistry() *Registry {
	r := &Registry{
		start:  time.Now(),
		gauges: map[string]float64{},
		hists:  map[string]*histogram{},
		bounds: map[string][]float64{},
		spans:  map[string]*spanStat{},
	}
	for i := range r.shards {
		r.shards[i].m = map[string]int64{}
	}
	for _, name := range CoreCounters {
		r.shards[shardIndex(name)].m[name] = 0
	}
	return r
}

// EnableTrace turns on timeline collection: every SpanDone also appends a
// Chrome trace_event record (see WriteTrace).
func (r *Registry) EnableTrace() {
	r.mu.Lock()
	r.tracing = true
	r.mu.Unlock()
}

// RegisterHistogram fixes the bucket upper bounds the named histogram will
// use (bounds must be sorted ascending). Must be called before the first
// Observe of that name: a histogram that has already observed samples
// keeps its existing buckets (rebucketing recorded counts is impossible),
// and the late registration is surfaced in the
// obs.late_hist_registrations counter instead of being silently ignored.
func (r *Registry) RegisterHistogram(name string, bounds []float64) {
	r.mu.Lock()
	_, live := r.hists[name]
	if !live {
		r.bounds[name] = append([]float64(nil), bounds...)
	}
	r.mu.Unlock()
	if live {
		r.Add("obs.late_hist_registrations", 1)
	}
}

// Add implements Recorder.
func (r *Registry) Add(name string, delta int64) {
	s := &r.shards[shardIndex(name)]
	s.mu.Lock()
	s.m[name] += delta
	s.mu.Unlock()
}

// Counter returns the current value of one counter (0 if never written).
func (r *Registry) Counter(name string) int64 {
	s := &r.shards[shardIndex(name)]
	s.mu.Lock()
	v := s.m[name]
	s.mu.Unlock()
	return v
}

// Gauge implements Recorder.
func (r *Registry) Gauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe implements Recorder.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		b := r.bounds[name]
		if b == nil {
			b = defBuckets
		}
		h = newHistogram(b)
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// SpanDone implements Recorder.
func (r *Registry) SpanDone(name string, track int64, start time.Time, d time.Duration) {
	ns := d.Nanoseconds()
	r.mu.Lock()
	s := r.spans[name]
	if s == nil {
		s = &spanStat{minNS: math.MaxInt64}
		r.spans[name] = s
	}
	s.count++
	s.totalNS += ns
	if ns < s.minNS {
		s.minNS = ns
	}
	if ns > s.maxNS {
		s.maxNS = ns
	}
	if r.tracing {
		r.trace = append(r.trace, TraceEvent{
			Name: name, Phase: "X", PID: 1, TID: track,
			TSMicros:  float64(start.Sub(r.start).Nanoseconds()) / 1e3,
			DurMicros: float64(ns) / 1e3,
		})
	}
	r.mu.Unlock()
}

// HistogramSnapshot is one histogram's exported state. Counts[i] tallies
// samples <= Bounds[i]; the final entry is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded samples
// by linear interpolation inside the containing bucket, clamped to the
// exact Min/Max the histogram tracked. Returns 0 on an empty histogram.
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	target := q * float64(h.Count)
	cum := int64(0)
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) < target {
			cum += c
			continue
		}
		lo := h.Min
		if i > 0 {
			lo = math.Max(lo, h.Bounds[i-1])
		}
		hi := h.Max
		if i < len(h.Bounds) {
			hi = math.Min(hi, h.Bounds[i])
		}
		frac := (target - float64(cum)) / float64(c)
		v := lo + frac*(hi-lo)
		return math.Min(math.Max(v, h.Min), h.Max)
	}
	return h.Max
}

// SpanSnapshot is one span name's aggregate duration stats.
type SpanSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// Snapshot is the exported registry state. The JSON form is the
// -metrics-json output and the metrics block embedded in BENCH_*.json.
type Snapshot struct {
	SchemaVersion int                          `json:"schema_version"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]float64           `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
	Spans         map[string]SpanSnapshot      `json:"spans"`
}

// Snapshot exports a copy of the registry. Counters are merged from the
// shards; each shard is internally consistent, and a snapshot taken while
// writers are live is a valid point-in-time-per-shard view (counters only
// grow, so no merged value can exceed the true total at return time).
func (r *Registry) Snapshot() *Snapshot {
	counters := map[string]int64{}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for k, v := range sh.m {
			counters[k] += v
		}
		sh.mu.Unlock()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		SchemaVersion: SchemaVersion,
		Counters:      counters,
		Gauges:        make(map[string]float64, len(r.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(r.hists)),
		Spans:         make(map[string]SpanSnapshot, len(r.spans)),
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Count:  h.count, Sum: h.sum, Min: h.min, Max: h.max,
		}
		if h.count == 0 {
			hs.Min, hs.Max = 0, 0
		}
		s.Histograms[k] = hs
	}
	for k, sp := range r.spans {
		s.Spans[k] = SpanSnapshot{
			Count:        sp.count,
			TotalSeconds: float64(sp.totalNS) / 1e9,
			MinSeconds:   float64(sp.minNS) / 1e9,
			MaxSeconds:   float64(sp.maxNS) / 1e9,
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Keys returns every metric key in the snapshot, section-qualified and
// sorted ("counter:lp.pivots", "span:pipeline.build", ...). The golden
// schema tests compare this listing, which is deterministic even though
// the metric values are timing-dependent.
func (s *Snapshot) Keys() []string {
	var out []string
	for k := range s.Counters {
		out = append(out, "counter:"+k)
	}
	for k := range s.Gauges {
		out = append(out, "gauge:"+k)
	}
	for k := range s.Histograms {
		out = append(out, "histogram:"+k)
	}
	for k := range s.Spans {
		out = append(out, "span:"+k)
	}
	sort.Strings(out)
	return out
}
