package obs

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// StageProfiler attributes a pipeline run's resources to named stages:
// wall time, allocation deltas (runtime.MemStats) and GC pause shares per
// stage. It follows the package's nil-default contract — every method is
// safe on a nil receiver and costs a nil check when profiling is off — and
// the overhead contract: profiling reads clocks and runtime counters but
// never influences control flow, iteration order, RNG consumption or
// floating-point arithmetic, so results are byte-identical on or off
// (enforced by the eval determinism tests).
//
// Two kinds of stage:
//
//   - Stage(name) brackets a TOP-LEVEL section of the driving goroutine.
//     Top-level stages must not overlap each other: their wall times sum
//     into the coverage figure (share of Total accounted for), and each
//     records allocation and GC-pause deltas across the bracket.
//   - StageAgg(name) brackets work that runs CONCURRENTLY (per-scenario
//     solves inside a worker pool). Occurrences sum busy time across
//     workers, carry no allocation deltas (runtime.MemStats is process-
//     global), and are excluded from coverage.
type StageProfiler struct {
	mu     sync.Mutex
	stages map[string]*stageAcc
	order  []string

	totalStart time.Time
	totalNS    atomic.Int64
}

// stageAcc accumulates one stage name's occurrences.
type stageAcc struct {
	count     int64
	wallNS    int64
	allocB    uint64
	mallocs   uint64
	gcPauseNS uint64
	aggregate bool
}

// NewStageProfiler returns an empty profiler.
func NewStageProfiler() *StageProfiler {
	return &StageProfiler{stages: map[string]*stageAcc{}}
}

// Total brackets the whole run: coverage is the share of the Total wall
// time the top-level stages account for. Returns the end function; nil-safe.
func (p *StageProfiler) Total() func() {
	if p == nil {
		return noopEnd
	}
	start := time.Now()
	p.mu.Lock()
	p.totalStart = start
	p.mu.Unlock()
	return func() { p.totalNS.Store(time.Since(start).Nanoseconds()) }
}

// Stage brackets one top-level section. The returned end function records
// the wall time plus the allocation and GC-pause deltas across the bracket.
// Occurrences of the same name accumulate. Nil-safe.
func (p *StageProfiler) Stage(name string) func() {
	if p == nil {
		return noopEnd
	}
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	return func() {
		wall := time.Since(start)
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		p.add(name, false, wall.Nanoseconds(),
			m1.TotalAlloc-m0.TotalAlloc, m1.Mallocs-m0.Mallocs, m1.PauseTotalNs-m0.PauseTotalNs)
	}
}

// StageAgg brackets one occurrence of concurrent work: busy time sums
// across workers, no allocation deltas, excluded from coverage. Nil-safe.
func (p *StageProfiler) StageAgg(name string) func() {
	if p == nil {
		return noopEnd
	}
	start := time.Now()
	return func() { p.add(name, true, time.Since(start).Nanoseconds(), 0, 0, 0) }
}

func (p *StageProfiler) add(name string, aggregate bool, wallNS int64, allocB, mallocs, gcPauseNS uint64) {
	p.mu.Lock()
	acc := p.stages[name]
	if acc == nil {
		acc = &stageAcc{aggregate: aggregate}
		p.stages[name] = acc
		p.order = append(p.order, name)
	}
	acc.count++
	acc.wallNS += wallNS
	acc.allocB += allocB
	acc.mallocs += mallocs
	acc.gcPauseNS += gcPauseNS
	p.mu.Unlock()
}

// StageRecord is one stage's accumulated attribution.
type StageRecord struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	// WallSeconds is the summed bracket time: elapsed wall clock for
	// top-level stages, summed per-worker busy time for aggregate ones.
	WallSeconds float64 `json:"wall_seconds"`
	// AllocBytes / Mallocs are the heap-allocation deltas across the
	// brackets (process-global: concurrent allocators are attributed to
	// whichever top-level stage was open). Zero for aggregate stages.
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	// GCPauseSeconds is the stop-the-world pause time that fell inside the
	// brackets. Zero for aggregate stages.
	GCPauseSeconds float64 `json:"gc_pause_seconds"`
	// Aggregate marks concurrent busy-time stages (excluded from coverage).
	Aggregate bool `json:"aggregate,omitempty"`
}

// StageProfile is the exported profiler state (the arrow-report
// "Performance" section and the /bench history entries embed it).
type StageProfile struct {
	// TotalSeconds is the Total() bracket (0 when Total was never closed).
	TotalSeconds float64 `json:"total_seconds"`
	// Coverage is the share of TotalSeconds the top-level stages account
	// for (0 without a Total bracket). The report gate requires >= 0.9.
	Coverage float64       `json:"coverage"`
	Stages   []StageRecord `json:"stages"`
}

// Snapshot exports the accumulated attribution, stages in first-seen
// order. Nil-safe (returns an empty profile).
func (p *StageProfiler) Snapshot() *StageProfile {
	sp := &StageProfile{}
	if p == nil {
		return sp
	}
	sp.TotalSeconds = float64(p.totalNS.Load()) / 1e9
	p.mu.Lock()
	defer p.mu.Unlock()
	topNS := int64(0)
	for _, name := range p.order {
		acc := p.stages[name]
		sp.Stages = append(sp.Stages, StageRecord{
			Name: name, Count: acc.count,
			WallSeconds:    float64(acc.wallNS) / 1e9,
			AllocBytes:     acc.allocB,
			Mallocs:        acc.mallocs,
			GCPauseSeconds: float64(acc.gcPauseNS) / 1e9,
			Aggregate:      acc.aggregate,
		})
		if !acc.aggregate {
			topNS += acc.wallNS
		}
	}
	if total := p.totalNS.Load(); total > 0 {
		sp.Coverage = float64(topNS) / float64(total)
	}
	return sp
}

// PublishGauges exports the profile onto a Recorder as bench.stage.*
// gauges (plus bench.stage_total_seconds / bench.stage_coverage), putting
// stage attribution on the same Prometheus//metrics plane as everything
// else. Nil-safe in both arguments.
func (p *StageProfiler) PublishGauges(rec Recorder) {
	if p == nil || rec == nil {
		return
	}
	sp := p.Snapshot()
	rec.Gauge("bench.stage_total_seconds", sp.TotalSeconds)
	rec.Gauge("bench.stage_coverage", sp.Coverage)
	for _, st := range sp.Stages {
		rec.Gauge(fmt.Sprintf("bench.stage.%s.wall_seconds", st.Name), st.WallSeconds)
		if !st.Aggregate {
			rec.Gauge(fmt.Sprintf("bench.stage.%s.alloc_bytes", st.Name), float64(st.AllocBytes))
			rec.Gauge(fmt.Sprintf("bench.stage.%s.gc_pause_seconds", st.Name), st.GCPauseSeconds)
		}
	}
}

// SortedByWall returns the stages sorted by descending wall time
// (top-level stages first, aggregates after), for table rendering.
func (sp *StageProfile) SortedByWall() []StageRecord {
	out := append([]StageRecord(nil), sp.Stages...)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Aggregate != out[b].Aggregate {
			return !out[a].Aggregate
		}
		return out[a].WallSeconds > out[b].WallSeconds
	})
	return out
}
