package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestLateHistogramRegistrationSurfaced is the regression test for the
// silently-ignored late RegisterHistogram: custom bounds that arrive after
// the first Observe cannot take effect (rebucketing is impossible), but the
// mistake must be visible in obs.late_hist_registrations rather than lost.
func TestLateHistogramRegistrationSurfaced(t *testing.T) {
	reg := NewRegistry()

	// Early registration: custom bounds apply.
	reg.RegisterHistogram("early", []float64{1, 10})
	reg.Observe("early", 5)
	if got := reg.Counter("obs.late_hist_registrations"); got != 0 {
		t.Fatalf("early registration counted as late: %d", got)
	}

	// Late registration: histogram already live, bounds keep their shape.
	reg.Observe("late", 5)
	reg.RegisterHistogram("late", []float64{1, 10})
	reg.Observe("late", 5)

	snap := reg.Snapshot()
	if got := snap.Counters["obs.late_hist_registrations"]; got != 1 {
		t.Errorf("obs.late_hist_registrations = %d, want 1", got)
	}
	if got := len(snap.Histograms["early"].Bounds); got != 2 {
		t.Errorf("early histogram has %d bounds, want the 2 custom ones", got)
	}
	if got := len(snap.Histograms["late"].Bounds); got == 2 {
		t.Error("late registration rebucketed a live histogram")
	}
	if snap.Histograms["late"].Count != 2 {
		t.Errorf("late histogram lost samples: count %d", snap.Histograms["late"].Count)
	}

	// Registering twice before any Observe: second wins, still not late.
	reg.RegisterHistogram("re", []float64{1})
	reg.RegisterHistogram("re", []float64{1, 2, 3})
	reg.Observe("re", 2)
	snap = reg.Snapshot()
	if got := len(snap.Histograms["re"].Bounds); got != 3 {
		t.Errorf("re-registration before first Observe: %d bounds, want 3", got)
	}
	if got := snap.Counters["obs.late_hist_registrations"]; got != 1 {
		t.Errorf("pre-Observe re-registration counted as late: %d", got)
	}
}

// TestStripedCountersConcurrent checks the sharded Add path loses no
// increments and that Snapshot/Counter agree, under the worker count the
// pipeline actually runs at.
func TestStripedCountersConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 2000
	// A mix of core keys (pre-seeded) and dynamic keys across shards.
	keys := []string{
		"lp.pivots", "lp.solves", "mip.nodes", "ticket.generated",
		"dyn.a", "dyn.b", "dyn.c", "dyn.d",
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Add(keys[i%len(keys)], 1)
			}
		}()
	}
	wg.Wait()

	snap := reg.Snapshot()
	var total int64
	for _, k := range keys {
		v := snap.Counters[k]
		total += v
		if got := reg.Counter(k); got != v {
			t.Errorf("Counter(%q)=%d disagrees with snapshot %d", k, got, v)
		}
	}
	if want := int64(workers * perWorker); total != want {
		t.Errorf("lost increments: total %d, want %d", total, want)
	}
	if snap.Counters["lp.warm_starts"] != 0 {
		t.Error("untouched core counter drifted")
	}
}

// TestShardIndexStable pins the shard function's range; the distribution
// itself is not load-bearing, only that every name maps into [0, shards).
func TestShardIndexStable(t *testing.T) {
	for _, name := range CoreCounters {
		i := shardIndex(name)
		if i < 0 || i >= counterShards {
			t.Fatalf("shardIndex(%q) = %d out of range", name, i)
		}
		if j := shardIndex(name); j != i {
			t.Fatalf("shardIndex(%q) unstable: %d vs %d", name, i, j)
		}
	}
}

// singleLockCounters is the pre-striping design: one mutex guarding one
// map. It exists only as the benchmark baseline so the striping win stays
// measurable in-tree.
type singleLockCounters struct {
	mu sync.Mutex
	m  map[string]int64
}

func (c *singleLockCounters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// BenchmarkRegistryContention measures the hot Add path under the parallel
// pipeline's worker fan-out (run with -cpu 8 for the headline number):
//
//	go test ./internal/obs -bench RegistryContention -cpu 8
//
// The striped registry is compared against the single-mutex baseline it
// replaced.
func BenchmarkRegistryContention(b *testing.B) {
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("lp.bench.counter%02d", i)
	}
	b.Run("striped", func(b *testing.B) {
		reg := NewRegistry()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				reg.Add(keys[i&15], 1)
				i++
			}
		})
	})
	b.Run("single-mutex", func(b *testing.B) {
		base := &singleLockCounters{m: map[string]int64{}}
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				base.Add(keys[i&15], 1)
				i++
			}
		})
	})
}
