package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is a running diagnostics listener (see Serve).
type DebugServer struct {
	srv  *http.Server
	addr string
	done chan struct{}
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.addr }

// Close shuts the listener down immediately.
func (d *DebugServer) Close() { d.srv.Close() }

// Done is closed once a ServeContext listener has finished shutting down
// after its context was cancelled. For plain Serve listeners it never
// closes.
func (d *DebugServer) Done() <-chan struct{} { return d.done }

// Serve starts the diagnostics HTTP listener on addr:
//
//	/debug/pprof/...  net/http/pprof (profile, heap, goroutine, trace, ...)
//	/debug/vars       expvar (memstats, cmdline)
//	/metrics          live JSON snapshot of reg (404 when reg is nil)
//
// Binding failures are reported immediately rather than from the serving
// goroutine.
func Serve(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if reg == nil {
			http.Error(w, "metrics registry disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns once closed
	return &DebugServer{srv: srv, addr: ln.Addr().String(), done: make(chan struct{})}, nil
}

// ServeContext starts the diagnostics listener like Serve and additionally
// shuts it down gracefully (in-flight requests drain, bounded by a 5 s
// deadline) when ctx is cancelled. Done() closes once shutdown completes.
func ServeContext(ctx context.Context, addr string, reg *Registry) (*DebugServer, error) {
	d, err := Serve(addr, reg)
	if err != nil {
		return nil, err
	}
	go func() {
		defer close(d.done)
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d.srv.Shutdown(sctx) //nolint:errcheck // best-effort drain; Close is the fallback
	}()
	return d, nil
}
