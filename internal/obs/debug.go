package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// DebugServer is a running diagnostics listener (see Serve / ServeWith).
type DebugServer struct {
	srv  *http.Server
	addr string
	done chan struct{}
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.addr }

// Close shuts the listener down immediately.
func (d *DebugServer) Close() { d.srv.Close() }

// Done is closed once a ServeContext listener has finished shutting down
// after its context was cancelled. For plain Serve listeners it never
// closes.
func (d *DebugServer) Done() <-chan struct{} { return d.done }

// ServeOpts selects the export surfaces of a debug listener. Every field
// is optional; zero fields disable their endpoints (404).
type ServeOpts struct {
	// Registry backs /metrics (JSON and Prometheus text) and /healthz.
	Registry *Registry
	// Events backs the /events SSE stream (wire a ledger with a one-line
	// adapter; see EventSource).
	Events EventSource
	// Sampler backs /timeseries with its ring-buffer window. The caller
	// owns the sampler's Start/Stop lifecycle.
	Sampler *Sampler
	// Bench backs /bench: called per request, it returns the latest
	// benchmark state to serialise (typically the current *bench.Entry or
	// a history slice). Declared as any to keep obs free of a bench
	// dependency.
	Bench func() any
	// Attribution backs /attribution: called per request, it returns the
	// latest availability-attribution report to serialise (typically the
	// current *attr.Report). Declared as any to keep obs free of an attr
	// dependency.
	Attribution func() any
}

// wantProm reports whether the request negotiated the Prometheus text
// exposition: either ?format=prom (explicit, scrape-config friendly) or an
// Accept header preferring text/plain (the Prometheus scraper sends
// "text/plain;version=0.0.4" variants) or OpenMetrics.
func wantProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// ServeWith starts the diagnostics HTTP listener on addr:
//
//	/debug/pprof/...  net/http/pprof (profile, heap, goroutine, trace, ...)
//	/debug/vars       expvar (memstats, cmdline)
//	/metrics          live snapshot of the registry: JSON by default,
//	                  Prometheus text exposition with ?format=prom or an
//	                  Accept header preferring text/plain
//	/healthz          aggregated solver anomaly state (200 healthy / 503)
//	/events           SSE stream of ledger events (slow clients drop)
//	/timeseries       sampler ring-buffer window as JSON
//	/bench            latest benchmark harness state as JSON
//	/attribution      latest availability-attribution report as JSON
//
// Binding failures are reported immediately rather than from the serving
// goroutine.
func ServeWith(addr string, opts ServeOpts) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	reg := opts.Registry
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.Error(w, "metrics registry disabled", http.StatusNotFound)
			return
		}
		if wantProm(r) {
			w.Header().Set("Content-Type", PromContentType)
			if err := WritePromText(w, reg.Snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", healthzHandler(reg))
	mux.HandleFunc("/events", sseHandler(opts.Events, reg))
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Sampler == nil {
			http.Error(w, "sampler disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := opts.Sampler.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/bench", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Bench == nil {
			http.Error(w, "bench source disabled", http.StatusNotFound)
			return
		}
		state := opts.Bench()
		if state == nil {
			http.Error(w, "no benchmark run recorded yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(state); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/attribution", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Attribution == nil {
			http.Error(w, "attribution source disabled", http.StatusNotFound)
			return
		}
		state := opts.Attribution()
		if state == nil {
			http.Error(w, "no attribution pass recorded yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(state); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns once closed
	return &DebugServer{srv: srv, addr: ln.Addr().String(), done: make(chan struct{})}, nil
}

// Serve starts the diagnostics listener with only the registry surfaces
// enabled (the original debug-server shape; see ServeWith for the full
// export plane).
func Serve(addr string, reg *Registry) (*DebugServer, error) {
	return ServeWith(addr, ServeOpts{Registry: reg})
}

// ServeContext starts the diagnostics listener like ServeWith and
// additionally shuts it down gracefully (in-flight requests drain, bounded
// by a 5 s deadline) when ctx is cancelled. Done() closes once shutdown
// completes.
func ServeContext(ctx context.Context, addr string, reg *Registry) (*DebugServer, error) {
	return ServeContextWith(ctx, addr, ServeOpts{Registry: reg})
}

// ServeContextWith is ServeWith plus graceful context-driven shutdown.
func ServeContextWith(ctx context.Context, addr string, opts ServeOpts) (*DebugServer, error) {
	d, err := ServeWith(addr, opts)
	if err != nil {
		return nil, err
	}
	go func() {
		defer close(d.done)
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d.srv.Shutdown(sctx) //nolint:errcheck // best-effort drain; Close is the fallback
	}()
	return d, nil
}
