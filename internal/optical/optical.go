// Package optical models the optical layer of a WAN as described in §2 of
// the ARROW paper: ROADM sites connected by fibers, each fiber carrying
// DWDM wavelengths on a slotted spectrum, and IP links (port-channels)
// provisioned as bundles of wavelengths riding fiber paths.
//
// The model supports the cross-layer queries ARROW needs: which IP links
// fail when a fiber is cut, what spectrum is usable on surviving fibers
// (accounting for slots released by the failed wavelengths themselves), and
// the restoration ratio U_phi of §2.3.
package optical

import (
	"fmt"
	"sync"

	"github.com/arrow-te/arrow/internal/graph"
	"github.com/arrow-te/arrow/internal/spectrum"
)

// ROADM identifies an optical site.
type ROADM int

// Fiber is one optical fiber link between two ROADMs.
type Fiber struct {
	ID       int
	A, B     ROADM
	LengthKm float64
	// Slots tracks spectrum availability: set bit = free slot.
	Slots *spectrum.Bitmap
}

// Lightpath is one provisioned wavelength of an IP link: a spectrum slot
// carried over a sequence of fibers entirely in the optical domain.
type Lightpath struct {
	Slot       int
	Modulation spectrum.Modulation
	FiberPath  []int // fiber IDs
}

// IPLink is a port-channel between two sites, realised by one or more
// wavelengths (Fig. 1 of the paper).
type IPLink struct {
	ID       int
	Src, Dst ROADM
	Waves    []Lightpath
}

// CapacityGbps is the healthy-state provisioned capacity W_phi contribution
// of this link: the sum of its wavelengths' data rates.
func (l *IPLink) CapacityGbps() float64 {
	c := 0.0
	for _, w := range l.Waves {
		c += w.Modulation.GbpsPerWavelength
	}
	return c
}

// UsesFiber reports whether any wavelength of the link traverses fiber id.
func (l *IPLink) UsesFiber(id int) bool {
	for _, w := range l.Waves {
		for _, f := range w.FiberPath {
			if f == id {
				return true
			}
		}
	}
	return false
}

// Network is an optical-layer topology with its provisioned IP links.
type Network struct {
	NumROADMs int
	Fibers    []*Fiber
	IPLinks   []*IPLink
	SlotCount int

	// gMu guards the lazily-built g: concurrent per-scenario RWA solves
	// (the parallel offline stage) all call Graph() on the shared network.
	gMu sync.Mutex
	g   *graph.Graph // ROADM graph; edge label = fiber ID, weight = km
}

// NewNetwork creates an empty network with n ROADM sites and the given
// number of spectrum slots per fiber.
func NewNetwork(nROADMs, slotCount int) *Network {
	return &Network{NumROADMs: nROADMs, SlotCount: slotCount}
}

// AddFiber adds a fiber between two ROADMs with all slots initially free.
func (n *Network) AddFiber(a, b ROADM, lengthKm float64) *Fiber {
	f := &Fiber{ID: len(n.Fibers), A: a, B: b, LengthKm: lengthKm, Slots: spectrum.AllAvailable(n.SlotCount)}
	n.Fibers = append(n.Fibers, f)
	n.gMu.Lock()
	n.g = nil
	n.gMu.Unlock()
	return f
}

// Graph returns (building lazily) the optical graph over ROADMs: one pair of
// directed edges per fiber, labelled with the fiber ID and weighted by km.
// Safe for concurrent use once the topology is no longer being mutated.
func (n *Network) Graph() *graph.Graph {
	n.gMu.Lock()
	defer n.gMu.Unlock()
	if n.g == nil {
		g := graph.New(n.NumROADMs)
		for _, f := range n.Fibers {
			g.AddBiEdge(graph.Node(f.A), graph.Node(f.B), f.LengthKm, f.ID)
		}
		n.g = g
	}
	return n.g
}

// PathLengthKm sums the lengths of the fibers in path.
func (n *Network) PathLengthKm(path []int) float64 {
	km := 0.0
	for _, id := range path {
		km += n.Fibers[id].LengthKm
	}
	return km
}

// Provision creates an IP link between src and dst with the given
// wavelengths. Each lightpath's slot is claimed on every fiber of its path;
// it is an error if a slot is already occupied (frequency collision) or a
// path is disconnected.
func (n *Network) Provision(src, dst ROADM, waves []Lightpath) (*IPLink, error) {
	for wi, w := range waves {
		if err := n.checkPath(src, dst, w.FiberPath); err != nil {
			return nil, fmt.Errorf("wavelength %d: %w", wi, err)
		}
		for _, fid := range w.FiberPath {
			if !n.Fibers[fid].Slots.Available(w.Slot) {
				return nil, fmt.Errorf("wavelength %d: slot %d already occupied on fiber %d", wi, w.Slot, fid)
			}
		}
	}
	for _, w := range waves {
		for _, fid := range w.FiberPath {
			n.Fibers[fid].Slots.Set(w.Slot, false)
		}
	}
	l := &IPLink{ID: len(n.IPLinks), Src: src, Dst: dst, Waves: waves}
	n.IPLinks = append(n.IPLinks, l)
	return l, nil
}

// checkPath validates that path is a connected fiber walk from src to dst.
func (n *Network) checkPath(src, dst ROADM, path []int) error {
	if len(path) == 0 {
		return fmt.Errorf("empty fiber path")
	}
	at := src
	for _, fid := range path {
		if fid < 0 || fid >= len(n.Fibers) {
			return fmt.Errorf("unknown fiber %d", fid)
		}
		f := n.Fibers[fid]
		switch at {
		case f.A:
			at = f.B
		case f.B:
			at = f.A
		default:
			return fmt.Errorf("fiber %d does not touch ROADM %d", fid, at)
		}
	}
	if at != dst {
		return fmt.Errorf("path ends at ROADM %d, not %d", at, dst)
	}
	return nil
}

// FailedLinks returns the IDs of IP links that lose at least one wavelength
// when the given fibers are cut. Per §6 ("when a fiber fails, all IP links
// on this fiber fail simultaneously"), a link that traverses any cut fiber
// is considered failed.
func (n *Network) FailedLinks(cut []int) []int {
	cutSet := map[int]bool{}
	for _, id := range cut {
		cutSet[id] = true
	}
	var out []int
	for _, l := range n.IPLinks {
		if l == nil {
			continue // deprovisioned
		}
		failed := false
		for _, w := range l.Waves {
			for _, fid := range w.FiberPath {
				if cutSet[fid] {
					failed = true
					break
				}
			}
			if failed {
				break
			}
		}
		if failed {
			out = append(out, l.ID)
		}
	}
	return out
}

// SpectrumUnderCut returns, for every fiber, the spectrum available for
// restoration when the given fibers are cut: the healthy availability plus
// the slots released by wavelengths of failed IP links (those wavelengths
// are being torn down, so their slots on surviving fibers become usable).
// Cut fibers themselves are returned with no availability.
func (n *Network) SpectrumUnderCut(cut []int) []*spectrum.Bitmap {
	cutSet := map[int]bool{}
	for _, id := range cut {
		cutSet[id] = true
	}
	out := make([]*spectrum.Bitmap, len(n.Fibers))
	for i, f := range n.Fibers {
		if cutSet[i] {
			out[i] = spectrum.NewBitmap(n.SlotCount) // all unavailable
		} else {
			out[i] = f.Slots.Clone()
		}
	}
	for _, lid := range n.FailedLinks(cut) {
		for _, w := range n.IPLinks[lid].Waves {
			for _, fid := range w.FiberPath {
				if !cutSet[fid] {
					out[fid].Set(w.Slot, true)
				}
			}
		}
	}
	return out
}

// ProvisionedGbpsOnFiber returns W_phi: the total bandwidth of wavelengths
// that traverse fiber id.
func (n *Network) ProvisionedGbpsOnFiber(id int) float64 {
	total := 0.0
	for _, l := range n.IPLinks {
		if l == nil {
			continue // deprovisioned
		}
		for _, w := range l.Waves {
			for _, fid := range w.FiberPath {
				if fid == id {
					total += w.Modulation.GbpsPerWavelength
					break
				}
			}
		}
	}
	return total
}

// LinkByID returns the IP link with the given ID.
func (n *Network) LinkByID(id int) *IPLink { return n.IPLinks[id] }

// SpectrumUtilizations returns each fiber's spectrum utilisation (Fig. 5a).
func (n *Network) SpectrumUtilizations() []float64 {
	out := make([]float64, len(n.Fibers))
	for i, f := range n.Fibers {
		out[i] = f.Slots.Utilization()
	}
	return out
}

// Validate checks internal consistency: every provisioned wavelength's slot
// is marked occupied on every fiber it traverses, and no two lightpaths
// share a slot on a fiber.
func (n *Network) Validate() error {
	type claim struct{ link, wave int }
	claims := make(map[[2]int]claim) // (fiber, slot) -> claimant
	for _, l := range n.IPLinks {
		if l == nil {
			continue // deprovisioned
		}
		for wi, w := range l.Waves {
			if err := n.checkPath(l.Src, l.Dst, w.FiberPath); err != nil {
				return fmt.Errorf("link %d wavelength %d: %w", l.ID, wi, err)
			}
			for _, fid := range w.FiberPath {
				key := [2]int{fid, w.Slot}
				if prev, ok := claims[key]; ok {
					return fmt.Errorf("fiber %d slot %d claimed by links %d and %d", fid, w.Slot, prev.link, l.ID)
				}
				claims[key] = claim{l.ID, wi}
				if n.Fibers[fid].Slots.Available(w.Slot) {
					return fmt.Errorf("fiber %d slot %d carries link %d but is marked free", fid, w.Slot, l.ID)
				}
			}
		}
	}
	return nil
}

// Deprovision removes an IP link, releasing its wavelengths' slots on every
// fiber of their paths. Later links keep their IDs (the slot is left nil),
// so existing references stay valid; LinkByID returns nil for removed IDs.
func (n *Network) Deprovision(id int) error {
	if id < 0 || id >= len(n.IPLinks) || n.IPLinks[id] == nil {
		return fmt.Errorf("optical: no IP link %d", id)
	}
	l := n.IPLinks[id]
	for _, w := range l.Waves {
		for _, fid := range w.FiberPath {
			n.Fibers[fid].Slots.Set(w.Slot, true)
		}
	}
	n.IPLinks[id] = nil
	return nil
}

// PortCount returns the provisioned router ports (equivalently, DWDM
// transponders — the mapping is 1-to-1 per Fig. 1 of the paper): one at
// each end of every wavelength.
func (n *Network) PortCount() int {
	total := 0
	for _, l := range n.IPLinks {
		if l == nil {
			continue
		}
		total += 2 * len(l.Waves)
	}
	return total
}

// IdlePortsUnderCut returns how many router ports / transponders sit idle
// when the given fibers are cut and nothing is restored — the waste that
// motivates ARROW (§1: "when a fiber is cut, the router ports and
// transponders associated with that fiber are still usable").
func (n *Network) IdlePortsUnderCut(cut []int) int {
	idle := 0
	for _, lid := range n.FailedLinks(cut) {
		idle += 2 * len(n.IPLinks[lid].Waves)
	}
	return idle
}
