package optical

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/arrow-te/arrow/internal/spectrum"
)

// randomNetwork provisions a random but always-valid network: a ring of
// fibers plus random single-fiber and two-fiber IP links.
func randomNetwork(rng *rand.Rand) *Network {
	sites := 3 + rng.Intn(5)
	slots := 4 + rng.Intn(12)
	n := NewNetwork(sites, slots)
	for i := 0; i < sites; i++ {
		n.AddFiber(ROADM(i), ROADM((i+1)%sites), 100+rng.Float64()*900)
	}
	mod := spectrum.Table6[rng.Intn(len(spectrum.Table6))]
	tries := 2 + rng.Intn(8)
	for i := 0; i < tries; i++ {
		f1 := rng.Intn(sites)
		var path []int
		src := n.Fibers[f1].A
		dst := n.Fibers[f1].B
		path = []int{f1}
		if rng.Intn(2) == 0 { // extend to a two-fiber path along the ring
			f2 := (f1 + 1) % sites
			if n.Fibers[f2].A == dst || n.Fibers[f2].B == dst {
				path = append(path, f2)
				if n.Fibers[f2].A == dst {
					dst = n.Fibers[f2].B
				} else {
					dst = n.Fibers[f2].A
				}
			}
		}
		waves := 1 + rng.Intn(3)
		var bms []*spectrum.Bitmap
		for _, f := range path {
			bms = append(bms, n.Fibers[f].Slots)
		}
		common := spectrum.PathSpectrum(bms)
		var ws []Lightpath
		for s := 0; s < common.Len() && len(ws) < waves; s++ {
			if common.Available(s) {
				ws = append(ws, Lightpath{Slot: s, Modulation: mod, FiberPath: path})
			}
		}
		if len(ws) == 0 {
			continue
		}
		if _, err := n.Provision(src, dst, ws); err != nil {
			panic(err) // slots were checked free; Provision must accept
		}
	}
	return n
}

// TestPropertyRandomNetworksValid: any provisioning sequence built from
// free slots yields a Validate-clean network whose per-fiber bookkeeping
// matches the links.
func TestPropertyRandomNetworksValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		if err := n.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Sum of per-fiber provisioned Gbps equals sum over links of
		// capacity*pathlen.
		var byFiber, byLink float64
		for fid := range n.Fibers {
			byFiber += n.ProvisionedGbpsOnFiber(fid)
		}
		for _, l := range n.IPLinks {
			for _, w := range l.Waves {
				byLink += w.Modulation.GbpsPerWavelength * float64(len(w.FiberPath))
			}
		}
		return byFiber == byLink
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySpectrumUnderCutReleasesOnlyFailedWaves: the spectrum freed
// by a cut is exactly the failed wavelengths' slots on surviving fibers.
func TestPropertySpectrumUnderCutReleasesOnlyFailedWaves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		if len(n.Fibers) == 0 {
			return true
		}
		cut := rng.Intn(len(n.Fibers))
		spec := n.SpectrumUnderCut([]int{cut})
		failedSet := map[int]bool{}
		for _, lid := range n.FailedLinks([]int{cut}) {
			failedSet[lid] = true
		}
		for fid, f2 := range n.Fibers {
			if fid == cut {
				if spec[fid].Count() != 0 {
					return false
				}
				continue
			}
			for s := 0; s < n.SlotCount; s++ {
				before := f2.Slots.Available(s)
				after := spec[fid].Available(s)
				if before && !after {
					return false // a cut can only free slots, never consume
				}
				if !before && after {
					// Must belong to a failed link's wavelength on this fiber.
					found := false
					for _, l := range n.IPLinks {
						if !failedSet[l.ID] {
							continue
						}
						for _, w := range l.Waves {
							if w.Slot != s {
								continue
							}
							for _, pf := range w.FiberPath {
								if pf == fid {
									found = true
								}
							}
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
