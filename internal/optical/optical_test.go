package optical

import (
	"testing"

	"github.com/arrow-te/arrow/internal/spectrum"
)

// square builds the 4-node network of the paper's Fig. 2: ROADMs A=0, B=1,
// C=2, D=3 with fibers AB, BC, AD(=DA), DC and an extra AC passthrough link
// provisioned via D.
func square(t *testing.T) (*Network, *IPLink, *IPLink) {
	t.Helper()
	n := NewNetwork(4, 8)
	n.AddFiber(0, 1, 1000) // 0: A-B
	n.AddFiber(1, 2, 1000) // 1: B-C
	n.AddFiber(0, 3, 800)  // 2: A-D
	n.AddFiber(3, 2, 800)  // 3: D-C
	mod := spectrum.Table6[0]
	// IP1: A<->C via D (passthrough, two wavelengths).
	ip1, err := n.Provision(0, 2, []Lightpath{
		{Slot: 0, Modulation: mod, FiberPath: []int{2, 3}},
		{Slot: 1, Modulation: mod, FiberPath: []int{2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// IP2: D<->C direct.
	ip2, err := n.Provision(3, 2, []Lightpath{
		{Slot: 2, Modulation: mod, FiberPath: []int{3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n, ip1, ip2
}

func TestProvisionAndCapacity(t *testing.T) {
	n, ip1, ip2 := square(t)
	if got := ip1.CapacityGbps(); got != 200 {
		t.Fatalf("ip1 capacity %g", got)
	}
	if got := ip2.CapacityGbps(); got != 100 {
		t.Fatalf("ip2 capacity %g", got)
	}
	// Fiber DC (id 3) carries both links: 300 Gbps provisioned.
	if got := n.ProvisionedGbpsOnFiber(3); got != 300 {
		t.Fatalf("fiber DC provisioned %g", got)
	}
	if got := n.ProvisionedGbpsOnFiber(0); got != 0 {
		t.Fatalf("fiber AB provisioned %g", got)
	}
}

func TestProvisionCollisionRejected(t *testing.T) {
	n, _, _ := square(t)
	// Slot 0 on fiber 3 is taken by ip1.
	_, err := n.Provision(3, 2, []Lightpath{{Slot: 0, Modulation: spectrum.Table6[0], FiberPath: []int{3}}})
	if err == nil {
		t.Fatal("expected frequency collision error")
	}
}

func TestProvisionBadPathRejected(t *testing.T) {
	n, _, _ := square(t)
	// Path 0 (A-B) does not end at C.
	if _, err := n.Provision(0, 2, []Lightpath{{Slot: 5, Modulation: spectrum.Table6[0], FiberPath: []int{0}}}); err == nil {
		t.Fatal("expected disconnected-path error")
	}
	// Empty path.
	if _, err := n.Provision(0, 2, []Lightpath{{Slot: 5, Modulation: spectrum.Table6[0], FiberPath: nil}}); err == nil {
		t.Fatal("expected empty-path error")
	}
}

func TestFailedLinks(t *testing.T) {
	n, ip1, ip2 := square(t)
	// Cutting fiber DC (3) kills both links.
	failed := n.FailedLinks([]int{3})
	if len(failed) != 2 {
		t.Fatalf("failed %v", failed)
	}
	// Cutting fiber AD (2) kills only ip1.
	failed = n.FailedLinks([]int{2})
	if len(failed) != 1 || failed[0] != ip1.ID {
		t.Fatalf("failed %v", failed)
	}
	// Cutting fiber AB (0) kills nothing.
	if failed = n.FailedLinks([]int{0}); failed != nil {
		t.Fatalf("failed %v", failed)
	}
	_ = ip2
}

func TestSpectrumUnderCut(t *testing.T) {
	n, _, _ := square(t)
	spec := n.SpectrumUnderCut([]int{3})
	// Cut fiber has nothing available.
	if spec[3].Count() != 0 {
		t.Fatalf("cut fiber shows %d available slots", spec[3].Count())
	}
	// Fiber AD (2) carried ip1's two wavelengths; they are released, so all
	// 8 slots are available again.
	if spec[2].Count() != 8 {
		t.Fatalf("fiber AD has %d available slots, want 8", spec[2].Count())
	}
	// Fiber AB (0) was untouched: all 8 free.
	if spec[0].Count() != 8 {
		t.Fatalf("fiber AB has %d available slots, want 8", spec[0].Count())
	}
}

func TestSpectrumUnderCutKeepsWorkingWaves(t *testing.T) {
	n, _, _ := square(t)
	// Add a working link on fiber AB that must NOT be released.
	if _, err := n.Provision(0, 1, []Lightpath{{Slot: 7, Modulation: spectrum.Table6[0], FiberPath: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	spec := n.SpectrumUnderCut([]int{3})
	if spec[0].Available(7) {
		t.Fatal("working wavelength slot was incorrectly released")
	}
	if spec[0].Count() != 7 {
		t.Fatalf("fiber AB available %d, want 7", spec[0].Count())
	}
}

func TestUtilization(t *testing.T) {
	n, _, _ := square(t)
	u := n.SpectrumUtilizations()
	// Fiber DC: slots 0,1,2 occupied of 8 -> 3/8.
	if u[3] != 3.0/8 {
		t.Fatalf("fiber DC utilization %g", u[3])
	}
	if u[0] != 0 {
		t.Fatalf("fiber AB utilization %g", u[0])
	}
}

func TestGraphConstruction(t *testing.T) {
	n, _, _ := square(t)
	g := n.Graph()
	if g.NumNodes() != 4 || g.NumEdges() != 8 {
		t.Fatalf("graph %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	// Shortest A->C is via D: 1600 km.
	p, ok := g.ShortestPath(0, 2, nil)
	if !ok || p.Weight != 1600 {
		t.Fatalf("A->C path %+v", p)
	}
	if n.PathLengthKm([]int{2, 3}) != 1600 {
		t.Fatal("PathLengthKm mismatch")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	n, ip1, _ := square(t)
	// Corrupt: mark an occupied slot as free.
	n.Fibers[ip1.Waves[0].FiberPath[0]].Slots.Set(ip1.Waves[0].Slot, true)
	if err := n.Validate(); err == nil {
		t.Fatal("expected validation failure")
	}
}

func TestDeprovisionReleasesSlots(t *testing.T) {
	n, ip1, ip2 := square(t)
	if err := n.Deprovision(ip1.ID); err != nil {
		t.Fatal(err)
	}
	// ip1's slots 0 and 1 on fibers AD (2) and DC (3) are free again.
	for _, f := range []int{2, 3} {
		for _, s := range []int{0, 1} {
			if !n.Fibers[f].Slots.Available(s) {
				t.Fatalf("fiber %d slot %d still occupied", f, s)
			}
		}
	}
	// ip2 untouched.
	if n.Fibers[3].Slots.Available(2) {
		t.Fatal("ip2's slot was incorrectly released")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// FailedLinks no longer reports the removed link.
	if failed := n.FailedLinks([]int{3}); len(failed) != 1 || failed[0] != ip2.ID {
		t.Fatalf("failed %v", failed)
	}
	// Double-deprovision and bad IDs are errors.
	if err := n.Deprovision(ip1.ID); err == nil {
		t.Fatal("double deprovision accepted")
	}
	if err := n.Deprovision(99); err == nil {
		t.Fatal("unknown link accepted")
	}
	// The released spectrum is reusable.
	if _, err := n.Provision(0, 2, []Lightpath{{Slot: 0, Modulation: spectrum.Table6[0], FiberPath: []int{2, 3}}}); err != nil {
		t.Fatalf("re-provision after release: %v", err)
	}
}
