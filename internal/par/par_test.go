package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Fatalf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got, err := Map(context.Background(), workers, 40, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("index %d failed", i) }
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 32, func(_ context.Context, i int) error {
			if i == 7 || i == 23 {
				return errAt(i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		// Index 7 is dispatched before 23 and must be the reported error
		// (sequential mode stops there; parallel mode keeps the lowest).
		if err.Error() != "index 7 failed" {
			t.Fatalf("workers=%d: got %q, want index 7's error", workers, err)
		}
	}
}

func TestForEachErrorStopsDispatch(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int32
	err := ForEach(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		if i == 0 {
			return boom
		}
		after.Add(1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	// With 2 workers and cancellation on the very first index, only a
	// handful of in-flight indices may still run — never anything close to
	// the full range.
	if c := after.Load(); c > 100 {
		t.Fatalf("%d indices ran after the failing one; dispatch did not stop", c)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 4, 10000, func(ctx context.Context, i int) error {
			started.Add(1)
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Millisecond):
			}
			return nil
		})
	}()
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return promptly after cancellation")
	}
}

// TestForEachNoGoroutineLeak pins the pool-teardown guarantee: after
// ForEach returns (success, error, or cancellation), no worker goroutines
// remain.
func TestForEachNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		_ = ForEach(context.Background(), 8, 200, func(_ context.Context, i int) error {
			if i == 13 {
				return errors.New("fail")
			}
			return nil
		})
	}
	// Allow the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", base, runtime.NumGoroutine())
}

func TestMapSequentialMatchesParallel(t *testing.T) {
	slow, err := Map(context.Background(), 1, 100, func(_ context.Context, i int) (float64, error) {
		return float64(i) * 1.5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Map(context.Background(), 16, 100, func(_ context.Context, i int) (float64, error) {
		return float64(i) * 1.5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range slow {
		if slow[i] != fast[i] {
			t.Fatalf("index %d: sequential %v != parallel %v", i, slow[i], fast[i])
		}
	}
}
