// Package par is the shared parallel-execution layer for the offline
// stage's embarrassingly parallel loops (per-scenario RWA + LotteryTicket
// generation, per-scenario TE evaluation, independent experiment runs).
//
// The paper notes the offline optimization "can be parallelized per
// scenario" (§6.3): every unit of work is independent, already owns a
// deterministic per-index RNG seed, and writes into an index-addressed
// slot. This package supplies the one concurrency pattern all of those
// call sites share — a bounded worker pool over the index range [0, n)
// with ordered result collection, context cancellation, and first-error
// propagation — so the call sites stay free of goroutine plumbing and the
// results stay byte-identical to the sequential path.
//
// Determinism contract: fn(i) must depend only on i (plus read-only
// captured state). ForEach/Map make no ordering guarantees between
// indices, but Map returns results in index order and ForEach reports the
// error of the lowest failed index, so output never depends on the worker
// count or goroutine schedule.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a parallelism request: values <= 0 select
// runtime.NumCPU() (the default everywhere in this repo); 1 means fully
// sequential execution on the caller's goroutine.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach invokes fn(ctx, i) for every i in [0, n), distributing indices
// over at most workers goroutines (workers <= 0 selects NumCPU; workers
// is additionally capped at n). It returns when every started call has
// finished — no goroutines outlive the call.
//
// On the first error, the pool's context is cancelled and no new indices
// are dispatched; in-flight calls run to completion. The returned error
// is the one recorded at the lowest index, which makes error reporting
// independent of the goroutine schedule whenever a single deterministic
// index fails. If the parent context is cancelled before all indices
// complete, ctx.Err() is returned.
//
// workers == 1 runs fn sequentially in index order on the calling
// goroutine, restoring exactly the pre-parallel behaviour.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || pctx.Err() != nil {
					return
				}
				if err := fn(pctx, i); err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return ctx.Err()
}

// Map runs fn for every index in [0, n) on the bounded pool and collects
// the results in index order. On error the partial results are discarded
// and the lowest-index error is returned (same contract as ForEach).
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
