// Package par is the shared parallel-execution layer for the offline
// stage's embarrassingly parallel loops (per-scenario RWA + LotteryTicket
// generation, per-scenario TE evaluation, independent experiment runs).
//
// The paper notes the offline optimization "can be parallelized per
// scenario" (§6.3): every unit of work is independent, already owns a
// deterministic per-index RNG seed, and writes into an index-addressed
// slot. This package supplies the one concurrency pattern all of those
// call sites share — a bounded worker pool over the index range [0, n)
// with ordered result collection, context cancellation, and first-error
// propagation — so the call sites stay free of goroutine plumbing and the
// results stay byte-identical to the sequential path.
//
// Determinism contract: fn(i) must depend only on i (plus read-only
// captured state). ForEach/Map make no ordering guarantees between
// indices, but Map returns results in index order and ForEach reports the
// error of the lowest failed index, so output never depends on the worker
// count or goroutine schedule.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/arrow-te/arrow/internal/obs"
)

// Workers normalises a parallelism request: values <= 0 select
// runtime.NumCPU() (the default everywhere in this repo); 1 means fully
// sequential execution on the caller's goroutine.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach invokes fn(ctx, i) for every i in [0, n), distributing indices
// over at most workers goroutines (workers <= 0 selects NumCPU; workers
// is additionally capped at n). It returns when every started call has
// finished — no goroutines outlive the call.
//
// On the first error, the pool's context is cancelled and no new indices
// are dispatched; in-flight calls run to completion. The returned error
// is the one recorded at the lowest index, which makes error reporting
// independent of the goroutine schedule whenever a single deterministic
// index fails. If the parent context is cancelled before all indices
// complete, ctx.Err() is returned.
//
// workers == 1 runs fn sequentially in index order on the calling
// goroutine, restoring exactly the pre-parallel behaviour.
// Observability: when a Recorder travels in ctx (obs.WithRecorder), the
// pool counts dispatches (par.pools, par.tasks), times every task as a
// "par.task" span on a per-worker track, and accounts aggregate busy/idle
// time (par.busy_ns, par.idle_ns). Instrumentation only reads the clock —
// dispatch order, worker count and fn results are unaffected, and with no
// recorder in ctx the pool runs the exact pre-instrumentation code path.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	rec := obs.FromContext(ctx)
	var poolStart time.Time
	if rec != nil {
		rec.Add("par.pools", 1)
		rec.Add("par.tasks", int64(n))
		poolStart = time.Now()
	}
	if workers == 1 {
		var busy time.Duration
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if rec == nil {
				if err := fn(ctx, i); err != nil {
					return err
				}
				continue
			}
			t0 := time.Now()
			err := fn(ctx, i)
			d := time.Since(t0)
			busy += d
			rec.SpanDone("par.task", obs.TrackFrom(ctx), t0, d)
			if err != nil {
				return err
			}
		}
		if rec != nil {
			rec.Add("par.busy_ns", int64(busy))
			rec.Observe("par.worker_busy_seconds", busy.Seconds())
		}
		return nil
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var busyNS atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var track int64
			var workerBusy time.Duration
			if rec != nil {
				track = obs.NextTrack()
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n || pctx.Err() != nil {
					break
				}
				var err error
				if rec == nil {
					err = fn(pctx, i)
				} else {
					t0 := time.Now()
					rec.Observe("par.queue_wait_seconds", t0.Sub(poolStart).Seconds())
					err = fn(obs.WithTrack(pctx, track), i)
					d := time.Since(t0)
					workerBusy += d
					rec.SpanDone("par.task", track, t0, d)
				}
				if err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
				}
			}
			if rec != nil {
				busyNS.Add(int64(workerBusy))
				rec.Observe("par.worker_busy_seconds", workerBusy.Seconds())
			}
		}()
	}
	wg.Wait()
	if rec != nil {
		busy := busyNS.Load()
		idle := int64(workers)*int64(time.Since(poolStart)) - busy
		if idle < 0 {
			idle = 0
		}
		rec.Add("par.busy_ns", busy)
		rec.Add("par.idle_ns", idle)
	}
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return ctx.Err()
}

// Map runs fn for every index in [0, n) on the bounded pool and collects
// the results in index order. On error the partial results are discarded
// and the lowest-index error is returned (same contract as ForEach).
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
