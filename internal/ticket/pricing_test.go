package ticket

import "testing"

func TestPricingOraclePicksMostNegative(t *testing.T) {
	rc := []float64{-0.5, -3, -1, -3} // index 1 and 3 tie on value
	z, got := PricingOracle{}.Price(len(rc),
		func(int) bool { return true },
		func(z int) float64 { return rc[z] })
	if z != 1 || got != -3 {
		t.Fatalf("Price = (%d, %g), want (1, -3): ties must break to the lowest index", z, got)
	}
}

func TestPricingOracleSkipsNonDeferred(t *testing.T) {
	rc := []float64{-5, -4, -3}
	z, got := PricingOracle{}.Price(len(rc),
		func(z int) bool { return z == 2 }, // only index 2 still deferred
		func(z int) float64 { return rc[z] })
	if z != 2 || got != -3 {
		t.Fatalf("Price = (%d, %g), want (2, -3)", z, got)
	}
}

func TestPricingOracleEpsThreshold(t *testing.T) {
	// Reduced costs inside [-eps, 0) are floating-point residue on satisfied
	// rows, not candidates: the scenario must report priced out.
	z, rc := PricingOracle{}.Price(3,
		func(int) bool { return true },
		func(int) float64 { return -DefaultPricingEps / 2 })
	if z != -1 || rc != 0 {
		t.Fatalf("Price = (%d, %g), want (-1, 0) for sub-eps reduced costs", z, rc)
	}
	// A custom eps moves the threshold.
	z, rc = PricingOracle{Eps: 0.1}.Price(2,
		func(int) bool { return true },
		func(z int) float64 { return []float64{-0.05, -0.2}[z] })
	if z != 1 || rc != -0.2 {
		t.Fatalf("Price = (%d, %g), want (1, -0.2) with eps 0.1", z, rc)
	}
}

func TestPricingOraclePricedOut(t *testing.T) {
	// No deferred candidates at all, and nonnegative reduced costs, both
	// report priced out as (-1, 0).
	if z, rc := (PricingOracle{}).Price(4, func(int) bool { return false }, nil); z != -1 || rc != 0 {
		t.Fatalf("Price over empty deferred set = (%d, %g), want (-1, 0)", z, rc)
	}
	z, rc := PricingOracle{}.Price(3,
		func(int) bool { return true },
		func(z int) float64 { return float64(z) })
	if z != -1 || rc != 0 {
		t.Fatalf("Price = (%d, %g), want (-1, 0) when nothing is violated", z, rc)
	}
}
