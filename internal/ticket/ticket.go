// Package ticket implements ARROW's LotteryTicket abstraction (§3.2):
// partial restoration candidates generated from the relaxed RWA solution by
// repeated randomized rounding (Algorithm 1), the feasibility filter that
// drops candidates violating the optical constraints, and the probabilistic
// optimality guarantee of Theorem 3.1.
package ticket

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/rwa"
)

// Ticket is one LotteryTicket R^{z,q}: for each failed IP link of a
// scenario (in rwa.Result.Failed order), a restorable wavelength count and
// the corresponding bandwidth.
type Ticket struct {
	// Waves[i] is the restored wavelength count for failed link i.
	Waves []int
	// Gbps[i] = Waves[i] * GbpsPerWave[i] (Algorithm 1 line 12).
	Gbps []float64
}

// TotalGbps returns the ticket's total restored bandwidth.
func (t *Ticket) TotalGbps() float64 {
	s := 0.0
	for _, g := range t.Gbps {
		s += g
	}
	return s
}

// Key returns a canonical string for deduplication.
func (t *Ticket) Key() string { return fmt.Sprint(t.Waves) }

// Options configures LotteryTicket generation.
type Options struct {
	// Count is |Z|, the number of tickets to generate (before filtering).
	Count int
	// Stride is delta, the maximum rounding stride (default 2).
	//
	// Note on fidelity: Algorithm 1 line 9 literally reads
	// min(ceil(lambda)+x1, orig) with x1 in [1,delta], which would make
	// plain ceil(lambda) unreachable — contradicting the paper's own
	// footnote 2 example (6.3 rounds to 7 w.p. 0.3). We therefore use the
	// offset x1-1, so delta=1 degenerates to classic randomized rounding
	// and larger strides widen exploration, matching Theorem 3.1's 1/delta
	// stride-probability.
	Stride int
	// Seed makes generation deterministic.
	Seed int64
	// CheckFeasibility drops tickets whose integral assignment cannot be
	// constructed in the optical domain (§3.2 "Handling LotteryTickets'
	// feasibility").
	CheckFeasibility bool
	// Dedup removes duplicate tickets after generation.
	Dedup bool
	// Recorder receives generation metrics (rounding attempts, infeasible
	// and duplicate drops). A nil Recorder costs nothing and never changes
	// the generated tickets.
	Recorder obs.Recorder
	// Ledger, when non-nil, records one event per generated or rejected
	// ticket, tagged with Scenario. Rejections are classified: targets
	// beyond any link's rwa.SlotCapacity are rounding_infeasible, failed
	// assignments within capacity are spectrum_clash, and dedup drops are
	// duplicate. Same contract as Recorder: nil costs nothing.
	Ledger *ledger.Ledger
	// Scenario tags this batch's ledger events with the scenario's
	// enumerated index.
	Scenario int
}

func (o Options) stride() int {
	if o.Stride <= 0 {
		return 2
	}
	return o.Stride
}

// Probabilities of the non-fractional rounding rule (Appendix A.2): when
// the LP returns an integer, round up w.p. 0.3, down w.p. 0.3, keep w.p. 0.4.
const (
	nonFracUp   = 0.3
	nonFracDown = 0.3
)

// Compose builds the composed-from-singles restoration candidate for a
// multi-fiber cut: each failed link's target wave count comes from the
// first constituent single-cut solve (in cut order) that failed it —
// wavesOf(f) returns fiber f's pre-staged failed-link -> integral-wave map,
// or nil when the fiber has no pre-staged solve — clamped to the link's
// original count. The greedy integral assignment then realises the targets
// under the combined cut's spectrum contention, and the REALISED counts
// (not the targets) become the ticket, so the composed candidate is always
// physically feasible; links whose single-cut restoration paths died with
// the other fibers simply realise less. ok is false when nothing at all
// could be restored.
func Compose(res *rwa.Result, cut []int, wavesOf func(fiber int) map[int]int) (Ticket, bool) {
	target := make([]int, len(res.Failed))
	for i, lid := range res.Failed {
		for _, f := range cut {
			ws := wavesOf(f)
			if ws == nil {
				continue
			}
			if w, ok := ws[lid]; ok {
				target[i] = w
				break
			}
		}
		if target[i] > res.OrigWaves[i] {
			target[i] = res.OrigWaves[i]
		}
	}
	asg, _ := rwa.AssignIntegral(res, target)
	tk := Ticket{Waves: make([]int, len(res.Failed)), Gbps: make([]float64, len(res.Failed))}
	total := 0
	for i := range res.Failed {
		w := asg.Waves(i)
		tk.Waves[i] = w
		tk.Gbps[i] = float64(w) * res.GbpsPerWave[i]
		total += w
	}
	return tk, total > 0
}

// fracEps is the tolerance below which an LP value counts as integral.
const fracEps = 1e-9

// Generate runs Algorithm 1: it derives |Z| LotteryTickets from the relaxed
// RWA solution by randomized rounding. The RWA itself (Algorithm 1 line 2)
// must already be solved and is passed as res.
func Generate(res *rwa.Result, opts Options) []Ticket {
	rng := rand.New(rand.NewSource(opts.Seed))
	delta := opts.stride()
	n := len(res.Failed)
	var out []Ticket
	seen := map[string]bool{}
	infeasible, duplicates := 0, 0
	for z := 0; z < opts.Count; z++ {
		tk := Ticket{Waves: make([]int, n), Gbps: make([]float64, n)}
		for e := 0; e < n; e++ {
			tk.Waves[e] = roundOnce(rng, res.FracWaves[e], res.OrigWaves[e], delta)
			tk.Gbps[e] = float64(tk.Waves[e]) * res.GbpsPerWave[e]
		}
		if opts.CheckFeasibility {
			if _, ok := rwa.AssignIntegral(res, tk.Waves); !ok {
				infeasible++
				if opts.Ledger != nil {
					opts.Ledger.Emit(ledger.Event{
						Kind: ledger.KindTicketRejected, Scenario: opts.Scenario,
						Ticket: z, Reason: rejectReason(res, tk.Waves), Gbps: tk.TotalGbps(),
					})
				}
				continue
			}
		}
		if opts.Dedup {
			k := tk.Key()
			if seen[k] {
				duplicates++
				if opts.Ledger != nil {
					opts.Ledger.Emit(ledger.Event{
						Kind: ledger.KindTicketRejected, Scenario: opts.Scenario,
						Ticket: z, Reason: ledger.RejectDuplicate, Gbps: tk.TotalGbps(),
					})
				}
				continue
			}
			seen[k] = true
		}
		if opts.Ledger != nil {
			opts.Ledger.Emit(ledger.Event{
				Kind: ledger.KindTicketGenerated, Scenario: opts.Scenario,
				Ticket: z, Gbps: tk.TotalGbps(),
			})
		}
		out = append(out, tk)
	}
	if r := opts.Recorder; r != nil {
		r.Add("ticket.rounding_attempts", int64(opts.Count))
		r.Add("ticket.infeasible", int64(infeasible))
		r.Add("ticket.duplicates", int64(duplicates))
		r.Add("ticket.generated", int64(len(out)))
		r.Observe("ticket.yield_per_batch", float64(len(out)))
	}
	return out
}

// rejectReason classifies a failed integral assignment for the ledger: if
// some clamped target exceeds the link's standalone slot capacity the
// rounding itself overshot (rounding_infeasible); otherwise every link was
// individually satisfiable and the greedy assignment lost to cross-link
// spectrum contention (spectrum_clash).
func rejectReason(res *rwa.Result, waves []int) ledger.RejectReason {
	for li, w := range waves {
		if w > res.OrigWaves[li] {
			w = res.OrigWaves[li]
		}
		if w > rwa.SlotCapacity(res, li) {
			return ledger.RejectRounding
		}
	}
	return ledger.RejectSpectrumClash
}

// roundOnce applies the two-step randomized rounding of Algorithm 1
// (lines 5–11) to one link's fractional wavelength count.
func roundOnce(rng *rand.Rand, lambda float64, orig, delta int) int {
	offset := rng.Intn(delta) // x1 - 1: stride offset in [0, delta)
	frac := lambda - math.Floor(lambda)
	if frac < fracEps || frac > 1-fracEps {
		// Non-fractional case (Appendix A.2): explicit 0.3/0.3/0.4 rule
		// with stride x1 = offset+1.
		v := int(math.Round(lambda))
		switch p := rng.Float64(); {
		case p < nonFracUp:
			return clamp(v+offset+1, 0, orig)
		case p < nonFracUp+nonFracDown:
			return clamp(v-offset-1, 0, orig)
		default:
			return clamp(v, 0, orig)
		}
	}
	if rng.Float64() < frac { // round up (line 8-9)
		return clamp(int(math.Ceil(lambda))+offset, 0, orig)
	}
	return clamp(int(math.Floor(lambda))-offset, 0, orig) // line 11
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RoundProbability returns the probability that roundOnce(lambda, orig,
// delta) produces exactly target. This is the per-link factor of kappa in
// Theorem 3.1 (1/delta times the round-up/down probability, with boundary
// clamping accounted for).
func RoundProbability(lambda float64, orig, target, delta int) float64 {
	if target < 0 || target > orig {
		return 0
	}
	frac := lambda - math.Floor(lambda)

	if frac < fracEps || frac > 1-fracEps {
		v := clamp(int(math.Round(lambda)), 0, orig)
		p := 0.0
		if target == v {
			p += 1 - nonFracUp - nonFracDown
		}
		// Up: value clamp(v+x1, 0, orig), x1 in [1,delta].
		p += nonFracUp * strideHitProb(v, target, delta, orig, +1)
		// Down: value clamp(v-x1, 0, orig).
		p += nonFracDown * strideHitProb(v, target, delta, orig, -1)
		return p
	}

	p := 0.0
	up := int(math.Ceil(lambda))
	down := int(math.Floor(lambda))
	// Round up: value = clamp(up+offset, 0, orig), offset in [0, delta).
	p += frac * offsetHitProb(up, target, delta, orig, +1)
	// Round down: value = clamp(down-offset, 0, orig).
	p += (1 - frac) * offsetHitProb(down, target, delta, orig, -1)
	return p
}

// offsetHitProb returns P[clamp(base + dir*offset, 0, orig) == target] with
// offset uniform in [0, delta).
func offsetHitProb(base, target, delta, orig, dir int) float64 {
	hits := 0
	for o := 0; o < delta; o++ {
		if clamp(base+dir*o, 0, orig) == target {
			hits++
		}
	}
	return float64(hits) / float64(delta)
}

// strideHitProb returns P[clamp(base + dir*x1, 0, orig) == target] with x1
// uniform in [1, delta].
func strideHitProb(base, target, delta, orig, dir int) float64 {
	hits := 0
	for x := 1; x <= delta; x++ {
		if clamp(base+dir*x, 0, orig) == target {
			hits++
		}
	}
	return float64(hits) / float64(delta)
}

// Kappa computes the probability (Theorem 3.1, Eq. 13) that a single
// generated ticket equals the given target restoration vector.
func Kappa(res *rwa.Result, target []int, delta int) float64 {
	if delta <= 0 {
		delta = 2
	}
	k := 1.0
	for e := range res.Failed {
		k *= RoundProbability(res.FracWaves[e], res.OrigWaves[e], target[e], delta)
	}
	return k
}

// Rho computes the probability (Theorem 3.1, Eq. 12) that at least one of
// numTickets independently generated tickets is the optimal one, given the
// single-draw probability kappa.
func Rho(kappa float64, numTickets int) float64 {
	return 1 - math.Pow(1-kappa, float64(numTickets))
}
