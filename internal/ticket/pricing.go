package ticket

// DefaultPricingEps is the reduced-cost tolerance below which a deferred
// ticket is considered priced out. It is an absolute threshold in the units
// of the master problem's rows (Gbps for the ARROW phase-I master): a
// candidate enters only when its reduced cost is < -eps, and column
// generation terminates when no candidate clears it. Matching
// lp.DefaultCertTol keeps "priced out" and "certified optimal" consistent.
const DefaultPricingEps = 1e-6

// PricingOracle finds the most attractive deferred LotteryTicket for one
// scenario of a restricted master problem.
//
// The oracle is deliberately decoupled from the TE layer: the caller
// supplies the candidate count and two closures, so the same oracle prices
// any master formulation that can state a per-ticket reduced cost. For the
// ARROW phase-I master the reduced cost of a deferred ticket's column block
// is the negated worst violation of its rows at the current master optimum
// (a satisfied block cannot improve the optimum; a violated one must enter).
//
// Determinism contract: Price scans candidates in ascending index order and
// requires strict improvement to switch, so ties break to the lowest index
// regardless of how callers fan scenarios out over workers.
type PricingOracle struct {
	// Eps is the pricing tolerance; <= 0 means DefaultPricingEps.
	Eps float64
}

func (o PricingOracle) eps() float64 {
	if o.Eps <= 0 {
		return DefaultPricingEps
	}
	return o.Eps
}

// Price scans candidates z in [0, n), skipping those for which deferred(z)
// is false (already in the master), and returns the index with the most
// negative reduced cost along with that cost. It returns (-1, 0) when no
// deferred candidate's reduced cost is below -Eps — the scenario is priced
// out.
func (o PricingOracle) Price(n int, deferred func(z int) bool, reducedCost func(z int) float64) (int, float64) {
	eps := o.eps()
	best, bestRC := -1, 0.0
	for z := 0; z < n; z++ {
		if !deferred(z) {
			continue
		}
		rc := reducedCost(z)
		if rc < -eps && rc < bestRC {
			best, bestRC = z, rc
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestRC
}
