package ticket

import (
	"math"
	"math/rand"
	"testing"

	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/spectrum"
)

// fig7Result builds the paper's Fig. 7 scenario and returns its RWA result:
// two failed links (4 and 8 waves) with 5 restorable wavelengths total.
func fig7Result(t *testing.T) *rwa.Result {
	t.Helper()
	n := optical.NewNetwork(4, 12)
	n.AddFiber(0, 1, 100)
	n.AddFiber(0, 2, 100)
	n.AddFiber(2, 1, 100)
	n.AddFiber(0, 3, 100)
	n.AddFiber(3, 1, 100)
	mod := spectrum.Table6[0]
	mk := func(count, start int) []optical.Lightpath {
		var ws []optical.Lightpath
		for i := 0; i < count; i++ {
			ws = append(ws, optical.Lightpath{Slot: start + i, Modulation: mod, FiberPath: []int{0}})
		}
		return ws
	}
	if _, err := n.Provision(0, 1, mk(4, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Provision(0, 1, mk(8, 4)); err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{1, 2} {
		for s := 0; s < 9; s++ {
			n.Fibers[f].Slots.Set(s, false)
		}
	}
	for _, f := range []int{3, 4} {
		for s := 0; s < 10; s++ {
			n.Fibers[f].Slots.Set(s, false)
		}
	}
	res, err := rwa.Solve(&rwa.Request{Net: n, Cut: []int{0}, K: 3, AllowTuning: true, AllowModulationChange: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenerateBasicInvariants(t *testing.T) {
	res := fig7Result(t)
	tickets := Generate(res, Options{Count: 200, Stride: 2, Seed: 1})
	if len(tickets) != 200 {
		t.Fatalf("generated %d tickets", len(tickets))
	}
	for _, tk := range tickets {
		if len(tk.Waves) != len(res.Failed) {
			t.Fatalf("ticket size %d", len(tk.Waves))
		}
		for i, w := range tk.Waves {
			if w < 0 || w > res.OrigWaves[i] {
				t.Fatalf("wave count %d outside [0,%d]", w, res.OrigWaves[i])
			}
			if tk.Gbps[i] != float64(w)*res.GbpsPerWave[i] {
				t.Fatalf("Gbps inconsistent with waves")
			}
		}
	}
}

func TestGenerateDeterministicBySeed(t *testing.T) {
	res := fig7Result(t)
	a := Generate(res, Options{Count: 50, Stride: 3, Seed: 42})
	b := Generate(res, Options{Count: 50, Stride: 3, Seed: 42})
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("ticket %d differs across identical seeds", i)
		}
	}
	c := Generate(res, Options{Count: 50, Stride: 3, Seed: 43})
	same := true
	for i := range a {
		if a[i].Key() != c[i].Key() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical ticket streams")
	}
}

func TestGenerateFeasibleTicketsRespectSpectrum(t *testing.T) {
	res := fig7Result(t)
	tickets := Generate(res, Options{Count: 300, Stride: 3, Seed: 7, CheckFeasibility: true})
	if len(tickets) == 0 {
		t.Fatal("all tickets filtered out")
	}
	for _, tk := range tickets {
		// Only 5 wavelengths restorable in total in Fig. 7.
		if tk.Waves[0]+tk.Waves[1] > 5 {
			t.Fatalf("infeasible ticket survived: %v", tk.Waves)
		}
		if _, ok := rwa.AssignIntegral(res, tk.Waves); !ok {
			t.Fatalf("ticket %v not constructible", tk.Waves)
		}
	}
}

func TestGenerateDedup(t *testing.T) {
	res := fig7Result(t)
	tickets := Generate(res, Options{Count: 500, Stride: 2, Seed: 3, Dedup: true})
	seen := map[string]bool{}
	for _, tk := range tickets {
		if seen[tk.Key()] {
			t.Fatalf("duplicate ticket %v", tk.Waves)
		}
		seen[tk.Key()] = true
	}
	if len(tickets) >= 500 {
		t.Fatal("dedup removed nothing from 500 draws over a small space")
	}
}

func TestTicketDiversityCoversCandidates(t *testing.T) {
	// With enough draws, the generator should cover multiple distinct
	// restoration candidates including high-throughput ones — the premise
	// of the LotteryTicket design.
	res := fig7Result(t)
	tickets := Generate(res, Options{Count: 2000, Stride: 2, Seed: 9, CheckFeasibility: true, Dedup: true})
	if len(tickets) < 5 {
		t.Fatalf("only %d distinct feasible tickets", len(tickets))
	}
}

func TestRoundProbabilityMatchesMonteCarlo(t *testing.T) {
	// Property: the closed-form RoundProbability matches the empirical
	// frequency of roundOnce for many (lambda, orig, delta) combinations.
	cases := []struct {
		lambda float64
		orig   int
		delta  int
	}{
		{2.5, 4, 1}, {2.5, 4, 2}, {2.5, 4, 3},
		{0.3, 8, 2}, {6.7, 8, 2}, {7.9, 8, 3},
		{3.0, 4, 2}, {0.0, 4, 2}, {4.0, 4, 1},
		{1.0001e-10, 3, 2}, // effectively integral
	}
	const draws = 200000
	for _, c := range cases {
		rng := rand.New(rand.NewSource(17))
		counts := map[int]int{}
		for i := 0; i < draws; i++ {
			counts[roundOnce(rng, c.lambda, c.orig, c.delta)]++
		}
		totalP := 0.0
		for v := 0; v <= c.orig; v++ {
			want := RoundProbability(c.lambda, c.orig, v, c.delta)
			got := float64(counts[v]) / draws
			if math.Abs(got-want) > 0.01 {
				t.Fatalf("lambda=%g orig=%d delta=%d target=%d: empirical %g vs closed-form %g",
					c.lambda, c.orig, c.delta, v, got, want)
			}
			totalP += want
		}
		if math.Abs(totalP-1) > 1e-9 {
			t.Fatalf("lambda=%g orig=%d delta=%d: probabilities sum to %g", c.lambda, c.orig, c.delta, totalP)
		}
	}
}

func TestTheorem31(t *testing.T) {
	// Verify rho = 1 - (1-kappa)^|Z| empirically: probability that a batch
	// of |Z| tickets contains a chosen target vector.
	res := fig7Result(t)
	target := []int{2, 3} // a plausible optimal ticket (Fig. 7 candidate 1)
	if res.OrigWaves[0] != 4 {
		target = []int{3, 2}
	}
	delta := 2
	kappa := Kappa(res, target, delta)
	if kappa <= 0 || kappa >= 1 {
		t.Fatalf("kappa = %g out of range", kappa)
	}
	const zSize = 10
	rho := Rho(kappa, zSize)

	const batches = 3000
	hit := 0
	for b := 0; b < batches; b++ {
		tks := Generate(res, Options{Count: zSize, Stride: delta, Seed: int64(1000 + b)})
		for _, tk := range tks {
			if tk.Waves[0] == target[0] && tk.Waves[1] == target[1] {
				hit++
				break
			}
		}
	}
	got := float64(hit) / batches
	if math.Abs(got-rho) > 0.03 {
		t.Fatalf("empirical hit rate %g vs Theorem 3.1 rho %g (kappa %g)", got, rho, kappa)
	}
}

func TestRhoMonotonicInTickets(t *testing.T) {
	prev := 0.0
	for z := 1; z <= 256; z *= 2 {
		r := Rho(0.05, z)
		if r <= prev || r > 1 {
			t.Fatalf("rho(%d) = %g not increasing in (0,1]", z, r)
		}
		prev = r
	}
	if Rho(1, 1) != 1 || Rho(0, 100) != 0 {
		t.Fatal("rho edge cases wrong")
	}
}

func TestTotalGbps(t *testing.T) {
	tk := Ticket{Waves: []int{2, 3}, Gbps: []float64{200, 300}}
	if tk.TotalGbps() != 500 {
		t.Fatalf("total %g", tk.TotalGbps())
	}
}
