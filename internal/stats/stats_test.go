package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.At(0) != 0 || c.At(1) != 0.25 || c.At(2.5) != 0.5 || c.At(4) != 1 || c.At(99) != 1 {
		t.Fatalf("CDF values wrong: %v %v %v %v", c.At(1), c.At(2.5), c.At(4), c.At(99))
	}
	if c.Percentile(50) != 2 || c.Percentile(100) != 4 || c.Percentile(0) != 1 {
		t.Fatalf("percentiles %v %v %v", c.Percentile(50), c.Percentile(100), c.Percentile(0))
	}
	if c.Min() != 1 || c.Max() != 4 || c.Len() != 4 {
		t.Fatal("extremes wrong")
	}
}

func TestCDFMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		c := NewCDF(xs)
		prev := -1.0
		for x := -30.0; x <= 30; x += 0.5 {
			v := c.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	pts := NewCDF(xs).Points(10)
	if len(pts) != 10 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[9][1] != 1 {
		t.Fatalf("last point y=%g", pts[9][1])
	}
	if !sort.SliceIsSorted(pts, func(a, b int) bool { return pts[a][0] < pts[b][0] }) {
		t.Fatal("points not sorted")
	}
}

func TestWeibullMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 200000
	shape, scale := 0.8, 0.02
	sum := 0.0
	for i := 0; i < n; i++ {
		v := Weibull(rng, shape, scale)
		if v < 0 {
			t.Fatal("negative Weibull sample")
		}
		sum += v
	}
	// E[X] = scale * Gamma(1 + 1/shape); Gamma(2.25) ~ 1.1330.
	want := scale * math.Gamma(1+1/shape)
	got := sum / n
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("Weibull mean %g want %g", got, want)
	}
}

func TestLogNormalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = LogNormal(rng, math.Log(9), 1.2)
	}
	sort.Float64s(xs)
	med := xs[n/2]
	if math.Abs(med-9) > 0.5 {
		t.Fatalf("lognormal median %g want ~9", med)
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[WeightedChoice(rng, w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("choice %d frequency %g want %g", i, got, want)
		}
	}
	// Degenerate weights fall back to uniform without panicking.
	if i := WeightedChoice(rng, []float64{0, 0}); i < 0 || i > 1 {
		t.Fatalf("fallback index %d", i)
	}
}

func TestCDFEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name    string
		samples []float64
		p       float64
		want    float64 // NaN means "expect NaN"
		min     float64
		max     float64
	}{
		{name: "empty", samples: nil, p: 50, want: nan, min: nan, max: nan},
		{name: "all NaN", samples: []float64{nan, nan}, p: 50, want: nan, min: nan, max: nan},
		{name: "single sample", samples: []float64{7}, p: 50, want: 7, min: 7, max: 7},
		{name: "single sample p=0", samples: []float64{7}, p: 0, want: 7, min: 7, max: 7},
		{name: "single sample p=100", samples: []float64{7}, p: 100, want: 7, min: 7, max: 7},
		{name: "NaN samples dropped", samples: []float64{nan, 1, nan, 3}, p: 100, want: 3, min: 1, max: 3},
		{name: "NaN percentile arg", samples: []float64{1, 2}, p: nan, want: nan, min: 1, max: 2},
	}
	same := func(got, want float64) bool {
		if math.IsNaN(want) {
			return math.IsNaN(got)
		}
		return got == want
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCDF(tc.samples)
			if got := c.Percentile(tc.p); !same(got, tc.want) {
				t.Errorf("Percentile(%g) = %g, want %g", tc.p, got, tc.want)
			}
			if got := c.Min(); !same(got, tc.min) {
				t.Errorf("Min() = %g, want %g", got, tc.min)
			}
			if got := c.Max(); !same(got, tc.max) {
				t.Errorf("Max() = %g, want %g", got, tc.max)
			}
		})
	}
}

func TestQuantileMatchesPercentile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if c.Quantile(q) != c.Percentile(100*q) {
			t.Fatalf("Quantile(%g) = %g != Percentile(%g) = %g", q, c.Quantile(q), 100*q, c.Percentile(100*q))
		}
	}
}

func TestWeightedChoiceEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if i := WeightedChoice(rng, nil); i != -1 {
		t.Fatalf("WeightedChoice(nil) = %d, want -1", i)
	}
	if i := WeightedChoice(rng, []float64{}); i != -1 {
		t.Fatalf("WeightedChoice(empty) = %d, want -1", i)
	}
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 || Sum(nil) != 0 {
		t.Fatal("empty slices")
	}
	if Mean([]float64{2, 4}) != 3 || Sum([]float64{2, 4}) != 6 {
		t.Fatal("mean/sum wrong")
	}
}

func TestMedian(t *testing.T) {
	nan := math.NaN()
	for _, tc := range []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, nan},
		{"all-nan", []float64{nan, nan}, nan},
		{"single", []float64{7}, 7},
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"nan-dropped", []float64{1, nan, 3}, 2},
		{"negative", []float64{-5, -1, -3}, -3},
	} {
		got := Median(tc.in)
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: Median = %v, want NaN", tc.name, got)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("%s: Median = %v, want %v", tc.name, got, tc.want)
		}
	}
	// The input must not be reordered.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestMAD(t *testing.T) {
	nan := math.NaN()
	for _, tc := range []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, nan},
		{"constant", []float64{5, 5, 5}, 0},
		{"odd", []float64{1, 2, 3, 4, 100}, 1},   // median 3, |dev| = {2,1,0,1,97} -> 1
		{"symmetric", []float64{1, 3, 5}, 2},     // median 3, |dev| = {2,0,2}
		{"nan-dropped", []float64{1, nan, 3}, 1}, // median 2, |dev| = {1,1}
	} {
		got := MAD(tc.in)
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: MAD = %v, want NaN", tc.name, got)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("%s: MAD = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTrimOutliers(t *testing.T) {
	nan := math.NaN()
	for _, tc := range []struct {
		name string
		in   []float64
		k    float64
		want []float64
	}{
		{"empty", nil, 3, nil},
		{"no-outliers", []float64{1, 2, 3}, 3, []float64{1, 2, 3}},
		{"one-wild", []float64{1, 2, 3, 4, 1000}, 3, []float64{1, 2, 3, 4}},
		{"default-k", []float64{1, 2, 3, 4, 1000}, 0, []float64{1, 2, 3, 4}},
		{"zero-mad-keeps-ties", []float64{5, 5, 5, 9}, 3, []float64{5, 5, 5}},
		{"nan-dropped", []float64{1, nan, 2}, 3, []float64{1, 2}},
	} {
		got := TrimOutliers(tc.in, tc.k)
		if len(got) != len(tc.want) {
			t.Errorf("%s: TrimOutliers = %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: TrimOutliers = %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}
