// Package stats provides the small statistical helpers shared by the
// synthetic-data generators and the evaluation harness: empirical CDFs,
// percentiles, and the Weibull / log-normal samplers used to model fiber
// failure probabilities (TeaVaR methodology) and repair times.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (which it copies and sorts).
// NaN samples are dropped: they carry no ordering information, and keeping
// them would poison every rank query (sort.Float64s leaves NaNs in
// unspecified positions).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, 0, len(samples))
	for _, x := range samples {
		if !math.IsNaN(x) {
			s = append(s, x)
		}
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P[X <= x].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank.
// An empty CDF or NaN p yields NaN.
func (c *CDF) Percentile(p float64) float64 {
	if len(c.sorted) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 100 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(c.sorted))))
	if rank < 1 {
		rank = 1
	}
	return c.sorted[rank-1]
}

// Points returns up to n evenly spaced (x, P[X<=x]) pairs for rendering.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * len(c.sorted) / n
		if idx > len(c.sorted) {
			idx = len(c.sorted)
		}
		x := c.sorted[idx-1]
		out = append(out, [2]float64{x, float64(idx) / float64(len(c.sorted))})
	}
	return out
}

// Quantile returns the q-th quantile (q in [0,1]); equivalent to
// Percentile(100*q).
func (c *CDF) Quantile(q float64) float64 { return c.Percentile(100 * q) }

// Min returns the smallest sample, or NaN for an empty CDF.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample, or NaN for an empty CDF.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean returns the arithmetic mean of samples.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the middle value of xs (the mean of the two middle values
// for even counts). NaNs are dropped like NewCDF; an empty input yields NaN.
// The input is not modified.
func Median(xs []float64) float64 {
	s := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			s = append(s, x)
		}
	}
	if len(s) == 0 {
		return math.NaN()
	}
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MAD returns the median absolute deviation from the median: the robust
// spread estimator the benchmark harness gates regressions with (one wild
// outlier cannot inflate it the way it inflates a standard deviation).
// The result is the raw MAD, NOT scaled by the 1.4826 normal-consistency
// constant. An empty (or all-NaN) input yields NaN.
func MAD(xs []float64) float64 {
	m := Median(xs)
	if math.IsNaN(m) {
		return math.NaN()
	}
	dev := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			dev = append(dev, math.Abs(x-m))
		}
	}
	return Median(dev)
}

// TrimOutliers returns a copy of xs with every sample farther than k MADs
// from the median removed (k <= 0 defaults to 3). When the MAD is zero —
// more than half the samples are identical — only exact deviants are
// dropped. NaNs are always removed. The input is not modified.
func TrimOutliers(xs []float64, k float64) []float64 {
	if k <= 0 {
		k = 3
	}
	m := Median(xs)
	if math.IsNaN(m) {
		return nil
	}
	mad := MAD(xs)
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if math.Abs(x-m) <= k*mad {
			out = append(out, x)
		}
	}
	return out
}

// Summary condenses a sample set into the usual five-number-plus-mean view,
// JSON-ready for run reports.
type Summary struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	P25   float64 `json:"p25"`
	P50   float64 `json:"p50"`
	P75   float64 `json:"p75"`
	P90   float64 `json:"p90"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// Summarize builds a Summary from samples (NaNs dropped, like NewCDF). An
// empty input yields a zero-count Summary with zero statistics rather than
// NaNs, so reports serialise cleanly.
func Summarize(samples []float64) Summary {
	c := NewCDF(samples)
	if c.Len() == 0 {
		return Summary{}
	}
	return Summary{
		Count: c.Len(),
		Min:   c.Min(),
		P25:   c.Percentile(25),
		P50:   c.Percentile(50),
		P75:   c.Percentile(75),
		P90:   c.Percentile(90),
		Max:   c.Max(),
		Mean:  Mean(c.sorted),
	}
}

// Weibull samples a Weibull(shape, scale) variate: used by the paper's
// failure model ("Weibull distribution (shape=0.8, scale=0.02) to model the
// failure probability of each fiber").
func Weibull(rng *rand.Rand, shape, scale float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// LogNormal samples exp(N(mu, sigma)).
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// WeightedChoice picks an index with probability proportional to weights.
// Zero or negative total weight picks uniformly; an empty weight slice
// returns -1 (rand.Intn(0) would panic).
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	if len(weights) == 0 {
		return -1
	}
	total := Sum(weights)
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
