package eval

import (
	"fmt"

	"github.com/arrow-te/arrow/internal/availability"
	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/ticket"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

func init() {
	register(Experiment{
		ID:         "thm31",
		Title:      "Theorem 3.1: probabilistic optimality of LotteryTickets",
		PaperClaim: "rho = 1 - (1 - kappa)^|Z|; more tickets exponentially increase the chance of containing the optimal candidate",
		Run:        runThm31,
	})
	register(Experiment{
		ID:         "ablation-alpha",
		Title:      "Ablation: Phase I slack bound alpha",
		PaperClaim: "the paper evaluates alpha in {0.2, 0.1, 0.05} (§3.3 footnote 4)",
		Run:        runAblationAlpha,
	})
	register(Experiment{
		ID:         "ablation-stride",
		Title:      "Ablation: randomized-rounding stride delta",
		PaperClaim: "delta widens ticket exploration; Theorem 3.1's kappa scales as 1/delta per link",
		Run:        runAblationStride,
	})
}

func runThm31(cfg Config) (*Result, error) {
	tp, err := topo.B4(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	// Use the first cut scenario with a genuinely fractional RWA solution.
	var res *rwa.Result
	for f := range tp.Opt.Fibers {
		r, err := rwa.Solve(&rwa.Request{Net: tp.Opt, Cut: []int{f}, K: 3, AllowTuning: true, AllowModulationChange: true, NoWarm: cfg.NoWarm})
		if err != nil {
			return nil, err
		}
		if len(r.Failed) >= 2 && r.Objective > 0 {
			res = r
			break
		}
	}
	if res == nil {
		return nil, fmt.Errorf("thm31: no suitable scenario")
	}
	// Target: the greedy-integral candidate.
	target := rwa.MaxIntegralWaves(res)
	const delta = 2
	kappa := ticket.Kappa(res, target, delta)

	r := &Result{ID: "thm31", Title: "Theorem 3.1 on a B4 fiber-cut scenario",
		Header: []string{"|Z|", "rho (closed form)", "empirical hit rate"}}
	const batches = 400
	for _, z := range []int{1, 5, 10, 20, 40, 80} {
		rho := ticket.Rho(kappa, z)
		hits := 0
		for bIdx := 0; bIdx < batches; bIdx++ {
			tks := ticket.Generate(res, ticket.Options{Count: z, Stride: delta, Seed: cfg.Seed + int64(bIdx)*131})
			for _, tk := range tks {
				match := true
				for i := range target {
					if tk.Waves[i] != target[i] {
						match = false
						break
					}
				}
				if match {
					hits++
					break
				}
			}
		}
		r.AddRow(fi(z), f4(rho), f4(float64(hits)/batches))
	}
	r.AddNote("kappa = %.4f for the target candidate with delta=%d over %d failed links", kappa, delta, len(res.Failed))
	return r, nil
}

func runAblationAlpha(cfg Config) (*Result, error) {
	p := paramsFor("B4", true)
	tp, err := topo.B4(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	pl, err := BuildPipeline(tp, cfg.applyScenario(PipelineOptions{Cutoff: p.cutoff, NumTickets: 20, Seed: cfg.Seed, MaxScenarios: p.maxScenarios, Recorder: cfg.Recorder, NoWarm: cfg.NoWarm, NoColgen: cfg.NoColgen, HealthEvery: cfg.HealthEvery}))
	if err != nil {
		return nil, err
	}
	m := traffic.Generate(traffic.Options{Sites: tp.NumRouters(), Count: 1, MaxFlows: p.maxFlows, TotalGbps: 1, Seed: cfg.Seed + 7})[0]
	base, err := pl.BaseNetwork(m, p.tunnels)
	if err != nil {
		return nil, err
	}
	n := base.Scaled(4.2)
	r := &Result{ID: "ablation-alpha", Title: "ARROW vs Phase I slack bound (B4, 4.2x demand)",
		Header: []string{"alpha", "throughput", "availability"}}
	for _, alpha := range []float64{0.2, 0.1, 0.05} {
		al, err := te.Arrow(n, pl.Scenarios, &te.ArrowOptions{Alpha: alpha, NoWarm: cfg.NoWarm, NoColgen: cfg.NoColgen, HealthEvery: cfg.HealthEvery})
		if err != nil {
			return nil, err
		}
		ev := &availability.Evaluator{Net: n, Alloc: al}
		r.AddRow(f2(alpha), f4(al.Throughput(n)), f4(ev.Availability(pl.EvalScenarios(al.RestoredGbps))))
	}
	r.AddNote("alpha trades Phase I exploration freedom against plan realism; the paper reports robustness across 0.05-0.2")
	return r, nil
}

func runAblationStride(cfg Config) (*Result, error) {
	p := paramsFor("B4", true)
	tp, err := topo.B4(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	m := traffic.Generate(traffic.Options{Sites: tp.NumRouters(), Count: 1, MaxFlows: p.maxFlows, TotalGbps: 1, Seed: cfg.Seed + 7})[0]
	r := &Result{ID: "ablation-stride", Title: "ARROW vs rounding stride (B4, 4.2x demand, |Z|=20)",
		Header: []string{"delta", "distinct feasible tickets/scenario", "throughput"}}
	for _, delta := range []int{1, 2, 3, 5} {
		pl, err := BuildPipeline(tp, cfg.applyScenario(PipelineOptions{Cutoff: p.cutoff, NumTickets: 20, Stride: delta, Seed: cfg.Seed, MaxScenarios: p.maxScenarios, Recorder: cfg.Recorder, NoWarm: cfg.NoWarm, NoColgen: cfg.NoColgen, HealthEvery: cfg.HealthEvery}))
		if err != nil {
			return nil, err
		}
		distinct := 0.0
		for _, sc := range pl.Scenarios {
			distinct += float64(len(sc.Tickets))
		}
		if len(pl.Scenarios) > 0 {
			distinct /= float64(len(pl.Scenarios))
		}
		base, err := pl.BaseNetwork(m, p.tunnels)
		if err != nil {
			return nil, err
		}
		n := base.Scaled(4.2)
		al, err := te.Arrow(n, pl.Scenarios, arrowOptsFor(cfg))
		if err != nil {
			return nil, err
		}
		r.AddRow(fi(delta), f1(distinct), f4(al.Throughput(n)))
	}
	r.AddNote("larger strides explore more candidates per draw but more get dropped by the feasibility filter")
	return r, nil
}
