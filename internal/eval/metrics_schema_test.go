package eval

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/arrow-te/arrow/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden metrics-schema file")

// TestMetricsSchemaGolden pins the -metrics-json schema: the section-
// qualified key listing of an instrumented standard pipeline build must
// match testdata/metrics_schema.golden exactly. Metric VALUES are timing-
// dependent; the KEY SET is deterministic for a fixed seed and must not
// drift silently — a renamed or dropped counter breaks downstream tooling
// that parses the snapshot. Regenerate deliberately with:
//
//	go test ./internal/eval -run TestMetricsSchemaGolden -update
func TestMetricsSchemaGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full pipeline")
	}
	reg := obs.NewRegistry()
	if err := BuildPipelineInstrumented(1, 2, reg, false, false); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	// The acceptance floor: the snapshot must report real solver work, not
	// just schema keys.
	for _, c := range []string{"lp.solves", "lp.pivots", "rwa.solves",
		"ticket.rounding_attempts", "par.pools", "par.tasks", "par.busy_ns",
		"pipeline.scenarios_enumerated", "pipeline.scenarios_relevant"} {
		if snap.Counters[c] <= 0 {
			t.Errorf("counter %s = %d, want > 0", c, snap.Counters[c])
		}
	}
	// Core schema keys exist even for layers this build never runs.
	for _, c := range []string{"mip.nodes", "sim.intervals"} {
		if _, ok := snap.Counters[c]; !ok {
			t.Errorf("core counter %s missing from snapshot", c)
		}
	}
	for _, sp := range []string{"pipeline.build", "pipeline.enumerate", "pipeline.offline", "par.task"} {
		if snap.Spans[sp].Count == 0 {
			t.Errorf("span %s missing or never completed", sp)
		}
	}

	got := strings.Join(snap.Keys(), "\n") + "\n"
	golden := filepath.Join("testdata", "metrics_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics schema drifted from %s (regenerate deliberately with -update):\n got:\n%s\nwant:\n%s",
			golden, got, want)
	}
}
