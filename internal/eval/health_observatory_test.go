package eval

import (
	"bufio"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

// buildHealth builds the small B4 pipeline with the given worker count and
// health-probe period.
func buildHealth(t *testing.T, workers, healthEvery int, rec obs.Recorder, led *ledger.Ledger) *Pipeline {
	t.Helper()
	tp, err := topo.B4(6)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPipeline(tp, PipelineOptions{
		Cutoff: 0.001, NumTickets: 8, Seed: 1, MaxScenarios: 12,
		Parallelism: workers, Recorder: rec, Ledger: led, HealthEvery: healthEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestHealthProbesPreserveDeterminism is the observatory's core guarantee
// at the pipeline level: turning the numerical-health probes on must not
// change a single byte of any artifact — pipeline, TE allocation, restored
// capacities — at any worker count. Probes only read solver state.
func TestHealthProbesPreserveDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds several full pipelines")
	}
	baseline := buildHealth(t, 1, 0, nil, nil)
	want := pipelineFingerprint(baseline)

	m := traffic.Generate(traffic.Options{
		Sites: baseline.Topo.NumRouters(), Count: 1, MaxFlows: 40, TotalGbps: 1, Seed: 8,
	})[0]
	base, err := baseline.BaseNetwork(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := base.Scaled(3)
	al, restored, err := baseline.SolveScheme(SchemeArrow, n)
	if err != nil {
		t.Fatal(err)
	}

	var bags []map[string]int
	for _, workers := range []int{1, 4, 8} {
		reg := obs.NewRegistry()
		led := ledger.New()
		pl := buildHealth(t, workers, 32, reg, led)
		if got := pipelineFingerprint(pl); got != want {
			t.Errorf("probed pipeline at %d workers differs from unprobed baseline", workers)
		}
		alH, restoredH, err := pl.SolveScheme(SchemeArrow, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(al.B, alH.B) || !reflect.DeepEqual(al.A, alH.A) ||
			!reflect.DeepEqual(al.WinningTicket, alH.WinningTicket) ||
			!reflect.DeepEqual(restored, restoredH) {
			t.Errorf("TE allocation at %d workers differs with health probes on", workers)
		}
		// The probes must actually have run, or the comparison proves nothing.
		snap := reg.Snapshot()
		if snap.Counters["lp.health.probes"] == 0 {
			t.Errorf("probed run at %d workers recorded no health probes", workers)
		}
		// The standard instance must be numerically clean: this is the
		// premise of the CI gate (arrow-report -diff -max-anomalies 0).
		if v := snap.Counters["lp.health.anomalies"]; v != 0 {
			t.Errorf("standard pipeline at %d workers reports %d solver anomalies, want 0", workers, v)
		}
		bags = append(bags, ledgerBag(led))
	}
	// The solver_health event stream (per-phase series, per-solve residuals)
	// must be schedule-independent: same multiset of events at 1, 4 and 8
	// workers.
	for i, workers := range []int{4, 8} {
		if !reflect.DeepEqual(bags[i+1], bags[0]) {
			t.Errorf("solver-health ledger stream at %d workers differs from sequential", workers)
		}
	}
	healthEvents := 0
	// bags[0] keys are formatted events; count the solver_health ones.
	for k, c := range bags[0] {
		if strings.Contains(k, "solver_health") {
			healthEvents += c
		}
	}
	if healthEvents == 0 {
		t.Error("no solver_health events in the probed run's ledger")
	}
}

// TestScrapeWhileSolve is the live-export-plane race test: /metrics (both
// formats), /healthz and an SSE /events client all hammer the debug server
// while a parallel probed pipeline build runs. Run under -race this proves
// the striped counters, snapshot merge and SSE fan-out are safe against
// live solver writes.
func TestScrapeWhileSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full pipeline build under scrape load")
	}
	reg := obs.NewRegistry()
	led := ledger.New()
	src := obs.EventSource(func(buf int) obs.EventSub { return led.SubscribeJSON(buf) })
	srv, err := obs.ServeWith("127.0.0.1:0", obs.ServeOpts{Registry: reg, Events: src})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	done := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(url string, wantOK func(int) bool) {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("scrape %s: %v", url, err)
				return
			}
			if !wantOK(resp.StatusCode) {
				t.Errorf("scrape %s: status %d", url, resp.StatusCode)
			}
			resp.Body.Close()
		}
	}
	okOnly := func(c int) bool { return c == http.StatusOK }
	healthy := func(c int) bool { return c == http.StatusOK || c == http.StatusServiceUnavailable }
	wg.Add(3)
	go scrape(base+"/metrics", okOnly)
	go scrape(base+"/metrics?format=prom", okOnly)
	go scrape(base+"/healthz", healthy)

	// One SSE client consuming the live event stream during the build. The
	// run waits for the subscription to exist (headers received implies the
	// handler subscribed and flushed its preamble): events are never
	// replayed to late subscribers, and the standard run is fast.
	events := make(chan int, 1)
	sseReady := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(base + "/events")
		if err != nil {
			t.Errorf("SSE connect: %v", err)
			close(sseReady)
			events <- 0
			return
		}
		close(sseReady)
		go func() { <-done; resp.Body.Close() }()
		n := 0
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				n++
			}
		}
		events <- n
	}()
	<-sseReady

	if _, _, err := RunRecordedWith(RunOptions{
		Seed: 1, Workers: 4, Recorder: reg, Ledger: led, HealthEvery: 32,
	}); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	if n := <-events; n == 0 {
		t.Error("SSE client saw no events during the build")
	}
	if st := obs.Health(reg); !st.Healthy {
		t.Errorf("standard build left the process unhealthy: %+v", st)
	}
}

// BenchmarkHealthProbeOverhead measures the full offline pipeline build
// with probes off and on (period 32). The acceptance budget for the
// observatory is <= 5% wall-clock overhead:
//
//	go test ./internal/eval -bench HealthProbeOverhead -benchtime 3x
func BenchmarkHealthProbeOverhead(b *testing.B) {
	tp, err := topo.B4(6)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, healthEvery int) {
		for i := 0; i < b.N; i++ {
			_, err := BuildPipeline(tp, PipelineOptions{
				Cutoff: 0.001, NumTickets: 12, Seed: 1, MaxScenarios: 16,
				HealthEvery: healthEvery,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("probes-off", func(b *testing.B) { run(b, 0) })
	b.Run(fmt.Sprintf("probes-every-%d", 32), func(b *testing.B) { run(b, 32) })
}
