package eval

import "flag"

// ScenarioFlags carries the parsed correlated-enumeration CLI knobs; see
// RegisterScenarioFlags.
type ScenarioFlags struct {
	maxCutSize    *int
	useSRLGs      *bool
	targetMass    *float64
	maxEnumerated *int
	compose       *bool
}

// RegisterScenarioFlags installs the scenario-space knobs the planning CLIs
// share (-max-cut-size, -srlgs, -target-mass, -max-enumerated, -compose).
// All-default keeps the legacy singles+pairs enumerator and byte-identical
// results.
func RegisterScenarioFlags(fs *flag.FlagSet) *ScenarioFlags {
	return &ScenarioFlags{
		maxCutSize:    fs.Int("max-cut-size", 0, "enumerate correlated cut sets of up to this many failure elements (0 = legacy singles+pairs enumerator)"),
		useSRLGs:      fs.Bool("srlgs", false, "expand the topology's shared-risk link groups as correlated failure elements"),
		targetMass:    fs.Float64("target-mass", 0, "stop enumerating once this fraction of the failure probability mass is covered (0 = cutoff only)"),
		maxEnumerated: fs.Int("max-enumerated", 0, "hard cap on enumerated cut sets (0 = uncapped)"),
		compose:       fs.Bool("compose", true, "warm-start multi-cut RWA solves from pre-staged single-cut bases and seed composed tickets (-compose=false for the cold A/B)"),
	}
}

// Apply copies the parsed knobs onto a PipelineOptions value. Nil-safe
// (a nil receiver leaves the options untouched), as are the other Apply
// variants, so tests can pass nil where no flags were parsed.
func (sf *ScenarioFlags) Apply(po PipelineOptions) PipelineOptions {
	if sf == nil {
		return po
	}
	po.MaxCutSize = *sf.maxCutSize
	po.UseSRLGs = *sf.useSRLGs
	po.TargetMass = *sf.targetMass
	po.MaxEnumerated = *sf.maxEnumerated
	po.NoCompose = !*sf.compose
	return po
}

// ApplyConfig copies the parsed knobs onto an experiment Config.
func (sf *ScenarioFlags) ApplyConfig(c Config) Config {
	if sf == nil {
		return c
	}
	c.MaxCutSize = *sf.maxCutSize
	c.UseSRLGs = *sf.useSRLGs
	c.TargetMass = *sf.targetMass
	c.MaxEnumerated = *sf.maxEnumerated
	c.NoCompose = !*sf.compose
	return c
}

// ApplyRun copies the parsed knobs onto a RunOptions value.
func (sf *ScenarioFlags) ApplyRun(o RunOptions) RunOptions {
	if sf == nil {
		return o
	}
	o.MaxCutSize = *sf.maxCutSize
	o.UseSRLGs = *sf.useSRLGs
	o.TargetMass = *sf.targetMass
	o.MaxEnumerated = *sf.maxEnumerated
	o.NoCompose = !*sf.compose
	return o
}
