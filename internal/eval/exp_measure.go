package eval

import (
	"github.com/arrow-te/arrow/internal/failures"
	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/stats"
	"github.com/arrow-te/arrow/internal/topo"
)

func init() {
	register(Experiment{
		ID:         "fig3",
		Title:      "Failure-ticket analysis: repair time by root cause, downtime share",
		PaperClaim: "50% of fiber cuts last >9h, 10% >24h; fiber cuts are 67% of downtime",
		Run:        runFig3,
	})
	register(Experiment{
		ID:         "fig4",
		Title:      "Impact of fiber cuts on IP capacity",
		PaperClaim: "individual cuts cost up to 8 Tbps; four site pairs dominate losses",
		Run:        runFig4,
	})
	register(Experiment{
		ID:         "fig5",
		Title:      "Spectrum utilization of fibers",
		PaperClaim: "95% of fibers below 60% spectrum utilization",
		Run:        runFig5,
	})
	register(Experiment{
		ID:         "fig6",
		Title:      "Restoration ratio of fibers under single cuts",
		PaperClaim: "34% fully restorable, 4% not restorable, 62% partially; high-capacity fibers almost never fully restorable",
		Run:        runFig6,
	})
	register(Experiment{
		ID:         "fig21",
		Title:      "Monthly wavelength deployments",
		PaperClaim: "deployments increase from March 2020 (COVID-19 traffic surge)",
		Run:        runFig21,
	})
	register(Experiment{
		ID:         "fig22",
		Title:      "IP-to-optical mapping distributions",
		PaperClaim: "CDFs of IP links per fiber and wavelengths per IP link guide IP-layer generation",
		Run:        runFig22,
	})
}

func runFig3(cfg Config) (*Result, error) {
	c := failures.GenerateCorpus(cfg.Seed + 3)
	r := &Result{ID: "fig3", Title: "Failure tickets: MTTR and downtime share",
		Header: []string{"cause", "P50 (h)", "P90 (h)", "P(>9h)", "P(>24h)", "downtime share"}}
	cdfs := c.MTTRByCause()
	share := c.DowntimeShare()
	for _, cause := range failures.Causes() {
		cdf := cdfs[cause]
		if cdf == nil {
			continue
		}
		r.AddRow(cause.String(), f1(cdf.Percentile(50)), f1(cdf.Percentile(90)),
			pct(1-cdf.At(9)), pct(1-cdf.At(24)), pct(share[cause]))
	}
	fc := cdfs[failures.FiberCut]
	r.AddNote("paper: 50%% of fiber cuts >9h (measured %s), 10%% >24h (measured %s), 67%% downtime share (measured %s)",
		pct(1-fc.At(9)), pct(1-fc.At(24)), pct(share[failures.FiberCut]))
	return r, nil
}

func runFig4(cfg Config) (*Result, error) {
	c := failures.GenerateCorpus(cfg.Seed + 3)
	cdf := c.LostCapacityCDF()
	r := &Result{ID: "fig4", Title: "Lost IP capacity per fiber cut",
		Header: []string{"percentile", "lost capacity (Gbps)"}}
	for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
		r.AddRow(f1(p), f1(cdf.Percentile(p)))
	}
	top := c.TopSitePairs(4)
	for _, pair := range top {
		series := c.LostCapacitySeries(pair)
		peak := 0.0
		for _, pt := range series {
			if pt.LostGbps > peak {
				peak = pt.LostGbps
			}
		}
		r.AddNote("site pair %d: %d cut events, peak loss %.1f Tbps", pair, len(series), peak/1000)
	}
	r.AddNote("paper: losses reach ~8 Tbps per event (measured max %.1f Tbps)", cdf.Max()/1000)
	return r, nil
}

func runFig5(cfg Config) (*Result, error) {
	tp, err := topo.Facebook(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	utils := tp.Opt.SpectrumUtilizations()
	cdf := stats.NewCDF(utils)
	r := &Result{ID: "fig5", Title: "Fiber spectrum utilization CDF (synthetic Facebook)",
		Header: []string{"utilization <=", "fraction of fibers"}}
	for _, u := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0} {
		r.AddRow(pct(u), pct(cdf.At(u)))
	}
	r.AddNote("paper: 95%% of fibers below 60%% utilization (measured %s)", pct(cdf.At(0.6)))
	return r, nil
}

func runFig6(cfg Config) (*Result, error) {
	tp, err := topo.Facebook(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	k := 3
	if cfg.Fast {
		k = 2
	}
	var ratios []float64
	full, none, partial := 0, 0, 0
	type bucket struct {
		capTbps float64
		ratio   float64
	}
	var buckets []bucket
	for f := range tp.Opt.Fibers {
		prov := tp.Opt.ProvisionedGbpsOnFiber(f)
		if prov == 0 {
			continue // dark or pass-through-only fiber: no IP impact
		}
		u, err := rwa.RestorationRatio(tp.Opt, f, k, true, true)
		if err != nil {
			return nil, err
		}
		ratios = append(ratios, u)
		buckets = append(buckets, bucket{prov / 1000, u})
		switch {
		case u >= 0.999:
			full++
		case u <= 0.001:
			none++
		default:
			partial++
		}
	}
	cdf := stats.NewCDF(ratios)
	r := &Result{ID: "fig6", Title: "Restoration ratio U of fibers (single cuts)",
		Header: []string{"restoration ratio <=", "fraction of fibers"}}
	for _, u := range []float64{0.0, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0} {
		r.AddRow(pct(u), pct(cdf.At(u)))
	}
	n := float64(len(ratios))
	r.AddNote("measured: %s fully restorable, %s not restorable, %s partial (paper: 34%% / 4%% / 62%%)",
		pct(float64(full)/n), pct(float64(none)/n), pct(float64(partial)/n))
	// Fig 6(b): restoration ratio by provisioned capacity.
	hiCap, hiCapFull := 0, 0
	for _, b := range buckets {
		if b.capTbps >= 2.0 {
			hiCap++
			if b.ratio >= 0.999 {
				hiCapFull++
			}
		}
	}
	if hiCap > 0 {
		r.AddNote("fibers >=2 Tbps provisioned: %d, of which fully restorable: %d (paper: large fibers almost never 100%%)", hiCap, hiCapFull)
	}
	return r, nil
}

func runFig21(cfg Config) (*Result, error) {
	d := failures.MonthlyDeployments(cfg.Seed + 21)
	months := []string{
		"2019-11", "2019-12", "2020-01", "2020-02", "2020-03", "2020-04",
		"2020-05", "2020-06", "2020-07", "2020-08", "2020-09", "2020-10",
		"2020-11", "2020-12", "2021-01", "2021-02", "2021-03", "2021-04",
	}
	r := &Result{ID: "fig21", Title: "Monthly wavelength deployments",
		Header: []string{"month", "wavelengths deployed"}}
	for i, m := range months {
		r.AddRow(m, fi(d[i]))
	}
	r.AddNote("paper: deployments rise from March 2020 (COVID-19)")
	return r, nil
}

func runFig22(cfg Config) (*Result, error) {
	tp, err := topo.Facebook(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	// IP links per fiber.
	perFiber := make([]float64, len(tp.Opt.Fibers))
	for _, l := range tp.Opt.IPLinks {
		seen := map[int]bool{}
		for _, w := range l.Waves {
			for _, f := range w.FiberPath {
				if !seen[f] {
					seen[f] = true
					perFiber[f]++
				}
			}
		}
	}
	var nonzero []float64
	for _, c := range perFiber {
		if c > 0 {
			nonzero = append(nonzero, c)
		}
	}
	linksCDF := stats.NewCDF(nonzero)
	var waves []float64
	for _, l := range tp.Opt.IPLinks {
		waves = append(waves, float64(len(l.Waves)))
	}
	wavesCDF := stats.NewCDF(waves)
	r := &Result{ID: "fig22", Title: "IP links per fiber and wavelengths per IP link",
		Header: []string{"x", "P(IP links/fiber <= x)", "P(waves/IP link <= x)"}}
	for _, x := range []float64{1, 2, 3, 4, 6, 8, 12, 16} {
		r.AddRow(f1(x), pct(linksCDF.At(x)), pct(wavesCDF.At(x)))
	}
	r.AddNote("median IP links per lit fiber: %.0f; median wavelengths per IP link: %.0f",
		linksCDF.Percentile(50), wavesCDF.Percentile(50))
	return r, nil
}
