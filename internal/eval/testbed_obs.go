package eval

import (
	"context"

	"github.com/arrow-te/arrow/internal/emu"
	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/sim"
	"github.com/arrow-te/arrow/internal/te"
)

// TestbedOutcome is RunTestbedRecorded's result: the paired emulated
// restoration episodes and the latency-aware availability replays they
// parameterise.
type TestbedOutcome struct {
	// Legacy / Arrow are the two §5 testbed trials (fiber DC cut) under
	// amplifier reconfiguration and ASE noise loading.
	Legacy *emu.Trial
	Arrow  *emu.Trial
	// LatencyRatio is Legacy.DoneSec / Arrow.DoneSec (the paper reports
	// 127x); also exported as the emu.latency_ratio gauge.
	LatencyRatio float64
	// LegacySim / ArrowSim replay the same failure timeline with each
	// scheme's empirical restoration-latency model. Legacy must lose
	// strictly more time at full service.
	LegacySim *sim.Report
	ArrowSim  *sim.Report
}

// latencySimNet is the small two-fiber network the latency-aware replays
// run on: one 150 Gbps flow over two disjoint 100 Gbps tunnels, each
// single-link failure planned with a full 100 Gbps restoration. Restoration
// therefore keeps the network at full service — except during the
// restoration-latency window, which is exactly the quantity under study.
func latencySimNet() (*te.Network, sim.Projector, []te.FailureScenario, []map[int]float64) {
	n := &te.Network{
		LinkCap: []float64{100, 100},
		Flows:   []te.Flow{{Src: 0, Dst: 1, Demand: 150}},
		Tunnels: [][]te.Tunnel{{{Links: []int{0}}, {Links: []int{1}}}},
	}
	project := func(cut []int) []int { return append([]int(nil), cut...) }
	scenarios := []te.FailureScenario{{FailedLinks: []int{0}}, {FailedLinks: []int{1}}}
	restored := []map[int]float64{{0: 100}, {1: 100}}
	return n, project, scenarios, restored
}

// RunTestbedRecorded runs the restoration-latency observatory: both §5
// testbed episodes (legacy and noise loading) with the recorder and ledger
// attached — producing the per-stage emulated-clock waterfall, emu.*
// metrics and typed device events — then replays one failure timeline
// twice, drawing each cut's restoration latency from that scheme's
// emu-measured samples. The emu.latency_ratio gauge and the mode-tagged
// sim_summary events feed cmd/arrow-report's latency section and the -diff
// latency-ratio gate.
func RunTestbedRecorded(seed int64, rec obs.Recorder, led *ledger.Ledger) (*TestbedOutcome, error) {
	return RunTestbedProfiled(seed, rec, led, nil)
}

// RunTestbedProfiled is RunTestbedRecorded with stage attribution: the
// emulated episodes land in testbed.emulate, the empirical latency-sample
// episodes in testbed.latency_samples, and the replays in sim.replay. A nil
// profiler reproduces RunTestbedRecorded exactly (byte-identical outcome).
func RunTestbedProfiled(seed int64, rec obs.Recorder, led *ledger.Ledger, prof *obs.StageProfiler) (*TestbedOutcome, error) {
	return RunTestbedAttributed(seed, rec, led, prof, false)
}

// RunTestbedAttributed is RunTestbedProfiled with the replay's per-cut
// loss attribution switched on: each sim.Runner additionally emits one
// mode-tagged attribution event per distinct fiber-cut set with its
// time-weighted loss share (sim.Runner.AttributeLoss). Off reproduces
// RunTestbedProfiled byte-identically.
func RunTestbedAttributed(seed int64, rec obs.Recorder, led *ledger.Ledger, prof *obs.StageProfiler, attrLoss bool) (*TestbedOutcome, error) {
	ctx := ledger.WithLedger(obs.WithRecorder(context.Background(), rec), led)
	episode := func(noiseLoading bool) (*emu.Trial, error) {
		net, err := emu.Testbed()
		if err != nil {
			return nil, err
		}
		return emu.RunRestorationCtx(ctx, net, []int{emu.FiberDC}, emu.Config{NoiseLoading: noiseLoading, Seed: seed})
	}
	endEmu := prof.Stage("testbed.emulate")
	legacy, err := episode(false)
	if err != nil {
		endEmu()
		return nil, err
	}
	arrow, err := episode(true)
	endEmu()
	if err != nil {
		return nil, err
	}
	out := &TestbedOutcome{Legacy: legacy, Arrow: arrow, LatencyRatio: legacy.DoneSec / arrow.DoneSec}
	obs.Gauge(rec, "emu.latency_ratio", out.LatencyRatio)

	// The availability coupling: same network, same timeline, same latency
	// seed — only the (emu-measured) latency distribution differs.
	events := sim.GenerateTimeline(2, sim.TimelineOptions{DurationH: 90 * 24, CutsPerMonth: 40, Seed: seed})
	replay := func(label string, noiseLoading bool) (*sim.Report, error) {
		endSamples := prof.Stage("testbed.latency_samples")
		samples, err := emu.LatencySamples(noiseLoading, 4, seed+100)
		endSamples()
		if err != nil {
			return nil, err
		}
		n, project, scenarios, restored := latencySimNet()
		r := sim.NewRunner(n, &te.Allocation{B: []float64{150}, A: [][]float64{{75, 75}}}, project, scenarios, restored)
		r.Latency = sim.EmpiricalLatency{SamplesSec: samples}
		r.LatencySeed = seed
		r.Label = label
		r.Recorder = rec
		r.Ledger = led
		r.Profiler = prof
		r.AttributeLoss = attrLoss
		return r.Run(events, 90*24), nil
	}
	if out.LegacySim, err = replay("legacy", false); err != nil {
		return nil, err
	}
	if out.ArrowSim, err = replay("noise_loading", true); err != nil {
		return nil, err
	}
	return out, nil
}
