package eval

import (
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/scenario"
	"github.com/arrow-te/arrow/internal/sim"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

// TestBuildPipelineDeterministicAcrossParallelism checks the tentpole
// contract: the worker count must not change the pipeline in any way.
// Per-scenario RNGs are derived from the enumerated scenario index, and
// compaction happens in enumeration order, so Parallelism 1 and 8 must
// produce byte-identical artifacts.
func TestBuildPipelineDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two full pipelines")
	}
	build := func(workers int) *Pipeline {
		t.Helper()
		tp, err := topo.B4(6)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := BuildPipeline(tp, PipelineOptions{
			Cutoff: 0.001, NumTickets: 8, Seed: 1, MaxScenarios: 12, Parallelism: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	seq, par := build(1), build(8)
	if !reflect.DeepEqual(seq.Scenarios, par.Scenarios) {
		t.Error("Scenarios differ between Parallelism 1 and 8")
	}
	if !reflect.DeepEqual(seq.Naive, par.Naive) {
		t.Error("Naive scenarios differ between Parallelism 1 and 8")
	}
	if !reflect.DeepEqual(seq.Plain, par.Plain) {
		t.Error("Plain scenarios differ between Parallelism 1 and 8")
	}
	if len(seq.RWAResults) != len(par.RWAResults) {
		t.Fatalf("RWAResults length: %d vs %d", len(seq.RWAResults), len(par.RWAResults))
	}
	for i := range seq.RWAResults {
		if !reflect.DeepEqual(seq.RWAResults[i].Failed, par.RWAResults[i].Failed) ||
			!reflect.DeepEqual(seq.RWAResults[i].FracWaves, par.RWAResults[i].FracWaves) {
			t.Errorf("RWAResults[%d] differs between Parallelism 1 and 8", i)
		}
	}

	// The simulator must be schedule-independent too: same events, same
	// plan, identical report at every worker count.
	m := traffic.Generate(traffic.Options{
		Sites: seq.Topo.NumRouters(), Count: 1, MaxFlows: 40, TotalGbps: 1, Seed: 8,
	})[0]
	base, err := seq.BaseNetwork(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := base.Scaled(3)
	al, restored, err := seq.SolveScheme(SchemeArrow, n)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 90 * 24.0
	events := sim.GenerateTimeline(len(seq.Topo.Opt.Fibers), sim.TimelineOptions{
		DurationH: horizon, CutsPerMonth: 8, Seed: 17,
	})
	replay := func(workers int) sim.Report {
		r := sim.NewRunner(n, al, func(cut []int) []int { return seq.Topo.Opt.FailedLinks(cut) },
			seq.Plain, restored)
		r.Parallelism = workers
		return *r.Run(events, horizon)
	}
	if r1, r8 := replay(1), replay(8); r1 != r8 {
		t.Errorf("sim reports differ between Parallelism 1 and 8:\n  1: %+v\n  8: %+v", r1, r8)
	}
}

// TestBuildPipelineErrorCancelsPool injects a failing RWA solve and checks
// that the first error cancels the pool promptly (far fewer solves than
// enumerated scenarios), that the reported error is the lowest-index one
// (schedule-independent), and that no worker goroutines leak.
func TestBuildPipelineErrorCancelsPool(t *testing.T) {
	tp, err := topo.B4(6)
	if err != nil {
		t.Fatal(err)
	}
	probs := scenario.FailureProbabilities(len(tp.Opt.Fibers), scenario.DefaultShape, scenario.DefaultScale, 1)
	total := len(scenario.Enumerate(probs, 0.001).Scenarios)

	orig := solveRWA
	defer func() { solveRWA = orig }()
	var calls atomic.Int64
	solveRWA = func(req *rwa.Request) (*rwa.Result, error) {
		calls.Add(1)
		return nil, errors.New("injected rwa failure")
	}

	before := runtime.NumGoroutine()
	_, err = BuildPipeline(tp, PipelineOptions{Cutoff: 0.001, NumTickets: 4, Seed: 1, Parallelism: 8})
	if err == nil {
		t.Fatal("expected pipeline build to fail")
	}
	if !strings.Contains(err.Error(), "scenario 0") || !strings.Contains(err.Error(), "injected rwa failure") {
		t.Fatalf("want lowest-index scenario error, got: %v", err)
	}
	if got := int(calls.Load()); got >= total {
		t.Errorf("pool not cancelled: %d solves attempted out of %d scenarios", got, total)
	}

	// par.Map joins its workers before returning, so any lingering goroutine
	// is a leak. Allow the runtime a moment to reap exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestWarmCountersDeterministicAcrossParallelism pins the warm-start
// determinism contract: every warm source is fixed before the solve fans
// out (slack basis for RWA, never "whichever sibling finished first"), so
// the LP pivot and warm-start counters must be identical at every worker
// count — not merely the solutions.
func TestWarmCountersDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three full pipelines")
	}
	counterKeys := []string{
		"lp.solves", "lp.pivots", "lp.phase1_pivots",
		"lp.warm_starts", "lp.warm_accepted", "lp.warm_repairs",
		"lp.phase1_skipped", "lp.pivots_saved",
	}
	snap := func(workers int) map[string]int64 {
		t.Helper()
		tp, err := topo.B4(6)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		if _, err := BuildPipeline(tp, PipelineOptions{
			Cutoff: 0.001, NumTickets: 8, Seed: 1, MaxScenarios: 12,
			Parallelism: workers, Recorder: reg,
		}); err != nil {
			t.Fatal(err)
		}
		counters := reg.Snapshot().Counters
		out := map[string]int64{}
		for _, k := range counterKeys {
			out[k] = counters[k]
		}
		return out
	}
	p1 := snap(1)
	if p1["lp.warm_starts"] == 0 || p1["lp.phase1_skipped"] == 0 {
		t.Fatalf("pipeline exercised no warm starts: %v", p1)
	}
	for _, workers := range []int{4, 8} {
		if pw := snap(workers); !reflect.DeepEqual(p1, pw) {
			t.Errorf("warm counters differ between Parallelism 1 and %d:\n  1: %v\n  %d: %v",
				workers, p1, workers, pw)
		}
	}
}
