package eval

import (
	"fmt"
	"math"
	"testing"

	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

// solveStandardArrow builds the standard B4 pipeline instance (the one the
// bench snapshot and arrow-report -run use) and solves the ARROW scheme
// with the given colgen mode, worker count and recorder attached to the TE
// solve only (the pipeline build stays unrecorded so counter comparisons
// isolate the two-phase TE).
func solveStandardArrow(t testing.TB, seed int64, workers int, noColgen bool, rec obs.Recorder) *te.Allocation {
	t.Helper()
	tp, err := topo.B4(seed + 5)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPipeline(tp, PipelineOptions{
		Cutoff: 0.001, NumTickets: 12, Seed: seed, MaxScenarios: 16, Parallelism: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.Generate(traffic.Options{
		Sites: tp.NumRouters(), Count: 1, MaxFlows: 40, TotalGbps: 1, Seed: seed + 7,
	})[0]
	base, err := pl.BaseNetwork(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	opts := &te.ArrowOptions{NoColgen: noColgen, Parallelism: workers}
	if rec != nil {
		opts.LP = &lp.Options{Recorder: rec}
	}
	al, err := te.Arrow(base.Scaled(3), pl.Scenarios, opts)
	if err != nil {
		t.Fatal(err)
	}
	return al
}

// TestColgenMatchesFullEnumeration is the correctness acceptance gate for
// the column-generation Phase I: on the standard seed configs, colgen and
// full enumeration must select byte-identical winning tickets at every
// pricing worker count, and agree on the final objective to 1e-6.
func TestColgenMatchesFullEnumeration(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		ref := solveStandardArrow(t, seed, 1, true, nil) // full enumeration
		for _, workers := range []int{1, 4, 8} {
			cg := solveStandardArrow(t, seed, workers, false, nil)
			if fmt.Sprint(cg.WinningTicket) != fmt.Sprint(ref.WinningTicket) {
				t.Errorf("seed %d workers %d: winners differ\ncolgen   %v\nfullenum %v",
					seed, workers, cg.WinningTicket, ref.WinningTicket)
			}
			if d := math.Abs(cg.Objective - ref.Objective); d > 1e-6*(1+math.Abs(ref.Objective)) {
				t.Errorf("seed %d workers %d: objective differs by %g (colgen %.9f, fullenum %.9f)",
					seed, workers, d, cg.Objective, ref.Objective)
			}
		}
	}
}

// TestColgenDeterministicAcrossWorkers requires the colgen solve to be
// byte-identical at every pricing parallelism: same winners, same final
// allocation vector, same master sizes. The pricing fan-out is index-
// addressed and appends happen in scenario order after each sweep, so no
// part of the result may depend on scheduling.
func TestColgenDeterministicAcrossWorkers(t *testing.T) {
	ref := solveStandardArrow(t, 1, 1, false, nil)
	for _, workers := range []int{4, 8} {
		al := solveStandardArrow(t, 1, workers, false, nil)
		if fmt.Sprint(al.WinningTicket) != fmt.Sprint(ref.WinningTicket) {
			t.Errorf("workers %d: winners differ: %v vs %v", workers, al.WinningTicket, ref.WinningTicket)
		}
		if fmt.Sprint(al.B) != fmt.Sprint(ref.B) || fmt.Sprint(al.A) != fmt.Sprint(ref.A) {
			t.Errorf("workers %d: allocation vectors differ from sequential run", workers)
		}
		if al.Stats != ref.Stats {
			t.Errorf("workers %d: solve stats differ: %+v vs %+v", workers, al.Stats, ref.Stats)
		}
	}
}

// TestColgenReducesWork is the performance acceptance gate: on the standard
// instance, column generation must spend at least 25% less Phase I simplex
// work (te.phase1_pivot_work — pivots weighted by the master size each ran
// against) than full enumeration and keep the Phase I master strictly
// smaller on both dimensions, at an equal final objective.
//
// The gate deliberately does NOT use raw lp.pivots. Every Phase I master row
// is satisfied at x = 0, so the engine's all-slack warm start gets
// feasibility for free in BOTH modes and the pivot COUNTS come out nearly
// even (colgen's re-solve repairs roughly cancel the shorter walk on its
// smaller masters). What colgen actually buys is cheaper pivots: Dantzig
// pricing scans every column nonzero and FTRAN/BTRAN solve against the
// row-dimension factors, so iterations against a 30-60% smaller master cost
// proportionally less. The work counter measures exactly that product, and
// the drop grows with scenario count (30% at the 16-scenario standard
// instance, 57% at 128 scenarios).
func TestColgenReducesWork(t *testing.T) {
	cgReg, feReg := obs.NewRegistry(), obs.NewRegistry()
	cg := solveStandardArrow(t, 1, 1, false, cgReg)
	fe := solveStandardArrow(t, 1, 1, true, feReg)

	cgWork := cgReg.Snapshot().Counters["te.phase1_pivot_work"]
	feWork := feReg.Snapshot().Counters["te.phase1_pivot_work"]
	if cgWork == 0 || feWork == 0 {
		t.Fatalf("missing phase 1 pivot work: colgen %d, fullenum %d", cgWork, feWork)
	}
	if float64(cgWork) > 0.75*float64(feWork) {
		t.Errorf("colgen phase 1 pivot work %d not >= 25%% below full enumeration's %d", cgWork, feWork)
	}
	if cg.Stats.Phase1Vars >= fe.Stats.Phase1Vars || cg.Stats.Phase1Rows >= fe.Stats.Phase1Rows {
		t.Errorf("colgen peak master %dv/%dr not strictly smaller than full enumeration's %dv/%dr",
			cg.Stats.Phase1Vars, cg.Stats.Phase1Rows, fe.Stats.Phase1Vars, fe.Stats.Phase1Rows)
	}
	if d := math.Abs(cg.Objective - fe.Objective); d > 1e-6*(1+math.Abs(fe.Objective)) {
		t.Errorf("objectives differ by %g at equal instances", d)
	}
	cgPivots := cgReg.Snapshot().Counters["te.phase1_pivots"]
	fePivots := feReg.Snapshot().Counters["te.phase1_pivots"]
	t.Logf("phase 1 work: colgen %d vs fullenum %d (%.1f%% drop); pivots %d vs %d; master: %dv/%dr vs %dv/%dr",
		cgWork, feWork, 100*(1-float64(cgWork)/float64(feWork)), cgPivots, fePivots,
		cg.Stats.Phase1Vars, cg.Stats.Phase1Rows, fe.Stats.Phase1Vars, fe.Stats.Phase1Rows)
}

// TestColgenCounters checks the observability contract: a colgen solve
// reports its pricing effort through the metrics registry, and the deferred
// count accounts for every ticket the master never needed.
func TestColgenCounters(t *testing.T) {
	reg := obs.NewRegistry()
	solveStandardArrow(t, 1, 1, false, reg)
	c := reg.Snapshot().Counters
	if c["te.pricing_rounds"] == 0 {
		t.Error("te.pricing_rounds = 0 after a colgen solve")
	}
	if c["lp.columns_priced"] == 0 {
		t.Error("lp.columns_priced = 0 (expected at least one priced ticket block on the standard instance)")
	}
	if c["te.tickets_deferred"] == 0 {
		t.Error("te.tickets_deferred = 0 (colgen enumerated every ticket; no saving)")
	}
}

// BenchmarkColgenVsFullEnum measures the two Phase I modes on the standard
// instance: wall clock per solve plus, as benchmark metrics, the Phase I
// pivot work, pivot count and peak master dimensions. The companion
// TestColgenReducesWork gates the work and master-size advantage.
func BenchmarkColgenVsFullEnum(b *testing.B) {
	for _, mode := range []struct {
		name     string
		noColgen bool
	}{{"colgen", false}, {"fullenum", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var al *te.Allocation
			reg := obs.NewRegistry()
			for i := 0; i < b.N; i++ {
				al = solveStandardArrow(b, 1, 1, mode.noColgen, reg)
			}
			c := reg.Snapshot().Counters
			b.ReportMetric(float64(c["te.phase1_pivot_work"])/float64(b.N), "p1work/op")
			b.ReportMetric(float64(c["te.phase1_pivots"])/float64(b.N), "p1pivots/op")
			b.ReportMetric(float64(al.Stats.Phase1Vars), "mastervars")
			b.ReportMetric(float64(al.Stats.Phase1Rows), "masterrows")
		})
	}
}
