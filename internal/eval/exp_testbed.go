package eval

import (
	"github.com/arrow-te/arrow/internal/emu"
	"github.com/arrow-te/arrow/internal/noise"
	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/stats"
	"github.com/arrow-te/arrow/internal/topo"
)

func init() {
	register(Experiment{
		ID:         "fig12",
		Title:      "End-to-end restoration latency: legacy vs ARROW noise loading",
		PaperClaim: "restoring 2.8 Tbps takes 1,021 s with amplifier reconfiguration, 8 s with ARROW (127x)",
		Run:        runFig12,
	})
	register(Experiment{
		ID:         "fig17",
		Title:      "Path inflation of restoration paths",
		PaperClaim: "~50% of restoration paths are shorter than the primary path; all below 5,000 km",
		Run:        runFig17,
	})
	register(Experiment{
		ID:         "fig19",
		Title:      "ROADMs reconfigured per fiber cut",
		PaperClaim: "80% of cuts touch <=10 add/drop and <=6 intermediate ROADMs",
		Run:        runFig19,
	})
	register(Experiment{
		ID:         "fig20",
		Title:      "Legacy amplifier settling on a long chain",
		PaperClaim: "reconfiguring 4 wavelengths across 24 amplifiers takes ~14 minutes",
		Run:        runFig20,
	})
}

func runFig12(cfg Config) (*Result, error) {
	net, err := emu.Testbed()
	if err != nil {
		return nil, err
	}
	legacy, err := emu.RunRestoration(net, []int{emu.FiberDC}, emu.Config{NoiseLoading: false, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	net2, err := emu.Testbed()
	if err != nil {
		return nil, err
	}
	arrow, err := emu.RunRestoration(net2, []int{emu.FiberDC}, emu.Config{NoiseLoading: true, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig12", Title: "Testbed restoration trial (fiber DC cut, 2.8 Tbps lost)",
		Header: []string{"mode", "restored (Tbps)", "latency (s)", "amps settled", "survivors disturbed"}}
	disturbed := func(t *emu.Trial) string {
		for _, s := range t.Series {
			if s.SurvivorPowerDB != 0 {
				return "yes"
			}
		}
		return "no"
	}
	r.AddRow("legacy", f1(legacy.RestoredGbps/1000), f1(legacy.DoneSec), fi(legacy.AmpsSettled), disturbed(legacy))
	r.AddRow("ARROW", f1(arrow.RestoredGbps/1000), f1(arrow.DoneSec), fi(arrow.AmpsSettled), disturbed(arrow))
	r.AddNote("speedup: %.0fx (paper: 1021 s vs 8 s = 127x)", legacy.DoneSec/arrow.DoneSec)
	return r, nil
}

func runFig17(cfg Config) (*Result, error) {
	tp, err := topo.Facebook(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	inflate := func(allowTuning bool) ([]float64, float64) {
		var ratios []float64
		maxKm := 0.0
		for f := range tp.Opt.Fibers {
			res, err := rwa.Solve(&rwa.Request{Net: tp.Opt, Cut: []int{f}, K: 2,
				AllowTuning: allowTuning, AllowModulationChange: true})
			if err != nil || len(res.Failed) == 0 {
				continue
			}
			counts := rwa.MaxIntegralWaves(res)
			asg, _ := rwa.AssignIntegral(res, counts)
			for li, lid := range res.Failed {
				link := tp.Opt.LinkByID(lid)
				if len(link.Waves) == 0 {
					continue
				}
				primaryKm := tp.Opt.PathLengthKm(link.Waves[0].FiberPath)
				for _, pick := range asg.PerLink[li] {
					opt := res.Options[li][pick[0]]
					if primaryKm > 0 {
						ratios = append(ratios, opt.LengthKm/primaryKm)
					}
					if opt.LengthKm > maxKm {
						maxKm = opt.LengthKm
					}
				}
			}
		}
		return ratios, maxKm
	}
	withTune, maxWith := inflate(true)
	withoutTune, maxWithout := inflate(false)
	r := &Result{ID: "fig17", Title: "Restoration-path / primary-path length ratio",
		Header: []string{"mode", "P(R<=P)", "median ratio", "P90 ratio", "max R-path (km)"}}
	for _, row := range []struct {
		name   string
		ratios []float64
		maxKm  float64
	}{{"with freq tuning", withTune, maxWith}, {"without freq tuning", withoutTune, maxWithout}} {
		if len(row.ratios) == 0 {
			r.AddRow(row.name, "n/a", "n/a", "n/a", "n/a")
			continue
		}
		cdf := stats.NewCDF(row.ratios)
		r.AddRow(row.name, pct(cdf.At(1.0)), f2(cdf.Percentile(50)), f2(cdf.Percentile(90)), f1(row.maxKm))
	}
	r.AddNote("paper: ~50%% of restoration paths shorter than primary; all <5,000 km (so 100G always possible)")
	return r, nil
}

func runFig19(cfg Config) (*Result, error) {
	tp, err := topo.Facebook(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	var addDrop, inter []float64
	for f := range tp.Opt.Fibers {
		res, err := rwa.Solve(&rwa.Request{Net: tp.Opt, Cut: []int{f}, K: 2,
			AllowTuning: true, AllowModulationChange: true})
		if err != nil || len(res.Failed) == 0 {
			continue
		}
		counts := rwa.MaxIntegralWaves(res)
		asg, _ := rwa.AssignIntegral(res, counts)
		plan := noise.BuildPlan(tp.Opt, res, asg)
		addDrop = append(addDrop, float64(plan.NumAddDropROADMs()))
		inter = append(inter, float64(plan.NumIntermediateROADMs()))
	}
	ad, in := stats.NewCDF(addDrop), stats.NewCDF(inter)
	r := &Result{ID: "fig19", Title: "ROADMs reconfigured per fiber cut",
		Header: []string{"x", "P(add/drop <= x)", "P(intermediate <= x)"}}
	for _, x := range []float64{0, 2, 4, 6, 8, 10, 14, 20} {
		r.AddRow(f1(x), pct(ad.At(x)), pct(in.At(x)))
	}
	r.AddNote("paper: 80%% of cuts need <=10 add/drop (measured P80=%.0f) and <=6 intermediate (measured P80=%.0f)",
		ad.Percentile(80), in.Percentile(80))
	return r, nil
}

func runFig20(cfg Config) (*Result, error) {
	times := emu.AmpChainSettle(24, emu.Config{Seed: cfg.Seed})
	r := &Result{ID: "fig20", Title: "Sequential amplifier settling, 24-amp chain (2,000 km)",
		Header: []string{"amplifier #", "settled at (s)"}}
	for i, t := range times {
		if i%4 == 3 || i == 0 || i == len(times)-1 {
			r.AddRow(fi(i+1), f1(t))
		}
	}
	r.AddNote("total %.1f minutes (paper: ~14 minutes for 24 amplifier sites)", times[len(times)-1]/60)
	return r, nil
}
