package eval

import (
	"github.com/arrow-te/arrow/internal/attr"
	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

// ResetSweepCache drops the memoised availability sweeps. The
// arrow-experiments -bench-json snapshot uses it so repeated fig13 runs
// measure the computation rather than the cache hit.
func ResetSweepCache() {
	sweepMu.Lock()
	defer sweepMu.Unlock()
	sweepCache = map[string]*sweepEntry{}
}

// BuildPipelineBench runs one standard B4 offline pipeline build (the same
// instance bench_test.go uses) at the given worker count. It exists so
// cmd/arrow-experiments can time the offline stage without importing test
// code; the result is discarded. noWarm disables LP warm starts and
// noColgen disables ticket column generation, for A/B comparison
// (arrow-experiments -warm=false / -colgen=false).
func BuildPipelineBench(seed int64, workers int, noWarm, noColgen bool) error {
	return BuildPipelineInstrumented(seed, workers, nil, noWarm, noColgen)
}

// BuildPipelineInstrumented is BuildPipelineBench with a metrics recorder
// attached, used by the -bench-json snapshot to embed the solver counters
// of the standard build. A nil recorder reproduces BuildPipelineBench.
func BuildPipelineInstrumented(seed int64, workers int, rec obs.Recorder, noWarm, noColgen bool) error {
	tp, err := topo.B4(seed + 5)
	if err != nil {
		return err
	}
	_, err = BuildPipeline(tp, PipelineOptions{
		Cutoff: 0.001, NumTickets: 12, Seed: seed, MaxScenarios: 16,
		Parallelism: workers, Recorder: rec, NoWarm: noWarm, NoColgen: noColgen,
	})
	return err
}

// BuildStressBench runs one correlated stress build — the stress-scenarios
// experiment's instance (B4 + conduit SRLGs, k-way cuts, zero cutoff) — and
// returns how many scenarios went through the offline stage. The bench
// harness's scenario-stress workload times it and gates on its deterministic
// counters; noCompose builds the cold A/B reference with the compositional
// warm starts disabled.
func BuildStressBench(seed int64, workers int, fast, noCompose bool, rec obs.Recorder) (int, error) {
	tp, err := topo.B4(seed + 5)
	if err != nil {
		return 0, err
	}
	po := stressOptions(Config{Fast: fast, Seed: seed, Parallelism: workers, NoCompose: noCompose}, rec)
	pl, err := BuildPipeline(tp, po)
	if err != nil {
		return 0, err
	}
	return len(pl.Set.Scenarios), nil
}

// RunRecorded runs the standard B4 pipeline (the same instance the bench
// snapshot measures) with a metrics recorder and flight-recorder ledger
// attached, then solves the ARROW scheme on a standard traffic matrix so
// the ledger carries the complete decision stream: scenarios, tickets, the
// two-phase solves with certificates, winners and residual demand. This is
// the default run behind cmd/arrow-report -run. noColgen switches the TE
// solves to full ticket enumeration (arrow-report -run -no-colgen), the A/B
// reference for the column-generation default.
func RunRecorded(seed int64, workers int, rec obs.Recorder, led *ledger.Ledger, noColgen bool) (*Pipeline, *te.Allocation, error) {
	return RunRecordedWith(RunOptions{
		Seed: seed, Workers: workers, Recorder: rec, Ledger: led, NoColgen: noColgen,
	})
}

// RunOptions parameterises RunRecordedWith. The zero value runs the
// standard instance serially with no sinks attached.
type RunOptions struct {
	Seed     int64
	Workers  int
	Recorder obs.Recorder
	Ledger   *ledger.Ledger
	NoColgen bool
	// HealthEvery probes every LP solve's numerical health at this pivot
	// period (0 = off); see PipelineOptions.HealthEvery.
	HealthEvery int
	// Profiler attributes the run's wall time and allocations to stages
	// (eval.topo, pipeline.*, eval.prepare, te.*); see
	// PipelineOptions.Profiler. Nil-safe and result-neutral like Recorder.
	Profiler *obs.StageProfiler
	// Attribution runs the post-solve availability-attribution pass
	// (internal/attr) over the solved ARROW allocation: loss decomposition,
	// shadow-price sensitivities and what-if probes, published to Recorder
	// (attr.* counters) and Ledger (attribution/sensitivity/whatif events).
	// The pass runs after the solve, sequentially; pipeline results are
	// byte-identical on or off at any Workers setting.
	Attribution bool
	// MaxCutSize, UseSRLGs, TargetMass and MaxEnumerated opt the run into
	// the correlated k-failure enumerator; NoCompose disables the
	// compositional warm-start stage for multi-fiber cuts. All-zero keeps
	// the legacy enumeration byte-identical (see PipelineOptions).
	MaxCutSize    int
	UseSRLGs      bool
	TargetMass    float64
	MaxEnumerated int
	NoCompose     bool
}

// RunRecordedWith is RunRecorded with the full option set, notably the
// solver-health probe period behind cmd/arrow-report -run -health-every.
func RunRecordedWith(opts RunOptions) (*Pipeline, *te.Allocation, error) {
	pl, al, _, err := RunRecordedAttr(opts)
	return pl, al, err
}

// RunRecordedAttr is RunRecordedWith plus the attribution report (nil
// unless opts.Attribution is set). This is the run behind
// cmd/arrow-report -run -attr.
func RunRecordedAttr(opts RunOptions) (*Pipeline, *te.Allocation, *attr.Report, error) {
	seed := opts.Seed
	endTopo := opts.Profiler.Stage("eval.topo")
	tp, err := topo.B4(seed + 5)
	endTopo()
	if err != nil {
		return nil, nil, nil, err
	}
	pl, err := BuildPipeline(tp, PipelineOptions{
		Cutoff: 0.001, NumTickets: 12, Seed: seed, MaxScenarios: 16,
		Parallelism: opts.Workers, Recorder: opts.Recorder, Ledger: opts.Ledger,
		NoColgen: opts.NoColgen, HealthEvery: opts.HealthEvery,
		Profiler: opts.Profiler, CaptureSensitivity: opts.Attribution,
		MaxCutSize: opts.MaxCutSize, UseSRLGs: opts.UseSRLGs,
		TargetMass: opts.TargetMass, MaxEnumerated: opts.MaxEnumerated,
		NoCompose: opts.NoCompose,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	endPrep := opts.Profiler.Stage("eval.prepare")
	m := traffic.Generate(traffic.Options{
		Sites: tp.NumRouters(), Count: 1, MaxFlows: 40, TotalGbps: 1, Seed: seed + 7,
	})[0]
	base, err := pl.BaseNetwork(m, 8)
	endPrep()
	if err != nil {
		return nil, nil, nil, err
	}
	n := base.Scaled(3)
	al, restored, err := pl.SolveScheme(SchemeArrow, n)
	if err != nil {
		return nil, nil, nil, err
	}
	var rep *attr.Report
	if opts.Attribution {
		endAttr := opts.Profiler.Stage("eval.attr")
		rep, err = attr.Run(
			attr.Input{Net: n, Alloc: al, Scenarios: pl.EvalScenarios(restored)},
			&attr.Options{
				LinkFibers: tp.LinkFibers(),
				WaveGbps:   linkWaveGbps(tp),
				Recorder:   opts.Recorder,
				Ledger:     opts.Ledger,
			})
		endAttr()
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return pl, al, rep, nil
}

// linkWaveGbps derives each IP link's "+1 wavelength" probe granularity
// from its provisioned lightpaths (capacity / wavelength count).
func linkWaveGbps(tp *topo.Topology) []float64 {
	out := make([]float64, len(tp.Opt.IPLinks))
	for i, l := range tp.Opt.IPLinks {
		if len(l.Waves) > 0 {
			out[i] = l.CapacityGbps() / float64(len(l.Waves))
		}
	}
	return out
}
