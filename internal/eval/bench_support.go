package eval

import (
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/topo"
)

// ResetSweepCache drops the memoised availability sweeps. The
// arrow-experiments -bench-json snapshot uses it so repeated fig13 runs
// measure the computation rather than the cache hit.
func ResetSweepCache() {
	sweepMu.Lock()
	defer sweepMu.Unlock()
	sweepCache = map[string]*sweepEntry{}
}

// BuildPipelineBench runs one standard B4 offline pipeline build (the same
// instance bench_test.go uses) at the given worker count. It exists so
// cmd/arrow-experiments can time the offline stage without importing test
// code; the result is discarded.
func BuildPipelineBench(seed int64, workers int) error {
	return BuildPipelineInstrumented(seed, workers, nil)
}

// BuildPipelineInstrumented is BuildPipelineBench with a metrics recorder
// attached, used by the -bench-json snapshot to embed the solver counters
// of the standard build. A nil recorder reproduces BuildPipelineBench.
func BuildPipelineInstrumented(seed int64, workers int, rec obs.Recorder) error {
	tp, err := topo.B4(seed + 5)
	if err != nil {
		return err
	}
	_, err = BuildPipeline(tp, PipelineOptions{
		Cutoff: 0.001, NumTickets: 12, Seed: seed, MaxScenarios: 16,
		Parallelism: workers, Recorder: rec,
	})
	return err
}
