package eval

import (
	"time"

	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

func init() {
	register(Experiment{
		ID:         "stress-scenarios",
		Title:      "Scenario-space stress: k-failure/SRLG enumeration at 10^4 scenarios",
		PaperClaim: "§6.3 argues the offline stage scales embarrassingly; this pushes the enumerator to 4-way cuts with conduit SRLGs and runs every scenario through RWA + ticket generation with compositional warm starts",
		Run:        runScenarioStress,
	})
}

// stressOptions is the stress configuration: B4 with its conduit SRLGs,
// up to 5 simultaneous element failures, no probability cutoff — the full
// k<=5 failure lattice of 23 elements, ~3e4 distinct cut sets after SRLG
// expansion merges overlapping subsets. Fast mode trims to 3-way cuts
// (~1.8e3 scenarios) so the registry stays laptop-sized.
func stressOptions(cfg Config, rec obs.Recorder) PipelineOptions {
	po := PipelineOptions{
		Cutoff: 0, NumTickets: 4, Seed: cfg.Seed, Parallelism: cfg.Parallelism,
		Recorder: rec, NoWarm: cfg.NoWarm, NoColgen: cfg.NoColgen, HealthEvery: cfg.HealthEvery,
		MaxCutSize: 5, UseSRLGs: true, NoCompose: cfg.NoCompose,
	}
	if cfg.Fast {
		po.MaxCutSize = 3
	}
	// Session-level scenario knobs (e.g. -max-enumerated, -target-mass)
	// override the stress defaults when explicitly set.
	if cfg.MaxCutSize > 0 {
		po.MaxCutSize = cfg.MaxCutSize
	}
	po.TargetMass = cfg.TargetMass
	po.MaxEnumerated = cfg.MaxEnumerated
	return po
}

func runScenarioStress(cfg Config) (*Result, error) {
	tp, err := topo.B4(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	// The stress run reads its own counters back, so it always records into
	// a private registry (cfg.Recorder still receives nothing here — the
	// bench harness wraps this experiment with its own recorder instead).
	reg := obs.NewRegistry()
	po := stressOptions(cfg, reg)

	start := time.Now()
	pl, err := BuildPipeline(tp, po)
	if err != nil {
		return nil, err
	}
	buildSec := time.Since(start).Seconds()
	c := reg.Snapshot().Counters

	multi := 0
	for _, sc := range pl.Set.Scenarios {
		if len(sc.Cut) > 1 {
			multi++
		}
	}

	// TE solve on a probability-ordered prefix: the offline stage is the
	// scaling story (10^4 solves); the colgen master gets the heaviest
	// slice that stays interactive.
	sub := *pl
	const teScenarios = 48
	if len(sub.Scenarios) > teScenarios {
		sub.Scenarios = sub.Scenarios[:teScenarios]
		sub.Naive = sub.Naive[:teScenarios]
		sub.Plain = sub.Plain[:teScenarios]
		sub.RWAResults = sub.RWAResults[:teScenarios]
	}
	m := traffic.Generate(traffic.Options{Sites: tp.NumRouters(), Count: 1, MaxFlows: 40, TotalGbps: 1, Seed: cfg.Seed + 7})[0]
	base, err := sub.BaseNetwork(m, 8)
	if err != nil {
		return nil, err
	}
	avail, thr, err := sub.SchemeAvailability(SchemeArrow, base, 3.0)
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "stress-scenarios", Title: "Scenario-space stress (B4 + conduit SRLGs)",
		Header: []string{"metric", "value"}}
	r.AddRow("failure elements", fi(len(tp.Opt.Fibers)+len(tp.SRLGs)))
	r.AddRow("max cut size k", fi(po.MaxCutSize))
	r.AddRow("scenarios enumerated", fi(int(c["scenario.enumerated"])))
	r.AddRow("lattice nodes pruned", fi(int(c["scenario.pruned"])))
	r.AddRow("residual probability", f4(pl.Set.ResidualProb))
	r.AddRow("relevant scenarios kept", fi(len(pl.Scenarios)))
	r.AddRow("multi-fiber cut sets", fi(multi))
	r.AddRow("warm-from-singles solves", fi(int(c["scenario.warm_from_singles"])))
	r.AddRow("composed basis vars adopted", fi(int(c["rwa.compose_adopted"])))
	r.AddRow("offline build seconds", f2(buildSec))
	r.AddRow("scenarios/sec through pipeline", f1(float64(len(pl.Set.Scenarios))/buildSec))
	r.AddRow("ARROW availability (48-scenario master, 3.0x)", f4(avail))
	r.AddRow("ARROW throughput", f4(thr))
	r.AddNote("every enumerated scenario runs the full offline stage (RWA + %d tickets); multi-cut solves warm-start from pre-staged single-cut bases unless -compose=false", po.NumTickets)
	return r, nil
}
