package eval

import (
	"testing"

	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/topo"
)

// TestStageProfilingPreservesDeterminism is the performance observatory's
// core guarantee: attaching a StageProfiler must not change a single byte
// of any pipeline artifact or TE allocation, at any worker count. The
// profiled builds at Parallelism 1, 4 and 8 are compared against the
// unprofiled Parallelism-1 baseline, and the profiler must actually have
// attributed the run (stages present, non-zero wall time) or the
// comparison proves nothing.
func TestStageProfilingPreservesDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds several full pipelines")
	}
	build := func(workers int, prof *obs.StageProfiler) *Pipeline {
		t.Helper()
		tp, err := topo.B4(6)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := BuildPipeline(tp, PipelineOptions{
			Cutoff: 0.001, NumTickets: 8, Seed: 1, MaxScenarios: 12,
			Parallelism: workers, Profiler: prof,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}

	baseline := build(1, nil)
	want := pipelineFingerprint(baseline)
	for _, workers := range []int{1, 4, 8} {
		prof := obs.NewStageProfiler()
		endTotal := prof.Total()
		pl := build(workers, prof)
		endTotal()
		if got := pipelineFingerprint(pl); got != want {
			t.Errorf("profiled pipeline at %d workers differs from unprofiled baseline", workers)
		}
		sp := prof.Snapshot()
		stages := map[string]obs.StageRecord{}
		for _, st := range sp.Stages {
			stages[st.Name] = st
		}
		for _, name := range []string{"pipeline.graph", "pipeline.enumerate", "pipeline.offline", "rwa.solve", "ticket.generate"} {
			if stages[name].Count == 0 {
				t.Errorf("workers=%d: stage %q never recorded; have %v", workers, name, sp.Stages)
			}
		}
		if stages["pipeline.offline"].WallSeconds <= 0 {
			t.Errorf("workers=%d: pipeline.offline recorded no wall time", workers)
		}
		if stages["rwa.solve"].Aggregate != true {
			t.Errorf("workers=%d: rwa.solve should be an aggregate stage", workers)
		}
		if sp.TotalSeconds <= 0 || sp.Coverage <= 0 {
			t.Errorf("workers=%d: total %.3fs coverage %.3f, want both > 0", workers, sp.TotalSeconds, sp.Coverage)
		}
	}

	// The TE solve must be equally oblivious: same allocation with the
	// profiler threaded through SolveScheme (te.phase1/te.phase2 stages).
	runOnce := func(prof *obs.StageProfiler) *pipelineSolve {
		pl, al, err := RunRecordedWith(RunOptions{Seed: 1, Workers: 2, Profiler: prof})
		if err != nil {
			t.Fatal(err)
		}
		return &pipelineSolve{fp: pipelineFingerprint(pl), b: al.B, winners: al.WinningTicket}
	}
	plain := runOnce(nil)
	prof := obs.NewStageProfiler()
	profiled := runOnce(prof)
	if plain.fp != profiled.fp {
		t.Error("recorded run's pipeline differs with a profiler attached")
	}
	if len(plain.b) != len(profiled.b) {
		t.Fatalf("allocation size differs: %d vs %d", len(plain.b), len(profiled.b))
	}
	for i := range plain.b {
		if plain.b[i] != profiled.b[i] {
			t.Fatalf("allocation b[%d] differs: %v vs %v", i, plain.b[i], profiled.b[i])
		}
	}
	for i := range plain.winners {
		if plain.winners[i] != profiled.winners[i] {
			t.Fatalf("winning ticket %d differs: %d vs %d", i, plain.winners[i], profiled.winners[i])
		}
	}
	sp := prof.Snapshot()
	found := map[string]bool{}
	for _, st := range sp.Stages {
		found[st.Name] = true
	}
	for _, name := range []string{"eval.topo", "eval.prepare", "te.phase1", "te.phase2", "te.pricing"} {
		if !found[name] {
			t.Errorf("recorded run missing stage %q; have %v", name, sp.Stages)
		}
	}
}

type pipelineSolve struct {
	fp      string
	b       []float64
	winners []int
}
