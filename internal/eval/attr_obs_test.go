package eval

import (
	"reflect"
	"testing"

	"github.com/arrow-te/arrow/internal/attr"
	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/obs"
)

// TestRunRecordedAttrIdentityAndDeterminism is the acceptance test for the
// availability-attribution observatory on the standard seed configuration:
//
//   - the loss decomposition is an identity (gap <= 1e-9, zero violations),
//   - every harvested shadow price agrees with its finite-difference warm
//     re-solve bracket within 1e-6,
//   - pipeline results are byte-identical with attribution on or off at
//     Parallelism 1, 4 and 8, and the attribution report itself is
//     identical at every worker count.
func TestRunRecordedAttrIdentityAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full recorded pipelines")
	}

	// Baseline: attribution off, sequential.
	basePl, baseAl, baseRep, err := RunRecordedAttr(RunOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if baseRep != nil {
		t.Fatal("attribution off returned a report")
	}
	if baseAl.Sens != nil {
		t.Fatal("attribution off captured a sensitivity handle")
	}
	want := pipelineFingerprint(basePl)

	var reports []*attr.Report
	for _, workers := range []int{1, 4, 8} {
		reg := obs.NewRegistry()
		led := ledger.New()
		pl, al, rep, err := RunRecordedAttr(RunOptions{
			Seed: 1, Workers: workers, Recorder: reg, Ledger: led, Attribution: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := pipelineFingerprint(pl); got != want {
			t.Errorf("workers=%d: pipeline differs with attribution on", workers)
		}
		if !reflect.DeepEqual(al.B, baseAl.B) || !reflect.DeepEqual(al.A, baseAl.A) ||
			!reflect.DeepEqual(al.WinningTicket, baseAl.WinningTicket) ||
			!reflect.DeepEqual(al.RestoredGbps, baseAl.RestoredGbps) {
			t.Errorf("workers=%d: allocation differs with attribution on", workers)
		}
		if rep == nil {
			t.Fatalf("workers=%d: attribution on returned no report", workers)
		}
		if rep.IdentityGap > attr.IdentityTol {
			t.Errorf("workers=%d: identity gap %g exceeds %g", workers, rep.IdentityGap, attr.IdentityTol)
		}
		if rep.IdentityViolations != 0 {
			t.Errorf("workers=%d: %d identity violations", workers, rep.IdentityViolations)
		}
		if len(rep.Sensitivities) == 0 {
			t.Errorf("workers=%d: no sensitivities harvested", workers)
		}
		for _, s := range rep.Sensitivities {
			if s.Dual < s.FDLow-1e-6 || s.Dual > s.FDHigh+1e-6 {
				t.Errorf("workers=%d: row %s dual %g outside FD bracket [%g, %g]",
					workers, s.Row, s.Dual, s.FDLow, s.FDHigh)
			}
		}
		if len(rep.Probes) == 0 {
			t.Errorf("workers=%d: no what-if probes evaluated", workers)
		}

		snap := reg.Snapshot()
		if snap.Counters["attr.runs"] != 1 {
			t.Errorf("workers=%d: attr.runs = %d", workers, snap.Counters["attr.runs"])
		}
		if snap.Counters["attr.identity_violations"] != 0 {
			t.Errorf("workers=%d: attr.identity_violations = %d", workers, snap.Counters["attr.identity_violations"])
		}
		if snap.Counters["attr.fd_mismatches"] != 0 {
			t.Errorf("workers=%d: attr.fd_mismatches = %d", workers, snap.Counters["attr.fd_mismatches"])
		}
		if snap.Counters["attr.fd_checks"] == 0 || snap.Counters["attr.probes"] == 0 {
			t.Errorf("workers=%d: fd_checks=%d probes=%d", workers,
				snap.Counters["attr.fd_checks"], snap.Counters["attr.probes"])
		}

		// The attribution event stream is emitted sequentially after the
		// solve, so even its ORDER is identical across worker counts.
		var attrEvents []ledger.Event
		for _, ev := range led.Events() {
			switch ev.Kind {
			case ledger.KindAttribution, ledger.KindSensitivity, ledger.KindWhatIf:
				ev.Seq = 0
				attrEvents = append(attrEvents, ev)
			}
		}
		if len(attrEvents) == 0 {
			t.Errorf("workers=%d: no attribution ledger events", workers)
		}
		reports = append(reports, rep)
		if workers == 1 {
			t.Logf("availability %.6f, loss %.3e, gap %.3e, %d sensitivities, %d probes",
				rep.Availability, rep.Loss, rep.IdentityGap, len(rep.Sensitivities), len(rep.Probes))
		}
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Errorf("attribution report differs between worker counts 1 and %d", []int{1, 4, 8}[i])
		}
	}
}
