package eval

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/arrow-te/arrow/internal/availability"
	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/par"
	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

func init() {
	register(Experiment{
		ID:         "fig13",
		Title:      "Availability vs demand scale for all TE schemes",
		PaperClaim: "ARROW sustains 2.0x-2.4x more demand than FFC/TeaVaR/ECMP at 99.99% availability",
		Run:        runFig13,
	})
	register(Experiment{
		ID:         "table5",
		Title:      "ARROW's demand gain at availability levels (B4)",
		PaperClaim: "gains of 1.5x-2.4x over Arrow-Naive, FFC-1/2, TeaVaR, ECMP across 99%..99.999%",
		Run:        runTable5,
	})
	register(Experiment{
		ID:         "fig14",
		Title:      "Impact of the number of LotteryTickets on throughput (B4)",
		PaperClaim: "throughput fluctuates at small |Z|, rises, then plateaus",
		Run:        runFig14,
	})
	register(Experiment{
		ID:         "fig15",
		Title:      "ARROW optimization runtime vs number of LotteryTickets",
		PaperClaim: "runtime grows with |Z|; Facebook with 120 tickets solves in 104 s, within the 5-minute TE deadline",
		Run:        runFig15,
	})
	register(Experiment{
		ID:         "fig16",
		Title:      "Router ports required at equal availability-guaranteed throughput",
		PaperClaim: "ARROW needs ~1.5x the fully-restorable minimum; TeaVaR 4.1x, FFC-1 5.2x, FFC-2 311x",
		Run:        runFig16,
	})
}

// simParams are the per-topology evaluation parameters (§6), with fast-mode
// reductions that preserve the comparison structure.
type simParams struct {
	cutoff       float64
	tickets      int
	tunnels      int
	maxFlows     int
	matrices     int
	maxScenarios int
}

func paramsFor(name string, fast bool) simParams {
	full := map[string]simParams{
		"B4":       {0.001, 40, 8, 132, 3, 40},
		"IBM":      {0.001, 40, 12, 120, 2, 40},
		"Facebook": {0.0002, 40, 16, 120, 1, 32},
	}
	p := full[name]
	if fast {
		p.tickets = 12
		p.matrices = 1
		p.maxFlows = 40
		p.maxScenarios = 16
		if name == "Facebook" {
			p.maxFlows = 60
			p.maxScenarios = 12
		}
	}
	return p
}

// sweepData is a memoised availability-vs-scale sweep for one topology.
type sweepData struct {
	scales []float64
	avail  map[Scheme][]float64
}

// sweepEntry memoises one sweep computation; the sync.Once collapses
// concurrent requests for the same key (fig13 and table5 fan out together
// under -parallelism) into a single computation.
type sweepEntry struct {
	once sync.Once
	d    *sweepData
	err  error
}

var (
	sweepMu    sync.Mutex
	sweepCache = map[string]*sweepEntry{}
)

func availabilitySweep(cfg Config, name string) (*sweepData, error) {
	// Parallelism is deliberately absent from the key: the sweep is
	// bit-identical for every worker count, so all settings share one entry.
	key := fmt.Sprintf("%s-%v-%d-%v-%v", name, cfg.Fast, cfg.Seed, cfg.NoWarm, cfg.NoColgen)
	sweepMu.Lock()
	e, ok := sweepCache[key]
	if !ok {
		e = &sweepEntry{}
		sweepCache[key] = e
	}
	sweepMu.Unlock()
	e.once.Do(func() { e.d, e.err = computeSweep(cfg, name) })
	return e.d, e.err
}

// arrowOptsFor forwards the config's recorder, warm-start and colgen
// switches into a direct te.Arrow call; nil when none is set, exactly as
// before instrumentation.
func arrowOptsFor(cfg Config) *te.ArrowOptions {
	if cfg.Recorder == nil && !cfg.NoWarm && !cfg.NoColgen {
		return nil
	}
	opts := &te.ArrowOptions{NoWarm: cfg.NoWarm, NoColgen: cfg.NoColgen}
	if cfg.Recorder != nil {
		opts.LP = &lp.Options{Recorder: cfg.Recorder}
	}
	return opts
}

func computeSweep(cfg Config, name string) (*sweepData, error) {
	p := paramsFor(name, cfg.Fast)
	tp, err := topo.ByName(name, cfg.Seed+5)
	if err != nil {
		return nil, err
	}
	pl, err := BuildPipeline(tp, cfg.applyScenario(PipelineOptions{
		Cutoff: p.cutoff, NumTickets: p.tickets, Seed: cfg.Seed, MaxScenarios: p.maxScenarios,
		Parallelism: cfg.Parallelism, Recorder: cfg.Recorder, NoWarm: cfg.NoWarm, NoColgen: cfg.NoColgen,
	}))
	if err != nil {
		return nil, err
	}
	ms := traffic.Generate(traffic.Options{
		Sites: tp.NumRouters(), Count: p.matrices, MaxFlows: p.maxFlows,
		TotalGbps: 1, Seed: cfg.Seed + 7,
	})
	scales := []float64{1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 7.0}
	if !cfg.Fast {
		scales = []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 7.0}
	}
	d := &sweepData{scales: scales, avail: map[Scheme][]float64{}}
	for _, s := range AllSchemes() {
		d.avail[s] = make([]float64, len(scales))
	}

	// The (matrix, scale, scheme) grid cells are independent TE solves:
	// fan them out, then reduce in the sequential path's exact iteration
	// order so the floating-point sums are bit-identical to Parallelism 1.
	bases := make([]*te.Network, len(ms))
	for mi, m := range ms {
		if bases[mi], err = pl.BaseNetwork(m, p.tunnels); err != nil {
			return nil, err
		}
	}
	schemes := AllSchemes()
	type cell struct{ mi, si, zi int }
	var jobs []cell
	for mi := range ms {
		for si := range scales {
			for zi := range schemes {
				jobs = append(jobs, cell{mi, si, zi})
			}
		}
	}
	avails, err := par.Map(obs.WithRecorder(context.Background(), cfg.Recorder), cfg.Parallelism, len(jobs), func(_ context.Context, j int) (float64, error) {
		c := jobs[j]
		a, _, err := pl.SchemeAvailability(schemes[c.zi], bases[c.mi], scales[c.si])
		if err != nil {
			return 0, fmt.Errorf("%s at scale %g: %w", schemes[c.zi], scales[c.si], err)
		}
		return a, nil
	})
	if err != nil {
		return nil, err
	}
	for j, c := range jobs {
		d.avail[schemes[c.zi]][c.si] += avails[j] / float64(len(ms))
	}
	return d, nil
}

// maxScaleAt returns the largest demand scale at which the scheme's
// availability stays >= target (linear interpolation between grid points).
func (d *sweepData) maxScaleAt(s Scheme, target float64) float64 {
	av := d.avail[s]
	best := 0.0
	for i := range d.scales {
		if av[i] >= target {
			best = d.scales[i]
			// Interpolate into the next segment if it dips below there.
			if i+1 < len(d.scales) && av[i+1] < target {
				frac := (av[i] - target) / (av[i] - av[i+1])
				best = d.scales[i] + frac*(d.scales[i+1]-d.scales[i])
			}
		}
	}
	return best
}

func runFig13(cfg Config) (*Result, error) {
	names := []string{"B4"}
	if !cfg.Fast {
		names = []string{"B4", "IBM", "Facebook"}
	}
	r := &Result{ID: "fig13", Title: "Availability vs demand scale",
		Header: append([]string{"topology", "scale"}, schemeNames()...)}
	for _, name := range names {
		d, err := availabilitySweep(cfg, name)
		if err != nil {
			return nil, err
		}
		for si, scale := range d.scales {
			row := []string{name, f2(scale)}
			for _, s := range AllSchemes() {
				row = append(row, fmt.Sprintf("%.5f", d.avail[s][si]))
			}
			r.Rows = append(r.Rows, row)
		}
		a99 := d.maxScaleAt(SchemeArrow, 0.9999)
		for _, s := range []Scheme{SchemeFFC1, SchemeTeaVaR, SchemeECMP} {
			o := d.maxScaleAt(s, 0.9999)
			if o > 0 {
				r.AddNote("%s: ARROW sustains %.2fx demand at 99.99%%; %s sustains %.2fx (gain %.1fx)",
					name, a99, s, o, a99/o)
			}
		}
	}
	r.AddNote("paper (Fig. 13): ARROW maintains higher availability at every demand scale; 2.0x-2.4x gains at 99.99%%")
	return r, nil
}

func schemeNames() []string {
	var out []string
	for _, s := range AllSchemes() {
		out = append(out, string(s))
	}
	return out
}

func runTable5(cfg Config) (*Result, error) {
	d, err := availabilitySweep(cfg, "B4")
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "table5", Title: "ARROW gain in satisfied demand (B4)",
		Header: []string{"availability", "vs Arrow-Naive", "vs FFC-1", "vs FFC-2", "vs TeaVaR", "vs ECMP"}}
	ceiling := 0.0
	for _, a := range d.avail[SchemeArrow] {
		if a > ceiling {
			ceiling = a
		}
	}
	for _, target := range []float64{0.99999, 0.9999, 0.999, 0.99} {
		a := d.maxScaleAt(SchemeArrow, target)
		row := []string{fmt.Sprintf("%.3f%%", 100*target)}
		for _, s := range []Scheme{SchemeArrowNaive, SchemeFFC1, SchemeFFC2, SchemeTeaVaR, SchemeECMP} {
			o := d.maxScaleAt(s, target)
			switch {
			case a <= 0:
				row = append(row, "n/a") // target above ARROW's own ceiling
			case o <= 0:
				row = append(row, "inf") // baseline never reaches the target
			default:
				row = append(row, fmt.Sprintf("%.1fx", a/o))
			}
		}
		r.Rows = append(r.Rows, row)
	}
	r.AddNote("paper (Table 5): 1.6x-2.4x over Arrow-Naive, 1.5x-2.4x over FFC/TeaVaR/ECMP")
	r.AddNote("measured ARROW availability ceiling on this synthetic instance: %.5f — targets above it read n/a; 'inf' means the baseline never reaches the target at any scale", ceiling)
	return r, nil
}

func runFig14(cfg Config) (*Result, error) {
	p := paramsFor("B4", cfg.Fast)
	tp, err := topo.B4(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	ms := traffic.Generate(traffic.Options{Sites: tp.NumRouters(), Count: 1, MaxFlows: p.maxFlows, TotalGbps: 1, Seed: cfg.Seed + 7})
	ticketCounts := []int{1, 2, 5, 10, 20, 40}
	if !cfg.Fast {
		ticketCounts = []int{1, 2, 5, 10, 20, 40, 80, 120}
	}
	scale := 4.2
	r := &Result{ID: "fig14", Title: fmt.Sprintf("Throughput vs |Z| (B4, %.1fx demand)", scale),
		Header: []string{"tickets |Z|", "throughput"}}
	var series []float64
	for _, tc := range ticketCounts {
		pl, err := BuildPipeline(tp, cfg.applyScenario(PipelineOptions{Cutoff: p.cutoff, NumTickets: tc, Seed: cfg.Seed, MaxScenarios: p.maxScenarios, Parallelism: cfg.Parallelism, Recorder: cfg.Recorder, NoWarm: cfg.NoWarm, NoColgen: cfg.NoColgen, HealthEvery: cfg.HealthEvery}))
		if err != nil {
			return nil, err
		}
		base, err := pl.BaseNetwork(ms[0], p.tunnels)
		if err != nil {
			return nil, err
		}
		n := base.Scaled(scale)
		al, err := te.Arrow(n, pl.Scenarios, arrowOptsFor(cfg))
		if err != nil {
			return nil, err
		}
		thr := al.Throughput(n)
		series = append(series, thr)
		r.AddRow(fi(tc), f4(thr))
	}
	if len(series) > 1 {
		r.AddNote("|Z|=1 equals Arrow-Naive; throughput rises with |Z| and plateaus (paper Fig. 14): first %.4f -> last %.4f",
			series[0], series[len(series)-1])
	}
	return r, nil
}

func runFig15(cfg Config) (*Result, error) {
	p := paramsFor("B4", cfg.Fast)
	tp, err := topo.B4(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	ms := traffic.Generate(traffic.Options{Sites: tp.NumRouters(), Count: 1, MaxFlows: p.maxFlows, TotalGbps: 1, Seed: cfg.Seed + 7})
	ticketCounts := []int{1, 5, 10, 20}
	if !cfg.Fast {
		ticketCounts = []int{1, 5, 10, 20, 40, 80, 120}
	}
	r := &Result{ID: "fig15", Title: "ARROW TE solve time vs |Z| (B4, this machine)",
		Header: []string{"tickets |Z|", "phase I+II solve (s)", "phase I rows", "simplex iters"}}
	for _, tc := range ticketCounts {
		pl, err := BuildPipeline(tp, cfg.applyScenario(PipelineOptions{Cutoff: p.cutoff, NumTickets: tc, Seed: cfg.Seed, MaxScenarios: p.maxScenarios, Parallelism: cfg.Parallelism, Recorder: cfg.Recorder, NoWarm: cfg.NoWarm, NoColgen: cfg.NoColgen, HealthEvery: cfg.HealthEvery}))
		if err != nil {
			return nil, err
		}
		base, err := pl.BaseNetwork(ms[0], p.tunnels)
		if err != nil {
			return nil, err
		}
		n := base.Scaled(2.5)
		start := time.Now()
		al, err := te.Arrow(n, pl.Scenarios, arrowOptsFor(cfg))
		if err != nil {
			return nil, err
		}
		r.AddRow(fi(tc), fmt.Sprintf("%.3f", time.Since(start).Seconds()),
			fi(al.Stats.Phase1Rows), fi(al.Stats.Phase1Iters+al.Stats.Phase2Iters))
	}
	r.AddNote("paper (Fig. 15, Gurobi on 32-core EPYC): Facebook/120 tickets = 104 s, within the 5-minute deadline; this is a pure-Go simplex on one core, so absolute times differ but growth with |Z| holds")
	return r, nil
}

func runFig16(cfg Config) (*Result, error) {
	name := "B4"
	d := paramsFor(name, cfg.Fast)
	tp, err := topo.ByName(name, cfg.Seed+5)
	if err != nil {
		return nil, err
	}
	pl, err := BuildPipeline(tp, cfg.applyScenario(PipelineOptions{Cutoff: d.cutoff, NumTickets: d.tickets, Seed: cfg.Seed, MaxScenarios: d.maxScenarios, Parallelism: cfg.Parallelism, Recorder: cfg.Recorder, NoWarm: cfg.NoWarm, NoColgen: cfg.NoColgen, HealthEvery: cfg.HealthEvery}))
	if err != nil {
		return nil, err
	}
	ms := traffic.Generate(traffic.Options{Sites: tp.NumRouters(), Count: 1, MaxFlows: d.maxFlows, TotalGbps: 1, Seed: cfg.Seed + 7})
	base, err := pl.BaseNetwork(ms[0], d.tunnels)
	if err != nil {
		return nil, err
	}
	n := base.Scaled(2.0)
	const beta = 0.999
	r := &Result{ID: "fig16", Title: "Normalized router ports at equal 99.9%-guaranteed throughput (B4)",
		Header: []string{"scheme", "CAP/guaranteed", "vs fully restorable"}}
	schemes := append([]Scheme{SchemeFullyRest}, AllSchemes()...)
	baseline := 0.0
	for _, s := range schemes {
		al, restored, err := pl.SolveScheme(s, n)
		if err != nil {
			return nil, err
		}
		ev := &availability.Evaluator{Net: n, Alloc: al, ECMPRebalance: s == SchemeECMP}
		scs := pl.EvalScenarios(restored)
		if s == SchemeFullyRest {
			// Hypothetical: every failure fully restored -> evaluate against
			// no failures at all.
			scs = nil
		}
		capn := ev.RequiredCapacity(scs, beta)
		if s == SchemeFullyRest {
			baseline = capn
		}
		rel := "1.0x"
		if baseline > 0 && s != SchemeFullyRest {
			rel = fmt.Sprintf("%.1fx", capn/baseline)
		}
		r.AddRow(string(s), f1(capn), rel)
	}
	r.AddNote("paper (Fig. 16): ARROW 1.5x the fully-restorable minimum; TeaVaR 4.1x, FFC-1 5.2x, FFC-2 311x (Facebook topology); shape = ARROW needs far less over-provisioning")
	return r, nil
}
