package eval

import (
	"fmt"
	"math"

	"github.com/arrow-te/arrow/internal/spectrum"
	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/ticket"
	"github.com/arrow-te/arrow/internal/topo"
)

func init() {
	register(Experiment{
		ID:         "table4",
		Title:      "Network topologies used in simulations",
		PaperClaim: "Facebook 34/84/156/262, IBM 17/17/23/85, B4 12/12/19/52 (routers/ROADMs/fibers/IP links)",
		Run:        runTable4,
	})
	register(Experiment{
		ID:         "table6",
		Title:      "Terrestrial long-haul transponder specification",
		PaperClaim: "100G@5000km, 200G@3000km, 300G@1500km, 400G@1000km",
		Run:        runTable6,
	})
	register(Experiment{
		ID:         "table8",
		Title:      "Size of the joint IP/optical TE formulation",
		PaperClaim: "joint ILP needs billions of binary variables at Facebook scale; intractable",
		Run:        runTable8,
	})
	register(Experiment{
		ID:         "table9",
		Title:      "Two-phase LP vs binary ILP ticket selection",
		PaperClaim: "the binary ILP is exact but exponential; ARROW's two-phase LP matches it when the optimal ticket is in Z",
		Run:        runTable9,
	})
}

func runTable4(cfg Config) (*Result, error) {
	r := &Result{ID: "table4", Title: "Topology inventory",
		Header: []string{"topology", "routers", "ROADMs", "fibers", "IP links", "wavelengths", "capacity (Tbps)"}}
	names := []string{"B4", "IBM"}
	if !cfg.Fast {
		names = append(names, "Facebook")
	} else {
		names = append(names, "Facebook")
	}
	for _, name := range names {
		tp, err := topo.ByName(name, cfg.Seed+5)
		if err != nil {
			return nil, err
		}
		s := tp.Stats()
		r.AddRow(name, fi(s.Routers), fi(s.ROADMs), fi(s.Fibers), fi(s.IPLinks), fi(s.Wavelengths), f1(s.TotalCapacityGbps/1000))
	}
	r.AddNote("paper (Table 4): Facebook 34/84 ROADMs, 156 fibers, 262 IP links; IBM 17, 23, 85; B4 12, 19, 52")
	return r, nil
}

func runTable6(Config) (*Result, error) {
	r := &Result{ID: "table6", Title: "Modulation datarate vs reach",
		Header: []string{"datarate (Gbps)", "reach (km)"}}
	for _, m := range spectrum.Table6 {
		r.AddRow(f1(m.GbpsPerWavelength), f1(m.ReachKm))
	}
	return r, nil
}

func runTable8(cfg Config) (*Result, error) {
	r := &Result{ID: "table8", Title: "Joint IP/optical formulation size",
		Header: []string{"topology", "binary vars", "continuous vars", "constraints"}}
	// Parameters per topology: flows (all pairs), tunnels, IP links,
	// fibers, 96 slots, enumerated scenarios, avg failed links/scenario,
	// k=3 surrogate paths, avg path length.
	cases := []struct {
		name                                 string
		F, T, E, Phi, W, Q, fail, k, pathLen int
	}{
		{"Facebook", 34 * 33, 16, 262, 156, 96, 30, 5, 3, 5},
		{"IBM", 17 * 16, 12, 85, 23, 96, 30, 4, 3, 4},
		{"B4", 12 * 11, 8, 52, 19, 96, 30, 3, 3, 4},
	}
	for _, c := range cases {
		s := te.JointModelStats(c.F, c.T, c.E, c.Phi, c.W, c.Q, c.fail, c.k, c.pathLen)
		r.AddRow(c.name, humanCount(s.BinaryVars), humanCount(s.ContinuousVars), humanCount(s.Constraints))
	}
	r.AddNote("paper (Table 8): Facebook 12,280M binary vars (memory overflow); IBM 81M; B4 52M — same orders of magnitude of blow-up")
	return r, nil
}

func humanCount(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.1fB", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	}
	return fmt.Sprintf("%d", v)
}

func runTable9(cfg Config) (*Result, error) {
	// Small instance where the exact binary ILP is tractable: compare its
	// objective and winner with the two-phase LP across several ticket
	// sets.
	r := &Result{ID: "table9", Title: "Two-phase LP vs binary ILP",
		Header: []string{"case", "two-phase obj", "binary ILP obj", "gap", "same winner"}}

	n := &te.Network{
		LinkCap: []float64{400, 800, 600},
		Flows: []te.Flow{
			{Src: 0, Dst: 1, Demand: 100},
			{Src: 0, Dst: 1, Demand: 400},
			{Src: 0, Dst: 1, Demand: 250},
		},
		Tunnels: [][]te.Tunnel{
			{{Links: []int{0}}, {Links: []int{2}}},
			{{Links: []int{1}}, {Links: []int{2}}},
			{{Links: []int{2}}, {Links: []int{0}}},
		},
	}
	cases := []struct {
		name    string
		tickets []ticket.Ticket
	}{
		{"fig7-style", []ticket.Ticket{
			{Waves: []int{2, 3, 1}, Gbps: []float64{200, 300, 100}},
			{Waves: []int{1, 4, 1}, Gbps: []float64{100, 400, 100}},
			{Waves: []int{3, 2, 1}, Gbps: []float64{300, 200, 100}},
		}},
		{"skewed", []ticket.Ticket{
			{Waves: []int{0, 5, 1}, Gbps: []float64{0, 500, 100}},
			{Waves: []int{5, 0, 1}, Gbps: []float64{500, 0, 100}},
		}},
		{"uniform", []ticket.Ticket{
			{Waves: []int{2, 2, 2}, Gbps: []float64{200, 200, 200}},
		}},
	}
	for _, c := range cases {
		scs := []te.RestorableScenario{{
			FailureScenario: te.FailureScenario{Prob: 0.01, FailedLinks: []int{0, 1, 2}},
			TicketLinks:     []int{0, 1, 2},
			Tickets:         c.tickets,
		}}
		lpAl, err := te.Arrow(n, scs, arrowOptsFor(cfg))
		if err != nil {
			return nil, err
		}
		ilpAl, winners, err := te.BinaryILP(n, scs, nil)
		if err != nil {
			return nil, err
		}
		gap := math.Abs(lpAl.Objective - ilpAl.Objective)
		r.AddRow(c.name, f1(lpAl.Objective), f1(ilpAl.Objective), f2(gap),
			fmt.Sprint(lpAl.WinningTicket[0] == winners[0]))
	}
	r.AddNote("the two-phase LP reaches the ILP objective whenever the winning ticket is selected identically (Theorem 3.1 premise)")
	return r, nil
}
