package eval

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5", "fig6", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig19", "fig20", "fig21", "fig22",
		"table4", "table5", "table6", "table8", "table9",
		"thm31", "ablation-alpha", "ablation-stride", "timeline", "ext-clband", "table10",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if len(Experiments()) < len(want) {
		t.Fatalf("registry has %d experiments, want >= %d", len(Experiments()), len(want))
	}
}

func TestRenderText(t *testing.T) {
	r := &Result{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("hello %d", 7)
	out := RenderText(r)
	for _, want := range []string{"demo", "a", "bb", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestLightExperiments runs every experiment that completes quickly in fast
// mode and sanity-checks the output structure.
func TestLightExperiments(t *testing.T) {
	cfg := Config{Fast: true, Seed: 1}
	for _, id := range []string{"fig3", "fig4", "fig12", "fig20", "fig21", "table4", "table6", "table8", "table9"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		res, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		if res.ID != id {
			t.Fatalf("%s returned result id %s", id, res.ID)
		}
	}
}

func TestFacebookMeasureExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("facebook topology experiments take a while")
	}
	cfg := Config{Fast: true, Seed: 1}
	for _, id := range []string{"fig5", "fig22"} {
		e, _ := ByID(id)
		res, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	r := &Result{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	r.AddRow("1", "2")
	r.AddNote("note %s", "one")
	out := RenderMarkdown(r)
	for _, want := range []string{"### x — demo", "| a | b |", "| 1 | 2 |", "> note one"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
