package eval

import (
	"context"
	"fmt"
	"sort"

	"github.com/arrow-te/arrow/internal/availability"
	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/lp"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/par"
	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/scenario"
	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/ticket"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

// Pipeline assembles everything the simulation experiments share for one
// topology: probabilistic fiber-cut scenarios, per-scenario RWA solutions,
// LotteryTickets, and the projections onto the IP layer.
type Pipeline struct {
	Topo *topo.Topology
	Set  *scenario.Set
	// Scenarios carries the full ticket set Z^q per scenario (for ARROW).
	Scenarios []te.RestorableScenario
	// Naive carries a single RWA-derived candidate per scenario
	// (for Arrow-Naive).
	Naive []te.RestorableScenario
	// Plain carries the failure scenarios without restoration (FFC/TeaVaR).
	Plain []te.FailureScenario
	// RWAResults holds the per-scenario relaxed RWA solutions, aligned with
	// Scenarios.
	RWAResults []*rwa.Result

	baseUtilization float64
	rec             obs.Recorder
	led             *ledger.Ledger
	noWarm          bool
	noColgen        bool
	parallelism     int
	healthEvery     int
	prof            *obs.StageProfiler
	captureSens     bool
}

// PipelineOptions configures pipeline construction.
type PipelineOptions struct {
	Cutoff     float64 // scenario probability cutoff (paper: §6)
	NumTickets int     // |Z| per scenario
	Stride     int     // rounding stride delta
	K          int     // surrogate paths per failed link
	Seed       int64
	// MaxScenarios caps the number of RELEVANT scenarios (cuts that fail at
	// least one IP link) kept from the probability-sorted list, to keep LP
	// sizes tractable; 0 = no cap. Cuts that touch no IP link never count
	// against the budget.
	MaxScenarios int
	// MaxCutSize switches scenario enumeration to the correlated k-failure
	// enumerator (scenario.EnumerateCorrelated) with up to MaxCutSize
	// simultaneous element failures. 0 keeps the legacy singles+pairs
	// enumerator and the byte-identical pre-existing pipeline; note that
	// MaxCutSize=2 without SRLGs produces the same scenario set through the
	// best-first lattice walk.
	MaxCutSize int
	// UseSRLGs adds the topology's shared-risk link groups as correlated
	// failure elements (conduit cuts that down several fibers at once).
	// Implies the correlated enumerator.
	UseSRLGs bool
	// TargetMass stops enumeration once the emitted scenarios cover this
	// much probability mass (0 = disabled). Implies the correlated
	// enumerator.
	TargetMass float64
	// MaxEnumerated caps the number of distinct cut sets the correlated
	// enumerator emits (0 = unbounded). Unlike MaxScenarios it bounds the
	// ENUMERATION itself, which is what keeps 10^4–10^5-scenario sweeps
	// from materialising the full failure lattice. Implies the correlated
	// enumerator.
	MaxEnumerated int
	// NoCompose disables the compositional offline stage for multi-fiber
	// cuts: without it each multi-cut RWA solves cold from the slack basis
	// and its ticket pool carries no composed-from-singles candidate. The
	// switch exists for A/B comparison of pivot work; compose on/off may
	// pick different (equally valid) tickets.
	NoCompose bool
	// Parallelism is the worker count for the per-scenario RWA solves and
	// LotteryTicket generation (the offline stage is embarrassingly
	// parallel, §6.3). 0 selects runtime.NumCPU(); 1 is fully sequential.
	// Results are identical for every setting.
	Parallelism int
	// BaseUtilization positions demand scale 1.0 relative to the
	// max-concurrent-flow saturation point (default 0.1: production WANs
	// are over-provisioned, so the paper's sweep starts from a comfortably
	// satisfiable state — every scheme admits 100% — and scales up
	// several-fold until the failure-protection knees separate the schemes).
	BaseUtilization float64
	// Recorder receives pipeline metrics (scenario counts, stage spans,
	// relaxation gaps) and is threaded through every layer the offline
	// stage touches: RWA, ticket generation, the LP solver and the worker
	// pool, plus the TE solves issued later via SolveScheme. A nil
	// Recorder costs nothing and never changes the pipeline.
	Recorder obs.Recorder
	// Ledger, when non-nil, records the per-run decision stream: scenario
	// enumeration and relevance, per-ticket generation/rejection (tagged
	// with the ENUMERATED scenario index), and — through SolveScheme — the
	// TE solves, winners and residual demand. Same contract as Recorder:
	// nil costs nothing and results are byte-identical either way.
	Ledger *ledger.Ledger
	// NoWarm disables LP warm starts in the per-scenario RWA solves and the
	// TE solves issued later via SolveScheme. The default (warm) uses only
	// deterministic warm sources, so results stay schedule-independent at
	// every Parallelism; the switch exists for A/B pivot-count comparison.
	NoWarm bool
	// NoColgen makes the ARROW Phase I solves issued via SolveScheme
	// enumerate every ticket up front instead of pricing ticket columns in
	// lazily. Both modes produce identical winning-ticket allocations at
	// every Parallelism; the switch exists for A/B comparison of pivot
	// counts and master sizes.
	NoColgen bool
	// HealthEvery probes every LP the pipeline issues (the per-scenario RWA
	// assignment solves and, via SolveScheme, the TE masters) for numerical
	// health every HealthEvery pivots (see lp.Options.HealthEvery). Zero
	// keeps probing off. Probes only read solver state: results are
	// byte-identical probed or not, at every Parallelism.
	HealthEvery int
	// Profiler attributes the build's resources to stages: the top-level
	// pipeline.graph / pipeline.enumerate / pipeline.offline wall stages
	// plus the rwa.solve / ticket.generate aggregates summed across
	// workers. It is threaded into the TE solves issued later via
	// SolveScheme (te.phase1, te.phase2, te.pricing). Same contract as
	// Recorder: nil costs a nil check and the pipeline is byte-identical
	// profiled or not, at every Parallelism.
	Profiler *obs.StageProfiler
	// CaptureSensitivity makes the ARROW solves issued via SolveScheme
	// attach the final Phase II model/basis/duals to the allocation
	// (te.ArrowOptions.CaptureSensitivity) for post-solve availability
	// attribution. Results are byte-identical captured or not, at every
	// Parallelism.
	CaptureSensitivity bool
}

// solveRWA is rwa.Solve behind a seam so tests can inject failures into
// the parallel offline stage without constructing a pathological topology.
var solveRWA = rwa.Solve

// BuildPipeline runs the offline stage of ARROW for every scenario above
// the cutoff: RWA (Algorithm 1 line 2) and LotteryTicket generation with
// feasibility filtering (§3.2). The per-scenario solves fan out over
// opts.Parallelism workers; results are identical to the sequential path.
func BuildPipeline(tp *topo.Topology, opts PipelineOptions) (*Pipeline, error) {
	return BuildPipelineContext(context.Background(), tp, opts)
}

// scenarioArtifacts is the output of the offline stage for one enumerated
// scenario, written into an index-addressed slot by its worker.
type scenarioArtifacts struct {
	res     *rwa.Result
	tickets []ticket.Ticket
	naive   ticket.Ticket
	// seeds is the number of leading tickets the colgen master should
	// install up front (0 = the conventional single seed; 2 when a
	// composed-from-singles candidate rides second).
	seeds int
}

// singleSource is one pre-staged single-fiber-cut RWA solve, reused by the
// compositional offline stage both as a warm-start source and as the ticket
// composition base for every multi-fiber cut containing its fiber.
type singleSource struct {
	res   *rwa.Result
	waves map[int]int // failed IP link -> naive integral wave count
}

// composedTicket adapts the pipeline's pre-staged singles map to
// ticket.Compose, which builds the composed-from-singles restoration
// candidate for a multi-fiber cut (see its doc for the semantics).
func composedTicket(res *rwa.Result, cut []int, singles map[int]*singleSource) (ticket.Ticket, bool) {
	return ticket.Compose(res, cut, func(f int) map[int]int {
		if s := singles[f]; s != nil {
			return s.waves
		}
		return nil
	})
}

// relevant reports whether the scenario's cut fails at least one IP link
// (cuts that touch none are irrelevant to the TE and never enter the
// pipeline or count against the MaxScenarios budget).
func (a *scenarioArtifacts) relevant() bool { return a.res != nil && len(a.res.Failed) > 0 }

// BuildPipelineContext is BuildPipeline with cancellation: ctx aborts the
// worker pool between scenario solves (a failing RWA solve likewise
// cancels all outstanding work).
func BuildPipelineContext(ctx context.Context, tp *topo.Topology, opts PipelineOptions) (*Pipeline, error) {
	if opts.NumTickets <= 0 {
		opts.NumTickets = 20
	}
	if opts.K <= 0 {
		opts.K = 3
	}
	ctx = obs.WithRecorder(ctx, opts.Recorder)
	endBuild := obs.Span(ctx, "pipeline.build")
	defer endBuild()

	endEnum := obs.Span(ctx, "pipeline.enumerate")
	endEnumStage := opts.Profiler.Stage("pipeline.enumerate")
	probs := scenario.FailureProbabilities(len(tp.Opt.Fibers), scenario.DefaultShape, scenario.DefaultScale, opts.Seed)
	// The correlated k-failure enumerator engages only when one of its
	// knobs is set; the default path keeps the legacy singles+pairs
	// enumerator and stays byte-identical to the pre-existing pipeline.
	correlated := opts.MaxCutSize > 0 || opts.UseSRLGs || opts.TargetMass > 0 || opts.MaxEnumerated > 0
	var set *scenario.Set
	if correlated {
		k := opts.MaxCutSize
		if k <= 0 {
			k = 2
		}
		var groups []scenario.Group
		if opts.UseSRLGs {
			for _, g := range tp.SRLGs {
				groups = append(groups, scenario.Group{Name: g.Name, Fibers: g.Fibers, Prob: g.Prob})
			}
		}
		set = scenario.EnumerateCorrelated(probs, groups, scenario.EnumOptions{
			K: k, Cutoff: opts.Cutoff, TargetMass: opts.TargetMass,
			MaxEnumerated: opts.MaxEnumerated, Recorder: opts.Recorder,
		})
	} else {
		set = scenario.Enumerate(probs, opts.Cutoff)
	}
	endEnumStage()
	endEnum()
	obs.Add(opts.Recorder, "pipeline.scenarios_enumerated", int64(len(set.Scenarios)))
	if opts.Ledger != nil {
		opts.Ledger.Emit(ledger.Event{Kind: ledger.KindEnumerated, Scenario: -1, Count: len(set.Scenarios)})
	}
	p := &Pipeline{
		Topo: tp, Set: set, baseUtilization: opts.BaseUtilization,
		rec: opts.Recorder, led: opts.Ledger,
		noWarm: opts.NoWarm, noColgen: opts.NoColgen, parallelism: opts.Parallelism,
		healthEvery: opts.HealthEvery, prof: opts.Profiler,
		captureSens: opts.CaptureSensitivity,
	}

	// Pre-build the lazily-memoised optical graph once, on this goroutine,
	// before fanning out (the memoisation itself is also mutex-guarded; this
	// just avoids serialising the first wave of workers on that lock).
	endGraph := opts.Profiler.Stage("pipeline.graph")
	tp.Opt.Graph()
	endGraph()

	// Compositional pre-stage (correlated path only): solve the single-cut
	// RWA once per fiber that participates in any multi-fiber cut. Each
	// solve is reused many times — as the warm-start and ticket-composition
	// source of every multi-cut containing its fiber, and verbatim as the
	// RWA result of the fiber's own single-cut scenario (the solver is
	// deterministic, so the reuse changes nothing).
	var singles map[int]*singleSource
	if correlated && !opts.NoCompose {
		fset := map[int]bool{}
		for _, sc := range set.Scenarios {
			if len(sc.Cut) > 1 {
				for _, f := range sc.Cut {
					fset[f] = true
				}
			}
		}
		fibers := make([]int, 0, len(fset))
		for f := range fset {
			fibers = append(fibers, f)
		}
		sort.Ints(fibers)
		endSingles := opts.Profiler.Stage("pipeline.singles")
		srcs, err := par.Map(ctx, opts.Parallelism, len(fibers), func(_ context.Context, i int) (*singleSource, error) {
			res, err := solveRWA(&rwa.Request{
				Net: tp.Opt, Cut: []int{fibers[i]}, K: opts.K,
				AllowTuning: true, AllowModulationChange: true,
				Recorder: opts.Recorder, NoWarm: opts.NoWarm,
				HealthEvery: opts.HealthEvery, ExportBasis: true,
			})
			if err != nil {
				return nil, fmt.Errorf("eval: single cut {%d} rwa: %w", fibers[i], err)
			}
			s := &singleSource{res: res, waves: map[int]int{}}
			for li, w := range rwa.MaxIntegralWaves(res) {
				s.waves[res.Failed[li]] = w
			}
			return s, nil
		})
		endSingles()
		if err != nil {
			return nil, err
		}
		singles = make(map[int]*singleSource, len(fibers))
		for i, f := range fibers {
			singles[f] = srcs[i]
		}
	}

	// buildOne runs the offline stage for enumerated scenario si. It only
	// reads shared state (topology, scenario set), derives its RNG from the
	// enumerated index — opts.Seed + si*977, independent of how many
	// scenarios before it were relevant — and returns fresh artifacts, so
	// scenarios parallelise freely and results cannot depend on schedule.
	buildOne := func(_ context.Context, si int) (*scenarioArtifacts, error) {
		cut := set.Scenarios[si].Cut
		var warm []*rwa.Result
		var res *rwa.Result
		if len(cut) == 1 && singles[cut[0]] != nil {
			// The pre-stage already solved this exact request.
			res = singles[cut[0]].res
		} else {
			if len(cut) > 1 {
				for _, f := range cut {
					if s := singles[f]; s != nil {
						warm = append(warm, s.res)
					}
				}
			}
			endRWA := opts.Profiler.StageAgg("rwa.solve")
			var err error
			res, err = solveRWA(&rwa.Request{
				Net: tp.Opt, Cut: cut, K: opts.K,
				AllowTuning: true, AllowModulationChange: true,
				Recorder: opts.Recorder, NoWarm: opts.NoWarm,
				HealthEvery: opts.HealthEvery, WarmFrom: warm,
			})
			endRWA()
			if err != nil {
				return nil, fmt.Errorf("eval: scenario %d rwa: %w", si, err)
			}
		}
		// Solver-health events are tagged with the ENUMERATED scenario index
		// (like ticket events), so the stream is a schedule-independent bag
		// at any worker count.
		ledger.EmitSolverHealth(opts.Ledger, si, "rwa-assign", res.Health)
		a := &scenarioArtifacts{res: res}
		if len(res.Failed) == 0 {
			return a, nil // cut touches no IP link: irrelevant to the TE
		}
		// Ticket #1 is always the RWA-derived candidate itself (Fig. 14:
		// "when the number of LotteryTickets is one ... it represents the
		// Arrow-Naive approach"); randomized rounding fills the rest of Z.
		a.naive = naiveTicket(res)
		if opts.Recorder != nil && res.Objective > 0 {
			// Relaxation gap: how much restorable capacity the LP promises
			// beyond what the integral (naive) assignment realises.
			integral := 0.0
			for _, w := range a.naive.Waves {
				integral += float64(w)
			}
			if gap := (res.Objective - integral) / res.Objective; gap > 0 {
				opts.Recorder.Observe("rwa.relaxation_gap", gap)
			}
		}
		a.tickets = []ticket.Ticket{a.naive}
		seen := map[string]bool{a.naive.Key(): true}
		if len(warm) > 0 {
			// Compositional candidate: the union of the constituent single-
			// cut restorations, restricted to the combined cut's spectrum.
			// It rides directly behind the naive seed so the colgen master
			// starts from the composed plan instead of pricing it in.
			obs.Add(opts.Recorder, "scenario.warm_from_singles", 1)
			if tk, ok := composedTicket(res, cut, singles); ok && !seen[tk.Key()] {
				seen[tk.Key()] = true
				a.tickets = append(a.tickets, tk)
				a.seeds = 2
			}
		}
		if opts.NumTickets > len(a.tickets) {
			endTickets := opts.Profiler.StageAgg("ticket.generate")
			defer endTickets()
			rolled := ticket.Generate(res, ticket.Options{
				Count:            opts.NumTickets - len(a.tickets),
				Stride:           opts.Stride,
				Seed:             opts.Seed + int64(si)*977,
				CheckFeasibility: true,
				Dedup:            true,
				Recorder:         opts.Recorder,
				Ledger:           opts.Ledger,
				Scenario:         si,
			})
			for _, tk := range rolled {
				if !seen[tk.Key()] {
					a.tickets = append(a.tickets, tk)
				}
			}
		}
		return a, nil
	}

	// Solve in probability-ordered chunks until MaxScenarios RELEVANT
	// scenarios are collected (or the list is exhausted). Chunk boundaries
	// only determine which extra irrelevant scenarios get solved and thrown
	// away — the compacted pipeline is the same for every chunking and
	// every worker count.
	budget := opts.MaxScenarios
	if budget <= 0 || budget > len(set.Scenarios) {
		budget = len(set.Scenarios)
	}
	endOffline := obs.Span(ctx, "pipeline.offline")
	defer endOffline()
	defer opts.Profiler.Stage("pipeline.offline")()
	kept := 0
	for lo := 0; lo < len(set.Scenarios) && kept < budget; {
		hi := lo + (budget - kept)
		if hi > len(set.Scenarios) {
			hi = len(set.Scenarios)
		}
		arts, err := par.Map(ctx, opts.Parallelism, hi-lo, func(ctx context.Context, i int) (*scenarioArtifacts, error) {
			return buildOne(ctx, lo+i)
		})
		if err != nil {
			return nil, err
		}
		// Compact in enumerated (probability) order.
		for i, a := range arts {
			if !a.relevant() || kept >= budget {
				continue
			}
			kept++
			fs := te.FailureScenario{Prob: set.Scenarios[lo+i].Prob, FailedLinks: a.res.Failed}
			if opts.Ledger != nil {
				opts.Ledger.Emit(ledger.Event{
					Kind: ledger.KindScenario, Scenario: kept - 1, Enum: lo + i,
					Prob: fs.Prob, Links: append([]int(nil), a.res.Failed...),
					Cut:   append([]int(nil), set.Scenarios[lo+i].Cut...),
					Count: len(a.tickets),
				})
			}
			p.Scenarios = append(p.Scenarios, te.RestorableScenario{
				FailureScenario: fs, TicketLinks: a.res.Failed, Tickets: a.tickets,
				Seeds: a.seeds,
			})
			p.Naive = append(p.Naive, te.RestorableScenario{
				FailureScenario: fs, TicketLinks: a.res.Failed, Tickets: []ticket.Ticket{a.naive},
			})
			p.Plain = append(p.Plain, fs)
			p.RWAResults = append(p.RWAResults, a.res)
		}
		lo = hi
	}
	obs.Add(opts.Recorder, "pipeline.scenarios_relevant", int64(kept))
	return p, nil
}

// naiveTicket converts the RWA's own integral assignment into the single
// restoration candidate Arrow-Naive uses (restoration planned purely at the
// optical layer).
func naiveTicket(res *rwa.Result) ticket.Ticket {
	counts := rwa.MaxIntegralWaves(res)
	tk := ticket.Ticket{Waves: counts, Gbps: make([]float64, len(counts))}
	for i, c := range counts {
		tk.Gbps[i] = float64(c) * res.GbpsPerWave[i]
	}
	return tk
}

// Scheme identifies a TE algorithm under evaluation.
type Scheme string

// The evaluated TE schemes (§6).
const (
	SchemeArrow      Scheme = "ARROW"
	SchemeArrowNaive Scheme = "ARROW-Naive"
	SchemeFFC1       Scheme = "FFC-1"
	SchemeFFC2       Scheme = "FFC-2"
	SchemeTeaVaR     Scheme = "TeaVaR"
	SchemeECMP       Scheme = "ECMP"
	SchemeFullyRest  Scheme = "Fully-Restorable"
)

// AllSchemes lists the schemes compared in Fig. 13.
func AllSchemes() []Scheme {
	return []Scheme{SchemeArrow, SchemeArrowNaive, SchemeFFC1, SchemeFFC2, SchemeTeaVaR, SchemeECMP}
}

// SolveScheme runs one TE scheme on the network and returns its allocation
// plus the per-scenario restored-capacity maps to use during evaluation.
func (p *Pipeline) SolveScheme(s Scheme, n *te.Network) (*te.Allocation, []map[int]float64, error) {
	// Thread the pipeline's recorder, ledger, warm-start/colgen switches and
	// pricing parallelism into the two-phase LP solves; with none of them
	// the options stay nil exactly as before (nil defaults to colgen on,
	// serial pricing — same results, just an unfanned pricing sweep).
	var arrowOpts *te.ArrowOptions
	if p.rec != nil || p.led != nil || p.noWarm || p.noColgen || p.parallelism > 1 || p.healthEvery > 0 || p.prof != nil || p.captureSens {
		arrowOpts = &te.ArrowOptions{
			Ledger: p.led, NoWarm: p.noWarm,
			NoColgen: p.noColgen, Parallelism: p.parallelism,
			Profiler: p.prof, CaptureSensitivity: p.captureSens,
		}
		if p.rec != nil || p.healthEvery > 0 {
			arrowOpts.LP = &lp.Options{Recorder: p.rec, HealthEvery: p.healthEvery}
		}
	}
	switch s {
	case SchemeArrow:
		al, err := te.Arrow(n, p.Scenarios, arrowOpts)
		if err != nil {
			return nil, nil, err
		}
		return al, al.RestoredGbps, nil
	case SchemeArrowNaive:
		al, err := te.ArrowNaive(n, p.Naive, arrowOpts)
		if err != nil {
			return nil, nil, err
		}
		return al, al.RestoredGbps, nil
	case SchemeFFC1:
		al, err := te.FFC(n, p.singleCutScenarios(1))
		return al, nil, err
	case SchemeFFC2:
		al, err := te.FFC(n, p.singleCutScenarios(2))
		return al, nil, err
	case SchemeTeaVaR:
		al, err := te.TeaVaR(n, p.Plain, &te.TeaVaROptions{Beta: 0.999})
		return al, nil, err
	case SchemeECMP:
		al, err := te.ECMP(n)
		return al, nil, err
	case SchemeFullyRest:
		al, err := te.MaxThroughput(n)
		return al, nil, err
	}
	return nil, nil, fmt.Errorf("eval: unknown scheme %q", s)
}

// singleCutScenarios projects all <=k fiber-cut combinations onto IP links
// for FFC-k. To stay tractable, double cuts reuse the enumerated scenario
// set (which contains the probable doubles) plus all single cuts.
func (p *Pipeline) singleCutScenarios(k int) []te.FailureScenario {
	var out []te.FailureScenario
	for f := range p.Topo.Opt.Fibers {
		failed := p.Topo.Opt.FailedLinks([]int{f})
		if len(failed) > 0 {
			out = append(out, te.FailureScenario{FailedLinks: failed})
		}
	}
	if k >= 2 {
		for _, sc := range p.Plain {
			if len(sc.FailedLinks) > 0 {
				out = append(out, te.FailureScenario{FailedLinks: sc.FailedLinks})
			}
		}
		// FFC-2 in the paper guarantees ALL double cuts. On B4/IBM-sized
		// topologies we enumerate them exactly. At Facebook scale the
		// |Phi|^2/2 ~ 12k pairs produce an LP our single-core simplex takes
		// minutes per solve on, so we keep the pairs with the largest
		// failure footprint (they dominate the binding constraints) up to a
		// cap. This makes our FFC-2 slightly OPTIMISTIC on the largest
		// topology — which only strengthens ARROW's measured gains.
		nf := len(p.Topo.Opt.Fibers)
		type pair struct {
			failed []int
		}
		var pairs []pair
		for a := 0; a < nf; a++ {
			for b := a + 1; b < nf; b++ {
				failed := p.Topo.Opt.FailedLinks([]int{a, b})
				if len(failed) > 1 {
					pairs = append(pairs, pair{failed})
				}
			}
		}
		const maxPairs = 1200
		if len(pairs) > maxPairs {
			sort.SliceStable(pairs, func(x, y int) bool {
				return len(pairs[x].failed) > len(pairs[y].failed)
			})
			pairs = pairs[:maxPairs]
		}
		for _, pr := range pairs {
			out = append(out, te.FailureScenario{FailedLinks: pr.failed})
		}
	}
	return out
}

// EvalScenarios converts the pipeline's scenario set plus a restoration
// plan into availability.ScenarioEvals.
func (p *Pipeline) EvalScenarios(restored []map[int]float64) []availability.ScenarioEval {
	out := make([]availability.ScenarioEval, len(p.Scenarios))
	for i := range p.Scenarios {
		out[i] = availability.ScenarioEval{
			Prob:   p.Scenarios[i].Prob,
			Failed: p.Scenarios[i].FailedLinks,
		}
		if restored != nil {
			out[i].Restored = restored[i]
		}
	}
	return out
}

// SchemeAvailability solves scheme s at the given demand scale and returns
// (availability, throughput).
func (p *Pipeline) SchemeAvailability(s Scheme, base *te.Network, scale float64) (float64, float64, error) {
	n := base.Scaled(scale)
	al, restored, err := p.SolveScheme(s, n)
	if err != nil {
		return 0, 0, err
	}
	ev := &availability.Evaluator{Net: n, Alloc: al, ECMPRebalance: s == SchemeECMP}
	avail := ev.Availability(p.EvalScenarios(restored))
	return avail, al.Throughput(n), nil
}

// BaseNetwork builds the normalised TE network for one traffic matrix:
// demand scale 1.0 is set to baseUtilization of the max-concurrent-flow
// saturation point, mirroring the paper's over-provisioned starting state
// ("we start with a network state where 100% of traffic demand is
// satisfied" and then scale the matrix up several-fold).
func (p *Pipeline) BaseNetwork(m traffic.Matrix, tunnelsPerFlow int) (*te.Network, error) {
	n, err := p.Topo.TENetwork(m.Flows, tunnelsPerFlow)
	if err != nil {
		return nil, err
	}
	if _, err := traffic.NormalizeToFit(n); err != nil {
		return nil, err
	}
	u := p.baseUtilization
	if u <= 0 {
		u = 0.1
	}
	for i := range n.Flows {
		n.Flows[i].Demand *= u
	}
	return n, nil
}
