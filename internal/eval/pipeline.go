package eval

import (
	"fmt"
	"sort"

	"github.com/arrow-te/arrow/internal/availability"
	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/scenario"
	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/ticket"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

// Pipeline assembles everything the simulation experiments share for one
// topology: probabilistic fiber-cut scenarios, per-scenario RWA solutions,
// LotteryTickets, and the projections onto the IP layer.
type Pipeline struct {
	Topo *topo.Topology
	Set  *scenario.Set
	// Scenarios carries the full ticket set Z^q per scenario (for ARROW).
	Scenarios []te.RestorableScenario
	// Naive carries a single RWA-derived candidate per scenario
	// (for Arrow-Naive).
	Naive []te.RestorableScenario
	// Plain carries the failure scenarios without restoration (FFC/TeaVaR).
	Plain []te.FailureScenario
	// RWAResults holds the per-scenario relaxed RWA solutions, aligned with
	// Scenarios.
	RWAResults []*rwa.Result

	baseUtilization float64
}

// PipelineOptions configures pipeline construction.
type PipelineOptions struct {
	Cutoff     float64 // scenario probability cutoff (paper: §6)
	NumTickets int     // |Z| per scenario
	Stride     int     // rounding stride delta
	K          int     // surrogate paths per failed link
	Seed       int64
	// MaxScenarios truncates the (probability-sorted) scenario list to keep
	// LP sizes tractable; 0 = no truncation.
	MaxScenarios int
	// BaseUtilization positions demand scale 1.0 relative to the
	// max-concurrent-flow saturation point (default 0.1: production WANs
	// are over-provisioned, so the paper's sweep starts from a comfortably
	// satisfiable state — every scheme admits 100% — and scales up
	// several-fold until the failure-protection knees separate the schemes).
	BaseUtilization float64
}

// BuildPipeline runs the offline stage of ARROW for every scenario above
// the cutoff: RWA (Algorithm 1 line 2) and LotteryTicket generation with
// feasibility filtering (§3.2).
func BuildPipeline(tp *topo.Topology, opts PipelineOptions) (*Pipeline, error) {
	if opts.NumTickets <= 0 {
		opts.NumTickets = 20
	}
	if opts.K <= 0 {
		opts.K = 3
	}
	probs := scenario.FailureProbabilities(len(tp.Opt.Fibers), scenario.DefaultShape, scenario.DefaultScale, opts.Seed)
	set := scenario.Enumerate(probs, opts.Cutoff)
	if opts.MaxScenarios > 0 && len(set.Scenarios) > opts.MaxScenarios {
		set.Scenarios = set.Scenarios[:opts.MaxScenarios]
	}
	p := &Pipeline{Topo: tp, Set: set, baseUtilization: opts.BaseUtilization}

	for si, sc := range set.Scenarios {
		res, err := rwa.Solve(&rwa.Request{
			Net: tp.Opt, Cut: sc.Cut, K: opts.K,
			AllowTuning: true, AllowModulationChange: true,
		})
		if err != nil {
			return nil, fmt.Errorf("eval: scenario %d rwa: %w", si, err)
		}
		if len(res.Failed) == 0 {
			continue // cut touches no IP link: irrelevant to the TE
		}
		// Ticket #1 is always the RWA-derived candidate itself (Fig. 14:
		// "when the number of LotteryTickets is one ... it represents the
		// Arrow-Naive approach"); randomized rounding fills the rest of Z.
		naive := naiveTicket(res)
		tks := []ticket.Ticket{naive}
		if opts.NumTickets > 1 {
			rolled := ticket.Generate(res, ticket.Options{
				Count:            opts.NumTickets - 1,
				Stride:           opts.Stride,
				Seed:             opts.Seed + int64(si)*977,
				CheckFeasibility: true,
				Dedup:            true,
			})
			for _, tk := range rolled {
				if tk.Key() != naive.Key() {
					tks = append(tks, tk)
				}
			}
		}
		fs := te.FailureScenario{Prob: sc.Prob, FailedLinks: res.Failed}
		p.Scenarios = append(p.Scenarios, te.RestorableScenario{
			FailureScenario: fs, TicketLinks: res.Failed, Tickets: tks,
		})
		p.Naive = append(p.Naive, te.RestorableScenario{
			FailureScenario: fs, TicketLinks: res.Failed, Tickets: []ticket.Ticket{naive},
		})
		p.Plain = append(p.Plain, fs)
		p.RWAResults = append(p.RWAResults, res)
	}
	return p, nil
}

// naiveTicket converts the RWA's own integral assignment into the single
// restoration candidate Arrow-Naive uses (restoration planned purely at the
// optical layer).
func naiveTicket(res *rwa.Result) ticket.Ticket {
	counts := rwa.MaxIntegralWaves(res)
	tk := ticket.Ticket{Waves: counts, Gbps: make([]float64, len(counts))}
	for i, c := range counts {
		tk.Gbps[i] = float64(c) * res.GbpsPerWave[i]
	}
	return tk
}

// Scheme identifies a TE algorithm under evaluation.
type Scheme string

// The evaluated TE schemes (§6).
const (
	SchemeArrow      Scheme = "ARROW"
	SchemeArrowNaive Scheme = "ARROW-Naive"
	SchemeFFC1       Scheme = "FFC-1"
	SchemeFFC2       Scheme = "FFC-2"
	SchemeTeaVaR     Scheme = "TeaVaR"
	SchemeECMP       Scheme = "ECMP"
	SchemeFullyRest  Scheme = "Fully-Restorable"
)

// AllSchemes lists the schemes compared in Fig. 13.
func AllSchemes() []Scheme {
	return []Scheme{SchemeArrow, SchemeArrowNaive, SchemeFFC1, SchemeFFC2, SchemeTeaVaR, SchemeECMP}
}

// SolveScheme runs one TE scheme on the network and returns its allocation
// plus the per-scenario restored-capacity maps to use during evaluation.
func (p *Pipeline) SolveScheme(s Scheme, n *te.Network) (*te.Allocation, []map[int]float64, error) {
	switch s {
	case SchemeArrow:
		al, err := te.Arrow(n, p.Scenarios, nil)
		if err != nil {
			return nil, nil, err
		}
		return al, al.RestoredGbps, nil
	case SchemeArrowNaive:
		al, err := te.ArrowNaive(n, p.Naive, nil)
		if err != nil {
			return nil, nil, err
		}
		return al, al.RestoredGbps, nil
	case SchemeFFC1:
		al, err := te.FFC(n, p.singleCutScenarios(1))
		return al, nil, err
	case SchemeFFC2:
		al, err := te.FFC(n, p.singleCutScenarios(2))
		return al, nil, err
	case SchemeTeaVaR:
		al, err := te.TeaVaR(n, p.Plain, &te.TeaVaROptions{Beta: 0.999})
		return al, nil, err
	case SchemeECMP:
		al, err := te.ECMP(n)
		return al, nil, err
	case SchemeFullyRest:
		al, err := te.MaxThroughput(n)
		return al, nil, err
	}
	return nil, nil, fmt.Errorf("eval: unknown scheme %q", s)
}

// singleCutScenarios projects all <=k fiber-cut combinations onto IP links
// for FFC-k. To stay tractable, double cuts reuse the enumerated scenario
// set (which contains the probable doubles) plus all single cuts.
func (p *Pipeline) singleCutScenarios(k int) []te.FailureScenario {
	var out []te.FailureScenario
	for f := range p.Topo.Opt.Fibers {
		failed := p.Topo.Opt.FailedLinks([]int{f})
		if len(failed) > 0 {
			out = append(out, te.FailureScenario{FailedLinks: failed})
		}
	}
	if k >= 2 {
		for _, sc := range p.Plain {
			if len(sc.FailedLinks) > 0 {
				out = append(out, te.FailureScenario{FailedLinks: sc.FailedLinks})
			}
		}
		// FFC-2 in the paper guarantees ALL double cuts. On B4/IBM-sized
		// topologies we enumerate them exactly. At Facebook scale the
		// |Phi|^2/2 ~ 12k pairs produce an LP our single-core simplex takes
		// minutes per solve on, so we keep the pairs with the largest
		// failure footprint (they dominate the binding constraints) up to a
		// cap. This makes our FFC-2 slightly OPTIMISTIC on the largest
		// topology — which only strengthens ARROW's measured gains.
		nf := len(p.Topo.Opt.Fibers)
		type pair struct {
			failed []int
		}
		var pairs []pair
		for a := 0; a < nf; a++ {
			for b := a + 1; b < nf; b++ {
				failed := p.Topo.Opt.FailedLinks([]int{a, b})
				if len(failed) > 1 {
					pairs = append(pairs, pair{failed})
				}
			}
		}
		const maxPairs = 1200
		if len(pairs) > maxPairs {
			sort.SliceStable(pairs, func(x, y int) bool {
				return len(pairs[x].failed) > len(pairs[y].failed)
			})
			pairs = pairs[:maxPairs]
		}
		for _, pr := range pairs {
			out = append(out, te.FailureScenario{FailedLinks: pr.failed})
		}
	}
	return out
}

// EvalScenarios converts the pipeline's scenario set plus a restoration
// plan into availability.ScenarioEvals.
func (p *Pipeline) EvalScenarios(restored []map[int]float64) []availability.ScenarioEval {
	out := make([]availability.ScenarioEval, len(p.Scenarios))
	for i := range p.Scenarios {
		out[i] = availability.ScenarioEval{
			Prob:   p.Scenarios[i].Prob,
			Failed: p.Scenarios[i].FailedLinks,
		}
		if restored != nil {
			out[i].Restored = restored[i]
		}
	}
	return out
}

// SchemeAvailability solves scheme s at the given demand scale and returns
// (availability, throughput).
func (p *Pipeline) SchemeAvailability(s Scheme, base *te.Network, scale float64) (float64, float64, error) {
	n := base.Scaled(scale)
	al, restored, err := p.SolveScheme(s, n)
	if err != nil {
		return 0, 0, err
	}
	ev := &availability.Evaluator{Net: n, Alloc: al, ECMPRebalance: s == SchemeECMP}
	avail := ev.Availability(p.EvalScenarios(restored))
	return avail, al.Throughput(n), nil
}

// BaseNetwork builds the normalised TE network for one traffic matrix:
// demand scale 1.0 is set to baseUtilization of the max-concurrent-flow
// saturation point, mirroring the paper's over-provisioned starting state
// ("we start with a network state where 100% of traffic demand is
// satisfied" and then scale the matrix up several-fold).
func (p *Pipeline) BaseNetwork(m traffic.Matrix, tunnelsPerFlow int) (*te.Network, error) {
	n, err := p.Topo.TENetwork(m.Flows, tunnelsPerFlow)
	if err != nil {
		return nil, err
	}
	if _, err := traffic.NormalizeToFit(n); err != nil {
		return nil, err
	}
	u := p.baseUtilization
	if u <= 0 {
		u = 0.1
	}
	for i := range n.Flows {
		n.Flows[i].Demand *= u
	}
	return n, nil
}
