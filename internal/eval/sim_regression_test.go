package eval

import (
	"testing"

	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

// buildB4Fast builds the fast-mode B4 pipeline and one normalised network.
func buildB4Fast(t *testing.T, scale float64) (*Pipeline, *te.Network) {
	t.Helper()
	cfg := Config{Fast: true, Seed: 1}
	p := paramsFor("B4", cfg.Fast)
	tp, err := topo.ByName("B4", cfg.Seed+5)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPipeline(tp, PipelineOptions{
		Cutoff: p.cutoff, NumTickets: p.tickets, Seed: cfg.Seed, MaxScenarios: p.maxScenarios,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := traffic.Generate(traffic.Options{Sites: tp.NumRouters(), Count: 1, MaxFlows: p.maxFlows, TotalGbps: 1, Seed: cfg.Seed + 7})
	base, err := pl.BaseNetwork(ms[0], p.tunnels)
	if err != nil {
		t.Fatal(err)
	}
	return pl, base.Scaled(scale)
}

// TestArrowDominatesBaselinesOnB4 pins the qualitative Fig. 13 result: at a
// moderate demand scale ARROW's availability beats Arrow-Naive, FFC-1,
// FFC-2 and ECMP, and is at least TeaVaR-level.
func TestArrowDominatesBaselinesOnB4(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation regression is not short")
	}
	pl, _ := buildB4Fast(t, 1)
	base, err := pl.BaseNetwork(traffic.Generate(traffic.Options{Sites: pl.Topo.NumRouters(), Count: 1, MaxFlows: 40, TotalGbps: 1, Seed: 8})[0], 8)
	if err != nil {
		t.Fatal(err)
	}
	avail := map[Scheme]float64{}
	for _, s := range AllSchemes() {
		a, _, err := pl.SchemeAvailability(s, base, 2.5)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		avail[s] = a
	}
	for _, s := range []Scheme{SchemeArrowNaive, SchemeFFC1, SchemeFFC2, SchemeECMP} {
		if avail[SchemeArrow] < avail[s]-1e-9 {
			t.Fatalf("ARROW availability %.5f below %s %.5f", avail[SchemeArrow], s, avail[s])
		}
	}
	if avail[SchemeArrow] < avail[SchemeTeaVaR]-0.01 {
		t.Fatalf("ARROW %.5f materially below TeaVaR %.5f", avail[SchemeArrow], avail[SchemeTeaVaR])
	}
}

// TestArrowNeverWorseThanNaive pins the |Z|=1 floor: the full two-phase
// ARROW TE must never produce a lower objective than Arrow-Naive, at any
// demand scale (te.Arrow's fallback guarantees this by construction).
func TestArrowNeverWorseThanNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation regression is not short")
	}
	for _, scale := range []float64{1, 3, 5, 7} {
		pl, n := buildB4Fast(t, scale)
		arrow, err := te.Arrow(n, pl.Scenarios, nil)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := te.ArrowNaive(n, pl.Naive, nil)
		if err != nil {
			t.Fatal(err)
		}
		if arrow.Objective < naive.Objective-1e-6 {
			t.Fatalf("scale %g: ARROW objective %.4f below Naive %.4f", scale, arrow.Objective, naive.Objective)
		}
	}
}

// TestTicketCountImprovesThroughput pins the Fig. 14 shape: throughput with
// a healthy ticket budget is at least the |Z|=1 value, and the series never
// decreases by more than noise when |Z| grows (monotone up to fallback).
func TestTicketCountImprovesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation regression is not short")
	}
	cfg := Config{Fast: true, Seed: 1}
	p := paramsFor("B4", cfg.Fast)
	tp, err := topo.ByName("B4", cfg.Seed+5)
	if err != nil {
		t.Fatal(err)
	}
	ms := traffic.Generate(traffic.Options{Sites: tp.NumRouters(), Count: 1, MaxFlows: p.maxFlows, TotalGbps: 1, Seed: cfg.Seed + 7})
	var prev float64
	var first float64
	for i, tc := range []int{1, 20} {
		pl, err := BuildPipeline(tp, PipelineOptions{Cutoff: p.cutoff, NumTickets: tc, Seed: cfg.Seed, MaxScenarios: p.maxScenarios})
		if err != nil {
			t.Fatal(err)
		}
		base, err := pl.BaseNetwork(ms[0], p.tunnels)
		if err != nil {
			t.Fatal(err)
		}
		n := base.Scaled(4.2)
		al, err := te.Arrow(n, pl.Scenarios, nil)
		if err != nil {
			t.Fatal(err)
		}
		thr := al.Throughput(n)
		if i == 0 {
			first = thr
		}
		prev = thr
	}
	if prev < first-1e-9 {
		t.Fatalf("|Z|=20 throughput %.4f below |Z|=1 %.4f", prev, first)
	}
	if prev <= first+1e-6 {
		t.Logf("note: no strict improvement on this instance (%.4f vs %.4f)", prev, first)
	}
}
