package eval

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/sim"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

// pipelineFingerprint reduces a pipeline's artifacts to a comparable string
// covering everything the TE consumes: scenarios, tickets, naive candidates
// and the fractional RWA solutions.
func pipelineFingerprint(p *Pipeline) string {
	return fmt.Sprintf("%v|%v|%v|%v", p.Scenarios, p.Naive, p.Plain, func() []any {
		var out []any
		for _, r := range p.RWAResults {
			out = append(out, r.Failed, r.FracWaves, r.OrigWaves, r.GbpsPerWave)
		}
		return out
	}())
}

// ledgerBag canonicalises a ledger into a multiset of events with the
// schedule-dependent fields erased — sequence numbers, and the certificate
// pointer (whose address %+v would otherwise format; certificate CONTENT
// is validated by the solvers themselves on every solve) — for
// cross-worker-count comparison.
func ledgerBag(l *ledger.Ledger) map[string]int {
	bag := map[string]int{}
	for _, ev := range l.Events() {
		ev.Seq = 0
		ev.Cert = nil
		bag[fmt.Sprintf("%+v", ev)]++
	}
	return bag
}

// TestInstrumentationPreservesDeterminism is the observability layer's core
// guarantee: attaching a Recorder (with tracing enabled) and/or a flight-
// recorder Ledger must not change a single byte of any artifact, at any
// worker count. The instrumented builds at Parallelism 1 and 4 are compared
// against the uninstrumented Parallelism-1 baseline.
func TestInstrumentationPreservesDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds several full pipelines")
	}
	build := func(workers int, rec obs.Recorder, led *ledger.Ledger) *Pipeline {
		t.Helper()
		tp, err := topo.B4(6)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := BuildPipeline(tp, PipelineOptions{
			Cutoff: 0.001, NumTickets: 8, Seed: 1, MaxScenarios: 12,
			Parallelism: workers, Recorder: rec, Ledger: led,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	tracingRegistry := func() *obs.Registry {
		r := obs.NewRegistry()
		r.EnableTrace()
		return r
	}

	baseline := build(1, nil, nil)
	want := pipelineFingerprint(baseline)
	regSeq, regPar := tracingRegistry(), tracingRegistry()
	ledSeq, ledPar := ledger.New(), ledger.New()
	for _, tc := range []struct {
		name string
		pl   *Pipeline
	}{
		{"instrumented sequential", build(1, regSeq, nil)},
		{"instrumented parallel", build(4, regPar, nil)},
		{"ledger sequential", build(1, nil, ledSeq)},
		{"ledger parallel", build(4, tracingRegistry(), ledPar)},
	} {
		if got := pipelineFingerprint(tc.pl); got != want {
			t.Errorf("%s pipeline differs from uninstrumented baseline", tc.name)
		}
	}
	// The ledger runs must have recorded a decision stream, and the
	// per-scenario content must be schedule-independent: the sequential and
	// parallel streams may interleave differently but must contain the same
	// events up to sequence numbers.
	if ledSeq.Len() == 0 {
		t.Error("ledger run recorded no events")
	}
	if got, want := ledgerBag(ledPar), ledgerBag(ledSeq); !reflect.DeepEqual(got, want) {
		t.Error("ledger event content differs between worker counts")
	}
	// The instrumented runs must actually have recorded something, or the
	// comparison above proves nothing.
	for name, reg := range map[string]*obs.Registry{"sequential": regSeq, "parallel": regPar} {
		s := reg.Snapshot()
		if s.Counters["rwa.solves"] == 0 || s.Counters["lp.pivots"] == 0 {
			t.Errorf("%s run recorded no work: rwa.solves=%d lp.pivots=%d",
				name, s.Counters["rwa.solves"], s.Counters["lp.pivots"])
		}
	}

	// The TE solve and the timeline replay must be equally oblivious to the
	// recorder. Solve the scheme on the baseline (uninstrumented) and on an
	// instrumented pipeline, then replay instrumented at 1 and 4 workers.
	m := traffic.Generate(traffic.Options{
		Sites: baseline.Topo.NumRouters(), Count: 1, MaxFlows: 40, TotalGbps: 1, Seed: 8,
	})[0]
	base, err := baseline.BaseNetwork(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := base.Scaled(3)
	al, restored, err := baseline.SolveScheme(SchemeArrow, n)
	if err != nil {
		t.Fatal(err)
	}
	solveLed := ledger.New()
	instrumented := build(1, tracingRegistry(), solveLed)
	alObs, restoredObs, err := instrumented.SolveScheme(SchemeArrow, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(al.B, alObs.B) || !reflect.DeepEqual(al.A, alObs.A) ||
		!reflect.DeepEqual(al.WinningTicket, alObs.WinningTicket) ||
		!reflect.DeepEqual(restored, restoredObs) {
		t.Error("TE allocation differs with a recorder and ledger attached")
	}
	// The solve must have left winner and solve events behind.
	winners, solves := 0, 0
	for _, ev := range solveLed.Events() {
		switch ev.Kind {
		case ledger.KindWinner:
			winners++
		case ledger.KindSolveEnd:
			solves++
			if ev.Cert == nil {
				t.Errorf("solve_end for %s carries no certificate", ev.Solver)
			}
		}
	}
	if winners != len(instrumented.Scenarios) || solves == 0 {
		t.Errorf("ledger recorded %d winners (want %d) and %d solves", winners, len(instrumented.Scenarios), solves)
	}

	const horizon = 90 * 24.0
	events := sim.GenerateTimeline(len(baseline.Topo.Opt.Fibers), sim.TimelineOptions{
		DurationH: horizon, CutsPerMonth: 8, Seed: 17,
	})
	replay := func(workers int, rec obs.Recorder, led *ledger.Ledger) sim.Report {
		r := sim.NewRunner(n, al, func(cut []int) []int { return baseline.Topo.Opt.FailedLinks(cut) },
			baseline.Plain, restored)
		r.Parallelism = workers
		r.Recorder = rec
		r.Ledger = led
		return *r.Run(events, horizon)
	}
	wantRep := replay(1, nil, nil)
	for _, workers := range []int{1, 4} {
		reg := tracingRegistry()
		led := ledger.New()
		if got := replay(workers, reg, led); got != wantRep {
			t.Errorf("instrumented sim report at %d workers differs:\n  want %+v\n  got  %+v", workers, wantRep, got)
		}
		if reg.Snapshot().Counters["sim.intervals"] == 0 {
			t.Errorf("instrumented replay at %d workers recorded no intervals", workers)
		}
		if led.Len() != 1 || led.Events()[0].Kind != ledger.KindSimSummary {
			t.Errorf("replay at %d workers left %d ledger events, want one sim_summary", workers, led.Len())
		}
	}
}
