package eval

import (
	"testing"

	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/obs"
)

// TestRunTestbedRecordedLatencyObservatory is the acceptance test for the
// restoration-latency observatory: the recorded episodes produce a stage
// waterfall summing to the episode latency, the legacy/ARROW latency ratio
// matches the paper's order of magnitude, and the latency-aware replays
// show legacy strictly losing time at full service versus noise loading on
// the same timeline and seed.
func TestRunTestbedRecordedLatencyObservatory(t *testing.T) {
	reg := obs.NewRegistry()
	reg.EnableTrace()
	led := ledger.New()
	out, err := RunTestbedRecorded(1, reg, led)
	if err != nil {
		t.Fatal(err)
	}

	// Paper shape: 1021 s vs 8 s = 127x; require the same order (>50x).
	if out.LatencyRatio < 50 {
		t.Fatalf("latency ratio %.0fx, want >50x", out.LatencyRatio)
	}
	snap := reg.Snapshot()
	if snap.Gauges["emu.latency_ratio"] != out.LatencyRatio {
		t.Fatalf("gauge %g != outcome %g", snap.Gauges["emu.latency_ratio"], out.LatencyRatio)
	}
	if snap.Counters["emu.episodes"] != 2 {
		t.Fatalf("emu.episodes = %d, want 2", snap.Counters["emu.episodes"])
	}

	// Both episodes' waterfalls account for their full latency.
	for _, tr := range []struct {
		name  string
		trial interface {
			CriticalPathSec() float64
		}
		done float64
	}{{"legacy", out.Legacy, out.Legacy.DoneSec}, {"arrow", out.Arrow, out.Arrow.DoneSec}} {
		if got := tr.trial.CriticalPathSec(); got != tr.done {
			t.Fatalf("%s waterfall sums to %g s, episode took %g s", tr.name, got, tr.done)
		}
	}

	// The availability delta: same timeline, same seed, only the latency
	// distribution differs — legacy must be strictly worse.
	if out.LegacySim.FullServiceFrac >= out.ArrowSim.FullServiceFrac {
		t.Fatalf("legacy full service %.6f not strictly below noise loading %.6f",
			out.LegacySim.FullServiceFrac, out.ArrowSim.FullServiceFrac)
	}
	if out.LegacySim.RestoringHours <= out.ArrowSim.RestoringHours {
		t.Fatalf("legacy restoring %.3f h not above noise loading %.3f h",
			out.LegacySim.RestoringHours, out.ArrowSim.RestoringHours)
	}

	// The ledger carries the full observatory stream: stage events for both
	// modes and mode-tagged sim summaries.
	modes := map[string]int{}
	sims := map[string]bool{}
	for _, ev := range led.Events() {
		switch ev.Kind {
		case ledger.KindEmuStage:
			modes[ev.Mode]++
		case ledger.KindSimSummary:
			sims[ev.Mode] = true
		}
	}
	if modes["legacy"] == 0 || modes["noise_loading"] == 0 {
		t.Fatalf("stage events per mode: %v", modes)
	}
	if !sims["legacy"] || !sims["noise_loading"] {
		t.Fatalf("sim summaries per mode: %v", sims)
	}

	// Determinism across invocations: the observatory is seed-stable.
	out2, err := RunTestbedRecorded(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out2.LatencyRatio != out.LatencyRatio || *out2.LegacySim != *out.LegacySim || *out2.ArrowSim != *out.ArrowSim {
		t.Fatal("observatory run not reproducible for the same seed")
	}
}
