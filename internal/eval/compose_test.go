package eval

import (
	"reflect"
	"testing"

	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/topo"
)

// correlatedOpts is the shared correlated-enumerator configuration of the
// compositional-pipeline tests: 3-way cuts, conduit SRLGs, enough kept
// scenarios to include both singles and multi-cuts.
func correlatedOpts(workers int, rec obs.Recorder) PipelineOptions {
	return PipelineOptions{
		Cutoff: 1e-5, NumTickets: 6, Seed: 7, MaxScenarios: 24,
		MaxCutSize: 3, UseSRLGs: true,
		Parallelism: workers, Recorder: rec,
	}
}

// TestCorrelatedPipelineDeterministicAcrossParallelism extends the worker-
// independence contract to the compositional path: SRLG-expanded 3-way
// enumeration, pre-staged single-cut warm sources and composed seed tickets
// must produce byte-identical pipelines at Parallelism 1, 4 and 8.
func TestCorrelatedPipelineDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three full pipelines")
	}
	build := func(workers int) *Pipeline {
		t.Helper()
		tp, err := topo.B4(6)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := BuildPipeline(tp, correlatedOpts(workers, nil))
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	seq := build(1)
	multi, seeded := 0, 0
	for _, sc := range seq.Scenarios {
		if sc.Seeds > 1 {
			seeded++
		}
	}
	for _, sc := range seq.Set.Scenarios {
		if len(sc.Cut) > 1 {
			multi++
		}
	}
	if multi == 0 || seeded == 0 {
		t.Fatalf("pipeline exercised no compositional scenarios: %d multi-cuts, %d seeded", multi, seeded)
	}
	for _, workers := range []int{4, 8} {
		par := build(workers)
		if !reflect.DeepEqual(seq.Set, par.Set) {
			t.Errorf("scenario set differs between Parallelism 1 and %d", workers)
		}
		if !reflect.DeepEqual(seq.Scenarios, par.Scenarios) {
			t.Errorf("Scenarios differ between Parallelism 1 and %d", workers)
		}
		if !reflect.DeepEqual(seq.Naive, par.Naive) {
			t.Errorf("Naive scenarios differ between Parallelism 1 and %d", workers)
		}
		if len(seq.RWAResults) != len(par.RWAResults) {
			t.Fatalf("RWAResults length: %d vs %d", len(seq.RWAResults), len(par.RWAResults))
		}
		for i := range seq.RWAResults {
			if !reflect.DeepEqual(seq.RWAResults[i].Failed, par.RWAResults[i].Failed) ||
				!reflect.DeepEqual(seq.RWAResults[i].FracWaves, par.RWAResults[i].FracWaves) {
				t.Errorf("RWAResults[%d] differs between Parallelism 1 and %d", i, workers)
			}
		}
	}
}

// TestCorrelatedPairsMatchLegacyPipeline pins the cross-enumerator identity
// end to end: MaxCutSize=2 without SRLGs walks the same singles+pairs
// scenario space as the legacy enumerator, and with composition disabled
// the offline stage issues the same solves — the pipelines must match
// field for field.
func TestCorrelatedPairsMatchLegacyPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two full pipelines")
	}
	tp, err := topo.B4(6)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := BuildPipeline(tp, PipelineOptions{
		Cutoff: 0.001, NumTickets: 8, Seed: 1, MaxScenarios: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	tp2, err := topo.B4(6)
	if err != nil {
		t.Fatal(err)
	}
	correlated, err := BuildPipeline(tp2, PipelineOptions{
		Cutoff: 0.001, NumTickets: 8, Seed: 1, MaxScenarios: 12,
		MaxCutSize: 2, NoCompose: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Set, correlated.Set) {
		t.Error("scenario sets differ between legacy and correlated enumerators")
	}
	if !reflect.DeepEqual(legacy.Scenarios, correlated.Scenarios) {
		t.Error("Scenarios differ between legacy and correlated pipelines")
	}
	if !reflect.DeepEqual(legacy.Plain, correlated.Plain) {
		t.Error("Plain scenarios differ between legacy and correlated pipelines")
	}
}

// TestComposeReducesPivotWork is the unit-level version of the CI perf
// gate: on the same correlated instance, the compositional offline stage
// (warm-started multi-cut solves reusing pre-staged singles) must spend
// strictly fewer simplex pivots than the cold build, while actually
// exercising the composition machinery.
func TestComposeReducesPivotWork(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two full pipelines")
	}
	build := func(noCompose bool) map[string]int64 {
		t.Helper()
		tp, err := topo.B4(6)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		opts := correlatedOpts(0, reg)
		opts.NoCompose = noCompose
		if _, err := BuildPipeline(tp, opts); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot().Counters
	}
	cold, warm := build(true), build(false)
	if warm["scenario.warm_from_singles"] == 0 || warm["rwa.compose_adopted"] == 0 {
		t.Fatalf("composition did not engage: %v", warm)
	}
	if cold["scenario.warm_from_singles"] != 0 {
		t.Fatalf("NoCompose still warmed %d scenarios", cold["scenario.warm_from_singles"])
	}
	if warm["lp.pivots"] >= cold["lp.pivots"] {
		t.Errorf("composition saved nothing: %d pivots composed vs %d cold", warm["lp.pivots"], cold["lp.pivots"])
	}
	// Both builds enumerate the same scenario space.
	if warm["scenario.enumerated"] != cold["scenario.enumerated"] {
		t.Errorf("enumerated counts differ: %d vs %d", warm["scenario.enumerated"], cold["scenario.enumerated"])
	}
}
