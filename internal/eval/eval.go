// Package eval is the experiment harness: every table and figure of the
// ARROW paper's evaluation is a registered experiment that regenerates the
// corresponding rows or series from this repository's implementations.
// cmd/arrow-experiments exposes the registry on the command line, and
// bench_test.go wraps the heavy experiments as benchmarks.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"github.com/arrow-te/arrow/internal/obs"
)

// Config controls experiment scale.
type Config struct {
	// Fast shrinks sweeps (fewer matrices, tickets, scales) so the full
	// registry completes on a laptop-class single core. The full
	// configuration matches the paper's parameters where feasible.
	Fast bool
	Seed int64
	// Parallelism is the worker count for the scenario-independent hot
	// loops (pipeline construction, availability sweeps, timeline replay).
	// 0 selects runtime.NumCPU(); 1 restores fully sequential execution.
	// Results are identical for every setting and seed.
	Parallelism int
	// Recorder receives solver and pipeline metrics from every layer an
	// experiment touches. A nil Recorder costs nothing and never changes
	// any result.
	Recorder obs.Recorder
	// NoWarm disables LP warm starts throughout the experiments (pipeline
	// RWA solves and TE solves). Exposed as arrow-experiments -warm=false
	// for A/B comparison of pivot counts; the default keeps warm starts on.
	NoWarm bool
	// NoColgen disables ticket column generation in the two-phase TE
	// solves, enumerating every ticket block up front. Exposed as
	// arrow-experiments -colgen=false for A/B comparison against the lazy
	// pricing default; both modes produce identical winning tickets.
	NoColgen bool
	// HealthEvery probes every LP solve for numerical health at this pivot
	// period (0 = off). Exposed as arrow-experiments -health-every; probes
	// only read solver state and never change any result.
	HealthEvery int
	// MaxCutSize, UseSRLGs, TargetMass and MaxEnumerated opt experiments
	// into the correlated k-failure scenario enumerator (see the matching
	// PipelineOptions fields). All-zero keeps the legacy singles+pairs
	// enumerator and byte-identical results. Exposed as arrow-experiments
	// -max-cut-size / -srlgs / -target-mass / -max-enumerated.
	MaxCutSize    int
	UseSRLGs      bool
	TargetMass    float64
	MaxEnumerated int
	// NoCompose disables the compositional offline stage (warm-started
	// multi-cut RWA solves and composed seed tickets) for A/B pivot-work
	// comparison. Exposed as arrow-experiments -compose=false.
	NoCompose bool
}

// applyScenario copies the Config's correlated-enumeration knobs onto a
// PipelineOptions literal, so every experiment builds its pipeline under
// the session's scenario-space settings without repeating the five fields.
func (c Config) applyScenario(po PipelineOptions) PipelineOptions {
	po.MaxCutSize = c.MaxCutSize
	po.UseSRLGs = c.UseSRLGs
	po.TargetMass = c.TargetMass
	po.MaxEnumerated = c.MaxEnumerated
	po.NoCompose = c.NoCompose
	return po
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a free-text note (paper-vs-measured commentary).
func (r *Result) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	// PaperClaim summarises what the paper reports, for EXPERIMENTS.md.
	PaperClaim string
	Run        func(cfg Config) (*Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RenderText formats a result as an aligned plain-text table.
func RenderText(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	if len(r.Header) > 0 {
		writeRow(r.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }
func fi(x int) string     { return fmt.Sprintf("%d", x) }
func pct(x float64) string {
	return fmt.Sprintf("%.1f%%", 100*x)
}

// RenderMarkdown formats a result as a GitHub-flavoured markdown table,
// used to regenerate EXPERIMENTS.md sections.
func RenderMarkdown(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	if len(r.Header) > 0 {
		b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat("---|", len(r.Header)) + "\n")
	}
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(r.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "> %s\n", n)
		}
	}
	return b.String()
}
