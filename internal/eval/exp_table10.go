package eval

import (
	"github.com/arrow-te/arrow/internal/emu"
)

func init() {
	register(Experiment{
		ID:         "table10",
		Title:      "Comparison of failure-mitigation approaches (Appendix A.9)",
		PaperClaim: "TE and OTN protection idle hardware; classical restoration is slow; ARROW is fast with no idle resources",
		Run:        runTable10,
	})
}

// runTable10 reproduces the qualitative comparison of Table 10, filling the
// latency column with this repository's measured values from the emulated
// testbed instead of the paper's order-of-magnitude estimates.
func runTable10(cfg Config) (*Result, error) {
	net, err := emu.Testbed()
	if err != nil {
		return nil, err
	}
	legacy, err := emu.RunRestoration(net, []int{emu.FiberDC}, emu.Config{NoiseLoading: false, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	net2, err := emu.Testbed()
	if err != nil {
		return nil, err
	}
	arrow, err := emu.RunRestoration(net2, []int{emu.FiberDC}, emu.Config{NoiseLoading: true, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "table10", Title: "Failure-mitigation approaches",
		Header: []string{"approach", "failover config", "failover latency", "idle resources during repair"}}
	r.AddRow("failure-aware TE (FFC/TeaVaR)", "routing table", "O(ms)", "ports + transponders of the cut fiber")
	r.AddRow("optical path protection (OTN)", "OTN config", "O(ms)", "standby transponders")
	r.AddRow("classical optical restoration", "ROADM config", f1(legacy.DoneSec)+" s (measured)", "none")
	r.AddRow("ARROW", "routing + ROADM config", f1(arrow.DoneSec)+" s (measured)", "none")
	r.AddNote("latencies measured on the emulated §5 testbed (legacy includes per-amplifier gain settling); the paper reports 10s of minutes vs 8 s")
	return r, nil
}
