package eval

import (
	"context"

	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/par"
	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/sim"
	"github.com/arrow-te/arrow/internal/stats"
	"github.com/arrow-te/arrow/internal/topo"
	"github.com/arrow-te/arrow/internal/traffic"
)

func init() {
	register(Experiment{
		ID:         "timeline",
		Title:      "One simulated year of cuts and repairs (B4)",
		PaperClaim: "operationalises §6.1: ARROW's restoration keeps delivered traffic high through the §2.2 failure process",
		Run:        runTimeline,
	})
	register(Experiment{
		ID:         "ext-clband",
		Title:      "Extension: C+L-band spectrum (Appendix A.10)",
		PaperClaim: "doubling usable spectrum with L-band raises restoration ratios; ARROW's abstraction is unchanged",
		Run:        runCLBand,
	})
}

func runTimeline(cfg Config) (*Result, error) {
	p := paramsFor("B4", true)
	tp, err := topo.B4(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	pl, err := BuildPipeline(tp, cfg.applyScenario(PipelineOptions{Cutoff: p.cutoff, NumTickets: p.tickets, Seed: cfg.Seed, MaxScenarios: p.maxScenarios, Parallelism: cfg.Parallelism, Recorder: cfg.Recorder, NoWarm: cfg.NoWarm, NoColgen: cfg.NoColgen, HealthEvery: cfg.HealthEvery}))
	if err != nil {
		return nil, err
	}
	m := traffic.Generate(traffic.Options{Sites: tp.NumRouters(), Count: 1, MaxFlows: p.maxFlows, TotalGbps: 1, Seed: cfg.Seed + 7})[0]
	base, err := pl.BaseNetwork(m, p.tunnels)
	if err != nil {
		return nil, err
	}
	n := base.Scaled(3.0)

	horizon := 90.0 * 24 // one quarter in fast mode
	if !cfg.Fast {
		horizon = 365 * 24
	}
	events := sim.GenerateTimeline(len(tp.Opt.Fibers), sim.TimelineOptions{
		DurationH: horizon, CutsPerMonth: 8, Seed: cfg.Seed + 17,
	})
	project := func(cut []int) []int { return tp.Opt.FailedLinks(cut) }

	r := &Result{ID: "timeline", Title: "Failure-timeline replay (B4, 3.0x demand)",
		Header: []string{"scheme", "avg delivered", "time at full service", "worst state", "unplanned hours"}}
	// Each scheme's solve + replay is independent of the others: fan out,
	// then emit rows in scheme order.
	schemes := []Scheme{SchemeArrow, SchemeArrowNaive, SchemeFFC1, SchemeECMP}
	rows, err := par.Map(context.Background(), cfg.Parallelism, len(schemes), func(_ context.Context, i int) ([]string, error) {
		s := schemes[i]
		al, restored, err := pl.SolveScheme(s, n)
		if err != nil {
			return nil, err
		}
		runner := sim.NewRunner(n, al, project, pl.Plain, restored)
		runner.ECMPRebalance = s == SchemeECMP
		runner.Parallelism = cfg.Parallelism
		runner.Recorder = cfg.Recorder
		rep := runner.Run(events, horizon)
		return []string{string(s), f4(rep.Delivered), pct(rep.FullServiceFrac), f4(rep.Worst), f1(rep.UnplannedHours)}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, rows...)
	r.AddNote("%d cut/repair events over %.0f days; unplanned hours are failure states outside the probability cutoff, where ARROW falls back to no restoration", len(events), horizon/24)
	return r, nil
}

func runCLBand(cfg Config) (*Result, error) {
	// Build the same B4 overlay on a C-band grid, then re-run every
	// single-cut restoration with the fibers' spectrum DOUBLED (the extra
	// L-band slots arrive free, i.e. fully available for restoration).
	tp, err := topo.B4(cfg.Seed + 5)
	if err != nil {
		return nil, err
	}
	measure := func(extraSlots int) (*stats.CDF, error) {
		var net *optical.Network = tp.Opt
		if extraSlots > 0 {
			net = expandSpectrum(tp, extraSlots)
		}
		var ratios []float64
		for f := range net.Fibers {
			if net.ProvisionedGbpsOnFiber(f) == 0 {
				continue
			}
			u, err := rwa.RestorationRatio(net, f, 3, true, true)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, u)
		}
		return stats.NewCDF(ratios), nil
	}
	cBand, err := measure(0)
	if err != nil {
		return nil, err
	}
	clBand, err := measure(tp.Opt.SlotCount) // L-band doubles the grid
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "ext-clband", Title: "Restoration ratio: C band vs C+L band (B4)",
		Header: []string{"percentile", "C band U", "C+L band U"}}
	for _, p := range []float64{10, 25, 50, 75, 90} {
		r.AddRow(f1(p), f2(cBand.Percentile(p)), f2(clBand.Percentile(p)))
	}
	r.AddNote("mean restoration ratio: C %.2f -> C+L %.2f; the LotteryTicket abstraction needs no change (Appendix A.10)",
		mean(cBand), mean(clBand))
	return r, nil
}

func mean(c *stats.CDF) float64 {
	s := 0.0
	for _, p := range []float64{5, 15, 25, 35, 45, 55, 65, 75, 85, 95} {
		s += c.Percentile(p)
	}
	return s / 10
}

// expandSpectrum clones the topology's optical network onto a wider grid:
// existing lightpaths keep their slots and paths; the added L-band slots
// arrive free (noise-loaded, per Appendix A.10).
func expandSpectrum(tp *topo.Topology, extra int) *optical.Network {
	src := tp.Opt
	out := optical.NewNetwork(src.NumROADMs, src.SlotCount+extra)
	for _, f := range src.Fibers {
		out.AddFiber(f.A, f.B, f.LengthKm)
	}
	for _, l := range src.IPLinks {
		waves := make([]optical.Lightpath, len(l.Waves))
		copy(waves, l.Waves)
		if _, err := out.Provision(l.Src, l.Dst, waves); err != nil {
			panic(err) // same slots on a wider grid always fit
		}
	}
	return out
}
