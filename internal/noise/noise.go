// Package noise models ARROW's optical noise loading (§4) and ROADM
// reconfiguration planning (Appendix A.6).
//
// With ASE noise sources, every unused wavelength slot on every fiber
// carries noise, so amplifiers always see a fully populated spectrum:
// replacing noise with data (or vice versa) is local to the ROADMs and
// bypasses amplifier gain reconfiguration entirely. This package tracks
// per-fiber channel states (data / noise / dark) and compiles a restoration
// assignment into the two parallel ROADM reconfiguration waves the paper
// describes: add/drop ROADMs first, then intermediate ROADMs.
package noise

import (
	"fmt"

	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/rwa"
)

// ChannelState is the occupancy of one wavelength slot on one fiber.
type ChannelState uint8

// Channel states.
const (
	Dark  ChannelState = iota // unlit (legacy systems without noise loading)
	Noise                     // carrying ASE noise
	Data                      // carrying router traffic
)

func (s ChannelState) String() string {
	switch s {
	case Dark:
		return "dark"
	case Noise:
		return "noise"
	case Data:
		return "data"
	}
	return fmt.Sprintf("ChannelState(%d)", uint8(s))
}

// SpectrumMap tracks the channel state of every slot on every fiber.
type SpectrumMap struct {
	states [][]ChannelState
}

// NewSpectrumMap derives the channel map from a provisioned network:
// occupied slots carry Data; free slots carry Noise when noiseLoaded, else
// Dark.
func NewSpectrumMap(net *optical.Network, noiseLoaded bool) *SpectrumMap {
	idle := Dark
	if noiseLoaded {
		idle = Noise
	}
	sm := &SpectrumMap{states: make([][]ChannelState, len(net.Fibers))}
	for fi, f := range net.Fibers {
		sm.states[fi] = make([]ChannelState, net.SlotCount)
		for s := 0; s < net.SlotCount; s++ {
			if f.Slots.Available(s) {
				sm.states[fi][s] = idle
			} else {
				sm.states[fi][s] = Data
			}
		}
	}
	return sm
}

// State returns the channel state of (fiber, slot).
func (sm *SpectrumMap) State(fiber, slot int) ChannelState { return sm.states[fiber][slot] }

// Set updates the channel state of (fiber, slot).
func (sm *SpectrumMap) Set(fiber, slot int, s ChannelState) { sm.states[fiber][slot] = s }

// LitCount returns how many slots on the fiber are powered (data or noise).
// Amplifier gain settling is triggered when this number changes on a legacy
// system; with noise loading it never changes.
func (sm *SpectrumMap) LitCount(fiber int) int {
	n := 0
	for _, s := range sm.states[fiber] {
		if s != Dark {
			n++
		}
	}
	return n
}

// OpKind distinguishes the two ROADM reconfiguration waves (Appendix A.6).
type OpKind uint8

// Reconfiguration operation kinds.
const (
	AddDrop      OpKind = iota // source/destination ROADM: data <-> noise swap
	Intermediate               // pass-through ROADM: steer the wavelength
)

// Op is one ROADM reconfiguration operation.
type Op struct {
	ROADM optical.ROADM
	Kind  OpKind
	Fiber int // fiber whose slot changes at this ROADM (entry fiber)
	Slot  int
}

// Plan is a compiled restoration plan: the ROADM operations grouped into
// the two parallel execution waves, plus the transponder-side adjustments.
type Plan struct {
	AddDropOps      []Op
	IntermediateOps []Op
	// Retunes counts wavelengths whose restored slot differs from their
	// original slot (transponder frequency tuning, §5).
	Retunes int
	// ModChanges counts wavelengths whose surrogate path requires a lower
	// modulation than the original (Appendix A.1).
	ModChanges int
	// RestoredGbps is the plan's total revived IP capacity.
	RestoredGbps float64
	// ReusedPorts counts the idle router ports / transponders the plan puts
	// back to work (two per restored wavelength): ARROW's §1 answer to
	// pre-allocating failover hardware.
	ReusedPorts int
}

// NumAddDropROADMs returns the number of distinct add/drop ROADMs touched.
func (p *Plan) NumAddDropROADMs() int { return distinctROADMs(p.AddDropOps) }

// NumIntermediateROADMs returns the number of distinct intermediate ROADMs.
func (p *Plan) NumIntermediateROADMs() int { return distinctROADMs(p.IntermediateOps) }

func distinctROADMs(ops []Op) int {
	seen := map[optical.ROADM]bool{}
	for _, op := range ops {
		seen[op.ROADM] = true
	}
	return len(seen)
}

// BuildPlan compiles an integral restoration assignment into ROADM
// operations. For each restored wavelength of failed link e routed on
// surrogate path P: the link's source and destination ROADMs perform
// add/drop swaps (replace noise with data on the first/last fiber), and
// every interior ROADM of P performs an intermediate steer.
func BuildPlan(net *optical.Network, res *rwa.Result, asg *rwa.Assignment) *Plan {
	p := &Plan{}
	for li, linkID := range res.Failed {
		link := net.LinkByID(linkID)
		origMod := 0.0
		if len(link.Waves) > 0 {
			origMod = link.Waves[0].Modulation.GbpsPerWavelength
		}
		origSlots := map[int]bool{}
		for _, w := range link.Waves {
			origSlots[w.Slot] = true
		}
		for _, pick := range asg.PerLink[li] {
			opt := res.Options[li][pick[0]]
			slot := pick[1]
			if !origSlots[slot] {
				p.Retunes++
			}
			if opt.Modulation.GbpsPerWavelength < origMod {
				p.ModChanges++
			}
			p.RestoredGbps += opt.Modulation.GbpsPerWavelength
			p.ReusedPorts += 2

			// Add/drop at the endpoints.
			p.AddDropOps = append(p.AddDropOps,
				Op{ROADM: link.Src, Kind: AddDrop, Fiber: opt.Fibers[0], Slot: slot},
				Op{ROADM: link.Dst, Kind: AddDrop, Fiber: opt.Fibers[len(opt.Fibers)-1], Slot: slot},
			)
			// Intermediates: interior ROADMs along the path.
			at := link.Src
			for i, fid := range opt.Fibers {
				f := net.Fibers[fid]
				next := f.B
				if at == f.B {
					next = f.A
				}
				if i < len(opt.Fibers)-1 {
					p.IntermediateOps = append(p.IntermediateOps,
						Op{ROADM: next, Kind: Intermediate, Fiber: fid, Slot: slot})
				}
				at = next
			}
		}
	}
	return p
}

// Apply executes the plan on a spectrum map: the restored wavelengths'
// slots switch from Noise (or Dark) to Data along their surrogate fibers.
// It returns the number of fibers whose LIT count changed — zero exactly
// when the map is noise-loaded, which is the §4 invariant that lets ARROW
// bypass amplifier reconfiguration.
func Apply(sm *SpectrumMap, net *optical.Network, res *rwa.Result, asg *rwa.Assignment) int {
	changed := map[int]bool{}
	for li := range res.Failed {
		for _, pick := range asg.PerLink[li] {
			opt := res.Options[li][pick[0]]
			slot := pick[1]
			for _, fid := range opt.Fibers {
				if sm.State(fid, slot) == Dark {
					changed[fid] = true
				}
				sm.Set(fid, slot, Data)
			}
		}
	}
	return len(changed)
}
