package noise

import (
	"strings"
	"testing"

	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/spectrum"
)

// triangle builds a 3-ROADM network: direct fiber 0-1 carrying one link
// (slot 5), detour via node 2 with slot 5 occupied so restoration must
// retune to another slot.
func triangle(t *testing.T, blockSlot bool) (*optical.Network, *rwa.Result, *rwa.Assignment) {
	t.Helper()
	n := optical.NewNetwork(3, 8)
	n.AddFiber(0, 1, 100) // 0 direct
	n.AddFiber(0, 2, 100) // 1
	n.AddFiber(2, 1, 100) // 2
	mod := spectrum.Table6[0]
	if _, err := n.Provision(0, 1, []optical.Lightpath{{Slot: 5, Modulation: mod, FiberPath: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	if blockSlot {
		n.Fibers[1].Slots.Set(5, false)
	}
	res, err := rwa.Solve(&rwa.Request{Net: n, Cut: []int{0}, K: 2, AllowTuning: true, AllowModulationChange: true})
	if err != nil {
		t.Fatal(err)
	}
	asg, ok := rwa.AssignIntegral(res, []int{1})
	if !ok {
		t.Fatal("restoration should be feasible")
	}
	return n, res, asg
}

func TestSpectrumMapStates(t *testing.T) {
	n, _, _ := triangle(t, false)
	loaded := NewSpectrumMap(n, true)
	if loaded.State(0, 5) != Data {
		t.Fatalf("provisioned slot state %v", loaded.State(0, 5))
	}
	if loaded.State(0, 0) != Noise {
		t.Fatalf("idle slot state %v, want noise", loaded.State(0, 0))
	}
	dark := NewSpectrumMap(n, false)
	if dark.State(0, 0) != Dark {
		t.Fatalf("idle slot state %v, want dark", dark.State(0, 0))
	}
	// Lit counts: loaded fiber is fully lit, dark fiber only where data.
	if loaded.LitCount(0) != 8 || dark.LitCount(0) != 1 {
		t.Fatalf("lit counts %d / %d", loaded.LitCount(0), dark.LitCount(0))
	}
}

func TestBuildPlanRetuneDetection(t *testing.T) {
	// Without blocking, the restored wave keeps slot 5: no retune.
	_, res, asg := triangle(t, false)
	nNet := res.Req.Net
	plan := BuildPlan(nNet, res, asg)
	if plan.Retunes != 0 {
		t.Fatalf("%d retunes, want 0", plan.Retunes)
	}
	if plan.RestoredGbps != 100 {
		t.Fatalf("restored %g", plan.RestoredGbps)
	}
	// Blocking slot 5 on the detour forces a retune.
	_, res2, asg2 := triangle(t, true)
	plan2 := BuildPlan(res2.Req.Net, res2, asg2)
	if plan2.Retunes != 1 {
		t.Fatalf("%d retunes, want 1", plan2.Retunes)
	}
}

func TestBuildPlanWaves(t *testing.T) {
	_, res, asg := triangle(t, false)
	plan := BuildPlan(res.Req.Net, res, asg)
	// Endpoints 0 and 1 add/drop; node 2 is intermediate.
	if plan.NumAddDropROADMs() != 2 {
		t.Fatalf("add/drop ROADMs %d, want 2", plan.NumAddDropROADMs())
	}
	if plan.NumIntermediateROADMs() != 1 {
		t.Fatalf("intermediate ROADMs %d, want 1", plan.NumIntermediateROADMs())
	}
	for _, op := range plan.IntermediateOps {
		if op.ROADM != 2 {
			t.Fatalf("intermediate op at ROADM %d", op.ROADM)
		}
	}
}

func TestApplyInvariant(t *testing.T) {
	n, res, asg := triangle(t, false)
	loaded := NewSpectrumMap(n, true)
	if changed := Apply(loaded, n, res, asg); changed != 0 {
		t.Fatalf("noise-loaded apply changed %d fibers", changed)
	}
	// Restored slots now carry data on the surrogate fibers.
	if loaded.State(1, 5) != Data || loaded.State(2, 5) != Data {
		t.Fatal("restored slots not marked data")
	}
	dark := NewSpectrumMap(n, false)
	if changed := Apply(dark, n, res, asg); changed != 2 {
		t.Fatalf("dark apply changed %d fibers, want 2", changed)
	}
}

func TestChannelStateString(t *testing.T) {
	if Dark.String() != "dark" || Noise.String() != "noise" || Data.String() != "data" {
		t.Fatal("state strings wrong")
	}
}

func TestBuildConfigDeterministicAndComplete(t *testing.T) {
	_, res, asg := triangle(t, false)
	plan := BuildPlan(res.Req.Net, res, asg)
	c1 := BuildConfig("cut-fiber-0", plan)
	c2 := BuildConfig("cut-fiber-0", plan)
	j1, err := c1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := c2.JSON()
	if string(j1) != string(j2) {
		t.Fatal("config serialisation not deterministic")
	}
	if len(c1.Entries) != len(plan.AddDropOps)+len(plan.IntermediateOps) {
		t.Fatalf("%d entries for %d+%d ops", len(c1.Entries), len(plan.AddDropOps), len(plan.IntermediateOps))
	}
	// Wave ordering: all add/drop rules before intermediates.
	lastWave := 0
	for _, e := range c1.Entries {
		if e.Wave < lastWave {
			t.Fatal("entries not ordered by wave")
		}
		lastWave = e.Wave
	}
	txt := c1.Render()
	for _, want := range []string{"wave 1 (parallel)", "wave 2 (parallel)", "add-drop", "intermediate", "100 Gbps"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("rendered config missing %q:\n%s", want, txt)
		}
	}
}
