package noise

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ConfigEntry is one installable ROADM reconfiguration rule.
type ConfigEntry struct {
	ROADM int    `json:"roadm"`
	Wave  int    `json:"wave"`  // execution wave: 1 = add/drop, 2 = intermediate
	Kind  string `json:"kind"`  // "add-drop" or "intermediate"
	Fiber int    `json:"fiber"` // fiber whose slot changes at this ROADM
	Slot  int    `json:"slot"`
	// Action describes the local operation: add/drop ROADMs swap ASE noise
	// for data (or vice versa); intermediates steer the wavelength.
	Action string `json:"action"`
}

// Config is the installable restoration plan for one failure scenario
// (§3.3: "Arrow maps the restoration plan Z* into wavelengths'
// reconfiguration rules and installs them on ROADM config files").
type Config struct {
	Scenario  string        `json:"scenario"`
	Entries   []ConfigEntry `json:"entries"`
	Retunes   int           `json:"transponder_retunes"`
	ModChange int           `json:"modulation_changes"`
	Gbps      float64       `json:"restored_gbps"`
}

// BuildConfig compiles a Plan into the installable rule list, entries
// sorted deterministically (wave, ROADM, fiber, slot).
func BuildConfig(scenario string, p *Plan) *Config {
	c := &Config{Scenario: scenario, Retunes: p.Retunes, ModChange: p.ModChanges, Gbps: p.RestoredGbps}
	for _, op := range p.AddDropOps {
		c.Entries = append(c.Entries, ConfigEntry{
			ROADM: int(op.ROADM), Wave: 1, Kind: "add-drop", Fiber: op.Fiber, Slot: op.Slot,
			Action: "replace ASE noise with data channel",
		})
	}
	for _, op := range p.IntermediateOps {
		c.Entries = append(c.Entries, ConfigEntry{
			ROADM: int(op.ROADM), Wave: 2, Kind: "intermediate", Fiber: op.Fiber, Slot: op.Slot,
			Action: "steer wavelength to next fiber",
		})
	}
	sort.SliceStable(c.Entries, func(a, b int) bool {
		ea, eb := c.Entries[a], c.Entries[b]
		if ea.Wave != eb.Wave {
			return ea.Wave < eb.Wave
		}
		if ea.ROADM != eb.ROADM {
			return ea.ROADM < eb.ROADM
		}
		if ea.Fiber != eb.Fiber {
			return ea.Fiber < eb.Fiber
		}
		return ea.Slot < eb.Slot
	})
	return c
}

// JSON serialises the config.
func (c *Config) JSON() ([]byte, error) { return json.MarshalIndent(c, "", "  ") }

// Render prints the config as the text format a ROADM controller would
// consume: one line per rule, wave markers separating the two parallel
// execution groups.
func (c *Config) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# restoration plan %s: %.0f Gbps, %d retunes, %d modulation changes\n",
		c.Scenario, c.Gbps, c.Retunes, c.ModChange)
	wave := 0
	for _, e := range c.Entries {
		if e.Wave != wave {
			wave = e.Wave
			fmt.Fprintf(&b, "wave %d (parallel):\n", wave)
		}
		fmt.Fprintf(&b, "  roadm %-3d %-12s fiber %-3d slot %-3d  %s\n", e.ROADM, e.Kind, e.Fiber, e.Slot, e.Action)
	}
	return b.String()
}
