package emu

import (
	"math"
	"math/rand"
)

// Amplifier models one EDFA's gain controller. When the set of wavelengths
// on its fiber changes, the total input power shifts and the amplifier must
// re-converge its gain through repeated observe-analyze-act loops
// (Appendix A.7): each loop measures the per-channel output power, computes
// a correction, and applies a damped adjustment. Vendors ship conservative
// loop parameters — one loop takes several seconds and corrections are
// deliberately partial to avoid oscillation across a cascade.
type Amplifier struct {
	// LoopSec is one observe-analyze-act cycle (default 12 s).
	LoopSec float64
	// Damping is the fraction of the measured error corrected per loop
	// (default 0.55; < 1 for cascade stability).
	Damping float64
	// ToleranceDB ends convergence when |error| falls below it (default 0.3).
	ToleranceDB float64
	// MaxLoops bounds a single settling episode (default 40).
	MaxLoops int
}

func (a Amplifier) withDefaults() Amplifier {
	if a.LoopSec <= 0 {
		a.LoopSec = 12
	}
	if a.Damping <= 0 || a.Damping >= 1 {
		a.Damping = 0.55
	}
	if a.ToleranceDB <= 0 {
		a.ToleranceDB = 0.3
	}
	if a.MaxLoops <= 0 {
		a.MaxLoops = 40
	}
	return a
}

// GainStep is one point of a settling trace.
type GainStep struct {
	TimeSec float64
	ErrorDB float64
}

// Settle simulates convergence from an initial gain error (dB, signed) and
// returns the trace and total settling time. rng adds per-loop measurement
// noise; pass nil for the deterministic envelope.
func (a Amplifier) Settle(initialErrDB float64, rng *rand.Rand) ([]GainStep, float64) {
	a = a.withDefaults()
	err := initialErrDB
	t := 0.0
	trace := []GainStep{{0, err}}
	for i := 0; i < a.MaxLoops && math.Abs(err) > a.ToleranceDB; i++ {
		t += a.LoopSec
		correction := a.Damping * err
		if rng != nil {
			correction *= 0.85 + 0.3*rng.Float64()
		}
		err -= correction
		trace = append(trace, GainStep{t, err})
	}
	return trace, t
}

// SettleTime returns just the convergence time for a typical wavelength
// reconfiguration (the power shift when channels appear/disappear on a
// legacy fiber is a few dB).
func (a Amplifier) SettleTime(initialErrDB float64, rng *rand.Rand) float64 {
	_, t := a.Settle(initialErrDB, rng)
	return t
}

// typicalReconfigErrDB samples the gain error caused by a wavelength
// reconfiguration on a legacy (non-noise-loaded) fiber: proportional to the
// relative change in lit channel count, a few dB for typical events.
func typicalReconfigErrDB(rng *rand.Rand) float64 {
	return 2 + 2.5*rng.Float64()
}
