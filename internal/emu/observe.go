package emu

import (
	"context"
	"fmt"

	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/obs"
)

// emitEpisode exports a completed trial's stage waterfall through the
// observability seams attached to ctx. It runs after the trial is fully
// computed and consumes no randomness, so a recorder or ledger can never
// change the result. With neither attached it returns immediately.
func emitEpisode(ctx context.Context, tr *Trial) {
	rec := obs.FromContext(ctx)
	led := ledger.FromContext(ctx)
	if rec == nil && led == nil {
		return
	}
	mode := tr.Config.Mode()

	// One trace track per waterfall lane so concurrent amplifier cascades
	// render side by side. Tracks are only allocated when a recorder is
	// present; lane numbering in the Trial itself is recorder-independent.
	tracks := map[int]int64{}
	trackFor := func(lane int) int64 {
		if rec == nil {
			return 0
		}
		tk, ok := tracks[lane]
		if !ok {
			tk = obs.NextTrack()
			tracks[lane] = tk
		}
		return tk
	}

	obs.EmuSpan(rec, "emu.episode", trackFor(0), 0, tr.DoneSec)
	for _, st := range tr.Stages {
		obs.EmuSpan(rec, "emu."+st.Name, trackFor(st.Lane), st.StartSec, st.DurSec)
		if st.Name == StageAmpSettle {
			obs.Observe(rec, "emu.amp_settle_seconds", st.DurSec)
		}
		if led != nil {
			led.Emit(ledger.Event{
				Kind: ledger.KindEmuStage, Scenario: -1, Mode: mode,
				Stage: st.Name, Device: st.Device, Lane: st.Lane,
				StartSec: st.StartSec, DurSec: st.DurSec,
			})
		}
	}

	obs.Add(rec, "emu.episodes", 1)
	obs.Add(rec, "emu.amps_settled", int64(tr.AmpsSettled))
	obs.Add(rec, "emu.amp_loops", int64(tr.AmpLoops))
	obs.Add(rec, "emu.roadm_reconfigs", int64(tr.Plan.NumAddDropROADMs()+tr.Plan.NumIntermediateROADMs()))
	obs.Add(rec, "emu.lightpaths_restored", int64(tr.Lightpaths))
	obs.Observe(rec, "emu.restore_seconds", tr.DoneSec)

	if led != nil {
		frac := 0.0
		if tr.LostGbps > 0 {
			frac = tr.RestoredGbps / tr.LostGbps
		}
		led.Emit(ledger.Event{
			Kind: ledger.KindEmuEpisode, Scenario: -1, Mode: mode,
			DurSec: tr.DoneSec, Gbps: tr.RestoredGbps, Fraction: frac,
			Count:  tr.AmpsSettled,
			Detail: fmt.Sprintf("amp_loops=%d lightpaths=%d lost_gbps=%.0f", tr.AmpLoops, tr.Lightpaths, tr.LostGbps),
		})
	}
}
