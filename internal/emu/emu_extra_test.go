package emu

import (
	"math"
	"testing"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.AmpSpacingKm != 80 || c.AmpSettleMeanSec != 36 || c.DetectSec != 1 {
		t.Fatalf("defaults %+v", c)
	}
	// Explicit values survive.
	c2 := Config{AmpSpacingKm: 100, AmpSettleMeanSec: 10, DetectSec: 0.5, ROADMWaveSec: 1, PortChannelSec: 1}.withDefaults()
	if c2.AmpSpacingKm != 100 || c2.AmpSettleMeanSec != 10 || c2.DetectSec != 0.5 {
		t.Fatalf("overrides lost: %+v", c2)
	}
	// Amp counts: booster + preamp + inline.
	if got := c.AmpCount(560); got != 9 {
		t.Fatalf("AmpCount(560) = %d, want 9", got)
	}
	if got := c.AmpCount(520); got != 8 {
		t.Fatalf("AmpCount(520) = %d, want 8", got)
	}
	if got := c.AmpCount(10); got != 2 {
		t.Fatalf("AmpCount(10) = %d, want 2 (booster+preamp)", got)
	}
}

func TestDoubleCutPartialTrial(t *testing.T) {
	// Cutting BOTH the direct fiber and one detour still restores what the
	// remaining paths can carry, and never more than was lost.
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunRestoration(n, []int{FiberDC, 1 /* BD */}, Config{NoiseLoading: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Fiber BD carries only wavelengths already failed by the DC cut, so
	// the loss stays 2.8 Tbps — but site D is now optically isolated, so
	// only the A<->C link (1.2 Tbps via fiber CA) can be revived.
	if tr.LostGbps != 2800 {
		t.Fatalf("double cut lost %g, want 2800", tr.LostGbps)
	}
	if tr.RestoredGbps != 1200 {
		t.Fatalf("restored %g, want 1200 (only AC; D is isolated)", tr.RestoredGbps)
	}
}

func TestCutHarmlessFiber(t *testing.T) {
	// Build an extra dark fiber and cut it: nothing fails, trial completes
	// immediately with zero restoration.
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	dark := n.AddFiber(0, 2, 400)
	tr, err := RunRestoration(n, []int{dark.ID}, Config{NoiseLoading: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.LostGbps != 0 || tr.RestoredGbps != 0 {
		t.Fatalf("lost %g restored %g", tr.LostGbps, tr.RestoredGbps)
	}
}

func TestLegacySlowerWithMoreAmps(t *testing.T) {
	// Halving amplifier spacing doubles the amplifier count and should
	// materially increase legacy restoration latency.
	n1, _ := Testbed()
	wide, err := RunRestoration(n1, []int{FiberDC}, Config{NoiseLoading: false, AmpSpacingKm: 160, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := Testbed()
	dense, err := RunRestoration(n2, []int{FiberDC}, Config{NoiseLoading: false, AmpSpacingKm: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if dense.DoneSec < wide.DoneSec*1.5 {
		t.Fatalf("dense amps %g s not much slower than wide %g s", dense.DoneSec, wide.DoneSec)
	}
	// Noise loading is insensitive to amplifier density.
	n3, _ := Testbed()
	noiseDense, err := RunRestoration(n3, []int{FiberDC}, Config{NoiseLoading: true, AmpSpacingKm: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(noiseDense.DoneSec-8) > 4 {
		t.Fatalf("noise-loaded restoration %g s depends on amp density", noiseDense.DoneSec)
	}
}

func TestTrialDeterministicBySeed(t *testing.T) {
	n1, _ := Testbed()
	a, err := RunRestoration(n1, []int{FiberDC}, Config{NoiseLoading: false, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := Testbed()
	b, err := RunRestoration(n2, []int{FiberDC}, Config{NoiseLoading: false, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.DoneSec != b.DoneSec || a.AmpsSettled != b.AmpsSettled {
		t.Fatalf("same seed, different trials: %g/%d vs %g/%d", a.DoneSec, a.AmpsSettled, b.DoneSec, b.AmpsSettled)
	}
}

func TestAmplifierConvergence(t *testing.T) {
	amp := Amplifier{}
	trace, total := amp.Settle(4.0, nil)
	if len(trace) < 3 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	// Error magnitude strictly decreases and ends within tolerance.
	for i := 1; i < len(trace); i++ {
		if math.Abs(trace[i].ErrorDB) >= math.Abs(trace[i-1].ErrorDB) {
			t.Fatalf("error not decreasing at step %d: %v", i, trace)
		}
	}
	final := trace[len(trace)-1].ErrorDB
	if math.Abs(final) > 0.3 {
		t.Fatalf("final error %g above tolerance", final)
	}
	if total <= 0 || total > 12*40 {
		t.Fatalf("settle time %g", total)
	}
	// Already-converged input settles instantly.
	if tt := amp.SettleTime(0.1, nil); tt != 0 {
		t.Fatalf("tiny error took %g s", tt)
	}
	// Larger errors take longer (deterministic envelope).
	small := amp.SettleTime(1.0, nil)
	big := amp.SettleTime(6.0, nil)
	if big <= small {
		t.Fatalf("settle(6dB)=%g <= settle(1dB)=%g", big, small)
	}
}

func TestSerialROADMAblation(t *testing.T) {
	n1, _ := Testbed()
	parallel, err := RunRestoration(n1, []int{FiberDC}, Config{NoiseLoading: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := Testbed()
	serial, err := RunRestoration(n2, []int{FiberDC}, Config{NoiseLoading: true, SerialROADM: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The trial touches 6 distinct ROADM roles (4 add/drop + 2
	// intermediate): serial should cost ~6 device slots vs 2 waves.
	if serial.DoneSec <= parallel.DoneSec+2 {
		t.Fatalf("serial %g s not meaningfully slower than parallel %g s", serial.DoneSec, parallel.DoneSec)
	}
	if serial.RestoredGbps != parallel.RestoredGbps {
		t.Fatal("serial ablation changed restoration outcome")
	}
}

func TestPortReuseAccounting(t *testing.T) {
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	// 16 wavelengths -> 32 ports provisioned; the DC cut idles 28 of them
	// (14 failed wavelengths x 2 ends); full restoration reuses all 28.
	if got := n.PortCount(); got != 32 {
		t.Fatalf("port count %d, want 32", got)
	}
	if got := n.IdlePortsUnderCut([]int{FiberDC}); got != 28 {
		t.Fatalf("idle ports %d, want 28", got)
	}
	tr, err := RunRestoration(n, []int{FiberDC}, Config{NoiseLoading: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Plan.ReusedPorts != 28 {
		t.Fatalf("reused ports %d, want 28", tr.Plan.ReusedPorts)
	}
}
