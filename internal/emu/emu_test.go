package emu

import (
	"math"
	"testing"

	"github.com/arrow-te/arrow/internal/noise"
	"github.com/arrow-te/arrow/internal/rwa"
)

func TestTestbedInventory(t *testing.T) {
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	if n.NumROADMs != 4 || len(n.Fibers) != 4 {
		t.Fatalf("testbed has %d ROADMs, %d fibers", n.NumROADMs, len(n.Fibers))
	}
	totalKm := 0.0
	amps := 0
	cfg := Config{}.withDefaults()
	for _, f := range n.Fibers {
		totalKm += f.LengthKm
		amps += cfg.AmpCount(f.LengthKm)
	}
	if totalKm != 2160 {
		t.Fatalf("total fiber %g km, want 2160", totalKm)
	}
	if amps != 34 {
		t.Fatalf("%d amplifiers, want 34", amps)
	}
	// 16 wavelengths, 4 IP links, capacities per Fig. 11.
	if len(n.IPLinks) != 4 {
		t.Fatalf("%d IP links", len(n.IPLinks))
	}
	wantCaps := []float64{400, 1200, 1200, 400}
	waves := 0
	for i, l := range n.IPLinks {
		if l.CapacityGbps() != wantCaps[i] {
			t.Fatalf("link %d capacity %g, want %g", i, l.CapacityGbps(), wantCaps[i])
		}
		waves += len(l.Waves)
	}
	if waves != 16 {
		t.Fatalf("%d wavelengths, want 16", waves)
	}
	// Fiber DC carries 14 wavelengths.
	if got := n.ProvisionedGbpsOnFiber(FiberDC); got != 2800 {
		t.Fatalf("fiber DC carries %g Gbps, want 2800", got)
	}
}

func TestFig11CutFails28Tbps(t *testing.T) {
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	failed := n.FailedLinks([]int{FiberDC})
	if len(failed) != 3 {
		t.Fatalf("cut fails %d links, want 3 (AC, BD, CD)", len(failed))
	}
	lost := 0.0
	for _, id := range failed {
		lost += n.LinkByID(id).CapacityGbps()
	}
	if lost != 2800 {
		t.Fatalf("lost %g Gbps, want 2800", lost)
	}
}

func TestArrowRestorationIsSeconds(t *testing.T) {
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunRestoration(n, []int{FiberDC}, Config{NoiseLoading: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.RestoredGbps != 2800 {
		t.Fatalf("restored %g Gbps, want full 2800", tr.RestoredGbps)
	}
	// Paper: eight seconds end to end.
	if tr.DoneSec < 5 || tr.DoneSec > 12 {
		t.Fatalf("ARROW restoration took %.1f s, want ~8 s", tr.DoneSec)
	}
	if tr.AmpsSettled != 0 {
		t.Fatalf("%d amplifiers settled under noise loading, want 0", tr.AmpsSettled)
	}
	// Survivor wavelengths undisturbed (Fig. 12d).
	for _, s := range tr.Series {
		if s.SurvivorPowerDB != 0 {
			t.Fatalf("survivor power deviated %g dB at %.1fs under noise loading", s.SurvivorPowerDB, s.TimeSec)
		}
	}
}

func TestLegacyRestorationIsMinutes(t *testing.T) {
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunRestoration(n, []int{FiberDC}, Config{NoiseLoading: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.RestoredGbps != 2800 {
		t.Fatalf("restored %g Gbps", tr.RestoredGbps)
	}
	// Paper: 1,021 s. Accept the right order of magnitude (14-22 min).
	if tr.DoneSec < 700 || tr.DoneSec > 1400 {
		t.Fatalf("legacy restoration took %.0f s, want ~1000 s", tr.DoneSec)
	}
	if tr.AmpsSettled == 0 {
		t.Fatal("no amplifiers settled in legacy mode")
	}
	// Power excursions must appear during settling.
	sawExcursion := false
	for _, s := range tr.Series {
		if math.Abs(s.SurvivorPowerDB) > 0.1 {
			sawExcursion = true
		}
	}
	if !sawExcursion {
		t.Fatal("no survivor power excursion in legacy mode")
	}
}

func TestSpeedupFactorMatchesPaperShape(t *testing.T) {
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := RunRestoration(n, []int{FiberDC}, Config{NoiseLoading: false, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	arrow, err := RunRestoration(n, []int{FiberDC}, Config{NoiseLoading: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	speedup := legacy.DoneSec / arrow.DoneSec
	// Paper reports 127x; require the same order (>60x).
	if speedup < 60 {
		t.Fatalf("speedup %.0fx, want >60x", speedup)
	}
}

func TestSeriesMonotoneRestoredCapacity(t *testing.T) {
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunRestoration(n, []int{FiberDC}, Config{NoiseLoading: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, s := range tr.Series {
		if s.RestoredGbps < prev {
			t.Fatal("restored capacity series not monotone")
		}
		prev = s.RestoredGbps
	}
	if prev != 2800 {
		t.Fatalf("series ends at %g", prev)
	}
}

func TestAmpChainSettleFig20(t *testing.T) {
	// Fig. 20: 24 amplifiers take ~14 minutes.
	times := AmpChainSettle(24, Config{Seed: 1})
	if len(times) != 24 {
		t.Fatalf("%d times", len(times))
	}
	total := times[23]
	if total < 600 || total > 1100 {
		t.Fatalf("24-amp settle took %.0f s, want ~840 s", total)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatal("settle times not strictly increasing")
		}
	}
}

func TestNoiseLoadingInvariantOnTestbed(t *testing.T) {
	// The §4 invariant: applying the restoration plan changes no fiber's
	// lit-channel count when noise loading is on.
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	res, err := rwa.Solve(&rwa.Request{Net: n, Cut: []int{FiberDC}, K: 3, AllowTuning: true, AllowModulationChange: true})
	if err != nil {
		t.Fatal(err)
	}
	target := make([]int, len(res.Failed))
	copy(target, res.OrigWaves)
	asg, ok := rwa.AssignIntegral(res, target)
	if !ok {
		t.Fatal("testbed cut should be fully restorable")
	}
	loaded := noise.NewSpectrumMap(n, true)
	if changed := noise.Apply(loaded, n, res, asg); changed != 0 {
		t.Fatalf("noise-loaded spectrum changed lit count on %d fibers", changed)
	}
	dark := noise.NewSpectrumMap(n, false)
	if changed := noise.Apply(dark, n, res, asg); changed == 0 {
		t.Fatal("legacy spectrum should change lit counts")
	}
}

func TestBuildPlanCountsROADMs(t *testing.T) {
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	res, err := rwa.Solve(&rwa.Request{Net: n, Cut: []int{FiberDC}, K: 3, AllowTuning: true, AllowModulationChange: true})
	if err != nil {
		t.Fatal(err)
	}
	target := make([]int, len(res.Failed))
	copy(target, res.OrigWaves)
	asg, _ := rwa.AssignIntegral(res, target)
	plan := noise.BuildPlan(n, res, asg)
	if plan.RestoredGbps != 2800 {
		t.Fatalf("plan restores %g", plan.RestoredGbps)
	}
	if plan.NumAddDropROADMs() == 0 {
		t.Fatal("no add/drop ROADMs in plan")
	}
	// All four sites participate in this trial (A,B,C,D all add/drop some
	// restored link).
	if plan.NumAddDropROADMs() != 4 {
		t.Fatalf("%d add/drop ROADMs, want 4", plan.NumAddDropROADMs())
	}
}
