package emu

import (
	"context"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden emu observability schema file")

func mustTrial(t *testing.T, cut []int, cfg Config) *Trial {
	t.Helper()
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunRestoration(n, cut, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestWaterfallAccountsForEpisode is the observatory's core invariant: the
// stage spans sum to the episode's end-to-end latency along the critical
// path, for every restoration mode.
func TestWaterfallAccountsForEpisode(t *testing.T) {
	cases := []struct {
		name string
		cut  []int
		cfg  Config
	}{
		{"legacy", []int{FiberDC}, Config{Seed: 1}},
		{"noise_loading", []int{FiberDC}, Config{NoiseLoading: true, Seed: 1}},
		{"serial_roadm", []int{FiberDC}, Config{NoiseLoading: true, SerialROADM: true, Seed: 2}},
		{"te_apply", []int{FiberDC}, Config{NoiseLoading: true, TEApplySec: 3, Seed: 3}},
		{"legacy_te_apply", []int{FiberDC}, Config{TEApplySec: 5, Seed: 4}},
		{"double_cut", []int{FiberDC, 1}, Config{Seed: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := mustTrial(t, tc.cut, tc.cfg)
			if len(tr.Stages) == 0 {
				t.Fatal("no stages recorded")
			}
			if got := tr.CriticalPathSec(); math.Abs(got-tr.DoneSec) > 1e-9 {
				t.Fatalf("critical path %.6f s != episode %.6f s", got, tr.DoneSec)
			}
			// Every amp_settle span must be contained in its lane's amp_chain.
			chains := map[int][2]float64{}
			for _, st := range tr.Stages {
				if st.Name == StageAmpChain {
					chains[st.Lane] = [2]float64{st.StartSec, st.StartSec + st.DurSec}
				}
			}
			for _, st := range tr.Stages {
				if st.Name != StageAmpSettle {
					continue
				}
				c, ok := chains[st.Lane]
				if !ok {
					t.Fatalf("amp_settle on lane %d without an amp_chain", st.Lane)
				}
				if st.StartSec < c[0]-1e-9 || st.StartSec+st.DurSec > c[1]+1e-9 {
					t.Fatalf("amp_settle [%g,%g] escapes chain [%g,%g]",
						st.StartSec, st.StartSec+st.DurSec, c[0], c[1])
				}
			}
		})
	}
}

// TestWaterfallHarmlessCut pins the nothing-restorable episode: the
// waterfall still covers detection and the ROADM waves, and still sums to
// DoneSec.
func TestWaterfallHarmlessCut(t *testing.T) {
	n, err := Testbed()
	if err != nil {
		t.Fatal(err)
	}
	dark := n.AddFiber(0, 2, 400)
	tr, err := RunRestoration(n, []int{dark.ID}, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range tr.Stages {
		if st.Name == StageLACP || st.Name == StageAmpChain {
			t.Fatalf("restorative stage %q on a harmless cut", st.Name)
		}
	}
	if got := tr.CriticalPathSec(); math.Abs(got-tr.DoneSec) > 1e-9 {
		t.Fatalf("critical path %.6f s != episode %.6f s", got, tr.DoneSec)
	}
}

// TestTrialIdenticalWithObservability pins the nil-default contract across
// the whole emulator: attaching a tracing recorder and a ledger must leave
// the Trial byte-identical to an uninstrumented run.
func TestTrialIdenticalWithObservability(t *testing.T) {
	for _, noiseLoading := range []bool{false, true} {
		plain := mustTrial(t, []int{FiberDC}, Config{NoiseLoading: noiseLoading, Seed: 11})

		reg := obs.NewRegistry()
		reg.EnableTrace()
		led := ledger.New()
		ctx := ledger.WithLedger(obs.WithRecorder(context.Background(), reg), led)
		n, err := Testbed()
		if err != nil {
			t.Fatal(err)
		}
		traced, err := RunRestorationCtx(ctx, n, []int{FiberDC}, Config{NoiseLoading: noiseLoading, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, traced) {
			t.Fatalf("observability changed the trial (noise=%v)", noiseLoading)
		}

		// The recorder saw the full waterfall: one emulated span per stage
		// plus the episode span, all on the emulated-clock PID.
		var emuEvents int
		for _, ev := range reg.TraceEvents() {
			if ev.PID != obs.EmuPID {
				t.Fatalf("emulator emitted wall-clock trace event %+v", ev)
			}
			emuEvents++
		}
		if want := len(traced.Stages) + 1; emuEvents != want {
			t.Fatalf("%d trace events, want %d (stages+episode)", emuEvents, want)
		}
		snap := reg.Snapshot()
		if snap.Counters["emu.episodes"] != 1 {
			t.Fatalf("emu.episodes = %d", snap.Counters["emu.episodes"])
		}
		if snap.Counters["emu.lightpaths_restored"] != int64(traced.Lightpaths) {
			t.Fatalf("emu.lightpaths_restored = %d, want %d",
				snap.Counters["emu.lightpaths_restored"], traced.Lightpaths)
		}
		if got := snap.Histograms["emu.restore_seconds"].Count; got != 1 {
			t.Fatalf("emu.restore_seconds count %d", got)
		}
		if noiseLoading {
			if snap.Counters["emu.amp_loops"] != 0 {
				t.Fatal("amp loops counted under noise loading")
			}
		} else {
			if snap.Counters["emu.amp_loops"] == 0 || snap.Counters["emu.amps_settled"] == 0 {
				t.Fatal("legacy run recorded no amplifier work")
			}
			if got := snap.Histograms["emu.amp_settle_seconds"].Count; got != int64(traced.AmpsSettled) {
				t.Fatalf("amp_settle_seconds count %d, want %d", got, traced.AmpsSettled)
			}
		}

		// The ledger saw one typed event per stage plus the episode summary.
		var stages, episodes int
		for _, ev := range led.Events() {
			switch ev.Kind {
			case ledger.KindEmuStage:
				stages++
				if ev.Mode != traced.Config.Mode() || ev.Stage == "" {
					t.Fatalf("malformed stage event %+v", ev)
				}
			case ledger.KindEmuEpisode:
				episodes++
				if ev.DurSec != traced.DoneSec || ev.Gbps != traced.RestoredGbps {
					t.Fatalf("episode event %+v disagrees with trial", ev)
				}
			}
		}
		if stages != len(traced.Stages) || episodes != 1 {
			t.Fatalf("ledger saw %d stage / %d episode events, want %d / 1",
				stages, episodes, len(traced.Stages))
		}
	}
}

// TestExplicitRngDeterminism covers the explicit-RNG plumbing: a config
// carrying its own *rand.Rand reproduces exactly given the same stream, and
// concurrent trials (one config each) match a sequential run bit for bit
// regardless of scheduling.
func TestExplicitRngDeterminism(t *testing.T) {
	run := func(rng *rand.Rand) *Trial {
		n, err := Testbed()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := RunRestoration(n, []int{FiberDC}, Config{Rng: rng, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := run(rand.New(rand.NewSource(42)))
	b := run(rand.New(rand.NewSource(42)))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same explicit RNG stream, different trials")
	}
	if c := run(rand.New(rand.NewSource(43))); c.DoneSec == a.DoneSec {
		t.Fatal("different RNG stream produced identical settle times")
	}

	// Worker-count independence: N seeded trials computed concurrently equal
	// the same trials computed sequentially.
	const trials = 8
	want := make([]*Trial, trials)
	for i := range want {
		n, err := Testbed()
		if err != nil {
			t.Fatal(err)
		}
		want[i], err = RunRestoration(n, []int{FiberDC}, Config{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	got := make([]*Trial, trials)
	var wg sync.WaitGroup
	for i := 0; i < trials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := Testbed()
			if err != nil {
				t.Error(err)
				return
			}
			got[i], err = RunRestoration(n, []int{FiberDC}, Config{Seed: int64(i)})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("trial %d differs between sequential and concurrent runs", i)
		}
	}
}

// TestLatencySamples pins the emu-backed latency model input: samples are
// reproducible for a base seed and separate the two schemes by orders of
// magnitude.
func TestLatencySamples(t *testing.T) {
	legacy, err := LatencySamples(false, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	arrow, err := LatencySamples(true, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != 3 || len(arrow) != 3 {
		t.Fatalf("sample counts %d/%d", len(legacy), len(arrow))
	}
	for i := range legacy {
		if legacy[i] < 50*arrow[i] {
			t.Fatalf("sample %d: legacy %.0f s not >> arrow %.0f s", i, legacy[i], arrow[i])
		}
	}
	again, err := LatencySamples(false, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, again) {
		t.Fatal("latency samples not reproducible for the same base seed")
	}
}

// TestAmplifierSettleEdgeCases covers the control-loop boundaries: the
// MaxLoops cap with an undamped controller, instant convergence inside
// tolerance, and degenerate chain lengths.
func TestAmplifierSettleEdgeCases(t *testing.T) {
	// Near-zero damping never converges: the cap must end the episode with
	// the error still outside tolerance.
	amp := Amplifier{Damping: 0.001}
	trace, total := amp.Settle(4.0, nil)
	if len(trace) != 41 { // initial point + MaxLoops steps
		t.Fatalf("capped trace has %d points, want 41", len(trace))
	}
	if total != 40*12 {
		t.Fatalf("capped settle took %g s, want %g", total, 40*12.0)
	}
	if final := trace[len(trace)-1].ErrorDB; math.Abs(final) <= 0.3 {
		t.Fatalf("undamped controller converged to %g dB", final)
	}

	// Error already within tolerance: zero loops, zero time.
	trace, total = Amplifier{}.Settle(0.25, nil)
	if len(trace) != 1 || total != 0 {
		t.Fatalf("in-tolerance settle ran %d loops over %g s", len(trace)-1, total)
	}

	// Degenerate chains.
	if got := AmpChainSettle(0, Config{Seed: 1}); len(got) != 0 {
		t.Fatalf("zero-amp chain returned %v", got)
	}
	one := AmpChainSettle(1, Config{Seed: 1})
	if len(one) != 1 || one[0] <= 0 {
		t.Fatalf("single-amp chain returned %v", one)
	}
	// An explicit Rng reproduces the chain too.
	c1 := AmpChainSettle(5, Config{Rng: rand.New(rand.NewSource(7))})
	c2 := AmpChainSettle(5, Config{Rng: rand.New(rand.NewSource(7))})
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("explicit-RNG chains differ")
	}
}

// TestEmuObsSchemaGolden pins the emulator's observability schema: the
// metric key set plus the emulated-clock trace span names produced by one
// legacy and one noise-loading episode. Values are jittered; the KEY SET is
// deterministic and must not drift silently. Regenerate deliberately with:
//
//	go test ./internal/emu -run TestEmuObsSchemaGolden -update
func TestEmuObsSchemaGolden(t *testing.T) {
	reg := obs.NewRegistry()
	reg.EnableTrace()
	ctx := obs.WithRecorder(context.Background(), reg)
	for _, noiseLoading := range []bool{false, true} {
		n, err := Testbed()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunRestorationCtx(ctx, n, []int{FiberDC}, Config{NoiseLoading: noiseLoading, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	for _, k := range reg.Snapshot().Keys() {
		if strings.Contains(k, "emu.") {
			keys = append(keys, k)
		}
	}
	traceNames := map[string]bool{}
	for _, ev := range reg.TraceEvents() {
		if ev.PID == obs.EmuPID {
			traceNames[ev.Name] = true
		}
	}
	for name := range traceNames {
		keys = append(keys, "trace:"+name)
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "obs_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("emu observability schema drifted from %s (regenerate deliberately with -update):\n got:\n%s\nwant:\n%s",
			golden, got, want)
	}
}
