// Package emu is a discrete-event emulator of the paper's production-level
// testbed (§5, Figs. 10-12): four ROADM sites on a 2,160 km unidirectional
// fiber ring with 34 amplifiers, carrying 16 wavelengths (200 Gbps each)
// grouped into four IP links. It reproduces the paper's headline latency
// result — restoring 2.8 Tbps takes ~17 minutes with legacy amplifier
// reconfiguration and ~8 seconds with ARROW's ASE noise loading — and the
// legacy amplifier-settling measurement of Fig. 20.
//
// The paper's numbers come from hardware; here every device is a timed
// model: EDFA amplifiers settle with repeated observe-analyze-act loops
// (~35 s each, sequential along a path) whenever the lit spectrum on their
// fiber changes, ROADMs reconfigure in two parallel waves (add/drop then
// intermediate, per Appendix A.6), and port-channels re-aggregate via LACP.
// With noise loading the lit spectrum never changes, so the amplifier term
// vanishes — which is the entire point of §4.
//
// Every trial also produces a per-stage latency waterfall (Trial.Stages) on
// the emulated clock. RunRestorationCtx exports it through the standard
// observability seams: emulated-time spans and emu.* metrics on an attached
// obs.Recorder, and typed per-device events on an attached ledger.Ledger.
// Observability never changes a trial: the stage model is computed either
// way, and recording consumes no randomness.
package emu

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/arrow-te/arrow/internal/noise"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/optical"
	"github.com/arrow-te/arrow/internal/rwa"
	"github.com/arrow-te/arrow/internal/spectrum"
)

// Config sets the emulated device timings. Zero values take defaults that
// reproduce the paper's measurements.
type Config struct {
	// AmpSpacingKm is the inline amplifier spacing (default 80 km; each
	// fiber also has a booster and a pre-amplifier).
	AmpSpacingKm float64
	// AmpSettleMeanSec calibrates one amplifier's observe-analyze-act
	// convergence time (default 36 s; Appendix A.7 measures ~35 s/amplifier:
	// 24 amps in 14 minutes). Internally it sets the control loop period of
	// the Amplifier model; actual settle times vary with the gain error.
	AmpSettleMeanSec float64
	// DetectSec is failure detection latency (default 1 s).
	DetectSec float64
	// ROADMWaveSec is the duration of ONE parallel ROADM reconfiguration
	// wave (default 2.5 s; two waves run per Appendix A.6).
	ROADMWaveSec float64
	// PortChannelSec is LACP re-aggregation after light is up (default 2 s).
	PortChannelSec float64
	// TEApplySec models installing the recomputed TE allocation on the
	// routers once the port channels are up (default 0: folded into the
	// LACP window, preserving the paper calibration; set it to split the
	// stage out explicitly).
	TEApplySec float64
	// NoiseLoading enables ARROW's ASE noise sources.
	NoiseLoading bool
	// SerialROADM reconfigures ROADMs one at a time instead of ARROW's two
	// parallel waves (Appendix A.6 ablation): each device costs a full
	// ROADMWaveSec.
	SerialROADM bool
	// HealthEvery probes the numerical health of the restoration RWA's LP
	// solve at this pivot period (lp.Options.HealthEvery via rwa.Request).
	// 0 disables probing; probes never change results.
	HealthEvery int
	// Seed derives the per-consumer randomness streams when Rng is nil.
	Seed int64
	// Rng, when non-nil, is the explicit randomness source for every
	// device-timing draw of the run (amplifier reconfiguration errors,
	// per-loop measurement noise, survivor-power jitter), consumed in
	// deterministic model order. When nil, each consumer derives its own
	// stream from Seed — reproducible across runs and worker counts either
	// way. A Config shared across concurrent trials must leave Rng nil or
	// give each trial its own: *rand.Rand is not concurrency-safe.
	Rng *rand.Rand
}

func (c Config) withDefaults() Config {
	if c.AmpSpacingKm <= 0 {
		c.AmpSpacingKm = 80
	}
	if c.AmpSettleMeanSec <= 0 {
		c.AmpSettleMeanSec = 36
	}
	if c.DetectSec <= 0 {
		c.DetectSec = 1
	}
	if c.ROADMWaveSec <= 0 {
		c.ROADMWaveSec = 2.5
	}
	if c.PortChannelSec <= 0 {
		c.PortChannelSec = 2
	}
	return c
}

// rng returns the explicit source when one was configured, or derives a
// fresh deterministic stream from Seed plus the consumer's salt (the
// historical behavior, kept so default-config trials reproduce exactly).
func (c Config) rng(salt int64) *rand.Rand {
	if c.Rng != nil {
		return c.Rng
	}
	return rand.New(rand.NewSource(c.Seed + salt))
}

// Mode names the restoration scheme of this config: "noise_loading" under
// ARROW's ASE noise sources, "legacy" otherwise. Observability events and
// reports are tagged with it.
func (c Config) Mode() string {
	if c.NoiseLoading {
		return "noise_loading"
	}
	return "legacy"
}

// AmpCount returns the number of amplifiers on a fiber: inline amps at the
// configured spacing plus a booster and a pre-amplifier.
func (c Config) AmpCount(lengthKm float64) int {
	return int(lengthKm/c.AmpSpacingKm) + 2
}

// Event is one timestamped emulator occurrence.
type Event struct {
	TimeSec float64
	Desc    string
}

// Sample is one point of the restoration time series (Fig. 12).
type Sample struct {
	TimeSec float64
	// RestoredGbps is the revived IP capacity at this time.
	RestoredGbps float64
	// SurvivorPowerDB is the power deviation of the surviving wavelengths
	// on the monitored fiber (0 dB = nominal; non-zero during legacy
	// amplifier settling).
	SurvivorPowerDB float64
}

// Stage names of the restoration waterfall, in pipeline order.
const (
	StageDetect            = "detect"
	StageROADMAddDrop      = "roadm_adddrop_wave"
	StageROADMIntermediate = "roadm_intermediate_wave"
	StageROADMSerial       = "roadm_serial"
	StageAmpChain          = "amp_chain"
	StageAmpSettle         = "amp_settle"
	StageLACP              = "lacp"
	StageTEApply           = "te_apply"
)

// StageSpan is one timed device action of a restoration episode on the
// emulated clock. Lane groups concurrent work: lane 0 is the serial
// critical-path lane (detection, ROADM waves, TE apply); each restored
// path's amplifier cascade and LACP window get their own lane, mirroring
// how distinct paths settle concurrently. StageAmpSettle spans are children
// of their path's StageAmpChain (contained in time on the same lane).
type StageSpan struct {
	Name     string
	Device   string
	Lane     int
	StartSec float64
	DurSec   float64
}

// Trial is the outcome of one emulated restoration.
type Trial struct {
	Config       Config
	Events       []Event
	Series       []Sample
	LostGbps     float64
	RestoredGbps float64
	DoneSec      float64 // time when the restoration episode completed
	AmpsSettled  int
	// AmpLoops is the total observe-analyze-act loops run across all
	// settled amplifiers (0 under noise loading).
	AmpLoops int
	// Lightpaths is the number of restored lightpaths brought up.
	Lightpaths int
	// Stages is the per-stage latency waterfall of the episode, always
	// populated; observability merely exports it.
	Stages        []StageSpan
	Plan          *noise.Plan
	MonitoredLink string
}

// CriticalPathSec sums the stage durations along the episode's critical
// path: the serial lane plus the slowest concurrent path lane. AmpSettle
// spans are children of their AmpChain and excluded from the sum. Whenever
// the trial restored anything (and for the nothing-restorable case too) the
// result equals DoneSec — the waterfall accounts for every second of the
// episode.
func (tr *Trial) CriticalPathSec() float64 {
	serial := 0.0
	lanes := map[int]float64{}
	for _, st := range tr.Stages {
		switch {
		case st.Name == StageAmpSettle:
			// contained in its amp_chain
		case st.Lane == 0:
			serial += st.DurSec
		default:
			lanes[st.Lane] += st.DurSec
		}
	}
	slowest := 0.0
	for _, d := range lanes {
		if d > slowest {
			slowest = d
		}
	}
	return serial + slowest
}

// Testbed builds the §5 testbed: ROADMs A=0, B=1, D=2, C=3 on a ring
// A-B (560 km), B-D (560 km), D-C (520 km), C-A (520 km) — 2,160 km and 34
// amplifiers at the default spacing. IP links (200G per wavelength):
//
//	A<->B 0.4T on [AB];  C<->D 0.4T on [DC];
//	A<->C 1.2T via B,D on [AB,BD,DC];  B<->D 1.2T via A,C on [AB,CA,DC].
//
// Fiber DC therefore carries 14 wavelengths; cutting it fails 2.8 Tbps
// across three IP links, exactly the Fig. 11 trial.
func Testbed() (*optical.Network, error) {
	n := optical.NewNetwork(4, 16)
	const (
		a, b, d, c = 0, 1, 2, 3
	)
	fAB := n.AddFiber(a, b, 560) // fiber 0
	fBD := n.AddFiber(b, d, 560) // fiber 1
	fDC := n.AddFiber(d, c, 520) // fiber 2
	fCA := n.AddFiber(c, a, 520) // fiber 3
	mod, _ := spectrum.ModulationByRate(200)

	mk := func(path []int, slots ...int) []optical.Lightpath {
		var ws []optical.Lightpath
		for _, s := range slots {
			ws = append(ws, optical.Lightpath{Slot: s, Modulation: mod, FiberPath: path})
		}
		return ws
	}
	if _, err := n.Provision(a, b, mk([]int{fAB.ID}, 0, 1)); err != nil {
		return nil, fmt.Errorf("emu: link AB: %w", err)
	}
	if _, err := n.Provision(a, c, mk([]int{fAB.ID, fBD.ID, fDC.ID}, 2, 3, 4, 5, 6, 7)); err != nil {
		return nil, fmt.Errorf("emu: link AC: %w", err)
	}
	if _, err := n.Provision(b, d, mk([]int{fAB.ID, fCA.ID, fDC.ID}, 8, 9, 10, 11, 12, 13)); err != nil {
		return nil, fmt.Errorf("emu: link BD: %w", err)
	}
	if _, err := n.Provision(d, c, mk([]int{fDC.ID}, 14, 15)); err != nil {
		return nil, fmt.Errorf("emu: link CD: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// FiberDC is the ID of the testbed fiber whose cut reproduces Fig. 11.
const FiberDC = 2

// FiberAB is the testbed fiber monitored in Fig. 12.
const FiberAB = 0

// RunRestoration emulates an end-to-end fiber-cut restoration: the cut is
// detected, the RWA computes the surrogate assignment, ROADMs reconfigure
// in two parallel waves, and — in legacy mode only — amplifiers along each
// restored path settle sequentially before the light is usable.
func RunRestoration(net *optical.Network, cut []int, cfg Config) (*Trial, error) {
	return RunRestorationCtx(context.Background(), net, cut, cfg)
}

// pathInfo aggregates one distinct restoration path's waterfall lane.
type pathInfo struct {
	lane     int
	fibers   []int
	doneSec  float64 // light usable (before LACP)
	chainDur float64 // amplifier-cascade settling (0 under noise loading)
	amps     int
	waves    int
	gbps     float64
}

// RunRestorationCtx is RunRestoration with observability attached through
// the context: an obs.Recorder (obs.WithRecorder) receives one emulated-time
// span per stage plus emu.* counters and histograms, and a ledger.Ledger
// (ledger.WithLedger) receives one typed event per device action and an
// episode summary. Both seams follow the nil-default contract — the trial
// is byte-identical with observability on or off.
func RunRestorationCtx(ctx context.Context, net *optical.Network, cut []int, cfg Config) (*Trial, error) {
	cfg = cfg.withDefaults()
	rng := cfg.rng(1)

	// The restoration RWA stays recorder-free by default so the emu metric
	// stream is unchanged from earlier snapshots; opting into health probes
	// attaches the context recorder so lp.health.* findings land somewhere.
	var lpRec obs.Recorder
	if cfg.HealthEvery > 0 {
		lpRec = obs.FromContext(ctx)
	}
	res, err := rwa.Solve(&rwa.Request{
		Net: net, Cut: cut, K: 3, AllowTuning: true, AllowModulationChange: true,
		Recorder: lpRec, HealthEvery: cfg.HealthEvery,
	})
	if err != nil {
		return nil, err
	}
	target := make([]int, len(res.Failed))
	copy(target, res.OrigWaves)
	asg, _ := rwa.AssignIntegral(res, target)
	plan := noise.BuildPlan(net, res, asg)

	tr := &Trial{Config: cfg, Plan: plan, MonitoredLink: "fiber AB"}
	for _, lid := range res.Failed {
		tr.LostGbps += net.LinkByID(lid).CapacityGbps()
	}
	logf := func(t float64, format string, args ...interface{}) {
		tr.Events = append(tr.Events, Event{TimeSec: t, Desc: fmt.Sprintf(format, args...)})
	}
	stage := func(name, device string, lane int, start, dur float64) {
		tr.Stages = append(tr.Stages, StageSpan{Name: name, Device: device, Lane: lane, StartSec: start, DurSec: dur})
	}

	logf(0, "fiber cut: %v fails %d IP links, %.1f Tbps lost", cut, len(res.Failed), tr.LostGbps/1000)
	t := cfg.DetectSec
	stage(StageDetect, "optical monitors", 0, 0, cfg.DetectSec)
	logf(t, "failure detected, restoration plan activated (%d lightpaths)", countPicks(asg))

	// ROADM reconfiguration: ARROW groups devices into two parallel waves
	// (Appendix A.6); the serial ablation walks them one by one.
	if cfg.SerialROADM {
		devices := plan.NumAddDropROADMs() + plan.NumIntermediateROADMs()
		dur := float64(devices) * cfg.ROADMWaveSec
		stage(StageROADMSerial, fmt.Sprintf("%d ROADMs one at a time", devices), 0, t, dur)
		t += dur
		logf(t, "serial: %d ROADMs reconfigured one at a time", devices)
	} else {
		stage(StageROADMAddDrop, fmt.Sprintf("%d add/drop ROADMs", plan.NumAddDropROADMs()), 0, t, cfg.ROADMWaveSec)
		t += cfg.ROADMWaveSec
		logf(t, "wave 1: %d add/drop ROADMs reconfigured in parallel", plan.NumAddDropROADMs())
		stage(StageROADMIntermediate, fmt.Sprintf("%d intermediate ROADMs", plan.NumIntermediateROADMs()), 0, t, cfg.ROADMWaveSec)
		t += cfg.ROADMWaveSec
		logf(t, "wave 2: %d intermediate ROADMs reconfigured in parallel", plan.NumIntermediateROADMs())
	}
	roadmDone := t

	// Per-lightpath availability times, grouped by distinct restoration
	// path: each path is one waterfall lane.
	type lightUp struct {
		timeSec float64
		gbps    float64
		fibers  []int
	}
	var ups []lightUp
	paths := map[string]*pathInfo{}
	var pathOrder []string
	survivorDisturbedUntil := 0.0
	ampModel := Amplifier{LoopSec: cfg.AmpSettleMeanSec / 3.6}
	for li := range res.Failed {
		for _, pick := range asg.PerLink[li] {
			opt := res.Options[li][pick[0]]
			key := fmt.Sprint(opt.Fibers)
			pi := paths[key]
			if pi == nil {
				pi = &pathInfo{lane: len(pathOrder) + 1, fibers: opt.Fibers, doneSec: roadmDone}
				paths[key] = pi
				pathOrder = append(pathOrder, key)
				if !cfg.NoiseLoading {
					// Legacy: every amplifier on a path whose lit spectrum
					// changed must settle, one observe-analyze-act loop after
					// another along the path. Distinct paths settle
					// concurrently; amps within a path are serial.
					for _, fid := range opt.Fibers {
						pi.amps += cfg.AmpCount(net.Fibers[fid].LengthKm)
					}
					tt := roadmDone
					for i := 0; i < pi.amps; i++ {
						trace, dt := ampModel.Settle(typicalReconfigErrDB(rng), rng)
						stage(StageAmpSettle, fmt.Sprintf("path %v amp %d", opt.Fibers, i+1), pi.lane, tt, dt)
						tt += dt
						tr.AmpLoops += len(trace) - 1
					}
					pi.doneSec = tt
					pi.chainDur = tt - roadmDone
					tr.AmpsSettled += pi.amps
					logf(tt, "amplifier chain settled on path %v (%d amps)", opt.Fibers, pi.amps)
					if tt > survivorDisturbedUntil {
						survivorDisturbedUntil = tt
					}
				}
				// With noise loading the amplifiers never see a spectral
				// change: light is usable right after the ROADM waves.
			}
			pi.waves++
			pi.gbps += opt.Modulation.GbpsPerWavelength
			ups = append(ups, lightUp{pi.doneSec + cfg.PortChannelSec, opt.Modulation.GbpsPerWavelength, opt.Fibers})
		}
	}
	for _, key := range pathOrder {
		pi := paths[key]
		if pi.chainDur > 0 {
			stage(StageAmpChain, fmt.Sprintf("path %v (%d amps)", pi.fibers, pi.amps), pi.lane, roadmDone, pi.chainDur)
		}
		stage(StageLACP, fmt.Sprintf("path %v (%d waves, %.0f Gbps)", pi.fibers, pi.waves, pi.gbps), pi.lane, pi.doneSec, cfg.PortChannelSec)
	}

	sort.Slice(ups, func(i, j int) bool { return ups[i].timeSec < ups[j].timeSec })
	for _, u := range ups {
		tr.RestoredGbps += u.gbps
		tr.DoneSec = u.timeSec
	}
	tr.Lightpaths = len(ups)
	if len(ups) > 0 {
		if cfg.TEApplySec > 0 {
			stage(StageTEApply, "TE controller", 0, tr.DoneSec, cfg.TEApplySec)
			tr.DoneSec += cfg.TEApplySec
		}
		logf(tr.DoneSec, "restoration complete: %.1f Tbps revived (%.0f%% of lost)",
			tr.RestoredGbps/1000, 100*tr.RestoredGbps/math.Max(tr.LostGbps, 1))
	} else {
		tr.DoneSec = roadmDone
		logf(tr.DoneSec, "nothing restorable")
	}

	// Build the Fig. 12 time series: restored capacity plus survivor power
	// deviation on the monitored fiber.
	horizon := tr.DoneSec * 1.15
	if horizon < 12 {
		horizon = 12
	}
	step := horizon / 240
	prng := cfg.rng(2)
	for tt := 0.0; tt <= horizon; tt += step {
		restored := 0.0
		for _, u := range ups {
			if u.timeSec <= tt {
				restored += u.gbps
			}
		}
		power := 0.0
		if !cfg.NoiseLoading && tt > roadmDone && tt < survivorDisturbedUntil {
			// Gain excursions while amplifiers hunt: bounded, decaying.
			frac := (tt - roadmDone) / (survivorDisturbedUntil - roadmDone)
			power = (1.8 - 1.2*frac) * math.Sin(tt/7) * (0.7 + 0.3*prng.Float64())
		}
		tr.Series = append(tr.Series, Sample{TimeSec: tt, RestoredGbps: restored, SurvivorPowerDB: power})
	}

	emitEpisode(ctx, tr)
	return tr, nil
}

func countPicks(a *rwa.Assignment) int {
	n := 0
	for _, p := range a.PerLink {
		n += len(p)
	}
	return n
}

// AmpChainSettle emulates the Fig. 20 / Appendix A.7 measurement:
// reconfiguring wavelengths on a single long path of cascaded amplifiers
// without noise loading. Each amplifier runs its observe-analyze-act
// control loop to convergence before the next one sees a stable input.
// It returns the per-amplifier completion times.
func AmpChainSettle(numAmps int, cfg Config) []float64 {
	cfg = cfg.withDefaults()
	rng := cfg.rng(3)
	ampModel := Amplifier{LoopSec: cfg.AmpSettleMeanSec / 3.6}
	out := make([]float64, numAmps)
	t := 0.0
	for i := range out {
		t += ampModel.SettleTime(typicalReconfigErrDB(rng), rng)
		out[i] = t
	}
	return out
}

// LatencySamples measures the end-to-end restoration latency of n
// independent testbed episodes (the Fig. 11 fiber-DC cut) at consecutive
// seeds under the given restoration scheme. The samples are the emu-backed
// input to sim's empirical restoration-latency model, coupling the
// availability replay to emulator-measured restoration windows.
func LatencySamples(noiseLoading bool, n int, baseSeed int64) ([]float64, error) {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		net, err := Testbed()
		if err != nil {
			return nil, err
		}
		tr, err := RunRestoration(net, []int{FiberDC}, Config{NoiseLoading: noiseLoading, Seed: baseSeed + int64(i)})
		if err != nil {
			return nil, err
		}
		out = append(out, tr.DoneSec)
	}
	return out, nil
}
