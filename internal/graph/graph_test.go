package graph

import (
	"math"
	"math/rand"
	"testing"
)

// lineGraph builds 0-1-2-...-n-1 with unit weights, bidirectional.
func lineGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddBiEdge(Node(i), Node(i+1), 1, i)
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := lineGraph(5)
	p, ok := g.ShortestPath(0, 4, nil)
	if !ok || p.Weight != 4 || len(p.Edges) != 4 {
		t.Fatalf("path %+v ok=%v", p, ok)
	}
	nodes := p.Nodes(g)
	for i, n := range nodes {
		if n != Node(i) {
			t.Fatalf("nodes %v", nodes)
		}
	}
}

func TestShortestPathPrefersLowWeight(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 2, 10, 0) // direct but heavy
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 2, 1, 2)
	p, ok := g.ShortestPath(0, 2, nil)
	if !ok || p.Weight != 2 || len(p.Edges) != 2 {
		t.Fatalf("path %+v", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1, 0)
	if _, ok := g.ShortestPath(0, 3, nil); ok {
		t.Fatal("expected unreachable")
	}
	if g.Reachable(0, 3, nil) {
		t.Fatal("Reachable disagreed")
	}
	if !g.Reachable(0, 1, nil) {
		t.Fatal("0->1 should be reachable")
	}
}

func TestShortestPathBannedEdges(t *testing.T) {
	g := New(3)
	short := g.AddEdge(0, 2, 1, 0)
	g.AddEdge(0, 1, 2, 1)
	g.AddEdge(1, 2, 2, 2)
	p, ok := g.ShortestPath(0, 2, func(id int) bool { return id == short })
	if !ok || p.Weight != 4 {
		t.Fatalf("detour path %+v", p)
	}
}

func TestMultigraphParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 5, 0)
	cheap := g.AddEdge(0, 1, 2, 1)
	p, ok := g.ShortestPath(0, 1, nil)
	if !ok || p.Edges[0] != cheap {
		t.Fatalf("want parallel edge %d, got %+v", cheap, p)
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	// Diamond: 0->1->3 (w 2), 0->2->3 (w 3), 0->3 (w 4).
	g := New(4)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 3, 1, 1)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(2, 3, 2, 3)
	g.AddEdge(0, 3, 4, 4)
	ps := g.KShortestPaths(0, 3, 5, 0)
	if len(ps) != 3 {
		t.Fatalf("got %d paths, want 3: %+v", len(ps), ps)
	}
	wantW := []float64{2, 3, 4}
	for i, p := range ps {
		if p.Weight != wantW[i] {
			t.Fatalf("path %d weight %g want %g", i, p.Weight, wantW[i])
		}
	}
}

func TestKShortestPathsMaxWeight(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 3, 1, 1)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(2, 3, 2, 3)
	g.AddEdge(0, 3, 4, 4)
	ps := g.KShortestPaths(0, 3, 5, 3)
	if len(ps) != 2 {
		t.Fatalf("got %d paths with reach bound 3, want 2", len(ps))
	}
}

func TestKShortestPathsLoopless(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j && rng.Float64() < 0.4 {
				g.AddEdge(Node(i), Node(j), 1+rng.Float64()*4, i*8+j)
			}
		}
	}
	ps := g.KShortestPaths(0, 7, 12, 0)
	prevW := 0.0
	for pi, p := range ps {
		if p.Weight < prevW-1e-12 {
			t.Fatalf("paths not sorted: %v", ps)
		}
		prevW = p.Weight
		seen := map[Node]bool{}
		for _, n := range p.Nodes(g) {
			if seen[n] {
				t.Fatalf("path %d revisits node %d", pi, n)
			}
			seen[n] = true
		}
		// Check connectivity of the edge sequence.
		for i := 0; i+1 < len(p.Edges); i++ {
			if g.Edge(p.Edges[i]).To != g.Edge(p.Edges[i+1]).From {
				t.Fatalf("path %d not connected", pi)
			}
		}
	}
	// All paths distinct.
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			if equalInts(ps[i].Edges, ps[j].Edges) {
				t.Fatalf("duplicate paths %d and %d", i, j)
			}
		}
	}
}

func TestDisjointPaths(t *testing.T) {
	// Two label-disjoint routes plus one sharing a label.
	g := New(4)
	g.AddEdge(0, 1, 1, 100)
	g.AddEdge(1, 3, 1, 101)
	g.AddEdge(0, 2, 1, 102)
	g.AddEdge(2, 3, 1, 103)
	g.AddEdge(0, 3, 10, 100) // shares label 100 with first hop
	ps := g.DisjointPaths(0, 3, 3)
	if len(ps) != 2 {
		t.Fatalf("got %d disjoint paths, want 2", len(ps))
	}
	labels := map[int]int{}
	for _, p := range ps {
		for _, id := range p.Edges {
			labels[g.Edge(id).Label]++
		}
	}
	for l, c := range labels {
		if c > 1 {
			t.Fatalf("label %d reused %d times", l, c)
		}
	}
}

func TestKShortestAgainstBruteForce(t *testing.T) {
	// Enumerate all simple paths on a random small graph and compare the
	// sorted weights with Yen's output.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 5
		g := New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.5 {
					g.AddEdge(Node(i), Node(j), float64(1+rng.Intn(9)), 0)
				}
			}
		}
		var all []float64
		var dfs func(at Node, visited map[Node]bool, w float64)
		dfs = func(at Node, visited map[Node]bool, w float64) {
			if at == Node(n-1) {
				all = append(all, w)
				return
			}
			for _, id := range g.Out(at) {
				e := g.Edge(id)
				if !visited[e.To] {
					visited[e.To] = true
					dfs(e.To, visited, w+e.Weight)
					delete(visited, e.To)
				}
			}
		}
		dfs(0, map[Node]bool{0: true}, 0)
		if len(all) == 0 {
			continue
		}
		// sort ascending
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if all[j] < all[i] {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		k := len(all)
		ps := g.KShortestPaths(0, Node(n-1), k, 0)
		if len(ps) != k {
			t.Fatalf("trial %d: got %d paths, brute force found %d", trial, len(ps), k)
		}
		for i := range ps {
			if math.Abs(ps[i].Weight-all[i]) > 1e-9 {
				t.Fatalf("trial %d: path %d weight %g want %g", trial, i, ps[i].Weight, all[i])
			}
		}
	}
}

func TestMaxFlowKnown(t *testing.T) {
	// Classic CLRS-style network: s=0, t=5.
	g := New(6)
	caps := map[int]float64{}
	add := func(a, b Node, c float64) {
		id := g.AddEdge(a, b, 1, 0)
		caps[id] = c
	}
	add(0, 1, 16)
	add(0, 2, 13)
	add(1, 2, 10)
	add(2, 1, 4)
	add(1, 3, 12)
	add(3, 2, 9)
	add(2, 4, 14)
	add(4, 3, 7)
	add(3, 5, 20)
	add(4, 5, 4)
	got := g.MaxFlow(0, 5, func(id int) float64 { return caps[id] })
	if math.Abs(got-23) > 1e-9 {
		t.Fatalf("max flow %g, want 23", got)
	}
	// Unreachable sink.
	g2 := New(3)
	g2.AddEdge(0, 1, 1, 0)
	if f := g2.MaxFlow(0, 2, func(int) float64 { return 5 }); f != 0 {
		t.Fatalf("flow to unreachable sink %g", f)
	}
	if f := g.MaxFlow(0, 0, func(int) float64 { return 5 }); f != 0 {
		t.Fatalf("s==t flow %g", f)
	}
}

func TestMaxFlowMatchesLPOnRandomGraphs(t *testing.T) {
	// Cross-check against the min of all s-t cut values on small random
	// graphs (max-flow = min-cut).
	rng := rand.New(rand.NewSource(77))
	// Exact check: enumerate all cuts (max-flow = min-cut) on small graphs.
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(4)
		g := New(n)
		caps := map[int]float64{}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.45 {
					id := g.AddEdge(Node(i), Node(j), 1, 0)
					caps[id] = float64(1 + rng.Intn(9))
				}
			}
		}
		flow := g.MaxFlow(0, Node(n-1), func(id int) float64 { return caps[id] })
		// Min cut by enumeration over subsets containing s but not t.
		minCut := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			if mask&1 == 0 || mask&(1<<(n-1)) != 0 {
				continue
			}
			cut := 0.0
			for id, e := range g.Edges() {
				inS := mask&(1<<int(e.From)) != 0
				inT := mask&(1<<int(e.To)) == 0
				if inS && inT {
					cut += caps[id]
				}
			}
			if cut < minCut {
				minCut = cut
			}
		}
		if math.Abs(flow-minCut) > 1e-9 {
			t.Fatalf("trial %d: max flow %g != min cut %g", trial, flow, minCut)
		}
	}
}
