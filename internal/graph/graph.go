// Package graph provides the directed multigraph and path algorithms used by
// both layers of the ARROW reproduction: the optical-layer fiber graph
// (ROADMs and fibers, where surrogate restoration paths are routed) and the
// IP-layer topology (sites and IP links, where TE tunnels are routed).
//
// It implements Dijkstra shortest paths, Yen's k-shortest loopless paths
// (used for surrogate fiber paths and tunnel selection), and greedy
// edge-disjoint path extraction (used for fiber-disjoint tunnels).
package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Node identifies a vertex.
type Node int

// Edge is one directed edge of a multigraph.
type Edge struct {
	ID     int // position in the graph's edge list
	From   Node
	To     Node
	Weight float64
	// Label carries the caller's identifier (e.g. fiber or IP-link index).
	Label int
}

// Graph is a directed multigraph. Add nodes implicitly by using them in
// AddEdge. Edges keep insertion order and stable IDs.
type Graph struct {
	n     int
	edges []Edge
	out   [][]int // node -> edge IDs
}

// New returns a graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{n: n, out: make([][]int, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns edge metadata by ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns all edges in insertion order. The slice is shared; treat it
// as read-only.
func (g *Graph) Edges() []Edge { return g.edges }

// AddEdge inserts a directed edge and returns its ID.
func (g *Graph) AddEdge(from, to Node, weight float64, label int) int {
	if from < 0 || int(from) >= g.n || to < 0 || int(to) >= g.n {
		panic(fmt.Sprintf("graph: edge %d->%d outside node range [0,%d)", from, to, g.n))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Weight: weight, Label: label})
	g.out[from] = append(g.out[from], id)
	return id
}

// AddBiEdge inserts a pair of opposite directed edges with the same label
// and returns their IDs.
func (g *Graph) AddBiEdge(a, b Node, weight float64, label int) (int, int) {
	return g.AddEdge(a, b, weight, label), g.AddEdge(b, a, weight, label)
}

// Out returns the IDs of edges leaving n. Read-only.
func (g *Graph) Out(n Node) []int { return g.out[n] }

// Path is a sequence of edge IDs with its total weight.
type Path struct {
	Edges  []int
	Weight float64
}

// Nodes expands a path to its node sequence (length len(Edges)+1).
func (p Path) Nodes(g *Graph) []Node {
	if len(p.Edges) == 0 {
		return nil
	}
	out := make([]Node, 0, len(p.Edges)+1)
	out = append(out, g.edges[p.Edges[0]].From)
	for _, id := range p.Edges {
		out = append(out, g.edges[id].To)
	}
	return out
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node Node
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath returns the minimum-weight path from src to dst, skipping
// edges for which banned returns true (banned may be nil). ok is false when
// dst is unreachable.
func (g *Graph) ShortestPath(src, dst Node, banned func(edgeID int) bool) (Path, bool) {
	dist := make([]float64, g.n)
	prev := make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		for _, id := range g.out[it.node] {
			if banned != nil && banned(id) {
				continue
			}
			e := &g.edges[id]
			if e.Weight < 0 {
				panic("graph: negative edge weight")
			}
			if nd := it.dist + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = id
				heap.Push(q, pqItem{e.To, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	var rev []int
	for at := dst; at != src; {
		id := prev[at]
		rev = append(rev, id)
		at = g.edges[id].From
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return Path{Edges: rev, Weight: dist[dst]}, true
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// ascending weight order (Yen's algorithm). maxWeight, if positive, prunes
// paths longer than it (used for modulation reach bounds).
func (g *Graph) KShortestPaths(src, dst Node, k int, maxWeight float64) []Path {
	if k <= 0 {
		return nil
	}
	within := func(p Path) bool { return maxWeight <= 0 || p.Weight <= maxWeight+1e-9 }
	first, ok := g.ShortestPath(src, dst, nil)
	if !ok || !within(first) {
		return nil
	}
	accepted := []Path{first}
	var candidates []Path

	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		prevNodes := prev.Nodes(g)
		// Spur from each node of the previous path.
		for i := 0; i < len(prev.Edges); i++ {
			spurNode := prevNodes[i]
			rootEdges := prev.Edges[:i]
			rootWeight := 0.0
			for _, id := range rootEdges {
				rootWeight += g.edges[id].Weight
			}
			bannedEdges := map[int]bool{}
			bannedNodes := map[Node]bool{}
			// Ban edges that would recreate an accepted path with this root.
			for _, p := range accepted {
				if len(p.Edges) > i && equalInts(p.Edges[:i], rootEdges) {
					bannedEdges[p.Edges[i]] = true
				}
			}
			// Ban root nodes to keep paths loopless.
			for _, n := range prevNodes[:i] {
				bannedNodes[n] = true
			}
			spur, ok := g.ShortestPath(spurNode, dst, func(id int) bool {
				return bannedEdges[id] || bannedNodes[g.edges[id].From] || bannedNodes[g.edges[id].To]
			})
			if !ok {
				continue
			}
			total := Path{
				Edges:  append(append([]int(nil), rootEdges...), spur.Edges...),
				Weight: rootWeight + spur.Weight,
			}
			if !within(total) {
				continue
			}
			dup := false
			for _, c := range candidates {
				if equalInts(c.Edges, total.Edges) {
					dup = true
					break
				}
			}
			for _, a := range accepted {
				if equalInts(a.Edges, total.Edges) {
					dup = true
					break
				}
			}
			if !dup {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].Weight < candidates[b].Weight })
		accepted = append(accepted, candidates[0])
		candidates = candidates[1:]
	}
	return accepted
}

// DisjointPaths greedily extracts up to k paths from src to dst that share
// no edge label (labels typically identify fibers, so label-disjoint means
// fiber-disjoint). Paths are found shortest-first.
func (g *Graph) DisjointPaths(src, dst Node, k int) []Path {
	usedLabels := map[int]bool{}
	var out []Path
	for len(out) < k {
		p, ok := g.ShortestPath(src, dst, func(id int) bool { return usedLabels[g.edges[id].Label] })
		if !ok {
			break
		}
		for _, id := range p.Edges {
			usedLabels[g.edges[id].Label] = true
		}
		out = append(out, p)
	}
	return out
}

// Reachable reports whether dst is reachable from src skipping banned edges.
func (g *Graph) Reachable(src, dst Node, banned func(edgeID int) bool) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, g.n)
	stack := []Node{src}
	seen[src] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.out[n] {
			if banned != nil && banned(id) {
				continue
			}
			to := g.edges[id].To
			if to == dst {
				return true
			}
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MaxFlow computes the maximum s->t flow with Edmonds-Karp (BFS augmenting
// paths). capacity gives each edge's capacity by edge ID; opposite directed
// edges are treated independently. Used for topology diagnostics (min-cut
// checks) and as a combinatorial cross-check of the LP solver.
func (g *Graph) MaxFlow(s, t Node, capacity func(edgeID int) float64) float64 {
	if s == t {
		return 0
	}
	residual := make([]float64, len(g.edges))
	for id := range g.edges {
		residual[id] = capacity(id)
	}
	// reverse[id] is the edge ID of the reverse residual arc; built lazily
	// as a virtual arc (flow pushed back along id).
	flowOn := make([]float64, len(g.edges))

	total := 0.0
	for {
		// BFS over residual graph: forward arcs with residual > 0, and
		// backward arcs with flow > 0.
		type step struct {
			edge    int
			forward bool
		}
		prev := make(map[Node]step, g.n)
		visited := make([]bool, g.n)
		visited[s] = true
		queue := []Node{s}
		found := false
		for len(queue) > 0 && !found {
			u := queue[0]
			queue = queue[1:]
			for _, id := range g.out[u] {
				e := &g.edges[id]
				if residual[id] > 1e-12 && !visited[e.To] {
					visited[e.To] = true
					prev[e.To] = step{id, true}
					if e.To == t {
						found = true
						break
					}
					queue = append(queue, e.To)
				}
			}
			if found {
				break
			}
			// Backward arcs: edges INTO u with positive flow.
			for id := range g.edges {
				e := &g.edges[id]
				if e.To == u && flowOn[id] > 1e-12 && !visited[e.From] {
					visited[e.From] = true
					prev[e.From] = step{id, false}
					if e.From == t {
						found = true
						break
					}
					queue = append(queue, e.From)
				}
			}
		}
		if !found {
			return total
		}
		// Find bottleneck.
		bottleneck := math.Inf(1)
		for at := t; at != s; {
			st := prev[at]
			e := &g.edges[st.edge]
			if st.forward {
				if residual[st.edge] < bottleneck {
					bottleneck = residual[st.edge]
				}
				at = e.From
			} else {
				if flowOn[st.edge] < bottleneck {
					bottleneck = flowOn[st.edge]
				}
				at = e.To
			}
		}
		for at := t; at != s; {
			st := prev[at]
			e := &g.edges[st.edge]
			if st.forward {
				residual[st.edge] -= bottleneck
				flowOn[st.edge] += bottleneck
				at = e.From
			} else {
				flowOn[st.edge] -= bottleneck
				residual[st.edge] += bottleneck
				at = e.To
			}
		}
		total += bottleneck
	}
}
