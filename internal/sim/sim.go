// Package sim replays failure timelines against a solved TE plan: fiber
// cuts arrive as a Poisson process, repairs follow the paper's measured
// repair-time distribution (§2.2: median nine hours, 10% over a day), and
// between events the network delivers whatever the TE plan plus ARROW's
// precomputed restoration allow. It turns the static availability metric of
// §6.1 into an operational months-long view: time-weighted delivered
// traffic, time at full service, and how often the WAN is in a failure
// state nobody planned for.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/arrow-te/arrow/internal/availability"
	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/obs"
	"github.com/arrow-te/arrow/internal/par"
	"github.com/arrow-te/arrow/internal/stats"
	"github.com/arrow-te/arrow/internal/te"
)

// Event is one timeline occurrence: a fiber going down or coming back.
type Event struct {
	TimeH float64
	Fiber int
	Up    bool
}

// TimelineOptions configures failure-timeline generation.
type TimelineOptions struct {
	// DurationH is the horizon in hours.
	DurationH float64
	// CutsPerMonth is the fleet-wide fiber-cut rate (the paper measures
	// ~16/month on the production backbone; scale to your fiber count).
	CutsPerMonth float64
	// RepairMedianH / RepairSigma parameterise the lognormal repair time
	// (defaults 9h / 0.7655, the §2.2 calibration).
	RepairMedianH float64
	RepairSigma   float64
	Seed          int64
}

func (o TimelineOptions) withDefaults() TimelineOptions {
	if o.DurationH <= 0 {
		o.DurationH = 30 * 24
	}
	if o.CutsPerMonth <= 0 {
		o.CutsPerMonth = 4
	}
	if o.RepairMedianH <= 0 {
		o.RepairMedianH = 9
	}
	if o.RepairSigma <= 0 {
		o.RepairSigma = 0.7655
	}
	return o
}

// GenerateTimeline builds a deterministic cut/repair event sequence for
// nFibers fibers: exponential inter-arrival times at the configured rate,
// uniformly random victim fibers (re-cutting an already-down fiber extends
// nothing and is skipped), lognormal repair durations.
func GenerateTimeline(nFibers int, opt TimelineOptions) []Event {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	ratePerH := opt.CutsPerMonth / (30 * 24)
	downUntil := make([]float64, nFibers) // 0 = up

	var events []Event
	t := 0.0
	for {
		t += rng.ExpFloat64() / ratePerH
		if t >= opt.DurationH {
			break
		}
		f := rng.Intn(nFibers)
		if downUntil[f] > t {
			continue // already down
		}
		repair := stats.LogNormal(rng, math.Log(opt.RepairMedianH), opt.RepairSigma)
		up := t + repair
		downUntil[f] = up
		events = append(events, Event{TimeH: t, Fiber: f, Up: false})
		if up < opt.DurationH {
			events = append(events, Event{TimeH: up, Fiber: f, Up: true})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].TimeH < events[b].TimeH })
	return events
}

// Projector maps a set of cut fibers to the failed IP links.
type Projector func(cut []int) []int

// Runner replays a timeline against one solved TE allocation.
type Runner struct {
	Net     *te.Network
	Alloc   *te.Allocation
	Project Projector
	// ECMPRebalance selects equal re-spreading semantics (for the ECMP TE).
	ECMPRebalance bool
	// Parallelism is the worker count for the per-interval delivery
	// evaluations (each interval's network state is independent of the
	// others once the event sweep has fixed the down-set). 0 selects
	// runtime.NumCPU(); 1 restores sequential replay. Reports are
	// identical for every setting.
	Parallelism int
	// Recorder receives replay metrics (sim.intervals,
	// sim.unplanned_intervals, a sim.run span) and is handed to the worker
	// pool. A nil Recorder costs nothing and never changes the Report.
	Recorder obs.Recorder
	// Ledger, when non-nil, records one sim_summary event per replay with
	// the interval count and the time-weighted delivered fraction. Same
	// contract as Recorder: nil costs nothing and never changes the Report.
	Ledger *ledger.Ledger
	// Profiler attributes the replay's wall time and allocations to the
	// sim.replay stage. Nil costs a nil check; reports are byte-identical
	// profiled or not.
	Profiler *obs.StageProfiler
	// Latency, when non-nil, makes the replay restoration-latency-aware:
	// each cut that fails IP links draws a restoration latency and the
	// precomputed plan only takes effect once that window elapses — before
	// it, the interval is evaluated without restoration. nil keeps the
	// historical instantaneous-restoration semantics.
	Latency LatencyModel
	// LatencySeed seeds the dedicated latency-draw stream. Draws happen in
	// the sequential event sweep, so reports stay identical for every
	// Parallelism setting.
	LatencySeed int64
	// Label tags this replay's sim_summary ledger event (e.g. "legacy" /
	// "noise_loading") so paired latency-model runs can be told apart.
	Label string
	// AttributeLoss additionally emits one attribution ledger event per
	// distinct fiber-cut set seen during the replay, carrying its
	// time-weighted share of lost delivery (the operational counterpart of
	// the static internal/attr decomposition). Events are aggregated and
	// emitted from the sequential integration pass in a sorted order, so
	// the stream is identical at every Parallelism; without a Ledger the
	// switch is inert.
	AttributeLoss bool

	// plans maps a canonical failed-link-set key to the precomputed
	// restoration of that scenario (nil for TEs without restoration).
	plans map[string]map[int]float64
}

// NewRunner builds a runner. scenarios/restored (parallel slices) register
// the precomputed restoration plans; pass nil restored for baseline TEs.
func NewRunner(net *te.Network, alloc *te.Allocation, project Projector,
	scenarios []te.FailureScenario, restored []map[int]float64) *Runner {
	r := &Runner{Net: net, Alloc: alloc, Project: project, plans: map[string]map[int]float64{}}
	for i, sc := range scenarios {
		var plan map[int]float64
		if restored != nil {
			plan = restored[i]
		}
		r.plans[linkSetKey(sc.FailedLinks)] = plan
	}
	return r
}

func linkSetKey(links []int) string {
	s := append([]int(nil), links...)
	sort.Ints(s)
	return fmt.Sprint(s)
}

// Report summarises a timeline replay.
type Report struct {
	// Delivered is the time-weighted average delivered demand fraction.
	Delivered float64
	// FullServiceFrac is the fraction of time at >= 99.9% delivery.
	FullServiceFrac float64
	// Worst is the lowest delivered fraction over the horizon.
	Worst float64
	// UnplannedHours is time spent in failure states with no precomputed
	// restoration plan (ARROW falls back to no restoration there).
	UnplannedHours float64
	// RestoringHours is time spent inside restoration-latency windows —
	// failed state present, plan drawn but not yet in effect (0 without a
	// LatencyModel).
	RestoringHours float64
	// RestoreLatency summarises the restoration-latency draws of the replay
	// in seconds (zero-count without a LatencyModel).
	RestoreLatency stats.Summary
	// Intervals is the number of distinct network states evaluated.
	Intervals int
}

// interval is one constant network state of the replay: the fibers down
// between two consecutive events. restoring marks the slice of a failure
// interval still inside a restoration-latency window.
type interval struct {
	fromH, toH float64
	cut        []int // sorted
	restoring  bool
}

// intervals sweeps the (time-sorted) events once and returns the list of
// positive-length constant states covering [0, durationH], plus the
// restoration-latency draws (seconds) made along the way. With a
// LatencyModel configured, every cut that fails IP links opens a restoring
// window and failure intervals are split at the window boundary. All
// randomness is consumed here, in event order, so the result is independent
// of how the interval evaluations are later scheduled.
func (r *Runner) intervals(events []Event, durationH float64) ([]interval, []float64) {
	var out []interval
	var draws []float64
	down := map[int]bool{}
	restoringUntil := 0.0
	var lrng *rand.Rand
	if r.Latency != nil {
		lrng = rand.New(rand.NewSource(r.LatencySeed))
	}
	downSet := func() []int {
		cut := make([]int, 0, len(down))
		for f := range down {
			cut = append(cut, f)
		}
		sort.Ints(cut)
		return cut
	}
	emit := func(fromH, toH float64) {
		if toH <= fromH {
			return
		}
		cut := downSet()
		if len(cut) > 0 && fromH < restoringUntil {
			mid := math.Min(toH, restoringUntil)
			out = append(out, interval{fromH: fromH, toH: mid, cut: cut, restoring: true})
			if toH <= mid {
				return
			}
			fromH = mid
		}
		out = append(out, interval{fromH: fromH, toH: toH, cut: cut})
	}
	t := 0.0
	for _, e := range events {
		if e.TimeH > durationH {
			break
		}
		emit(t, e.TimeH)
		t = e.TimeH
		if e.Up {
			delete(down, e.Fiber)
		} else {
			down[e.Fiber] = true
			if lrng != nil {
				if failed := r.Project(downSet()); len(failed) > 0 {
					l := r.Latency.RestoreLatencySec(lrng, failed)
					draws = append(draws, l)
					if until := t + l/3600; until > restoringUntil {
						restoringUntil = until
					}
				}
			}
		}
	}
	emit(t, durationH)
	return out, draws
}

// intervalEval is one interval's evaluated delivery.
type intervalEval struct {
	delivered float64
	unplanned bool // failure state with no precomputed restoration plan
}

// Run replays the events over the horizon and integrates delivery. The
// per-interval evaluations fan out over r.Parallelism workers (each
// interval's state is fixed by the event sweep, the plan lookup table is
// read-only, and the integration happens afterwards in time order), so the
// report is identical for every worker count.
func (r *Runner) Run(events []Event, durationH float64) *Report {
	defer r.Profiler.Stage("sim.replay")()
	ev := &availability.Evaluator{Net: r.Net, Alloc: r.Alloc, ECMPRebalance: r.ECMPRebalance}
	ivs, draws := r.intervals(events, durationH)

	var runStart time.Time
	if r.Recorder != nil {
		runStart = time.Now()
	}
	ctx := obs.WithRecorder(context.Background(), r.Recorder)
	evals, err := par.Map(ctx, r.Parallelism, len(ivs), func(_ context.Context, i int) (intervalEval, error) {
		iv := ivs[i]
		out := intervalEval{delivered: 1}
		if len(iv.cut) > 0 {
			failed := r.Project(iv.cut)
			if len(failed) > 0 {
				restored, planned := r.plans[linkSetKey(failed)]
				out.unplanned = !planned
				if iv.restoring {
					// Inside the latency window the plan exists but the
					// optical layer hasn't finished applying it.
					restored = nil
				}
				out.delivered = ev.Delivered(&availability.ScenarioEval{Failed: failed, Restored: restored})
			}
		} else {
			out.delivered = ev.Delivered(&availability.ScenarioEval{})
		}
		return out, nil
	})
	if err != nil {
		// The evaluation function never fails and the context is never
		// cancelled; this branch is unreachable but kept explicit.
		panic(err)
	}

	rep := &Report{Worst: math.Inf(1)}
	for i, iv := range ivs {
		dt := iv.toH - iv.fromH
		e := evals[i]
		if e.unplanned {
			rep.UnplannedHours += dt
		}
		if iv.restoring {
			rep.RestoringHours += dt
		}
		rep.Delivered += e.delivered * dt
		if e.delivered >= 0.999 {
			rep.FullServiceFrac += dt
		}
		if e.delivered < rep.Worst {
			rep.Worst = e.delivered
		}
		rep.Intervals++
	}
	rep.Delivered /= durationH
	rep.FullServiceFrac /= durationH
	if math.IsInf(rep.Worst, 1) {
		rep.Worst = 1
	}
	rep.RestoreLatency = stats.Summarize(draws)
	if rec := r.Recorder; rec != nil {
		unplanned, restoring := 0, 0
		for i, e := range evals {
			if e.unplanned {
				unplanned++
			}
			if ivs[i].restoring {
				restoring++
			}
		}
		rec.Add("sim.intervals", int64(rep.Intervals))
		rec.Add("sim.unplanned_intervals", int64(unplanned))
		rec.Add("sim.restoring_intervals", int64(restoring))
		rec.SpanDone("sim.run", 0, runStart, time.Since(runStart))
	}
	if r.Ledger != nil {
		r.Ledger.Emit(ledger.Event{
			Kind: ledger.KindSimSummary, Scenario: -1, Mode: r.Label,
			Count: rep.Intervals, Fraction: rep.Delivered,
			FullService: rep.FullServiceFrac, RestoringH: rep.RestoringHours,
			Detail: fmt.Sprintf("unplanned_h=%.3f worst=%.4f", rep.UnplannedHours, rep.Worst),
		})
		if r.AttributeLoss {
			r.emitLossAttribution(ivs, evals, durationH)
		}
	}
	return rep
}

// cutLoss aggregates one distinct fiber-cut set's replay exposure.
type cutLoss struct {
	cut      []int
	hours    float64
	lossFrac float64 // time-weighted share of lost delivery over the horizon
}

// emitLossAttribution folds the evaluated intervals into per-cut
// time-weighted loss contributions and emits them as attribution events
// (Detail "sim_cut", Links = the cut fiber set). The fold runs after the
// parallel evaluation, in time order, and emission is sorted by loss
// descending (ties by cut key), so the event stream is deterministic at
// every worker count.
func (r *Runner) emitLossAttribution(ivs []interval, evals []intervalEval, durationH float64) {
	agg := map[string]*cutLoss{}
	var keys []string
	for i, iv := range ivs {
		if len(iv.cut) == 0 {
			continue
		}
		dt := iv.toH - iv.fromH
		key := linkSetKey(iv.cut)
		cl := agg[key]
		if cl == nil {
			cl = &cutLoss{cut: iv.cut}
			agg[key] = cl
			keys = append(keys, key)
		}
		cl.hours += dt
		cl.lossFrac += (1 - evals[i].delivered) * dt / durationH
	}
	sort.SliceStable(keys, func(a, b int) bool {
		ca, cb := agg[keys[a]], agg[keys[b]]
		if ca.lossFrac != cb.lossFrac {
			return ca.lossFrac > cb.lossFrac
		}
		return keys[a] < keys[b]
	})
	for _, key := range keys {
		cl := agg[key]
		r.Ledger.Emit(ledger.Event{
			Kind: ledger.KindAttribution, Scenario: -1, Mode: r.Label,
			Links: append([]int(nil), cl.cut...), DurSec: cl.hours * 3600,
			Fraction: cl.lossFrac, Detail: "sim_cut",
		})
	}
}
