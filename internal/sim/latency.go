package sim

import "math/rand"

// LatencyModel draws the restoration latency of one failure event: the time
// between a cut being detected and the precomputed restoration plan
// actually carrying traffic. The baseline replay assumes zero (restoration
// is instantaneous); the paper's §5 measurement says legacy amplifier
// reconfiguration takes ~17 minutes while ARROW's noise loading takes ~8 s,
// which is exactly the gap this seam exposes as an availability delta.
//
// failed is the projected failed-IP-link set of the cut (already non-empty:
// harmless cuts never draw). rng is the replay's dedicated latency stream;
// models must consume randomness only through it so replays stay
// deterministic at any worker count.
type LatencyModel interface {
	RestoreLatencySec(rng *rand.Rand, failed []int) float64
}

// ConstLatency is a fixed analytic restoration latency.
type ConstLatency struct{ Sec float64 }

// RestoreLatencySec implements LatencyModel.
func (c ConstLatency) RestoreLatencySec(*rand.Rand, []int) float64 { return c.Sec }

// EmpiricalLatency resamples measured restoration latencies — typically
// emu.LatencySamples output, coupling the availability replay to the
// optical emulator's device timings.
type EmpiricalLatency struct{ SamplesSec []float64 }

// RestoreLatencySec implements LatencyModel: a uniform draw from the
// sample set (0 s when empty, matching the no-model baseline).
func (e EmpiricalLatency) RestoreLatencySec(rng *rand.Rand, _ []int) float64 {
	if len(e.SamplesSec) == 0 {
		return 0
	}
	if rng == nil || len(e.SamplesSec) == 1 {
		return e.SamplesSec[0]
	}
	return e.SamplesSec[rng.Intn(len(e.SamplesSec))]
}
