package sim

import (
	"math"
	"testing"

	"github.com/arrow-te/arrow/internal/te"
	"github.com/arrow-te/arrow/internal/ticket"
)

func TestGenerateTimelineShape(t *testing.T) {
	events := GenerateTimeline(20, TimelineOptions{DurationH: 365 * 24, CutsPerMonth: 16, Seed: 1})
	if len(events) == 0 {
		t.Fatal("empty timeline")
	}
	cuts, repairs := 0, 0
	prev := 0.0
	downSet := map[int]bool{}
	for _, e := range events {
		if e.TimeH < prev {
			t.Fatal("events not sorted")
		}
		prev = e.TimeH
		if e.Up {
			repairs++
			if !downSet[e.Fiber] {
				t.Fatalf("repair of healthy fiber %d", e.Fiber)
			}
			delete(downSet, e.Fiber)
		} else {
			cuts++
			if downSet[e.Fiber] {
				t.Fatalf("double cut of fiber %d", e.Fiber)
			}
			downSet[e.Fiber] = true
		}
	}
	// ~16/month over 12 months = ~192 cuts (skips for already-down fibers
	// make it slightly fewer).
	if cuts < 120 || cuts > 260 {
		t.Fatalf("%d cuts over a year at 16/month", cuts)
	}
	if repairs > cuts {
		t.Fatalf("%d repairs for %d cuts", repairs, cuts)
	}
	// Determinism.
	again := GenerateTimeline(20, TimelineOptions{DurationH: 365 * 24, CutsPerMonth: 16, Seed: 1})
	if len(again) != len(events) || again[0] != events[0] {
		t.Fatal("timeline not deterministic")
	}
}

// simpleNet: one flow, two disjoint one-link tunnels; fiber i carries IP
// link i.
func simpleNet() (*te.Network, Projector) {
	n := &te.Network{
		LinkCap: []float64{100, 100},
		Flows:   []te.Flow{{Src: 0, Dst: 1, Demand: 150}},
		Tunnels: [][]te.Tunnel{{{Links: []int{0}}, {Links: []int{1}}}},
	}
	project := func(cut []int) []int { return append([]int(nil), cut...) }
	return n, project
}

func TestRunNoEventsFullService(t *testing.T) {
	n, project := simpleNet()
	al := &te.Allocation{B: []float64{150}, A: [][]float64{{75, 75}}}
	r := NewRunner(n, al, project, nil, nil)
	rep := r.Run(nil, 100)
	if rep.Delivered != 1 || rep.FullServiceFrac != 1 || rep.Worst != 1 {
		t.Fatalf("healthy replay %+v", rep)
	}
}

func TestRunTimeWeighting(t *testing.T) {
	n, project := simpleNet()
	al := &te.Allocation{B: []float64{150}, A: [][]float64{{75, 75}}}
	// Link 0 down from t=10 to t=60 (50 of 100 hours). During the outage,
	// tunnel 1 carries min(150, 100) -> delivered 2/3.
	events := []Event{{TimeH: 10, Fiber: 0, Up: false}, {TimeH: 60, Fiber: 0, Up: true}}
	scenarios := []te.FailureScenario{{FailedLinks: []int{0}}}
	r := NewRunner(n, al, project, scenarios, nil)
	rep := r.Run(events, 100)
	want := (50*1.0 + 50*(100.0/150)) / 100
	if math.Abs(rep.Delivered-want) > 1e-9 {
		t.Fatalf("delivered %g want %g", rep.Delivered, want)
	}
	if math.Abs(rep.FullServiceFrac-0.5) > 1e-9 {
		t.Fatalf("full-service %g", rep.FullServiceFrac)
	}
	if math.Abs(rep.Worst-100.0/150) > 1e-9 {
		t.Fatalf("worst %g", rep.Worst)
	}
	if rep.UnplannedHours != 0 {
		t.Fatalf("unplanned %g for a planned scenario", rep.UnplannedHours)
	}
}

func TestRunRestorationPlanApplied(t *testing.T) {
	n, project := simpleNet()
	al := &te.Allocation{B: []float64{150}, A: [][]float64{{75, 75}}}
	events := []Event{{TimeH: 0, Fiber: 0, Up: false}}
	scenarios := []te.FailureScenario{{FailedLinks: []int{0}}}
	restored := []map[int]float64{{0: 50}}
	r := NewRunner(n, al, project, scenarios, restored)
	rep := r.Run(events, 10)
	// Tunnel 0 revived at 50: delivered (50+75)/150.
	want := (50 + 75.0) / 150
	if math.Abs(rep.Delivered-want) > 1e-9 {
		t.Fatalf("delivered %g want %g", rep.Delivered, want)
	}
}

func TestRunUnplannedScenarioCounted(t *testing.T) {
	n, project := simpleNet()
	al := &te.Allocation{B: []float64{150}, A: [][]float64{{75, 75}}}
	// Double failure was never planned.
	events := []Event{
		{TimeH: 0, Fiber: 0, Up: false},
		{TimeH: 2, Fiber: 1, Up: false},
		{TimeH: 6, Fiber: 1, Up: true},
	}
	scenarios := []te.FailureScenario{{FailedLinks: []int{0}}}
	r := NewRunner(n, al, project, scenarios, nil)
	rep := r.Run(events, 10)
	if math.Abs(rep.UnplannedHours-4) > 1e-9 {
		t.Fatalf("unplanned %g want 4", rep.UnplannedHours)
	}
	if rep.Worst != 0 { // total outage during the double failure
		t.Fatalf("worst %g", rep.Worst)
	}
}

// TestArrowOutlastsBaselineOnTimeline wires a real ARROW solve into the
// replay: with restoration, the delivered-time integral must dominate the
// same allocation replayed without its restoration plans.
func TestArrowOutlastsBaselineOnTimeline(t *testing.T) {
	n := &te.Network{
		LinkCap: []float64{100, 100},
		Flows:   []te.Flow{{Src: 0, Dst: 1, Demand: 160}},
		Tunnels: [][]te.Tunnel{{{Links: []int{0}}, {Links: []int{1}}}},
	}
	scs := []te.RestorableScenario{
		{
			FailureScenario: te.FailureScenario{Prob: 0.01, FailedLinks: []int{0}},
			TicketLinks:     []int{0},
			Tickets:         []ticket.Ticket{{Waves: []int{7}, Gbps: []float64{70}}},
		},
		{
			FailureScenario: te.FailureScenario{Prob: 0.01, FailedLinks: []int{1}},
			TicketLinks:     []int{1},
			Tickets:         []ticket.Ticket{{Waves: []int{7}, Gbps: []float64{70}}},
		},
	}
	al, err := te.Arrow(n, scs, nil)
	if err != nil {
		t.Fatal(err)
	}
	project := func(cut []int) []int { return append([]int(nil), cut...) }
	plain := []te.FailureScenario{{FailedLinks: []int{0}}, {FailedLinks: []int{1}}}
	events := GenerateTimeline(2, TimelineOptions{DurationH: 2000, CutsPerMonth: 30, Seed: 5})

	withPlans := NewRunner(n, al, project, plain, al.RestoredGbps)
	withoutPlans := NewRunner(n, al, project, plain, nil)
	a := withPlans.Run(events, 2000)
	b := withoutPlans.Run(events, 2000)
	if a.Delivered < b.Delivered {
		t.Fatalf("restoration made things worse: %g vs %g", a.Delivered, b.Delivered)
	}
	if a.Delivered <= b.Delivered && a.Worst <= b.Worst && a.Delivered == b.Delivered {
		t.Fatalf("restoration had no effect on a lossy timeline: %+v vs %+v", a, b)
	}
}
