package sim

import (
	"math"
	"math/rand"
	"testing"

	"github.com/arrow-te/arrow/internal/te"
)

// latencyRunner builds a runner whose single planned scenario restores
// link 0 to full capacity, so delivery is 1.0 once the plan is in effect
// and 2/3 while it is not.
func latencyRunner(model LatencyModel) *Runner {
	n, project := simpleNet()
	al := &te.Allocation{B: []float64{150}, A: [][]float64{{75, 75}}}
	scenarios := []te.FailureScenario{{FailedLinks: []int{0}}}
	restored := []map[int]float64{{0: 100}}
	r := NewRunner(n, al, project, scenarios, restored)
	r.Latency = model
	return r
}

// TestLatencyWindowDefersRestoration pins the split semantics with an
// analytic one-hour latency: a 50-hour outage spends exactly one hour
// unrestored, and the report accounts for the window.
func TestLatencyWindowDefersRestoration(t *testing.T) {
	r := latencyRunner(ConstLatency{Sec: 3600})
	events := []Event{{TimeH: 10, Fiber: 0, Up: false}, {TimeH: 60, Fiber: 0, Up: true}}
	rep := r.Run(events, 100)

	if math.Abs(rep.RestoringHours-1) > 1e-9 {
		t.Fatalf("restoring %g h, want 1", rep.RestoringHours)
	}
	// [10,11): 100/150 without restoration; [11,60): fully restored.
	want := (99 + 100.0/150) / 100
	if math.Abs(rep.Delivered-want) > 1e-9 {
		t.Fatalf("delivered %g want %g", rep.Delivered, want)
	}
	if math.Abs(rep.FullServiceFrac-0.99) > 1e-9 {
		t.Fatalf("full service %g want 0.99", rep.FullServiceFrac)
	}
	if rep.RestoreLatency.Count != 1 || rep.RestoreLatency.P50 != 3600 {
		t.Fatalf("latency summary %+v", rep.RestoreLatency)
	}

	// The same replay without a latency model never leaves full service.
	r0 := latencyRunner(nil)
	rep0 := r0.Run(events, 100)
	if rep0.FullServiceFrac != 1 || rep0.RestoringHours != 0 || rep0.RestoreLatency.Count != 0 {
		t.Fatalf("zero-latency replay %+v", rep0)
	}
}

// TestLegacyLatencyCostsAvailability is the observatory's sim-side
// acceptance invariant: on the same timeline and seed, a legacy-scale
// restoration latency yields strictly less time at full service than a
// noise-loading-scale one.
func TestLegacyLatencyCostsAvailability(t *testing.T) {
	events := GenerateTimeline(2, TimelineOptions{DurationH: 5000, CutsPerMonth: 40, Seed: 3})

	legacy := latencyRunner(ConstLatency{Sec: 1021})
	noise := latencyRunner(ConstLatency{Sec: 8})
	lrep := legacy.Run(events, 5000)
	nrep := noise.Run(events, 5000)

	if lrep.FullServiceFrac >= nrep.FullServiceFrac {
		t.Fatalf("legacy full service %g not below noise loading %g",
			lrep.FullServiceFrac, nrep.FullServiceFrac)
	}
	if lrep.RestoringHours <= nrep.RestoringHours {
		t.Fatalf("legacy restoring %g h not above noise loading %g h",
			lrep.RestoringHours, nrep.RestoringHours)
	}
	if lrep.RestoreLatency.Count != nrep.RestoreLatency.Count {
		t.Fatalf("draw counts differ: %d vs %d",
			lrep.RestoreLatency.Count, nrep.RestoreLatency.Count)
	}
}

// TestLatencyReportScheduleIndependent pins determinism: latency draws live
// in the sequential sweep, so the report is bit-identical at any worker
// count and across repeated runs.
func TestLatencyReportScheduleIndependent(t *testing.T) {
	events := GenerateTimeline(2, TimelineOptions{DurationH: 3000, CutsPerMonth: 30, Seed: 7})
	base := func(par int) *Report {
		r := latencyRunner(EmpiricalLatency{SamplesSec: []float64{8, 500, 1021}})
		r.LatencySeed = 11
		r.Parallelism = par
		return r.Run(events, 3000)
	}
	want := base(1)
	if want.RestoreLatency.Count == 0 || want.RestoringHours == 0 {
		t.Fatalf("timeline exercised no latency windows: %+v", want)
	}
	for _, par := range []int{2, 4, 8} {
		if got := base(par); *got != *want {
			t.Fatalf("report differs at parallelism %d:\n got %+v\nwant %+v", par, got, want)
		}
	}
}

// TestEmpiricalLatencyDraws covers the sample-set model edge cases.
func TestEmpiricalLatencyDraws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := (EmpiricalLatency{}).RestoreLatencySec(rng, []int{0}); got != 0 {
		t.Fatalf("empty sample set drew %g", got)
	}
	one := EmpiricalLatency{SamplesSec: []float64{42}}
	if got := one.RestoreLatencySec(nil, []int{0}); got != 42 {
		t.Fatalf("single sample drew %g", got)
	}
	many := EmpiricalLatency{SamplesSec: []float64{1, 2, 3}}
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		seen[many.RestoreLatencySec(rng, []int{0})] = true
	}
	if len(seen) != 3 {
		t.Fatalf("uniform resampling hit %d of 3 samples", len(seen))
	}
}

// TestHarmlessCutDrawsNoLatency: cuts that fail no IP links must not open
// restoration windows or consume latency randomness.
func TestHarmlessCutDrawsNoLatency(t *testing.T) {
	n, _ := simpleNet()
	al := &te.Allocation{B: []float64{150}, A: [][]float64{{75, 75}}}
	// Projector: fiber 1 is dark, cutting it fails nothing.
	project := func(cut []int) []int {
		var out []int
		for _, f := range cut {
			if f == 0 {
				out = append(out, 0)
			}
		}
		return out
	}
	scenarios := []te.FailureScenario{{FailedLinks: []int{0}}}
	restored := []map[int]float64{{0: 100}}
	r := NewRunner(n, al, project, scenarios, restored)
	r.Latency = ConstLatency{Sec: 7200}
	events := []Event{{TimeH: 5, Fiber: 1, Up: false}, {TimeH: 50, Fiber: 1, Up: true}}
	rep := r.Run(events, 100)
	if rep.RestoreLatency.Count != 0 || rep.RestoringHours != 0 {
		t.Fatalf("harmless cut opened a latency window: %+v", rep)
	}
	if rep.Delivered != 1 {
		t.Fatalf("harmless cut degraded delivery to %g", rep.Delivered)
	}
}
