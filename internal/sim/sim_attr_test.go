package sim

import (
	"math"
	"reflect"
	"testing"

	"github.com/arrow-te/arrow/internal/ledger"
	"github.com/arrow-te/arrow/internal/te"
)

// TestAttributeLossPerCut checks the replay's loss-attribution events: one
// event per distinct cut set, loss shares that sum to the replay's total
// loss, an identical Report with the switch on or off, and a stream that is
// byte-identical at any worker count.
func TestAttributeLossPerCut(t *testing.T) {
	n, project := simpleNet()
	al := &te.Allocation{B: []float64{150}, A: [][]float64{{75, 75}}}
	// Two outage windows of the same cut {0} (10h+10h, delivered 2/3) and
	// one of cut {1} (5h, same loss by symmetry), over 100 h.
	events := []Event{
		{TimeH: 10, Fiber: 0, Up: false}, {TimeH: 20, Fiber: 0, Up: true},
		{TimeH: 40, Fiber: 0, Up: false}, {TimeH: 50, Fiber: 0, Up: true},
		{TimeH: 70, Fiber: 1, Up: false}, {TimeH: 75, Fiber: 1, Up: true},
	}
	scenarios := []te.FailureScenario{{FailedLinks: []int{0}}, {FailedLinks: []int{1}}}

	run := func(workers int, attrLoss bool, led *ledger.Ledger) *Report {
		r := NewRunner(n, al, project, scenarios, nil)
		r.Parallelism = workers
		r.Ledger = led
		r.AttributeLoss = attrLoss
		return r.Run(events, 100)
	}

	base := run(1, false, nil)
	led := ledger.New()
	rep := run(1, true, led)
	if *rep != *base {
		t.Fatalf("AttributeLoss changed the report: %+v vs %+v", rep, base)
	}

	var cuts []ledger.Event
	for _, ev := range led.Events() {
		if ev.Kind == ledger.KindAttribution {
			if ev.Detail != "sim_cut" {
				t.Fatalf("unexpected attribution detail %q", ev.Detail)
			}
			cuts = append(cuts, ev)
		}
	}
	if len(cuts) != 2 {
		t.Fatalf("%d sim_cut events, want 2 (one per distinct cut set)", len(cuts))
	}
	// Loss shares must sum to the replay's total lost delivery.
	total := 0.0
	for _, ev := range cuts {
		total += ev.Fraction
	}
	if want := 1 - rep.Delivered; math.Abs(total-want) > 1e-9 {
		t.Fatalf("cut loss shares sum to %g, total loss %g", total, want)
	}
	// Sorted by loss descending: cut {0} was down 20 h, cut {1} only 5 h.
	if !reflect.DeepEqual(cuts[0].Links, []int{0}) || math.Abs(cuts[0].DurSec-20*3600) > 1e-6 {
		t.Fatalf("first event %+v, want cut [0] over 20h", cuts[0])
	}
	if !reflect.DeepEqual(cuts[1].Links, []int{1}) || math.Abs(cuts[1].DurSec-5*3600) > 1e-6 {
		t.Fatalf("second event %+v, want cut [1] over 5h", cuts[1])
	}

	// The emission happens after the parallel evaluation, in a sorted
	// order, so the stream is identical at any worker count.
	ledPar := ledger.New()
	repPar := run(4, true, ledPar)
	if *repPar != *rep {
		t.Fatal("report differs across worker counts")
	}
	seq, par := led.Events(), ledPar.Events()
	if len(seq) != len(par) {
		t.Fatalf("%d events sequential vs %d parallel", len(seq), len(par))
	}
	for i := range seq {
		seq[i].Seq, par[i].Seq = 0, 0
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Fatalf("event %d differs across worker counts:\n%+v\n%+v", i, seq[i], par[i])
		}
	}
}
