package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/arrow-te/arrow/internal/obs"
)

// TestEnumerateCorrelatedMatchesEnumerate is the byte-identity contract:
// with no groups, K=2 and no mass/count bounds, the best-first enumerator
// must reproduce Enumerate exactly — same scenarios, same order, bit-equal
// probabilities, healthy and residual mass — for Weibull-realistic inputs.
func TestEnumerateCorrelatedMatchesEnumerate(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		probs := FailureProbabilities(40, DefaultShape, DefaultScale, seed)
		for _, cutoff := range []float64{0, 1e-6, 1e-4, 1e-3} {
			want := Enumerate(probs, cutoff)
			got := EnumerateCorrelated(probs, nil, EnumOptions{K: 2, Cutoff: cutoff})
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d cutoff %g: best-first enumeration diverged from Enumerate\nwant %d scenarios, got %d",
					seed, cutoff, len(want.Scenarios), len(got.Scenarios))
			}
		}
	}
}

// TestEnumerateCorrelatedProperties: mass accumulation is monotone
// nondecreasing along the emitted order, every scenario respects the
// cutoff, the order is nonincreasing in probability, and no cut set is
// emitted twice — across random probabilities, ks and random SRLGs.
func TestEnumerateCorrelatedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(20)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64() * 0.2
		}
		var groups []Group
		for g := rng.Intn(4); g > 0; g-- {
			size := 2 + rng.Intn(3)
			fibers := make([]int, size)
			for i := range fibers {
				fibers[i] = rng.Intn(n)
			}
			groups = append(groups, Group{
				Name: fmt.Sprintf("g%d", g), Fibers: fibers, Prob: rng.Float64() * 0.05,
			})
		}
		k := 1 + rng.Intn(4)
		cutoff := math.Pow(10, -1-6*rng.Float64())
		s := EnumerateCorrelated(probs, groups, EnumOptions{K: k, Cutoff: cutoff})

		covered := s.HealthyProb
		seen := map[string]bool{}
		for i, sc := range s.Scenarios {
			if sc.Prob < cutoff {
				t.Fatalf("trial %d: scenario %d below cutoff: %g < %g", trial, i, sc.Prob, cutoff)
			}
			if len(sc.Cut) == 0 {
				t.Fatalf("trial %d: empty cut emitted", trial)
			}
			key := fmt.Sprint(sc.Cut)
			if seen[key] {
				t.Fatalf("trial %d: cut %v emitted twice", trial, sc.Cut)
			}
			seen[key] = true
			prev := covered
			covered += sc.Prob
			if covered < prev {
				t.Fatalf("trial %d: covered mass decreased", trial)
			}
		}
		if covered > 1+1e-9 {
			t.Fatalf("trial %d: covered mass %g exceeds 1", trial, covered)
		}
		if math.Abs((1-covered)-s.ResidualProb) > 1e-9 && s.ResidualProb != 0 {
			t.Fatalf("trial %d: residual %g want %g", trial, s.ResidualProb, 1-covered)
		}
		// First-emission probabilities are nonincreasing. Merged mass can
		// only ever ADD to an earlier (already larger) entry, so the emitted
		// order stays nonincreasing in first-discovery probability; verify
		// the weaker invariant that holds post-merge: no scenario exceeds
		// the one before it by more than its merged share — in practice,
		// with merge targets strictly earlier, Prob[i] <= Prob[i-1] + merges
		// and the raw sequence without groups is exactly sorted.
		if len(groups) == 0 {
			for i := 1; i < len(s.Scenarios); i++ {
				if s.Scenarios[i].Prob > s.Scenarios[i-1].Prob {
					t.Fatalf("trial %d: scenarios out of order at %d", trial, i)
				}
			}
		}
	}
}

// TestEnumerateCorrelatedTargetMass: enumeration stops as soon as covered
// mass reaches the target, and the emitted prefix is exactly the most
// probable scenarios of the unbounded enumeration.
func TestEnumerateCorrelatedTargetMass(t *testing.T) {
	probs := FailureProbabilities(30, DefaultShape, DefaultScale, 3)
	full := EnumerateCorrelated(probs, nil, EnumOptions{K: 3, Cutoff: 1e-9})
	// Target the mass covered by the first half of the unbounded emission:
	// the bounded run must stop exactly there.
	mid := len(full.Scenarios) / 2
	target := full.HealthyProb
	for _, sc := range full.Scenarios[:mid+1] {
		target += sc.Prob
	}
	capped := EnumerateCorrelated(probs, nil, EnumOptions{K: 3, Cutoff: 1e-9, TargetMass: target})
	if len(capped.Scenarios) != mid+1 {
		t.Fatalf("target mass kept %d scenarios, want %d", len(capped.Scenarios), mid+1)
	}
	covered := capped.HealthyProb
	for _, sc := range capped.Scenarios {
		covered += sc.Prob
	}
	if covered < target {
		t.Fatalf("covered %g below target %g", covered, target)
	}
	// Prefix property: the capped set is a prefix of the full emission.
	for i, sc := range capped.Scenarios {
		if !reflect.DeepEqual(sc.Cut, full.Scenarios[i].Cut) {
			t.Fatalf("capped scenario %d is %v, full has %v", i, sc.Cut, full.Scenarios[i].Cut)
		}
	}
}

// TestEnumerateCorrelatedMaxEnumerated: the cap bounds DISTINCT cut sets
// and the emitted prefix matches the unbounded order.
func TestEnumerateCorrelatedMaxEnumerated(t *testing.T) {
	probs := FailureProbabilities(25, DefaultShape, DefaultScale, 4)
	full := EnumerateCorrelated(probs, nil, EnumOptions{K: 3, Cutoff: 0})
	capped := EnumerateCorrelated(probs, nil, EnumOptions{K: 3, Cutoff: 0, MaxEnumerated: 50})
	if len(capped.Scenarios) != 50 {
		t.Fatalf("cap produced %d scenarios", len(capped.Scenarios))
	}
	for i, sc := range capped.Scenarios {
		if !reflect.DeepEqual(sc.Cut, full.Scenarios[i].Cut) {
			t.Fatalf("capped scenario %d diverges from unbounded order", i)
		}
	}
}

// TestEnumerateCorrelatedEdgeCases covers k=0, k>n, an empty element set
// and overlapping SRLGs (merged mass, no duplicate cut sets).
func TestEnumerateCorrelatedEdgeCases(t *testing.T) {
	probs := []float64{0.1, 0.05, 0.2}

	// k=0: no cut scenarios, residual is everything but healthy.
	s := EnumerateCorrelated(probs, nil, EnumOptions{K: 0})
	if len(s.Scenarios) != 0 {
		t.Fatalf("k=0 emitted %d scenarios", len(s.Scenarios))
	}
	if math.Abs(s.ResidualProb-(1-s.HealthyProb)) > 1e-15 {
		t.Fatalf("k=0 residual %g", s.ResidualProb)
	}

	// k > n: clamped to the element count; full lattice enumerated.
	s = EnumerateCorrelated(probs, nil, EnumOptions{K: 99, Cutoff: 0})
	if want := 7; len(s.Scenarios) != want { // 2^3 - 1 subsets
		t.Fatalf("k>n emitted %d scenarios, want %d", len(s.Scenarios), want)
	}
	total := s.HealthyProb
	for _, sc := range s.Scenarios {
		total += sc.Prob
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("full lattice mass %g != 1", total)
	}
	if s.ResidualProb != 0 {
		t.Fatalf("full lattice residual %g", s.ResidualProb)
	}

	// No fibers at all.
	s = EnumerateCorrelated(nil, nil, EnumOptions{K: 2})
	if len(s.Scenarios) != 0 || s.HealthyProb != 1 {
		t.Fatal("empty element set mishandled")
	}

	// Overlapping SRLGs: group {0,1} overlaps group {1,2} and fiber 1.
	groups := []Group{
		{Name: "a", Fibers: []int{0, 1}, Prob: 0.01},
		{Name: "b", Fibers: []int{1, 2}, Prob: 0.02},
	}
	s = EnumerateCorrelated(probs, groups, EnumOptions{K: 2, Cutoff: 0})
	seen := map[string]bool{}
	var cut01 float64
	for _, sc := range s.Scenarios {
		key := fmt.Sprint(sc.Cut)
		if seen[key] {
			t.Fatalf("duplicate cut %v with overlapping groups", sc.Cut)
		}
		seen[key] = true
		if key == fmt.Sprint([]int{0, 1}) {
			cut01 = sc.Prob
		}
	}
	// Cut {0,1} collects every element subset of size <= 2 whose fiber
	// union is {0,1}: {group a}, {fiber0, fiber1}, {group a, fiber0} and
	// {group a, fiber1}.
	healthy := s.HealthyProb
	oddsA := 0.01 / 0.99
	odds0 := 0.1 / 0.9
	odds1 := 0.05 / 0.95
	want := healthy * (oddsA + odds0*odds1 + oddsA*odds0 + oddsA*odds1)
	if math.Abs(cut01-want) > 1e-12 {
		t.Fatalf("merged mass for {0,1}: %g want %g", cut01, want)
	}
}

// TestEnumerateCorrelatedCounters: scenario.enumerated counts emitted cut
// sets; scenario.pruned counts frontier states discarded by the cutoff.
func TestEnumerateCorrelatedCounters(t *testing.T) {
	probs := FailureProbabilities(20, DefaultShape, DefaultScale, 9)
	reg := obs.NewRegistry()
	s := EnumerateCorrelated(probs, nil, EnumOptions{K: 2, Cutoff: 1e-4, Recorder: reg})
	if got := reg.Counter("scenario.enumerated"); got != int64(len(s.Scenarios)) {
		t.Fatalf("scenario.enumerated = %d, want %d", got, len(s.Scenarios))
	}
	if reg.Counter("scenario.pruned") == 0 {
		t.Fatal("cutoff enumeration pruned nothing")
	}
	// Recorder on/off must not change the result.
	off := EnumerateCorrelated(probs, nil, EnumOptions{K: 2, Cutoff: 1e-4})
	if !reflect.DeepEqual(s, off) {
		t.Fatal("recorder changed the enumeration")
	}
}

// TestEnumerateAllKGroups: SRLG expansions come first and interior fiber
// combinations are skipped; disjoint combinations survive.
func TestEnumerateAllKGroups(t *testing.T) {
	groups := []Group{{Name: "conduit", Fibers: []int{0, 1, 2}, Prob: 0.01}}
	out := EnumerateAllKGroups(4, 2, groups)
	if !reflect.DeepEqual(out[0].Cut, []int{0, 1, 2}) {
		t.Fatalf("first scenario is %v, want the SRLG expansion", out[0].Cut)
	}
	for _, sc := range out[1:] {
		inside := true
		for _, f := range sc.Cut {
			if f > 2 {
				inside = false
			}
		}
		if inside && len(sc.Cut) >= 1 && allIn(sc.Cut, 2) {
			t.Fatalf("interior combination %v of the SRLG survived", sc.Cut)
		}
	}
	// Without groups, identical to EnumerateAllK.
	if !reflect.DeepEqual(EnumerateAllKGroups(4, 2, nil), EnumerateAllK(4, 2)) {
		t.Fatal("no-group EnumerateAllKGroups diverged from EnumerateAllK")
	}
	// Count: 1 expansion + all 1..2-subsets of {0..3} minus subsets of
	// {0,1,2} (3 singles + 3 pairs): 1 + (4+6) - 6 = 5.
	if len(out) != 5 {
		t.Fatalf("got %d scenarios, want 5: %v", len(out), out)
	}
}

func allIn(cut []int, max int) bool {
	for _, f := range cut {
		if f > max {
			return false
		}
	}
	return true
}

// TestWeightedGroups: group expansions priced with the group odds, other
// cuts as independent fibers.
func TestWeightedGroups(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.05}
	groups := []Group{{Name: "g", Fibers: []int{0, 1}, Prob: 0.01}}
	s := EnumerateCorrelated(probs, groups, EnumOptions{K: 1, Cutoff: 0})
	w := s.WeightedGroups([]Scenario{{Cut: []int{0, 1}}, {Cut: []int{2}}}, groups)
	if math.Abs(w[0].Prob-s.HealthyProb*(0.01/0.99)) > 1e-15 {
		t.Fatalf("group expansion priced %g", w[0].Prob)
	}
	if math.Abs(w[1].Prob-s.HealthyProb*(0.05/0.95)) > 1e-15 {
		t.Fatalf("single priced %g", w[1].Prob)
	}
}
