package scenario

import (
	"math"
	"testing"
)

func TestFailureProbabilitiesDeterministic(t *testing.T) {
	a := FailureProbabilities(50, DefaultShape, DefaultScale, 1)
	b := FailureProbabilities(50, DefaultShape, DefaultScale, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different probabilities")
		}
		if a[i] < 0 || a[i] > 0.5 {
			t.Fatalf("probability %g out of range", a[i])
		}
	}
	c := FailureProbabilities(50, DefaultShape, DefaultScale, 2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical probabilities")
	}
}

func TestEnumerateProbabilitiesConsistent(t *testing.T) {
	p := []float64{0.1, 0.05, 0.2}
	s := Enumerate(p, 0)
	// With cutoff 0 we get all singles and pairs: 3 + 3 = 6 scenarios.
	if len(s.Scenarios) != 6 {
		t.Fatalf("%d scenarios", len(s.Scenarios))
	}
	// Healthy probability.
	wantHealthy := 0.9 * 0.95 * 0.8
	if math.Abs(s.HealthyProb-wantHealthy) > 1e-12 {
		t.Fatalf("healthy %g want %g", s.HealthyProb, wantHealthy)
	}
	// Check one exact scenario probability: only fiber 0 fails.
	var p0 float64
	for _, sc := range s.Scenarios {
		if len(sc.Cut) == 1 && sc.Cut[0] == 0 {
			p0 = sc.Prob
		}
	}
	want := 0.1 * 0.95 * 0.8
	if math.Abs(p0-want) > 1e-12 {
		t.Fatalf("P(only 0) = %g want %g", p0, want)
	}
	// Residual = 1 - healthy - enumerated = P(triple failure).
	wantResidual := 0.1 * 0.05 * 0.2
	if math.Abs(s.ResidualProb-wantResidual) > 1e-12 {
		t.Fatalf("residual %g want %g", s.ResidualProb, wantResidual)
	}
	// Sorted by descending probability.
	for i := 1; i < len(s.Scenarios); i++ {
		if s.Scenarios[i].Prob > s.Scenarios[i-1].Prob+1e-15 {
			t.Fatal("scenarios not sorted")
		}
	}
}

func TestEnumerateCutoffFilters(t *testing.T) {
	p := []float64{0.1, 0.001, 0.2}
	all := Enumerate(p, 0)
	cut := Enumerate(p, 0.01)
	if len(cut.Scenarios) >= len(all.Scenarios) {
		t.Fatal("cutoff removed nothing")
	}
	for _, sc := range cut.Scenarios {
		if sc.Prob < 0.01 {
			t.Fatalf("scenario below cutoff: %+v", sc)
		}
	}
}

func TestEnumerateAllK(t *testing.T) {
	one := EnumerateAllK(5, 1)
	if len(one) != 5 {
		t.Fatalf("k=1: %d scenarios", len(one))
	}
	two := EnumerateAllK(5, 2)
	if len(two) != 5+10 {
		t.Fatalf("k=2: %d scenarios", len(two))
	}
	seen := map[string]bool{}
	for _, sc := range two {
		key := ""
		for _, c := range sc.Cut {
			key += string(rune('a' + c))
		}
		if seen[key] {
			t.Fatalf("duplicate scenario %v", sc.Cut)
		}
		seen[key] = true
		if len(sc.Cut) == 0 || len(sc.Cut) > 2 {
			t.Fatalf("bad size %v", sc.Cut)
		}
	}
}

func TestWeighted(t *testing.T) {
	p := []float64{0.1, 0.2}
	s := Enumerate(p, 0)
	w := s.Weighted(EnumerateAllK(2, 2))
	total := s.HealthyProb
	for _, sc := range w {
		total += sc.Prob
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("probabilities sum to %g", total)
	}
}
