// Package scenario generates the probabilistic fiber-cut failure scenarios
// used by ARROW's restoration-aware TE and by the TeaVaR baseline.
//
// Following §6 of the paper (which follows TeaVaR's methodology), each
// fiber's failure probability is drawn from a Weibull distribution
// (shape 0.8, scale 0.02); Enumerate keeps all single and double fiber cuts
// whose joint probability exceeds a per-topology cutoff.
//
// # Probability model for correlated cuts
//
// EnumerateCorrelated generalises this to k simultaneous failures with
// shared-risk link groups (SRLGs). The failure ELEMENTS are the n individual
// fibers (marginal probability p_i, from the Weibull draw) plus the m SRLGs
// (conduit-cut probability q_g), all mutually independent: a conduit cut is
// a separate physical event — a backhoe through the duct — that takes every
// member fiber down at once, on top of whatever the fibers do individually.
// A failure scenario is a subset S of elements; its exact probability is
//
//	P(exactly S) = prod_{e in S} p_e * prod_{e not in S} (1 - p_e)
//	             = healthy * prod_{e in S} p_e/(1-p_e)
//
// where healthy is the all-elements-up probability. The scenario's CUT SET
// is the union of member fibers over S (an SRLG element expands to all its
// fibers). Distinct element subsets can induce the same cut set — an SRLG
// expansion overlapping a member fiber's individual failure — and their
// masses are MERGED onto one emitted scenario, so no cut set is
// double-counted. The same rule motivates the EnumerateAllKGroups subset
// skip: fiber combinations interior to an SRLG expansion are not distinct
// physical events and carry no separate mass.
//
// Element probabilities are assumed < 0.5 (odds < 1); FailureProbabilities
// clamps its draws to 0.1 and the named topologies' conduit probabilities
// sit well below that. The best-first enumeration order and its pruning
// soundness rely on this: with odds < 1, adding an element never increases
// a scenario's probability.
package scenario

import (
	"math/rand"
	"sort"

	"github.com/arrow-te/arrow/internal/stats"
)

// Default Weibull parameters from §6 of the paper.
const (
	DefaultShape = 0.8
	DefaultScale = 0.02
)

// Scenario is one failure scenario q: a set of cut fibers and the
// probability of exactly this set failing (all others healthy).
type Scenario struct {
	Cut  []int
	Prob float64
}

// Set is an ordered collection of failure scenarios for one topology.
type Set struct {
	// FailProb[i] is fiber i's marginal failure probability.
	FailProb []float64
	// Scenarios are the retained cut scenarios, most probable first.
	Scenarios []Scenario
	// HealthyProb is the probability that no fiber fails.
	HealthyProb float64
	// ResidualProb is the probability mass of scenarios below the cutoff
	// (not enumerated). Availability computations count it as loss-free for
	// none: callers decide how to attribute it.
	ResidualProb float64
}

// FailureProbabilities samples a Weibull failure probability for each of n
// fibers, deterministically from seed. Values are clamped to [0, 0.1]: the
// Weibull(0.8, 0.02) tail occasionally produces per-epoch failure odds that
// would dominate the scenario set, which no production fiber exhibits.
func FailureProbabilities(n int, shape, scale float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		p := stats.Weibull(rng, shape, scale)
		if p > 0.1 {
			p = 0.1
		}
		out[i] = p
	}
	return out
}

// Enumerate builds the scenario set for the given per-fiber failure
// probabilities: all single cuts and double cuts with joint probability
// above cutoff, sorted by descending probability.
//
// Scenario probabilities are exact independent-failure probabilities:
// P(exactly S fails) = prod_{i in S} p_i * prod_{j not in S} (1 - p_j).
func Enumerate(failProb []float64, cutoff float64) *Set {
	n := len(failProb)
	healthy := 1.0
	for _, p := range failProb {
		healthy *= 1 - p
	}
	s := &Set{FailProb: append([]float64(nil), failProb...), HealthyProb: healthy}

	// P(exactly {i}) = healthy * p_i / (1-p_i); same trick for pairs.
	odds := make([]float64, n)
	for i, p := range failProb {
		if p >= 1 {
			odds[i] = 1e18
		} else {
			odds[i] = p / (1 - p)
		}
	}
	for i := 0; i < n; i++ {
		if pr := healthy * odds[i]; pr >= cutoff {
			s.Scenarios = append(s.Scenarios, Scenario{Cut: []int{i}, Prob: pr})
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pr := healthy * odds[i] * odds[j]; pr >= cutoff {
				s.Scenarios = append(s.Scenarios, Scenario{Cut: []int{i, j}, Prob: pr})
			}
		}
	}
	sort.SliceStable(s.Scenarios, func(a, b int) bool { return s.Scenarios[a].Prob > s.Scenarios[b].Prob })

	covered := healthy
	for _, sc := range s.Scenarios {
		covered += sc.Prob
	}
	s.ResidualProb = 1 - covered
	if s.ResidualProb < 0 {
		s.ResidualProb = 0
	}
	return s
}

// EnumerateAllK returns every scenario with exactly 1..k cut fibers,
// ignoring probabilities (used by the FFC-k baseline, which provides
// absolute guarantees for up to k simultaneous cuts).
func EnumerateAllK(nFibers, k int) []Scenario {
	var out []Scenario
	var cur []int
	var rec func(start, left int)
	rec = func(start, left int) {
		if len(cur) > 0 {
			out = append(out, Scenario{Cut: append([]int(nil), cur...)})
		}
		if left == 0 {
			return
		}
		for i := start; i < nFibers; i++ {
			cur = append(cur, i)
			rec(i+1, left-1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, k)
	// Deduplicate: rec emits prefixes, producing each subset exactly once.
	return out
}

// Weighted returns scenarios annotated with probabilities from the set's
// fail probabilities (for scenarios produced by EnumerateAllK).
func (s *Set) Weighted(scs []Scenario) []Scenario {
	out := make([]Scenario, len(scs))
	for i, sc := range scs {
		pr := s.HealthyProb
		for _, f := range sc.Cut {
			p := s.FailProb[f]
			pr *= p / (1 - p)
		}
		out[i] = Scenario{Cut: sc.Cut, Prob: pr}
	}
	return out
}
