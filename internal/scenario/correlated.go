package scenario

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/arrow-te/arrow/internal/obs"
)

// Group is one shared-risk link group (SRLG): a named set of fibers that
// share a physical conduit or WDM shelf and therefore fail TOGETHER with
// probability Prob, independently of the per-fiber marginals. See the
// package comment for the full correlated-failure probability model.
type Group struct {
	Name   string
	Fibers []int
	// Prob is the probability that the shared conduit is cut in an epoch,
	// taking every member fiber down at once.
	Prob float64
}

// EnumOptions tunes EnumerateCorrelated.
type EnumOptions struct {
	// K is the maximum number of simultaneously failed ELEMENTS (individual
	// fibers and SRLGs both count as one element; an SRLG element expands to
	// all its member fibers in the cut set). K <= 0 enumerates nothing: the
	// set holds only the healthy mass. K above the element count is clamped.
	K int
	// Cutoff drops scenarios with probability < Cutoff, exactly like
	// Enumerate's cutoff. Because enumeration is best-first and element
	// probabilities are < 0.5 (see the package comment), the first candidate
	// below the cutoff certifies that every unexplored candidate is below it
	// too.
	Cutoff float64
	// TargetMass, when > 0, stops enumeration once the covered probability
	// mass (healthy state plus enumerated scenarios) reaches it — e.g. 0.9999
	// keeps exactly the most probable scenarios explaining 99.99% of the
	// distribution, regardless of how many that takes.
	TargetMass float64
	// MaxEnumerated, when > 0, caps the number of DISTINCT cut sets emitted.
	// Element subsets that merge into an already-emitted cut set (SRLG
	// overlaps) refine its probability without counting against the cap.
	MaxEnumerated int
	// Recorder receives the scenario.enumerated / scenario.pruned counters.
	// Nil costs nothing and never changes the result.
	Recorder obs.Recorder
}

// candidate is one frontier state of the best-first search: a subset of the
// odds-sorted element order, represented by its positions (increasing; the
// last position drives expansion) plus its canonical element-index tuple and
// exact probability.
type candidate struct {
	positions []int // indices into the odds-descending element order
	elems     []int // the same elements as original indices, ascending
	prob      float64
}

// candHeap orders candidates by descending probability; exact ties break
// toward smaller cardinality, then lexicographically smaller element tuples
// — the same order Enumerate's stable sort leaves its insertion order in,
// which is what makes the k=2, no-group case byte-identical to Enumerate.
type candHeap []*candidate

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(a, b int) bool {
	if h[a].prob != h[b].prob {
		return h[a].prob > h[b].prob
	}
	if len(h[a].elems) != len(h[b].elems) {
		return len(h[a].elems) < len(h[b].elems)
	}
	for i := range h[a].elems {
		if h[a].elems[i] != h[b].elems[i] {
			return h[a].elems[i] < h[b].elems[i]
		}
	}
	return false
}
func (h candHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(*candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// EnumerateCorrelated enumerates k-simultaneous-failure scenarios over the
// correlated element model (per-fiber marginals plus SRLGs), best-first by
// descending probability, without ever materialising the 2^n failure
// lattice. With no groups, K=2, TargetMass=0 and MaxEnumerated=0 the result
// is byte-identical to Enumerate(failProb, cutoff) — same scenarios, same
// order, same floating-point probabilities and residual.
//
// The search walks the subset lattice of the odds-sorted element order with
// the classic two-child scheme (extend the subset with the next element, or
// replace its last element with the next): every nonempty subset of size
// <= K is reached exactly once, and because element odds are < 1 both
// children have probability <= their parent, so a max-heap frontier pops
// candidates in globally nonincreasing probability order. Candidates below
// the cutoff — and their entire unexplored subtrees — are pruned, counted
// in scenario.pruned; emitted cut sets count in scenario.enumerated.
//
// Element subsets that map to the same cut set (an SRLG expansion overlaps
// another element's fibers) MERGE: the probability mass is added to the
// first-emitted (most probable) entry for that cut set, so no mass is
// double-counted and downstream consumers see each distinct cut once.
func EnumerateCorrelated(failProb []float64, groups []Group, opt EnumOptions) *Set {
	nf := len(failProb)
	ne := nf + len(groups)
	probOf := func(e int) float64 {
		if e < nf {
			return failProb[e]
		}
		return groups[e-nf].Prob
	}

	healthy := 1.0
	for e := 0; e < ne; e++ {
		healthy *= 1 - probOf(e)
	}
	s := &Set{FailProb: append([]float64(nil), failProb...), HealthyProb: healthy}

	k := opt.K
	if k > ne {
		k = ne
	}
	if k <= 0 || ne == 0 {
		s.ResidualProb = 1 - healthy
		if s.ResidualProb < 0 {
			s.ResidualProb = 0
		}
		return s
	}

	odds := make([]float64, ne)
	for e := range odds {
		if p := probOf(e); p >= 1 {
			odds[e] = 1e18
		} else {
			odds[e] = p / (1 - p)
		}
	}
	// Element order for the lattice walk: descending odds, index-ascending
	// on ties, so the most probable subsets are discovered first.
	order := make([]int, ne)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return odds[order[a]] > odds[order[b]] })

	// canonical fills in a candidate's ascending element tuple and its exact
	// probability, multiplied in ascending element-index order — the same
	// association order Enumerate uses, which keeps probabilities bit-equal.
	canonical := func(c *candidate) {
		c.elems = make([]int, len(c.positions))
		for i, p := range c.positions {
			c.elems[i] = order[p]
		}
		sort.Ints(c.elems)
		c.prob = healthy
		for _, e := range c.elems {
			c.prob *= odds[e]
		}
	}

	var (
		h          candHeap
		pruned     int64
		covered    = healthy
		byCut      = map[string]int{}
		cutScratch = make([]int, 0, 8)
	)
	push := func(c *candidate) {
		canonical(c)
		if c.prob < opt.Cutoff {
			pruned++ // this candidate and its whole subtree are below cutoff
			return
		}
		heap.Push(&h, c)
	}
	push(&candidate{positions: []int{0}})

	for h.Len() > 0 {
		c := heap.Pop(&h).(*candidate)
		if c.prob < opt.Cutoff {
			// Best-first: everything still on the frontier is no more
			// probable than c, so the enumeration is complete.
			pruned += int64(1 + h.Len())
			break
		}
		// Expand the cut set: union of member fibers of every element.
		cutScratch = cutScratch[:0]
		for _, e := range c.elems {
			if e < nf {
				cutScratch = append(cutScratch, e)
			} else {
				cutScratch = append(cutScratch, groups[e-nf].Fibers...)
			}
		}
		sort.Ints(cutScratch)
		cut := cutScratch[:0:0]
		for i, f := range cutScratch {
			if i == 0 || f != cutScratch[i-1] {
				cut = append(cut, f)
			}
		}
		key := fmt.Sprint(cut)
		if idx, ok := byCut[key]; ok {
			s.Scenarios[idx].Prob += c.prob // merge overlapping expansions
		} else {
			if opt.MaxEnumerated > 0 && len(s.Scenarios) >= opt.MaxEnumerated {
				pruned += int64(1 + h.Len())
				break
			}
			byCut[key] = len(s.Scenarios)
			s.Scenarios = append(s.Scenarios, Scenario{Cut: cut, Prob: c.prob})
		}
		covered += c.prob
		if opt.TargetMass > 0 && covered >= opt.TargetMass {
			pruned += int64(h.Len())
			break
		}
		// Children: extend with the next element in odds order, and replace
		// the last element with it. Each subset is generated exactly once.
		last := c.positions[len(c.positions)-1]
		if last+1 < ne {
			if len(c.positions) < k {
				ext := make([]int, len(c.positions)+1)
				copy(ext, c.positions)
				ext[len(c.positions)] = last + 1
				push(&candidate{positions: ext})
			}
			sib := make([]int, len(c.positions))
			copy(sib, c.positions)
			sib[len(sib)-1] = last + 1
			push(&candidate{positions: sib})
		}
	}

	s.ResidualProb = 1 - covered
	if s.ResidualProb < 0 {
		s.ResidualProb = 0
	}
	obs.Add(opt.Recorder, "scenario.enumerated", int64(len(s.Scenarios)))
	obs.Add(opt.Recorder, "scenario.pruned", pruned)
	return s
}

// EnumerateAllKGroups is the group-aware EnumerateAllK used by the FFC-k
// baseline on SRLG-annotated topologies: it emits every SRLG expansion first
// (each group's full fiber set, in group order), then every 1..k fiber
// combination — EXCEPT combinations whose cut set is a subset of an
// already-emitted SRLG expansion. Those interiors are not distinct physical
// events: a conduit cut takes all member fibers down together, so the
// group's correlated probability mass already accounts for every subset of
// its fibers failing, and emitting them separately would double-count that
// mass when the scenarios are weighted (and double-constrain FFC).
func EnumerateAllKGroups(nFibers, k int, groups []Group) []Scenario {
	var out []Scenario
	expansions := make([]map[int]bool, 0, len(groups))
	for _, g := range groups {
		cut := append([]int(nil), g.Fibers...)
		sort.Ints(cut)
		cut = dedupSorted(cut)
		out = append(out, Scenario{Cut: cut})
		set := make(map[int]bool, len(cut))
		for _, f := range cut {
			set[f] = true
		}
		expansions = append(expansions, set)
	}
	covered := func(cut []int) bool {
		for _, set := range expansions {
			all := true
			for _, f := range cut {
				if !set[f] {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		return false
	}
	for _, sc := range EnumerateAllK(nFibers, k) {
		if len(expansions) > 0 && covered(sc.Cut) {
			continue
		}
		out = append(out, sc)
	}
	return out
}

func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// WeightedGroups annotates scenarios (typically from EnumerateAllKGroups)
// with probabilities under the correlated element model: a scenario whose
// cut set exactly matches group g's expansion carries the group-cut
// probability healthy * odds(g); every other scenario is priced as
// independent per-fiber failures exactly like Set.Weighted.
func (s *Set) WeightedGroups(scs []Scenario, groups []Group) []Scenario {
	byCut := map[string]int{}
	for gi, g := range groups {
		cut := append([]int(nil), g.Fibers...)
		sort.Ints(cut)
		byCut[fmt.Sprint(dedupSorted(cut))] = gi
	}
	out := make([]Scenario, len(scs))
	for i, sc := range scs {
		if gi, ok := byCut[fmt.Sprint(sc.Cut)]; ok {
			p := groups[gi].Prob
			pr := s.HealthyProb
			if p >= 1 {
				pr *= 1e18
			} else {
				pr *= p / (1 - p)
			}
			out[i] = Scenario{Cut: sc.Cut, Prob: pr}
			continue
		}
		out[i] = s.Weighted([]Scenario{sc})[0]
	}
	return out
}
