package ledger

import (
	"encoding/json"
	"sync/atomic"
)

// Subscription is one live tap on the ledger's event stream: every event
// emitted after SubscribeJSON is delivered as a JSON line on Events().
// Delivery is strictly non-blocking — a subscriber that cannot keep up
// loses events (counted in Dropped) rather than stalling Emit, which sits
// on the solve hot path. The SSE export plane (internal/obs) is the
// intended consumer.
type Subscription struct {
	ch      chan []byte
	dropped atomic.Int64
	closed  atomic.Bool
}

// Events is the delivery channel. It is closed by Close (never by the
// ledger), so a draining consumer terminates cleanly.
func (s *Subscription) Events() <-chan []byte { return s.ch }

// Dropped reports how many events were discarded because the subscriber's
// buffer was full.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channel. Safe to call
// more than once, and safe concurrently with Emit.
func (s *Subscription) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.ch)
	}
}

// deliver offers one marshalled event without blocking.
func (s *Subscription) deliver(line []byte) {
	if s.closed.Load() {
		return
	}
	select {
	case s.ch <- line:
	default:
		s.dropped.Add(1)
	}
}

// SubscribeJSON attaches a live subscription with the given channel buffer
// (minimum 1). Events already in the ledger are not replayed — use Events()
// for history. Returns nil on a nil ledger.
func (l *Ledger) SubscribeJSON(buf int) *Subscription {
	if l == nil {
		return nil
	}
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{ch: make(chan []byte, buf)}
	l.mu.Lock()
	l.subs = append(l.subs, s)
	l.mu.Unlock()
	return s
}

// unsubscribe removes closed subscriptions (called lazily from Emit).
func (l *Ledger) pruneClosedLocked() {
	kept := l.subs[:0]
	for _, s := range l.subs {
		if !s.closed.Load() {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(l.subs); i++ {
		l.subs[i] = nil
	}
	l.subs = kept
}

// publish marshals ev once and offers it to every live subscriber. Called
// by Emit with the lock held only long enough to copy the subscriber list.
func (l *Ledger) publish(ev *Event, subs []*Subscription) {
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	for _, s := range subs {
		s.deliver(line)
	}
}
