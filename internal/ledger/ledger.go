// Package ledger is ARROW's restoration flight recorder: a structured,
// concurrency-safe stream of typed per-run decision events. Where the
// metrics registry (internal/obs) answers "how much work happened", the
// ledger answers "why did scenario q end up with this restoration plan" —
// which scenarios were enumerated and kept, which LotteryTickets were
// generated or rejected (and for what reason), how the two-phase TE LP
// solves went (with their optimality certificates), which ticket won each
// scenario and how much capacity it revived, and what demand remained
// unmet.
//
// The package follows the same nil-default seam as obs.Recorder: a nil
// *Ledger is the disabled state, call sites guard event construction behind
// a nil check, and recording must never change control flow, iteration
// order, RNG consumption, or floating-point results of the instrumented
// code. cmd/arrow-report renders a recorded ledger into the per-scenario
// run report.
package ledger

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sync"

	"github.com/arrow-te/arrow/internal/lp"
)

// SchemaVersion identifies the ledger JSON layout. Bump it whenever an
// event field is renamed, removed, or changes meaning (adding fields is
// compatible).
const SchemaVersion = 1

// Kind is the type tag of one ledger event.
type Kind string

// Event kinds, in rough pipeline order.
const (
	// KindEnumerated is a run-level event: Count scenarios cleared the
	// probability cutoff.
	KindEnumerated Kind = "scenarios_enumerated"
	// KindScenario records one RELEVANT scenario kept in the pipeline:
	// Scenario is the pipeline index the TE and the report use, Enum the
	// enumerated (probability-ordered) index ticket events are tagged with.
	KindScenario Kind = "scenario"
	// KindTicketGenerated records one LotteryTicket that survived
	// feasibility filtering and deduplication (Scenario = enumerated index).
	KindTicketGenerated Kind = "ticket_generated"
	// KindTicketRejected records one rounding attempt dropped by the
	// feasibility filter or the dedup pass (Scenario = enumerated index).
	KindTicketRejected Kind = "ticket_rejected"
	// KindSolveStart / KindSolveEnd bracket one LP or MILP solve; the end
	// event carries the status and the solution certificate.
	KindSolveStart Kind = "solve_start"
	KindSolveEnd   Kind = "solve_end"
	// KindWarmStart records one warm-started solve's outcome: Solver names
	// the model, Status is "phase1_skipped", "accepted" or "rejected", and
	// Count carries the pivots saved versus a cold start.
	KindWarmStart Kind = "warm_start"
	// KindPricingRound records one column-generation sweep over the deferred
	// tickets of the phase-I restricted master: Round is the sweep index,
	// Count the columns priced in, Gbps the worst (most negative) reduced
	// cost seen, and Detail the master size after the appends. The final
	// sweep of a run has Count 0 — the priced-out certificate.
	KindPricingRound Kind = "pricing_round"
	// KindWinner records the winning ticket of one scenario with its
	// restored capacity and restored-capacity fraction.
	KindWinner Kind = "winner"
	// KindUnmetDemand is a run-level event: residual demand the final
	// allocation could not admit.
	KindUnmetDemand Kind = "unmet_demand"
	// KindSimSummary is a run-level event from the timeline simulator.
	KindSimSummary Kind = "sim_summary"
	// KindEmuEpisode summarises one emulated restoration episode (the
	// optical testbed of internal/emu): mode, end-to-end latency, revived
	// capacity and amplifier work.
	KindEmuEpisode Kind = "emu_episode"
	// KindEmuStage records one timed device action inside an emulated
	// restoration episode (failure detection, a ROADM wave, one amplifier's
	// settling, LACP re-aggregation, TE apply) on the emulated clock.
	KindEmuStage Kind = "emu_stage"
	// KindSolverAnomaly records one typed numerical-health finding from an
	// LP solve run with health probes (lp.Options.HealthEvery): Solver names
	// the model, Anomaly carries the reason code (stall, residual_drift,
	// warm_repair_fallback, cycling_suspect), Phase/Iter locate it in the
	// solve, Value is the reason-specific magnitude and Detail elaborates.
	KindSolverAnomaly Kind = "solver_anomaly"
	// KindSolverHealth summarises one probed solve per phase: Count is the
	// probe count, Value the worst primal residual, and Series the
	// (downsampled) per-probe objective trajectory — the pivot-progress
	// sparkline data of the report.
	KindSolverHealth Kind = "solver_health"
	// KindAttribution records one availability-loss contribution from the
	// post-solve attribution pass (internal/attr): scenario-level events
	// carry Scenario and Fraction (the scenario's share of total loss, in
	// availability units) with Gbps the unmet demand; flow-level events add
	// Flow. Scenario -1 tags the healthy-state contribution.
	KindAttribution Kind = "attribution"
	// KindSensitivity records one shadow-price finding: the marginal
	// objective value (Gbps restored per extra Gbps of capacity) of one
	// phase-II capacity row. Link/Fiber locate the constraint, Value is the
	// dual, and FDLow/FDHigh bracket it with the one-sided finite-difference
	// warm re-solves that validated it.
	KindSensitivity Kind = "sensitivity"
	// KindWhatIf records one warm what-if probe: Detail names the
	// perturbation ("+1 wave fiber 3", "drop scenario 2"), Value the
	// availability gained, and Gbps the capacity spent (0 for analytic
	// scenario drops).
	KindWhatIf Kind = "whatif"
)

// RejectReason classifies a dropped LotteryTicket.
type RejectReason string

// Rejection reasons (KindTicketRejected events).
const (
	// RejectRounding: the rounded wavelength vector asks some link for more
	// waves than its surrogate paths could ever carry, even on an empty
	// spectrum — the randomized rounding overshot physical capacity.
	RejectRounding RejectReason = "rounding_infeasible"
	// RejectSpectrumClash: the vector is within per-link path capacity but
	// the greedy integral assignment could not realise it because the
	// candidate paths contend for the same (fiber, slot) spectrum.
	RejectSpectrumClash RejectReason = "spectrum_clash"
	// RejectDuplicate: an identical ticket was already generated.
	RejectDuplicate RejectReason = "duplicate"
)

// Event is one flight-recorder record. Fields beyond Seq, Kind and Scenario
// are kind-specific and omitted from JSON when empty.
type Event struct {
	// Seq is the arrival sequence number (assigned by Emit). Under a
	// parallel build the interleaving across scenarios is schedule-
	// dependent; per-scenario event order is deterministic.
	Seq int64 `json:"seq"`
	// Kind tags the event type.
	Kind Kind `json:"kind"`
	// Scenario is the event's scenario index, or -1 for run-level events.
	// Ticket events carry the ENUMERATED index; KindScenario events map it
	// to the pipeline index (see Enum).
	Scenario int `json:"scenario"`
	// Enum is the enumerated scenario index a KindScenario event's pipeline
	// index corresponds to (-1 elsewhere).
	Enum int `json:"enum,omitempty"`
	// Prob is the scenario probability (KindScenario).
	Prob float64 `json:"prob,omitempty"`
	// Links lists the failed IP link IDs (KindScenario).
	Links []int `json:"links,omitempty"`
	// Cut lists the fiber IDs cut in this scenario (KindScenario). Multi-
	// fiber entries come from k-failure/SRLG enumeration; reports render
	// them as sorted {f3,f7} labels.
	Cut []int `json:"cut,omitempty"`
	// Ticket is the ticket index within the scenario's candidate set.
	Ticket int `json:"ticket,omitempty"`
	// Reason classifies a rejection (KindTicketRejected).
	Reason RejectReason `json:"reason,omitempty"`
	// Gbps is the event's bandwidth payload: restored capacity for
	// ticket/winner events, residual demand for KindUnmetDemand.
	Gbps float64 `json:"gbps,omitempty"`
	// Fraction is Gbps normalised by its natural denominator: lost link
	// capacity for winner events, total demand for unmet-demand events.
	Fraction float64 `json:"fraction,omitempty"`
	// Solver names the model of a solve event (e.g. "arrow-phase1").
	Solver string `json:"solver,omitempty"`
	// Status is the solve outcome (KindSolveEnd).
	Status string `json:"status,omitempty"`
	// Cert is the solution certificate of a completed solve.
	Cert *lp.Certificate `json:"certificate,omitempty"`
	// Count is the event's cardinality payload (KindEnumerated,
	// KindSimSummary; settled-amplifier count for KindEmuEpisode; columns
	// priced in for KindPricingRound).
	Count int `json:"count,omitempty"`
	// Round is the pricing sweep index (KindPricingRound).
	Round int `json:"round,omitempty"`
	// Mode tags restoration-scheme-paired events: "legacy" or
	// "noise_loading" for emulator episodes/stages and for latency-aware
	// sim summaries replayed under that scheme's latency model.
	Mode string `json:"mode,omitempty"`
	// Stage names the emulated restoration stage (KindEmuStage).
	Stage string `json:"stage,omitempty"`
	// Device identifies the acting device or device group (KindEmuStage).
	Device string `json:"device,omitempty"`
	// Lane is the waterfall lane of an emulated stage: 0 is the serial
	// critical-path lane, each concurrently-settling restoration path gets
	// its own (KindEmuStage).
	Lane int `json:"lane,omitempty"`
	// StartSec / DurSec locate the event on the emulated clock
	// (KindEmuStage; DurSec is the episode total for KindEmuEpisode).
	StartSec float64 `json:"start_sec,omitempty"`
	DurSec   float64 `json:"dur_sec,omitempty"`
	// FullService is the time-at-full-service fraction (KindSimSummary).
	FullService float64 `json:"full_service,omitempty"`
	// RestoringH is time spent inside restoration-latency windows, in
	// hours (KindSimSummary of a latency-aware replay).
	RestoringH float64 `json:"restoring_h,omitempty"`
	// Anomaly is the solver-health reason code (KindSolverAnomaly).
	Anomaly string `json:"anomaly,omitempty"`
	// Phase is the simplex phase of a solver-health event (1 or 2; 0 when
	// the finding precedes phase entry).
	Phase int `json:"phase,omitempty"`
	// Iter is the pivot count a solver-health finding anchors to.
	Iter int `json:"iter,omitempty"`
	// Value is the reason-specific magnitude of a solver-health event.
	Value float64 `json:"value,omitempty"`
	// Series is the downsampled per-probe objective trajectory of one phase
	// (KindSolverHealth).
	Series []float64 `json:"series,omitempty"`
	// Flow is the flow index of a flow-level attribution event (-0 omitted;
	// scenario-level attribution events leave it unset).
	Flow int `json:"flow,omitempty"`
	// Link is the IP-link index of a sensitivity event (KindSensitivity on a
	// per-link capacity row).
	Link int `json:"link,omitempty"`
	// Fiber is the fiber-span index a sensitivity or what-if event
	// aggregates over (-1 when the row maps to no single fiber).
	Fiber int `json:"fiber,omitempty"`
	// FDLow / FDHigh are the one-sided finite-difference derivative bounds
	// that validated a sensitivity event's dual (right and left derivative
	// of the optimal value in the row's RHS).
	FDLow  float64 `json:"fd_low,omitempty"`
	FDHigh float64 `json:"fd_high,omitempty"`
	// Detail carries free-form context (kept short; not for hot paths).
	Detail string `json:"detail,omitempty"`
}

// Ledger is a concurrency-safe append-only event store. The zero value is
// ready to use, but callers normally hold a *Ledger where nil means
// disabled — guard hot-path event construction behind a nil check so the
// off state stays allocation-free.
type Ledger struct {
	mu     sync.Mutex
	seq    int64
	events []Event
	logger *slog.Logger
	subs   []*Subscription
}

// New returns an empty ledger.
func New() *Ledger { return &Ledger{} }

// SetLogger mirrors every subsequently emitted event to lg at Debug level
// (the CLIs wire this to -v). A nil lg disables mirroring.
func (l *Ledger) SetLogger(lg *slog.Logger) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.logger = lg
	l.mu.Unlock()
}

// Emit appends ev (assigning its sequence number). Safe on a nil ledger.
func (l *Ledger) Emit(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	l.events = append(l.events, ev)
	lg := l.logger
	var subs []*Subscription
	if len(l.subs) > 0 {
		l.pruneClosedLocked()
		subs = append(subs, l.subs...)
	}
	l.mu.Unlock()
	if len(subs) > 0 {
		l.publish(&ev, subs)
	}
	if lg != nil {
		lg.LogAttrs(context.Background(), slog.LevelDebug, "ledger",
			slog.String("kind", string(ev.Kind)),
			slog.Int("scenario", ev.Scenario),
			slog.Int("ticket", ev.Ticket),
			slog.String("reason", string(ev.Reason)),
			slog.String("solver", ev.Solver),
			slog.String("status", ev.Status),
			slog.Float64("gbps", ev.Gbps),
			slog.Float64("fraction", ev.Fraction),
		)
	}
}

// Len returns the number of recorded events (0 on nil).
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the recorded events in arrival order (nil on a
// nil ledger).
func (l *Ledger) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Snapshot is the serialised ledger: schema version plus the event stream.
type Snapshot struct {
	SchemaVersion int     `json:"schema_version"`
	Events        []Event `json:"events"`
}

// Snapshot exports the ledger's current state.
func (l *Ledger) Snapshot() *Snapshot {
	return &Snapshot{SchemaVersion: SchemaVersion, Events: l.Events()}
}

// WriteJSON writes the ledger snapshot as indented JSON.
func (l *Ledger) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l.Snapshot())
}

// ReadJSON parses a snapshot previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("ledger: parse snapshot: %w", err)
	}
	if s.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("ledger: snapshot schema v%d is newer than this build (v%d)", s.SchemaVersion, SchemaVersion)
	}
	return &s, nil
}

type ctxKey struct{}

// WithLedger attaches l to the context. A nil l returns ctx unchanged.
// Mirrors obs.WithRecorder so the public planning API can be instrumented
// without ledger types appearing in its signature.
func WithLedger(ctx context.Context, l *Ledger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, l)
}

// FromContext returns the Ledger attached to ctx, or nil.
func FromContext(ctx context.Context) *Ledger {
	l, _ := ctx.Value(ctxKey{}).(*Ledger)
	return l
}
