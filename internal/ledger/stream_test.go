package ledger

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/arrow-te/arrow/internal/lp"
)

func TestSubscribeJSONDelivers(t *testing.T) {
	l := New()
	l.Emit(Event{Kind: KindEnumerated, Scenario: -1, Count: 3}) // pre-subscription: not replayed
	sub := l.SubscribeJSON(8)
	defer sub.Close()
	l.Emit(Event{Kind: KindWinner, Scenario: 2, Gbps: 40})
	l.Emit(Event{Kind: KindSolverAnomaly, Scenario: 1, Solver: "arrow-phase2", Anomaly: "stall", Phase: 2, Iter: 64})

	var got []Event
	for i := 0; i < 2; i++ {
		line := <-sub.Events()
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d not JSON: %v (%s)", i, err, line)
		}
		got = append(got, ev)
	}
	if got[0].Kind != KindWinner || got[0].Scenario != 2 {
		t.Fatalf("first delivered event %+v", got[0])
	}
	if got[1].Kind != KindSolverAnomaly || got[1].Anomaly != "stall" || got[1].Phase != 2 {
		t.Fatalf("second delivered event %+v", got[1])
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("dropped %d on an idle subscriber", d)
	}
}

func TestSubscribeJSONSlowClientDrops(t *testing.T) {
	l := New()
	sub := l.SubscribeJSON(2)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		l.Emit(Event{Kind: KindWinner, Scenario: i})
	}
	// Buffer 2: the first two events queue, the other eight drop.
	if d := sub.Dropped(); d != 8 {
		t.Fatalf("dropped = %d, want 8", d)
	}
	// The queued events are still intact and in order.
	var first Event
	if err := json.Unmarshal(<-sub.Events(), &first); err != nil || first.Scenario != 0 {
		t.Fatalf("first queued event %+v err %v", first, err)
	}
	// Ledger history is unaffected by subscriber drops.
	if l.Len() != 10 {
		t.Fatalf("ledger len %d", l.Len())
	}
}

func TestSubscriptionCloseDetaches(t *testing.T) {
	l := New()
	sub := l.SubscribeJSON(1)
	sub.Close()
	sub.Close()                     // idempotent
	l.Emit(Event{Kind: KindWinner}) // must not panic on the closed channel
	if _, ok := <-sub.Events(); ok {
		t.Fatal("closed subscription still delivering")
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("dropped %d after close", d)
	}
}

func TestSubscribeJSONNilLedger(t *testing.T) {
	var l *Ledger
	if sub := l.SubscribeJSON(4); sub != nil {
		t.Fatal("nil ledger returned a subscription")
	}
}

func TestEmitSolverHealth(t *testing.T) {
	l := New()
	h := &lp.HealthReport{
		Every: 8,
		Samples: []lp.HealthSample{
			{Iter: 8, Phase: 1, Obj: 5, ResidualInf: 1e-10},
			{Iter: 16, Phase: 1, Obj: 0, ResidualInf: 3e-10},
			{Iter: 24, Phase: 2, Obj: -2, ResidualInf: 2e-10},
		},
		Anomalies: []lp.Anomaly{
			{Reason: lp.AnomalyStall, Phase: 1, Iter: 16, Value: 0, Detail: "flat"},
		},
	}
	EmitSolverHealth(l, 3, "arrow-phase1", h)
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("events %d, want 1 anomaly + 2 phase summaries: %+v", len(evs), evs)
	}
	if evs[0].Kind != KindSolverAnomaly || evs[0].Anomaly != "stall" || evs[0].Scenario != 3 || evs[0].Solver != "arrow-phase1" {
		t.Fatalf("anomaly event %+v", evs[0])
	}
	if evs[1].Kind != KindSolverHealth || evs[1].Phase != 1 || evs[1].Count != 2 {
		t.Fatalf("phase-1 summary %+v", evs[1])
	}
	if !reflect.DeepEqual(evs[1].Series, []float64{5, 0}) {
		t.Fatalf("phase-1 series %v", evs[1].Series)
	}
	if evs[1].Value != 3e-10 {
		t.Fatalf("phase-1 worst residual %g", evs[1].Value)
	}
	if evs[2].Phase != 2 || !reflect.DeepEqual(evs[2].Series, []float64{-2}) {
		t.Fatalf("phase-2 summary %+v", evs[2])
	}

	// Nil-safety and the empty report.
	EmitSolverHealth(nil, 0, "x", h)
	EmitSolverHealth(l, 0, "x", nil)
	EmitSolverHealth(l, 0, "x", &lp.HealthReport{Every: 8})
	if l.Len() != 3 {
		t.Fatalf("nil/empty emission appended events: len %d", l.Len())
	}
}

func TestDownsampleSeries(t *testing.T) {
	long := make([]float64, 100)
	for i := range long {
		long[i] = float64(i)
	}
	got := downsampleSeries(long, 32)
	if len(got) != 32 {
		t.Fatalf("len %d", len(got))
	}
	if got[0] != 0 || got[31] != 99 {
		t.Fatalf("endpoints %g %g, want 0 and 99", got[0], got[31])
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("order violated at %d: %v", i, got)
		}
	}
	short := []float64{1, 2, 3}
	if s := downsampleSeries(short, 32); !reflect.DeepEqual(s, short) {
		t.Fatalf("short series altered: %v", s)
	}
	// Must be a copy, not an alias.
	s := downsampleSeries(short, 32)
	s[0] = 9
	if short[0] != 1 {
		t.Fatal("downsample aliased its input")
	}
}
