package ledger

import (
	"github.com/arrow-te/arrow/internal/lp"
)

// healthSeriesMax caps the per-phase objective trajectory carried by a
// KindSolverHealth event. The report's sparklines render at terminal width
// anyway, and unbounded series would bloat ledger JSON on long solves.
const healthSeriesMax = 32

// downsampleSeries thins s to at most max points, always keeping the first
// and last. Index selection is a pure function of len(s), so identical
// solves produce identical series regardless of worker scheduling.
func downsampleSeries(s []float64, max int) []float64 {
	if len(s) <= max {
		return append([]float64(nil), s...)
	}
	out := make([]float64, max)
	last := len(s) - 1
	for i := 0; i < max; i++ {
		out[i] = s[i*last/(max-1)]
	}
	return out
}

// EmitSolverHealth records one probed solve's health into the ledger: one
// KindSolverAnomaly event per detector finding, then one KindSolverHealth
// summary per phase that recorded probes. Nil-safe on both arguments; a
// solve with no probes and no anomalies emits nothing.
func EmitSolverHealth(l *Ledger, scenario int, solver string, h *lp.HealthReport) {
	if l == nil || h == nil {
		return
	}
	for _, a := range h.Anomalies {
		l.Emit(Event{
			Kind: KindSolverAnomaly, Scenario: scenario, Solver: solver,
			Anomaly: string(a.Reason), Phase: a.Phase, Iter: a.Iter,
			Value: a.Value, Detail: a.Detail,
		})
	}
	for _, phase := range []int{1, 2} {
		series := h.PhaseSeries(phase)
		if len(series) == 0 {
			continue
		}
		worst := 0.0
		for _, s := range h.Samples {
			if s.Phase == phase && s.ResidualInf > worst {
				worst = s.ResidualInf
			}
		}
		l.Emit(Event{
			Kind: KindSolverHealth, Scenario: scenario, Solver: solver,
			Phase: phase, Count: len(series), Value: worst,
			Series: downsampleSeries(series, healthSeriesMax),
		})
	}
}
