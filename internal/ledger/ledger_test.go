package ledger

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"github.com/arrow-te/arrow/internal/lp"
)

// TestNilLedgerIsSafe pins the nil-default seam: every method must be a
// no-op on a nil *Ledger.
func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.Emit(Event{Kind: KindWinner})
	l.SetLogger(slog.Default())
	if l.Len() != 0 {
		t.Error("nil ledger has events")
	}
	if l.Events() != nil {
		t.Error("nil ledger returned events")
	}
	ctx := WithLedger(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Error("nil ledger attached to context")
	}
}

// TestEmitAssignsSequence checks ordering and payload fidelity.
func TestEmitAssignsSequence(t *testing.T) {
	l := New()
	l.Emit(Event{Kind: KindEnumerated, Scenario: -1, Count: 16})
	l.Emit(Event{Kind: KindScenario, Scenario: 0, Enum: 3, Prob: 0.25, Links: []int{1, 2}})
	l.Emit(Event{Kind: KindWinner, Scenario: 0, Ticket: 4, Gbps: 300, Fraction: 0.75})
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[1].Kind != KindScenario || evs[1].Enum != 3 || evs[1].Prob != 0.25 {
		t.Errorf("scenario event corrupted: %+v", evs[1])
	}
	if evs[2].Fraction != 0.75 {
		t.Errorf("winner event corrupted: %+v", evs[2])
	}
	// Events() must be a copy, not an alias.
	evs[0].Count = 999
	if l.Events()[0].Count == 999 {
		t.Error("Events() aliases internal storage")
	}
}

// TestConcurrentEmit hammers Emit from many goroutines; run under -race this
// is the concurrency-safety proof, and sequence numbers must stay unique.
func TestConcurrentEmit(t *testing.T) {
	l := New()
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Emit(Event{Kind: KindTicketGenerated, Scenario: w, Ticket: i})
			}
		}(w)
	}
	wg.Wait()
	evs := l.Events()
	if len(evs) != workers*per {
		t.Fatalf("got %d events, want %d", len(evs), workers*per)
	}
	seen := make(map[int64]bool, len(evs))
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

// TestJSONRoundTrip writes a snapshot and reads it back, including a nested
// certificate.
func TestJSONRoundTrip(t *testing.T) {
	l := New()
	l.Emit(Event{Kind: KindSolveStart, Scenario: -1, Solver: "arrow-phase1"})
	l.Emit(Event{
		Kind: KindSolveEnd, Scenario: -1, Solver: "arrow-phase1", Status: "optimal",
		Cert: &lp.Certificate{Primal: 10, Dual: 10, Gap: 0},
	})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != SchemaVersion {
		t.Errorf("schema version %d", snap.SchemaVersion)
	}
	if len(snap.Events) != 2 {
		t.Fatalf("got %d events", len(snap.Events))
	}
	c := snap.Events[1].Cert
	if c == nil || c.Primal != 10 || c.Dual != 10 {
		t.Errorf("certificate did not survive round trip: %+v", c)
	}

	// A future schema version must be rejected, not misparsed.
	future, _ := json.Marshal(Snapshot{SchemaVersion: SchemaVersion + 1})
	if _, err := ReadJSON(bytes.NewReader(future)); err == nil {
		t.Error("accepted snapshot from a newer schema")
	}
	if _, err := ReadJSON(strings.NewReader("{garbage")); err == nil {
		t.Error("accepted malformed JSON")
	}
}

// TestEmuEventsRoundTrip pins the restoration-latency observatory fields:
// emulated episode/stage events and latency-aware sim summaries must
// survive the JSON round trip with their emulated-clock coordinates.
func TestEmuEventsRoundTrip(t *testing.T) {
	l := New()
	l.Emit(Event{
		Kind: KindEmuEpisode, Scenario: -1, Mode: "legacy",
		DurSec: 1021, Gbps: 2800, Fraction: 1, Count: 25,
	})
	l.Emit(Event{
		Kind: KindEmuStage, Scenario: -1, Mode: "legacy", Stage: "amp_settle",
		Device: "path [0 1] amp 3", Lane: 2, StartSec: 6, DurSec: 40,
	})
	l.Emit(Event{
		Kind: KindSimSummary, Scenario: -1, Mode: "noise_loading",
		Count: 12, Fraction: 0.995, FullService: 0.98, RestoringH: 0.4,
	})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ep, st, sum := snap.Events[0], snap.Events[1], snap.Events[2]
	if ep.Mode != "legacy" || ep.DurSec != 1021 || ep.Count != 25 {
		t.Errorf("episode corrupted: %+v", ep)
	}
	if st.Stage != "amp_settle" || st.Lane != 2 || st.StartSec != 6 || st.DurSec != 40 || st.Device == "" {
		t.Errorf("stage corrupted: %+v", st)
	}
	if sum.FullService != 0.98 || sum.RestoringH != 0.4 || sum.Mode != "noise_loading" {
		t.Errorf("sim summary corrupted: %+v", sum)
	}
}

// TestSlogMirroring checks that events reach an attached slog handler with
// the kind attribute intact.
func TestSlogMirroring(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	l := New()
	l.SetLogger(lg)
	l.Emit(Event{Kind: KindTicketRejected, Scenario: 2, Ticket: 7, Reason: RejectDuplicate})
	var line struct {
		Msg    string `json:"msg"`
		Kind   string `json:"kind"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("mirror output not JSON: %v (%q)", err, buf.String())
	}
	if line.Msg != "ledger" || line.Kind != string(KindTicketRejected) || line.Reason != string(RejectDuplicate) {
		t.Errorf("mirrored line wrong: %+v", line)
	}

	// Detaching stops the mirror.
	l.SetLogger(nil)
	buf.Reset()
	l.Emit(Event{Kind: KindWinner})
	if buf.Len() != 0 {
		t.Error("detached logger still received events")
	}
}

// TestContextHelpers round-trips a ledger through a context.
func TestContextHelpers(t *testing.T) {
	l := New()
	ctx := WithLedger(context.Background(), l)
	if FromContext(ctx) != l {
		t.Error("FromContext lost the ledger")
	}
	if FromContext(context.Background()) != nil {
		t.Error("empty context produced a ledger")
	}
}
