package availability

import (
	"math"
	"testing"

	"github.com/arrow-te/arrow/internal/te"
)

// twoTunnelNet: one flow, demand 100, two disjoint one-link tunnels of
// capacity 100 each, allocation 50/50, b = 100.
func twoTunnelNet() (*te.Network, *te.Allocation) {
	n := &te.Network{
		LinkCap: []float64{100, 100},
		Flows:   []te.Flow{{Src: 0, Dst: 1, Demand: 100}},
		Tunnels: [][]te.Tunnel{{{Links: []int{0}}, {Links: []int{1}}}},
	}
	al := &te.Allocation{B: []float64{100}, A: [][]float64{{50, 50}}}
	return n, al
}

func TestDeliveredHealthy(t *testing.T) {
	n, al := twoTunnelNet()
	ev := &Evaluator{Net: n, Alloc: al}
	if d := ev.Delivered(&ScenarioEval{}); math.Abs(d-1) > 1e-9 {
		t.Fatalf("healthy delivered %g", d)
	}
}

func TestDeliveredUnderFailureProportional(t *testing.T) {
	n, al := twoTunnelNet()
	ev := &Evaluator{Net: n, Alloc: al}
	// Link 0 dies: all 100 shifts to tunnel 1 (cap 100) -> fully delivered.
	d := ev.Delivered(&ScenarioEval{Failed: []int{0}})
	if math.Abs(d-1) > 1e-9 {
		t.Fatalf("delivered %g, want 1", d)
	}
	// Demand above surviving capacity: shed at the link.
	n.Flows[0].Demand = 150
	al.B[0] = 150
	al.A[0] = []float64{75, 75}
	d = ev.Delivered(&ScenarioEval{Failed: []int{0}})
	if math.Abs(d-100.0/150) > 1e-9 {
		t.Fatalf("delivered %g, want %g", d, 100.0/150)
	}
}

func TestDeliveredWithRestoration(t *testing.T) {
	n, al := twoTunnelNet()
	n.Flows[0].Demand = 150
	al.B[0] = 150
	al.A[0] = []float64{75, 75}
	ev := &Evaluator{Net: n, Alloc: al}
	// Link 0 fails but 40 Gbps restored: tunnel 0 stays active with cap 40.
	d := ev.Delivered(&ScenarioEval{Failed: []int{0}, Restored: map[int]float64{0: 40}})
	// Sends 75/75; link 0 sheds to 40 -> delivered 40 + 75 = 115.
	if math.Abs(d-115.0/150) > 1e-9 {
		t.Fatalf("delivered %g, want %g", d, 115.0/150)
	}
}

func TestDeliveredECMPRebalance(t *testing.T) {
	n, al := twoTunnelNet()
	al.A[0] = []float64{100, 0} // proportional would send all on tunnel 0
	ev := &Evaluator{Net: n, Alloc: al, ECMPRebalance: true}
	d := ev.Delivered(&ScenarioEval{})
	if math.Abs(d-1) > 1e-9 { // 50/50 fits both links
		t.Fatalf("delivered %g", d)
	}
	// With rebalance off and asymmetric allocation, link 0 overloads at
	// demand 150.
	n.Flows[0].Demand = 150
	al.B[0] = 150
	ev2 := &Evaluator{Net: n, Alloc: al}
	d2 := ev2.Delivered(&ScenarioEval{})
	if math.Abs(d2-100.0/150) > 1e-9 {
		t.Fatalf("proportional delivered %g, want %g", d2, 100.0/150)
	}
}

func TestDeliveredTotalLossWhenNoTunnel(t *testing.T) {
	n, al := twoTunnelNet()
	ev := &Evaluator{Net: n, Alloc: al}
	d := ev.Delivered(&ScenarioEval{Failed: []int{0, 1}})
	if d != 0 {
		t.Fatalf("delivered %g, want 0", d)
	}
	// Restoring one link partially revives delivery.
	d = ev.Delivered(&ScenarioEval{Failed: []int{0, 1}, Restored: map[int]float64{1: 30}})
	if math.Abs(d-0.3) > 1e-9 {
		t.Fatalf("delivered %g, want 0.3", d)
	}
}

func TestAvailabilityWeighting(t *testing.T) {
	n, al := twoTunnelNet()
	n.Flows[0].Demand = 150
	al.B[0] = 150
	al.A[0] = []float64{75, 75}
	ev := &Evaluator{Net: n, Alloc: al}
	scs := []ScenarioEval{
		{Prob: 0.1, Failed: []int{0}},    // delivers 2/3
		{Prob: 0.1, Failed: []int{0, 1}}, // delivers 0
	}
	// Healthy (p=0.8) delivers 1.
	want := (0.8*1 + 0.1*(100.0/150) + 0.1*0) / 1.0
	got := ev.Availability(scs)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("availability %g, want %g", got, want)
	}
}

func TestGuaranteedThroughput(t *testing.T) {
	n, al := twoTunnelNet()
	n.Flows[0].Demand = 150
	al.B[0] = 150
	al.A[0] = []float64{75, 75}
	ev := &Evaluator{Net: n, Alloc: al}
	scs := []ScenarioEval{
		{Prob: 0.05, Failed: []int{0}},    // 2/3
		{Prob: 0.01, Failed: []int{0, 1}}, // 0
	}
	// Cumulative sorted descending: healthy 0.94 @1, then 0.05 @2/3, then 0.01 @0.
	if g := ev.GuaranteedThroughput(scs, 0.9); math.Abs(g-1) > 1e-9 {
		t.Fatalf("beta=0.9: %g", g)
	}
	if g := ev.GuaranteedThroughput(scs, 0.97); math.Abs(g-100.0/150) > 1e-9 {
		t.Fatalf("beta=0.97: %g", g)
	}
	if g := ev.GuaranteedThroughput(scs, 0.9999); g != 0 {
		t.Fatalf("beta=0.9999: %g", g)
	}
}

func TestRequiredCapacity(t *testing.T) {
	n, al := twoTunnelNet()
	ev := &Evaluator{Net: n, Alloc: al}
	scs := []ScenarioEval{{Prob: 0.01, Failed: []int{0}}}
	// Worst case per link: link 0 carries 50 healthy; link 1 carries 100
	// under failure. CAP = 150. Guaranteed throughput at 0.99 = 1.
	got := ev.RequiredCapacity(scs, 0.99)
	if math.Abs(got-150) > 1e-9 {
		t.Fatalf("required capacity %g, want 150", got)
	}
}

func TestBuildScenarioEvals(t *testing.T) {
	evs := BuildScenarioEvals(
		[]float64{0.1, 0.2},
		[][]int{{1}, {2, 3}},
		[]map[int]float64{nil, {2: 50}},
	)
	if len(evs) != 2 || evs[1].Restored[2] != 50 || evs[0].Prob != 0.1 {
		t.Fatalf("%+v", evs)
	}
}

func TestPerFlowAvailability(t *testing.T) {
	// Two flows: flow 0 rides link 0 only; flow 1 rides link 1 only.
	n := &te.Network{
		LinkCap: []float64{100, 100},
		Flows:   []te.Flow{{Src: 0, Dst: 1, Demand: 80}, {Src: 0, Dst: 2, Demand: 80}},
		Tunnels: [][]te.Tunnel{{{Links: []int{0}}}, {{Links: []int{1}}}},
	}
	al := &te.Allocation{B: []float64{80, 80}, A: [][]float64{{80}, {80}}}
	ev := &Evaluator{Net: n, Alloc: al}
	// Link 0 fails with probability 0.2, no restoration: flow 0 fully
	// down in that scenario, flow 1 untouched.
	scs := []ScenarioEval{{Prob: 0.2, Failed: []int{0}}}
	per := ev.PerFlowAvailability(scs)
	if math.Abs(per[0]-0.8) > 1e-9 {
		t.Fatalf("flow 0 availability %g, want 0.8", per[0])
	}
	if math.Abs(per[1]-1.0) > 1e-9 {
		t.Fatalf("flow 1 availability %g, want 1.0", per[1])
	}
	// Weighted mean of per-flow equals the aggregate (equal demands).
	agg := ev.Availability(scs)
	if math.Abs((per[0]+per[1])/2-agg) > 1e-9 {
		t.Fatalf("per-flow mean %g vs aggregate %g", (per[0]+per[1])/2, agg)
	}
	// Restoration lifts the unlucky flow.
	scs[0].Restored = map[int]float64{0: 40}
	per = ev.PerFlowAvailability(scs)
	if math.Abs(per[0]-(0.8+0.2*0.5)) > 1e-9 {
		t.Fatalf("flow 0 availability with restoration %g", per[0])
	}
}
