// Package availability implements the evaluation metrics of §6 of the
// ARROW paper: per-scenario demand satisfaction under a solved TE
// allocation, the probability-weighted availability metric (§6.1), the
// availability-guaranteed throughput at a target beta (§6.3), and the
// router-port cost proxy CAP (Fig. 16).
package availability

import (
	"math"
	"sort"

	"github.com/arrow-te/arrow/internal/te"
)

// ScenarioEval is one failure scenario prepared for evaluation.
type ScenarioEval struct {
	Prob   float64
	Failed []int
	// Restored maps failed IP link -> restored capacity in Gbps (nil or
	// missing entries mean the link stays dark). For ARROW this comes from
	// the winning LotteryTicket; for other TEs it is nil.
	Restored map[int]float64
}

// Evaluator computes delivered traffic for a fixed TE allocation.
type Evaluator struct {
	Net   *te.Network
	Alloc *te.Allocation
	// ECMPRebalance redistributes a failed flow's traffic equally over its
	// surviving tunnels (hash-rebalance semantics) instead of
	// proportionally to the TE allocation.
	ECMPRebalance bool
}

// Delivered returns the fraction of total demand delivered under the given
// scenario: flows send b_f over their active tunnels (surviving plus
// restored), link overloads shed traffic proportionally, and a tunnel's
// delivery is limited by its most-congested link.
func (ev *Evaluator) Delivered(sc *ScenarioEval) float64 {
	totalDemand := ev.Net.TotalDemand()
	if totalDemand <= 0 {
		return 1
	}
	delivered := 0.0
	for _, d := range ev.deliveredPerFlow(sc) {
		delivered += d
	}
	return delivered / totalDemand
}

// Availability computes the §6.1 metric: the probability-weighted average
// demand satisfaction over the healthy state and all enumerated scenarios,
// normalised by the covered probability mass.
func (ev *Evaluator) Availability(scs []ScenarioEval) float64 {
	healthyProb := 1.0
	for _, sc := range scs {
		healthyProb -= sc.Prob
	}
	if healthyProb < 0 {
		healthyProb = 0
	}
	total := healthyProb * ev.Delivered(&ScenarioEval{})
	mass := healthyProb
	for i := range scs {
		total += scs[i].Prob * ev.Delivered(&scs[i])
		mass += scs[i].Prob
	}
	if mass <= 0 {
		return 1
	}
	return total / mass
}

// GuaranteedThroughput computes the §6.3 availability-guaranteed
// throughput: scenarios (including the healthy state) are sorted by
// delivered fraction descending; the delivered fraction at the
// beta-percentile of cumulative probability is the throughput guaranteed
// for beta of the time.
func (ev *Evaluator) GuaranteedThroughput(scs []ScenarioEval, beta float64) float64 {
	type point struct {
		delivered float64
		prob      float64
	}
	healthyProb := 1.0
	for _, sc := range scs {
		healthyProb -= sc.Prob
	}
	if healthyProb < 0 {
		healthyProb = 0
	}
	pts := []point{{ev.Delivered(&ScenarioEval{}), healthyProb}}
	mass := healthyProb
	for i := range scs {
		pts = append(pts, point{ev.Delivered(&scs[i]), scs[i].Prob})
		mass += scs[i].Prob
	}
	sort.SliceStable(pts, func(a, b int) bool { return pts[a].delivered > pts[b].delivered })
	cum := 0.0
	for _, p := range pts {
		cum += p.prob
		if cum >= beta*mass {
			return p.delivered
		}
	}
	return pts[len(pts)-1].delivered
}

// RequiredCapacity computes the Fig. 16 cost proxy: CAP_e is the worst-case
// traffic carried by link e across the healthy state and all scenarios;
// CAP = sum_e CAP_e is a proxy for the router ports the TE needs. The
// returned value is CAP normalised by the availability-guaranteed
// throughput at beta (so schemes are compared at equal delivered service).
func (ev *Evaluator) RequiredCapacity(scs []ScenarioEval, beta float64) float64 {
	n := ev.Net
	worst := make([]float64, len(n.LinkCap))
	measure := func(sc *ScenarioEval) {
		loads := ev.linkLoads(sc)
		for e, l := range loads {
			if l > worst[e] {
				worst[e] = l
			}
		}
	}
	measure(&ScenarioEval{})
	for i := range scs {
		measure(&scs[i])
	}
	cap := 0.0
	for _, w := range worst {
		cap += w
	}
	gt := ev.GuaranteedThroughput(scs, beta)
	if gt <= 0 {
		return math.Inf(1)
	}
	return cap / gt
}

// linkLoads returns the post-shedding traffic on each link under sc.
func (ev *Evaluator) linkLoads(sc *ScenarioEval) []float64 {
	n := ev.Net
	capOf := make(map[int]float64, len(sc.Failed))
	for _, e := range sc.Failed {
		capOf[e] = 0
		if sc.Restored != nil {
			capOf[e] = sc.Restored[e]
		}
	}
	linkCap := func(e int) float64 {
		if c, ok := capOf[e]; ok {
			return c
		}
		return n.LinkCap[e]
	}
	load := make([]float64, len(n.LinkCap))
	for f := range n.Flows {
		var active []int
		for ti, t := range n.Tunnels[f] {
			ok := true
			for _, e := range t.Links {
				if linkCap(e) <= 0 {
					ok = false
					break
				}
			}
			if ok {
				active = append(active, ti)
			}
		}
		if len(active) == 0 {
			continue
		}
		b := ev.Alloc.B[f]
		wsum := 0.0
		if !ev.ECMPRebalance {
			for _, ti := range active {
				wsum += ev.Alloc.A[f][ti]
			}
		}
		for _, ti := range active {
			var send float64
			if ev.ECMPRebalance || wsum <= 0 {
				send = b / float64(len(active))
			} else {
				send = b * ev.Alloc.A[f][ti] / wsum
			}
			for _, e := range n.Tunnels[f][ti].Links {
				load[e] += send
			}
		}
	}
	// Clamp at capacity: shed traffic does not occupy ports.
	for e := range load {
		if c := linkCap(e); load[e] > c {
			load[e] = c
		}
	}
	return load
}

// PerFlowAvailability computes each flow's probability-weighted delivered
// fraction (its individual SLA view): delivered_f / d_f averaged over the
// healthy state and all scenarios, weighted by probability. Flows with zero
// demand report 1.
func (ev *Evaluator) PerFlowAvailability(scs []ScenarioEval) []float64 {
	n := ev.Net
	out := make([]float64, len(n.Flows))
	healthyProb := 1.0
	for _, sc := range scs {
		healthyProb -= sc.Prob
	}
	if healthyProb < 0 {
		healthyProb = 0
	}
	mass := healthyProb
	for _, sc := range scs {
		mass += sc.Prob
	}
	if mass <= 0 {
		for f := range out {
			out[f] = 1
		}
		return out
	}
	accumulate := func(sc *ScenarioEval, prob float64) {
		per := ev.deliveredPerFlow(sc)
		for f := range out {
			if d := n.Flows[f].Demand; d > 0 {
				out[f] += prob / mass * math.Min(1, per[f]/d)
			} else {
				out[f] += prob / mass
			}
		}
	}
	accumulate(&ScenarioEval{}, healthyProb)
	for i := range scs {
		accumulate(&scs[i], scs[i].Prob)
	}
	return out
}

// DeliveredPerFlow returns the absolute delivered Gbps of every flow under
// sc — the per-flow breakdown of Delivered, for availability-loss
// attribution (internal/attr).
func (ev *Evaluator) DeliveredPerFlow(sc *ScenarioEval) []float64 {
	return ev.deliveredPerFlow(sc)
}

// deliveredPerFlow mirrors Delivered but returns absolute Gbps per flow.
func (ev *Evaluator) deliveredPerFlow(sc *ScenarioEval) []float64 {
	n := ev.Net
	capOf := make(map[int]float64, len(sc.Failed))
	for _, e := range sc.Failed {
		capOf[e] = 0
		if sc.Restored != nil {
			capOf[e] = sc.Restored[e]
		}
	}
	linkCap := func(e int) float64 {
		if c, ok := capOf[e]; ok {
			return c
		}
		return n.LinkCap[e]
	}
	sends := make([][]float64, len(n.Flows))
	load := make([]float64, len(n.LinkCap))
	for f := range n.Flows {
		sends[f] = make([]float64, len(n.Tunnels[f]))
		var active []int
		for ti, t := range n.Tunnels[f] {
			ok := true
			for _, e := range t.Links {
				if linkCap(e) <= 0 {
					ok = false
					break
				}
			}
			if ok {
				active = append(active, ti)
			}
		}
		if len(active) == 0 {
			continue
		}
		b := ev.Alloc.B[f]
		wsum := 0.0
		if !ev.ECMPRebalance {
			for _, ti := range active {
				wsum += ev.Alloc.A[f][ti]
			}
		}
		for _, ti := range active {
			var send float64
			if ev.ECMPRebalance || wsum <= 0 {
				send = b / float64(len(active))
			} else {
				send = b * ev.Alloc.A[f][ti] / wsum
			}
			sends[f][ti] = send
			for _, e := range n.Tunnels[f][ti].Links {
				load[e] += send
			}
		}
	}
	shed := make([]float64, len(n.LinkCap))
	for e := range shed {
		c := linkCap(e)
		if load[e] <= c || load[e] <= 0 {
			shed[e] = 1
		} else {
			shed[e] = c / load[e]
		}
	}
	out := make([]float64, len(n.Flows))
	for f := range n.Flows {
		df := 0.0
		for ti, send := range sends[f] {
			if send <= 0 {
				continue
			}
			factor := 1.0
			for _, e := range n.Tunnels[f][ti].Links {
				if shed[e] < factor {
					factor = shed[e]
				}
			}
			df += send * factor
		}
		out[f] = math.Min(df, n.Flows[f].Demand)
	}
	return out
}

// BuildScenarioEvals converts probability-annotated failed-link sets plus an
// optional per-scenario restoration plan (from te.Allocation.RestoredGbps)
// into ScenarioEvals.
func BuildScenarioEvals(probs []float64, failed [][]int, restored []map[int]float64) []ScenarioEval {
	out := make([]ScenarioEval, len(failed))
	for i := range failed {
		out[i] = ScenarioEval{Prob: probs[i], Failed: failed[i]}
		if restored != nil {
			out[i].Restored = restored[i]
		}
	}
	return out
}
