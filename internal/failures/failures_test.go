package failures

import (
	"math"
	"testing"
)

func TestCorpusSize(t *testing.T) {
	c := GenerateCorpus(1)
	if len(c.Tickets) != 600 {
		t.Fatalf("%d tickets, want 600", len(c.Tickets))
	}
	// Deterministic by seed.
	c2 := GenerateCorpus(1)
	for i := range c.Tickets {
		if c.Tickets[i] != c2.Tickets[i] {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestFiberCutDurationCalibration(t *testing.T) {
	// Paper: 50% of fiber cuts > 9h, 10% > 24h.
	c := GenerateCorpus(1)
	cdfs := c.MTTRByCause()
	fc := cdfs[FiberCut]
	if fc == nil || fc.Len() == 0 {
		t.Fatal("no fiber-cut tickets")
	}
	over9 := 1 - fc.At(9)
	over24 := 1 - fc.At(24)
	if math.Abs(over9-0.5) > 0.08 {
		t.Fatalf("P(>9h) = %g, want ~0.5", over9)
	}
	if math.Abs(over24-0.10) > 0.05 {
		t.Fatalf("P(>24h) = %g, want ~0.10", over24)
	}
}

func TestDowntimeShareCalibration(t *testing.T) {
	// Paper: fiber cuts are ~67% of total downtime.
	c := GenerateCorpus(1)
	share := c.DowntimeShare()
	if math.Abs(share[FiberCut]-0.67) > 0.08 {
		t.Fatalf("fiber-cut downtime share %g, want ~0.67", share[FiberCut])
	}
	total := 0.0
	for _, cause := range Causes() {
		total += share[cause]
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %g", total)
	}
}

func TestFiberCutRate(t *testing.T) {
	c := GenerateCorpus(1)
	rate := c.FiberCutsPerMonth() * IncidentsPerTicket
	// Paper: ~16 incidents/month.
	if rate < 12 || rate > 20 {
		t.Fatalf("incident rate %g/month, want ~16", rate)
	}
}

func TestLostCapacityShape(t *testing.T) {
	c := GenerateCorpus(1)
	cdf := c.LostCapacityCDF()
	if cdf.Max() > 8000+1e-9 {
		t.Fatalf("lost capacity %g exceeds 8 Tbps cap", cdf.Max())
	}
	if cdf.Max() < 4000 {
		t.Fatalf("max lost capacity %g, want multi-Tbps tail", cdf.Max())
	}
	if cdf.Percentile(50) < 300 || cdf.Percentile(50) > 3000 {
		t.Fatalf("median lost capacity %g out of plausible range", cdf.Percentile(50))
	}
}

func TestTopSitePairsAreHot(t *testing.T) {
	c := GenerateCorpus(1)
	top := c.TopSitePairs(4)
	if len(top) != 4 {
		t.Fatalf("%d pairs", len(top))
	}
	// The generator concentrates cuts on pairs 0..3; most of the top-4
	// should come from there.
	hot := 0
	for _, p := range top {
		if p < 4 {
			hot++
		}
	}
	if hot < 3 {
		t.Fatalf("only %d of top-4 pairs are hot pairs (%v)", hot, top)
	}
	series := c.LostCapacitySeries(top[0])
	if len(series) == 0 {
		t.Fatal("hottest pair has no series")
	}
	for _, p := range series {
		if p.LostGbps <= 0 || p.DurationHours <= 0 {
			t.Fatalf("bad series point %+v", p)
		}
	}
}

func TestMonthlyDeploymentsCOVIDUptick(t *testing.T) {
	d := MonthlyDeployments(1)
	if len(d) != 18 {
		t.Fatalf("%d months", len(d))
	}
	pre := 0.0
	for _, v := range d[:4] {
		pre += float64(v)
	}
	pre /= 4
	post := 0.0
	for _, v := range d[4:] {
		post += float64(v)
	}
	post /= float64(len(d) - 4)
	if post < pre*1.3 {
		t.Fatalf("no COVID uptick: pre %g post %g", pre, post)
	}
}

func TestCauseString(t *testing.T) {
	if FiberCut.String() != "fiber-cut" || Cause(99).String() != "unknown" {
		t.Fatal("cause strings wrong")
	}
}
