// Package failures synthesises the operational measurement data that
// motivates ARROW (§2.2): a corpus of WAN failure tickets calibrated to the
// statistics the paper reports for Facebook's backbone —
//
//   - 600 tickets over three years (March 2016 – June 2019);
//   - 50% of fiber-cut events last longer than nine hours, 10% over a day;
//   - fiber cuts account for ~67% of total downtime;
//   - ~16 fiber-cut events per month when counting per-fiber incidents;
//   - individual cuts cost up to ~8 Tbps of IP capacity (Fig. 4).
//
// The corpus regenerates Figs. 3 and 4, and MonthlyDeployments regenerates
// the Fig. 21 wavelength-deployment series with its COVID-19 uptick.
package failures

import (
	"math"
	"math/rand"
	"sort"

	"github.com/arrow-te/arrow/internal/stats"
)

// Cause is a failure-ticket root cause.
type Cause int

// Root causes tracked by the ticket corpus.
const (
	FiberCut Cause = iota
	Hardware
	Software
	Power
	Maintenance
	numCauses
)

func (c Cause) String() string {
	switch c {
	case FiberCut:
		return "fiber-cut"
	case Hardware:
		return "hardware"
	case Software:
		return "software"
	case Power:
		return "power"
	case Maintenance:
		return "maintenance"
	}
	return "unknown"
}

// Causes lists all root causes.
func Causes() []Cause {
	return []Cause{FiberCut, Hardware, Software, Power, Maintenance}
}

// Ticket is one failure ticket.
type Ticket struct {
	ID    int
	Cause Cause
	// StartHour is hours since the start of the measurement window.
	StartHour     float64
	DurationHours float64
	// LostGbps is the IP capacity lost (fiber cuts only).
	LostGbps float64
	// SitePair identifies the affected site pair (fiber cuts only).
	SitePair int
}

// Corpus is a synthetic ticket dataset.
type Corpus struct {
	Tickets []Ticket
	// WindowHours is the measurement window length (three years).
	WindowHours float64
	// NumSitePairs is the number of distinct site pairs cuts land on.
	NumSitePairs int
}

// Calibration targets (see package comment).
const (
	corpusTickets   = 600
	windowYears     = 3.25 // March 2016 - June 2019
	fiberCutTickets = 270

	// Fiber-cut duration: lognormal with median 9h and P(>24h) = 0.10
	// => sigma = ln(24/9) / z_0.90 = 0.981 / 1.2816.
	fiberMedianH = 9.0
	fiberSigma   = 0.7655
)

// mix defines the non-fiber causes: counts and duration medians/sigmas,
// chosen so fiber cuts come out near 67% of total downtime.
var mix = []struct {
	cause   Cause
	count   int
	medianH float64
	sigma   float64
}{
	{Hardware, 130, 3.0, 0.8},
	{Software, 90, 1.5, 0.9},
	{Power, 50, 6.0, 0.7},
	{Maintenance, 60, 4.0, 0.5},
}

// GenerateCorpus builds the deterministic synthetic ticket corpus.
func GenerateCorpus(seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{WindowHours: windowYears * 365 * 24, NumSitePairs: 40}
	id := 0
	add := func(cause Cause, medianH, sigma float64) {
		t := Ticket{
			ID:            id,
			Cause:         cause,
			StartHour:     rng.Float64() * c.WindowHours,
			DurationHours: stats.LogNormal(rng, math.Log(medianH), sigma),
		}
		if cause == FiberCut {
			// Lost capacity: heavy-tailed up to ~8 Tbps; hot site pairs
			// (0..3) attract a disproportionate share of cuts (Fig. 4a).
			t.LostGbps = math.Min(8000, stats.LogNormal(rng, math.Log(1200), 0.9))
			if rng.Float64() < 0.45 {
				t.SitePair = rng.Intn(4)
			} else {
				t.SitePair = 4 + rng.Intn(c.NumSitePairs-4)
			}
		}
		id++
		c.Tickets = append(c.Tickets, t)
	}
	for i := 0; i < fiberCutTickets; i++ {
		add(FiberCut, fiberMedianH, fiberSigma)
	}
	for _, m := range mix {
		for i := 0; i < m.count; i++ {
			add(m.cause, m.medianH, m.sigma)
		}
	}
	sort.SliceStable(c.Tickets, func(a, b int) bool { return c.Tickets[a].StartHour < c.Tickets[b].StartHour })
	for i := range c.Tickets {
		c.Tickets[i].ID = i
	}
	return c
}

// MTTRByCause returns the repair-time CDF per root cause (Fig. 3a).
func (c *Corpus) MTTRByCause() map[Cause]*stats.CDF {
	byCause := map[Cause][]float64{}
	for _, t := range c.Tickets {
		byCause[t.Cause] = append(byCause[t.Cause], t.DurationHours)
	}
	out := map[Cause]*stats.CDF{}
	for k, v := range byCause {
		out[k] = stats.NewCDF(v)
	}
	return out
}

// DowntimeShare returns each cause's fraction of total downtime (Fig. 3b).
func (c *Corpus) DowntimeShare() map[Cause]float64 {
	total := 0.0
	byCause := map[Cause]float64{}
	for _, t := range c.Tickets {
		byCause[t.Cause] += t.DurationHours
		total += t.DurationHours
	}
	for k := range byCause {
		byCause[k] /= total
	}
	return byCause
}

// FiberCutsPerMonth returns the average fiber-cut rate. The paper counts
// ~16/month including per-fiber incidents inside multi-fiber tickets; the
// corpus ticket rate is lower, so callers scale by IncidentsPerTicket.
func (c *Corpus) FiberCutsPerMonth() float64 {
	n := 0
	for _, t := range c.Tickets {
		if t.Cause == FiberCut {
			n++
		}
	}
	months := c.WindowHours / (30 * 24)
	return float64(n) / months
}

// IncidentsPerTicket is the paper-calibrated multiplier between fiber-cut
// tickets and individual fiber-cut incidents (16/month over ~7 tickets/month).
const IncidentsPerTicket = 2.3

// LostCapacityCDF returns the CDF of lost IP capacity per cut (Fig. 4b).
func (c *Corpus) LostCapacityCDF() *stats.CDF {
	var xs []float64
	for _, t := range c.Tickets {
		if t.Cause == FiberCut {
			xs = append(xs, t.LostGbps)
		}
	}
	return stats.NewCDF(xs)
}

// SeriesPoint is one event of a site pair's lost-capacity time series.
type SeriesPoint struct {
	StartHour     float64
	DurationHours float64
	LostGbps      float64
}

// LostCapacitySeries returns the Fig. 4a time series for a site pair.
func (c *Corpus) LostCapacitySeries(sitePair int) []SeriesPoint {
	var out []SeriesPoint
	for _, t := range c.Tickets {
		if t.Cause == FiberCut && t.SitePair == sitePair {
			out = append(out, SeriesPoint{t.StartHour, t.DurationHours, t.LostGbps})
		}
	}
	return out
}

// TopSitePairs returns the site pairs with the most lost capacity-hours.
func (c *Corpus) TopSitePairs(k int) []int {
	score := map[int]float64{}
	for _, t := range c.Tickets {
		if t.Cause == FiberCut {
			score[t.SitePair] += t.LostGbps * t.DurationHours
		}
	}
	var pairs []int
	for p := range score {
		pairs = append(pairs, p)
	}
	sort.SliceStable(pairs, func(a, b int) bool { return score[pairs[a]] > score[pairs[b]] })
	if k > len(pairs) {
		k = len(pairs)
	}
	return pairs[:k]
}

// MonthlyDeployments regenerates the Fig. 21 series: wavelengths deployed
// per month from November 2019 through April 2021, with the COVID-19
// traffic surge driving increased deployments from March 2020.
func MonthlyDeployments(seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	const months = 18 // Nov 2019 .. Apr 2021
	out := make([]int, months)
	for m := 0; m < months; m++ {
		base := 120.0
		if m >= 4 { // March 2020 onward
			base = 220 + 60*math.Sin(float64(m-4)/3)
		}
		out[m] = int(base + rng.Float64()*60)
	}
	return out
}
