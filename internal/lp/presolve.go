package lp

import (
	"fmt"
	"math"
)

// Presolved wraps a model with standard LP presolve reductions applied:
//
//   - empty rows are checked against their rhs and dropped;
//   - fixed variables (lb == ub) are substituted into rows and objective;
//   - singleton rows (one variable) become bound tightenings;
//   - variables appearing in no row are fixed at their objective-best bound.
//
// Reductions iterate to a fixpoint. Solve the reduced model and call
// Restore to map its solution back to the original variable space.
//
// Presolve can itself detect infeasibility or unboundedness; in that case
// Status holds the verdict and Reduced is nil.
type Presolved struct {
	Original *Model
	Reduced  *Model
	// Status is StatusOptimal when a reduced model was produced, otherwise
	// the verdict detected during presolve.
	Status Status

	// fixed[j] holds the forced value of original variable j (NaN = free).
	fixed []float64
	// colMap[j] is original var j's index in the reduced model (-1 fixed).
	colMap []int
}

// NewPresolved runs the reductions on a copy of m.
func NewPresolved(m *Model) *Presolved {
	p := &Presolved{Original: m, Status: StatusOptimal}
	n := m.NumVars()
	lb := append([]float64(nil), m.lb...)
	ub := append([]float64(nil), m.ub...)
	fixed := make([]float64, n)
	for j := range fixed {
		fixed[j] = math.NaN()
	}

	type prow struct {
		terms []Term
		sense Sense
		rhs   float64
		name  string
		dead  bool
	}
	rows := make([]prow, m.NumConstrs())
	for i, r := range m.rows {
		rows[i] = prow{terms: append([]Term(nil), r.terms...), sense: r.sense, rhs: r.rhs, name: r.name}
	}

	appears := make([]int, n)
	countAppearances := func() {
		for j := range appears {
			appears[j] = 0
		}
		for _, r := range rows {
			if r.dead {
				continue
			}
			for _, t := range r.terms {
				appears[t.Var]++
			}
		}
	}

	const tol = 1e-9
	changed := true
	for changed {
		changed = false
		// Fix variables with collapsed bounds.
		for j := 0; j < n; j++ {
			if !math.IsNaN(fixed[j]) {
				continue
			}
			if lb[j] > ub[j]+tol {
				p.Status = StatusInfeasible
				return p
			}
			if ub[j]-lb[j] <= tol {
				fixed[j] = lb[j]
				changed = true
			}
		}
		// Substitute fixed variables into rows.
		for ri := range rows {
			r := &rows[ri]
			if r.dead {
				continue
			}
			w := 0
			for _, t := range r.terms {
				if v := fixed[t.Var]; !math.IsNaN(v) {
					r.rhs -= t.Coef * v
					changed = true
					continue
				}
				r.terms[w] = t
				w++
			}
			r.terms = r.terms[:w]
			// Empty row: verify and drop.
			if len(r.terms) == 0 {
				sat := true
				switch r.sense {
				case LE:
					sat = 0 <= r.rhs+tol
				case GE:
					sat = 0 >= r.rhs-tol
				case EQ:
					sat = math.Abs(r.rhs) <= tol
				}
				if !sat {
					p.Status = StatusInfeasible
					return p
				}
				r.dead = true
				continue
			}
			// Singleton row: bound tightening.
			if len(r.terms) == 1 {
				t := r.terms[0]
				if math.Abs(t.Coef) < tol {
					continue
				}
				v := r.rhs / t.Coef
				switch {
				case r.sense == EQ:
					lb[t.Var] = math.Max(lb[t.Var], v)
					ub[t.Var] = math.Min(ub[t.Var], v)
				case (r.sense == LE) == (t.Coef > 0): // x <= v
					ub[t.Var] = math.Min(ub[t.Var], v)
				default: // x >= v
					lb[t.Var] = math.Max(lb[t.Var], v)
				}
				r.dead = true
				changed = true
			}
		}
		// Unconstrained columns: fix at objective-best bound. Bounds may
		// have just been tightened by singleton rows, so re-verify
		// consistency before fixing (a tightening that crossed the bounds
		// means the original model is infeasible).
		countAppearances()
		for j := 0; j < n; j++ {
			if !math.IsNaN(fixed[j]) || appears[j] > 0 {
				continue
			}
			if lb[j] > ub[j]+tol {
				p.Status = StatusInfeasible
				return p
			}
			c := m.obj[j]
			if m.maximize {
				c = -c
			}
			// Minimising c*x over [lb, ub].
			switch {
			case c > tol:
				if math.IsInf(lb[j], -1) {
					p.Status = StatusUnbounded
					return p
				}
				fixed[j] = lb[j]
			case c < -tol:
				if math.IsInf(ub[j], 1) {
					p.Status = StatusUnbounded
					return p
				}
				fixed[j] = ub[j]
			default:
				v := lb[j]
				if math.IsInf(v, -1) {
					v = math.Min(ub[j], 0)
				}
				if math.IsInf(v, 1) || math.IsInf(v, -1) {
					v = 0
				}
				fixed[j] = v
			}
			changed = true
		}
	}

	// Build the reduced model.
	red := NewModel(m.name + "-presolved")
	red.SetMaximize(m.maximize)
	p.colMap = make([]int, n)
	for j := 0; j < n; j++ {
		if !math.IsNaN(fixed[j]) {
			p.colMap[j] = -1
			continue
		}
		p.colMap[j] = int(red.AddVar(lb[j], ub[j], m.obj[j], m.varName[j]))
	}
	for _, r := range rows {
		if r.dead {
			continue
		}
		var e Expr
		for _, t := range r.terms {
			e = e.Plus(t.Coef, Var(p.colMap[t.Var]))
		}
		red.AddConstr(e, r.sense, r.rhs, r.name)
	}
	p.Reduced = red
	p.fixed = fixed
	return p
}

// Stats reports the reduction achieved.
func (p *Presolved) Stats() string {
	if p.Reduced == nil {
		return fmt.Sprintf("presolve verdict: %v", p.Status)
	}
	return fmt.Sprintf("presolve: %d->%d vars, %d->%d rows",
		p.Original.NumVars(), p.Reduced.NumVars(),
		p.Original.NumConstrs(), p.Reduced.NumConstrs())
}

// Restore maps a reduced-model solution vector back to original variables.
func (p *Presolved) Restore(reducedX []float64) []float64 {
	out := make([]float64, p.Original.NumVars())
	for j := range out {
		if p.colMap[j] >= 0 {
			out[j] = reducedX[p.colMap[j]]
		} else {
			out[j] = p.fixed[j]
		}
	}
	return out
}

// SolvePresolved runs presolve, solves the reduced model, and returns the
// solution in the original variable space. Semantics match Solve.
func SolvePresolved(m *Model, opts *Options) (*Solution, error) {
	p := NewPresolved(m)
	if p.Reduced == nil {
		return &Solution{Status: p.Status}, nil
	}
	if p.Reduced.NumVars() == 0 {
		// Everything fixed: evaluate directly.
		x := p.Restore(nil)
		if v := m.MaxViolation(x); v > 1e-7 {
			return &Solution{Status: StatusInfeasible}, nil
		}
		return &Solution{Status: StatusOptimal, X: x, Objective: m.ObjValue(x)}, nil
	}
	sol, err := Solve(p.Reduced, opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != StatusOptimal {
		return &Solution{Status: sol.Status, Iterations: sol.Iterations}, nil
	}
	x := p.Restore(sol.X)
	return &Solution{Status: StatusOptimal, X: x, Objective: m.ObjValue(x), Iterations: sol.Iterations}, nil
}
