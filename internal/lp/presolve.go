package lp

import (
	"fmt"
	"math"
)

// Presolved wraps a model with standard LP presolve reductions applied:
//
//   - empty rows are checked against their rhs and dropped;
//   - fixed variables (lb == ub) are substituted into rows and objective;
//   - singleton rows (one variable) become bound tightenings;
//   - variables appearing in no row are fixed at their objective-best bound.
//
// Reductions iterate to a fixpoint. Solve the reduced model and call
// Restore to map its solution back to the original variable space.
//
// Presolve can itself detect infeasibility or unboundedness; in that case
// Status holds the verdict and Reduced is nil.
type Presolved struct {
	Original *Model
	Reduced  *Model
	// Status is StatusOptimal when a reduced model was produced, otherwise
	// the verdict detected during presolve.
	Status Status

	// fixed[j] holds the forced value of original variable j (NaN = free).
	fixed []float64
	// colMap[j] is original var j's index in the reduced model (-1 fixed).
	colMap []int
	// rowMap[i] is original row i's index in the reduced model (-1 dropped).
	rowMap []int
	// lbRow[j]/ubRow[j] record which dropped singleton row produced original
	// variable j's final lower/upper bound (-1 when the bound is native).
	// RestoreDuals uses this provenance to hand the bound's dual multiplier
	// back to the row that owns it.
	lbRow, ubRow []int
}

// NewPresolved runs the reductions on a copy of m.
func NewPresolved(m *Model) *Presolved {
	p := &Presolved{Original: m, Status: StatusOptimal}
	n := m.NumVars()
	lb := append([]float64(nil), m.lb...)
	ub := append([]float64(nil), m.ub...)
	fixed := make([]float64, n)
	p.lbRow = make([]int, n)
	p.ubRow = make([]int, n)
	for j := range fixed {
		fixed[j] = math.NaN()
		p.lbRow[j], p.ubRow[j] = -1, -1
	}

	type prow struct {
		terms []Term
		sense Sense
		rhs   float64
		name  string
		dead  bool
	}
	rows := make([]prow, m.NumConstrs())
	for i, r := range m.rows {
		rows[i] = prow{terms: append([]Term(nil), r.terms...), sense: r.sense, rhs: r.rhs, name: r.name}
	}

	appears := make([]int, n)
	countAppearances := func() {
		for j := range appears {
			appears[j] = 0
		}
		for _, r := range rows {
			if r.dead {
				continue
			}
			for _, t := range r.terms {
				appears[t.Var]++
			}
		}
	}

	const tol = 1e-9
	changed := true
	for changed {
		changed = false
		// Fix variables with collapsed bounds.
		for j := 0; j < n; j++ {
			if !math.IsNaN(fixed[j]) {
				continue
			}
			if lb[j] > ub[j]+tol {
				p.Status = StatusInfeasible
				return p
			}
			if ub[j]-lb[j] <= tol {
				fixed[j] = lb[j]
				changed = true
			}
		}
		// Substitute fixed variables into rows.
		for ri := range rows {
			r := &rows[ri]
			if r.dead {
				continue
			}
			w := 0
			for _, t := range r.terms {
				if v := fixed[t.Var]; !math.IsNaN(v) {
					r.rhs -= t.Coef * v
					changed = true
					continue
				}
				r.terms[w] = t
				w++
			}
			r.terms = r.terms[:w]
			// Empty row: verify and drop.
			if len(r.terms) == 0 {
				sat := true
				switch r.sense {
				case LE:
					sat = 0 <= r.rhs+tol
				case GE:
					sat = 0 >= r.rhs-tol
				case EQ:
					sat = math.Abs(r.rhs) <= tol
				}
				if !sat {
					p.Status = StatusInfeasible
					return p
				}
				r.dead = true
				continue
			}
			// Singleton row: bound tightening.
			if len(r.terms) == 1 {
				t := r.terms[0]
				if math.Abs(t.Coef) < tol {
					continue
				}
				// Strict-improvement updates (equivalent to Max/Min) so bound
				// provenance only points at rows that actually tightened: a
				// row merely matching the existing bound leaves the dual
				// multiplier with the bound itself.
				v := r.rhs / t.Coef
				switch {
				case r.sense == EQ:
					if v > lb[t.Var] {
						lb[t.Var], p.lbRow[t.Var] = v, ri
					}
					if v < ub[t.Var] {
						ub[t.Var], p.ubRow[t.Var] = v, ri
					}
				case (r.sense == LE) == (t.Coef > 0): // x <= v
					if v < ub[t.Var] {
						ub[t.Var], p.ubRow[t.Var] = v, ri
					}
				default: // x >= v
					if v > lb[t.Var] {
						lb[t.Var], p.lbRow[t.Var] = v, ri
					}
				}
				r.dead = true
				changed = true
			}
		}
		// Unconstrained columns: fix at objective-best bound. Bounds may
		// have just been tightened by singleton rows, so re-verify
		// consistency before fixing (a tightening that crossed the bounds
		// means the original model is infeasible).
		countAppearances()
		for j := 0; j < n; j++ {
			if !math.IsNaN(fixed[j]) || appears[j] > 0 {
				continue
			}
			if lb[j] > ub[j]+tol {
				p.Status = StatusInfeasible
				return p
			}
			c := m.obj[j]
			if m.maximize {
				c = -c
			}
			// Minimising c*x over [lb, ub].
			switch {
			case c > tol:
				if math.IsInf(lb[j], -1) {
					p.Status = StatusUnbounded
					return p
				}
				fixed[j] = lb[j]
			case c < -tol:
				if math.IsInf(ub[j], 1) {
					p.Status = StatusUnbounded
					return p
				}
				fixed[j] = ub[j]
			default:
				v := lb[j]
				if math.IsInf(v, -1) {
					v = math.Min(ub[j], 0)
				}
				if math.IsInf(v, 1) || math.IsInf(v, -1) {
					v = 0
				}
				fixed[j] = v
			}
			changed = true
		}
	}

	// Build the reduced model.
	red := NewModel(m.name + "-presolved")
	red.SetMaximize(m.maximize)
	p.colMap = make([]int, n)
	for j := 0; j < n; j++ {
		if !math.IsNaN(fixed[j]) {
			p.colMap[j] = -1
			continue
		}
		p.colMap[j] = int(red.AddVar(lb[j], ub[j], m.obj[j], m.varName[j]))
	}
	p.rowMap = make([]int, len(rows))
	for ri, r := range rows {
		if r.dead {
			p.rowMap[ri] = -1
			continue
		}
		var e Expr
		for _, t := range r.terms {
			e = e.Plus(t.Coef, Var(p.colMap[t.Var]))
		}
		p.rowMap[ri] = int(red.AddConstr(e, r.sense, r.rhs, r.name))
	}
	p.Reduced = red
	p.fixed = fixed
	return p
}

// Stats reports the reduction achieved.
func (p *Presolved) Stats() string {
	if p.Reduced == nil {
		return fmt.Sprintf("presolve verdict: %v", p.Status)
	}
	return fmt.Sprintf("presolve: %d->%d vars, %d->%d rows",
		p.Original.NumVars(), p.Reduced.NumVars(),
		p.Original.NumConstrs(), p.Reduced.NumConstrs())
}

// Restore maps a reduced-model solution vector back to original variables.
func (p *Presolved) Restore(reducedX []float64) []float64 {
	out := make([]float64, p.Original.NumVars())
	for j := range out {
		if p.colMap[j] >= 0 {
			out[j] = reducedX[p.colMap[j]]
		} else {
			out[j] = p.fixed[j]
		}
	}
	return out
}

// RestoreDuals maps a reduced-model solution's duals back to the original
// constraint space. Rows surviving presolve take their dual directly; dead
// empty rows get zero. A dropped singleton row that produced the binding
// bound of its variable receives the variable's reduced cost divided by its
// coefficient — moving the dual mass from the synthetic bound back to the
// row that owns it, which preserves both dual stationarity
// (c_j = sum_i y_i a_ij + d_j) and strong duality against the ORIGINAL
// model. Rows whose variable ended up fixed (pinned variables admit any
// reduced cost) keep a zero dual. Returns nil when the reduced solution
// carries no duals.
func (p *Presolved) RestoreDuals(red *Solution) []float64 {
	if p.Reduced == nil || red == nil || red.Duals == nil {
		return nil
	}
	m := p.Original
	y := make([]float64, m.NumConstrs())
	for i, ri := range p.rowMap {
		if ri >= 0 {
			y[i] = red.Duals[ri]
		}
	}
	// Reduced costs of the original columns under the mapped duals.
	d := append([]float64(nil), m.obj...)
	for i := range m.rows {
		if y[i] == 0 {
			continue
		}
		for _, t := range m.rows[i].terms {
			d[t.Var] -= y[i] * t.Coef
		}
	}
	const tol = 1e-6
	for j := 0; j < m.NumVars(); j++ {
		rj := p.colMap[j]
		if rj < 0 {
			continue
		}
		xj := red.X[rj]
		lb, ub := p.Reduced.Bounds(Var(rj))
		scale := tol * (1 + math.Abs(xj))
		row := -1
		switch {
		case p.lbRow[j] >= 0 && !math.IsInf(lb, -1) && math.Abs(xj-lb) <= scale:
			row = p.lbRow[j]
		case p.ubRow[j] >= 0 && !math.IsInf(ub, 1) && math.Abs(xj-ub) <= scale:
			row = p.ubRow[j]
		}
		if row < 0 {
			continue
		}
		coef := 0.0
		for _, t := range m.rows[row].terms {
			if int(t.Var) == j {
				coef += t.Coef
			}
		}
		if coef != 0 {
			y[row] = d[j] / coef
		}
	}
	return y
}

// SolvePresolved runs presolve, solves the reduced model, and returns the
// solution in the original variable space (including Duals mapped back via
// RestoreDuals). Semantics match Solve.
func SolvePresolved(m *Model, opts *Options) (*Solution, error) {
	p := NewPresolved(m)
	if p.Reduced == nil {
		return &Solution{Status: p.Status}, nil
	}
	if p.Reduced.NumVars() == 0 {
		// Everything fixed: evaluate directly. Every row is dead (their
		// variables were all substituted away), so zero duals are exact:
		// each pinned variable's bound term absorbs its full cost.
		x := p.Restore(nil)
		if v := m.MaxViolation(x); v > 1e-7 {
			return &Solution{Status: StatusInfeasible}, nil
		}
		return &Solution{
			Status: StatusOptimal, X: x, Objective: m.ObjValue(x),
			Duals: make([]float64, m.NumConstrs()),
		}, nil
	}
	sol, err := Solve(p.Reduced, opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != StatusOptimal {
		return &Solution{Status: sol.Status, Iterations: sol.Iterations}, nil
	}
	x := p.Restore(sol.X)
	return &Solution{
		Status: StatusOptimal, X: x, Objective: m.ObjValue(x),
		Iterations: sol.Iterations, Duals: p.RestoreDuals(sol),
	}, nil
}
