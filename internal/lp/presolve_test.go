package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestPresolveFixedAndSingleton(t *testing.T) {
	m := NewModel("pres")
	m.SetMaximize(true)
	x := m.AddVar(3, 3, 1, "x")                               // fixed
	y := m.AddVar(0, Inf, 2, "y")                             // bounded by singleton row
	z := m.AddVar(0, 5, 4, "z")                               // unconstrained column
	m.AddConstr(Expr{}.Plus(1, y), LE, 7, "ycap")             // singleton
	m.AddConstr(Expr{}.Plus(1, x).Plus(0, y), LE, 10, "dull") // becomes empty after substitution
	_ = z
	p := NewPresolved(m)
	if p.Status != StatusOptimal || p.Reduced == nil {
		t.Fatalf("presolve status %v", p.Status)
	}
	// The singleton row pins y's bound, after which y leaves every row and
	// is fixed at its objective-best bound: the model reduces to nothing.
	if p.Reduced.NumVars() != 0 || p.Reduced.NumConstrs() != 0 {
		t.Fatalf("reduced to %d vars %d rows: %s", p.Reduced.NumVars(), p.Reduced.NumConstrs(), p.Stats())
	}
	sol, err := SolvePresolved(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// x=3, y=7, z=5 -> 3 + 14 + 20 = 37.
	if math.Abs(sol.Objective-37) > 1e-9 {
		t.Fatalf("objective %g want 37", sol.Objective)
	}
	if sol.X[x] != 3 || sol.X[y] != 7 || sol.X[z] != 5 {
		t.Fatalf("solution %v", sol.X)
	}
}

func TestPresolveDetectsInfeasibility(t *testing.T) {
	m := NewModel("pres-infeas")
	x := m.AddVar(2, 2, 0, "x")
	m.AddConstr(Expr{}.Plus(1, x), LE, 1, "impossible")
	sol, err := SolvePresolved(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status %v", sol.Status)
	}
	// Crossed bounds.
	m2 := NewModel("crossed")
	m2.AddVar(5, 2, 0, "x")
	p := NewPresolved(m2)
	if p.Status != StatusInfeasible {
		t.Fatalf("status %v", p.Status)
	}
}

func TestPresolveDetectsUnbounded(t *testing.T) {
	m := NewModel("pres-unbounded")
	m.SetMaximize(true)
	m.AddVar(0, Inf, 1, "free-rider") // in no row
	sol, err := SolvePresolved(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status %v", sol.Status)
	}
}

// TestPresolveMatchesDirectSolve: property check on random LPs.
func TestPresolveMatchesDirectSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(4)
		m := NewModel("pres-rand")
		m.SetMaximize(rng.Intn(2) == 0)
		vars := make([]Var, n)
		for j := range vars {
			lo := float64(rng.Intn(5) - 2)
			hi := lo + float64(rng.Intn(5))
			if rng.Float64() < 0.2 {
				hi = lo // fixed variable
			}
			vars[j] = m.AddVar(lo, hi, float64(rng.Intn(7)-3), "v")
		}
		for i := 0; i < rng.Intn(4); i++ {
			var e Expr
			// Occasionally a singleton or empty row.
			terms := rng.Intn(n + 1)
			for k := 0; k < terms; k++ {
				e = e.Plus(float64(rng.Intn(5)-2), vars[rng.Intn(n)])
			}
			m.AddConstr(e, []Sense{LE, GE, EQ}[rng.Intn(3)], float64(rng.Intn(13)-4), "r")
		}
		direct, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d direct: %v", trial, err)
		}
		pre, err := SolvePresolved(m, nil)
		if err != nil {
			t.Fatalf("trial %d presolved: %v", trial, err)
		}
		if direct.Status != pre.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, direct.Status, pre.Status)
		}
		if direct.Status == StatusOptimal {
			if math.Abs(direct.Objective-pre.Objective) > 1e-6*(1+math.Abs(direct.Objective)) {
				t.Fatalf("trial %d: objective %g vs %g", trial, direct.Objective, pre.Objective)
			}
			if v := m.MaxViolation(pre.X); v > 1e-6 {
				t.Fatalf("trial %d: restored solution violates by %g", trial, v)
			}
		}
	}
}

// TestPresolveDualsKnown pins RestoreDuals on a model exercising every
// reduction that moves dual mass: a fixed column substituted away, an
// unconstrained column fixed at its objective-best bound, and a singleton
// row whose bound tightening ends up binding (its dual must come back as
// the variable's reduced cost over the row coefficient).
func TestPresolveDualsKnown(t *testing.T) {
	m := NewModel("pres-duals")
	m.SetMaximize(true)
	x := m.AddVar(0, 10, 3, "x")
	y := m.AddVar(0, 10, 2, "y")
	f := m.AddVar(2, 2, 5, "f") // fixed: substituted into r1
	m.AddVar(0, 4, 1, "w")      // appears in no row: fixed at ub
	r1 := m.AddConstr(Expr{}.Plus(1, x).Plus(1, y).Plus(1, f), LE, 8, "r1")
	r2 := m.AddConstr(Expr{}.Plus(2, x), LE, 6, "r2") // singleton: x <= 3, binding

	sol, err := SolvePresolved(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Optimum: x = 3 (r2), y = 3 (r1 binding after f's substitution), f = 2,
	// w = 4. Objective 3*3 + 2*3 + 5*2 + 1*4 = 29.
	if math.Abs(sol.Objective-29) > 1e-7 {
		t.Fatalf("objective %g, want 29", sol.Objective)
	}
	for i, want := range []float64{3, 3, 2, 4} {
		if math.Abs(sol.X[i]-want) > 1e-7 {
			t.Fatalf("x[%d] = %g, want %g", i, sol.X[i], want)
		}
	}
	if len(sol.Duals) != m.NumConstrs() {
		t.Fatalf("%d duals for %d constraints", len(sol.Duals), m.NumConstrs())
	}
	// y is strictly interior-of-bounds basic on r1, so dual(r1) = c_y = 2.
	// x sits on the synthetic bound r2 created; its reduced cost 3 - 2 = 1
	// must come back on r2 scaled by the coefficient: dual(r2) = 1/2.
	if math.Abs(sol.Duals[r1]-2) > 1e-7 {
		t.Fatalf("dual(r1) = %g, want 2", sol.Duals[r1])
	}
	if math.Abs(sol.Duals[r2]-0.5) > 1e-7 {
		t.Fatalf("dual(r2) = %g, want 0.5", sol.Duals[r2])
	}
	// The advertised semantics: duals are rhs sensitivities of the ORIGINAL
	// model. Perturb each rhs and compare finite differences.
	for ci, want := range map[Constr]float64{r1: sol.Duals[r1], r2: sol.Duals[r2]} {
		const eps = 1e-5
		pert := m.Clone()
		pert.SetRHS(ci, pert.RHS(ci)+eps)
		psol, err := Solve(pert, nil)
		if err != nil || psol.Status != StatusOptimal {
			t.Fatalf("perturbed %s: %v %v", m.ConstrName(ci), err, psol)
		}
		got := (psol.Objective - sol.Objective) / eps
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("dual(%s) = %g but rhs sensitivity is %g", m.ConstrName(ci), want, got)
		}
	}
}

// TestPresolveDualsRoundTrip checks RestoreDuals generically: on random
// models with fixed and removed columns, the mapped duals must satisfy
// complementary slackness and dual stationarity against the ORIGINAL model
// (surviving interior variables price to zero under the mapped row duals;
// columns presolve pinned are exempt per RestoreDuals' documented contract).
func TestPresolveDualsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(3)
		m := NewModel("pres-duals-rand")
		m.SetMaximize(rng.Intn(2) == 0)
		vars := make([]Var, n)
		for j := range vars {
			lo := float64(rng.Intn(4) - 1)
			hi := lo + float64(rng.Intn(6))
			if rng.Float64() < 0.25 {
				hi = lo // fixed column: presolve substitutes it away
			}
			vars[j] = m.AddVar(lo, hi, float64(rng.Intn(7)-3), "v")
		}
		rows := 1 + rng.Intn(3)
		for i := 0; i < rows; i++ {
			var e Expr
			terms := 1 + rng.Intn(n) // include singletons
			for k := 0; k < terms; k++ {
				e = e.Plus(float64(rng.Intn(5)-2), vars[rng.Intn(n)])
			}
			m.AddConstr(e, []Sense{LE, GE}[rng.Intn(2)], float64(rng.Intn(11)-3), "r")
		}
		p := NewPresolved(m)
		if p.Reduced == nil || p.Reduced.NumVars() == 0 {
			continue
		}
		red, err := Solve(p.Reduced, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if red.Status != StatusOptimal || red.Duals == nil {
			continue
		}
		sol := &Solution{Status: StatusOptimal, X: p.Restore(red.X), Duals: p.RestoreDuals(red)}
		if sol.Duals == nil {
			t.Fatalf("trial %d: RestoreDuals returned nil for an optimal reduced solve", trial)
		}
		checked++
		y := sol.Duals
		const tol = 1e-6
		// Complementary slackness: a nonzero dual means an active row.
		for i := 0; i < m.NumConstrs(); i++ {
			if math.Abs(y[i]) <= tol {
				continue
			}
			act := m.EvalExpr(Constr(i), sol.X) - m.RHS(Constr(i))
			if math.Abs(act) > 1e-5 {
				t.Fatalf("trial %d: row %d has dual %g but activity gap %g", trial, i, y[i], act)
			}
		}
		// Stationarity for strictly interior variables: reduced cost zero.
		for j := 0; j < m.NumVars(); j++ {
			lo, hi := m.Bounds(Var(j))
			if sol.X[j]-lo <= 1e-6 || hi-sol.X[j] <= 1e-6 {
				continue
			}
			if p.colMap[j] < 0 {
				// Presolve pinned the column (bound tightenings collapsed its
				// range); pinned columns admit any reduced cost and their
				// dropped rows keep a zero dual by documented contract.
				continue
			}
			d := m.Obj(Var(j))
			for i := 0; i < m.NumConstrs(); i++ {
				for _, tm := range rowTerms(m, i) {
					if int(tm.Var) == j {
						d -= y[i] * tm.Coef
					}
				}
			}
			if math.Abs(d) > 1e-5 {
				t.Fatalf("trial %d: interior var %d has reduced cost %g under restored duals", trial, j, d)
			}
		}
	}
	if checked < 30 {
		t.Fatalf("only %d usable trials", checked)
	}
}

// rowTerms exposes a row's terms to tests without widening the public API.
func rowTerms(m *Model, i int) []Term { return m.rows[i].terms }
