package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestPresolveFixedAndSingleton(t *testing.T) {
	m := NewModel("pres")
	m.SetMaximize(true)
	x := m.AddVar(3, 3, 1, "x")                               // fixed
	y := m.AddVar(0, Inf, 2, "y")                             // bounded by singleton row
	z := m.AddVar(0, 5, 4, "z")                               // unconstrained column
	m.AddConstr(Expr{}.Plus(1, y), LE, 7, "ycap")             // singleton
	m.AddConstr(Expr{}.Plus(1, x).Plus(0, y), LE, 10, "dull") // becomes empty after substitution
	_ = z
	p := NewPresolved(m)
	if p.Status != StatusOptimal || p.Reduced == nil {
		t.Fatalf("presolve status %v", p.Status)
	}
	// The singleton row pins y's bound, after which y leaves every row and
	// is fixed at its objective-best bound: the model reduces to nothing.
	if p.Reduced.NumVars() != 0 || p.Reduced.NumConstrs() != 0 {
		t.Fatalf("reduced to %d vars %d rows: %s", p.Reduced.NumVars(), p.Reduced.NumConstrs(), p.Stats())
	}
	sol, err := SolvePresolved(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// x=3, y=7, z=5 -> 3 + 14 + 20 = 37.
	if math.Abs(sol.Objective-37) > 1e-9 {
		t.Fatalf("objective %g want 37", sol.Objective)
	}
	if sol.X[x] != 3 || sol.X[y] != 7 || sol.X[z] != 5 {
		t.Fatalf("solution %v", sol.X)
	}
}

func TestPresolveDetectsInfeasibility(t *testing.T) {
	m := NewModel("pres-infeas")
	x := m.AddVar(2, 2, 0, "x")
	m.AddConstr(Expr{}.Plus(1, x), LE, 1, "impossible")
	sol, err := SolvePresolved(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status %v", sol.Status)
	}
	// Crossed bounds.
	m2 := NewModel("crossed")
	m2.AddVar(5, 2, 0, "x")
	p := NewPresolved(m2)
	if p.Status != StatusInfeasible {
		t.Fatalf("status %v", p.Status)
	}
}

func TestPresolveDetectsUnbounded(t *testing.T) {
	m := NewModel("pres-unbounded")
	m.SetMaximize(true)
	m.AddVar(0, Inf, 1, "free-rider") // in no row
	sol, err := SolvePresolved(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status %v", sol.Status)
	}
}

// TestPresolveMatchesDirectSolve: property check on random LPs.
func TestPresolveMatchesDirectSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(4)
		m := NewModel("pres-rand")
		m.SetMaximize(rng.Intn(2) == 0)
		vars := make([]Var, n)
		for j := range vars {
			lo := float64(rng.Intn(5) - 2)
			hi := lo + float64(rng.Intn(5))
			if rng.Float64() < 0.2 {
				hi = lo // fixed variable
			}
			vars[j] = m.AddVar(lo, hi, float64(rng.Intn(7)-3), "v")
		}
		for i := 0; i < rng.Intn(4); i++ {
			var e Expr
			// Occasionally a singleton or empty row.
			terms := rng.Intn(n + 1)
			for k := 0; k < terms; k++ {
				e = e.Plus(float64(rng.Intn(5)-2), vars[rng.Intn(n)])
			}
			m.AddConstr(e, []Sense{LE, GE, EQ}[rng.Intn(3)], float64(rng.Intn(13)-4), "r")
		}
		direct, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d direct: %v", trial, err)
		}
		pre, err := SolvePresolved(m, nil)
		if err != nil {
			t.Fatalf("trial %d presolved: %v", trial, err)
		}
		if direct.Status != pre.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, direct.Status, pre.Status)
		}
		if direct.Status == StatusOptimal {
			if math.Abs(direct.Objective-pre.Objective) > 1e-6*(1+math.Abs(direct.Objective)) {
				t.Fatalf("trial %d: objective %g vs %g", trial, direct.Objective, pre.Objective)
			}
			if v := m.MaxViolation(pre.X); v > 1e-6 {
				t.Fatalf("trial %d: restored solution violates by %g", trial, v)
			}
		}
	}
}
