package lp

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/arrow-te/arrow/internal/obs"
)

// healthFakeRecorder captures the flush for assertions without importing a
// real obs.Registry.
type healthFakeRecorder struct {
	counters map[string]int64
	observed map[string][]float64
}

func newHealthFakeRecorder() *healthFakeRecorder {
	return &healthFakeRecorder{counters: map[string]int64{}, observed: map[string][]float64{}}
}

func (f *healthFakeRecorder) Add(name string, delta int64) { f.counters[name] += delta }
func (f *healthFakeRecorder) Observe(name string, v float64) {
	f.observed[name] = append(f.observed[name], v)
}
func (f *healthFakeRecorder) Gauge(string, float64)                            {}
func (f *healthFakeRecorder) SpanDone(string, int64, time.Time, time.Duration) {}

// healthNetworkModel is a flow LP big enough to pivot for a while.
func healthNetworkModel(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	const nodes = 40
	type arc struct {
		from, to int
		v        Var
	}
	m := NewModel("health-network")
	m.SetMaximize(true)
	var arcs []arc
	for i := 0; i < nodes; i++ {
		for d := 1; d <= 3; d++ {
			j := (i + d) % nodes
			v := m.AddVar(0, float64(5+rng.Intn(10)), 0, "arc")
			arcs = append(arcs, arc{i, j, v})
		}
	}
	t0 := m.AddVar(0, Inf, 1, "value")
	for n := 0; n < nodes; n++ {
		var e Expr
		for _, a := range arcs {
			if a.to == n {
				e = e.Plus(1, a.v)
			}
			if a.from == n {
				e = e.Plus(-1, a.v)
			}
		}
		switch n {
		case 0:
			e = e.Plus(1, t0)
		case nodes / 2:
			e = e.Plus(-1, t0)
		}
		m.AddConstr(e, EQ, 0, "conserve")
	}
	return m
}

// TestHealthProbesRecordAndStayClean: probes on a healthy solve produce
// samples, a populated report, zero anomalies, and tiny residuals.
func TestHealthProbesRecordAndStayClean(t *testing.T) {
	rec := newHealthFakeRecorder()
	sol, err := Solve(healthNetworkModel(35), &Options{HealthEvery: 4, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	h := sol.Health
	if h == nil {
		t.Fatal("Solution.Health nil with HealthEvery set")
	}
	if h.Every != 4 {
		t.Fatalf("Every = %d, want 4", h.Every)
	}
	if len(h.Samples) == 0 {
		t.Fatal("no health samples on a solve with many pivots")
	}
	if len(h.Anomalies) != 0 {
		t.Fatalf("healthy solve produced anomalies: %v", h.Anomalies)
	}
	if h.MaxResidual > 1e-6 {
		t.Fatalf("max residual %g on a healthy solve", h.MaxResidual)
	}
	for i, s := range h.Samples {
		if s.Iter%4 != 0 {
			t.Fatalf("sample %d at iter %d, want multiples of 4", i, s.Iter)
		}
		if s.Phase != 1 && s.Phase != 2 {
			t.Fatalf("sample %d phase %d", i, s.Phase)
		}
		if s.DegenRatio < 0 || s.DegenRatio > 1 {
			t.Fatalf("sample %d degenerate ratio %g out of [0,1]", i, s.DegenRatio)
		}
	}
	// Flush checks.
	if got := rec.counters["lp.health.probes"]; got != int64(len(h.Samples)) {
		t.Fatalf("lp.health.probes = %d, want %d", got, len(h.Samples))
	}
	if got := rec.counters["lp.health.anomalies"]; got != 0 {
		t.Fatalf("lp.health.anomalies = %d, want 0", got)
	}
	if n := len(rec.observed["lp.health.residual_inf"]); n != len(h.Samples) {
		t.Fatalf("residual_inf observations %d, want %d", n, len(h.Samples))
	}
}

// TestHealthProbesOffByDefault: no knob, no report, no health metrics.
func TestHealthProbesOffByDefault(t *testing.T) {
	rec := newHealthFakeRecorder()
	sol, err := Solve(healthNetworkModel(35), &Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Health != nil {
		t.Fatal("Health non-nil without HealthEvery")
	}
	if _, ok := rec.counters["lp.health.probes"]; ok {
		t.Fatal("lp.health.probes flushed with probes off")
	}
}

// TestHealthProbesPreserveSolve is the per-solve determinism guarantee:
// probes on (at several intervals) and probes off produce byte-identical
// solutions — same pivots, same vertex, same objective, same basis.
func TestHealthProbesPreserveSolve(t *testing.T) {
	for _, seed := range []int64{35, 99, 4242} {
		m := healthNetworkModel(seed)
		base, err := Solve(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, every := range []int{1, 7, 64} {
			probed, err := Solve(healthNetworkModel(seed), &Options{HealthEvery: every})
			if err != nil {
				t.Fatal(err)
			}
			if probed.Iterations != base.Iterations {
				t.Fatalf("seed %d every %d: %d iterations vs %d unprobed", seed, every, probed.Iterations, base.Iterations)
			}
			if probed.Objective != base.Objective {
				t.Fatalf("seed %d every %d: objective %v vs %v", seed, every, probed.Objective, base.Objective)
			}
			if !reflect.DeepEqual(probed.X, base.X) {
				t.Fatalf("seed %d every %d: solution vector differs with probes on", seed, every)
			}
			if !reflect.DeepEqual(probed.Basis, base.Basis) {
				t.Fatalf("seed %d every %d: final basis differs with probes on", seed, every)
			}
		}
	}
}

// TestHealthWarmSolvesProbed: SolveWithBasis carries the probes too, and a
// healthy warm solve stays anomaly-free.
func TestHealthWarmSolvesProbed(t *testing.T) {
	m := healthNetworkModel(35)
	cold, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SolveWithBasis(healthNetworkModel(35), cold.Basis, &Options{HealthEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Health == nil {
		t.Fatal("warm Solution.Health nil with HealthEvery set")
	}
	if len(warm.Health.Anomalies) != 0 {
		t.Fatalf("healthy warm solve produced anomalies: %v", warm.Health.Anomalies)
	}
}

// TestHealthStallDetector drives the windowed detector directly: a flat
// objective for healthStallWindows windows raises exactly one stall
// anomaly per phase, and any real progress resets the window.
func TestHealthStallDetector(t *testing.T) {
	h := newHealthState(8, 4)
	// Progress, then a near-flat stretch one window short of the trigger.
	h.record(2, 8, 100, 1e-12, 0, 1, 1, 1e-7)
	h.record(2, 16, 90, 1e-12, 0, 2, 1, 1e-7)
	h.record(2, 24, 90, 1e-12, 0, 3, 1, 1e-7)
	h.record(2, 32, 90, 1e-12, 0, 4, 1, 1e-7)
	if len(h.anomalies) != 0 {
		t.Fatalf("stall fired after %d flat windows: %v", healthStallWindows-1, h.anomalies)
	}
	// Real progress resets the run; flat windows must re-accumulate.
	h.record(2, 40, 80, 1e-12, 0, 5, 1, 1e-7)
	h.record(2, 48, 80, 1e-12, 0, 6, 1, 1e-7)
	h.record(2, 56, 80, 1e-12, 0, 7, 1, 1e-7)
	if len(h.anomalies) != 0 {
		t.Fatalf("stall fired before the window refilled: %v", h.anomalies)
	}
	h.record(2, 64, 80, 1e-12, 0, 8, 1, 1e-7)
	if len(h.anomalies) != 1 || h.anomalies[0].Reason != AnomalyStall {
		t.Fatalf("anomalies = %v, want one stall", h.anomalies)
	}
	if h.anomalies[0].Phase != 2 || h.anomalies[0].Iter != 64 {
		t.Fatalf("stall anomaly at phase %d iter %d", h.anomalies[0].Phase, h.anomalies[0].Iter)
	}
	// Continued stalling does not duplicate the (reason, phase) anomaly.
	h.record(2, 72, 80, 1e-12, 0, 9, 1, 1e-7)
	if len(h.anomalies) != 1 {
		t.Fatalf("stall anomaly duplicated: %v", h.anomalies)
	}
	// A phase change resets both the window and the dedup key.
	h.record(1, 80, 80, 1e-12, 0, 1, 2, 1e-7)
	if len(h.anomalies) != 1 {
		t.Fatalf("phase transition raised an anomaly: %v", h.anomalies)
	}
}

// TestHealthDriftDetector: a residual above healthDriftFactor×FeasTol is an
// anomaly; below it is not.
func TestHealthDriftDetector(t *testing.T) {
	h := newHealthState(8, 4)
	h.record(2, 8, 10, 0.9e-4, 0, 1, 1, 1e-7)
	if len(h.anomalies) != 0 {
		t.Fatalf("drift fired below threshold: %v", h.anomalies)
	}
	h.record(2, 16, 9, 2e-4, 0, 2, 1, 1e-7)
	if len(h.anomalies) != 1 || h.anomalies[0].Reason != AnomalyResidualDrift {
		t.Fatalf("anomalies = %v, want one residual_drift", h.anomalies)
	}
	if h.maxRes != 2e-4 {
		t.Fatalf("maxRes = %g, want 2e-4", h.maxRes)
	}
}

// TestHealthWarmFallbackAnomaly: a warm solve forced onto the cold-fallback
// path records the warm_repair_fallback anomaly and still solves correctly.
// The install/factorise repair machinery handles every externally
// constructible basis, so the fallback is exercised via its entry point
// directly, exactly as solveWarm invokes it.
func TestHealthWarmFallbackAnomaly(t *testing.T) {
	m := NewModel("fallback")
	m.SetMaximize(true)
	x := m.AddVar(0, Inf, 3, "x")
	y := m.AddVar(0, Inf, 2, "y")
	m.AddConstr(Expr{}.Plus(1, x).Plus(1, y), LE, 4, "c1")
	m.AddConstr(Expr{}.Plus(1, x).Plus(3, y), LE, 6, "c2")
	sx, err := newSimplex(m, &Options{HealthEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	wi := &WarmInfo{Repairs: 3}
	sx.warm = wi
	sol, err := sx.warmFallbackCold(wi)
	if err != nil {
		t.Fatal(err)
	}
	sx.attachHealth(sol)
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-12) > 1e-6 {
		t.Fatalf("fallback solve: status %v obj %g", sol.Status, sol.Objective)
	}
	var fb *Anomaly
	for i := range sol.Health.Anomalies {
		if sol.Health.Anomalies[i].Reason == AnomalyWarmRepairFallback {
			fb = &sol.Health.Anomalies[i]
		}
	}
	if fb == nil {
		t.Fatalf("anomalies %v, want warm_repair_fallback", sol.Health.Anomalies)
	}
	if fb.Value != 3 {
		t.Fatalf("fallback anomaly value %g, want the repair count 3", fb.Value)
	}
}

// TestHealthPhaseSeries: per-phase extraction returns each phase's
// objective trajectory in order.
func TestHealthPhaseSeries(t *testing.T) {
	h := &HealthReport{Samples: []HealthSample{
		{Phase: 1, Obj: 5}, {Phase: 1, Obj: 2}, {Phase: 2, Obj: -1}, {Phase: 2, Obj: -3},
	}}
	if got := h.PhaseSeries(1); !reflect.DeepEqual(got, []float64{5, 2}) {
		t.Fatalf("phase 1 series %v", got)
	}
	if got := h.PhaseSeries(2); !reflect.DeepEqual(got, []float64{-1, -3}) {
		t.Fatalf("phase 2 series %v", got)
	}
	var nilReport *HealthReport
	if got := nilReport.PhaseSeries(1); got != nil {
		t.Fatalf("nil report series %v", got)
	}
}

// TestHealthFlushAnomalyCounters: per-reason counters come out of the flush.
func TestHealthFlushAnomalyCounters(t *testing.T) {
	sx := &simplex{health: newHealthState(8, 2)}
	sx.health.note(AnomalyStall, 2, 16, 0, "test")
	sx.health.note(AnomalyCyclingSuspect, 1, 8, 40, "test")
	rec := newHealthFakeRecorder()
	sx.flushHealthMetrics(rec)
	if rec.counters["lp.health.anomalies"] != 2 {
		t.Fatalf("anomalies counter %d", rec.counters["lp.health.anomalies"])
	}
	if rec.counters["lp.health.anomaly.stall"] != 1 || rec.counters["lp.health.anomaly.cycling_suspect"] != 1 {
		t.Fatalf("per-reason counters %v", rec.counters)
	}
}

// TestAnomalyReasonsStable guards the reason-code vocabulary the obs layer
// derives counter names from.
func TestAnomalyReasonsStable(t *testing.T) {
	want := []AnomalyReason{"stall", "residual_drift", "warm_repair_fallback", "cycling_suspect"}
	if got := AnomalyReasons(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AnomalyReasons() = %v, want %v", got, want)
	}
	a := Anomaly{Reason: AnomalyStall, Phase: 2, Iter: 10, Value: 0.5, Detail: "d"}
	if s := a.String(); s == "" || s[:5] != "stall" {
		t.Fatalf("String() = %q", s)
	}
	_ = fmt.Sprintf("%v", a)
}

// TestAnomalyCountersInCoreSchema is the conformance test the
// obs.CoreCounters comment promises: every reason code's per-reason
// counter (and the aggregate) must be part of the core counter schema, so
// snapshots always carry the full detector vocabulary even on clean runs.
func TestAnomalyCountersInCoreSchema(t *testing.T) {
	core := map[string]bool{}
	for _, k := range obs.CoreCounters {
		core[k] = true
	}
	for _, want := range []string{"lp.health.probes", "lp.health.anomalies"} {
		if !core[want] {
			t.Errorf("obs.CoreCounters missing %q", want)
		}
	}
	for _, r := range AnomalyReasons() {
		if key := "lp.health.anomaly." + string(r); !core[key] {
			t.Errorf("obs.CoreCounters missing per-reason counter %q", key)
		}
	}
}
