package lp

import (
	"errors"
	"fmt"
	"math"

	"github.com/arrow-te/arrow/internal/obs"
)

// Status is the outcome of an LP solve.
type Status int8

// Solve outcomes.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution holds the result of solving a Model.
type Solution struct {
	Status    Status
	Objective float64   // in the model's own sense
	X         []float64 // one value per model variable
	// Duals holds one dual value (shadow price) per constraint, in the
	// model's own sense: for a maximisation problem, Duals[i] is the rate
	// at which the optimum grows per unit of extra right-hand side on
	// constraint i. Only populated at optimality.
	Duals      []float64
	Iterations int
	// Cert is the optimality certificate of the final basis (duality gap
	// and feasibility residuals); populated at StatusOptimal only. Verify
	// it with CheckCertificate.
	Cert *Certificate
	// Basis is the final simplex basis, suitable for warm-starting related
	// solves via SolveWithBasis; populated at StatusOptimal only.
	Basis *Basis
	// Warm reports what the warm-start machinery did; nil on cold solves.
	Warm *WarmInfo
	// Health is the numerical-health probe record; nil unless the solve ran
	// with Options.HealthEvery > 0.
	Health *HealthReport
}

// Options tunes the simplex solver. The zero value selects defaults.
type Options struct {
	MaxIter  int     // maximum pivots (default 20000 + 40*(rows+cols))
	FeasTol  float64 // feasibility tolerance (default 1e-7)
	OptTol   float64 // reduced-cost optimality tolerance (default 1e-7)
	Refactor int     // pivots between basis refactorisations (default 64)
	// Recorder receives per-solve metrics (pivots, refactorisations,
	// degenerate steps, eta depth). Counters accumulate locally during the
	// solve and flush once at the end, so a nil Recorder costs nothing and
	// a live one never perturbs the pivot sequence.
	Recorder obs.Recorder
	// HealthEvery enables numerical-health probes every HealthEvery pivots
	// (0, the default, disables them). Each probe records objective
	// progress, the primal residual ‖Ax−b‖∞, the degenerate-pivot ratio and
	// eta-file depth, and feeds the stall / residual-drift / cycling
	// detectors; results land in Solution.Health and, via Recorder, in the
	// lp.health.* metrics. Probes only read solver state: the pivot
	// sequence is identical with probes on or off.
	HealthEvery int
}

// withDefaults resolves the effective solver settings. Zero values select
// the defaults. Negative values (and NaN tolerances) are invalid — a
// solver with MaxIter -1 would never pivot and Refactor -1 would
// refactorise every step — so they are explicitly clamped to the defaults
// rather than being allowed to leak into the solve.
func (o *Options) withDefaults(rows, cols int) Options {
	v := Options{MaxIter: 20000 + 40*(rows+cols), FeasTol: 1e-7, OptTol: 1e-7, Refactor: 64}
	if o == nil {
		return v
	}
	v.Recorder = o.Recorder
	if o.HealthEvery > 0 {
		v.HealthEvery = o.HealthEvery
	} // HealthEvery <= 0: probes stay off
	if o.MaxIter > 0 {
		v.MaxIter = o.MaxIter
	} // MaxIter < 0: clamped to the default
	if o.FeasTol > 0 {
		v.FeasTol = o.FeasTol
	} // FeasTol <= 0 or NaN: clamped to the default
	if o.OptTol > 0 {
		v.OptTol = o.OptTol
	} // OptTol <= 0 or NaN: clamped to the default
	if o.Refactor > 0 {
		v.Refactor = o.Refactor
	} // Refactor < 0: clamped to the default
	return v
}

// Solve solves the model with the revised simplex method and returns the
// solution. A non-nil error indicates an internal numerical failure, not
// infeasibility: infeasible and unbounded models are reported via Status.
func Solve(m *Model, opts *Options) (*Solution, error) {
	sx, err := newSimplex(m, opts)
	if err != nil {
		return nil, err
	}
	return sx.run()
}

// variable statuses within the simplex
const (
	atLower int8 = iota
	atUpper
	atFree // nonbasic free variable held at zero
	basic
)

// simplex is the working state of one bounded-variable revised simplex solve
// in computational standard form:
//
//	minimise c·x  subject to  A x = b,  l <= x <= u
//
// where x stacks the model's structural variables, one slack per row, and
// one phase-1 artificial per row.
type simplex struct {
	opt  Options
	m    *Model
	nRow int
	nStr int // structural variables
	nTot int // structural + slacks + artificials

	cols   []spCol // column j of A
	cost   []float64
	lb, ub []float64
	b      []float64

	status  []int8
	x       []float64
	basisOf []int // row -> variable occupying that basis position
	posOf   []int // variable -> basis position, -1 if nonbasic

	lu    *luFactors
	etas  []eta
	iters int
	nnz   int // nonzeros across structural + slack columns of A

	// scratch vectors, allocated once per simplex and reused across every
	// FTRAN/BTRAN/pricing pass (and by duals/certificate extraction)
	w, y, rhs, accum []float64
	cb, d            []float64
	// etaPool recycles eta column backings freed by refactorisations.
	etaPool [][]float64

	degenerate int // consecutive degenerate pivots (Bland trigger)

	// warm-start state; nil on cold solves
	warm *WarmInfo
	// startingArts counts artificials installed at a nonzero residual by
	// the most recent solveFromPoint (the pivots the start still owes).
	startingArts int

	// local metric accumulators, flushed to opt.Recorder once per solve
	phase1Iters int
	refactors   int
	degenTotal  int
	maxEtaDepth int
	cert        *Certificate

	// health is the probe machinery (see health.go); nil unless
	// Options.HealthEvery > 0.
	health *healthState
}

type eta struct {
	pos int // basis position replaced
	col []float64
	piv float64
}

// newSimplex builds the computational form of m.
func newSimplex(m *Model, opts *Options) (*simplex, error) {
	nRow := m.NumConstrs()
	nStr := m.NumVars()
	nTot := nStr + 2*nRow
	sx := &simplex{
		m:    m,
		opt:  opts.withDefaults(nRow, nStr),
		nRow: nRow, nStr: nStr, nTot: nTot,
		cols: make([]spCol, nTot),
		cost: make([]float64, nTot),
		lb:   make([]float64, nTot),
		ub:   make([]float64, nTot),
		b:    make([]float64, nRow),

		status:  make([]int8, nTot),
		x:       make([]float64, nTot),
		basisOf: make([]int, nRow),
		posOf:   make([]int, nTot),

		w: make([]float64, nRow), y: make([]float64, nRow),
		rhs: make([]float64, nRow), accum: make([]float64, nRow),
		cb: make([]float64, nRow), d: make([]float64, nRow),
	}
	sign := 1.0
	if m.maximize {
		sign = -1.0
	}
	for j := 0; j < nStr; j++ {
		lb, ub := m.lb[j], m.ub[j]
		if lb > ub {
			// Trivially infeasible bounds; surface as infeasible later via
			// an always-violated artificial by clamping.
			return nil, fmt.Errorf("lp: variable %q has lb %g > ub %g", m.varName[j], lb, ub)
		}
		sx.lb[j], sx.ub[j] = lb, ub
		sx.cost[j] = sign * m.obj[j]
	}
	for i, r := range m.rows {
		for _, t := range r.terms {
			sx.cols[t.Var].add(i, t.Coef)
		}
		s := nStr + i // slack for row i
		sx.cols[s].add(i, 1)
		switch r.sense {
		case LE:
			sx.lb[s], sx.ub[s] = 0, Inf
		case GE:
			sx.lb[s], sx.ub[s] = -Inf, 0
		case EQ:
			sx.lb[s], sx.ub[s] = 0, 0
		}
		sx.b[i] = r.rhs
	}
	for j := range sx.posOf {
		sx.posOf[j] = -1
	}
	for j := 0; j < nStr+nRow; j++ {
		sx.nnz += len(sx.cols[j].rows)
	}
	if sx.opt.HealthEvery > 0 {
		sx.health = newHealthState(sx.opt.HealthEvery, nRow)
	}
	return sx, nil
}

// initialValue returns the starting value for a nonbasic variable and its
// status: the finite bound nearest zero, or zero for free variables.
func initialValue(lb, ub float64) (float64, int8) {
	switch {
	case lb <= -Inf+1 && ub >= Inf-1, math.IsInf(lb, -1) && math.IsInf(ub, 1):
		return 0, atFree
	case math.IsInf(lb, -1):
		return ub, atUpper
	case math.IsInf(ub, 1):
		return lb, atLower
	case math.Abs(lb) <= math.Abs(ub):
		return lb, atLower
	default:
		return ub, atUpper
	}
}

func (sx *simplex) run() (*Solution, error) {
	sol, err := sx.solve()
	if err == nil {
		sx.attachHealth(sol)
		sx.flushMetrics()
	}
	return sol, err
}

// flushMetrics reports the solve's accumulated counters to the recorder in
// one batch (no-op without one).
func (sx *simplex) flushMetrics() {
	r := sx.opt.Recorder
	if r == nil {
		return
	}
	r.Add("lp.solves", 1)
	r.Add("lp.pivots", int64(sx.iters))
	// Pivot work weights each iteration by the model size it ran against:
	// Dantzig pricing scans every column nonzero and BTRAN/FTRAN solve
	// against the row-dimension factors, so iterations on a small model are
	// proportionally cheaper than the same count on a large one. This is the
	// counter that exposes restricted-master savings when raw pivot counts
	// come out even.
	r.Add("lp.pivot_work", int64(sx.iters)*int64(sx.nnz+sx.nRow))
	r.Add("lp.phase1_pivots", int64(sx.phase1Iters))
	r.Add("lp.refactorizations", int64(sx.refactors))
	r.Add("lp.degenerate_pivots", int64(sx.degenTotal))
	r.Observe("lp.pivots_per_solve", float64(sx.iters))
	r.Observe("lp.eta_depth_max", float64(sx.maxEtaDepth))
	r.Observe("lp.rows", float64(sx.nRow))
	r.Observe("lp.structural_vars", float64(sx.nStr))
	if wi := sx.warm; wi != nil {
		r.Add("lp.warm_starts", 1)
		if wi.Accepted {
			r.Add("lp.warm_accepted", 1)
		}
		r.Add("lp.warm_repairs", int64(wi.Repairs))
		if wi.Phase1Skipped {
			r.Add("lp.phase1_skipped", 1)
		}
		r.Add("lp.pivots_saved", int64(wi.PivotsSaved))
	}
	if c := sx.cert; c != nil {
		r.Add("lp.certificates", 1)
		r.Observe("lp.duality_gap", c.Gap)
		r.Observe("lp.primal_inf", c.PrimalInf)
		r.Observe("lp.dual_inf", c.DualInf)
		if CheckCertificate(c, 0) != nil {
			r.Add("lp.cert_failures", 1)
		}
	}
	sx.flushHealthMetrics(r)
}

func (sx *simplex) solve() (*Solution, error) {
	// Start all structural and slack variables nonbasic at a bound.
	for j := 0; j < sx.nStr+sx.nRow; j++ {
		sx.x[j], sx.status[j] = initialValue(sx.lb[j], sx.ub[j])
	}
	return sx.solveFromPoint()
}

// solveFromPoint installs the all-artificial basis against the current
// nonbasic point (the residual of each row decides its artificial's sign
// and starting value), factorises, and runs both phases. Cold starts
// arrive here from the initialValue point; warm starts whose basis turned
// out infeasible arrive from the projected warm point, which typically
// leaves most artificials at zero.
func (sx *simplex) solveFromPoint() (*Solution, error) {
	// Residual r = b - A x determines artificials.
	res := append([]float64(nil), sx.b...)
	for j := 0; j < sx.nStr+sx.nRow; j++ {
		if v := sx.x[j]; v != 0 {
			c := &sx.cols[j]
			for i, r := range c.rows {
				res[r] -= c.vals[i] * v
			}
		}
	}
	sx.startingArts = 0
	for i := 0; i < sx.nRow; i++ {
		a := sx.nStr + sx.nRow + i
		coef := 1.0
		if res[i] < 0 {
			coef = -1.0
		}
		sx.cols[a].add(i, coef)
		sx.lb[a], sx.ub[a] = 0, Inf
		sx.x[a] = math.Abs(res[i])
		sx.status[a] = basic
		sx.basisOf[i] = a
		sx.posOf[a] = i
		if sx.x[a] > sx.opt.FeasTol {
			sx.startingArts++
		}
	}
	if err := sx.refactorize(); err != nil {
		return nil, err
	}
	return sx.phases(true)
}

// phases runs phase 1 (unless the caller established a primal-feasible
// basis already), pins the artificials, runs phase 2, and assembles the
// solution.
func (sx *simplex) phases(runPhase1 bool) (*Solution, error) {
	if runPhase1 {
		// Phase 1: minimise the sum of artificials.
		phase1Cost := make([]float64, sx.nTot)
		for i := 0; i < sx.nRow; i++ {
			phase1Cost[sx.nStr+sx.nRow+i] = 1
		}
		st, err := sx.iterate(phase1Cost, true)
		sx.phase1Iters = sx.iters
		if err != nil {
			return nil, err
		}
		if st == StatusIterLimit {
			return &Solution{Status: StatusIterLimit, X: sx.extract(), Iterations: sx.iters, Warm: sx.warm}, nil
		}
		if sx.artificialSum() > sx.opt.FeasTol*10 {
			return &Solution{Status: StatusInfeasible, X: sx.extract(), Iterations: sx.iters, Warm: sx.warm}, nil
		}
	}
	// Pin artificials to zero for phase 2. (On a warm start that skipped
	// phase 1 the artificials were never installed: empty columns, already
	// at zero — the pin is then a no-op that keeps them retired.)
	for i := 0; i < sx.nRow; i++ {
		a := sx.nStr + sx.nRow + i
		sx.ub[a] = 0
		if sx.status[a] != basic {
			sx.x[a], sx.status[a] = 0, atLower
		}
	}

	// Phase 2: minimise the true cost.
	st, err := sx.iterate(sx.cost, false)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Status: st, X: sx.extract(), Iterations: sx.iters, Warm: sx.warm}
	sol.Objective = sx.m.ObjValue(sol.X)
	if st == StatusOptimal {
		sol.Duals = sx.duals()
		sol.Cert = sx.certificate()
		sx.cert = sol.Cert
		sol.Basis = sx.exportBasis()
	}
	return sol, nil
}

// exportBasis snapshots the final basis in portable form. A basic
// artificial (possible after a degenerate phase 1) sits at numerical zero
// and its column is a ± unit column of its row — structurally the row's
// slack — so it is exported as slack-basic and the importer rebuilds an
// equivalent basis.
func (sx *simplex) exportBasis() *Basis {
	b := &Basis{
		VarStatus: make([]BasisStatus, sx.nStr),
		RowStatus: make([]BasisStatus, sx.nRow),
	}
	for j := 0; j < sx.nStr; j++ {
		b.VarStatus[j] = exportStatus(sx.status[j])
	}
	for i := 0; i < sx.nRow; i++ {
		b.RowStatus[i] = exportStatus(sx.status[sx.nStr+i])
	}
	for i := 0; i < sx.nRow; i++ {
		if sx.status[sx.nStr+sx.nRow+i] == basic {
			b.RowStatus[i] = BasisBasic
		}
	}
	return b
}

// duals computes the shadow prices y = B^-T c_B of the final basis,
// converted to the model's own optimisation sense.
func (sx *simplex) duals() []float64 {
	cb := sx.cb
	for pos, j := range sx.basisOf {
		cb[pos] = sx.cost[j]
	}
	y := make([]float64, sx.nRow)
	sx.btran(cb, y)
	if sx.m.maximize {
		for i := range y {
			y[i] = -y[i]
		}
	}
	return y
}

func (sx *simplex) artificialSum() float64 {
	s := 0.0
	for i := 0; i < sx.nRow; i++ {
		s += math.Abs(sx.x[sx.nStr+sx.nRow+i])
	}
	return s
}

func (sx *simplex) extract() []float64 {
	out := make([]float64, sx.nStr)
	copy(out, sx.x[:sx.nStr])
	// Snap tiny residues and clamp to bounds for cleanliness.
	for j := range out {
		if math.Abs(out[j]) < 1e-11 {
			out[j] = 0
		}
		if lb := sx.m.lb[j]; out[j] < lb {
			out[j] = lb
		}
		if ub := sx.m.ub[j]; out[j] > ub {
			out[j] = ub
		}
	}
	return out
}

// refactorize rebuilds the LU factors of the current basis and recomputes
// basic variable values from the nonbasic ones.
func (sx *simplex) refactorize() error {
	cols := make([]spCol, sx.nRow)
	for i, j := range sx.basisOf {
		cols[i] = sx.cols[j]
	}
	lu, err := factorize(sx.nRow, cols)
	if err != nil {
		return err
	}
	sx.refactors++
	sx.lu = lu
	// Recycle the eta column backings: refactorisation retires the whole
	// eta file at once, and the next pivots would otherwise reallocate
	// columns of exactly this size.
	for i := range sx.etas {
		sx.etaPool = append(sx.etaPool, sx.etas[i].col)
		sx.etas[i].col = nil
	}
	sx.etas = sx.etas[:0]
	sx.recomputeBasics()
	return nil
}

// recomputeBasics solves for the basic variable values given nonbasic ones.
func (sx *simplex) recomputeBasics() {
	rhs := sx.rhs
	copy(rhs, sx.b)
	for j := 0; j < sx.nTot; j++ {
		if sx.status[j] == basic {
			continue
		}
		if v := sx.x[j]; v != 0 {
			c := &sx.cols[j]
			for i, r := range c.rows {
				rhs[r] -= c.vals[i] * v
			}
		}
	}
	xb := sx.accum
	sx.ftran(rhs, xb)
	for pos, j := range sx.basisOf {
		sx.x[j] = xb[pos]
	}
}

// ftran computes v = B⁻¹ in (in is clobbered; out indexed by basis position).
func (sx *simplex) ftran(in, out []float64) {
	sx.lu.solve(in, out)
	for k := range sx.etas {
		e := &sx.etas[k]
		t := out[e.pos] / e.piv
		if t != 0 {
			for i := range e.col {
				if i != e.pos {
					out[i] -= e.col[i] * t
				}
			}
		}
		out[e.pos] = t
	}
}

// btran computes y = B⁻ᵀ c (c indexed by basis position; out by row).
func (sx *simplex) btran(c, out []float64) {
	tmp := sx.accum
	copy(tmp, c)
	for k := len(sx.etas) - 1; k >= 0; k-- {
		e := &sx.etas[k]
		s := tmp[e.pos]
		for i := range e.col {
			if i != e.pos {
				s -= e.col[i] * tmp[i]
			}
		}
		tmp[e.pos] = s / e.piv
	}
	sx.lu.solveT(tmp, out)
	for i := range tmp {
		tmp[i] = 0
	}
}

// iterate runs simplex pivots with the given cost vector until optimal,
// unbounded, or the iteration limit. phase1 permits early exit once the
// artificial sum is (numerically) zero.
func (sx *simplex) iterate(cost []float64, phase1 bool) (Status, error) {
	cb := sx.cb
	d := sx.d // entering column in basis coordinates
	for {
		if sx.iters >= sx.opt.MaxIter {
			return StatusIterLimit, nil
		}
		if phase1 && sx.artificialSum() <= sx.opt.FeasTol {
			return StatusOptimal, nil
		}

		// Pricing: y = B⁻ᵀ c_B, reduced costs d_j = c_j − y·a_j.
		for pos, j := range sx.basisOf {
			cb[pos] = cost[j]
		}
		sx.btran(cb, sx.y)

		useBland := sx.degenerate > 3*(sx.nRow+10)
		if useBland && sx.health != nil {
			sx.healthNoteCycling(phase1)
		}
		enter, dir := sx.price(cost, sx.y, useBland)
		if enter < 0 {
			return StatusOptimal, nil
		}

		// FTRAN entering column.
		for i := range sx.w {
			sx.w[i] = 0
		}
		ec := &sx.cols[enter]
		for i, r := range ec.rows {
			sx.w[r] += ec.vals[i]
		}
		sx.ftran(sx.w, d)

		st, err := sx.pivot(enter, dir, d, phase1)
		if err != nil {
			return 0, err
		}
		if st != statusContinue {
			if st == statusUnbounded {
				if phase1 {
					return 0, errors.New("lp: phase-1 unbounded (internal error)")
				}
				return StatusUnbounded, nil
			}
		}
		sx.iters++
		if sx.health != nil && sx.iters%sx.health.every == 0 {
			sx.healthProbe(cost, phase1)
		}
		if len(sx.etas) >= sx.opt.Refactor {
			if err := sx.refactorize(); err != nil {
				return 0, err
			}
		}
	}
}

// price selects an entering variable and its direction (+1 increase from
// lower bound / free, −1 decrease from upper bound). Dantzig rule by
// default; Bland's rule (lowest index) when anti-cycling is engaged.
func (sx *simplex) price(cost, y []float64, bland bool) (int, float64) {
	best, bestScore, bestDir := -1, 0.0, 1.0
	tol := sx.opt.OptTol
	for j := 0; j < sx.nTot; j++ {
		st := sx.status[j]
		if st == basic {
			continue
		}
		// Skip pinned variables (lb == ub), including retired artificials.
		if sx.lb[j] == sx.ub[j] && st != atFree {
			continue
		}
		dj := cost[j]
		c := &sx.cols[j]
		for i, r := range c.rows {
			dj -= y[r] * c.vals[i]
		}
		var score, dir float64
		switch {
		case st == atLower && dj < -tol:
			score, dir = -dj, 1
		case st == atUpper && dj > tol:
			score, dir = dj, -1
		case st == atFree && math.Abs(dj) > tol:
			score = math.Abs(dj)
			if dj > 0 {
				dir = -1
			} else {
				dir = 1
			}
		default:
			continue
		}
		if bland {
			return j, dir
		}
		if score > bestScore {
			best, bestScore, bestDir = j, score, dir
		}
	}
	return best, bestDir
}

const (
	statusContinue Status = 100 + iota
	statusUnbounded
)

// pivot performs the ratio test and updates the basis. d is the entering
// column in basis coordinates (B⁻¹ a_enter).
func (sx *simplex) pivot(enter int, dir float64, d []float64, phase1 bool) (Status, error) {
	ftol := sx.opt.FeasTol
	// Bound-flip limit from the entering variable's own range.
	limit := Inf
	if lb, ub := sx.lb[enter], sx.ub[enter]; !math.IsInf(lb, -1) && !math.IsInf(ub, 1) {
		limit = ub - lb
	}
	leave, leaveT, leaveDirUp := -1, limit, false
	pivAbs := 0.0
	for pos := 0; pos < sx.nRow; pos++ {
		w := dir * d[pos]
		if math.Abs(w) < 1e-9 {
			continue
		}
		jb := sx.basisOf[pos]
		xv := sx.x[jb]
		var t float64
		var hitUpper bool
		if w > 0 { // basic variable decreases toward its lower bound
			lb := sx.lb[jb]
			if math.IsInf(lb, -1) {
				continue
			}
			t = (xv - lb) / w
			hitUpper = false
		} else { // basic variable increases toward its upper bound
			ub := sx.ub[jb]
			if math.IsInf(ub, 1) {
				continue
			}
			t = (xv - ub) / w
			hitUpper = true
		}
		if t < -ftol {
			t = 0
		}
		if t < leaveT-1e-12 || (t < leaveT+1e-12 && math.Abs(d[pos]) > pivAbs) {
			leave, leaveT, leaveDirUp = pos, math.Max(t, 0), hitUpper
			pivAbs = math.Abs(d[pos])
		}
	}

	if leave < 0 {
		if math.IsInf(limit, 1) {
			return statusUnbounded, nil
		}
		// Bound flip: entering variable moves across its whole range.
		sx.applyStep(enter, dir, limit, d)
		if sx.status[enter] == atLower {
			sx.status[enter] = atUpper
		} else {
			sx.status[enter] = atLower
		}
		sx.degenerate = 0
		return statusContinue, nil
	}

	if leaveT <= 1e-10 {
		sx.degenerate++
		sx.degenTotal++
	} else {
		sx.degenerate = 0
	}

	// Guard against a numerically tiny pivot element.
	if math.Abs(d[leave]) < 1e-8 {
		if len(sx.etas) > 0 {
			if err := sx.refactorize(); err != nil {
				return 0, err
			}
			return statusContinue, nil // retry with fresh factors
		}
	}

	sx.applyStep(enter, dir, leaveT, d)

	jout := sx.basisOf[leave]
	if leaveDirUp {
		sx.status[jout] = atUpper
		sx.x[jout] = sx.ub[jout]
	} else {
		sx.status[jout] = atLower
		sx.x[jout] = sx.lb[jout]
	}
	sx.posOf[jout] = -1

	sx.basisOf[leave] = enter
	sx.posOf[enter] = leave
	sx.status[enter] = basic

	// Record the eta for the new basis, reusing a pooled column if one is
	// available.
	var col []float64
	if n := len(sx.etaPool); n > 0 {
		col = sx.etaPool[n-1]
		sx.etaPool = sx.etaPool[:n-1]
	} else {
		col = make([]float64, sx.nRow)
	}
	copy(col, d)
	sx.etas = append(sx.etas, eta{pos: leave, col: col, piv: d[leave]})
	if len(sx.etas) > sx.maxEtaDepth {
		sx.maxEtaDepth = len(sx.etas)
	}
	return statusContinue, nil
}

// applyStep moves the entering variable by dir*t and updates basic values.
func (sx *simplex) applyStep(enter int, dir, t float64, d []float64) {
	if t == 0 {
		return
	}
	sx.x[enter] += dir * t
	for pos := 0; pos < sx.nRow; pos++ {
		if d[pos] != 0 {
			jb := sx.basisOf[pos]
			sx.x[jb] -= dir * t * d[pos]
		}
	}
}
