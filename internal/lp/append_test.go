package lp

import (
	"math"
	"testing"
)

// chainModel builds max sum x_i with x_i in [0, 10] and coupling rows
// x_i + x_{i+1} <= 12 — a model whose cold solve takes a nontrivial pivot
// walk, used to exercise warm re-solves after column/row appends.
func chainModel(n int) (*Model, []Var) {
	m := NewModel("chain")
	m.SetMaximize(true)
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = m.AddVar(0, 10, 1, "x")
	}
	for i := 0; i+1 < n; i++ {
		m.AddConstr(Expr{}.Plus(1, vars[i]).Plus(1, vars[i+1]), LE, 12, "couple")
	}
	return m, vars
}

// TestAppendColumnIntoAllSlackBasis prices a column into a master whose
// warm basis is the untouched all-slack basis — the state a column
// generation loop is in before its first re-solve. The appended column must
// enter the basis on its own merit and the warm solve must agree with a
// cold solve of the grown model.
func TestAppendColumnIntoAllSlackBasis(t *testing.T) {
	m := NewModel("seed")
	m.SetMaximize(true)
	x := m.AddVar(0, 5, 1, "x")
	c := m.AddConstr(Expr{}.Plus(1, x), LE, 8, "cap")

	basis := SlackBasis(m)
	// Price in a second, more profitable column sharing the capacity row.
	m.AppendColumn(basis, 0, Inf, 3, "y", []ColumnEntry{{Constr: c, Coef: 1}})
	if got, want := len(basis.VarStatus), m.NumVars(); got != want {
		t.Fatalf("basis covers %d vars after AppendColumn, want %d", got, want)
	}

	sol, err := SolveWithBasis(m, basis, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Optimum: y = 8 (takes the whole row), x = 0, objective 24.
	if math.Abs(sol.Objective-24) > 1e-7 {
		t.Fatalf("objective %g, want 24", sol.Objective)
	}
	if sol.Warm == nil || !sol.Warm.Accepted {
		t.Fatalf("all-slack basis not accepted: %+v", sol.Warm)
	}
}

// TestAppendColumnOntoTruncatedWarmBasis replays the restricted-master
// truncation idiom: solve a grown model, truncate model AND basis back to a
// skeleton prefix, regrow with different rows plus a priced-in column, and
// warm-solve from the extended basis. The truncated basis must stay usable
// as a warm start for the regrown model.
func TestAppendColumnOntoTruncatedWarmBasis(t *testing.T) {
	m, vars := chainModel(6)
	baseRows := m.NumConstrs()
	// Grow: a block row that binds the head of the chain.
	m.AddConstr(Expr{}.Plus(1, vars[0]).Plus(1, vars[2]), LE, 9, "blk0")
	sol, err := SolveWithBasis(m, SlackBasis(m), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || sol.Basis == nil {
		t.Fatalf("grown solve: status %v basis %v", sol.Status, sol.Basis)
	}

	// Truncate the block away again, basis in lockstep with the model.
	m.TruncateConstrs(baseRows)
	skel := sol.Basis.Clone()
	skel.RowStatus = skel.RowStatus[:baseRows]

	// Regrow with a DIFFERENT block and a relaxation column on it, colgen
	// style: load - u <= rhs with u bounded.
	c := m.AddConstr(Expr{}.Plus(1, vars[1]).Plus(1, vars[3]).Plus(1, vars[5]), LE, 14, "blk1")
	m.AppendColumn(skel, 0, 2, 0, "relax", []ColumnEntry{{Constr: c, Coef: -1}})
	skel.ExtendTo(m)
	if len(skel.RowStatus) != m.NumConstrs() || len(skel.VarStatus) != m.NumVars() {
		t.Fatalf("ExtendTo left basis at %dv/%dr for model %dv/%dr",
			len(skel.VarStatus), len(skel.RowStatus), m.NumVars(), m.NumConstrs())
	}

	warm, err := SolveWithBasis(m, skel, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != StatusOptimal || cold.Status != StatusOptimal {
		t.Fatalf("status warm %v cold %v", warm.Status, cold.Status)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-7 {
		t.Fatalf("warm objective %g != cold %g", warm.Objective, cold.Objective)
	}
	if warm.Warm == nil || !warm.Warm.Accepted {
		t.Fatalf("truncated skeleton basis not accepted: %+v", warm.Warm)
	}
}

// TestWarmResolveAfterViolatedRowAppend pins the selective warm repair: a
// row appended VIOLATED at the previous optimum (the signature of every
// column-generation re-solve) must not cost the warm start its basis. The
// solver swaps the out-of-bound row slacks for their artificials, keeps the
// rest of the vertex, and repairs in far fewer pivots than the cold walk.
func TestWarmResolveAfterViolatedRowAppend(t *testing.T) {
	m, vars := chainModel(40)
	sol, err := SolveWithBasis(m, SlackBasis(m), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}

	// Append a global cap strictly below the current optimum value: the
	// previous vertex violates it, so its slack starts out of bounds.
	var all Expr
	for _, v := range vars {
		all = all.Plus(1, v)
	}
	limit := sol.Objective * 0.8
	m.AddConstr(all, LE, limit, "globalcap")
	basis := sol.Basis.Clone()
	basis.ExtendTo(m)

	warm, err := SolveWithBasis(m, basis, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != StatusOptimal || cold.Status != StatusOptimal {
		t.Fatalf("status warm %v cold %v", warm.Status, cold.Status)
	}
	if math.Abs(warm.Objective-limit) > 1e-7 || math.Abs(cold.Objective-limit) > 1e-7 {
		t.Fatalf("objectives warm %g cold %g, want %g", warm.Objective, cold.Objective, limit)
	}
	if warm.Warm == nil || !warm.Warm.Accepted {
		t.Fatalf("warm basis rejected after violated append: %+v", warm.Warm)
	}
	if warm.Warm.Phase1Skipped {
		t.Fatal("phase 1 reported skipped on a primal-infeasible warm basis")
	}
	// The point of the selective repair: only the appended row's artificial
	// needs driving out, so the re-solve must be much cheaper than the cold
	// walk (which re-derives the whole 40-variable vertex).
	if warm.Iterations*2 >= cold.Iterations {
		t.Errorf("warm re-solve took %d pivots vs cold %d; expected < half",
			warm.Iterations, cold.Iterations)
	}
}

// TestWarmAppendManyViolatedRows drives the selective repair through a bulk
// append — several violated rows at once, as a batched pricing sweep
// produces — and checks the repaired solve still agrees with cold.
func TestWarmAppendManyViolatedRows(t *testing.T) {
	m, vars := chainModel(24)
	sol, err := SolveWithBasis(m, SlackBasis(m), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+2 < len(vars); i += 3 {
		e := Expr{}.Plus(1, vars[i]).Plus(1, vars[i+1]).Plus(1, vars[i+2])
		m.AddConstr(e, LE, 11, "trio") // violated: optimum packs > 11 per trio
	}
	basis := sol.Basis.Clone()
	basis.ExtendTo(m)
	warm, err := SolveWithBasis(m, basis, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != StatusOptimal || cold.Status != StatusOptimal {
		t.Fatalf("status warm %v cold %v", warm.Status, cold.Status)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-7 {
		t.Fatalf("warm objective %g != cold %g", warm.Objective, cold.Objective)
	}
}
