package lp

import (
	"fmt"
	"math"
)

// DefaultCertTol is the tolerance CheckCertificate applies when the caller
// passes 0: the relative duality gap and both infeasibility residuals must
// stay below it for a solve to count as certified. It sits an order of
// magnitude above the solver's own FeasTol/OptTol (1e-7), so a certificate
// failure means genuine numerical trouble, not tolerance jitter.
const DefaultCertTol = 1e-6

// Certificate is the per-solve optimality evidence attached to every
// optimal Solution: the primal and dual objective values, their relative
// gap, and the worst primal/dual feasibility residuals of the final basis.
// It turns "the simplex said optimal" into an independently checkable
// claim — weak duality bounds the true optimum between Primal and Dual, so
// a small gap plus small residuals certifies the solution without trusting
// the pivot sequence that produced it.
//
// All values are reported in the model's own optimisation sense.
type Certificate struct {
	// Primal is the objective value c·x of the returned solution.
	Primal float64 `json:"primal"`
	// Dual is the Lagrangian dual objective implied by the final basis
	// duals and reduced costs; by weak duality it bounds the optimum.
	Dual float64 `json:"dual"`
	// Gap is the relative duality gap |Primal-Dual| / (1 + |Primal|).
	Gap float64 `json:"gap"`
	// PrimalInf is the largest constraint or bound violation of the
	// internal solution point.
	PrimalInf float64 `json:"primal_inf"`
	// DualInf is the largest reduced-cost sign violation over the nonbasic
	// variables (and |d_j| over basic ones, which should price to zero).
	DualInf float64 `json:"dual_inf"`
}

// CheckCertificate verifies that c certifies an optimal solve under tol
// (0 selects DefaultCertTol): the relative duality gap and both residuals
// must be below tol. A nil certificate fails — an optimal solve without one
// is itself a defect.
func CheckCertificate(c *Certificate, tol float64) error {
	if tol <= 0 {
		tol = DefaultCertTol
	}
	if c == nil {
		return fmt.Errorf("lp: no certificate attached")
	}
	switch {
	case math.IsNaN(c.Gap) || c.Gap > tol:
		return fmt.Errorf("lp: duality gap %.3g exceeds tolerance %.3g (primal %.10g, dual %.10g)", c.Gap, tol, c.Primal, c.Dual)
	case math.IsNaN(c.PrimalInf) || c.PrimalInf > tol:
		return fmt.Errorf("lp: primal infeasibility %.3g exceeds tolerance %.3g", c.PrimalInf, tol)
	case math.IsNaN(c.DualInf) || c.DualInf > tol:
		return fmt.Errorf("lp: dual infeasibility %.3g exceeds tolerance %.3g", c.DualInf, tol)
	}
	return nil
}

// certificate computes the optimality certificate of the final basis. It
// runs once per optimal solve, after the last pivot: one BTRAN plus one
// pass over the columns, and it never mutates solver state, so attaching
// it cannot change the pivot sequence or the returned solution.
func (sx *simplex) certificate() *Certificate {
	// Basis duals in the internal minimisation sense (pooled scratch: the
	// pivot loop has finished by the time the certificate runs).
	cb, y := sx.cb, sx.y
	for pos, j := range sx.basisOf {
		cb[pos] = sx.cost[j]
	}
	sx.btran(cb, y)

	// Primal residual: equality rows A x = b over every column (artificials
	// included — they are pinned to zero after phase 1, so any leftover
	// value is itself a violation), plus bound violations.
	res := append([]float64(nil), sx.b...)
	for j := 0; j < sx.nTot; j++ {
		if v := sx.x[j]; v != 0 {
			c := &sx.cols[j]
			for i, r := range c.rows {
				res[r] -= c.vals[i] * v
			}
		}
	}
	pinf := 0.0
	for _, r := range res {
		if v := math.Abs(r); v > pinf {
			pinf = v
		}
	}
	for j := 0; j < sx.nStr+sx.nRow; j++ {
		if v := sx.lb[j] - sx.x[j]; v > pinf {
			pinf = v
		}
		if v := sx.x[j] - sx.ub[j]; v > pinf {
			pinf = v
		}
	}

	// Dual objective g = b·y + sum over nonbasic j of d_j x_j, and the
	// worst reduced-cost sign violation. Minimisation optimality wants
	// d_j >= 0 at a lower bound, d_j <= 0 at an upper bound, d_j = 0 for
	// basic and nonbasic-free variables. Variables pinned by lb == ub
	// (retired artificials, fixed vars) admit any sign.
	g := 0.0
	for i := range sx.b {
		g += sx.b[i] * y[i]
	}
	primal := 0.0
	dinf := 0.0
	for j := 0; j < sx.nTot; j++ {
		dj := sx.cost[j]
		c := &sx.cols[j]
		for i, r := range c.rows {
			dj -= y[r] * c.vals[i]
		}
		primal += sx.cost[j] * sx.x[j]
		if sx.status[j] == basic {
			if v := math.Abs(dj); v > dinf {
				dinf = v
			}
			continue
		}
		g += dj * sx.x[j]
		if sx.lb[j] == sx.ub[j] {
			continue
		}
		var v float64
		switch sx.status[j] {
		case atLower:
			v = -dj
		case atUpper:
			v = dj
		default: // nonbasic free: must price to zero
			v = math.Abs(dj)
		}
		if v > dinf {
			dinf = v
		}
	}

	cert := &Certificate{
		Gap:       math.Abs(primal-g) / (1 + math.Abs(primal)),
		PrimalInf: pinf,
		DualInf:   dinf,
	}
	// Convert the internal minimisation values back to the model's sense.
	if sx.m.maximize {
		cert.Primal, cert.Dual = -primal, -g
	} else {
		cert.Primal, cert.Dual = primal, g
	}
	return cert
}
