package lp

import (
	"fmt"
	"math"
)

// BasisStatus is the exported status of one variable (or one row's slack)
// in a simplex basis.
type BasisStatus int8

// Basis statuses. Nonbasic variables sit at the named bound (free
// variables at zero); basic variables are solved from the constraints.
const (
	BasisAtLower BasisStatus = iota
	BasisAtUpper
	BasisFree
	BasisBasic
)

// Basis is a portable snapshot of a simplex basis: one status per
// structural variable plus one status per row (the status of the row's
// slack). It is exported on every optimal Solution and can seed a later
// solve of the same — or a structurally related — model via
// SolveWithBasis.
//
// A Basis is deliberately tolerant of model growth: a model with more
// variables or rows than the basis describes gets the missing entries
// defaulted (new variables nonbasic at their natural bound, new rows
// slack-basic). This is what lets te.Arrow seed phase 2 from phase 1's
// basis even though phase 2 carries different scenario rows.
type Basis struct {
	// VarStatus[j] is the status of structural variable j.
	VarStatus []BasisStatus
	// RowStatus[i] is the status of row i's slack variable. BasisBasic
	// means the row is inactive at the basic point (its slack is in the
	// basis).
	RowStatus []BasisStatus
}

// Clone returns a deep copy of the basis.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	return &Basis{
		VarStatus: append([]BasisStatus(nil), b.VarStatus...),
		RowStatus: append([]BasisStatus(nil), b.RowStatus...),
	}
}

// ExtendTo grows the basis in place to cover every variable and row of m,
// making the simplex's implicit growth-padding protocol explicit: variables
// beyond the basis enter NONBASIC at their natural starting bound and rows
// beyond it enter slack-basic. Extending never touches existing statuses,
// so a basis exported from an optimal solve stays optimal-adjacent after
// appending columns via Model.AppendColumn — exactly what a column
// generation loop needs between master re-solves. ExtendTo panics if the
// basis is LARGER than the model (use the truncation idiom for shrinking,
// mirroring Model.TruncateConstrs).
func (b *Basis) ExtendTo(m *Model) {
	if len(b.VarStatus) > m.NumVars() || len(b.RowStatus) > m.NumConstrs() {
		panic(fmt.Sprintf("lp: ExtendTo shrinking basis (%d vars, %d rows) to model (%d vars, %d rows)",
			len(b.VarStatus), len(b.RowStatus), m.NumVars(), m.NumConstrs()))
	}
	for j := len(b.VarStatus); j < m.NumVars(); j++ {
		_, st := initialValue(m.lb[j], m.ub[j])
		b.VarStatus = append(b.VarStatus, exportStatus(st))
	}
	for i := len(b.RowStatus); i < m.NumConstrs(); i++ {
		b.RowStatus = append(b.RowStatus, BasisBasic)
	}
}

// WarmInfo reports what the warm-start machinery did during one solve.
// It is attached to the Solution of every SolveWithBasis call.
type WarmInfo struct {
	// Accepted reports whether the solve actually started from the
	// supplied basis (possibly after repairs). False means the basis was
	// unrepairable or its projected point too infeasible, and the solve
	// fell back to a cold start.
	Accepted bool
	// Repairs counts patched basis defects: statuses referencing a
	// nonexistent bound, a basis with the wrong number of basic columns,
	// and linearly dependent columns replaced by slacks during
	// factorisation. Padding for model growth (new variables or rows) is
	// expected protocol, not a defect, and is not counted.
	Repairs int
	// Phase1Skipped reports that the warm point was primal feasible and
	// phase 1 was skipped entirely.
	Phase1Skipped bool
	// PivotsSaved is a deterministic, hardware-independent estimate of the
	// phase-1 work avoided: the number of artificials a cold start of this
	// model would have installed at a nonzero residual, minus the number
	// the warm start still needed. Each such artificial costs a cold
	// phase 1 at least one pivot to drive out.
	PivotsSaved int
}

// exportStatus maps an internal simplex status to the exported form.
func exportStatus(st int8) BasisStatus {
	switch st {
	case atUpper:
		return BasisAtUpper
	case atFree:
		return BasisFree
	case basic:
		return BasisBasic
	default:
		return BasisAtLower
	}
}

// SlackBasis returns the all-slack basis of m: every structural variable
// nonbasic at its natural starting bound, every row's slack basic. For
// models whose rows are all satisfiable at that starting point — e.g. the
// RWA assignment LP and the TE base models, where every row is `<=` with a
// nonnegative right-hand side and every variable starts at zero — this
// basis is primal feasible, so SolveWithBasis skips phase 1 outright.
//
// SlackBasis depends only on the model, never on sibling solves, which
// makes it a deterministic warm-start source: results cannot vary with
// worker scheduling.
func SlackBasis(m *Model) *Basis {
	b := &Basis{
		VarStatus: make([]BasisStatus, m.NumVars()),
		RowStatus: make([]BasisStatus, m.NumConstrs()),
	}
	for j := range b.VarStatus {
		_, st := initialValue(m.lb[j], m.ub[j])
		b.VarStatus[j] = exportStatus(st)
	}
	for i := range b.RowStatus {
		b.RowStatus[i] = BasisBasic
	}
	return b
}

// SolveWithBasis solves m starting from the given basis. The basis is
// validated and repaired as needed (statuses that reference a nonexistent
// bound are bound-shifted, size mismatches are balanced with slacks, and
// linearly dependent basis columns are patched with slacks of unpivoted
// rows during factorisation). If the repaired basic point is primal
// feasible, phase 1 is skipped; otherwise the warm basics are bound-shifted
// onto the projected warm point and a reduced phase 1 runs, where only the
// rows the projected point violates carry active artificials. An
// unrepairable basis falls back to a full cold start.
//
// A nil basis is a plain cold Solve. Warm and cold solves of the same
// model agree on the optimal objective (within solver tolerance) but may
// return different vertices when the optimum is degenerate.
//
// The supplied basis is never mutated: repairs happen on the solver's own
// copy of the statuses, so one captured basis can seed any number of
// re-solves (the attribution pass re-solves a perturbed-RHS model dozens of
// times from the same final phase-II basis).
func SolveWithBasis(m *Model, basis *Basis, opts *Options) (*Solution, error) {
	if basis == nil {
		return Solve(m, opts)
	}
	sx, err := newSimplex(m, opts)
	if err != nil {
		return nil, err
	}
	sol, err := sx.solveWarm(basis)
	if err == nil {
		sx.attachHealth(sol)
		sx.flushMetrics()
	}
	return sol, err
}

// solveWarm runs one warm-started solve: install + repair the basis, skip
// phase 1 when the basic point is feasible, otherwise run the reduced
// phase 1 from the projected warm point.
func (sx *simplex) solveWarm(wb *Basis) (*Solution, error) {
	wi := &WarmInfo{}
	sx.warm = wi
	coldArts := sx.countColdArtificials()
	if !sx.installWarmBasis(wb, wi) || !sx.warmFactorize(wi) {
		return sx.warmFallbackCold(wi)
	}
	wi.Accepted = true
	if sx.maxBasicViolation() <= sx.opt.FeasTol*10 {
		// The warm basic point is feasible: go straight to phase 2.
		wi.Phase1Skipped = true
		wi.PivotsSaved = coldArts
		return sx.phases(false)
	}
	// Selective repair: when every out-of-bound basic is a row slack — the
	// signature of a model that grew by appended rows violated at the warm
	// vertex, as in a column-generation master re-solve or a phase-2 solve
	// warm-started from a truncated phase-1 basis — each such slack is
	// swapped for its row's artificial and the REST of the warm basis (and
	// the warm vertex) survives intact. Phase 1 then only has to drive out
	// those few artificials instead of re-deriving the whole vertex from the
	// projected point below.
	if sx.swapInfeasibleSlacks() {
		if err := sx.refactorize(); err != nil {
			return nil, err
		}
		sol, err := sx.phases(true)
		if coldArts > sx.startingArts {
			wi.PivotsSaved = coldArts - sx.startingArts
		}
		return sol, err
	}
	// Reduced phase 1: bound-shift the warm basics onto the projected warm
	// point and let artificials absorb the (small) residual. Rows the
	// projected point already satisfies get a zero-valued artificial that
	// phase 1 never needs to pivot out.
	for pos := 0; pos < sx.nRow; pos++ {
		j := sx.basisOf[pos]
		sx.x[j], sx.status[j] = nearestBound(sx.lb[j], sx.ub[j], sx.x[j])
		sx.posOf[j] = -1
	}
	sx.etas = sx.etas[:0]
	sol, err := sx.solveFromPoint()
	if warmArts := sx.startingArts; coldArts > warmArts {
		wi.PivotsSaved = coldArts - warmArts
	}
	return sol, err
}

// nearestBound projects v onto the variable's own range and returns the
// matching nonbasic status (free variables go to zero).
func nearestBound(lb, ub, v float64) (float64, int8) {
	switch {
	case math.IsInf(lb, -1) && math.IsInf(ub, 1):
		return 0, atFree
	case math.IsInf(lb, -1):
		return ub, atUpper
	case math.IsInf(ub, 1):
		return lb, atLower
	case math.Abs(v-lb) <= math.Abs(ub-v):
		return lb, atLower
	default:
		return ub, atUpper
	}
}

// warmNonbasic resolves a requested nonbasic status against the variable's
// actual bounds, repairing statuses that reference a nonexistent bound.
func warmNonbasic(lb, ub float64, want BasisStatus) (v float64, st int8, repaired bool) {
	switch want {
	case BasisAtLower:
		if math.IsInf(lb, -1) {
			v, st = initialValue(lb, ub)
			return v, st, true
		}
		return lb, atLower, false
	case BasisAtUpper:
		if math.IsInf(ub, 1) {
			v, st = initialValue(lb, ub)
			return v, st, true
		}
		return ub, atUpper, false
	default: // BasisFree
		if math.IsInf(lb, -1) && math.IsInf(ub, 1) {
			return 0, atFree, false
		}
		v, st = initialValue(lb, ub)
		return v, st, true
	}
}

// installWarmBasis applies the basis statuses to the computational form,
// balancing the basic-column count to exactly nRow (demoting surplus
// basics, promoting slacks to fill a deficit). Artificials stay retired:
// pinned at zero with empty columns. Reports false only when no square
// basis could be assembled.
func (sx *simplex) installWarmBasis(wb *Basis, wi *WarmInfo) bool {
	cand := make([]int, 0, sx.nRow)
	for j := 0; j < sx.nStr; j++ {
		want := BasisAtLower
		if j < len(wb.VarStatus) {
			want = wb.VarStatus[j]
		} else {
			// New variable the basis predates: natural starting bound.
			sx.x[j], sx.status[j] = initialValue(sx.lb[j], sx.ub[j])
			continue
		}
		if want == BasisBasic {
			sx.status[j] = basic
			cand = append(cand, j)
			continue
		}
		v, st, rep := warmNonbasic(sx.lb[j], sx.ub[j], want)
		if sx.lb[j] == sx.ub[j] {
			// Pinned variable: any nonbasic status is equivalent.
			v, st, rep = sx.lb[j], atLower, false
		}
		if rep {
			wi.Repairs++
		}
		sx.x[j], sx.status[j] = v, st
	}
	for i := 0; i < sx.nRow; i++ {
		s := sx.nStr + i
		want := BasisBasic // new rows the basis predates: slack-basic
		if i < len(wb.RowStatus) {
			want = wb.RowStatus[i]
		}
		if want == BasisBasic {
			sx.status[s] = basic
			cand = append(cand, s)
			continue
		}
		v, st, rep := warmNonbasic(sx.lb[s], sx.ub[s], want)
		if sx.lb[s] == sx.ub[s] {
			v, st, rep = sx.lb[s], atLower, false
		}
		if rep {
			wi.Repairs++
		}
		sx.x[s], sx.status[s] = v, st
	}
	// Artificials: retired from the start (installed lazily only if the
	// reduced phase 1 needs them).
	for i := 0; i < sx.nRow; i++ {
		a := sx.nStr + sx.nRow + i
		sx.x[a], sx.status[a] = 0, atLower
	}

	// Balance to a square basis. Surplus basics are demoted from the
	// highest variable index down (slacks before structurals, matching how
	// cold starts prefer structural columns); deficits are filled with
	// nonbasic slacks in ascending row order. Both choices are
	// deterministic functions of the model and basis alone.
	if len(cand) > sx.nRow {
		for _, j := range cand[sx.nRow:] {
			sx.x[j], sx.status[j] = initialValue(sx.lb[j], sx.ub[j])
			wi.Repairs++
		}
		cand = cand[:sx.nRow]
	}
	for i := 0; i < sx.nRow && len(cand) < sx.nRow; i++ {
		s := sx.nStr + i
		if sx.status[s] != basic {
			sx.status[s] = basic
			cand = append(cand, s)
			wi.Repairs++
		}
	}
	if len(cand) != sx.nRow {
		return false
	}
	for pos, j := range cand {
		sx.basisOf[pos] = j
		sx.posOf[j] = pos
	}
	return true
}

// warmFactorize factorises the warm basis with singularity repair: basis
// positions whose column is linearly dependent are patched with the slack
// of a row no other basis column pivots (a slack column is exactly the
// unit column the repair substituted, so the returned factors describe the
// patched basis exactly). Reports false when the basis cannot be made
// nonsingular this way.
func (sx *simplex) warmFactorize(wi *WarmInfo) bool {
	cols := make([]spCol, sx.nRow)
	for i, j := range sx.basisOf {
		cols[i] = sx.cols[j]
	}
	lu, patched, err := factorizeRepair(sx.nRow, cols)
	if err != nil {
		return false
	}
	// Demote every replaced variable first, then install the slacks: a
	// replaced variable may itself be the slack another patch installs.
	for _, p := range patched {
		jold := sx.basisOf[p.pos]
		sx.x[jold], sx.status[jold] = initialValue(sx.lb[jold], sx.ub[jold])
		sx.posOf[jold] = -1
		sx.basisOf[p.pos] = -1
	}
	for _, p := range patched {
		s := sx.nStr + p.row
		if sx.status[s] == basic {
			return false // slack already occupies an unpatched position
		}
		sx.basisOf[p.pos] = s
		sx.posOf[s] = p.pos
		sx.status[s] = basic
		wi.Repairs++
	}
	sx.refactors++
	sx.lu = lu
	sx.etas = sx.etas[:0]
	sx.recomputeBasics()
	return true
}

// maxBasicViolation returns the worst bound violation over the basic
// variables (nonbasic variables sit exactly on a bound by construction).
func (sx *simplex) maxBasicViolation() float64 {
	worst := 0.0
	for _, j := range sx.basisOf {
		if v := sx.lb[j] - sx.x[j]; v > worst {
			worst = v
		}
		if v := sx.x[j] - sx.ub[j]; v > worst {
			worst = v
		}
	}
	return worst
}

// countColdArtificials computes, without disturbing solver state, how many
// artificials a cold start of this model would install at a nonzero
// residual — the baseline for the pivots_saved estimate.
func (sx *simplex) countColdArtificials() int {
	res := append([]float64(nil), sx.b...)
	for j := 0; j < sx.nStr+sx.nRow; j++ {
		if v, _ := initialValue(sx.lb[j], sx.ub[j]); v != 0 {
			c := &sx.cols[j]
			for i, r := range c.rows {
				res[r] -= c.vals[i] * v
			}
		}
	}
	n := 0
	for _, r := range res {
		if math.Abs(r) > sx.opt.FeasTol {
			n++
		}
	}
	return n
}

// swapInfeasibleSlacks is the in-place warm repair: every basic variable
// outside its bounds that is a row slack is replaced in the basis by that
// row's artificial, installed with the sign and value that absorb exactly
// the row's residual once the slack retreats to its nearest bound. A slack
// column and its artificial are both ± unit columns of the same row, so
// the swap preserves basis nonsingularity and every other basic variable
// keeps its warm value. Reports false — touching nothing — if some
// out-of-bound basic is a structural variable, in which case the caller
// falls back to the projection repair.
func (sx *simplex) swapInfeasibleSlacks() bool {
	tol := sx.opt.FeasTol * 10
	violated := func(j int) bool {
		return sx.x[j] < sx.lb[j]-tol || sx.x[j] > sx.ub[j]+tol
	}
	for _, j := range sx.basisOf {
		if violated(j) && (j < sx.nStr || j >= sx.nStr+sx.nRow) {
			return false
		}
	}
	sx.startingArts = 0
	for pos, j := range sx.basisOf {
		if !violated(j) {
			continue
		}
		i := j - sx.nStr // the slack's own row
		w, st := nearestBound(sx.lb[j], sx.ub[j], sx.x[j])
		resid := sx.x[j] - w
		a := sx.nStr + sx.nRow + i
		coef := 1.0
		if resid < 0 {
			coef = -1
		}
		sx.cols[a].add(i, coef)
		sx.lb[a], sx.ub[a] = 0, Inf
		sx.x[a] = math.Abs(resid)
		sx.status[a] = basic
		sx.basisOf[pos] = a
		sx.posOf[a] = pos
		sx.posOf[j] = -1
		sx.x[j], sx.status[j] = w, st
		sx.startingArts++
	}
	return true
}

// warmFallbackCold abandons an unrepairable warm basis and restarts cold,
// recording the warm_repair_fallback health anomaly when probes are on.
func (sx *simplex) warmFallbackCold(wi *WarmInfo) (*Solution, error) {
	if sx.health != nil {
		sx.health.note(AnomalyWarmRepairFallback, 0, 0, float64(wi.Repairs),
			"warm basis unrepairable; solve fell back to a cold start")
	}
	sx.resetForCold()
	return sx.solve()
}

// resetForCold rewinds a failed warm attempt so solve() starts from a
// pristine state: positions cleared, eta file emptied, artificial columns
// still untouched (a failed warm start never installs them).
func (sx *simplex) resetForCold() {
	for j := range sx.posOf {
		sx.posOf[j] = -1
	}
	sx.etas = sx.etas[:0]
}
