package lp

import (
	"fmt"
	"math"
)

// This file is the solver's numerical-health observatory: per-solve
// iteration probes sampled every Options.HealthEvery pivots, plus typed
// anomaly detectors. Probes read solver state (objective, primal residual,
// degeneracy, eta-file depth) but never write it, so the pivot sequence —
// and therefore every solution byte — is identical with probes on or off.
// The samples and anomalies flush to the Recorder under lp.health.* and are
// attached to the Solution as a HealthReport for callers (the TE layer
// turns them into solver_health / solver_anomaly flight-recorder events).

// AnomalyReason classifies one detected solver-health anomaly.
type AnomalyReason string

// Anomaly reason codes.
const (
	// AnomalyStall: the objective made no relative progress over
	// healthStallWindows consecutive probe windows while the solver kept
	// pivoting — the classic signature of a stalling (heavily degenerate or
	// numerically stuck) simplex.
	AnomalyStall AnomalyReason = "stall"
	// AnomalyResidualDrift: the primal residual ‖Ax−b‖∞ at a probe exceeded
	// healthDriftFactor × FeasTol — the factorised basis updates have
	// drifted away from the constraint system they claim to satisfy.
	AnomalyResidualDrift AnomalyReason = "residual_drift"
	// AnomalyWarmRepairFallback: a warm-start basis was unrepairable and the
	// solve fell back to a full cold start. One fallback is survivable; a
	// storm of them means the warm-source plumbing is feeding garbage bases.
	AnomalyWarmRepairFallback AnomalyReason = "warm_repair_fallback"
	// AnomalyCyclingSuspect: the consecutive-degenerate-pivot count crossed
	// the Bland anti-cycling trigger. The solver survives (Bland's rule
	// guarantees termination) but spends pivots fighting a cycle.
	AnomalyCyclingSuspect AnomalyReason = "cycling_suspect"
)

// AnomalyReasons lists every reason code, in stable order. The obs layer
// derives per-reason counter names (lp.health.anomaly.<reason>) from it.
func AnomalyReasons() []AnomalyReason {
	return []AnomalyReason{AnomalyStall, AnomalyResidualDrift, AnomalyWarmRepairFallback, AnomalyCyclingSuspect}
}

// Detector thresholds. They are calibrated so a numerically healthy solve —
// including the standard recorded pipeline — produces zero anomalies, which
// is exactly what CI gates on.
const (
	// healthStallRelTol is the minimum relative objective movement per probe
	// window that counts as progress.
	healthStallRelTol = 1e-10
	// healthStallWindows is how many consecutive no-progress windows raise
	// an AnomalyStall. Short degenerate stretches at a vertex are normal;
	// several whole windows (each HealthEvery pivots wide) are not.
	healthStallWindows = 3
	// healthStallSpanRows additionally requires the flat stretch to span at
	// least this many times nRow pivots before a stall fires: degenerate
	// plateaus in healthy solves scale with the row dimension (network LPs
	// routinely sit flat for a fraction of nRow pivots while walking a
	// degenerate vertex), so a fixed window count alone would false-positive
	// on big healthy models probed at a small interval.
	healthStallSpanRows = 2
	// healthDriftFactor scales FeasTol into the residual-drift threshold:
	// residuals are expected near FeasTol; three decades above it is drift.
	healthDriftFactor = 1e3
)

// Anomaly is one typed solver-health finding.
type Anomaly struct {
	Reason AnomalyReason `json:"reason"`
	// Phase is the simplex phase the anomaly was detected in (1 or 2; 0 when
	// the anomaly precedes phase entry, e.g. a warm-repair fallback).
	Phase int `json:"phase"`
	// Iter is the pivot count at detection.
	Iter int `json:"iter"`
	// Value is the reason-specific magnitude: the residual for drift, the
	// stalled windows' relative progress for stall, the consecutive
	// degenerate count for cycling, the repair count for fallback.
	Value float64 `json:"value"`
	// Detail is a short human-readable elaboration.
	Detail string `json:"detail"`
}

func (a Anomaly) String() string {
	return fmt.Sprintf("%s@p%d/i%d (%.3g): %s", a.Reason, a.Phase, a.Iter, a.Value, a.Detail)
}

// HealthSample is one probe of the running solver's numerical state.
type HealthSample struct {
	// Iter is the cumulative pivot count at the probe.
	Iter int `json:"iter"`
	// Phase is 1 during the feasibility phase, 2 after.
	Phase int `json:"phase"`
	// Obj is the current phase's objective (c·x in the solve sense; the
	// artificial sum during phase 1).
	Obj float64 `json:"obj"`
	// ObjDelta is the relative objective progress since the previous probe
	// of the same phase (-1 on the first probe of a phase).
	ObjDelta float64 `json:"obj_delta"`
	// ResidualInf is the primal residual ‖Ax−b‖∞ over the full column set.
	ResidualInf float64 `json:"residual_inf"`
	// DegenRatio is the degenerate fraction of the pivots in this window.
	DegenRatio float64 `json:"degen_ratio"`
	// EtaDepth is the eta-file length (pivots since last refactorisation).
	EtaDepth int `json:"eta_depth"`
	// Refactors is the cumulative refactorisation count.
	Refactors int `json:"refactors"`
}

// HealthReport is the per-solve health record attached to a Solution when
// Options.HealthEvery > 0.
type HealthReport struct {
	// Every is the probe interval the solve ran with.
	Every int `json:"every"`
	// Samples are the probes in pivot order.
	Samples []HealthSample `json:"samples,omitempty"`
	// Anomalies are the detector findings (deduplicated per reason+phase).
	Anomalies []Anomaly `json:"anomalies,omitempty"`
	// MaxResidual is the worst ‖Ax−b‖∞ seen across the probes.
	MaxResidual float64 `json:"max_residual"`
}

// PhaseSeries extracts the objective trajectory of one phase from the
// samples — the per-phase pivot-progress sparkline data the report renders.
// Empty when the phase recorded no probes.
func (h *HealthReport) PhaseSeries(phase int) []float64 {
	if h == nil {
		return nil
	}
	var out []float64
	for _, s := range h.Samples {
		if s.Phase == phase {
			out = append(out, s.Obj)
		}
	}
	return out
}

// healthState is the live probe machinery of one solve.
type healthState struct {
	every     int
	nRow      int
	samples   []HealthSample
	anomalies []Anomaly
	seen      map[AnomalyReason]map[int]bool // reason -> phase -> reported

	phase     int
	lastObj   float64
	haveLast  bool
	lastDegen int // degenTotal at the previous probe
	stallRuns int // consecutive no-progress windows
	maxRes    float64

	res []float64 // probe-owned residual scratch (never shared with pivots)
}

func newHealthState(every, nRow int) *healthState {
	return &healthState{
		every: every,
		nRow:  nRow,
		seen:  map[AnomalyReason]map[int]bool{},
		res:   make([]float64, nRow),
	}
}

// note records an anomaly once per (reason, phase).
func (h *healthState) note(reason AnomalyReason, phase, iter int, value float64, detail string) {
	byPhase := h.seen[reason]
	if byPhase == nil {
		byPhase = map[int]bool{}
		h.seen[reason] = byPhase
	}
	if byPhase[phase] {
		return
	}
	byPhase[phase] = true
	h.anomalies = append(h.anomalies, Anomaly{Reason: reason, Phase: phase, Iter: iter, Value: value, Detail: detail})
}

// report packages the state for Solution.Health (nil state -> nil report).
func (h *healthState) report() *HealthReport {
	if h == nil {
		return nil
	}
	return &HealthReport{Every: h.every, Samples: h.samples, Anomalies: h.anomalies, MaxResidual: h.maxRes}
}

// primalResidualInf computes ‖b − Ax‖∞ over every column (structural,
// slack and artificial: with artificials included, Ax = b is the invariant
// the factorised updates are supposed to preserve, so any departure is
// numerical drift). Read-only on solver state; scratch is probe-owned.
func (sx *simplex) primalResidualInf() float64 {
	res := sx.health.res
	copy(res, sx.b)
	for j := 0; j < sx.nTot; j++ {
		if v := sx.x[j]; v != 0 {
			c := &sx.cols[j]
			for i, r := range c.rows {
				res[r] -= c.vals[i] * v
			}
		}
	}
	worst := 0.0
	for _, r := range res {
		if a := math.Abs(r); a > worst {
			worst = a
		}
	}
	return worst
}

// record ingests one raw probe measurement, appends the sample, and runs
// the windowed stall and residual-drift detectors. Split from healthProbe
// so the detector logic is unit-testable on synthetic sequences.
func (h *healthState) record(phase, iter int, obj, res float64, degenWin, etaDepth, refactors int, feasTol float64) {
	if phase != h.phase {
		// Phase transition: objective changes meaning, windows reset.
		h.phase = phase
		h.haveLast = false
		h.stallRuns = 0
	}
	if res > h.maxRes {
		h.maxRes = res
	}
	s := HealthSample{
		Iter: iter, Phase: phase, Obj: obj, ObjDelta: -1,
		ResidualInf: res, DegenRatio: float64(degenWin) / float64(h.every),
		EtaDepth: etaDepth, Refactors: refactors,
	}
	if h.haveLast {
		s.ObjDelta = math.Abs(obj-h.lastObj) / (1 + math.Abs(obj))
		if s.ObjDelta <= healthStallRelTol {
			h.stallRuns++
			if h.stallRuns >= healthStallWindows && h.stallRuns*h.every >= healthStallSpanRows*h.nRow {
				h.note(AnomalyStall, phase, iter, s.ObjDelta,
					fmt.Sprintf("no objective progress over %d probe windows (%d pivots)", h.stallRuns, h.stallRuns*h.every))
			}
		} else {
			h.stallRuns = 0
		}
	}
	h.lastObj = obj
	h.haveLast = true
	h.samples = append(h.samples, s)

	if drift := healthDriftFactor * feasTol; res > drift {
		h.note(AnomalyResidualDrift, phase, iter, res,
			fmt.Sprintf("primal residual %.3g above %.3g (= %g × FeasTol)", res, drift, healthDriftFactor))
	}
}

// healthProbe takes one sample and runs the windowed detectors. Called from
// iterate every HealthEvery pivots; cost is the active phase's cost vector.
func (sx *simplex) healthProbe(cost []float64, phase1 bool) {
	h := sx.health
	phase := 2
	if phase1 {
		phase = 1
	}
	obj := 0.0
	for j := 0; j < sx.nTot; j++ {
		if v := sx.x[j]; v != 0 {
			obj += cost[j] * v
		}
	}
	res := sx.primalResidualInf()
	degenWin := sx.degenTotal - h.lastDegen
	h.lastDegen = sx.degenTotal
	h.record(phase, sx.iters, obj, res, degenWin, len(sx.etas), sx.refactors, sx.opt.FeasTol)
}

// healthNoteCycling records the Bland-trigger crossing (called from iterate
// when anti-cycling pricing engages and probes are on).
func (sx *simplex) healthNoteCycling(phase1 bool) {
	phase := 2
	if phase1 {
		phase = 1
	}
	sx.health.note(AnomalyCyclingSuspect, phase, sx.iters, float64(sx.degenerate),
		fmt.Sprintf("%d consecutive degenerate pivots engaged Bland's rule", sx.degenerate))
}

// attachHealth hangs the probe record off the solution (no-op without one,
// or when the solve errored before producing a solution).
func (sx *simplex) attachHealth(sol *Solution) {
	if sx.health == nil || sol == nil {
		return
	}
	sol.Health = sx.health.report()
}

// flushHealthMetrics reports the probe record to the recorder under the
// lp.health.* schema (called from flushMetrics; recorder is non-nil).
func (sx *simplex) flushHealthMetrics(r recorderIface) {
	h := sx.health
	if h == nil {
		return
	}
	r.Add("lp.health.probes", int64(len(h.samples)))
	r.Add("lp.health.anomalies", int64(len(h.anomalies)))
	for _, a := range h.anomalies {
		r.Add("lp.health.anomaly."+string(a.Reason), 1)
	}
	for _, s := range h.samples {
		r.Observe("lp.health.residual_inf", s.ResidualInf)
		r.Observe("lp.health.degenerate_ratio", s.DegenRatio)
		r.Observe("lp.health.eta_depth", float64(s.EtaDepth))
		if s.ObjDelta >= 0 {
			r.Observe("lp.health.obj_progress", s.ObjDelta)
		}
	}
}

// recorderIface mirrors the obs.Recorder subset the health flush needs; it
// exists so flushHealthMetrics can be tested with a local fake without the
// lp package re-importing obs under a second name.
type recorderIface interface {
	Add(name string, delta int64)
	Observe(name string, v float64)
}
