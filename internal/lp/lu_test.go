package lp

import (
	"math"
	"math/rand"
	"testing"
)

// denseSolve solves A x = b by Gaussian elimination with partial pivoting.
// A is row-major n*n. Returns false if singular.
func denseSolve(n int, a []float64, b []float64) ([]float64, bool) {
	m := make([]float64, len(a))
	copy(m, a)
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// pivot
		p, best := -1, 1e-12
		for i := k; i < n; i++ {
			if v := math.Abs(m[i*n+k]); v > best {
				best, p = v, i
			}
		}
		if p < 0 {
			return nil, false
		}
		if p != k {
			for j := 0; j < n; j++ {
				m[p*n+j], m[k*n+j] = m[k*n+j], m[p*n+j]
			}
			x[p], x[k] = x[k], x[p]
		}
		for i := k + 1; i < n; i++ {
			f := m[i*n+k] / m[k*n+k]
			if f == 0 {
				continue
			}
			for j := k; j < n; j++ {
				m[i*n+j] -= f * m[k*n+j]
			}
			x[i] -= f * x[k]
		}
	}
	for k := n - 1; k >= 0; k-- {
		s := x[k]
		for j := k + 1; j < n; j++ {
			s -= m[k*n+j] * x[j]
		}
		x[k] = s / m[k*n+k]
	}
	return x, true
}

// randomSparse builds a random, diagonally nudged, nonsingular sparse matrix
// both as dense row-major and as sparse columns.
func randomSparse(rng *rand.Rand, n int, density float64) ([]float64, []spCol) {
	dense := make([]float64, n*n)
	cols := make([]spCol, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i == j || rng.Float64() < density {
				v := rng.NormFloat64()
				if i == j {
					v += 3 * (1 + rng.Float64()) // keep well-conditioned
				}
				if v == 0 {
					v = 0.5
				}
				dense[i*n+j] = v
				cols[j].add(i, v)
			}
		}
	}
	return dense, cols
}

func TestLUSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(30)
		dense, cols := randomSparse(rng, n, 0.2)
		f, err := factorize(n, cols)
		if err != nil {
			t.Fatalf("trial %d: factorize: %v", trial, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, ok := denseSolve(n, dense, b)
		if !ok {
			continue
		}
		got := make([]float64, n)
		bc := append([]float64(nil), b...)
		f.solve(bc, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d n=%d: solve x[%d]=%g want %g", trial, n, i, got[i], want[i])
			}
		}
	}
}

func TestLUSolveTransposeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(25)
		dense, cols := randomSparse(rng, n, 0.25)
		f, err := factorize(n, cols)
		if err != nil {
			t.Fatalf("trial %d: factorize: %v", trial, err)
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		// Build dense transpose and solve.
		dt := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dt[j*n+i] = dense[i*n+j]
			}
		}
		want, ok := denseSolve(n, dt, c)
		if !ok {
			continue
		}
		got := make([]float64, n)
		f.solveT(c, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d n=%d: solveT y[%d]=%g want %g", trial, n, i, got[i], want[i])
			}
		}
	}
}

func TestLUSingularDetected(t *testing.T) {
	// Two identical columns.
	cols := make([]spCol, 2)
	cols[0].add(0, 1)
	cols[0].add(1, 2)
	cols[1].add(0, 1)
	cols[1].add(1, 2)
	if _, err := factorize(2, cols); err == nil {
		t.Fatal("expected singular-basis error")
	}
}

func TestLUIdentity(t *testing.T) {
	n := 5
	cols := make([]spCol, n)
	for i := 0; i < n; i++ {
		cols[i].add(i, 1)
	}
	f, err := factorize(n, cols)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, -2, 3, -4, 5}
	x := make([]float64, n)
	bc := append([]float64(nil), b...)
	f.solve(bc, x)
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("identity solve: x[%d]=%g", i, x[i])
		}
	}
	y := make([]float64, n)
	f.solveT(b, y)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-12 {
			t.Fatalf("identity solveT: y[%d]=%g", i, y[i])
		}
	}
}

func TestLUPermutation(t *testing.T) {
	// A permutation matrix: column j has a 1 in row (j+2)%n.
	n := 7
	cols := make([]spCol, n)
	for j := 0; j < n; j++ {
		cols[j].add((j+2)%n, 1)
	}
	f, err := factorize(n, cols)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	x := make([]float64, n)
	bc := append([]float64(nil), b...)
	f.solve(bc, x)
	// B x = b with B[(j+2)%n][j]=1 means x[j] = b[(j+2)%n].
	for j := 0; j < n; j++ {
		if want := b[(j+2)%n]; math.Abs(x[j]-want) > 1e-12 {
			t.Fatalf("perm solve: x[%d]=%g want %g", j, x[j], want)
		}
	}
}
