package lp

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchWarmModel builds a mid-sized LE-form LP shaped like the RWA
// assignment problems (all rows <=, nonnegative rhs, unit-ish columns):
// the family the pipeline warm-starts with a slack basis.
func benchWarmModel(nv, nr int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel("bench-warm")
	m.SetMaximize(true)
	vars := make([]Var, nv)
	for j := range vars {
		vars[j] = m.AddVar(0, 1, 1+0.1*rng.Float64(), fmt.Sprintf("x%d", j))
	}
	for i := 0; i < nr; i++ {
		var e Expr
		for k := 0; k < 4; k++ {
			e = e.Plus(1, vars[rng.Intn(nv)])
		}
		m.AddConstr(e, LE, 1+rng.Float64()*2, fmt.Sprintf("r%d", i))
	}
	return m
}

// BenchmarkSolveWarmVsCold compares a cold Solve against a slack-basis
// warm start of the same model, reporting allocations per solve (the
// scratch-vector pooling keeps the warm path's allocs flat).
func BenchmarkSolveWarmVsCold(b *testing.B) {
	m := benchWarmModel(240, 120, 42)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := Solve(m, nil)
			if err != nil || sol.Status != StatusOptimal {
				b.Fatalf("sol=%v err=%v", sol, err)
			}
		}
	})
	b.Run("warm-slack", func(b *testing.B) {
		basis := SlackBasis(m)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := SolveWithBasis(m, basis, nil)
			if err != nil || sol.Status != StatusOptimal {
				b.Fatalf("sol=%v err=%v", sol, err)
			}
		}
	})
	b.Run("warm-own-basis", func(b *testing.B) {
		base, err := Solve(m, nil)
		if err != nil || base.Basis == nil {
			b.Fatalf("base solve: %v", err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := SolveWithBasis(m, base.Basis, nil)
			if err != nil || sol.Status != StatusOptimal {
				b.Fatalf("sol=%v err=%v", sol, err)
			}
		}
	})
}
