package lp

import (
	"math"
	"testing"

	"github.com/arrow-te/arrow/internal/obs"
)

// warmTestModel builds a small LE-form model whose all-slack basis is
// primal feasible (every row <=, rhs >= 0, vars start at 0).
func warmTestModel() *Model {
	m := NewModel("warm-le")
	m.SetMaximize(true)
	x := m.AddVar(0, 4, 3, "x")
	y := m.AddVar(0, 10, 2, "y")
	z := m.AddVar(0, 10, 4, "z")
	m.AddConstr(Expr{}.Plus(1, x).Plus(1, y).Plus(2, z), LE, 14, "r1")
	m.AddConstr(Expr{}.Plus(3, x).Plus(1, y), LE, 12, "r2")
	m.AddConstr(Expr{}.Plus(1, y).Plus(1, z), LE, 8, "r3")
	return m
}

// warmEqModel has equality rows, so its slack basis is NOT feasible at the
// starting point and exercises the reduced phase 1 / fallback paths.
func warmEqModel() *Model {
	m := NewModel("warm-eq")
	x := m.AddVar(0, 10, 1, "x")
	y := m.AddVar(0, 10, 2, "y")
	m.AddConstr(Expr{}.Plus(1, x).Plus(1, y), EQ, 6, "sum")
	m.AddConstr(Expr{}.Plus(1, x).Plus(-1, y), LE, 2, "diff")
	return m
}

func TestSlackBasisSkipsPhase1(t *testing.T) {
	m := warmTestModel()
	rec := obs.NewRegistry()
	cold, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	warm, err := SolveWithBasis(m, SlackBasis(m), &Options{Recorder: rec})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if warm.Status != StatusOptimal {
		t.Fatalf("warm status = %v", warm.Status)
	}
	if warm.Warm == nil || !warm.Warm.Accepted || !warm.Warm.Phase1Skipped {
		t.Fatalf("warm info = %+v, want accepted with phase 1 skipped", warm.Warm)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("objectives differ: warm %v cold %v", warm.Objective, cold.Objective)
	}
	if err := CheckCertificate(warm.Cert, 0); err != nil {
		t.Fatalf("warm certificate: %v", err)
	}
	snap := rec.Snapshot()
	if snap.Counters["lp.phase1_pivots"] != 0 {
		t.Fatalf("phase-1 pivots = %d, want 0", snap.Counters["lp.phase1_pivots"])
	}
	if snap.Counters["lp.phase1_skipped"] != 1 || snap.Counters["lp.warm_accepted"] != 1 {
		t.Fatalf("warm counters = %v", snap.Counters)
	}
}

func TestWarmRestartFromOwnBasis(t *testing.T) {
	m := warmTestModel()
	first, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("first solve: %v", err)
	}
	if first.Basis == nil {
		t.Fatal("optimal solution carries no basis")
	}
	second, err := SolveWithBasis(m, first.Basis, nil)
	if err != nil {
		t.Fatalf("restart solve: %v", err)
	}
	if second.Iterations != 0 {
		t.Fatalf("restart from optimal basis took %d pivots, want 0", second.Iterations)
	}
	if math.Abs(second.Objective-first.Objective) > 1e-12 {
		t.Fatalf("objectives differ: %v vs %v", second.Objective, first.Objective)
	}
	for j := range first.X {
		if math.Abs(first.X[j]-second.X[j]) > 1e-9 {
			t.Fatalf("X[%d] differs: %v vs %v", j, first.X[j], second.X[j])
		}
	}
}

func TestWarmStartAfterRHSChange(t *testing.T) {
	m := warmTestModel()
	base, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("base solve: %v", err)
	}
	m.SetRHS(Constr(0), 11)
	m.SetRHS(Constr(2), 6)
	if got := m.RHS(0); got != 11 {
		t.Fatalf("RHS(0) = %v after SetRHS", got)
	}
	cold, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("cold perturbed solve: %v", err)
	}
	warm, err := SolveWithBasis(m, base.Basis, nil)
	if err != nil {
		t.Fatalf("warm perturbed solve: %v", err)
	}
	if warm.Status != StatusOptimal || cold.Status != StatusOptimal {
		t.Fatalf("statuses: warm %v cold %v", warm.Status, cold.Status)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("objectives differ: warm %v cold %v", warm.Objective, cold.Objective)
	}
	if err := CheckCertificate(warm.Cert, 0); err != nil {
		t.Fatalf("warm certificate: %v", err)
	}
}

// TestWarmSolveLeavesBasisUntouched pins the contract the attribution
// pass's probe loop depends on: the caller's basis survives any number of
// warm re-solves — including ones that need repairs — byte for byte, so one
// captured phase-II basis can seed every RHS perturbation.
func TestWarmSolveLeavesBasisUntouched(t *testing.T) {
	m := warmTestModel()
	base, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("base solve: %v", err)
	}
	snap := base.Basis.Clone()
	for _, rhs := range []float64{11, 14, 6, 20} {
		orig := m.RHS(0)
		m.SetRHS(Constr(0), rhs)
		sol, err := SolveWithBasis(m, base.Basis, nil)
		m.SetRHS(Constr(0), orig)
		if err != nil {
			t.Fatalf("warm solve at rhs %v: %v", rhs, err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("warm solve at rhs %v: status %v", rhs, sol.Status)
		}
	}
	// A repaired warm start (statuses the eq model's bounds cannot satisfy)
	// must also leave the caller's copy alone.
	if _, err := SolveWithBasis(warmEqModel(), base.Basis, nil); err != nil {
		t.Fatalf("repaired warm solve: %v", err)
	}
	for j, st := range snap.VarStatus {
		if base.Basis.VarStatus[j] != st {
			t.Fatalf("VarStatus[%d] mutated: %v -> %v", j, st, base.Basis.VarStatus[j])
		}
	}
	for i, st := range snap.RowStatus {
		if base.Basis.RowStatus[i] != st {
			t.Fatalf("RowStatus[%d] mutated: %v -> %v", i, st, base.Basis.RowStatus[i])
		}
	}
}

func TestWarmStartAfterBoundChange(t *testing.T) {
	m := warmTestModel()
	base, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("base solve: %v", err)
	}
	m.SetBounds(Var(0), 0, 2) // tighten x
	cold, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	warm, err := SolveWithBasis(m, base.Basis, nil)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("objectives differ: warm %v cold %v", warm.Objective, cold.Objective)
	}
}

func TestWarmBasisRepairs(t *testing.T) {
	m := warmTestModel()
	cold, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	cases := []struct {
		name  string
		basis *Basis
	}{
		{"all-basic overfull", &Basis{
			VarStatus: []BasisStatus{BasisBasic, BasisBasic, BasisBasic},
			RowStatus: []BasisStatus{BasisBasic, BasisBasic, BasisBasic},
		}},
		{"no basics", &Basis{
			VarStatus: []BasisStatus{BasisAtLower, BasisAtLower, BasisAtLower},
			RowStatus: []BasisStatus{BasisAtLower, BasisAtLower, BasisAtLower},
		}},
		{"invalid bound reference", &Basis{
			// x has no upper bound issue here, but BasisFree on a bounded
			// var must be bound-shifted.
			VarStatus: []BasisStatus{BasisFree, BasisFree, BasisFree},
			RowStatus: []BasisStatus{BasisBasic, BasisBasic, BasisBasic},
		}},
		{"short slices (model grew)", &Basis{
			VarStatus: []BasisStatus{BasisBasic},
			RowStatus: []BasisStatus{BasisAtLower},
		}},
		{"oversized slices", &Basis{
			VarStatus: make([]BasisStatus, 3),
			RowStatus: make([]BasisStatus, 99),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warm, err := SolveWithBasis(m, tc.basis, nil)
			if err != nil {
				t.Fatalf("warm solve: %v", err)
			}
			if warm.Status != StatusOptimal {
				t.Fatalf("status = %v", warm.Status)
			}
			if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
				t.Fatalf("objective %v, want %v", warm.Objective, cold.Objective)
			}
			if err := CheckCertificate(warm.Cert, 0); err != nil {
				t.Fatalf("certificate: %v", err)
			}
		})
	}
}

// TestWarmSingularBasisPatched hands SolveWithBasis a structurally singular
// basis (two basic variables with identical columns) and expects the
// factorisation repair to patch it with slacks.
func TestWarmSingularBasisPatched(t *testing.T) {
	m := NewModel("singular")
	m.SetMaximize(true)
	x := m.AddVar(0, 5, 1, "x")
	y := m.AddVar(0, 5, 1, "y")
	m.AddConstr(Expr{}.Plus(1, x).Plus(1, y), LE, 6, "r1")
	m.AddConstr(Expr{}.Plus(2, x).Plus(2, y), LE, 20, "r2")
	cold, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	// x and y have proportional columns: making both basic is singular.
	warm, err := SolveWithBasis(m, &Basis{
		VarStatus: []BasisStatus{BasisBasic, BasisBasic},
		RowStatus: []BasisStatus{BasisAtLower, BasisAtLower},
	}, nil)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if warm.Status != StatusOptimal {
		t.Fatalf("status = %v", warm.Status)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("objective %v, want %v", warm.Objective, cold.Objective)
	}
	if warm.Warm == nil || warm.Warm.Repairs == 0 {
		t.Fatalf("warm info = %+v, want repairs > 0", warm.Warm)
	}
}

func TestWarmInfeasibleStartRunsReducedPhase1(t *testing.T) {
	m := warmEqModel()
	cold, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	rec := obs.NewRegistry()
	// The slack basis is infeasible for the EQ row (slack pinned at 0 but
	// basic, value must be 6-x-y = 6 at the origin): reduced phase 1 runs.
	warm, err := SolveWithBasis(m, SlackBasis(m), &Options{Recorder: rec})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if warm.Status != StatusOptimal {
		t.Fatalf("status = %v", warm.Status)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("objective %v, want %v", warm.Objective, cold.Objective)
	}
	if warm.Warm == nil || warm.Warm.Phase1Skipped {
		t.Fatalf("warm info = %+v, want phase 1 NOT skipped", warm.Warm)
	}
	if err := CheckCertificate(warm.Cert, 0); err != nil {
		t.Fatalf("certificate: %v", err)
	}
}

// TestWarmSolveOnInfeasibleModel checks warm starts preserve infeasibility
// detection.
func TestWarmSolveOnInfeasibleModel(t *testing.T) {
	m := NewModel("infeasible")
	x := m.AddVar(0, 1, 1, "x")
	m.AddConstr(Expr{}.Plus(1, x), GE, 5, "need5")
	warm, err := SolveWithBasis(m, SlackBasis(m), nil)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if warm.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", warm.Status)
	}
}

func TestWarmNilBasisIsColdSolve(t *testing.T) {
	m := warmTestModel()
	sol, err := SolveWithBasis(m, nil, nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if sol.Warm != nil {
		t.Fatalf("nil basis produced warm info %+v", sol.Warm)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestOptionsWithDefaultsClampsNegatives(t *testing.T) {
	def := (*Options)(nil).withDefaults(10, 20)
	neg := &Options{MaxIter: -5, Refactor: -1, FeasTol: -1e-3, OptTol: math.NaN()}
	got := neg.withDefaults(10, 20)
	if got.MaxIter != def.MaxIter {
		t.Errorf("MaxIter = %d, want default %d", got.MaxIter, def.MaxIter)
	}
	if got.Refactor != def.Refactor {
		t.Errorf("Refactor = %d, want default %d", got.Refactor, def.Refactor)
	}
	if got.FeasTol != def.FeasTol {
		t.Errorf("FeasTol = %v, want default %v", got.FeasTol, def.FeasTol)
	}
	if got.OptTol != def.OptTol {
		t.Errorf("OptTol = %v, want default %v", got.OptTol, def.OptTol)
	}
	// And a negative-option solve must still work.
	sol, err := Solve(warmTestModel(), neg)
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("solve with negative options: sol=%+v err=%v", sol, err)
	}
}

func TestTruncateConstrs(t *testing.T) {
	m := warmTestModel()
	if m.NumConstrs() != 3 {
		t.Fatalf("unexpected model shape")
	}
	full, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("full solve: %v", err)
	}
	m.TruncateConstrs(1)
	if m.NumConstrs() != 1 {
		t.Fatalf("NumConstrs = %d after truncate", m.NumConstrs())
	}
	relaxed, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("relaxed solve: %v", err)
	}
	if relaxed.Objective < full.Objective-1e-9 {
		t.Fatalf("dropping rows decreased a maximisation objective: %v -> %v", full.Objective, relaxed.Objective)
	}
	// Re-extend the skeleton with a different row and solve again.
	m.AddConstr(Expr{}.Plus(1, Var(1)), LE, 1, "tight-y")
	again, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("re-extended solve: %v", err)
	}
	if again.Status != StatusOptimal {
		t.Fatalf("status = %v", again.Status)
	}
}
