package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestCertificateSimpleMax checks the certificate of a tiny maximisation
// problem with a known optimum.
func TestCertificateSimpleMax(t *testing.T) {
	m := NewModel("cert-max")
	m.SetMaximize(true)
	x := m.AddVar(0, 2, 3, "x")
	y := m.AddVar(0, 3, 2, "y")
	m.AddConstr(Expr{}.Plus(1, x).Plus(1, y), LE, 4, "sum")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-10) > 1e-9 {
		t.Fatalf("objective %g, want 10", sol.Objective)
	}
	c := sol.Cert
	if c == nil {
		t.Fatal("optimal solve has no certificate")
	}
	if err := CheckCertificate(c, 0); err != nil {
		t.Fatalf("certificate rejected: %v (%+v)", err, c)
	}
	if math.Abs(c.Primal-sol.Objective) > 1e-9 {
		t.Errorf("cert primal %g != objective %g", c.Primal, sol.Objective)
	}
	if math.Abs(c.Primal-c.Dual) > 1e-9 {
		t.Errorf("primal %g vs dual %g", c.Primal, c.Dual)
	}
}

// TestCertificateMixedSenses exercises equality and >= rows, negative
// bounds and a free variable in a minimisation problem.
func TestCertificateMixedSenses(t *testing.T) {
	m := NewModel("cert-mixed")
	x := m.AddVar(-5, 5, 1, "x")
	y := m.AddVar(0, Inf, 2, "y")
	z := m.AddVar(-Inf, Inf, 3, "z") // free
	m.AddConstr(Expr{}.Plus(1, x).Plus(1, y).Plus(1, z), EQ, 4, "eq")
	m.AddConstr(Expr{}.Plus(1, y).Plus(2, z), GE, 3, "ge")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Cert == nil {
		t.Fatal("no certificate")
	}
	if err := CheckCertificate(sol.Cert, 0); err != nil {
		t.Fatalf("certificate rejected: %v (%+v)", err, sol.Cert)
	}
}

// TestCertificateRandomLPs solves a batch of random feasible LPs and
// requires every optimal one to pass certificate verification.
func TestCertificateRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		nVar := 2 + rng.Intn(8)
		nRow := 1 + rng.Intn(6)
		m := NewModel(fmt.Sprintf("rand-%d", trial))
		m.SetMaximize(trial%2 == 0)
		vars := make([]Var, nVar)
		for j := range vars {
			vars[j] = m.AddVar(0, 1+rng.Float64()*9, rng.NormFloat64(), fmt.Sprintf("x%d", j))
		}
		for i := 0; i < nRow; i++ {
			var e Expr
			for j := range vars {
				if rng.Float64() < 0.6 {
					e = e.Plus(rng.NormFloat64(), vars[j])
				}
			}
			if len(e) == 0 {
				continue
			}
			// rhs generous enough to keep x=0 feasible for LE rows.
			m.AddConstr(e, LE, rng.Float64()*20, fmt.Sprintf("r%d", i))
		}
		sol, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != StatusOptimal {
			continue
		}
		if sol.Cert == nil {
			t.Fatalf("trial %d: optimal but no certificate", trial)
		}
		if err := CheckCertificate(sol.Cert, 0); err != nil {
			t.Errorf("trial %d: %v (%+v)", trial, err, sol.Cert)
		}
	}
}

// TestCheckCertificateRejects covers the failure paths.
func TestCheckCertificateRejects(t *testing.T) {
	if err := CheckCertificate(nil, 0); err == nil {
		t.Error("nil certificate accepted")
	}
	bad := &Certificate{Primal: 10, Dual: 11, Gap: 1.0 / 11}
	if err := CheckCertificate(bad, 0); err == nil {
		t.Error("large duality gap accepted")
	}
	if err := CheckCertificate(&Certificate{PrimalInf: 1e-3}, 0); err == nil {
		t.Error("large primal residual accepted")
	}
	if err := CheckCertificate(&Certificate{DualInf: 1e-3}, 0); err == nil {
		t.Error("large dual residual accepted")
	}
	if err := CheckCertificate(&Certificate{Gap: math.NaN()}, 0); err == nil {
		t.Error("NaN gap accepted")
	}
	// A loose explicit tolerance must be honoured.
	if err := CheckCertificate(&Certificate{Gap: 1e-4}, 1e-3); err != nil {
		t.Errorf("gap below explicit tolerance rejected: %v", err)
	}
}
