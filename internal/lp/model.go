package lp

import (
	"fmt"
	"math"
)

// Inf is the bound used for unbounded variable ranges.
var Inf = math.Inf(1)

// Sense is the relational operator of a linear constraint.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // left-hand side <= rhs
	GE              // left-hand side >= rhs
	EQ              // left-hand side == rhs
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Var identifies a decision variable within a Model.
type Var int

// Constr identifies a constraint within a Model.
type Constr int

// Term is one coefficient*variable product in a linear expression.
type Term struct {
	Var  Var
	Coef float64
}

// Expr is a linear expression: a sum of terms.
type Expr []Term

// Plus appends a term to the expression and returns the extended expression.
func (e Expr) Plus(coef float64, v Var) Expr { return append(e, Term{Var: v, Coef: coef}) }

// Model is a linear program under construction.
// The zero value is an empty minimisation problem.
type Model struct {
	name     string
	maximize bool

	obj     []float64
	lb, ub  []float64
	varName []string
	integer []bool // used by package mip; ignored by the LP solver

	rows []rowData
}

type rowData struct {
	terms []Term
	sense Sense
	rhs   float64
	name  string
}

// NewModel returns an empty model with the given name.
func NewModel(name string) *Model { return &Model{name: name} }

// Name returns the model's name.
func (m *Model) Name() string { return m.name }

// SetName renames the model. Useful when one model skeleton is reused
// across solve families (diagnostics and ledger events carry the name).
func (m *Model) SetName(name string) { m.name = name }

// SetMaximize selects between maximisation (true) and minimisation (false,
// the default).
func (m *Model) SetMaximize(max bool) { m.maximize = max }

// Maximize reports whether the model is a maximisation problem.
func (m *Model) Maximize() bool { return m.maximize }

// AddVar adds a variable with bounds [lb, ub] and objective coefficient obj.
// Use -Inf/Inf for unbounded sides. The name is used in diagnostics only.
func (m *Model) AddVar(lb, ub, obj float64, name string) Var {
	m.lb = append(m.lb, lb)
	m.ub = append(m.ub, ub)
	m.obj = append(m.obj, obj)
	m.varName = append(m.varName, name)
	m.integer = append(m.integer, false)
	return Var(len(m.obj) - 1)
}

// AddIntVar adds a variable marked integral. The LP solver treats it as
// continuous; package mip enforces integrality via branch and bound.
func (m *Model) AddIntVar(lb, ub, obj float64, name string) Var {
	v := m.AddVar(lb, ub, obj, name)
	m.integer[v] = true
	return v
}

// AddBinVar adds a {0,1} integer variable.
func (m *Model) AddBinVar(obj float64, name string) Var {
	return m.AddIntVar(0, 1, obj, name)
}

// SetObj overwrites the objective coefficient of v.
func (m *Model) SetObj(v Var, coef float64) { m.obj[v] = coef }

// Obj returns the objective coefficient of v.
func (m *Model) Obj(v Var) float64 { return m.obj[v] }

// SetBounds overwrites the bounds of v.
func (m *Model) SetBounds(v Var, lb, ub float64) { m.lb[v], m.ub[v] = lb, ub }

// Bounds returns the bounds of v.
func (m *Model) Bounds(v Var) (lb, ub float64) { return m.lb[v], m.ub[v] }

// IsInteger reports whether v was added as an integer variable.
func (m *Model) IsInteger(v Var) bool { return m.integer[v] }

// VarName returns the diagnostic name of v.
func (m *Model) VarName(v Var) string { return m.varName[v] }

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.obj) }

// NumConstrs returns the number of constraints.
func (m *Model) NumConstrs() int { return len(m.rows) }

// NumIntVars returns the number of integer variables.
func (m *Model) NumIntVars() int {
	n := 0
	for _, b := range m.integer {
		if b {
			n++
		}
	}
	return n
}

// AddConstr adds the constraint expr (sense) rhs. Terms mentioning the same
// variable more than once are summed. It returns the constraint handle.
func (m *Model) AddConstr(expr Expr, sense Sense, rhs float64, name string) Constr {
	for _, t := range expr {
		if int(t.Var) < 0 || int(t.Var) >= len(m.obj) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
	}
	m.rows = append(m.rows, rowData{terms: combineTerms(expr), sense: sense, rhs: rhs, name: name})
	return Constr(len(m.rows) - 1)
}

// ColumnEntry is one (constraint, coefficient) pair of a column appended
// via AddVarToConstrs / AppendColumn.
type ColumnEntry struct {
	Constr Constr
	Coef   float64
}

// AddVarToConstrs adds a variable AND splices its column into existing
// constraints in place: each entry appends coef*v to the named row's terms.
// Entries with zero coefficient are dropped and duplicate entries for the
// same constraint are summed (matching AddConstr's combineTerms semantics).
// Part of the delta API (see SetRHS): together with TruncateConstrs it lets
// a restricted master problem grow column-wise between warm re-solves
// without cloning or rebuilding, which is what column generation needs.
func (m *Model) AddVarToConstrs(lb, ub, obj float64, name string, col []ColumnEntry) Var {
	for _, e := range col {
		if int(e.Constr) < 0 || int(e.Constr) >= len(m.rows) {
			panic(fmt.Sprintf("lp: column %q references unknown constraint %d", name, e.Constr))
		}
	}
	v := m.AddVar(lb, ub, obj, name)
	seen := make(map[Constr]int, len(col))
	for _, e := range col {
		if e.Coef == 0 {
			continue
		}
		r := &m.rows[e.Constr]
		if i, ok := seen[e.Constr]; ok {
			r.terms[i].Coef += e.Coef
			continue
		}
		seen[e.Constr] = len(r.terms)
		r.terms = append(r.terms, Term{Var: v, Coef: e.Coef})
	}
	return v
}

// AppendColumn is AddVarToConstrs plus warm-basis maintenance: it grows the
// model with the new column and extends basis (when non-nil) so the new
// variable enters NONBASIC at its natural starting bound and any rows added
// since the basis was exported become slack-basic. The extended basis stays
// a valid warm start for the grown model — the simplex pads exactly this
// way on import, but extending explicitly keeps the caller's basis usable
// for inspection and further appends. Mirrors TruncateConstrs on the
// column side of the delta API.
func (m *Model) AppendColumn(basis *Basis, lb, ub, obj float64, name string, col []ColumnEntry) Var {
	v := m.AddVarToConstrs(lb, ub, obj, name, col)
	if basis != nil {
		basis.ExtendTo(m)
	}
	return v
}

// SetRHS overwrites the right-hand side of constraint c in place. Part of
// the delta API: together with SetBounds and TruncateConstrs it lets one
// built model skeleton be re-solved under per-scenario patches without
// re-running combineTerms or cloning, so a basis from the previous solve
// stays structurally valid for SolveWithBasis.
func (m *Model) SetRHS(c Constr, rhs float64) { m.rows[c].rhs = rhs }

// RHS returns the right-hand side of constraint c.
func (m *Model) RHS(c Constr) float64 { return m.rows[c].rhs }

// ConstrSense returns the sense of constraint c.
func (m *Model) ConstrSense(c Constr) Sense { return m.rows[c].sense }

// ConstrName returns the diagnostic name of constraint c.
func (m *Model) ConstrName(c Constr) string { return m.rows[c].name }

// TruncateConstrs drops every constraint with index >= n, rewinding the
// model to an earlier skeleton. Variables are untouched. Constraint
// handles returned by AddConstr for dropped rows become invalid; handles
// below n stay valid. Part of the delta API (see SetRHS).
func (m *Model) TruncateConstrs(n int) {
	if n < 0 || n > len(m.rows) {
		panic(fmt.Sprintf("lp: TruncateConstrs(%d) outside [0, %d]", n, len(m.rows)))
	}
	// Clear the tails so their term slices can be collected even while the
	// backing array is retained for reuse by later AddConstr calls.
	for i := n; i < len(m.rows); i++ {
		m.rows[i] = rowData{}
	}
	m.rows = m.rows[:n]
}

// combineTerms sums duplicate variables and drops zero coefficients,
// preserving first-occurrence order.
func combineTerms(expr Expr) []Term {
	seen := make(map[Var]int, len(expr))
	out := make([]Term, 0, len(expr))
	for _, t := range expr {
		if i, ok := seen[t.Var]; ok {
			out[i].Coef += t.Coef
			continue
		}
		seen[t.Var] = len(out)
		out = append(out, t)
	}
	w := 0
	for _, t := range out {
		if t.Coef != 0 {
			out[w] = t
			w++
		}
	}
	return out[:w]
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := &Model{
		name:     m.name,
		maximize: m.maximize,
		obj:      append([]float64(nil), m.obj...),
		lb:       append([]float64(nil), m.lb...),
		ub:       append([]float64(nil), m.ub...),
		varName:  append([]string(nil), m.varName...),
		integer:  append([]bool(nil), m.integer...),
		rows:     make([]rowData, len(m.rows)),
	}
	for i, r := range m.rows {
		c.rows[i] = rowData{terms: append([]Term(nil), r.terms...), sense: r.sense, rhs: r.rhs, name: r.name}
	}
	return c
}

// Stats describes the size of a model.
type Stats struct {
	Vars, IntVars, Constrs, Nonzeros int
}

// Stats returns size statistics for the model.
func (m *Model) Stats() Stats {
	s := Stats{Vars: m.NumVars(), IntVars: m.NumIntVars(), Constrs: m.NumConstrs()}
	for _, r := range m.rows {
		s.Nonzeros += len(r.terms)
	}
	return s
}

// EvalExpr computes the value of a constraint's left-hand side at x.
func (m *Model) EvalExpr(c Constr, x []float64) float64 {
	sum := 0.0
	for _, t := range m.rows[c].terms {
		sum += t.Coef * x[t.Var]
	}
	return sum
}

// RowViolation returns how much point x violates constraint c (0 if satisfied).
func (m *Model) RowViolation(c Constr, x []float64) float64 {
	lhs := m.EvalExpr(c, x)
	r := m.rows[c]
	switch r.sense {
	case LE:
		return math.Max(0, lhs-r.rhs)
	case GE:
		return math.Max(0, r.rhs-lhs)
	default:
		return math.Abs(lhs - r.rhs)
	}
}

// MaxViolation returns the largest constraint or bound violation at x.
func (m *Model) MaxViolation(x []float64) float64 {
	worst := 0.0
	for i := range m.rows {
		if v := m.RowViolation(Constr(i), x); v > worst {
			worst = v
		}
	}
	for j := range m.obj {
		if v := m.lb[j] - x[j]; v > worst {
			worst = v
		}
		if v := x[j] - m.ub[j]; v > worst {
			worst = v
		}
	}
	return worst
}

// ObjValue computes the objective value at x (in the model's own sense).
func (m *Model) ObjValue(x []float64) float64 {
	sum := 0.0
	for j, c := range m.obj {
		sum += c * x[j]
	}
	return sum
}
