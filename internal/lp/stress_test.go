package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestIterationLimit verifies the solver reports StatusIterLimit instead of
// spinning when the budget is tiny.
func TestIterationLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := NewModel("iter-limit")
	m.SetMaximize(true)
	const n = 40
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = m.AddVar(0, 10, 1+rng.Float64(), "v")
	}
	for i := 0; i+1 < n; i++ {
		m.AddConstr(Expr{}.Plus(1, vars[i]).Plus(1, vars[i+1]), LE, 5, "pair")
	}
	sol, err := Solve(m, &Options{MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusIterLimit {
		t.Fatalf("status %v, want iteration-limit", sol.Status)
	}
}

// TestBadlyScaledLP exercises numerical robustness: coefficients spanning
// nine orders of magnitude.
func TestBadlyScaledLP(t *testing.T) {
	m := NewModel("scaled")
	m.SetMaximize(true)
	x := m.AddVar(0, Inf, 1e-6, "x")
	y := m.AddVar(0, Inf, 1e3, "y")
	m.AddConstr(Expr{}.Plus(1e6, x).Plus(1e-3, y), LE, 2e6, "mix")
	m.AddConstr(Expr{}.Plus(1, y), LE, 500, "ycap")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Optimal: y = 500 (worth 5e5), then x = (2e6 - 0.5)/1e6 ~ 2.
	want := 1e3*500 + 1e-6*(2e6-1e-3*500)/1e6*1e6
	_ = want
	if sol.X[y] != 500 {
		t.Fatalf("y = %g", sol.X[y])
	}
	if v := m.MaxViolation(sol.X); v > 1e-4 {
		t.Fatalf("violation %g", v)
	}
}

// TestManyEqualityRows stresses phase 1 with a larger equality system.
func TestManyEqualityRows(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const n = 80
	m := NewModel("equalities")
	vars := make([]Var, n)
	target := make([]float64, n)
	for i := range vars {
		target[i] = float64(rng.Intn(10))
		vars[i] = m.AddVar(-100, 100, rng.Float64(), "v")
	}
	// Chain: v_i + v_{i+1} = target_i + target_{i+1} with v bound tight on
	// half the variables; solution v = target is feasible.
	for i := 0; i+1 < n; i++ {
		m.AddConstr(Expr{}.Plus(1, vars[i]).Plus(1, vars[i+1]), EQ, target[i]+target[i+1], "chain")
	}
	m.AddConstr(Expr{}.Plus(1, vars[0]), EQ, target[0], "pin")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Pinning v0 and the chain fixes everything: check a few.
	for _, i := range []int{0, 1, n / 2, n - 1} {
		if math.Abs(sol.X[vars[i]]-target[i]) > 1e-6 {
			t.Fatalf("v[%d] = %g want %g", i, sol.X[vars[i]], target[i])
		}
	}
}

// TestRepeatedSolvesIndependent confirms a model can be solved repeatedly
// with identical results (no hidden state).
func TestRepeatedSolvesIndependent(t *testing.T) {
	m := NewModel("repeat")
	m.SetMaximize(true)
	x := m.AddVar(0, Inf, 2, "x")
	y := m.AddVar(0, Inf, 3, "y")
	m.AddConstr(Expr{}.Plus(1, x).Plus(2, y), LE, 14, "a")
	m.AddConstr(Expr{}.Plus(3, x).Plus(-1, y), GE, 0, "b")
	m.AddConstr(Expr{}.Plus(1, x).Plus(-1, y), LE, 2, "c")
	var prev *Solution
	for i := 0; i < 5; i++ {
		sol, err := Solve(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if sol.Objective != prev.Objective || sol.X[x] != prev.X[x] || sol.X[y] != prev.X[y] {
				t.Fatalf("solve %d differs: %v vs %v", i, sol.X, prev.X)
			}
		}
		prev = sol
	}
	// Known optimum: x=6, y=4, obj=24.
	if math.Abs(prev.Objective-24) > 1e-6 {
		t.Fatalf("objective %g want 24", prev.Objective)
	}
}

// TestZeroObjectiveFeasibility uses the solver as a pure feasibility oracle.
func TestZeroObjectiveFeasibility(t *testing.T) {
	m := NewModel("feasibility")
	x := m.AddVar(0, 10, 0, "x")
	y := m.AddVar(0, 10, 0, "y")
	m.AddConstr(Expr{}.Plus(1, x).Plus(1, y), EQ, 7, "sum")
	m.AddConstr(Expr{}.Plus(1, x).Plus(-1, y), GE, 1, "diff")
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if v := m.MaxViolation(sol.X); v > 1e-7 {
		t.Fatalf("violation %g", v)
	}
}

// TestLargeSparseNetworkLP runs a bigger network-flow-shaped instance to
// exercise refactorisation and eta accumulation.
func TestLargeSparseNetworkLP(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	const nodes = 60
	type arc struct {
		from, to int
		v        Var
	}
	m := NewModel("network")
	m.SetMaximize(true)
	var arcs []arc
	for i := 0; i < nodes; i++ {
		for d := 1; d <= 3; d++ {
			j := (i + d) % nodes
			v := m.AddVar(0, float64(5+rng.Intn(10)), 0, "arc")
			arcs = append(arcs, arc{i, j, v})
		}
	}
	// Maximise flow from node 0 to node nodes/2 with conservation.
	t0 := m.AddVar(0, Inf, 1, "value")
	for n2 := 0; n2 < nodes; n2++ {
		var e Expr
		for _, a := range arcs {
			if a.to == n2 {
				e = e.Plus(1, a.v)
			}
			if a.from == n2 {
				e = e.Plus(-1, a.v)
			}
		}
		switch n2 {
		case 0:
			e = e.Plus(1, t0)
		case nodes / 2:
			e = e.Plus(-1, t0)
		}
		m.AddConstr(e, EQ, 0, "conserve")
	}
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.X[t0] <= 0 {
		t.Fatalf("max flow %g", sol.X[t0])
	}
	if v := m.MaxViolation(sol.X); v > 1e-6 {
		t.Fatalf("violation %g", v)
	}
}

// randomWarmModel builds a random bounded LP that is feasible by
// construction (x = 0 satisfies every row: LE rows get rhs >= 0, GE rows
// rhs <= 0, and the occasional EQ row rhs 0).
func randomWarmModel(rng *rand.Rand, name string) *Model {
	m := NewModel(name)
	m.SetMaximize(rng.Intn(2) == 0)
	nv := 4 + rng.Intn(8)
	nr := 3 + rng.Intn(8)
	vars := make([]Var, nv)
	for j := range vars {
		obj := rng.NormFloat64() * 3
		vars[j] = m.AddVar(0, 1+rng.Float64()*9, obj, "v")
	}
	for i := 0; i < nr; i++ {
		var e Expr
		for j := range vars {
			if rng.Float64() < 0.5 {
				e = e.Plus(math.Round(rng.NormFloat64()*40)/10, vars[j])
			}
		}
		if len(e) == 0 {
			e = e.Plus(1, vars[rng.Intn(nv)])
		}
		switch rng.Intn(10) {
		case 0:
			m.AddConstr(e, EQ, 0, "eq")
		case 1, 2, 3:
			m.AddConstr(e, GE, -(1 + rng.Float64()*20), "ge")
		default:
			m.AddConstr(e, LE, 1+rng.Float64()*20, "le")
		}
	}
	return m
}

// TestWarmColdObjectivesAgree is the warm-start property test: across ~200
// random models, perturb the bounds and right-hand sides of a solved base
// model, then solve the perturbation cold and warm (from the base basis).
// Both must agree on status, agree on the objective within 1e-9, and both
// certificates must pass CheckCertificate. A second warm solve must also
// repeat the first one's pivot count exactly (determinism).
func TestWarmColdObjectivesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7001))
	agreed, skippedP1 := 0, 0
	for trial := 0; trial < 200; trial++ {
		m := randomWarmModel(rng, "prop")
		base, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d base: %v", trial, err)
		}
		if base.Status != StatusOptimal {
			continue // random instance unbounded: no basis to reuse
		}
		// Perturb: shift some rhs and some upper bounds.
		for i := 0; i < m.NumConstrs(); i++ {
			if m.ConstrSense(Constr(i)) != EQ && rng.Float64() < 0.5 {
				m.SetRHS(Constr(i), m.RHS(Constr(i))+rng.NormFloat64())
			}
		}
		for j := 0; j < m.NumVars(); j++ {
			if rng.Float64() < 0.3 {
				lb, ub := m.Bounds(Var(j))
				m.SetBounds(Var(j), lb, math.Max(lb, ub+rng.NormFloat64()))
			}
		}
		cold, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		warm, err := SolveWithBasis(m, base.Basis, nil)
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status != StatusOptimal {
			continue
		}
		if diff := math.Abs(warm.Objective - cold.Objective); diff > 1e-9*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: objectives differ by %g (warm %v, cold %v)", trial, diff, warm.Objective, cold.Objective)
		}
		if err := CheckCertificate(cold.Cert, 0); err != nil {
			t.Fatalf("trial %d cold certificate: %v", trial, err)
		}
		if err := CheckCertificate(warm.Cert, 0); err != nil {
			t.Fatalf("trial %d warm certificate: %v", trial, err)
		}
		again, err := SolveWithBasis(m, base.Basis, nil)
		if err != nil {
			t.Fatalf("trial %d warm repeat: %v", trial, err)
		}
		if again.Iterations != warm.Iterations {
			t.Fatalf("trial %d: warm pivot count not deterministic: %d vs %d", trial, warm.Iterations, again.Iterations)
		}
		agreed++
		if warm.Warm != nil && warm.Warm.Phase1Skipped {
			skippedP1++
		}
	}
	if agreed < 150 {
		t.Fatalf("only %d/200 trials reached an optimal comparison", agreed)
	}
	if skippedP1 == 0 {
		t.Fatal("no trial ever skipped phase 1: warm start is not engaging")
	}
	t.Logf("agreed=%d phase1Skipped=%d", agreed, skippedP1)
}
